package rfidsched

// The benchmark harness regenerates every figure of the paper's evaluation
// (Figures 6-9 — Table I is notation only) plus the ablations called out in
// DESIGN.md. Figure benchmarks run the real experiment pipeline at reduced
// trial counts and export the domain metric (schedule size / one-shot
// weight) via b.ReportMetric so `go test -bench` output carries the same
// numbers EXPERIMENTS.md tabulates; `cmd/rfidsim` runs the full-trial
// version.

import (
	"fmt"
	"testing"

	"rfidsched/internal/anticollision"
	"rfidsched/internal/baseline"
	"rfidsched/internal/core"
	"rfidsched/internal/deploy"
	"rfidsched/internal/experiments"
	"rfidsched/internal/geom"
	"rfidsched/internal/graph"
	"rfidsched/internal/mobility"
	"rfidsched/internal/model"
	"rfidsched/internal/randx"
	"rfidsched/internal/survey"
)

func benchSystem(b *testing.B, seed uint64, lambdaR, lambdar float64) *model.System {
	b.Helper()
	sys, err := deploy.Generate(deploy.Paper(seed, lambdaR, lambdar))
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// benchFigure runs one paper figure end to end and reports the mean of the
// headline algorithm's curve as a benchmark metric.
func benchFigure(b *testing.B, id string) {
	cfg := experiments.Config{Trials: 2, Seed: 42, Workers: 4}
	var lastMean float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		total, n := 0.0, 0
		for _, p := range res.Series[0].Points { // Alg1-PTAS series
			total += p.Mean
			n++
		}
		lastMean = total / float64(n)
	}
	b.ReportMetric(lastMean, "alg1_mean")
}

// BenchmarkFig6 regenerates Figure 6: covering-schedule size vs lambda_R.
func BenchmarkFig6(b *testing.B) { benchFigure(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7: covering-schedule size vs lambda_r.
func BenchmarkFig7(b *testing.B) { benchFigure(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8: one-shot well-covered tags vs lambda_r.
func BenchmarkFig8(b *testing.B) { benchFigure(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9: one-shot well-covered tags vs lambda_R.
func BenchmarkFig9(b *testing.B) { benchFigure(b, "fig9") }

// BenchmarkOneShot measures a single One-Shot Schedule computation per
// algorithm on the paper-scale instance, reporting the achieved weight.
func BenchmarkOneShot(b *testing.B) {
	sys := benchSystem(b, 1, 12, 5)
	g := graph.FromSystem(sys)
	algs := []struct {
		name string
		make func() model.OneShotScheduler
	}{
		{"Alg1-PTAS", func() model.OneShotScheduler { return core.NewPTAS() }},
		{"Alg2-Growth", func() model.OneShotScheduler { return core.NewGrowth(g, 1.25) }},
		{"Alg3-Distributed", func() model.OneShotScheduler { return core.NewDistributed(g, 1.25) }},
		{"GHC", func() model.OneShotScheduler { return baseline.GHC{} }},
		{"Colorwave", func() model.OneShotScheduler { return baseline.NewColorwave(g, 7) }},
		{"Exact", func() model.OneShotScheduler { return &baseline.Exact{} }},
	}
	for _, alg := range algs {
		b.Run(alg.name, func(b *testing.B) {
			weight := 0
			for i := 0; i < b.N; i++ {
				sched := alg.make()
				X, err := sched.OneShot(sys)
				if err != nil {
					b.Fatal(err)
				}
				weight = sys.Weight(X)
			}
			b.ReportMetric(float64(weight), "weight")
		})
	}
}

// BenchmarkMCS measures a full covering-schedule run per algorithm,
// reporting the schedule size.
func BenchmarkMCS(b *testing.B) {
	base := benchSystem(b, 3, 12, 5)
	g := graph.FromSystem(base)
	algs := []struct {
		name string
		make func() model.OneShotScheduler
	}{
		{"Alg1-PTAS", func() model.OneShotScheduler { return core.NewPTAS() }},
		{"Alg2-Growth", func() model.OneShotScheduler { return core.NewGrowth(g, 1.25) }},
		{"Alg3-Distributed", func() model.OneShotScheduler { return core.NewDistributed(g, 1.25) }},
		{"GHC", func() model.OneShotScheduler { return baseline.GHC{} }},
		{"Colorwave", func() model.OneShotScheduler { return baseline.NewColorwave(g, 7) }},
	}
	for _, alg := range algs {
		b.Run(alg.name, func(b *testing.B) {
			size := 0
			for i := 0; i < b.N; i++ {
				sys := base.Clone()
				res, err := core.RunMCS(sys, alg.make(), core.MCSOptions{})
				if err != nil {
					b.Fatal(err)
				}
				size = res.Size
			}
			b.ReportMetric(float64(size), "slots")
		})
	}
}

// BenchmarkPTASParams is the ablation over the shifting parameter k and the
// per-square cap Lambda (DESIGN.md §5).
func BenchmarkPTASParams(b *testing.B) {
	sys := benchSystem(b, 5, 12, 5)
	for _, k := range []int{2, 3, 4, 6} {
		for _, lambda := range []int{4, 6, 10} {
			b.Run(fmt.Sprintf("k=%d/lambda=%d", k, lambda), func(b *testing.B) {
				weight := 0
				for i := 0; i < b.N; i++ {
					p := &core.PTAS{K: k, Lambda: lambda}
					X, err := p.OneShot(sys)
					if err != nil {
						b.Fatal(err)
					}
					weight = sys.Weight(X)
				}
				b.ReportMetric(float64(weight), "weight")
			})
		}
	}
}

// BenchmarkGrowthRho is the ablation over the growth threshold rho = 1+eps:
// smaller eps buys weight at the cost of bigger local balls (larger r̄).
func BenchmarkGrowthRho(b *testing.B) {
	sys := benchSystem(b, 7, 12, 5)
	g := graph.FromSystem(sys)
	for _, rho := range []float64{1.05, 1.25, 1.5, 2.0} {
		b.Run(fmt.Sprintf("rho=%.2f", rho), func(b *testing.B) {
			weight, radius := 0, 0
			for i := 0; i < b.N; i++ {
				alg := core.NewGrowth(g, rho)
				X, err := alg.OneShot(sys)
				if err != nil {
					b.Fatal(err)
				}
				weight = sys.Weight(X)
				radius = alg.LastMaxRadius
			}
			b.ReportMetric(float64(weight), "weight")
			b.ReportMetric(float64(radius), "max_r")
		})
	}
}

// BenchmarkExactVsApprox quantifies the optimality gap of each proposed
// algorithm against the exact solver on a smaller instance where exact
// search is fast.
func BenchmarkExactVsApprox(b *testing.B) {
	sys, err := deploy.Generate(deploy.Config{
		Seed: 9, NumReaders: 20, NumTags: 400, Side: 70, LambdaR: 10, LambdaSmallR: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	g := graph.FromSystem(sys)
	exact := &baseline.Exact{}
	Xo, err := exact.OneShot(sys)
	if err != nil {
		b.Fatal(err)
	}
	opt := float64(sys.Weight(Xo))
	algs := []model.OneShotScheduler{core.NewPTAS(), core.NewGrowth(g, 1.25), core.NewDistributed(g, 1.25)}
	for _, alg := range algs {
		b.Run(alg.Name(), func(b *testing.B) {
			ratio := 0.0
			for i := 0; i < b.N; i++ {
				X, err := alg.OneShot(sys)
				if err != nil {
					b.Fatal(err)
				}
				ratio = float64(sys.Weight(X)) / opt
			}
			b.ReportMetric(ratio, "opt_ratio")
		})
	}
}

// BenchmarkSurveyGraph measures the RF site survey and reports its edge
// accuracy, the ablation of true vs measured interference graphs.
func BenchmarkSurveyGraph(b *testing.B) {
	sys := benchSystem(b, 11, 12, 5)
	for _, sigma := range []float64{0, 2, 4, 8} {
		b.Run(fmt.Sprintf("sigma=%.0f", sigma), func(b *testing.B) {
			var rep survey.Report
			for i := 0; i < b.N; i++ {
				var err error
				_, rep, err = survey.EstimateGraph(sys, survey.Params{ShadowSigma: sigma, Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.Precision(), "precision")
			b.ReportMetric(rep.Recall(), "recall")
		})
	}
}

// BenchmarkAnticollision compares the link-layer protocols' air-time on a
// 200-tag population (slots per tag).
func BenchmarkAnticollision(b *testing.B) {
	protos := []anticollision.Protocol{
		anticollision.FramedALOHA{FrameSize: 128},
		anticollision.VogtALOHA{},
		anticollision.QProtocol{},
		anticollision.TreeSplitting{},
	}
	for _, p := range protos {
		b.Run(p.Name(), func(b *testing.B) {
			slotsPerTag := 0.0
			for i := 0; i < b.N; i++ {
				rng := randx.New(uint64(i) + 1)
				res := p.Inventory(200, rng)
				slotsPerTag = float64(res.Slots) / 200
			}
			b.ReportMetric(slotsPerTag, "slots/tag")
		})
	}
}

// BenchmarkDistributedProtocol reports the communication cost of Algorithm
// 3 (rounds and messages per one-shot computation).
func BenchmarkDistributedProtocol(b *testing.B) {
	sys := benchSystem(b, 13, 12, 5)
	g := graph.FromSystem(sys)
	var rounds, msgs int
	for i := 0; i < b.N; i++ {
		alg := core.NewDistributed(g, 1.25)
		if _, err := alg.OneShot(sys); err != nil {
			b.Fatal(err)
		}
		rounds = alg.LastStats.Rounds
		msgs = alg.LastStats.MessagesSent
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(msgs), "messages")
}

// BenchmarkMultiChannel is the dense-reading-mode ablation: weight of one
// slot as the number of frequency channels grows. Channels remove RTc but
// not RRc, so the curve saturates at the RRc-limited ceiling.
func BenchmarkMultiChannel(b *testing.B) {
	sys := benchSystem(b, 19, 14, 6)
	for _, c := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("channels=%d", c), func(b *testing.B) {
			weight := 0
			for i := 0; i < b.N; i++ {
				plan, err := (core.MultiChannel{Channels: c}).OneShot(sys)
				if err != nil {
					b.Fatal(err)
				}
				weight = plan.Weight(sys)
			}
			b.ReportMetric(float64(weight), "weight")
		})
	}
}

// BenchmarkMobilityStaleness measures the frozen-schedule weight decay
// under reader drift: the fraction of the initial weight left after 10
// slots at each speed.
func BenchmarkMobilityStaleness(b *testing.B) {
	sys := benchSystem(b, 21, 12, 5)
	g := graph.FromSystem(sys)
	region := geom.R2(0, 0, 100, 100)
	for _, speed := range []float64{0.5, 2, 5} {
		b.Run(fmt.Sprintf("speed=%.1f", speed), func(b *testing.B) {
			frac := 0.0
			for i := 0; i < b.N; i++ {
				d := mobility.NewDrift(sys.NumReaders(), region, speed, uint64(i)+1)
				res, err := mobility.MeasureStaleness(sys.Clone(), core.NewGrowth(g, 1.25), d, 10)
				if err != nil {
					b.Fatal(err)
				}
				frac = float64(res.Weights[len(res.Weights)-1]) / float64(res.Weights[0])
			}
			b.ReportMetric(frac, "weight_left")
		})
	}
}

// BenchmarkEstimators measures tag-population estimator bias at moderate
// load (100 tags in a 128-slot frame).
func BenchmarkEstimators(b *testing.B) {
	ests := []anticollision.Estimator{
		anticollision.SchouteEstimator{},
		anticollision.LowerBoundEstimator{},
		anticollision.ZeroEstimator{},
		anticollision.CollisionEstimator{},
	}
	for _, e := range ests {
		b.Run(e.Name(), func(b *testing.B) {
			rng := randx.New(31)
			mean := 0.0
			for i := 0; i < b.N; i++ {
				counts := make([]int, 128)
				for t := 0; t < 100; t++ {
					counts[rng.Intn(128)]++
				}
				obs := anticollision.FrameObservation{FrameSize: 128}
				for _, k := range counts {
					switch {
					case k == 0:
						obs.Idle++
					case k == 1:
						obs.Singles++
					default:
						obs.Collisions++
					}
				}
				mean = e.Estimate(obs)
			}
			b.ReportMetric(mean, "estimate_of_100")
		})
	}
}

// BenchmarkWeight measures the core weight-function primitive every
// scheduler's inner loop sits on.
func BenchmarkWeight(b *testing.B) {
	sys := benchSystem(b, 15, 12, 5)
	X := make([]int, 0, 25)
	for v := 0; v < sys.NumReaders(); v += 2 {
		X = append(X, v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Weight(X)
	}
}

// BenchmarkInterferenceGraph measures interference-graph construction.
func BenchmarkInterferenceGraph(b *testing.B) {
	sys := benchSystem(b, 17, 12, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.FromSystem(sys)
	}
}

// BenchmarkSpatialIndex compares the uniform grid and kd-tree on coverage
// queries over uniform and hotspot tag layouts.
func BenchmarkSpatialIndex(b *testing.B) {
	for _, layout := range []deploy.Layout{deploy.Uniform, deploy.Hotspot} {
		cfg := deploy.Paper(23, 12, 5)
		cfg.Layout = layout
		sys, err := deploy.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pts := make([]geom.Point, sys.NumTags())
		for i := range pts {
			pts[i] = sys.Tag(i).Pos
		}
		queries := make([]geom.Disk, sys.NumReaders())
		for i := range queries {
			queries[i] = sys.Reader(i).InterrogationDisk()
		}
		b.Run(fmt.Sprintf("grid/%v", layout), func(b *testing.B) {
			idx := geom.NewSpatialGrid(pts, 5)
			var buf []int32
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					buf = idx.QueryDisk(q, buf[:0])
				}
			}
		})
		b.Run(fmt.Sprintf("kdtree/%v", layout), func(b *testing.B) {
			idx := geom.NewKDTree(pts)
			var buf []int32
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					buf = idx.QueryDisk(q, buf[:0])
				}
			}
		})
	}
}

// BenchmarkSystemConstruction measures deployment + coverage precompute.
func BenchmarkSystemConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := deploy.Generate(deploy.Paper(uint64(i)+1, 12, 5)); err != nil {
			b.Fatal(err)
		}
	}
}
