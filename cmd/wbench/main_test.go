package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// runWbench drives the CLI entry point and returns its exit code plus
// captured output, so the tests exercise exactly what CI runs.
func runWbench(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// tinyScaleArgs keeps the benchmark fast enough for the unit-test suite;
// ratio quality does not matter here, only the report/gate plumbing.
func tinyScaleArgs(extra ...string) []string {
	args := []string{"-scales", "10x150", "-iters", "2"}
	return append(args, extra...)
}

func TestReportAndSelfCheckPass(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")

	code, _, stderr := runWbench(t, tinyScaleArgs("-o", base)...)
	if code != 0 {
		t.Fatalf("report run failed (%d): %s", code, stderr)
	}

	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Scales) != 1 || rep.Scales[0].Readers != 10 || rep.Scales[0].Tags != 150 {
		t.Fatalf("unexpected scales in report: %+v", rep.Scales)
	}
	if len(rep.Gates) != 3 {
		t.Fatalf("want 3 gated metrics for a single scale, got %v", rep.Gates)
	}

	// A fresh measurement checked against itself must pass. The tolerance is
	// deliberately loose: at this tiny scale the ratios are noise-dominated,
	// and this test is about the gate plumbing, not about performance.
	fresh := filepath.Join(dir, "fresh.json")
	code, stdout, stderr := runWbench(t, tinyScaleArgs(
		"-check", "-baseline", base, "-tolerance", "0.95", "-o", fresh)...)
	if code != 0 {
		t.Fatalf("self-check failed (%d):\n%s%s", code, stdout, stderr)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("check run did not write fresh report: %v", err)
	}
}

// TestCheckFailsOnInjectedSlowdown is the CI contract: if the committed
// baseline claims speedups the fresh run cannot reproduce — equivalently,
// if the incremental engine regresses against an honest baseline — the
// gate must exit non-zero.
func TestCheckFailsOnInjectedSlowdown(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if code, _, stderr := runWbench(t, tinyScaleArgs("-o", base)...); code != 0 {
		t.Fatalf("report run failed (%d): %s", code, stderr)
	}

	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("decode report: %v", err)
	}
	for key := range rep.Gates {
		rep.Gates[key] *= 1000 // simulate a 1000x regression vs baseline
	}
	doctored := filepath.Join(dir, "doctored.json")
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("encode doctored baseline: %v", err)
	}
	if err := os.WriteFile(doctored, out, 0o644); err != nil {
		t.Fatalf("write doctored baseline: %v", err)
	}

	code, stdout, stderr := runWbench(t, tinyScaleArgs(
		"-check", "-baseline", doctored, "-tolerance", "0.15",
		"-o", filepath.Join(dir, "fresh.json"))...)
	if code != 1 {
		t.Fatalf("want exit 1 on injected slowdown, got %d:\n%s%s", code, stdout, stderr)
	}
}

// TestCheckFailsOnMissingMetric: a baseline tracking a metric the fresh run
// no longer produces (e.g. a silently dropped scale) must fail, not pass
// vacuously.
func TestCheckFailsOnMissingMetric(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if code, _, stderr := runWbench(t, tinyScaleArgs("-o", base)...); code != 0 {
		t.Fatalf("report run failed (%d): %s", code, stderr)
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("decode report: %v", err)
	}
	rep.Gates["solve_speedup@999x999"] = 1.0
	doctored := filepath.Join(dir, "doctored.json")
	out, _ := json.Marshal(rep)
	if err := os.WriteFile(doctored, out, 0o644); err != nil {
		t.Fatalf("write doctored baseline: %v", err)
	}

	code, _, _ := runWbench(t, tinyScaleArgs(
		"-check", "-baseline", doctored, "-tolerance", "0.95",
		"-o", filepath.Join(dir, "fresh.json"))...)
	if code != 1 {
		t.Fatalf("want exit 1 on missing tracked metric, got %d", code)
	}
}

func TestCheckFailsOnMissingBaselineFile(t *testing.T) {
	code, _, stderr := runWbench(t, tinyScaleArgs(
		"-check", "-baseline", filepath.Join(t.TempDir(), "nope.json"))...)
	if code != 1 {
		t.Fatalf("want exit 1 on missing baseline, got %d (%s)", code, stderr)
	}
}

func TestParseScales(t *testing.T) {
	got, err := parseScales(" 20x400, 60x1200 ,120x2400")
	if err != nil {
		t.Fatalf("parseScales: %v", err)
	}
	want := [][2]int{{20, 400}, {60, 1200}, {120, 2400}}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	for _, bad := range []string{"", "20", "0x10", "10x-2", "axb"} {
		if _, err := parseScales(bad); err == nil {
			t.Fatalf("parseScales(%q): want error", bad)
		}
	}
}
