// Command wbench is the weight-engine benchmark and CI regression gate. It
// times the hottest operations of the repository — Weight, MarginalWeight /
// MarginalGain, the branch-and-bound mwfs.Solve, and a full greedy-MCS
// schedule — at several (readers, tags) scales, on both the brute-force
// path and the incremental WeightEval path, and archives the numbers as
// JSON (BENCH_weight.json).
//
// Because absolute ns/op depends on the machine, the CI gate tracks the
// *speedup ratios* (brute ns / incremental ns), which are measured in the
// same process and therefore self-normalizing across hardware: a regression
// in the incremental engine shows up as a shrinking ratio no matter how
// fast the runner is. `-check` re-measures and fails (exit 1) if any gated
// ratio fell more than `-tolerance` below the committed baseline.
//
// Usage:
//
//	wbench -o BENCH_weight.json
//	wbench -check -baseline BENCH_weight.json -tolerance 0.15 -o fresh.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"rfidsched/internal/baseline"
	"rfidsched/internal/core"
	"rfidsched/internal/deploy"
	"rfidsched/internal/model"
	"rfidsched/internal/mwfs"
)

// scaleResult holds one (readers, tags) scale's measurements. The *_ns
// fields are informational (machine-dependent); the *_speedup fields are
// the gated, self-normalized metrics.
type scaleResult struct {
	Readers int `json:"readers"`
	Tags    int `json:"tags"`

	WeightNs         float64 `json:"weight_ns"`         // brute full-set Weight
	MarginalBruteNs  float64 `json:"marginal_brute_ns"` // MarginalWeight per probe
	MarginalIncrNs   float64 `json:"marginal_incr_ns"`  // eval.MarginalGain per probe
	SolveBruteNs     float64 `json:"solve_brute_ns"`    // mwfs.Solve, BruteForce
	SolveIncrNs      float64 `json:"solve_incr_ns"`     // mwfs.Solve, incremental
	MCSBruteNs       float64 `json:"mcs_brute_ns"`      // RunMCS with GHC{Brute}
	MCSLazyNs        float64 `json:"mcs_lazy_ns"`       // RunMCS with lazy GHC
	MarginalSpeedup  float64 `json:"marginal_speedup"`
	SolveSpeedup     float64 `json:"solve_speedup"`
	MCSSpeedup       float64 `json:"mcs_speedup"`
	MCSScheduleSlots int     `json:"mcs_schedule_slots"` // sanity: identical on both paths
}

// report is the archived benchmark output. Gates maps metric keys (e.g.
// "solve_speedup@120x2400") to the tracked ratio; -check compares these.
type report struct {
	Seed   uint64             `json:"seed"`
	Iters  int                `json:"iters"`
	Scales []scaleResult      `json:"scales"`
	Gates  map[string]float64 `json:"gates"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out      = fs.String("o", "", "write the fresh report JSON here (default stdout)")
		check    = fs.Bool("check", false, "regression-gate mode: compare against -baseline")
		baseFile = fs.String("baseline", "BENCH_weight.json", "committed baseline JSON for -check")
		tol      = fs.Float64("tolerance", 0.15, "allowed fractional drop per gated metric in -check")
		seed     = fs.Uint64("seed", 2011, "deployment seed")
		iters    = fs.Int("iters", 10, "timed repetitions per measurement")
		scales   = fs.String("scales", "20x400,60x1200,120x2400", "comma-separated readersxtags scales")
		margin   = fs.Float64("gate-margin", 0.4, "fraction shaved off measured ratios when writing gates")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	rep := report{Seed: *seed, Iters: *iters, Gates: map[string]float64{}}
	measured := map[string]float64{} // raw (unshaved) ratios, used by -check
	scaleList, err := parseScales(*scales)
	if err != nil {
		fmt.Fprintf(stderr, "wbench: %v\n", err)
		return 2
	}
	for i, sc := range scaleList {
		res, err := benchScale(sc[0], sc[1], *seed, *iters)
		if err != nil {
			fmt.Fprintf(stderr, "wbench: %dx%d: %v\n", sc[0], sc[1], err)
			return 1
		}
		rep.Scales = append(rep.Scales, res)
		key := fmt.Sprintf("%dx%d", res.Readers, res.Tags)
		// Only the largest scale is gated: small instances finish in
		// microseconds, where fixed setup costs dominate and the ratio is
		// mostly scheduler noise. Smaller scales stay in the report as
		// informational context. Gates are written with -gate-margin shaved
		// off the measurement, so the committed floor absorbs cross-machine
		// ratio drift: the gate exists to catch the incremental engine
		// losing its asymptotic edge (a broken fast path measures ~1x), not
		// single-digit-percent jitter.
		if i == len(scaleList)-1 {
			rep.Gates["marginal_speedup@"+key] = (1 - *margin) * res.MarginalSpeedup
			rep.Gates["solve_speedup@"+key] = (1 - *margin) * res.SolveSpeedup
			rep.Gates["mcs_speedup@"+key] = (1 - *margin) * res.MCSSpeedup
			measured["marginal_speedup@"+key] = res.MarginalSpeedup
			measured["solve_speedup@"+key] = res.SolveSpeedup
			measured["mcs_speedup@"+key] = res.MCSSpeedup
		}
		fmt.Fprintf(stderr, "wbench: %s marginal %.1fx solve %.1fx mcs %.1fx\n",
			key, res.MarginalSpeedup, res.SolveSpeedup, res.MCSSpeedup)
	}

	if err := writeReport(rep, *out, stdout); err != nil {
		fmt.Fprintf(stderr, "wbench: %v\n", err)
		return 1
	}

	if *check {
		return checkAgainstBaseline(measured, *baseFile, *tol, stdout, stderr)
	}
	return 0
}

func parseScales(s string) ([][2]int, error) {
	var out [][2]int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var n, m int
		if _, err := fmt.Sscanf(part, "%dx%d", &n, &m); err != nil || n <= 0 || m <= 0 {
			return nil, fmt.Errorf("bad scale %q (want NxM)", part)
		}
		out = append(out, [2]int{n, m})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scales given")
	}
	return out, nil
}

// benchScale measures one deployment scale. Both paths run on identical
// clones; schedule/solution equality is asserted so the benchmark doubles
// as an end-to-end determinism check.
func benchScale(readers, tags int, seed uint64, iters int) (scaleResult, error) {
	sys, err := deploy.Generate(deploy.Config{
		Seed: seed, NumReaders: readers, NumTags: tags,
		Side: 100, LambdaR: 12, LambdaSmallR: 5,
	})
	if err != nil {
		return scaleResult{}, err
	}
	res := scaleResult{Readers: readers, Tags: tags}

	// A deterministic feasible probe set: greedy by index.
	var X []int
	for v := 0; v < readers; v++ {
		ok := true
		for _, u := range X {
			if !sys.Independent(u, v) {
				ok = false
				break
			}
		}
		if ok {
			X = append(X, v)
		}
	}

	// Full-set Weight (brute): the unit everything else multiplies.
	res.WeightNs = timeOp(iters, 200, func() {
		sys.Weight(X)
	})

	// Marginal probes: every reader against X, brute vs incremental.
	base := sys.Weight(X)
	res.MarginalBruteNs = timeOp(iters, 1, func() {
		for v := 0; v < readers; v++ {
			sys.MarginalWeightFrom(base, X, v)
		}
	}) / float64(readers)
	eval := model.NewWeightEval(sys)
	for _, v := range X {
		eval.Add(v)
	}
	res.MarginalIncrNs = timeOp(iters, 10, func() {
		for v := 0; v < readers; v++ {
			eval.MarginalGain(v)
		}
	}) / float64(readers)
	eval.Close()
	res.MarginalSpeedup = res.MarginalBruteNs / res.MarginalIncrNs

	// Branch-and-bound one-shot solve over the full candidate list, capped
	// so both paths expand the identical truncated tree.
	cands := make([]int, readers)
	for i := range cands {
		cands[i] = i
	}
	const solveNodes = 20000
	var wantW int
	res.SolveBruteNs = timeOp(iters, 1, func() {
		r := mwfs.Solve(sys, cands, mwfs.Options{MaxNodes: solveNodes, BruteForce: true})
		wantW = r.Weight
	})
	var gotW int
	res.SolveIncrNs = timeOp(iters, 1, func() {
		r := mwfs.Solve(sys, cands, mwfs.Options{MaxNodes: solveNodes})
		gotW = r.Weight
	})
	if gotW != wantW {
		return res, fmt.Errorf("solve weight diverged: incremental %d, brute %d", gotW, wantW)
	}
	res.SolveSpeedup = res.SolveBruteNs / res.SolveIncrNs

	// Full greedy covering schedule (the paper's MCS metric) with GHC.
	var bruteSlots int
	res.MCSBruteNs = timeOp(iters, 1, func() {
		r, err2 := core.RunMCS(sys.Clone(), baseline.GHC{Brute: true}, core.MCSOptions{})
		if err2 != nil {
			panic(err2)
		}
		bruteSlots = r.Size
	})
	var lazySlots int
	res.MCSLazyNs = timeOp(iters, 1, func() {
		r, err2 := core.RunMCS(sys.Clone(), baseline.GHC{}, core.MCSOptions{})
		if err2 != nil {
			panic(err2)
		}
		lazySlots = r.Size
	})
	if lazySlots != bruteSlots {
		return res, fmt.Errorf("mcs schedule diverged: lazy %d slots, brute %d slots", lazySlots, bruteSlots)
	}
	res.MCSScheduleSlots = lazySlots
	res.MCSSpeedup = res.MCSBruteNs / res.MCSLazyNs
	return res, nil
}

// timeOp returns ns per op, best of iters timed repetitions of inner ops
// (best-of defends against scheduler noise on shared CI runners; one
// untimed warm-up absorbs cold caches).
func timeOp(iters, inner int, f func()) float64 {
	f()
	best := time.Duration(1<<63 - 1)
	for i := 0; i < iters; i++ {
		start := time.Now()
		for j := 0; j < inner; j++ {
			f()
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(inner)
}

func writeReport(rep report, out string, stdout io.Writer) error {
	var w io.Writer = stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// checkAgainstBaseline compares every gated metric of the committed
// baseline against the fresh *raw* measurement (the committed gate already
// carries the -gate-margin shave, so a fresh ratio may not fall more than
// tol below that conservative floor). Exit codes: 0 pass, 1 regression or
// error.
func checkAgainstBaseline(fresh map[string]float64, baseFile string, tol float64, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(baseFile)
	if err != nil {
		fmt.Fprintf(stderr, "wbench: baseline: %v\n", err)
		return 1
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(stderr, "wbench: baseline %s: %v\n", baseFile, err)
		return 1
	}
	if len(base.Gates) == 0 {
		fmt.Fprintf(stderr, "wbench: baseline %s has no gates\n", baseFile)
		return 1
	}
	failed := 0
	for key, want := range base.Gates {
		got, ok := fresh[key]
		if !ok {
			fmt.Fprintf(stderr, "wbench: FAIL %s: tracked metric missing from fresh run\n", key)
			failed++
			continue
		}
		floor := want * (1 - tol)
		status := "ok"
		if got < floor {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(stdout, "wbench: %-4s %-28s baseline %6.2f  fresh %6.2f  floor %6.2f\n",
			status, key, want, got, floor)
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "wbench: %d gated metric(s) regressed beyond tolerance %.0f%%\n", failed, tol*100)
		return 1
	}
	fmt.Fprintf(stdout, "wbench: all %d gated metrics within tolerance %.0f%%\n", len(base.Gates), tol*100)
	return 0
}
