// Command corebench is the geometry-core benchmark and CI regression gate
// for the CSR rebuild of internal/model. It measures, at a paper-scale
// deployment (default 120 readers x 2400 tags):
//
//   - newsystem_speedup: the frozen pre-CSR constructor (defensive copies,
//     per-row append + sort.Slice coverage lists, eager Weight scratch;
//     model.BuildReferenceCoverage) versus the CSR NewSystem,
//   - construct_speedup: the frozen pre-CSR construction + first-solve prep
//     (BuildReferenceCoverage plus the O(n²) pairwise interference,
//     coverage-adjacency and coupling builds of BuildReferenceAdjacency)
//     versus NewSystem + WarmAdjacency, i.e. everything a driver pays before
//     its first solve can start,
//   - clone_speedup: a fresh Clone + NewWeightEval pair versus the pooled
//     ClonePooled + NewPooledWeightEval cycle at steady state, and
//   - allocs/op for steady-state Weight and MarginalGain (hard-gated at 0)
//     and for the pooled clone cycle (hard-gated at a small constant).
//
// Like wbench, the CI gate tracks in-process ratios (self-normalizing across
// hardware) with a committed margin-shaved floor; the allocation gates are
// absolute and machine-independent. `-check` re-measures and fails (exit 1)
// on any gate miss; on runners with fewer than 2 CPUs -check auto-skips
// (exit 0) like psbench, since timing ratios on a shared single core gate
// noise, not the code.
//
// Usage:
//
//	corebench -o BENCH_core.json
//	corebench -check -baseline BENCH_core.json -tolerance 0.15 -o fresh.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"rfidsched/internal/deploy"
	"rfidsched/internal/model"
)

// result holds the measurements at the benchmark scale. The *_ns fields are
// informational (machine-dependent); the speedups and alloc counts are gated.
type result struct {
	Readers int `json:"readers"`
	Tags    int `json:"tags"`

	NewSystemRefNs   float64 `json:"newsystem_ref_ns"` // frozen pre-CSR constructor
	NewSystemCSRNs   float64 `json:"newsystem_csr_ns"` // CSR NewSystem
	ConstructRefNs   float64 `json:"construct_ref_ns"` // frozen pre-CSR build + first-solve prep
	ConstructCSRNs   float64 `json:"construct_csr_ns"` // NewSystem + WarmAdjacency
	CloneFreshNs     float64 `json:"clone_fresh_ns"`   // Clone + NewWeightEval
	ClonePooledNs    float64 `json:"clone_pooled_ns"`  // pooled cycle, warm pools
	NewSystemSpeedup float64 `json:"newsystem_speedup"`
	ConstructSpeedup float64 `json:"construct_speedup"`
	CloneSpeedup     float64 `json:"clone_speedup"`

	WeightAllocs      float64 `json:"weight_allocs"`       // steady-state System.Weight
	MarginalAllocs    float64 `json:"marginal_allocs"`     // steady-state eval.MarginalGain
	AddRemoveAllocs   float64 `json:"add_remove_allocs"`   // steady-state eval Add+Remove
	PooledCloneAllocs float64 `json:"pooled_clone_allocs"` // ClonePooled+Release cycle
}

type report struct {
	Seed   uint64             `json:"seed"`
	Iters  int                `json:"iters"`
	NumCPU int                `json:"num_cpu"`
	Result result             `json:"result"`
	Gates  map[string]float64 `json:"gates"`
}

// pooledCloneAllocBound is the absolute ceiling for the pooled clone cycle:
// sync.Pool bookkeeping may allocate a per-P slot container, but the
// O(readers+tags) buffer allocations of the fresh path must be gone.
const pooledCloneAllocBound = 2

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("corebench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out      = fs.String("o", "", "write the fresh report JSON here (default stdout)")
		check    = fs.Bool("check", false, "regression-gate mode: compare against -baseline")
		baseFile = fs.String("baseline", "BENCH_core.json", "committed baseline JSON for -check")
		tol      = fs.Float64("tolerance", 0.15, "allowed fractional drop per gated ratio in -check")
		seed     = fs.Uint64("seed", 2011, "deployment seed")
		iters    = fs.Int("iters", 200, "timed repetitions per measurement")
		scale    = fs.String("scale", "120x2400", "readersxtags benchmark scale")
		margin   = fs.Float64("gate-margin", 0.4, "fraction shaved off measured ratios when writing gates")
		cpuprof  = fs.String("cpuprofile", "", "write a CPU profile of the measured construction loop here")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *check && runtime.NumCPU() < 2 {
		fmt.Fprintf(stdout, "corebench: skip: %d CPU(s) — timing ratios on a shared single core gate noise, not code\n", runtime.NumCPU())
		return 0
	}

	var n, m int
	if _, err := fmt.Sscanf(*scale, "%dx%d", &n, &m); err != nil || n <= 0 || m <= 0 {
		fmt.Fprintf(stderr, "corebench: bad -scale %q (want NxM)\n", *scale)
		return 2
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(stderr, "corebench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "corebench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	res, err := bench(n, m, *seed, *iters)
	if err != nil {
		fmt.Fprintf(stderr, "corebench: %v\n", err)
		return 1
	}
	key := fmt.Sprintf("%dx%d", n, m)
	rep := report{
		Seed: *seed, Iters: *iters, NumCPU: runtime.NumCPU(), Result: res,
		Gates: map[string]float64{
			"newsystem_speedup@" + key: (1 - *margin) * res.NewSystemSpeedup,
			"construct_speedup@" + key: (1 - *margin) * res.ConstructSpeedup,
			"clone_speedup@" + key:     (1 - *margin) * res.CloneSpeedup,
		},
	}
	fmt.Fprintf(stderr, "corebench: %s newsystem %.1fx construct %.1fx clone %.1fx weight-allocs %.0f marginal-allocs %.0f\n",
		key, res.NewSystemSpeedup, res.ConstructSpeedup, res.CloneSpeedup, res.WeightAllocs, res.MarginalAllocs)

	if err := writeReport(rep, *out, stdout); err != nil {
		fmt.Fprintf(stderr, "corebench: %v\n", err)
		return 1
	}

	// The allocation gates are absolute: zero-alloc steady state is a
	// machine-independent property, so it is enforced on every run (plain
	// and -check), not against a baseline.
	failed := 0
	if res.WeightAllocs != 0 {
		fmt.Fprintf(stderr, "corebench: FAIL steady-state Weight allocates %.1f/op, want 0\n", res.WeightAllocs)
		failed++
	}
	if res.MarginalAllocs != 0 {
		fmt.Fprintf(stderr, "corebench: FAIL steady-state MarginalGain allocates %.1f/op, want 0\n", res.MarginalAllocs)
		failed++
	}
	if res.AddRemoveAllocs != 0 {
		fmt.Fprintf(stderr, "corebench: FAIL steady-state Add/Remove allocates %.1f/op, want 0\n", res.AddRemoveAllocs)
		failed++
	}
	if res.PooledCloneAllocs > pooledCloneAllocBound {
		fmt.Fprintf(stderr, "corebench: FAIL pooled clone cycle allocates %.1f/op, want <= %d\n",
			res.PooledCloneAllocs, pooledCloneAllocBound)
		failed++
	}
	if failed > 0 {
		return 1
	}

	if *check {
		fresh := map[string]float64{
			"newsystem_speedup@" + key: res.NewSystemSpeedup,
			"construct_speedup@" + key: res.ConstructSpeedup,
			"clone_speedup@" + key:     res.CloneSpeedup,
		}
		return checkAgainstBaseline(fresh, *baseFile, *tol, stdout, stderr)
	}
	return 0
}

// bench measures one deployment scale. The CSR relations are differentially
// verified against the frozen reference inside the timing harness, so the
// benchmark doubles as an end-to-end equivalence check.
func bench(n, m int, seed uint64, iters int) (result, error) {
	sys0, err := deploy.Generate(deploy.Config{
		Seed: seed, NumReaders: n, NumTags: m,
		Side: 100, LambdaR: 12, LambdaSmallR: 5,
	})
	if err != nil {
		return result{}, err
	}
	readers := append([]model.Reader(nil), sys0.Readers()...)
	tags := append([]model.Tag(nil), sys0.Tags()...)
	res := result{Readers: n, Tags: m}

	// Constructor alone: the pre-CSR NewSystem versus the CSR NewSystem.
	// All construction measurements use single-op windows: best-of over many
	// windows is overwhelmingly likely to catch at least one GC-free run,
	// where batching ops per window would smear collector pauses into every
	// sample.
	res.NewSystemCSRNs = timeOp(iters, 1, func() {
		if _, err := model.NewSystem(readers, tags); err != nil {
			panic(err)
		}
	})
	res.NewSystemRefNs = timeOp(iters, 1, func() {
		if _, err := model.BuildReferenceCoverage(readers, tags); err != nil {
			panic(err)
		}
	})
	res.NewSystemSpeedup = res.NewSystemRefNs / res.NewSystemCSRNs

	// Construction + first-solve prep: everything a driver pays before its
	// first solve.
	res.ConstructRefNs = timeOp(iters, 1, func() {
		model.BuildReferenceAdjacency(readers, tags)
	})
	var sys *model.System
	res.ConstructCSRNs = timeOp(iters, 1, func() {
		s, err2 := model.NewSystem(readers, tags)
		if err2 != nil {
			panic(err2)
		}
		s.WarmAdjacency()
		sys = s
	})
	res.ConstructSpeedup = res.ConstructRefNs / res.ConstructCSRNs

	// Equivalence spot check: the timed builds must describe the same
	// geometry (full element-for-element equality is covered by the model
	// package's differential tests).
	ref := model.BuildReferenceAdjacency(readers, tags)
	for u := 0; u < n; u++ {
		got, want := sys.TagsOf(u), ref.TagsOf[u]
		if len(got) != len(want) {
			return res, fmt.Errorf("tagsOf[%d]: CSR %d entries, reference %d", u, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				return res, fmt.Errorf("tagsOf[%d][%d]: CSR %d, reference %d", u, i, got[i], want[i])
			}
		}
	}

	// Clone churn: the per-solve setup of every parallel worker and serving
	// request — a System clone plus an attached evaluator, dropped right
	// after. Fresh path allocates O(readers+tags) buffers each cycle; the
	// pooled path recycles them.
	// Single-op windows: the fresh path allocates O(readers+tags) per
	// cycle, so batched windows are certain to absorb a collection — best-of
	// over many one-op windows finds the GC-free ones.
	res.CloneFreshNs = timeOp(iters, 1, func() {
		c := sys.Clone()
		e := model.NewWeightEval(c)
		e.Add(0)
		e.Close()
	})
	// Collect before timing the pooled path — a collection clears sync.Pools,
	// and the pooled cycle itself allocates nothing, so flushing first (then
	// re-warming) keeps pool misses out of every window.
	runtime.GC()
	func() {
		c := sys.ClonePooled()
		e := model.NewPooledWeightEval(c)
		e.Close()
		c.Release()
	}()
	res.ClonePooledNs = timeOp(iters, 50, func() {
		c := sys.ClonePooled()
		e := model.NewPooledWeightEval(c)
		e.Add(0)
		e.Close()
		c.Release()
	})
	res.CloneSpeedup = res.CloneFreshNs / res.ClonePooledNs

	// Steady-state allocation counts.
	X := feasibleProbeSet(sys)
	sys.Weight(X) // warm scratch
	res.WeightAllocs = testing.AllocsPerRun(100, func() { sys.Weight(X) })
	eval := model.NewWeightEval(sys)
	for _, v := range X {
		eval.Add(v)
	}
	probe := n - 1
	eval.MarginalGain(probe) // warm activeList capacity
	res.MarginalAllocs = testing.AllocsPerRun(100, func() { eval.MarginalGain(probe) })
	res.AddRemoveAllocs = testing.AllocsPerRun(100, func() { eval.Add(probe); eval.Remove(probe) })
	eval.Close()
	res.PooledCloneAllocs = testing.AllocsPerRun(200, func() {
		c := sys.ClonePooled()
		c.Release()
	})
	return res, nil
}

// feasibleProbeSet builds a deterministic feasible activation set greedily by
// index — the same probe wbench uses.
func feasibleProbeSet(sys *model.System) []int {
	var X []int
	for v := 0; v < sys.NumReaders(); v++ {
		ok := true
		for _, u := range X {
			if !sys.Independent(u, v) {
				ok = false
				break
			}
		}
		if ok {
			X = append(X, v)
		}
	}
	return X
}

// timeOp returns ns per op, best of iters timed repetitions of inner ops
// (best-of defends against scheduler noise on shared CI runners; one untimed
// warm-up absorbs cold caches, and starting from a freshly collected heap
// keeps the previous measurement's garbage out of this one).
func timeOp(iters, inner int, f func()) float64 {
	f()
	best := time.Duration(1<<63 - 1)
	for i := 0; i < iters; i++ {
		start := time.Now()
		for j := 0; j < inner; j++ {
			f()
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(inner)
}

func writeReport(rep report, out string, stdout io.Writer) error {
	var w io.Writer = stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// checkAgainstBaseline compares every gated ratio of the committed baseline
// against the fresh raw measurement (the committed gate already carries the
// -gate-margin shave). Exit codes: 0 pass, 1 regression or error.
func checkAgainstBaseline(fresh map[string]float64, baseFile string, tol float64, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(baseFile)
	if err != nil {
		fmt.Fprintf(stderr, "corebench: baseline: %v\n", err)
		return 1
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(stderr, "corebench: baseline %s: %v\n", baseFile, err)
		return 1
	}
	if len(base.Gates) == 0 {
		fmt.Fprintf(stderr, "corebench: baseline %s has no gates\n", baseFile)
		return 1
	}
	failed := 0
	for key, want := range base.Gates {
		got, ok := fresh[key]
		if !ok {
			fmt.Fprintf(stderr, "corebench: FAIL %s: tracked metric missing from fresh run\n", key)
			failed++
			continue
		}
		floor := want * (1 - tol)
		status := "ok"
		if got < floor {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(stdout, "corebench: %-4s %-28s baseline %6.2f  fresh %6.2f  floor %6.2f\n",
			status, key, want, got, floor)
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "corebench: %d gated metric(s) regressed beyond tolerance %.0f%%\n", failed, tol*100)
		return 1
	}
	fmt.Fprintf(stdout, "corebench: all %d gated metrics within tolerance %.0f%%\n", len(base.Gates), tol*100)
	return 0
}
