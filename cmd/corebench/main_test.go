package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// runCorebench drives the CLI entry point and returns its exit code plus
// captured output, so the tests exercise exactly what CI runs.
func runCorebench(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// tinyScaleArgs keeps the benchmark fast enough for the unit-test suite;
// ratio quality does not matter here, only the report/gate plumbing and the
// absolute allocation gates (which are scale-independent).
func tinyScaleArgs(extra ...string) []string {
	args := []string{"-scale", "12x80", "-iters", "2"}
	return append(args, extra...)
}

func TestReportWritesGatesAndPassesAllocGates(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")

	// Exit 0 is itself an assertion: the absolute allocation gates (zero
	// steady-state Weight/MarginalGain/Add+Remove allocs, bounded pooled
	// clone cycle) are enforced on every run including this one.
	code, _, stderr := runCorebench(t, tinyScaleArgs("-o", base)...)
	if code != 0 {
		t.Fatalf("report run failed (%d): %s", code, stderr)
	}

	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Result.Readers != 12 || rep.Result.Tags != 80 {
		t.Fatalf("unexpected scale in report: %+v", rep.Result)
	}
	for _, key := range []string{
		"newsystem_speedup@12x80", "construct_speedup@12x80", "clone_speedup@12x80",
	} {
		if _, ok := rep.Gates[key]; !ok {
			t.Errorf("gate %s missing from report (have %v)", key, rep.Gates)
		}
	}
	if rep.Result.WeightAllocs != 0 || rep.Result.MarginalAllocs != 0 || rep.Result.AddRemoveAllocs != 0 {
		t.Errorf("steady-state allocations nonzero: %+v", rep.Result)
	}
	if rep.Result.PooledCloneAllocs > pooledCloneAllocBound {
		t.Errorf("pooled clone cycle allocates %.1f/op, want <= %d",
			rep.Result.PooledCloneAllocs, pooledCloneAllocBound)
	}
}

// TestCheckSkipsBelowTwoCPUs pins the auto-skip contract on single-core
// runners; with 2+ CPUs the same invocation must self-check cleanly instead.
func TestCheckSelfPassOrSkip(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if code, _, stderr := runCorebench(t, tinyScaleArgs("-o", base)...); code != 0 {
		t.Fatalf("report run failed (%d): %s", code, stderr)
	}

	code, stdout, stderr := runCorebench(t, tinyScaleArgs(
		"-check", "-baseline", base, "-tolerance", "0.95",
		"-o", filepath.Join(dir, "fresh.json"))...)
	if code != 0 {
		t.Fatalf("self-check failed (%d):\n%s%s", code, stdout, stderr)
	}
	if runtime.NumCPU() < 2 && !strings.Contains(stdout, "skip") {
		t.Fatalf("expected skip notice on %d CPU(s), got: %s", runtime.NumCPU(), stdout)
	}
}

// TestCheckFailsOnInjectedSlowdown is the CI contract: if the committed
// baseline claims speedups the fresh run cannot reproduce — equivalently, if
// construction or the pooled clone path regresses against an honest
// baseline — the gate must exit non-zero.
func TestCheckFailsOnInjectedSlowdown(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skipf("-check auto-skips on %d CPU(s)", runtime.NumCPU())
	}
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if code, _, stderr := runCorebench(t, tinyScaleArgs("-o", base)...); code != 0 {
		t.Fatalf("report run failed (%d): %s", code, stderr)
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("decode report: %v", err)
	}
	for key := range rep.Gates {
		rep.Gates[key] *= 1000 // simulate a 1000x regression vs baseline
	}
	doctored := filepath.Join(dir, "doctored.json")
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("encode doctored baseline: %v", err)
	}
	if err := os.WriteFile(doctored, out, 0o644); err != nil {
		t.Fatalf("write doctored baseline: %v", err)
	}

	code, stdout, stderr := runCorebench(t, tinyScaleArgs(
		"-check", "-baseline", doctored, "-tolerance", "0.15",
		"-o", filepath.Join(dir, "fresh.json"))...)
	if code != 1 {
		t.Fatalf("want exit 1 on injected slowdown, got %d:\n%s%s", code, stdout, stderr)
	}
}

// A baseline tracking a metric the fresh run no longer produces (e.g. a
// silently dropped scale) must fail, not pass vacuously.
func TestCheckFailsOnMissingMetric(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skipf("-check auto-skips on %d CPU(s)", runtime.NumCPU())
	}
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if code, _, stderr := runCorebench(t, tinyScaleArgs("-o", base)...); code != 0 {
		t.Fatalf("report run failed (%d): %s", code, stderr)
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("decode report: %v", err)
	}
	rep.Gates["construct_speedup@999x999"] = 1.0
	doctored := filepath.Join(dir, "doctored.json")
	out, _ := json.Marshal(rep)
	if err := os.WriteFile(doctored, out, 0o644); err != nil {
		t.Fatalf("write doctored baseline: %v", err)
	}

	code, _, _ := runCorebench(t, tinyScaleArgs(
		"-check", "-baseline", doctored, "-tolerance", "0.95",
		"-o", filepath.Join(dir, "fresh.json"))...)
	if code != 1 {
		t.Fatalf("want exit 1 on missing tracked metric, got %d", code)
	}
}

func TestCheckFailsOnMissingBaselineFile(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skipf("-check auto-skips on %d CPU(s)", runtime.NumCPU())
	}
	code, _, stderr := runCorebench(t, tinyScaleArgs(
		"-check", "-baseline", filepath.Join(t.TempDir(), "nope.json"))...)
	if code != 1 {
		t.Fatalf("want exit 1 on missing baseline, got %d (%s)", code, stderr)
	}
}

func TestBadScaleRejected(t *testing.T) {
	code, _, _ := runCorebench(t, "-scale", "banana")
	if code != 2 {
		t.Fatalf("want exit 2 on bad -scale, got %d", code)
	}
}
