// Command rfidgen generates a random RFID deployment and writes it as JSON
// for later scheduling with rfidsched(1) or hand editing.
//
// Usage:
//
//	rfidgen -o warehouse.json -layout aisles -readers 60 -tags 2000
//	rfidgen -seed 7 -lambdaR 12 -lambdar 5 -o paper.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rfidsched/internal/deploy"
	"rfidsched/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rfidgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out     = fs.String("o", "", "output file (default stdout)")
		seed    = fs.Uint64("seed", 2011, "RNG seed")
		readers = fs.Int("readers", 50, "number of readers")
		tags    = fs.Int("tags", 1200, "number of tags")
		side    = fs.Float64("side", 100, "square side length")
		lambdaR = fs.Float64("lambdaR", 12, "Poisson mean of interference radii")
		lambdar = fs.Float64("lambdar", 5, "Poisson mean of interrogation radii")
		layout  = fs.String("layout", "uniform", "layout: uniform, clustered, aisles, hotspot, grid")
		stats   = fs.Bool("stats", false, "print deployment diagnostics (coverage, interference, RRc exposure)")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	stopProf, err := obs.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(stderr, "rfidgen: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "rfidgen: %v\n", err)
		}
	}()

	cfg := deploy.Config{
		Seed: *seed, NumReaders: *readers, NumTags: *tags, Side: *side,
		LambdaR: *lambdaR, LambdaSmallR: *lambdar,
	}
	switch *layout {
	case "uniform":
		cfg.Layout = deploy.Uniform
	case "clustered":
		cfg.Layout = deploy.Clustered
	case "aisles":
		cfg.Layout = deploy.Aisles
	case "hotspot":
		cfg.Layout = deploy.Hotspot
	case "grid":
		cfg.Layout = deploy.GridReaders
	default:
		fmt.Fprintf(stderr, "rfidgen: unknown layout %q\n", *layout)
		return 2
	}

	sys, err := deploy.Generate(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "rfidgen: %v\n", err)
		return 1
	}
	d := deploy.ToDeployment(sys)
	d.Comment = fmt.Sprintf("rfidgen seed=%d layout=%s lambdaR=%v lambdar=%v", *seed, *layout, *lambdaR, *lambdar)
	d.Side = *side

	if *stats {
		if err := deploy.Diagnose(sys).Write(stderr); err != nil {
			fmt.Fprintf(stderr, "rfidgen: %v\n", err)
			return 1
		}
	}

	if *out == "" {
		if err := d.Write(stdout); err != nil {
			fmt.Fprintf(stderr, "rfidgen: %v\n", err)
			return 1
		}
		return 0
	}
	if err := d.SaveFile(*out); err != nil {
		fmt.Fprintf(stderr, "rfidgen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %d readers, %d tags to %s\n", len(d.Readers), len(d.Tags), *out)
	return 0
}
