package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestGenToStdout(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-readers", "5", "-tags", "20", "-side", "30"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	var d struct {
		Readers []json.RawMessage `json:"readers"`
		Tags    []json.RawMessage `json:"tags"`
	}
	if err := json.Unmarshal(out.Bytes(), &d); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(d.Readers) != 5 || len(d.Tags) != 20 {
		t.Errorf("%d readers, %d tags", len(d.Readers), len(d.Tags))
	}
}

func TestGenToFile(t *testing.T) {
	path := t.TempDir() + "/dep.json"
	var out, errBuf bytes.Buffer
	code := run([]string{"-readers", "5", "-tags", "10", "-o", path}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "wrote 5 readers") {
		t.Errorf("confirmation missing: %q", out.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("file not created: %v", err)
	}
}

func TestGenAllLayouts(t *testing.T) {
	for _, layout := range []string{"uniform", "clustered", "aisles", "hotspot", "grid"} {
		var out, errBuf bytes.Buffer
		code := run([]string{"-readers", "6", "-tags", "12", "-layout", layout}, &out, &errBuf)
		if code != 0 {
			t.Errorf("%s: exit %d: %s", layout, code, errBuf.String())
		}
	}
}

func TestGenUnknownLayout(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-layout", "spiral"}, &out, &errBuf); code != 2 {
		t.Errorf("exit %d for unknown layout", code)
	}
}

func TestGenInvalidConfig(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-readers", "0"}, &out, &errBuf); code != 1 {
		t.Errorf("exit %d for invalid config", code)
	}
}

func TestGenBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-zzz"}, &out, &errBuf); code != 2 {
		t.Errorf("exit %d for bad flag", code)
	}
}

func TestGenDeterministicOutput(t *testing.T) {
	var a, b, errBuf bytes.Buffer
	if code := run([]string{"-seed", "9", "-readers", "4", "-tags", "8"}, &a, &errBuf); code != 0 {
		t.Fatal(errBuf.String())
	}
	if code := run([]string{"-seed", "9", "-readers", "4", "-tags", "8"}, &b, &errBuf); code != 0 {
		t.Fatal(errBuf.String())
	}
	if a.String() != b.String() {
		t.Error("same seed produced different deployments")
	}
}

func TestGenStatsFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-readers", "8", "-tags", "40", "-stats", "-o", t.TempDir() + "/d.json"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "interference edges:") {
		t.Errorf("diagnostics missing:\n%s", errBuf.String())
	}
}
