package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func runPsbench(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

// tinyArgs keeps the measured instances small enough for CI while still
// exercising every bench (including the determinism asserts inside them).
func tinyArgs(extra ...string) []string {
	args := []string{
		"-iters", "1",
		"-mwfs-scale", "30x600", "-mwfs-nodes", "20000",
		"-ptas-scale", "20x400",
	}
	return append(args, extra...)
}

func TestReportShape(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	_, errOut, code := runPsbench(t, tinyArgs("-o", out)...)
	if code != 0 {
		t.Fatalf("psbench exited %d: %s", code, errOut)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Scales) != 3 {
		t.Fatalf("expected 3 scales (mwfs, ptas, exactmcs), got %d", len(rep.Scales))
	}
	for _, sc := range rep.Scales {
		if sc.SeqNs <= 0 || sc.ParNs <= 0 || sc.Speedup <= 0 {
			t.Errorf("%s: non-positive timing: %+v", sc.Name, sc)
		}
	}
	if rep.Scales[1].AllocsPerOp == 0 {
		t.Errorf("ptas scale missing allocs/op")
	}
	floor, ok := rep.Gates["mwfs_parallel_efficiency@30x600"]
	if !ok || floor <= 0 {
		t.Fatalf("gate floor missing or non-positive: %v", rep.Gates)
	}
	if rep.GateWorkers != min(4, runtime.NumCPU()) {
		t.Errorf("gate workers %d, want min(4, NumCPU)=%d", rep.GateWorkers, min(4, runtime.NumCPU()))
	}
}

// TestCheckSkipsBelowTwoCPUs pins the auto-skip contract on single-core
// runners; on multi-core machines it instead pins the full check flow
// against a freshly measured baseline (floor 0 cannot fail).
func TestCheckFlow(t *testing.T) {
	base := filepath.Join(t.TempDir(), "base.json")
	_, errOut, code := runPsbench(t, tinyArgs("-o", base, "-floor", "0")...)
	if code != 0 {
		t.Fatalf("baseline run exited %d: %s", code, errOut)
	}
	stdout, errOut, code := runPsbench(t, tinyArgs("-check", "-baseline", base)...)
	if code != 0 {
		t.Fatalf("check exited %d: %s", code, errOut)
	}
	if runtime.NumCPU() < 2 {
		if !strings.Contains(stdout, "skip") {
			t.Fatalf("expected skip notice on %d CPU(s), got: %s", runtime.NumCPU(), stdout)
		}
	} else if !strings.Contains(stdout, "all 1 gated metrics") {
		t.Fatalf("expected passing gate summary, got: %s", stdout)
	}
}

// TestCheckAgainstBaseline exercises the floor comparison directly — the
// run()-level skip makes it unreachable on single-core CI.
func TestCheckAgainstBaseline(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep report) string {
		t.Helper()
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := write("base.json", report{Gates: map[string]float64{"mwfs_parallel_efficiency@1x1": 0.5}})

	cases := []struct {
		name  string
		fresh map[string]float64
		want  int
	}{
		{"above floor", map[string]float64{"mwfs_parallel_efficiency@1x1": 0.8}, 0},
		{"at floor", map[string]float64{"mwfs_parallel_efficiency@1x1": 0.5}, 0},
		{"below floor", map[string]float64{"mwfs_parallel_efficiency@1x1": 0.3}, 1},
		{"metric missing", map[string]float64{"other": 1.0}, 1},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if got := checkAgainstBaseline(tc.fresh, base, 4, &stdout, &stderr); got != tc.want {
			t.Errorf("%s: exit %d, want %d (stdout %q, stderr %q)",
				tc.name, got, tc.want, stdout.String(), stderr.String())
		}
	}

	empty := write("empty.json", report{})
	var stdout, stderr bytes.Buffer
	if got := checkAgainstBaseline(map[string]float64{}, empty, 4, &stdout, &stderr); got != 1 {
		t.Errorf("baseline without gates: exit %d, want 1", got)
	}
	if got := checkAgainstBaseline(map[string]float64{}, filepath.Join(dir, "nope.json"), 4, &stdout, &stderr); got != 1 {
		t.Errorf("missing baseline: exit %d, want 1", got)
	}
}

func TestParseScale(t *testing.T) {
	n, m, err := parseScale("120x2400")
	if err != nil || n != 120 || m != 2400 {
		t.Fatalf("parseScale(120x2400) = %d, %d, %v", n, m, err)
	}
	for _, bad := range []string{"", "x", "12", "0x5", "5x0", "-1x5"} {
		if _, _, err := parseScale(bad); err == nil {
			t.Errorf("parseScale(%q) accepted", bad)
		}
	}
}
