// Command psbench is the parallel-search benchmark and CI speedup gate. It
// times the three solvers that sit on the deterministic multi-core engine
// (internal/parsearch) — the branch-and-bound mwfs.Solve, the PTAS
// shifted-grid DP, and the exact-MCS state search — sequentially and at a
// fixed worker count, and archives the wall-clock speedups as JSON
// (BENCH_parallel.json).
//
// Gating absolute speedup is meaningless across machines (a 1-core CI
// runner cannot go faster than 1x), so the committed gate is a fixed
// PER-WORKER EFFICIENCY floor: speedup/workers measured at
// min(4, NumCPU) workers must stay above the floor (default 0.5, i.e. >= 2x
// wall-clock at 4 workers). `-check` re-measures and fails (exit 1) below
// the floor; on runners with fewer than 2 CPUs the gate auto-skips (exit 0)
// because no parallel speedup is physically possible there.
//
// The PTAS measurement doubles as an end-to-end determinism check (the
// parallel schedule must be bit-identical to the sequential one) and
// reports allocs/op: the DP's memo key is a comparable struct since the
// parallel rework — previously an fmt-formatted string costing two
// allocations per lookup on the solver's hottest line.
//
// Usage:
//
//	psbench -o BENCH_parallel.json
//	psbench -check -baseline BENCH_parallel.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"rfidsched/internal/core"
	"rfidsched/internal/deploy"
	"rfidsched/internal/mwfs"
)

// scaleResult is one solver's sequential-vs-parallel measurement.
type scaleResult struct {
	Name    string `json:"name"`
	Readers int    `json:"readers"`
	Tags    int    `json:"tags"`
	Workers int    `json:"workers"`

	SeqNs      float64 `json:"seq_ns"`
	ParNs      float64 `json:"par_ns"`
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"` // speedup / workers

	Nodes       int    `json:"nodes,omitempty"`         // mwfs: nodes expanded per solve
	AllocsPerOp uint64 `json:"allocs_per_op,omitempty"` // ptas: sequential allocations per OneShot
	Note        string `json:"note,omitempty"`
}

// report is the archived benchmark output. Gates maps metric keys to FIXED
// per-worker efficiency floors (not measurements): the committed floor is
// machine-independent, and -check compares a fresh efficiency against it.
type report struct {
	Seed        uint64             `json:"seed"`
	Iters       int                `json:"iters"`
	NumCPU      int                `json:"num_cpu"`
	GateWorkers int                `json:"gate_workers"`
	Scales      []scaleResult      `json:"scales"`
	Gates       map[string]float64 `json:"gates"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("psbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out       = fs.String("o", "", "write the fresh report JSON here (default stdout)")
		check     = fs.Bool("check", false, "gate mode: compare fresh efficiency against -baseline floors")
		baseFile  = fs.String("baseline", "BENCH_parallel.json", "committed baseline JSON for -check")
		seed      = fs.Uint64("seed", 2011, "deployment seed")
		iters     = fs.Int("iters", 5, "timed repetitions per measurement (best-of)")
		floor     = fs.Float64("floor", 0.5, "per-worker efficiency floor written into gates")
		workers   = fs.Int("workers", 0, "worker count to measure at (0 = min(4, NumCPU))")
		mwfsNodes = fs.Int("mwfs-nodes", 300000, "branch-and-bound node budget for the MWFS scale")
		mwfsScale = fs.String("mwfs-scale", "120x2400", "readersxtags for the MWFS scale")
		ptasScale = fs.String("ptas-scale", "50x1200", "readersxtags for the PTAS scale")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	gateW := *workers
	if gateW <= 0 {
		gateW = min(4, runtime.NumCPU())
	}
	if *check && runtime.NumCPU() < 2 {
		fmt.Fprintf(stdout, "psbench: skip: %d CPU(s) — parallel speedup is not measurable here\n", runtime.NumCPU())
		return 0
	}

	mwfsN, mwfsM, err := parseScale(*mwfsScale)
	if err != nil {
		fmt.Fprintf(stderr, "psbench: %v\n", err)
		return 2
	}
	ptasN, ptasM, err := parseScale(*ptasScale)
	if err != nil {
		fmt.Fprintf(stderr, "psbench: %v\n", err)
		return 2
	}

	rep := report{
		Seed: *seed, Iters: *iters, NumCPU: runtime.NumCPU(), GateWorkers: gateW,
		Gates: map[string]float64{},
	}

	mwfsRes, err := benchMWFS(mwfsN, mwfsM, *seed, *iters, gateW, *mwfsNodes)
	if err != nil {
		fmt.Fprintf(stderr, "psbench: mwfs: %v\n", err)
		return 1
	}
	rep.Scales = append(rep.Scales, mwfsRes)

	ptasRes, err := benchPTAS(ptasN, ptasM, *seed, *iters, gateW)
	if err != nil {
		fmt.Fprintf(stderr, "psbench: ptas: %v\n", err)
		return 1
	}
	rep.Scales = append(rep.Scales, ptasRes)

	emcsRes, err := benchExactMCS(*seed, *iters, gateW)
	if err != nil {
		fmt.Fprintf(stderr, "psbench: exactmcs: %v\n", err)
		return 1
	}
	rep.Scales = append(rep.Scales, emcsRes)

	// Only the MWFS solve is gated: it is the engine's dominant consumer
	// (every scheduler funnels into it) and its workload is a fixed node
	// budget, so its speedup is the cleanest pure-search signal. PTAS and
	// exact-MCS speedups stay in the report as informational context.
	gateKey := fmt.Sprintf("mwfs_parallel_efficiency@%dx%d", mwfsN, mwfsM)
	rep.Gates[gateKey] = *floor
	for _, sc := range rep.Scales {
		fmt.Fprintf(stderr, "psbench: %-8s %dx%d W=%d seq %.1fms par %.1fms speedup %.2fx efficiency %.2f\n",
			sc.Name, sc.Readers, sc.Tags, sc.Workers,
			sc.SeqNs/1e6, sc.ParNs/1e6, sc.Speedup, sc.Efficiency)
	}

	if err := writeReport(rep, *out, stdout); err != nil {
		fmt.Fprintf(stderr, "psbench: %v\n", err)
		return 1
	}

	if *check {
		fresh := map[string]float64{gateKey: mwfsRes.Efficiency}
		return checkAgainstBaseline(fresh, *baseFile, gateW, stdout, stderr)
	}
	return 0
}

func parseScale(s string) (int, int, error) {
	var n, m int
	if _, err := fmt.Sscanf(s, "%dx%d", &n, &m); err != nil || n <= 0 || m <= 0 {
		return 0, 0, fmt.Errorf("bad scale %q (want NxM)", s)
	}
	return n, m, nil
}

// benchMWFS times a fixed-budget branch-and-bound solve over every reader of
// the deployment, sequential vs pooled. The budget truncates the search at
// this scale, so the anytime sets may legitimately differ between modes (the
// untruncated bit-identity contract is pinned by the unit tests); the node
// budget is global in both, which is what makes the wall-clock comparable.
func benchMWFS(readers, tags int, seed uint64, iters, workers, maxNodes int) (scaleResult, error) {
	sys, err := deploy.Generate(deploy.Config{
		Seed: seed, NumReaders: readers, NumTags: tags,
		Side: 100, LambdaR: 12, LambdaSmallR: 5,
	})
	if err != nil {
		return scaleResult{}, err
	}
	cands := make([]int, readers)
	for i := range cands {
		cands[i] = i
	}
	res := scaleResult{Name: "mwfs", Readers: readers, Tags: tags, Workers: workers, Nodes: maxNodes}
	var seqW, parW int
	res.SeqNs = timeOp(iters, func() {
		seqW = mwfs.Solve(sys, cands, mwfs.Options{MaxNodes: maxNodes}).Weight
	})
	res.ParNs = timeOp(iters, func() {
		parW = mwfs.Solve(sys, cands, mwfs.Options{MaxNodes: maxNodes, Workers: workers}).Weight
	})
	if seqW <= 0 || parW <= 0 {
		return res, fmt.Errorf("degenerate instance: weights seq=%d par=%d", seqW, parW)
	}
	res.Speedup = res.SeqNs / res.ParNs
	res.Efficiency = res.Speedup / float64(max(workers, 1))
	return res, nil
}

// benchPTAS times Algorithm 1 end to end, asserts the pooled schedule is
// bit-identical to the sequential one, and reports sequential allocs/op.
func benchPTAS(readers, tags int, seed uint64, iters, workers int) (scaleResult, error) {
	sys, err := deploy.Generate(deploy.Config{
		Seed: seed, NumReaders: readers, NumTags: tags,
		Side: 100, LambdaR: 12, LambdaSmallR: 5,
	})
	if err != nil {
		return scaleResult{}, err
	}
	res := scaleResult{
		Name: "ptas", Readers: readers, Tags: tags, Workers: workers,
		Note: "memo key: comparable struct (was fmt-formatted string, ~2 allocs/lookup)",
	}
	var seqSet, parSet []int
	res.SeqNs = timeOp(iters, func() {
		p := core.NewPTAS()
		seqSet, err = p.OneShot(sys)
	})
	if err != nil {
		return res, err
	}
	res.ParNs = timeOp(iters, func() {
		p := core.NewPTAS()
		p.Workers = workers
		parSet, err = p.OneShot(sys)
	})
	if err != nil {
		return res, err
	}
	if !sameInts(seqSet, parSet) {
		return res, fmt.Errorf("parallel schedule diverged: seq %v, par %v", seqSet, parSet)
	}
	res.Speedup = res.SeqNs / res.ParNs
	res.Efficiency = res.Speedup / float64(max(workers, 1))

	// Allocation note for the memo-key rework: allocations of one
	// sequential OneShot (steady state, after the timed warm runs above).
	var m1, m2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m1)
	if _, err := core.NewPTAS().OneShot(sys); err != nil {
		return res, err
	}
	runtime.ReadMemStats(&m2)
	res.AllocsPerOp = m2.Mallocs - m1.Mallocs
	return res, nil
}

// benchExactMCS times the BFS state search on an instance near its caps.
// Informational only: the state space is too irregular to gate.
func benchExactMCS(seed uint64, iters, workers int) (scaleResult, error) {
	sys, err := deploy.Generate(deploy.Config{
		Seed: seed, NumReaders: 12, NumTags: 20,
		Side: 60, LambdaR: 14, LambdaSmallR: 7,
	})
	if err != nil {
		return scaleResult{}, err
	}
	res := scaleResult{Name: "exactmcs", Readers: 12, Tags: 20, Workers: workers}
	var seqOpt, parOpt int
	res.SeqNs = timeOp(iters, func() {
		seqOpt, err = core.ExactMCS{}.Solve(sys)
	})
	if err != nil {
		return res, err
	}
	res.ParNs = timeOp(iters, func() {
		parOpt, err = core.ExactMCS{Workers: workers}.Solve(sys)
	})
	if err != nil {
		return res, err
	}
	if seqOpt != parOpt {
		return res, fmt.Errorf("exact MCS diverged: seq %d, par %d", seqOpt, parOpt)
	}
	res.Speedup = res.SeqNs / res.ParNs
	res.Efficiency = res.Speedup / float64(max(workers, 1))
	return res, nil
}

// timeOp returns ns per op, best of iters timed repetitions (best-of
// defends against scheduler noise on shared CI runners; one untimed warm-up
// absorbs cold caches).
func timeOp(iters int, f func()) float64 {
	f()
	best := time.Duration(1<<63 - 1)
	for i := 0; i < iters; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds())
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func writeReport(rep report, out string, stdout io.Writer) error {
	var w io.Writer = stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// checkAgainstBaseline compares the fresh per-worker efficiency against the
// committed FIXED floors. gateW only feeds the failure message — the floor
// itself is already per-worker, so it applies unchanged at any measured
// worker count. Exit codes: 0 pass, 1 below floor or error.
func checkAgainstBaseline(fresh map[string]float64, baseFile string, gateW int, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(baseFile)
	if err != nil {
		fmt.Fprintf(stderr, "psbench: baseline: %v\n", err)
		return 1
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(stderr, "psbench: baseline %s: %v\n", baseFile, err)
		return 1
	}
	if len(base.Gates) == 0 {
		fmt.Fprintf(stderr, "psbench: baseline %s has no gates\n", baseFile)
		return 1
	}
	failed := 0
	for key, floor := range base.Gates {
		got, ok := fresh[key]
		if !ok {
			fmt.Fprintf(stderr, "psbench: FAIL %s: gated metric missing from fresh run\n", key)
			failed++
			continue
		}
		status := "ok"
		if got < floor {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(stdout, "psbench: %-4s %-44s floor %.2f  fresh %.2f  (%.2fx at %d workers)\n",
			status, key, floor, got, got*float64(gateW), gateW)
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "psbench: %d gated metric(s) below the efficiency floor\n", failed)
		return 1
	}
	fmt.Fprintf(stdout, "psbench: all %d gated metrics at or above their floors\n", len(base.Gates))
	return 0
}
