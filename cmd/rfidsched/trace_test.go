package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rfidsched/internal/obs"
)

// TestSchedTraceFlag records a single-run trace and checks the summarizer
// can reconstruct it: one run, a run_completed event, and per-slot counts
// consistent with the schedule the CLI printed.
func TestSchedTraceFlag(t *testing.T) {
	dep := writeDeployment(t)
	trace := filepath.Join(t.TempDir(), "run.jsonl")
	var out, errBuf bytes.Buffer
	code := run([]string{"-in", dep, "-alg", "alg3", "-trace", trace}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sum, err := obs.ReadSummary(f)
	if err != nil {
		t.Fatalf("trace is not valid JSONL: %v", err)
	}
	if got := len(sum.RunIDs()); got != 1 {
		t.Fatalf("expected a single run, got %v", sum.RunIDs())
	}
	rs := sum.Runs[sum.RunIDs()[0]]
	if rs.Status != "ok" {
		t.Errorf("fault-free run traced as %q", rs.Status)
	}
	if rs.Elections == 0 {
		t.Error("alg3 run traced no elections")
	}
	if !strings.Contains(out.String(), "schedule:") {
		t.Fatalf("missing schedule line:\n%s", out.String())
	}
}

// TestSchedProfilesWritten checks the pprof flags on the schedule CLI.
func TestSchedProfilesWritten(t *testing.T) {
	dep := writeDeployment(t)
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pb.gz"), filepath.Join(dir, "mem.pb.gz")
	var out, errBuf bytes.Buffer
	code := run([]string{"-in", dep, "-alg", "alg2", "-cpuprofile", cpu, "-memprofile", mem}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
