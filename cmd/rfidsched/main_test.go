package main

import (
	"bytes"
	"strings"
	"testing"

	"rfidsched/internal/deploy"
)

// writeDeployment creates a small deployment file for CLI tests.
func writeDeployment(t *testing.T) string {
	t.Helper()
	sys, err := deploy.Generate(deploy.Config{
		Seed: 3, NumReaders: 12, NumTags: 150, Side: 50,
		LambdaR: 10, LambdaSmallR: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/dep.json"
	if err := deploy.ToDeployment(sys).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSchedAllAlgorithms(t *testing.T) {
	path := writeDeployment(t)
	for _, alg := range []string{"alg1", "alg2", "alg3", "ghc", "colorwave", "random", "exact"} {
		var out, errBuf bytes.Buffer
		code := run([]string{"-in", path, "-alg", alg}, &out, &errBuf)
		if code != 0 {
			t.Errorf("%s: exit %d: %s", alg, code, errBuf.String())
			continue
		}
		if !strings.Contains(out.String(), "schedule:") {
			t.Errorf("%s: missing schedule line:\n%s", alg, out.String())
		}
	}
}

func TestSchedVerifyFlag(t *testing.T) {
	path := writeDeployment(t)
	var out, errBuf bytes.Buffer
	code := run([]string{"-in", path, "-alg", "alg2", "-verify"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "verified:") {
		t.Errorf("missing verification line:\n%s", out.String())
	}
}

func TestSchedVerboseSlots(t *testing.T) {
	path := writeDeployment(t)
	var out, errBuf bytes.Buffer
	code := run([]string{"-in", path, "-alg", "alg2", "-v"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "slot   0:") {
		t.Errorf("missing per-slot lines:\n%s", out.String())
	}
}

func TestSchedMissingInput(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Errorf("exit %d without -in", code)
	}
}

func TestSchedBadFile(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-in", "/nonexistent.json"}, &out, &errBuf); code != 1 {
		t.Errorf("exit %d for missing file", code)
	}
}

func TestSchedUnknownAlgorithm(t *testing.T) {
	path := writeDeployment(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-in", path, "-alg", "quantum"}, &out, &errBuf); code != 2 {
		t.Errorf("exit %d for unknown algorithm", code)
	}
}
