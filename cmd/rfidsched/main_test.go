package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"reflect"
	"strings"
	"testing"

	"rfidsched/internal/checkpoint"
	"rfidsched/internal/core"
	"rfidsched/internal/deploy"
	"rfidsched/internal/graph"
	"rfidsched/internal/model"
	"rfidsched/internal/obs"
)

// writeDeployment creates a small deployment file for CLI tests.
func writeDeployment(t *testing.T) string {
	t.Helper()
	sys, err := deploy.Generate(deploy.Config{
		Seed: 3, NumReaders: 12, NumTags: 150, Side: 50,
		LambdaR: 10, LambdaSmallR: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/dep.json"
	if err := deploy.ToDeployment(sys).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSchedAllAlgorithms(t *testing.T) {
	path := writeDeployment(t)
	for _, alg := range []string{"alg1", "alg2", "alg3", "ghc", "colorwave", "random", "exact"} {
		var out, errBuf bytes.Buffer
		code := run([]string{"-in", path, "-alg", alg}, &out, &errBuf)
		if code != 0 {
			t.Errorf("%s: exit %d: %s", alg, code, errBuf.String())
			continue
		}
		if !strings.Contains(out.String(), "schedule:") {
			t.Errorf("%s: missing schedule line:\n%s", alg, out.String())
		}
	}
}

func TestSchedVerifyFlag(t *testing.T) {
	path := writeDeployment(t)
	var out, errBuf bytes.Buffer
	code := run([]string{"-in", path, "-alg", "alg2", "-verify"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "verified:") {
		t.Errorf("missing verification line:\n%s", out.String())
	}
}

func TestSchedVerboseSlots(t *testing.T) {
	path := writeDeployment(t)
	var out, errBuf bytes.Buffer
	code := run([]string{"-in", path, "-alg", "alg2", "-v"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "slot   0:") {
		t.Errorf("missing per-slot lines:\n%s", out.String())
	}
}

func TestSchedMissingInput(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Errorf("exit %d without -in", code)
	}
}

func TestSchedBadFile(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-in", "/nonexistent.json"}, &out, &errBuf); code != 1 {
		t.Errorf("exit %d for missing file", code)
	}
}

func TestSchedUnknownAlgorithm(t *testing.T) {
	path := writeDeployment(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-in", path, "-alg", "quantum"}, &out, &errBuf); code != 2 {
		t.Errorf("exit %d for unknown algorithm", code)
	}
}

func TestSchedCheckpointResume(t *testing.T) {
	path := writeDeployment(t)
	ckpt := t.TempDir() + "/run.ckpt"

	var out1, err1 bytes.Buffer
	if code := run([]string{"-in", path, "-alg", "colorwave", "-checkpoint", ckpt}, &out1, &err1); code != 0 {
		t.Fatalf("checkpointed run: exit %d: %s", code, err1.String())
	}

	// Simulate a crash: keep roughly half the stream, tearing the last
	// surviving line, then resume and demand the identical summary.
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var out2, err2 bytes.Buffer
	if code := run([]string{"-in", path, "-alg", "colorwave", "-checkpoint", ckpt, "-resume", "-verify"}, &out2, &err2); code != 0 {
		t.Fatalf("resumed run: exit %d: %s", code, err2.String())
	}
	line := func(b *bytes.Buffer) string {
		for _, l := range strings.Split(b.String(), "\n") {
			if strings.HasPrefix(l, "schedule:") {
				return l
			}
		}
		return ""
	}
	if line(&out2) == "" || line(&out1) != line(&out2) {
		t.Errorf("resumed schedule differs:\n  first: %s\n resume: %s", line(&out1), line(&out2))
	}
}

func TestSchedDeadlineFlagsStillComplete(t *testing.T) {
	path := writeDeployment(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-in", path, "-alg", "alg1", "-slot-polls", "1", "-verify"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "anytime slots") {
		t.Errorf("starved poll budget reported no anytime slots:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "verified:") {
		t.Errorf("budgeted schedule failed verification:\n%s", out.String())
	}
}

func TestSchedFlagValidation(t *testing.T) {
	path := writeDeployment(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-in", path, "-resume"}, &out, &errBuf); code != 2 {
		t.Errorf("exit %d for -resume without -checkpoint", code)
	}
	if code := run([]string{"-in", path, "-supervise", "2"}, &out, &errBuf); code != 2 {
		t.Errorf("exit %d for -supervise without -checkpoint", code)
	}
}

// panicOnce panics at a chosen slot on its first run, then behaves.
type panicOnce struct {
	inner model.OneShotScheduler
	calls *int
	at    int
}

func (p panicOnce) Name() string { return p.inner.Name() }

func (p panicOnce) OneShot(sys *model.System) ([]int, error) {
	*p.calls++
	if *p.calls == p.at {
		panic("injected crash")
	}
	return p.inner.OneShot(sys)
}

func TestSupervisorRestartsFromCheckpoint(t *testing.T) {
	dep, err := deploy.LoadFile(writeDeployment(t))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dep.ToSystem()
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromSystem(ref)

	want, err := core.RunMCS(ref.Clone(), core.NewGrowth(g, 1.25), core.MCSOptions{RecordSlots: true})
	if err != nil {
		t.Fatal(err)
	}
	if want.Size < 2 {
		t.Fatalf("degenerate reference run (%d slots)", want.Size)
	}

	calls := 0
	var errBuf bytes.Buffer
	sup := supervisor{
		newSys: dep.ToSystem,
		newSched: func() (model.OneShotScheduler, error) {
			return panicOnce{inner: core.NewGrowth(g, 1.25), calls: &calls, at: 2}, nil
		},
		opts:     core.MCSOptions{RecordSlots: true},
		ckptPath: t.TempDir() + "/sup.ckpt",
		restarts: 2,
		stderr:   &errBuf,
	}
	got, err := sup.run()
	if err != nil {
		t.Fatalf("supervised run: %v (stderr: %s)", err, errBuf.String())
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("supervised result diverged:\n got %+v\nwant %+v", got, want)
	}
	if !strings.Contains(errBuf.String(), "restarting from") {
		t.Errorf("supervisor restarted silently:\n%s", errBuf.String())
	}
}

func TestSupervisorGivesUpAfterBudget(t *testing.T) {
	dep, err := deploy.LoadFile(writeDeployment(t))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	var errBuf bytes.Buffer
	sup := supervisor{
		newSys: dep.ToSystem,
		newSched: func() (model.OneShotScheduler, error) {
			// Panics on EVERY first slot of every attempt.
			calls = 0
			sys, _ := dep.ToSystem()
			g := graph.FromSystem(sys)
			return panicOnce{inner: core.NewGrowth(g, 1.25), calls: &calls, at: 1}, nil
		},
		opts:     core.MCSOptions{},
		ckptPath: t.TempDir() + "/sup.ckpt",
		restarts: 1,
		stderr:   &errBuf,
	}
	if _, err := sup.run(); err == nil {
		t.Fatal("supervisor succeeded through a permanent crash")
	} else if !strings.Contains(err.Error(), "panicked") {
		t.Errorf("give-up error does not surface the panic: %v", err)
	}
}

// TestSchedHTTPServesTelemetry drives the full -http path: start a run with
// a lingering telemetry server, scrape every endpoint while it is up, and
// check the exposition carries the live run's metrics.
func TestSchedHTTPServesTelemetry(t *testing.T) {
	path := writeDeployment(t)

	// stderr goes through a pipe so the test can read the bound address the
	// moment the server prints it, while the run continues concurrently.
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	done := make(chan int, 1)
	go func() {
		code := run([]string{"-in", path, "-alg", "alg2",
			"-http", "127.0.0.1:0", "-http-linger", "2s"}, &out, pw)
		pw.Close()
		done <- code
	}()

	sc := bufio.NewScanner(pr)
	var addr string
	for sc.Scan() {
		if _, rest, ok := strings.Cut(sc.Text(), "listening on http://"); ok {
			addr = strings.TrimSuffix(rest, "/")
			break
		}
	}
	if addr == "" {
		t.Fatalf("server address never printed (exit %d)", <-done)
	}
	go io.Copy(io.Discard, pr) // keep draining so the run never blocks on stderr

	get := func(p string) (int, string) {
		resp, err := http.Get("http://" + addr + p)
		if err != nil {
			t.Fatalf("GET %s: %v", p, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: %d %q", code, body)
	}
	// The run is short; by the linger window the gauges hold final values.
	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, "mcs_slot_current") ||
		!strings.Contains(body, "span_solve_seconds_count") {
		t.Errorf("/metrics missing live series (status %d):\n%s", code, body)
	}
	if code, body := get("/runs"); code != 200 || !strings.Contains(body, "tags_read") {
		t.Errorf("/runs: %d %q", code, body)
	}
	if code, body := get("/debug/flight"); code != 200 || !strings.Contains(body, "slot_planned") {
		t.Errorf("/debug/flight: %d %q", code, body)
	}

	if code := <-done; code != 0 {
		t.Fatalf("run exited %d", code)
	}
	if !strings.Contains(out.String(), "schedule:") {
		t.Errorf("missing schedule line:\n%s", out.String())
	}
}

// TestSupervisorArchivesFlightRecord is the crash post-mortem contract: a
// panicking attempt leaves a per-attempt flight-record JSONL whose final
// event lines up with the checkpoint's last durable slot.
func TestSupervisorArchivesFlightRecord(t *testing.T) {
	dep, err := deploy.LoadFile(writeDeployment(t))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := dep.ToSystem()
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromSystem(sys)

	dir := t.TempDir()
	ckpt := dir + "/sup.ckpt"
	flight := obs.NewFlightRecorder(64)
	calls := 0
	var errBuf bytes.Buffer
	sup := supervisor{
		newSys: dep.ToSystem,
		newSched: func() (model.OneShotScheduler, error) {
			return panicOnce{inner: core.NewGrowth(g, 1.25), calls: &calls, at: 3}, nil
		},
		opts:       core.MCSOptions{Tracer: flight},
		ckptPath:   ckpt,
		restarts:   2,
		stderr:     &errBuf,
		flight:     flight,
		flightBase: ckpt + ".flight",
	}
	if _, err := sup.run(); err != nil {
		t.Fatalf("supervised run: %v (stderr: %s)", err, errBuf.String())
	}

	raw, err := os.ReadFile(ckpt + ".flight.attempt0.jsonl")
	if err != nil {
		t.Fatalf("crash left no flight record: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("flight record is empty")
	}
	var last obs.Event
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("flight record tail is not an event: %v", err)
	}

	// The crash hit slot 2's solve, so the last durable checkpoint slot is 1
	// — and the flight record's final event must be exactly its write.
	st, err := checkpoint.LoadMCS(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	// The resumed attempt rewrote the stream to completion; the archive was
	// taken at crash time, so compare against the crash-time tail instead:
	// the final archived event is the checkpoint write of the last slot the
	// crashed attempt made durable.
	if last.Type != obs.CheckpointWritten {
		t.Fatalf("flight tail is %q, want %q", last.Type, obs.CheckpointWritten)
	}
	if wantLast := 1; last.T != wantLast {
		t.Errorf("flight tail records slot %d, want %d (crash at slot 2)", last.T, wantLast)
	}
	if len(st.Slots) == 0 || st.Slots[len(st.Slots)-1].Slot < last.T {
		t.Errorf("final checkpoint (%d slots) lost the slot the flight tail proves durable (%d)",
			len(st.Slots), last.T)
	}
}

// TestSchedFlightDisabled: -flight 0 must switch the recorder off without
// disturbing the run.
func TestSchedFlightDisabled(t *testing.T) {
	path := writeDeployment(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-in", path, "-alg", "alg2", "-flight", "0"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "schedule:") {
		t.Errorf("missing schedule line:\n%s", out.String())
	}
}
