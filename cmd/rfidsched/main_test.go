package main

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"

	"rfidsched/internal/core"
	"rfidsched/internal/deploy"
	"rfidsched/internal/graph"
	"rfidsched/internal/model"
)

// writeDeployment creates a small deployment file for CLI tests.
func writeDeployment(t *testing.T) string {
	t.Helper()
	sys, err := deploy.Generate(deploy.Config{
		Seed: 3, NumReaders: 12, NumTags: 150, Side: 50,
		LambdaR: 10, LambdaSmallR: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/dep.json"
	if err := deploy.ToDeployment(sys).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSchedAllAlgorithms(t *testing.T) {
	path := writeDeployment(t)
	for _, alg := range []string{"alg1", "alg2", "alg3", "ghc", "colorwave", "random", "exact"} {
		var out, errBuf bytes.Buffer
		code := run([]string{"-in", path, "-alg", alg}, &out, &errBuf)
		if code != 0 {
			t.Errorf("%s: exit %d: %s", alg, code, errBuf.String())
			continue
		}
		if !strings.Contains(out.String(), "schedule:") {
			t.Errorf("%s: missing schedule line:\n%s", alg, out.String())
		}
	}
}

func TestSchedVerifyFlag(t *testing.T) {
	path := writeDeployment(t)
	var out, errBuf bytes.Buffer
	code := run([]string{"-in", path, "-alg", "alg2", "-verify"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "verified:") {
		t.Errorf("missing verification line:\n%s", out.String())
	}
}

func TestSchedVerboseSlots(t *testing.T) {
	path := writeDeployment(t)
	var out, errBuf bytes.Buffer
	code := run([]string{"-in", path, "-alg", "alg2", "-v"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "slot   0:") {
		t.Errorf("missing per-slot lines:\n%s", out.String())
	}
}

func TestSchedMissingInput(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Errorf("exit %d without -in", code)
	}
}

func TestSchedBadFile(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-in", "/nonexistent.json"}, &out, &errBuf); code != 1 {
		t.Errorf("exit %d for missing file", code)
	}
}

func TestSchedUnknownAlgorithm(t *testing.T) {
	path := writeDeployment(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-in", path, "-alg", "quantum"}, &out, &errBuf); code != 2 {
		t.Errorf("exit %d for unknown algorithm", code)
	}
}

func TestSchedCheckpointResume(t *testing.T) {
	path := writeDeployment(t)
	ckpt := t.TempDir() + "/run.ckpt"

	var out1, err1 bytes.Buffer
	if code := run([]string{"-in", path, "-alg", "colorwave", "-checkpoint", ckpt}, &out1, &err1); code != 0 {
		t.Fatalf("checkpointed run: exit %d: %s", code, err1.String())
	}

	// Simulate a crash: keep roughly half the stream, tearing the last
	// surviving line, then resume and demand the identical summary.
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var out2, err2 bytes.Buffer
	if code := run([]string{"-in", path, "-alg", "colorwave", "-checkpoint", ckpt, "-resume", "-verify"}, &out2, &err2); code != 0 {
		t.Fatalf("resumed run: exit %d: %s", code, err2.String())
	}
	line := func(b *bytes.Buffer) string {
		for _, l := range strings.Split(b.String(), "\n") {
			if strings.HasPrefix(l, "schedule:") {
				return l
			}
		}
		return ""
	}
	if line(&out2) == "" || line(&out1) != line(&out2) {
		t.Errorf("resumed schedule differs:\n  first: %s\n resume: %s", line(&out1), line(&out2))
	}
}

func TestSchedDeadlineFlagsStillComplete(t *testing.T) {
	path := writeDeployment(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-in", path, "-alg", "alg1", "-slot-polls", "1", "-verify"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "anytime slots") {
		t.Errorf("starved poll budget reported no anytime slots:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "verified:") {
		t.Errorf("budgeted schedule failed verification:\n%s", out.String())
	}
}

func TestSchedFlagValidation(t *testing.T) {
	path := writeDeployment(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-in", path, "-resume"}, &out, &errBuf); code != 2 {
		t.Errorf("exit %d for -resume without -checkpoint", code)
	}
	if code := run([]string{"-in", path, "-supervise", "2"}, &out, &errBuf); code != 2 {
		t.Errorf("exit %d for -supervise without -checkpoint", code)
	}
}

// panicOnce panics at a chosen slot on its first run, then behaves.
type panicOnce struct {
	inner model.OneShotScheduler
	calls *int
	at    int
}

func (p panicOnce) Name() string { return p.inner.Name() }

func (p panicOnce) OneShot(sys *model.System) ([]int, error) {
	*p.calls++
	if *p.calls == p.at {
		panic("injected crash")
	}
	return p.inner.OneShot(sys)
}

func TestSupervisorRestartsFromCheckpoint(t *testing.T) {
	dep, err := deploy.LoadFile(writeDeployment(t))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dep.ToSystem()
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromSystem(ref)

	want, err := core.RunMCS(ref.Clone(), core.NewGrowth(g, 1.25), core.MCSOptions{RecordSlots: true})
	if err != nil {
		t.Fatal(err)
	}
	if want.Size < 2 {
		t.Fatalf("degenerate reference run (%d slots)", want.Size)
	}

	calls := 0
	var errBuf bytes.Buffer
	sup := supervisor{
		newSys: dep.ToSystem,
		newSched: func() (model.OneShotScheduler, error) {
			return panicOnce{inner: core.NewGrowth(g, 1.25), calls: &calls, at: 2}, nil
		},
		opts:     core.MCSOptions{RecordSlots: true},
		ckptPath: t.TempDir() + "/sup.ckpt",
		restarts: 2,
		stderr:   &errBuf,
	}
	got, err := sup.run()
	if err != nil {
		t.Fatalf("supervised run: %v (stderr: %s)", err, errBuf.String())
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("supervised result diverged:\n got %+v\nwant %+v", got, want)
	}
	if !strings.Contains(errBuf.String(), "restarting from") {
		t.Errorf("supervisor restarted silently:\n%s", errBuf.String())
	}
}

func TestSupervisorGivesUpAfterBudget(t *testing.T) {
	dep, err := deploy.LoadFile(writeDeployment(t))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	var errBuf bytes.Buffer
	sup := supervisor{
		newSys: dep.ToSystem,
		newSched: func() (model.OneShotScheduler, error) {
			// Panics on EVERY first slot of every attempt.
			calls = 0
			sys, _ := dep.ToSystem()
			g := graph.FromSystem(sys)
			return panicOnce{inner: core.NewGrowth(g, 1.25), calls: &calls, at: 1}, nil
		},
		opts:     core.MCSOptions{},
		ckptPath: t.TempDir() + "/sup.ckpt",
		restarts: 1,
		stderr:   &errBuf,
	}
	if _, err := sup.run(); err == nil {
		t.Fatal("supervisor succeeded through a permanent crash")
	} else if !strings.Contains(err.Error(), "panicked") {
		t.Errorf("give-up error does not surface the panic: %v", err)
	}
}
