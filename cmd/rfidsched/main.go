// Command rfidsched computes a reader-activation covering schedule for a
// deployment JSON file (see rfidgen) and prints it slot by slot.
//
// Usage:
//
//	rfidsched -in paper.json -alg alg2
//	rfidsched -in warehouse.json -alg alg1 -v
//	rfidsched -in paper.json -alg alg3 -verify
//	rfidsched -in paper.json -alg alg2 -trace run.jsonl
//
// Algorithms: alg1 (PTAS, needs locations — always available here since the
// file stores them), alg2 (centralized, interference graph only), alg3
// (distributed), ghc, colorwave, random, exact.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rfidsched/internal/baseline"
	"rfidsched/internal/core"
	"rfidsched/internal/deploy"
	"rfidsched/internal/graph"
	"rfidsched/internal/model"
	"rfidsched/internal/obs"
	"rfidsched/internal/randx"
	"rfidsched/internal/verify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rfidsched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in      = fs.String("in", "", "deployment JSON file (required)")
		alg     = fs.String("alg", "alg2", "algorithm: alg1, alg2, alg3, ghc, colorwave, random, exact")
		rho     = fs.Float64("rho", 1.25, "growth threshold for alg2/alg3")
		seed    = fs.Uint64("seed", 2011, "seed for randomized algorithms")
		verbose = fs.Bool("v", false, "print the active reader set of every slot")
		check   = fs.Bool("verify", false, "independently re-verify the schedule against the model")
		trace   = fs.String("trace", "", "write a JSONL slot-level trace to this file")
		workers = fs.Int("workers", 0, "solver worker goroutines for alg1/alg2/exact (0 = sequential; results are identical at any value)")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *in == "" {
		fmt.Fprintln(stderr, "rfidsched: -in is required")
		fs.Usage()
		return 2
	}

	stopProf, err := obs.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(stderr, "rfidsched: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "rfidsched: %v\n", err)
		}
	}()

	d, err := deploy.LoadFile(*in)
	if err != nil {
		fmt.Fprintf(stderr, "rfidsched: %v\n", err)
		return 1
	}
	sys, err := d.ToSystem()
	if err != nil {
		fmt.Fprintf(stderr, "rfidsched: %v\n", err)
		return 1
	}
	g := graph.FromSystem(sys)

	var sched model.OneShotScheduler
	switch *alg {
	case "alg1":
		sched = core.NewPTAS()
	case "alg2":
		sched = core.NewGrowth(g, *rho)
	case "alg3":
		sched = core.NewDistributed(g, *rho)
	case "ghc":
		sched = baseline.GHC{}
	case "colorwave":
		sched = baseline.NewColorwave(g, *seed)
	case "random":
		rng := randx.New(*seed)
		sched = &baseline.Random{Next: rng.Intn}
	case "exact":
		sched = &baseline.Exact{}
	default:
		fmt.Fprintf(stderr, "rfidsched: unknown algorithm %q\n", *alg)
		return 2
	}

	fmt.Fprintf(stdout, "deployment: %d readers, %d tags (%d coverable), interference graph: %d edges\n",
		sys.NumReaders(), sys.NumTags(), sys.CoverableCount(), g.M())

	var tr obs.Tracer
	var traceSink *obs.JSONL
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintf(stderr, "rfidsched: %v\n", err)
			return 1
		}
		defer f.Close()
		traceSink = obs.NewJSONL(f)
		tr = traceSink
		if d, ok := sched.(*core.Distributed); ok {
			d.Tracer = tr
		}
	}

	pristine := sys.Clone()
	res, err := core.RunMCS(sys, sched, core.MCSOptions{RecordSlots: true, Tracer: tr, SolverWorkers: *workers})
	if err != nil {
		fmt.Fprintf(stderr, "rfidsched: %v\n", err)
		return 1
	}
	if traceSink != nil {
		if err := traceSink.Err(); err != nil {
			fmt.Fprintf(stderr, "rfidsched: trace: %v\n", err)
			return 1
		}
	}
	if *check {
		// The paper's three algorithms must produce feasible slots; the
		// baselines are only held to the physical accounting rules.
		feasible := *alg == "alg1" || *alg == "alg2" || *alg == "alg3" || *alg == "exact"
		rep, err := verify.Schedule(pristine, res, verify.Options{RequireFeasible: feasible})
		if err != nil {
			fmt.Fprintf(stderr, "rfidsched: verification FAILED: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "verified:   %d slots replayed, %d tags served, %d feasible slots, %d fallbacks\n",
			rep.Slots, rep.TagsServed, rep.FeasibleSlots, rep.FallbackSlots)
	}
	fmt.Fprintf(stdout, "algorithm:  %s\n", res.Algorithm)
	fmt.Fprintf(stdout, "schedule:   %d slots, %d tags read", res.Size, res.TotalRead)
	if res.Fallbacks > 0 {
		fmt.Fprintf(stdout, " (%d fallback slots)", res.Fallbacks)
	}
	if res.Incomplete {
		fmt.Fprintf(stdout, " INCOMPLETE")
	}
	fmt.Fprintln(stdout)
	if *verbose {
		for i, sl := range res.Slots {
			marker := ""
			if sl.Fallback {
				marker = " [fallback]"
			}
			fmt.Fprintf(stdout, "  slot %3d: %3d tags, readers %v%s\n", i, sl.TagsRead, sl.Active, marker)
		}
	}
	return 0
}
