// Command rfidsched computes a reader-activation covering schedule for a
// deployment JSON file (see rfidgen) and prints it slot by slot.
//
// Usage:
//
//	rfidsched -in paper.json -alg alg2
//	rfidsched -in warehouse.json -alg alg1 -v
//	rfidsched -in paper.json -alg alg3 -verify
//	rfidsched -in paper.json -alg alg2 -trace run.jsonl
//	rfidsched -in paper.json -alg alg1 -deadline 50ms -checkpoint run.ckpt
//	rfidsched -in paper.json -alg alg1 -checkpoint run.ckpt -resume
//	rfidsched -in paper.json -alg colorwave -checkpoint run.ckpt -supervise 3
//	rfidsched -in paper.json -alg alg2 -http 127.0.0.1:9190
//
// Algorithms: alg1 (PTAS, needs locations — always available here since the
// file stores them), alg2 (centralized, interference graph only), alg3
// (distributed), ghc, colorwave, random, exact.
//
// -deadline bounds each slot's solver work in wall-clock time (the anytime
// contract: a truncated slot still activates a feasible reader set);
// -slot-polls is its deterministic equivalent for reproducible runs.
// -checkpoint appends a durable record per slot; -resume continues a killed
// run from that file bit-identically; -supervise N additionally restarts the
// run from its last checkpoint up to N times if it crashes mid-flight.
//
// -http serves live telemetry while the run executes: Prometheus metrics at
// /metrics, JSON run progress at /runs, liveness/readiness probes, pprof
// under /debug/pprof/, and the flight recorder's recent events at
// /debug/flight. The flight recorder (-flight N, on by default) retains the
// last N trace events in memory; a crashed -supervise attempt archives them
// to <checkpoint>.flight.attempt<K>.jsonl before restarting, and -flight-dump
// additionally writes them to a file whenever a run ends degraded or
// incomplete. Telemetry is pure observation: a seeded run's schedule is
// bit-identical with or without any of it (DESIGN.md §9, §13).
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"rfidsched/internal/baseline"
	"rfidsched/internal/checkpoint"
	"rfidsched/internal/core"
	"rfidsched/internal/deploy"
	"rfidsched/internal/graph"
	"rfidsched/internal/model"
	"rfidsched/internal/obs"
	"rfidsched/internal/obs/history"
	"rfidsched/internal/randx"
	"rfidsched/internal/verify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rfidsched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in         = fs.String("in", "", "deployment JSON file (required)")
		alg        = fs.String("alg", "alg2", "algorithm: alg1, alg2, alg3, ghc, colorwave, random, exact")
		rho        = fs.Float64("rho", 1.25, "growth threshold for alg2/alg3")
		seed       = fs.Uint64("seed", 2011, "seed for randomized algorithms")
		verbose    = fs.Bool("v", false, "print the active reader set of every slot")
		check      = fs.Bool("verify", false, "independently re-verify the schedule against the model")
		trace      = fs.String("trace", "", "write a JSONL slot-level trace to this file")
		workers    = fs.Int("workers", 0, "solver worker goroutines for alg1/alg2/exact (0 = sequential; results are identical at any value)")
		deadline   = fs.Duration("deadline", 0, "per-slot wall-clock budget for alg1/alg2/exact (0 = none; truncated slots still activate a feasible set)")
		slotPolls  = fs.Int("slot-polls", 0, "per-slot deterministic poll budget (reproducible alternative to -deadline; takes precedence)")
		ckptPath   = fs.String("checkpoint", "", "append a durable per-slot checkpoint to this file")
		resume     = fs.Bool("resume", false, "resume a killed run from the -checkpoint file")
		supervise  = fs.Int("supervise", 0, "restart a crashed run from its last checkpoint up to N times (requires -checkpoint)")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = fs.String("memprofile", "", "write a heap profile to this file on exit")
		httpAddr   = fs.String("http", "", "serve live telemetry on this address (/metrics, /runs, /healthz, /readyz, /debug/pprof/, /debug/flight)")
		httpLinger = fs.Duration("http-linger", 0, "keep the telemetry server up this long after the run finishes (for scrapers)")
		flightCap  = fs.Int("flight", obs.DefaultFlightCapacity, "flight-recorder capacity in events (0 disables it)")
		flightDump = fs.String("flight-dump", "", "dump the flight record to this JSONL file when a run ends degraded or incomplete")
		historyIvl = fs.Duration("history", time.Second, "with -http: metric-history sampling interval for /history (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *in == "" {
		fmt.Fprintln(stderr, "rfidsched: -in is required")
		fs.Usage()
		return 2
	}
	if *resume && *ckptPath == "" {
		fmt.Fprintln(stderr, "rfidsched: -resume requires -checkpoint <file>")
		return 2
	}
	if *supervise > 0 && *ckptPath == "" {
		fmt.Fprintln(stderr, "rfidsched: -supervise requires -checkpoint <file>")
		return 2
	}

	stopProf, err := obs.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(stderr, "rfidsched: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "rfidsched: %v\n", err)
		}
	}()

	d, err := deploy.LoadFile(*in)
	if err != nil {
		fmt.Fprintf(stderr, "rfidsched: %v\n", err)
		return 1
	}
	sys, err := d.ToSystem()
	if err != nil {
		fmt.Fprintf(stderr, "rfidsched: %v\n", err)
		return 1
	}
	g := graph.FromSystem(sys)

	var tr obs.Tracer
	var traceSink *obs.JSONL
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintf(stderr, "rfidsched: %v\n", err)
			return 1
		}
		defer f.Close()
		traceSink = obs.NewJSONL(f)
		tr = traceSink
	}

	// The flight recorder rides the tracer path: a fixed ring of the most
	// recent slot events, archived on crash by the supervisor, dumped on a
	// degraded/incomplete finish via -flight-dump, and readable live at
	// /debug/flight. Teeing keeps any -trace file complete and untouched.
	var flight *obs.FlightRecorder
	if *flightCap > 0 {
		flight = obs.NewFlightRecorder(*flightCap)
		if *flightDump != "" {
			flight.AutoDump(*flightDump)
		}
		tr = obs.Tee(tr, flight)
	}
	var reg *obs.Registry
	if *httpAddr != "" {
		reg = obs.NewRegistry()
		// /history samples the registry into the embedded ring store and
		// /events streams the live trace with the flight window replayed to
		// each new subscriber — both pure observation, neither touching the
		// run's results.
		var hist http.Handler
		if *historyIvl > 0 {
			store := history.New(reg, history.Options{Interval: *historyIvl})
			stopSampler := store.Start()
			defer stopSampler()
			hist = store.Handler()
		}
		broker := obs.NewSSEBroker(0)
		broker.SetReplay(flight)
		tr = obs.Tee(tr, broker)
		srv, err := obs.Serve(*httpAddr, obs.ServeOptions{
			Registry: reg, Flight: flight, History: hist, Events: broker,
		})
		if err != nil {
			fmt.Fprintf(stderr, "rfidsched: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "rfidsched: telemetry listening on http://%s/\n", srv.Addr)
		// Fold the event stream into the registry too, so /metrics carries
		// the events.* counters (including events.run_completed, which /runs
		// reports) alongside the driver's own gauges and spans.
		tr = obs.Tee(tr, obs.NewMetricsTracer(reg))
		defer func() {
			// Linger so a scraper (or the CI smoke job) can still read the
			// final state of a short run before the process exits.
			if *httpLinger > 0 {
				time.Sleep(*httpLinger)
			}
			srv.Close()
		}()
	}

	// The supervisor restarts a crashed attempt from its last checkpoint,
	// which needs a pristine system and a freshly configured scheduler each
	// time — a half-run attempt has mutated both.
	newSched := func() (model.OneShotScheduler, error) {
		var sched model.OneShotScheduler
		switch *alg {
		case "alg1":
			sched = core.NewPTAS()
		case "alg2":
			sched = core.NewGrowth(g, *rho)
		case "alg3":
			sched = core.NewDistributed(g, *rho)
		case "ghc":
			sched = baseline.GHC{}
		case "colorwave":
			sched = baseline.NewColorwave(g, *seed)
		case "random":
			rng := randx.New(*seed)
			sched = &baseline.Random{Next: rng.Intn}
		case "exact":
			sched = &baseline.Exact{}
		default:
			return nil, fmt.Errorf("unknown algorithm %q", *alg)
		}
		if dd, ok := sched.(*core.Distributed); ok {
			dd.Tracer = tr
		}
		return sched, nil
	}
	if _, err := newSched(); err != nil {
		fmt.Fprintf(stderr, "rfidsched: %v\n", err)
		return 2
	}

	fmt.Fprintf(stdout, "deployment: %d readers, %d tags (%d coverable), interference graph: %d edges\n",
		sys.NumReaders(), sys.NumTags(), sys.CoverableCount(), g.M())

	opts := core.MCSOptions{
		RecordSlots:    true,
		Tracer:         tr,
		Metrics:        reg,
		SolverWorkers:  *workers,
		SlotDeadline:   *deadline,
		SlotPollBudget: *slotPolls,
	}
	sup := supervisor{
		newSys:   func() (*model.System, error) { return d.ToSystem() },
		newSched: newSched,
		opts:     opts,
		ckptPath: *ckptPath,
		resume:   *resume,
		restarts: *supervise,
		stderr:   stderr,
		reg:      reg,
		flight:   flight,
	}
	if *supervise > 0 && flight != nil {
		sup.flightBase = *ckptPath + ".flight"
	}
	res, err := sup.run()
	if err != nil {
		fmt.Fprintf(stderr, "rfidsched: %v\n", err)
		return 1
	}
	if traceSink != nil {
		if err := traceSink.Err(); err != nil {
			fmt.Fprintf(stderr, "rfidsched: trace: %v\n", err)
			return 1
		}
	}
	if *check {
		// The paper's three algorithms must produce feasible slots; the
		// baselines are only held to the physical accounting rules.
		feasible := *alg == "alg1" || *alg == "alg2" || *alg == "alg3" || *alg == "exact"
		rep, err := verify.Schedule(sys, res, verify.Options{RequireFeasible: feasible})
		if err != nil {
			fmt.Fprintf(stderr, "rfidsched: verification FAILED: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "verified:   %d slots replayed, %d tags served, %d feasible slots, %d fallbacks\n",
			rep.Slots, rep.TagsServed, rep.FeasibleSlots, rep.FallbackSlots)
	}
	fmt.Fprintf(stdout, "algorithm:  %s\n", res.Algorithm)
	fmt.Fprintf(stdout, "schedule:   %d slots, %d tags read", res.Size, res.TotalRead)
	if res.Fallbacks > 0 {
		fmt.Fprintf(stdout, " (%d fallback slots)", res.Fallbacks)
	}
	if res.AnytimeSlots > 0 {
		fmt.Fprintf(stdout, " (%d anytime slots)", res.AnytimeSlots)
	}
	if res.Incomplete {
		fmt.Fprintf(stdout, " INCOMPLETE")
	}
	fmt.Fprintln(stdout)
	if *verbose {
		for i, sl := range res.Slots {
			marker := ""
			if sl.Fallback {
				marker = " [fallback]"
			}
			fmt.Fprintf(stdout, "  slot %3d: %3d tags, readers %v%s\n", i, sl.TagsRead, sl.Active, marker)
		}
	}
	return 0
}

// supervisor drives the covering-schedule run with crash recovery: each
// attempt gets a fresh system and scheduler, resumes from the checkpoint
// file when one is available, and a panic mid-run costs one restart instead
// of the whole schedule — the checkpointed prefix is never recomputed.
type supervisor struct {
	newSys   func() (*model.System, error)
	newSched func() (model.OneShotScheduler, error)
	opts     core.MCSOptions
	ckptPath string
	resume   bool // first attempt resumes (the -resume flag)
	restarts int  // max automatic restarts after a crash
	stderr   io.Writer

	reg        *obs.Registry       // telemetry registry (nil without -http)
	flight     *obs.FlightRecorder // ring of recent events (nil when -flight 0)
	flightBase string              // crash-archive prefix; "" disables archiving
}

func (s *supervisor) run() (*core.MCSResult, error) {
	resume := s.resume
	for attempt := 0; ; attempt++ {
		if s.reg != nil {
			s.reg.Gauge("supervise.attempt").Set(float64(attempt))
		}
		res, err := s.attempt(resume)
		if err == nil {
			return res, nil
		}
		// Archive the flight record before the restart overwrites the ring:
		// the last events before the crash are exactly what a post-mortem
		// needs, and each attempt keeps its own file.
		if s.flight != nil && s.flightBase != "" {
			path := fmt.Sprintf("%s.attempt%d.jsonl", s.flightBase, attempt)
			if derr := s.flight.DumpFile(path); derr != nil {
				fmt.Fprintf(s.stderr, "rfidsched: flight record: %v\n", derr)
			} else {
				fmt.Fprintf(s.stderr, "rfidsched: flight record archived to %s\n", path)
			}
		}
		if attempt >= s.restarts {
			return nil, err
		}
		// Every later attempt resumes: the crashed one left a durable
		// prefix behind (at worst a torn final line, which LoadMCS drops).
		resume = true
		fmt.Fprintf(s.stderr, "rfidsched: run failed (%v); restarting from %s (restart %d of %d)\n",
			err, s.ckptPath, attempt+1, s.restarts)
		// Back off briefly so a crash loop with an external cause (disk
		// full, OOM killer) does not spin at full speed.
		time.Sleep(time.Duration(attempt+1) * 100 * time.Millisecond)
	}
}

// attempt executes one supervised try, converting panics into errors so the
// supervisor can restart instead of taking the process down.
func (s *supervisor) attempt(resume bool) (res *core.MCSResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("schedule run panicked: %v", r)
		}
	}()
	sys, err := s.newSys()
	if err != nil {
		return nil, err
	}
	sched, err := s.newSched()
	if err != nil {
		return nil, err
	}
	opts := s.opts

	// Resume order matters: load the full surviving state into memory
	// FIRST, then truncate the same path for the new stream — ResumeMCS
	// re-records the replayed history, so the file is complete again after
	// the first appended record.
	var state *checkpoint.MCSState
	if resume {
		state, err = checkpoint.LoadMCS(s.ckptPath)
		if err != nil {
			return nil, fmt.Errorf("resume: %w", err)
		}
	}
	if s.ckptPath != "" {
		w, err := checkpoint.Create(s.ckptPath)
		if err != nil {
			return nil, err
		}
		defer w.Close()
		opts.Checkpoint = w
	}
	if state != nil {
		return core.ResumeMCS(sys, sched, opts, state)
	}
	return core.RunMCS(sys, sched, opts)
}
