// Command rfidtop is a terminal dashboard for a running scheduling service
// (rfidserved, or any process serving the obs telemetry mux with a /history
// store). It polls /history and /runs and redraws a compact top-style view:
// request and tags-read rates, queue depth, cache hit ratio, and solve
// latency, each with a sparkline of the recent window — no external
// collector, no dependencies, just the process's own embedded metric
// history.
//
// Usage:
//
//	rfidtop -addr http://127.0.0.1:9290
//	rfidtop -addr http://127.0.0.1:9290 -interval 1s -width 60
//	rfidtop -addr http://127.0.0.1:9290 -frames 1 -plain   # one scripted frame
//
// The latency row derives p95 from the mean and standard deviation of the
// solve-phase histogram under a Gaussian approximation (mean + 1.645σ),
// and is labeled "~p95" for that reason — the store keeps moments, not
// quantile sketches.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// historyDoc mirrors the /history document shape rfidtop consumes; absent
// samples arrive as JSON null and land as NaN via jsonFloat.
type historyDoc struct {
	IntervalMS int64     `json:"interval_ms"`
	Tiers      []tierDoc `json:"tiers"`
}

type tierDoc struct {
	IntervalMS int64                  `json:"interval_ms"`
	TS         []int64                `json:"ts"`
	Series     map[string][]jsonFloat `json:"series"`
}

type jsonFloat float64

func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = jsonFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

// runsDoc mirrors the /runs progress document.
type runsDoc struct {
	Slot             int64 `json:"slot"`
	TagsRead         int64 `json:"tags_read"`
	CheckpointLag    int64 `json:"checkpoint_lag"`
	SuperviseAttempt int64 `json:"supervise_attempt"`
	RunsCompleted    int64 `json:"runs_completed"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rfidtop", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:9290", "base URL of the service to watch")
		interval = fs.Duration("interval", 2*time.Second, "poll/redraw cadence")
		frames   = fs.Int("frames", 0, "frames to draw before exiting (0 = until interrupted)")
		width    = fs.Int("width", 48, "sparkline width in samples")
		plain    = fs.Bool("plain", false, "append frames instead of redrawing in place (for logs and scripts)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	base := strings.TrimRight(*addr, "/")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sig)

	client := &http.Client{Timeout: 10 * time.Second}
	for n := 0; *frames == 0 || n < *frames; n++ {
		if n > 0 {
			select {
			case <-sig:
				return 0
			case <-time.After(*interval):
			}
		}
		frame, err := buildFrame(client, base, *width)
		if err != nil {
			fmt.Fprintf(stderr, "rfidtop: %v\n", err)
			return 1
		}
		if !*plain {
			fmt.Fprint(stdout, "\x1b[2J\x1b[H") // clear screen, home cursor
		}
		fmt.Fprint(stdout, frame)
	}
	return 0
}

// buildFrame fetches one snapshot pair and renders the dashboard text.
func buildFrame(client *http.Client, base string, width int) (string, error) {
	var hist historyDoc
	if err := fetchJSON(client, fmt.Sprintf("%s/history?tier=0&last=%d", base, width), &hist); err != nil {
		return "", err
	}
	var runs runsDoc
	if err := fetchJSON(client, base+"/runs", &runs); err != nil {
		return "", err
	}
	if len(hist.Tiers) == 0 {
		return "", fmt.Errorf("%s/history returned no tiers (history store not enabled?)", base)
	}
	tier := hist.Tiers[0]
	series := func(name string) []float64 {
		vals := tier.Series[name]
		out := make([]float64, len(vals))
		for i, v := range vals {
			out[i] = float64(v)
		}
		return out
	}
	secPerSample := float64(tier.IntervalMS) / 1000
	if secPerSample <= 0 {
		secPerSample = 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, "rfidtop — %s  (tier 0, %d samples @ %.1fs)\n\n",
		base, len(tier.TS), secPerSample)

	reqRate := rate(series("serve.requests"), secPerSample)
	row(&b, "requests/s", reqRate, "%.1f", last(reqRate))

	tagRate := rate(series("mcs.tags.read"), secPerSample)
	row(&b, "tags read/s", tagRate, "%.1f", last(tagRate))

	depth := series("serve.queue.depth")
	row(&b, "queue depth", depth, "%.0f", last(depth))

	ratio := hitRatio(series("serve.cache.hits"), series("serve.cache.misses"))
	row(&b, "cache hit %", ratio, "%.0f%%", last(ratio))

	mean := series("serve.phase.solve.seconds.mean")
	std := series("serve.phase.solve.seconds.std")
	meanMS := scale(mean, 1000)
	row(&b, "solve ms", meanMS, "%.2f", last(meanMS))
	if m, s := last(mean), last(std); !math.IsNaN(m) {
		if math.IsNaN(s) {
			s = 0
		}
		// Gaussian tail approximation over the stored moments. Pad by sample
		// count, not byte length — sparkline runes are multibyte.
		fmt.Fprintf(&b, "  %-12s %*s  %.2f\n", "~p95 ms", len(meanMS), "", (m+1.645*s)*1000)
	}

	fmt.Fprintf(&b, "\nruns: slot=%d tags_read=%d ckpt_lag=%d completed=%d\n",
		runs.Slot, runs.TagsRead, runs.CheckpointLag, runs.RunsCompleted)
	return b.String(), nil
}

// row renders one labeled sparkline line with its current value.
func row(b *strings.Builder, label string, vals []float64, format string, cur float64) {
	curStr := "-"
	if !math.IsNaN(cur) {
		curStr = fmt.Sprintf(format, cur)
	}
	fmt.Fprintf(b, "  %-12s %s  %s\n", label, spark(vals), curStr)
}

func fetchJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("GET %s: %s (%s)", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// rate turns a cumulative counter series into a per-second rate series (one
// shorter). Resets (restarts) clamp to zero instead of going negative.
func rate(vals []float64, secPerSample float64) []float64 {
	if len(vals) < 2 {
		return nil
	}
	out := make([]float64, len(vals)-1)
	for i := 1; i < len(vals); i++ {
		d := (vals[i] - vals[i-1]) / secPerSample
		if math.IsNaN(vals[i]) || math.IsNaN(vals[i-1]) {
			d = math.NaN()
		} else if d < 0 {
			d = 0
		}
		out[i-1] = d
	}
	return out
}

// hitRatio builds the cumulative cache hit percentage series.
func hitRatio(hits, misses []float64) []float64 {
	n := min(len(hits), len(misses))
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		total := hits[i] + misses[i]
		if math.IsNaN(total) || total == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = 100 * hits[i] / total
	}
	return out
}

func scale(vals []float64, by float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = v * by
	}
	return out
}

func last(vals []float64) float64 {
	for i := len(vals) - 1; i >= 0; i-- {
		if !math.IsNaN(vals[i]) {
			return vals[i]
		}
	}
	return math.NaN()
}

// sparkRunes are the classic 8-level block sparkline alphabet.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// spark renders a series as a fixed-alphabet sparkline, scaled to its own
// min..max window; NaN samples render as spaces.
func spark(vals []float64) string {
	if len(vals) == 0 {
		return "(no data)"
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if lo > hi { // all NaN
		return strings.Repeat(" ", len(vals))
	}
	var b strings.Builder
	for _, v := range vals {
		if math.IsNaN(v) {
			b.WriteByte(' ')
			continue
		}
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}
