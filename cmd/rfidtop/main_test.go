package main

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakeService serves canned /history and /runs documents.
func fakeService(t *testing.T, history, runs string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/history", func(w http.ResponseWriter, r *http.Request) {
		if got := r.URL.Query().Get("tier"); got != "0" {
			t.Errorf("history request tier = %q, want 0", got)
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(history))
	})
	mux.HandleFunc("/runs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(runs))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

const fakeHistory = `{
  "interval_ms": 1000,
  "tiers": [{
    "interval_ms": 1000,
    "capacity": 8,
    "samples": 4,
    "ts": [1000, 2000, 3000, 4000],
    "series": {
      "serve.requests": [0, 4, 8, 10],
      "mcs.tags.read": [null, 50, 120, 200],
      "serve.queue.depth": [0, 2, 1, 0],
      "serve.cache.hits": [0, 1, 3, 3],
      "serve.cache.misses": [1, 1, 1, 2],
      "serve.phase.solve.seconds.mean": [null, 0.02, 0.025, 0.03],
      "serve.phase.solve.seconds.std": [null, 0.001, 0.002, 0.002]
    }
  }]
}`

const fakeRuns = `{"slot": 7, "tags_read": 200, "checkpoint_lag": 1, "runs_completed": 3}`

func TestOneFrameAgainstFakeService(t *testing.T) {
	srv := fakeService(t, fakeHistory, fakeRuns)
	var out, errb bytes.Buffer
	code := run([]string{"-addr", srv.URL, "-frames", "1", "-plain"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"requests/s", "tags read/s", "queue depth", "cache hit %",
		"solve ms", "~p95 ms",
		"slot=7 tags_read=200 ckpt_lag=1 completed=3",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("frame lacks %q:\n%s", want, got)
		}
	}
	// At least one sparkline glyph must appear.
	if !strings.ContainsAny(got, string(sparkRunes)) {
		t.Errorf("frame has no sparkline glyphs:\n%s", got)
	}
	// -plain must not emit terminal control sequences.
	if strings.Contains(got, "\x1b[") {
		t.Errorf("-plain frame contains ANSI escapes:\n%s", got)
	}
}

func TestRunErrorsWithoutHistoryStore(t *testing.T) {
	srv := fakeService(t, `{"interval_ms": 1000, "tiers": []}`, fakeRuns)
	var out, errb bytes.Buffer
	if code := run([]string{"-addr", srv.URL, "-frames", "1"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "history store not enabled") {
		t.Fatalf("stderr = %q", errb.String())
	}
}

func TestRate(t *testing.T) {
	got := rate([]float64{0, 4, 8, 6}, 2)
	want := []float64{2, 2, 0} // per-second over 2s samples; reset clamps to 0
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rate = %v, want %v", got, want)
		}
	}
	if r := rate([]float64{math.NaN(), 4}, 1); !math.IsNaN(r[0]) {
		t.Fatalf("rate over NaN = %v, want NaN", r)
	}
}

func TestSpark(t *testing.T) {
	if got := spark([]float64{0, 1, 2, 3}); got != "▁▃▅█" {
		t.Fatalf("spark = %q", got)
	}
	if got := spark([]float64{math.NaN(), 5, math.NaN()}); got != " ▁ " {
		t.Fatalf("spark with NaN = %q", got)
	}
	if got := spark([]float64{math.NaN()}); got != " " {
		t.Fatalf("all-NaN spark = %q", got)
	}
	if got := spark(nil); got != "(no data)" {
		t.Fatalf("empty spark = %q", got)
	}
	if got := spark([]float64{7, 7}); got != "▁▁" {
		t.Fatalf("flat spark = %q", got)
	}
}

func TestHitRatio(t *testing.T) {
	got := hitRatio([]float64{0, 1, 3}, []float64{0, 1, 1})
	if !math.IsNaN(got[0]) {
		t.Fatalf("zero-total ratio = %v, want NaN", got[0])
	}
	if got[1] != 50 || got[2] != 75 {
		t.Fatalf("ratio = %v, want [NaN 50 75]", got)
	}
}
