package main

import (
	"bytes"
	"strings"
	"testing"
)

// tinyArgs shrinks the workload so CLI tests stay fast.
func tinyArgs(extra ...string) []string {
	base := []string{"-trials", "1", "-readers", "12", "-tags", "150", "-side", "50"}
	return append(base, extra...)
}

func TestRunSingleFigureASCII(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run(tinyArgs("-fig", "9", "-algs", "Alg2-Growth,GHC"), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "Figure 9") {
		t.Errorf("missing title:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "Alg2-Growth") {
		t.Error("missing algorithm column")
	}
}

func TestRunFigureMarkdownAndCSVAndChart(t *testing.T) {
	for _, format := range []string{"md", "csv", "chart"} {
		var out, errBuf bytes.Buffer
		code := run(tinyArgs("-fig", "8", "-algs", "GHC", "-format", format), &out, &errBuf)
		if code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", format, code, errBuf.String())
		}
		if out.Len() == 0 {
			t.Errorf("%s: no output", format)
		}
	}
}

func TestRunAblationID(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run(tinyArgs("-fig", "abl-channels"), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "channels") {
		t.Errorf("missing ablation output:\n%s", out.String())
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(tinyArgs("-fig", "nope"), &out, &errBuf); code != 2 {
		t.Errorf("exit %d for unknown figure", code)
	}
	if !strings.Contains(errBuf.String(), "unknown figure") {
		t.Error("no diagnostic")
	}
}

func TestRunUnknownFormat(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(tinyArgs("-fig", "9", "-algs", "GHC", "-format", "xml"), &out, &errBuf); code != 2 {
		t.Errorf("exit %d for unknown format", code)
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(tinyArgs("-fig", "9", "-algs", "MagicAlg"), &out, &errBuf); code != 1 {
		t.Errorf("exit %d for unknown algorithm", code)
	}
}

func TestRunOutFile(t *testing.T) {
	path := t.TempDir() + "/fig.csv"
	var out, errBuf bytes.Buffer
	code := run(tinyArgs("-fig", "9", "-algs", "GHC", "-format", "csv", "-out", path), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if out.Len() != 0 {
		t.Error("wrote to stdout despite -out")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errBuf); code != 2 {
		t.Errorf("exit %d for bad flag", code)
	}
}
