// Command rfidsim reproduces the paper's evaluation figures and the
// repository's ablation studies.
//
// Usage:
//
//	rfidsim -fig 6 -trials 10                 # Figure 6, ASCII table
//	rfidsim -fig all -trials 10 -format md    # all figures as Markdown
//	rfidsim -fig 8 -format chart              # ASCII line chart
//	rfidsim -fig abl-rho                      # one ablation
//	rfidsim -fig ablations -format csv        # every ablation, CSV
//	rfidsim -fig chaos -trace run.jsonl       # record a slot-level trace
//	rfidsim -fig trace-report -trace run.jsonl  # summarize a recorded trace
//	rfidsim -fig 6 -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//	rfidsim -fig all -http 127.0.0.1:9191       # watch the sweep live
//
// -http serves the live metrics registry (solver-pool counters, MCS
// progress gauges, phase-span histograms) at /metrics with JSON progress at
// /runs, pprof under /debug/pprof/, and — when the flight recorder is on —
// the most recent trace events at /debug/flight. -fig trace-report also
// accepts flight-recorder dumps, which are mid-run windows of a trace.
//
// Figures: 6/7 sweep the covering-schedule size against lambda_R / lambda_r;
// 8/9 sweep the one-shot well-covered tag count. Defaults follow Section VI
// of the paper: 50 readers, 1200 tags, 100x100 region.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"rfidsched/internal/experiments"
	"rfidsched/internal/obs"
	"rfidsched/internal/obs/history"
	"rfidsched/internal/parsearch"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rfidsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig        = fs.String("fig", "all", `figure: 6-9, "all", an ablation id (abl-rho, abl-survey, abl-channels, abl-mobility, abl-chaos), "ablations", or "trace-report"`)
		trials     = fs.Int("trials", 10, "random deployments per sweep point")
		seed       = fs.Uint64("seed", 2011, "base RNG seed")
		readers    = fs.Int("readers", 50, "number of readers")
		tags       = fs.Int("tags", 1200, "number of tags")
		side       = fs.Float64("side", 100, "deployment square side length")
		rho        = fs.Float64("rho", 1.25, "growth threshold for Algorithms 2/3")
		workers    = fs.Int("workers", 0, "parallel trial workers (0 = NumCPU)")
		solverW    = fs.Int("solver-workers", 0, "solver worker goroutines inside each trial (0 = 1 when trial workers > 1, else NumCPU; results are identical at any value)")
		format     = fs.String("format", "ascii", "output format: ascii, md, csv, chart")
		out        = fs.String("out", "", "output file (default stdout)")
		algs       = fs.String("algs", "", "comma-separated algorithm subset (default all five)")
		trace      = fs.String("trace", "", "JSONL slot-trace file: written by figure/ablation runs, read by -fig trace-report")
		slotDl     = fs.Duration("slot-deadline", 0, "per-slot wall-clock solver budget (0 = none; truncated slots stay feasible)")
		slotPolls  = fs.Int("slot-polls", 0, "per-slot deterministic poll budget (reproducible alternative to -slot-deadline)")
		ckptPath   = fs.String("checkpoint", "", "record completed sweep cells to this file for crash recovery")
		resume     = fs.Bool("resume", false, "skip sweep cells already recorded in the -checkpoint file")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = fs.String("memprofile", "", "write a heap profile to this file on exit")
		httpAddr   = fs.String("http", "", "serve live telemetry on this address (/metrics, /runs, /healthz, /readyz, /debug/pprof/, /debug/flight)")
		httpLinger = fs.Duration("http-linger", 0, "keep the telemetry server up this long after the sweep finishes (for scrapers)")
		flightCap  = fs.Int("flight", 0, "flight-recorder capacity in events (0 = on only with -http, at the default capacity)")
		historyIvl = fs.Duration("history", time.Second, "with -http: metric-history sampling interval for /history (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	stopProf, err := obs.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(stderr, "rfidsim: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "rfidsim: %v\n", err)
		}
	}()

	cfg := experiments.Config{
		Trials: *trials, Seed: *seed, NumReaders: *readers, NumTags: *tags,
		Side: *side, Rho: *rho, Workers: *workers, SolverWorkers: *solverW,
		SlotDeadline: *slotDl, SlotPollBudget: *slotPolls,
	}
	if *algs != "" {
		cfg.Algorithms = strings.Split(*algs, ",")
	}

	if *fig == "trace-report" {
		return traceReport(*trace, *out, stdout, stderr)
	}
	if *resume && *ckptPath == "" {
		fmt.Fprintln(stderr, "rfidsim: -resume requires -checkpoint <file>")
		return 2
	}
	if *ckptPath != "" {
		ckpt, err := experiments.OpenSweepCheckpoint(*ckptPath, cfg, *resume)
		if err != nil {
			fmt.Fprintf(stderr, "rfidsim: %v\n", err)
			return 1
		}
		defer func() {
			if err := ckpt.Close(); err != nil {
				fmt.Fprintf(stderr, "rfidsim: checkpoint: %v\n", err)
			}
		}()
		if n := ckpt.Restored(); n > 0 {
			fmt.Fprintf(stderr, "rfidsim: resuming — %d completed sweep cells restored from %s\n", n, *ckptPath)
		}
		cfg.Checkpoint = ckpt
	}

	// Log the effective worker split (trial-level × solver-level) and route
	// solver-pool telemetry into a metrics registry so trace reports show
	// where parallel search time went.
	logger := obs.NewLogger(stderr, slog.LevelInfo)
	trialWorkers := *workers
	if trialWorkers <= 0 {
		trialWorkers = runtime.NumCPU()
	}
	solverWorkers := *solverW
	if solverWorkers <= 0 {
		if trialWorkers > 1 {
			solverWorkers = 1
		} else {
			solverWorkers = runtime.NumCPU()
		}
	}
	logger.Info("worker configuration",
		"trial_workers", trialWorkers,
		"solver_workers", solverWorkers,
		"num_cpu", runtime.NumCPU())
	reg := obs.NewRegistry()
	parsearch.EnableMetrics(reg)
	defer parsearch.EnableMetrics(nil)
	defer func() {
		snap := reg.Snapshot()
		tasks := snap.Counters["parsearch.pool.tasks"]
		if tasks == 0 {
			return
		}
		h := snap.Histograms["parsearch.subtree_nodes"]
		logger.Info("solver pool",
			"tasks", tasks,
			"subtrees", h.N,
			"subtree_nodes_mean", fmt.Sprintf("%.1f", h.Mean),
			"subtree_nodes_max", h.Max)
	}()

	var traceSink *obs.JSONL
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintf(stderr, "rfidsim: %v\n", err)
			return 1
		}
		defer f.Close()
		traceSink = obs.NewJSONL(f)
		cfg.Tracer = traceSink
	}

	// Live telemetry: the sweep shares one registry across parallel trials
	// (counters and span histograms aggregate; progress gauges are
	// last-write-wins), and the flight recorder keeps a ring of the latest
	// slot events for /debug/flight without growing with the sweep.
	cfg.Metrics = reg
	flightEvents := *flightCap
	if flightEvents == 0 && *httpAddr != "" {
		flightEvents = obs.DefaultFlightCapacity
	}
	var flight *obs.FlightRecorder
	if flightEvents > 0 {
		flight = obs.NewFlightRecorder(flightEvents)
		cfg.Tracer = obs.Tee(cfg.Tracer, flight)
	}
	if *httpAddr != "" {
		// /history samples the shared registry into the embedded ring store
		// and /events streams the live trace with the flight window replayed
		// to late subscribers — both pure observation.
		var hist http.Handler
		if *historyIvl > 0 {
			store := history.New(reg, history.Options{Interval: *historyIvl})
			stopSampler := store.Start()
			defer stopSampler()
			hist = store.Handler()
		}
		broker := obs.NewSSEBroker(0)
		broker.SetReplay(flight)
		cfg.Tracer = obs.Tee(cfg.Tracer, broker)
		srv, err := obs.Serve(*httpAddr, obs.ServeOptions{
			Registry: reg, Flight: flight, History: hist, Events: broker,
		})
		if err != nil {
			fmt.Fprintf(stderr, "rfidsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "rfidsim: telemetry listening on http://%s/\n", srv.Addr)
		// Fold the event stream into the registry so /metrics carries the
		// events.* counters (events.run_completed feeds /runs) on top of the
		// solver-pool and driver metrics.
		cfg.Tracer = obs.Tee(cfg.Tracer, obs.NewMetricsTracer(reg))
		defer func() {
			if *httpLinger > 0 {
				time.Sleep(*httpLinger)
			}
			srv.Close()
		}()
	}

	var ids []string
	ablation := false
	switch *fig {
	case "all":
		ids = experiments.FigureIDs()
	case "6", "7", "8", "9":
		ids = []string{"fig" + *fig}
	case "fig6", "fig7", "fig8", "fig9":
		ids = []string{*fig}
	case "ablations":
		ids = experiments.AblationIDs()
		ablation = true
	case "chaos":
		// Shorthand for the fault-injection grid.
		ids = []string{"abl-chaos"}
		ablation = true
	default:
		for _, id := range experiments.AblationIDs() {
			if *fig == id {
				ids = []string{id}
				ablation = true
			}
		}
		if ids == nil {
			fmt.Fprintf(stderr, "rfidsim: unknown figure %q (figures: 6-9, all; ablations: %v)\n",
				*fig, experiments.AblationIDs())
			return 2
		}
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "rfidsim: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}

	for i, id := range ids {
		var res *experiments.FigureResult
		var err error
		if ablation {
			res, err = experiments.RunAblation(id, cfg)
		} else {
			res, err = experiments.RunFigure(id, cfg)
		}
		if err != nil {
			fmt.Fprintf(stderr, "rfidsim: %s: %v\n", id, err)
			return 1
		}
		if i > 0 && *format != "csv" {
			fmt.Fprintln(w)
		}
		var werr error
		switch *format {
		case "ascii":
			werr = res.WriteASCII(w)
		case "md", "markdown":
			werr = res.WriteMarkdown(w)
		case "csv":
			werr = res.WriteCSV(w)
		case "chart":
			werr = res.WriteChart(w)
		default:
			fmt.Fprintf(stderr, "rfidsim: unknown format %q\n", *format)
			return 2
		}
		if werr != nil {
			fmt.Fprintf(stderr, "rfidsim: writing %s: %v\n", id, werr)
			return 1
		}
	}
	if traceSink != nil {
		if err := traceSink.Err(); err != nil {
			fmt.Fprintf(stderr, "rfidsim: trace: %v\n", err)
			return 1
		}
	}
	return 0
}

// traceReport summarizes a JSONL trace recorded by an earlier -trace run:
// event counts by type, failure and drop causes, a per-run table, and (for
// single-run traces) the per-slot detail.
func traceReport(trace, out string, stdout, stderr io.Writer) int {
	if trace == "" {
		fmt.Fprintln(stderr, "rfidsim: -fig trace-report requires -trace <file>")
		return 2
	}
	f, err := os.Open(trace)
	if err != nil {
		fmt.Fprintf(stderr, "rfidsim: %v\n", err)
		return 1
	}
	defer f.Close()
	sum, err := obs.ReadSummary(f)
	if err != nil {
		fmt.Fprintf(stderr, "rfidsim: reading trace: %v\n", err)
		return 1
	}
	var w io.Writer = stdout
	if out != "" {
		of, err := os.Create(out)
		if err != nil {
			fmt.Fprintf(stderr, "rfidsim: %v\n", err)
			return 1
		}
		defer of.Close()
		w = of
	}
	if err := sum.Write(w); err != nil {
		fmt.Fprintf(stderr, "rfidsim: %v\n", err)
		return 1
	}
	return 0
}
