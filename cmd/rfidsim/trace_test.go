package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rfidsched/internal/obs"
)

// TestRunTraceWritesValidJSONL runs a figure with -trace and feeds the file
// straight back through the summarizer: every line must parse as an event
// and the runs must carry the figure/x/trial/algorithm attribution.
func TestRunTraceWritesValidJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	var out, errBuf bytes.Buffer
	code := run(tinyArgs("-fig", "6", "-algs", "Alg2-Growth,Alg3-Distributed", "-trace", path), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sum, err := obs.ReadSummary(f)
	if err != nil {
		t.Fatalf("trace is not valid JSONL: %v", err)
	}
	if len(sum.Events) == 0 {
		t.Fatal("trace is empty")
	}
	runs := sum.RunIDs()
	if len(runs) == 0 {
		t.Fatal("no run attribution in trace")
	}
	for _, id := range runs {
		if !strings.HasPrefix(id, "fig6/") {
			t.Errorf("run id %q not stamped with figure prefix", id)
		}
	}
	// The distributed algorithm must have traced its elections too.
	if !strings.Contains(strings.Join(runs, " "), "Alg3-Distributed") {
		t.Error("no Alg3 runs recorded")
	}
}

// TestRunProfilesWritten checks -cpuprofile/-memprofile produce non-empty
// pprof files.
func TestRunProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pb.gz"), filepath.Join(dir, "mem.pb.gz")
	var out, errBuf bytes.Buffer
	code := run(tinyArgs("-fig", "9", "-algs", "GHC", "-cpuprofile", cpu, "-memprofile", mem), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestTraceReportGolden pins the summarizer's CLI output for a hand-built
// degraded single-run trace (see testdata/degraded.jsonl).
func TestTraceReportGolden(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-fig", "trace-report", "-trace", "testdata/degraded.jsonl"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	golden, err := os.ReadFile("testdata/degraded.report.golden")
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(golden) {
		t.Errorf("report drifted from golden.\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}
}

// TestTraceReportToFile routes the report through -out.
func TestTraceReportToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.txt")
	var out, errBuf bytes.Buffer
	code := run([]string{"-fig", "trace-report", "-trace", "testdata/degraded.jsonl", "-out", path}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	if out.Len() != 0 {
		t.Error("wrote to stdout despite -out")
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "trace report:") {
		t.Errorf("unexpected report content:\n%s", b)
	}
}

// TestTraceReportFlagErrors covers the two user mistakes: forgetting -trace
// and naming a file that does not exist.
func TestTraceReportFlagErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-fig", "trace-report"}, &out, &errBuf); code != 2 {
		t.Errorf("exit %d without -trace", code)
	}
	if !strings.Contains(errBuf.String(), "-trace") {
		t.Error("no diagnostic about the missing flag")
	}
	errBuf.Reset()
	if code := run([]string{"-fig", "trace-report", "-trace", "testdata/no-such.jsonl"}, &out, &errBuf); code != 1 {
		t.Errorf("exit %d for missing trace file", code)
	}
}

// TestTraceReportAcceptsFlightDump runs the summarizer over a flight-recorder
// dump — a mid-run window whose first slot lost its slot_planned prefix to
// ring wrap — and expects a report, not an error.
func TestTraceReportAcceptsFlightDump(t *testing.T) {
	rec := obs.NewFlightRecorder(5)
	rec.Emit(obs.EvSlotPlanned(120, "Alg2-Growth", []int{4})) // wraps out
	for slot := 121; slot < 124; slot++ {
		rec.Emit(obs.EvSlotPlanned(slot, "Alg2-Growth", []int{1, 2}))
		rec.Emit(obs.EvSlotExecuted(slot, []int{1, 2}, 3))
	}
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	if err := rec.DumpFile(path); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"-fig", "trace-report", "-trace", path}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	rep := out.String()
	if !strings.Contains(rep, "mid-run window: trace opens at slot 121") {
		t.Errorf("report does not flag the flight-dump window:\n%s", rep)
	}
	if !strings.Contains(rep, "per-slot detail") {
		t.Errorf("no per-slot detail for the window:\n%s", rep)
	}
}
