package main

import (
	"bytes"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuffer lets the test read the daemon's stdout while run() is still
// writing to it from another goroutine.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`listening on http://([^/]+)/`)

// TestRunServeAndDrain boots the daemon on an ephemeral port, solves one
// request over real HTTP, then asks for a graceful stop and expects a clean
// exit with the drain message — the same lifecycle the service-smoke CI job
// drives via SIGTERM.
func TestRunServeAndDrain(t *testing.T) {
	stdout := &lockedBuffer{}
	stderr := &lockedBuffer{}
	stop := make(chan struct{})
	code := make(chan int, 1)
	go func() {
		code <- run([]string{"-addr", "127.0.0.1:0", "-shards", "2", "-workers", "1", "-cache", "8"},
			stdout, stderr, stop)
	}()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if m := listenLine.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	body := `{"generator": {"seed": 5, "readers": 8, "tags": 40, "side": 40, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2"}`
	resp, err := http.Post("http://"+addr+"/v1/schedule", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/schedule: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/schedule: status %d, body %s", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), `"verified": true`) {
		t.Errorf("response not verified: %s", b)
	}

	close(stop)
	select {
	case c := <-code:
		if c != 0 {
			t.Errorf("exit code = %d, want 0; stderr=%q", c, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after stop")
	}
	if !strings.Contains(stderr.String(), "drained, exiting") {
		t.Errorf("stderr missing drain message: %q", stderr.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errw, nil); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "flag") {
		t.Errorf("stderr missing flag usage: %q", errw.String())
	}
}

func TestRunBadAddr(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-addr", "definitely not an address"}, &out, &errw, nil); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr=%q", code, errw.String())
	}
}
