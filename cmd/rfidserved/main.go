// Command rfidserved runs the scheduling service: a long-lived HTTP/JSON
// daemon that accepts deployment specs (or rfidgen-style generator
// parameters) and returns one-shot MWFS or full MCS schedules, with a
// sharded work queue, an LRU schedule cache, single-flight deduplication
// of identical in-flight requests, and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	rfidserved -addr 127.0.0.1:9290
//	rfidserved -addr :9290 -shards 8 -workers 2 -queue 128 -cache 512
//	rfidserved -addr :9290 -ckpt-dir /var/lib/rfidserved
//
// Endpoints:
//
//	POST /v1/schedule   solve a deployment (sync; "async": true for 202+poll)
//	GET  /v1/jobs/{id}  job status and result by fingerprint
//	GET  /metrics       Prometheus text exposition (queue/cache/solver series)
//	GET  /runs          JSON progress of the currently running MCS jobs
//	GET  /history       embedded metric history (ring time series; rfidtop's feed)
//	GET  /events        live SSE stream of trace events (flight-window replay)
//	GET  /healthz       liveness; /readyz flips to 503 while draining
//	GET  /debug/flight  JSONL dump of recent events incl. slow-request traces
//	GET  /debug/pprof/  live profiling
//
// Every request carries a trace ID: the client's X-Trace-Id when valid, a
// generated one otherwise, echoed on the response and stamped on the
// access-log line, the request_completed event, and (for slow requests)
// the phase trace in the flight recorder.
//
// On SIGTERM (or SIGINT) the daemon stops admitting work — new schedule
// requests get 503, /readyz goes not-ready — finishes every job already
// queued or in flight (waiters receive their responses), then exits 0.
// With -ckpt-dir, MCS progress is additionally durable per slot: a job cut
// off by -drain-timeout (or a crash) leaves a checkpoint behind that the
// next process resumes bit-identically on the same request. See DESIGN.md
// §14 and the README "Running the scheduling service" walkthrough.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rfidsched/internal/obs"
	"rfidsched/internal/obs/history"
	"rfidsched/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable entry point; stop, when non-nil, triggers the same
// graceful drain a SIGTERM does (the CLI tests use it in place of signals).
func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("rfidserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:9290", "listen address (host:port; :0 picks a free port)")
		shards       = fs.Int("shards", 4, "work-queue shards (fingerprint-hashed)")
		workers      = fs.Int("workers", 2, "solver workers per shard")
		queueDepth   = fs.Int("queue", 64, "per-shard queue capacity (full shard returns 429)")
		cacheEntries = fs.Int("cache", 256, "LRU schedule-cache capacity in entries")
		drainTO      = fs.Duration("drain-timeout", 60*time.Second, "max time to finish in-flight jobs on SIGTERM before giving up")
		ckptDir      = fs.String("ckpt-dir", "", "directory for durable per-job MCS checkpoints (enables resume across restarts)")
		maxReaders   = fs.Int("max-readers", 0, "admission cap on readers per request (0 = default)")
		maxTags      = fs.Int("max-tags", 0, "admission cap on tags per request (0 = default)")
		maxBody      = fs.Int64("max-body", 0, "request body size cap in bytes (0 = default 32MiB)")
		maxWorkers   = fs.Int("max-workers", 0, "cap on per-request solver workers (0 = NumCPU)")
		maxDeadline  = fs.Duration("max-deadline", 0, "cap on per-request slot deadlines (0 = default 10s)")
		accessLog    = fs.Bool("access-log", true, "write one structured JSON line per request to stderr")
		slowReq      = fs.Duration("slow-request", time.Second, "requests at least this slow log at Warn and tee their phase trace into the flight recorder (0 disables)")
		flightCap    = fs.Int("flight", obs.DefaultFlightCapacity, "flight-recorder capacity in events, served at /debug/flight and replayed to new /events subscribers (0 disables)")
		historyIvl   = fs.Duration("history", time.Second, "metric-history sampling interval, served at /history (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "rfidserved: %v\n", err)
			return 1
		}
	}

	// Observability wiring: every piece is optional and pure observation —
	// schedules are bit-identical with all of it on or off. The SSE broker
	// is always live at /events (idle subscriber cost only); the flight
	// recorder doubles as its replay window and as the slow-request sink.
	reg := obs.NewRegistry()
	var flight *obs.FlightRecorder
	if *flightCap > 0 {
		flight = obs.NewFlightRecorder(*flightCap)
	}
	broker := obs.NewSSEBroker(0)
	broker.SetReplay(flight)
	var logger *slog.Logger
	if *accessLog {
		logger = obs.NewJSONLogger(stderr, slog.LevelInfo)
	}
	var hist http.Handler
	if *historyIvl > 0 {
		store := history.New(reg, history.Options{Interval: *historyIvl})
		stopSampler := store.Start()
		defer stopSampler()
		hist = store.Handler()
	}

	srv := serve.NewServer(serve.Options{
		Shards:          *shards,
		WorkersPerShard: *workers,
		QueueDepth:      *queueDepth,
		CacheEntries:    *cacheEntries,
		CheckpointDir:   *ckptDir,
		MaxBody:         *maxBody,
		Metrics:         reg,
		AccessLog:       logger,
		SlowRequest:     *slowReq,
		Flight:          flight,
		Tracer:          broker,
		History:         hist,
		Events:          broker,
		Limits: serve.Limits{
			MaxReaders:      *maxReaders,
			MaxTags:         *maxTags,
			MaxWorkers:      *maxWorkers,
			MaxSlotDeadline: *maxDeadline,
		},
	})

	// obs.Serve binds the listener and reports the resolved address before
	// returning, so ":0" is printable and the process is curl-able the
	// moment the log line appears.
	httpSrv, err := obs.ServeHandler(*addr, srv.Handler())
	if err != nil {
		fmt.Fprintf(stderr, "rfidserved: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "rfidserved: listening on http://%s/ (%d shards x %d workers, queue %d, cache %d)\n",
		httpSrv.Addr, *shards, *workers, *queueDepth, *cacheEntries)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sig)
	select {
	case s := <-sig:
		fmt.Fprintf(stderr, "rfidserved: received %v, draining\n", s)
	case <-stop:
		fmt.Fprintln(stderr, "rfidserved: stop requested, draining")
	}

	// Drain order matters: refuse new work and finish what was admitted
	// (sync waiters get their responses over the still-open connections),
	// then close the listener.
	if err := srv.Drain(*drainTO); err != nil {
		fmt.Fprintf(stderr, "rfidserved: %v\n", err)
		httpSrv.Close()
		return 1
	}
	httpSrv.Close()
	fmt.Fprintln(stderr, "rfidserved: drained, exiting")
	return 0
}
