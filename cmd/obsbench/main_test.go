package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestObsbenchWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_obs.json")
	var out, errBuf bytes.Buffer
	code := run([]string{"-readers", "12", "-tags", "150", "-iters", "2", "-o", path}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(rep.Results) != 6 {
		t.Fatalf("expected 6 configurations, got %d", len(rep.Results))
	}
	names := map[string]bool{}
	for _, r := range rep.Results {
		names[r.Tracer] = true
		if r.NsPerSlot <= 0 || r.Slots <= 0 {
			t.Errorf("%s: implausible measurement %+v", r.Tracer, r)
		}
	}
	for _, want := range []string{"baseline", "nil", "collector", "jsonl-discard", "flight", "metrics-spans"} {
		if !names[want] {
			t.Errorf("configuration %q missing from the report", want)
		}
	}
	// The metrics-spans runs populate the registry, so the exposition render
	// it times cannot be free.
	if rep.ExpositionNs <= 0 {
		t.Errorf("exposition render not timed: %v", rep.ExpositionNs)
	}
}

func TestObsbenchStdout(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-readers", "12", "-tags", "150", "-iters", "1"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not valid JSON: %v", err)
	}
}

func TestObsbenchBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-not-a-flag"}, &out, &errBuf); code != 2 {
		t.Errorf("exit %d for bad flag", code)
	}
}
