// Command obsbench measures the observability overhead of the covering
// schedule driver: wall time per slot of core.RunMCS with no tracer (the
// guarded nil path the hot loop pays when tracing is off), with an in-memory
// collector, with a JSONL sink, with the flight recorder's ring buffer, and
// with the metrics registry's progress gauges and phase-span histograms. It
// also times one Prometheus exposition render of the populated registry —
// the marginal cost of a /metrics scrape — and the history store's per-tick
// Sample cost over the same registry, the steady-state price of /history
// (gateable in CI with -history-gate). It writes the numbers as JSON so
// `make bench` can archive them (BENCH_obs.json) and CI can watch the nil
// path stay within noise of the untraced baseline.
//
// Usage:
//
//	obsbench -o BENCH_obs.json
//	obsbench -readers 50 -tags 1200 -iters 20
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"rfidsched/internal/core"
	"rfidsched/internal/deploy"
	"rfidsched/internal/fault"
	"rfidsched/internal/graph"
	"rfidsched/internal/obs"
	"rfidsched/internal/obs/history"
)

// result is one tracer configuration's measurement.
type result struct {
	Tracer    string  `json:"tracer"`
	Iters     int     `json:"iters"`
	Slots     int     `json:"slots_per_run"`
	NsPerOp   float64 `json:"ns_per_run"`
	NsPerSlot float64 `json:"ns_per_slot"`
}

// report is the whole benchmark output.
type report struct {
	Readers        int      `json:"readers"`
	Tags           int      `json:"tags"`
	Seed           uint64   `json:"seed"`
	Results        []result `json:"results"`
	OverheadNil    float64  `json:"overhead_nil_pct"`    // nil tracer vs baseline
	OverheadJSONL  float64  `json:"overhead_jsonl_pct"`  // JSONL sink vs baseline
	OverheadFlight float64  `json:"overhead_flight_pct"` // ring-buffer recorder vs baseline
	OverheadSpans  float64  `json:"overhead_spans_pct"`  // registry gauges + spans vs baseline
	ExpositionNs   float64  `json:"exposition_ns"`       // one /metrics render of the populated registry
	// HistorySampleNs is the mean cost of one history.Store.Sample over the
	// populated registry — what the background sampler pays per tick.
	HistorySampleNs float64 `json:"history_sample_ns"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("obsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out      = fs.String("o", "", "output JSON file (default stdout)")
		readers  = fs.Int("readers", 40, "number of readers")
		tags     = fs.Int("tags", 800, "number of tags")
		seed     = fs.Uint64("seed", 2011, "deployment seed")
		iters    = fs.Int("iters", 50, "timed runs per configuration")
		histGate = fs.Float64("history-gate", 0, "fail (exit 1) if history_sample_ns exceeds this many ns (0 = no gate)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	sys, err := deploy.Generate(deploy.Config{
		Seed: *seed, NumReaders: *readers, NumTags: *tags,
		Side: 100, LambdaR: 12, LambdaSmallR: 5,
	})
	if err != nil {
		fmt.Fprintf(stderr, "obsbench: %v\n", err)
		return 1
	}
	g := graph.FromSystem(sys)
	// Crash a fifth of the fleet so the fault path (the instrumented branch
	// with the most emission sites) is part of what we time.
	crash := fault.CrashNodes(fault.SampleNodes(*readers, *readers/5, *seed), 1)

	bench := func(tr obs.Tracer, reg *obs.Registry) (result, error) {
		slots := 0
		var total time.Duration
		for i := 0; i < *iters; i++ {
			s := sys.Clone()
			start := time.Now()
			res, err := core.RunMCS(s, core.NewGrowth(g, 1.25), core.MCSOptions{
				Faults:  &fault.Scenario{Seed: *seed, Events: crash},
				Tracer:  tr,
				Metrics: reg,
			})
			total += time.Since(start)
			if err != nil {
				return result{}, err
			}
			slots = res.Size
		}
		perRun := float64(total.Nanoseconds()) / float64(*iters)
		return result{
			Iters: *iters, Slots: slots,
			NsPerOp:   perRun,
			NsPerSlot: perRun / float64(slots),
		}, nil
	}

	// "baseline" runs with a literally nil MCSOptions.Tracer; "nil" measures
	// the same thing again so the report shows run-to-run noise — any real
	// gap between the two is measurement jitter, which is exactly the band
	// the nil-tracer contract promises to stay inside. The metrics registry
	// is reused across that configuration's iterations, like a live server's.
	metricsReg := obs.NewRegistry()
	configs := []struct {
		name string
		tr   func() obs.Tracer
		reg  *obs.Registry
	}{
		{"baseline", func() obs.Tracer { return nil }, nil},
		{"nil", func() obs.Tracer { return nil }, nil},
		{"collector", func() obs.Tracer { return &obs.Collector{} }, nil},
		{"jsonl-discard", func() obs.Tracer { return obs.NewJSONL(io.Discard) }, nil},
		{"flight", func() obs.Tracer { return obs.NewFlightRecorder(0) }, nil},
		{"metrics-spans", func() obs.Tracer { return nil }, metricsReg},
	}
	rep := report{Readers: *readers, Tags: *tags, Seed: *seed}
	// Untimed warm-up so the first timed configuration doesn't absorb cache
	// and allocator cold-start costs.
	if _, err := bench(nil, nil); err != nil {
		fmt.Fprintf(stderr, "obsbench: warm-up: %v\n", err)
		return 1
	}
	byName := map[string]result{}
	for _, c := range configs {
		r, err := bench(c.tr(), c.reg)
		if err != nil {
			fmt.Fprintf(stderr, "obsbench: %s: %v\n", c.name, err)
			return 1
		}
		r.Tracer = c.name
		rep.Results = append(rep.Results, r)
		byName[c.name] = r
	}
	base := byName["baseline"].NsPerSlot
	rep.OverheadNil = 100 * (byName["nil"].NsPerSlot - base) / base
	rep.OverheadJSONL = 100 * (byName["jsonl-discard"].NsPerSlot - base) / base
	rep.OverheadFlight = 100 * (byName["flight"].NsPerSlot - base) / base
	rep.OverheadSpans = 100 * (byName["metrics-spans"].NsPerSlot - base) / base

	// One /metrics render over the registry the metrics-spans runs filled —
	// the per-scrape cost a live telemetry server adds, off the driver path.
	expoStart := time.Now()
	if err := metricsReg.Snapshot().WriteExposition(io.Discard); err != nil {
		fmt.Fprintf(stderr, "obsbench: exposition: %v\n", err)
		return 1
	}
	rep.ExpositionNs = float64(time.Since(expoStart).Nanoseconds())

	// The history sampler's per-tick cost over the same populated registry:
	// the steady-state overhead a service pays for /history. Enough samples
	// to wrap a small ring, so steady-state (not first-discovery) dominates.
	store := history.New(metricsReg, history.Options{Capacity: 64})
	const histIters = 512
	histStart := time.Now()
	for i := 0; i < histIters; i++ {
		store.Sample()
	}
	rep.HistorySampleNs = float64(time.Since(histStart).Nanoseconds()) / histIters

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "obsbench: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(stderr, "obsbench: %v\n", err)
		return 1
	}
	if *out != "" {
		fmt.Fprintf(stdout, "obsbench: nil overhead %+.1f%%, jsonl %+.1f%%, flight %+.1f%%, spans %+.1f%%, exposition %.0fns, history sample %.0fns (wrote %s)\n",
			rep.OverheadNil, rep.OverheadJSONL, rep.OverheadFlight, rep.OverheadSpans, rep.ExpositionNs, rep.HistorySampleNs, *out)
	}
	if *histGate > 0 && rep.HistorySampleNs > *histGate {
		fmt.Fprintf(stderr, "obsbench: history sampler %.0fns/sample exceeds gate %.0fns\n", rep.HistorySampleNs, *histGate)
		return 1
	}
	return 0
}
