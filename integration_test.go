package rfidsched

import (
	"os/exec"
	"testing"
	"time"
)

// Integration tests: cross-module behavior pinned at the release surface.

// TestDeterministicPins locks the exact outcomes of every algorithm on the
// canonical seed so refactors that silently change schedules are caught.
// If an intentional algorithmic change moves these numbers, re-derive them
// with:
//
//	go test -run TestDeterministicPins -v   (failure output shows actuals)
//
// and update both the pins and EXPERIMENTS.md.
func TestDeterministicPins(t *testing.T) {
	sys, err := PaperDeployment(2011, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := InterferenceGraph(sys)

	cases := []struct {
		sched      Scheduler
		wantWeight int
	}{
		{NewPTAS(), 304},
		{NewGrowth(g, 1.25), 303},
		{NewDistributed(g, 1.25), 303},
		{NewGHC(), 297},
	}
	for _, c := range cases {
		s := sys.Clone()
		X, err := c.sched.OneShot(s)
		if err != nil {
			t.Fatalf("%s: %v", c.sched.Name(), err)
		}
		if w := s.Weight(X); w != c.wantWeight {
			t.Errorf("%s: one-shot weight = %d, pinned %d", c.sched.Name(), w, c.wantWeight)
		}
	}
}

// TestCrossAlgorithmConsistency: all paper algorithms read the same tag
// population (the coverable set) even though their schedules differ.
func TestCrossAlgorithmConsistency(t *testing.T) {
	sys, err := PaperDeployment(7, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := InterferenceGraph(sys)
	coverable := sys.CoverableCount()
	for _, sched := range []Scheduler{NewPTAS(), NewGrowth(g, 1.25), NewDistributed(g, 1.25)} {
		s := sys.Clone()
		res, err := RunCoveringSchedule(s, sched, MCSOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalRead != coverable {
			t.Errorf("%s read %d of %d coverable", sched.Name(), res.TotalRead, coverable)
		}
	}
}

// TestScaleStress runs the full pipeline at 4x the paper's scale to catch
// accidental quadratic blowups in the hot paths.
func TestScaleStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	sys, err := Generate(DeployConfig{
		Seed: 1, NumReaders: 200, NumTags: 5000, Side: 200,
		LambdaR: 12, LambdaSmallR: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := InterferenceGraph(sys)
	start := time.Now()
	res, err := RunCoveringSchedule(sys, NewGrowth(g, 1.25), MCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete {
		t.Fatal("incomplete at scale")
	}
	if d := time.Since(start); d > 2*time.Minute {
		t.Errorf("200-reader MCS took %v", d)
	}
	t.Logf("200 readers / 5000 tags: %d slots, %d read, %v", res.Size, res.TotalRead, time.Since(start))
}

// TestExamplesRun smoke-runs every example binary — the examples are
// documentation and must never rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke tests")
	}
	examples := []string{"quickstart", "warehouse", "distributed", "survey", "mobility"}
	for _, ex := range examples {
		ex := ex
		t.Run(ex, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+ex)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", ex, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", ex)
			}
		})
	}
}
