package rfidsched

import (
	"path/filepath"
	"testing"

	"rfidsched/internal/anticollision"
	"rfidsched/internal/geom"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	sys, err := PaperDeployment(1, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumReaders() != 50 || sys.NumTags() != 1200 {
		t.Fatalf("paper deployment shape: %v", sys)
	}
	g := InterferenceGraph(sys)
	if g.N() != 50 {
		t.Fatalf("graph size %d", g.N())
	}

	for _, sched := range []Scheduler{
		NewPTAS(), NewGrowth(g, 1.25), NewDistributed(g, 1.25),
		NewColorwave(g, 7), NewGHC(), NewRandomScheduler(3),
	} {
		s := sys.Clone()
		res, err := RunCoveringSchedule(s, sched, MCSOptions{})
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if res.Incomplete {
			t.Errorf("%s: incomplete schedule", sched.Name())
		}
		if s.UnreadCoverableCount() != 0 {
			t.Errorf("%s: coverable tags left unread", sched.Name())
		}
	}
}

func TestPublicAPISystemConstruction(t *testing.T) {
	readers := []Reader{
		{Pos: geom.Pt(0, 0), InterferenceR: 8, InterrogationR: 4},
		{Pos: geom.Pt(30, 0), InterferenceR: 8, InterrogationR: 4},
	}
	tags := []Tag{{Pos: geom.Pt(0, 1)}, {Pos: geom.Pt(30, 1)}}
	sys, err := NewSystem(readers, tags)
	if err != nil {
		t.Fatal(err)
	}
	if w := sys.Weight([]int{0, 1}); w != 2 {
		t.Errorf("weight = %d", w)
	}
}

func TestPublicAPISurvey(t *testing.T) {
	sys, err := PaperDeployment(5, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	g, rep, err := SurveyGraph(sys, SurveyParams{ShadowSigma: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 50 {
		t.Error("survey graph size")
	}
	if rep.Precision() <= 0 || rep.Recall() <= 0 {
		t.Error("degenerate survey report")
	}
	// Location-free scheduling on the surveyed graph.
	X, err := NewGrowth(g, 1.25).OneShot(sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(X) == 0 {
		t.Error("empty schedule on surveyed graph")
	}
}

func TestPublicAPISimulate(t *testing.T) {
	sys, err := PaperDeployment(7, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := InterferenceGraph(sys)
	res, err := Simulate(sys, NewGrowth(g, 1.25), SimConfig{
		Link: anticollision.VogtALOHA{}, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete || res.TagsRead == 0 || res.TotalMicroSlots < res.TagsRead {
		t.Errorf("sim result: %+v", res)
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	if len(FigureIDs()) != 4 {
		t.Error("figure ids")
	}
	res, err := RunFigure("fig9", ExperimentConfig{
		Trials: 1, Seed: 1, NumReaders: 15, NumTags: 200, Side: 60,
		Sweep: []float64{10}, Algorithms: []string{"Alg2-Growth"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || len(res.Series[0].Points) != 1 {
		t.Fatalf("figure shape: %+v", res)
	}
}

func TestPublicAPIDeploymentIO(t *testing.T) {
	sys, err := Generate(DeployConfig{
		Seed: 3, NumReaders: 10, NumTags: 50, Side: 40,
		LambdaR: 8, LambdaSmallR: 4, Layout: LayoutClustered,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "d.json")
	if err := ToDeployment(sys).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	d, err := LoadDeployment(path)
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := d.ToSystem()
	if err != nil {
		t.Fatal(err)
	}
	if sys2.NumReaders() != 10 || sys2.NumTags() != 50 {
		t.Error("round trip shape")
	}
}

func TestPublicAPIExactSmall(t *testing.T) {
	sys, err := Generate(DeployConfig{
		Seed: 9, NumReaders: 10, NumTags: 100, Side: 50,
		LambdaR: 10, LambdaSmallR: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	X, err := NewExact().OneShot(sys)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.IsFeasible(X) {
		t.Error("exact infeasible")
	}
}

func TestPublicAPIMultiChannel(t *testing.T) {
	sys, err := PaperDeployment(9, 14, 6)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := (MultiChannel{Channels: 4}).OneShot(sys)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.IsChannelFeasible(plan.Readers, plan.Channels) {
		t.Error("channel plan infeasible")
	}
	single, err := (MultiChannel{Channels: 1}).OneShot(sys)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Weight(sys) < single.Weight(sys) {
		t.Error("more channels reduced weight")
	}
}

func TestPublicAPIVerify(t *testing.T) {
	sys, err := PaperDeployment(11, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := InterferenceGraph(sys)
	res, err := RunCoveringSchedule(sys.Clone(), NewGrowth(g, 1.25), MCSOptions{RecordSlots: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifySchedule(sys, res, VerifyOptions{RequireFeasible: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TagsServed != res.TotalRead {
		t.Error("verification count mismatch")
	}
}

func TestPublicAPIDrift(t *testing.T) {
	sys, err := PaperDeployment(13, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDrift(sys.NumReaders(), 0, 0, 100, 100, 2, 7)
	next, err := d.Step(sys)
	if err != nil {
		t.Fatal(err)
	}
	if next.NumReaders() != sys.NumReaders() {
		t.Error("drift changed reader count")
	}
}

func TestPublicAPIFaultInjection(t *testing.T) {
	sys, err := PaperDeployment(5, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := InterferenceGraph(sys)

	// Crash a fifth of the fleet mid-schedule; the driver must repair and
	// the independent verifier must accept the degraded result.
	scenario := &FaultScenario{Seed: 5}
	for _, r := range []int{0, 3, 7, 12, 19, 24, 30, 33, 41, 47} {
		scenario.Events = append(scenario.Events, CrashReader(r, 1))
	}
	s := sys.Clone()
	res, err := RunCoveringSchedule(s, NewGrowth(g, 1.25), MCSOptions{
		RecordSlots: true,
		Faults:      scenario,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete {
		t.Fatalf("repair failed: %+v", res)
	}
	if !res.Degraded {
		t.Error("crashing 10 of 50 readers should degrade the run")
	}
	if _, err := VerifySchedule(sys, res, VerifyOptions{RequireFeasible: true}); err != nil {
		t.Errorf("verifier rejected an honest degraded schedule: %v", err)
	}

	// The retry decorator composes with any public scheduler.
	retry := &Retrying{Inner: NewGrowth(g, 1.25), MaxAttempts: 2}
	if _, err := RunCoveringSchedule(sys.Clone(), retry, MCSOptions{}); err != nil {
		t.Fatal(err)
	}
	if retry.Name() != "Alg2-Growth" {
		t.Errorf("retry wrapper must keep the inner name, got %q", retry.Name())
	}

	// The slot simulator accepts the same scenario type.
	sim, err := Simulate(sys.Clone(), NewGrowth(g, 1.25), SimConfig{
		Faults: &FaultScenario{Events: []FaultEvent{StraggleReader(2, 0, 3)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sim.LostTags != 0 {
		t.Errorf("a straggler must not lose tags, lost %d", sim.LostTags)
	}
}
