GO ?= go

.PHONY: build test vet race bench obsbench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench: obsbench
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# obsbench archives the observability overhead numbers (ns/slot with the
# tracer nil vs attached) so regressions in the guarded hot paths show up
# as a diff in BENCH_obs.json.
obsbench:
	$(GO) run ./cmd/obsbench -o BENCH_obs.json

# check is the full pre-merge gate: compile, static analysis, and the whole
# test suite under the race detector (the fault-injection layers lean on
# goroutine-per-reader execution, so -race is not optional here).
check: build vet race
