GO ?= go

.PHONY: build test vet race bench obsbench wbench wbench-check check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench: obsbench wbench
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# obsbench archives the observability overhead numbers (ns/slot with the
# tracer nil vs attached) so regressions in the guarded hot paths show up
# as a diff in BENCH_obs.json.
obsbench:
	$(GO) run ./cmd/obsbench -o BENCH_obs.json

# wbench re-archives the incremental weight-engine speedups (brute vs
# WeightEval ratios) into the committed baseline. Run it when the engine or
# the benchmark itself changes, and commit the refreshed BENCH_weight.json.
wbench:
	$(GO) run ./cmd/wbench -o BENCH_weight.json

# wbench-check is the CI benchmark-regression gate: re-measure the speedup
# ratios and fail if any tracked metric falls more than 15% below the
# committed (already margin-shaved) baseline gates. The fresh report lands
# in BENCH_weight_fresh.json for artifact upload on failure.
wbench-check:
	$(GO) run ./cmd/wbench -check -baseline BENCH_weight.json -tolerance 0.15 -o BENCH_weight_fresh.json

# check is the full pre-merge gate: compile, static analysis, and the whole
# test suite under the race detector (the fault-injection layers lean on
# goroutine-per-reader execution, so -race is not optional here).
check: build vet race
