GO ?= go

.PHONY: build test vet race bench obsbench wbench wbench-check psbench psbench-check corebench corebench-check fuzz lint check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench: obsbench wbench
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# obsbench archives the observability overhead numbers (ns/slot with the
# tracer nil vs attached) so regressions in the guarded hot paths show up
# as a diff in BENCH_obs.json. The history gate bounds the per-tick cost of
# the /history sampler (measured ~3µs; 1ms catches only real regressions,
# not CI-runner noise).
obsbench:
	$(GO) run ./cmd/obsbench -o BENCH_obs.json -history-gate 1000000

# wbench re-archives the incremental weight-engine speedups (brute vs
# WeightEval ratios) into the committed baseline. Run it when the engine or
# the benchmark itself changes, and commit the refreshed BENCH_weight.json.
wbench:
	$(GO) run ./cmd/wbench -o BENCH_weight.json

# wbench-check is the CI benchmark-regression gate: re-measure the speedup
# ratios and fail if any tracked metric falls more than 15% below the
# committed (already margin-shaved) baseline gates. The fresh report lands
# in BENCH_weight_fresh.json for artifact upload on failure.
wbench-check:
	$(GO) run ./cmd/wbench -check -baseline BENCH_weight.json -tolerance 0.15 -o BENCH_weight_fresh.json

# psbench archives the parallel search engine's sequential-vs-pooled
# wall-clock speedups (BENCH_parallel.json). The committed gate is a fixed
# per-worker efficiency floor, so the baseline does not need refreshing on
# hardware changes — rerun only when the engine or the scales change.
psbench:
	$(GO) run ./cmd/psbench -o BENCH_parallel.json

# psbench-check is the CI parallel-speedup gate: at min(4, NumCPU) workers
# the MWFS solve must hit the committed per-worker efficiency floor (0.5 =
# 2x wall-clock at 4 workers). Auto-skips on runners with fewer than 2 CPUs,
# where no speedup is physically possible.
psbench-check:
	$(GO) run ./cmd/psbench -check -baseline BENCH_parallel.json -o BENCH_parallel_fresh.json

# corebench re-archives the geometry-core construction and pooling speedups
# (frozen pre-CSR builders vs NewSystem/WarmAdjacency/pooled clones) into
# BENCH_core.json. The high iteration count tightens the best-of estimate;
# rerun and commit when internal/model construction or the benchmark
# changes.
corebench:
	$(GO) run ./cmd/corebench -iters 1000 -o BENCH_core.json

# corebench-check is the CI geometry-core gate: re-measure the construction,
# clone-pooling, and zero-alloc gates and fail on regression beyond 15% of
# the committed (margin-shaved) baseline. Auto-skips on runners with fewer
# than 2 CPUs, where timing ratios on a shared core gate noise, not code.
corebench-check:
	$(GO) run ./cmd/corebench -check -baseline BENCH_core.json -tolerance 0.15 -o BENCH_core_fresh.json

# fuzz is a bounded smoke run of the two attacker-facing parsers: the
# checkpoint decoder (torn/bit-rotted resume streams) and the /v1/schedule
# request decoder (malformed JSON, NaN/Inf coordinates, negative radii —
# must 400, never panic). 30 seconds each shakes out shallow parser panics
# without stalling CI. Raise -fuzztime locally when hunting a specific bug.
fuzz:
	$(GO) test -fuzz=FuzzCheckpointDecode -fuzztime=30s ./internal/checkpoint
	$(GO) test -fuzz=FuzzDecodeScheduleRequest -fuzztime=30s ./internal/serve

# lint runs the static analyzers CI enforces. Neither tool ships with the
# toolchain; install them once with:
#   go install honnef.co/go/tools/cmd/staticcheck@2024.1.1
#   go install golang.org/x/vuln/cmd/govulncheck@v1.1.3
lint:
	staticcheck ./...
	govulncheck ./...

# check is the full pre-merge gate: compile, static analysis, and the whole
# test suite under the race detector (the fault-injection layers lean on
# goroutine-per-reader execution, so -race is not optional here).
check: build vet race
