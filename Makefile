GO ?= go

.PHONY: build test vet race bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# check is the full pre-merge gate: compile, static analysis, and the whole
# test suite under the race detector (the fault-injection layers lean on
# goroutine-per-reader execution, so -race is not optional here).
check: build vet race
