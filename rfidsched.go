// Package rfidsched is a from-scratch Go implementation of the reader
// activation scheduling algorithms of Tang, Wang, Li and Jiang, "Reader
// Activation Scheduling in Multi-Reader RFID Systems: A Study of General
// Case" (IEEE IPDPS 2011), together with every substrate their evaluation
// depends on: the multi-reader/tag system model with heterogeneous
// interference and interrogation radii, interference graphs and RF site
// surveys, link-layer tag anti-collision protocols, a synchronous
// message-passing kernel for the distributed variant, a slot-level
// simulator and the full experiment harness reproducing the paper's
// Figures 6-9.
//
// # The problem
//
// Multiple RFID readers share a deployment region. Activating two readers
// whose interference disks overlap destroys one of them for the slot
// (reader-tag collision); a tag inside two active interrogation regions is
// unreadable (reader-reader collision). A feasible scheduling set is a set
// of pairwise-independent readers; its weight is the number of unread tags
// it well-covers. The One-Shot Schedule Problem asks for a maximum-weight
// feasible set; iterating it greedily yields a log(n)-approximate Minimum
// Covering Schedule.
//
// # Quick start
//
//	sys, _ := rfidsched.PaperDeployment(1, 12, 5) // 50 readers, 1200 tags
//	g := rfidsched.InterferenceGraph(sys)
//	sched := rfidsched.NewGrowth(g, 1.25) // Algorithm 2: no locations needed
//	res, _ := rfidsched.RunCoveringSchedule(sys, sched, rfidsched.MCSOptions{})
//	fmt.Println("slots:", res.Size)
//
// Three one-shot schedulers implement the paper's contributions:
// NewPTAS (Algorithm 1, locations known, heterogeneous radii), NewGrowth
// (Algorithm 2, interference graph only) and NewDistributed (Algorithm 3,
// same guarantee with no central entity, executed over a goroutine-per-
// reader message-passing network). NewColorwave and NewGHC provide the
// paper's comparison baselines, and NewExact the ground-truth solver.
package rfidsched

import (
	"rfidsched/internal/baseline"
	"rfidsched/internal/core"
	"rfidsched/internal/deploy"
	"rfidsched/internal/experiments"
	"rfidsched/internal/fault"
	"rfidsched/internal/geom"
	"rfidsched/internal/graph"
	"rfidsched/internal/mobility"
	"rfidsched/internal/model"
	"rfidsched/internal/randx"
	"rfidsched/internal/slotsim"
	"rfidsched/internal/survey"
	"rfidsched/internal/verify"
)

// Core model types.
type (
	// Reader is one RFID reader: position, interference radius R_i and
	// interrogation radius r_i <= R_i.
	Reader = model.Reader
	// Tag is one passive tag.
	Tag = model.Tag
	// System is a deployment plus unread-tag state; see NewSystem.
	System = model.System
	// Scheduler solves the One-Shot Schedule Problem (Definition 6).
	Scheduler = model.OneShotScheduler
	// CollisionStats classifies a slot's physical outcome (RTc/RRc counts).
	CollisionStats = model.CollisionStats
	// Graph is an interference graph (Definition 7).
	Graph = graph.Graph
)

// Deployment generation.
type (
	// DeployConfig parameterizes random deployments; see Generate.
	DeployConfig = deploy.Config
	// Layout selects the spatial distribution of readers and tags.
	Layout = deploy.Layout
	// Deployment is the JSON-serializable form of a System.
	Deployment = deploy.Deployment
)

// Deployment layouts.
const (
	LayoutUniform     = deploy.Uniform
	LayoutClustered   = deploy.Clustered
	LayoutAisles      = deploy.Aisles
	LayoutHotspot     = deploy.Hotspot
	LayoutGridReaders = deploy.GridReaders
)

// Scheduling drivers.
type (
	// MCSOptions tunes RunCoveringSchedule.
	MCSOptions = core.MCSOptions
	// MCSResult reports a covering schedule run.
	MCSResult = core.MCSResult
	// PTAS is Algorithm 1; construct with NewPTAS and optionally adjust K
	// and Lambda.
	PTAS = core.PTAS
	// Growth is Algorithm 2; construct with NewGrowth.
	Growth = core.Growth
	// Distributed is Algorithm 3; construct with NewDistributed.
	Distributed = core.Distributed
	// SimConfig tunes Simulate (link layer, arrivals, timeline recording).
	SimConfig = slotsim.Config
	// SimResult reports a slot-level simulation.
	SimResult = slotsim.Result
	// SurveyParams configures the RF site survey; see SurveyGraph.
	SurveyParams = survey.Params
	// SurveyReport grades a survey against the true geometry.
	SurveyReport = survey.Report
	// ExperimentConfig parameterizes RunFigure.
	ExperimentConfig = experiments.Config
	// FigureResult is a reproduced evaluation figure.
	FigureResult = experiments.FigureResult
)

// NewSystem builds a System from explicit readers and tags, validating the
// radius invariants and precomputing coverage.
func NewSystem(readers []Reader, tags []Tag) (*System, error) {
	return model.NewSystem(readers, tags)
}

// Generate draws a random deployment.
func Generate(cfg DeployConfig) (*System, error) { return deploy.Generate(cfg) }

// PaperDeployment returns the paper's Section VI setting: 50 readers and
// 1200 tags uniform in a 100x100 square, radii Poisson(lambdaR) and
// Poisson(lambdaSmallR) with R_i >= r_i enforced.
func PaperDeployment(seed uint64, lambdaR, lambdaSmallR float64) (*System, error) {
	return deploy.Generate(deploy.Paper(seed, lambdaR, lambdaSmallR))
}

// InterferenceGraph derives the exact interference graph of a deployment
// (what a perfect RF site survey would measure).
func InterferenceGraph(sys *System) *Graph { return graph.FromSystem(sys) }

// SurveyGraph estimates the interference graph through a simulated RF site
// survey with log-distance path loss and shadowing, returning the graph and
// an accuracy report against the true geometry.
func SurveyGraph(sys *System, p SurveyParams) (*Graph, SurveyReport, error) {
	return survey.EstimateGraph(sys, p)
}

// NewPTAS returns Algorithm 1, the location-aware PTAS (default k=3, Λ=6).
func NewPTAS() *PTAS { return core.NewPTAS() }

// NewGrowth returns Algorithm 2, the centralized location-free scheduler
// with guarantee w(X) >= w(OPT)/rho.
func NewGrowth(g *Graph, rho float64) *Growth { return core.NewGrowth(g, rho) }

// NewDistributed returns Algorithm 3, the distributed location-free
// scheduler (same guarantee, no central entity).
func NewDistributed(g *Graph, rho float64) *Distributed { return core.NewDistributed(g, rho) }

// NewColorwave returns the Colorwave (CA) baseline.
func NewColorwave(g *Graph, seed uint64) Scheduler { return baseline.NewColorwave(g, seed) }

// NewGHC returns the Greedy Hill-Climbing baseline.
func NewGHC() Scheduler { return baseline.GHC{} }

// NewExact returns the exact branch-and-bound one-shot solver (ground
// truth; exponential worst case).
func NewExact() Scheduler { return &baseline.Exact{} }

// NewRandomScheduler returns the random maximal feasible set baseline.
func NewRandomScheduler(seed uint64) Scheduler {
	rng := randx.New(seed)
	return &baseline.Random{Next: rng.Intn}
}

// RunCoveringSchedule iterates a one-shot scheduler until every coverable
// tag has been read (the paper's greedy MCS driver, Theorem 1). The
// system's read state is mutated.
func RunCoveringSchedule(sys *System, sched Scheduler, opts MCSOptions) (*MCSResult, error) {
	return core.RunMCS(sys, sched, opts)
}

// Simulate runs the slot-level simulator: reader schedule plus link-layer
// tag anti-collision and optional tag arrivals.
func Simulate(sys *System, sched Scheduler, cfg SimConfig) (*SimResult, error) {
	return slotsim.Run(sys, sched, cfg)
}

// RunFigure reproduces one of the paper's evaluation figures ("fig6".."fig9").
func RunFigure(id string, cfg ExperimentConfig) (*FigureResult, error) {
	return experiments.RunFigure(id, cfg)
}

// FigureIDs lists the reproducible figures.
func FigureIDs() []string { return experiments.FigureIDs() }

// Extensions beyond the paper's evaluation.
type (
	// MultiChannel is the dense-reading-mode scheduler: C frequency
	// channels remove RTc between channels (RRc remains, tags are
	// frequency blind).
	MultiChannel = core.MultiChannel
	// ChannelAssignment is a multi-channel activation plan.
	ChannelAssignment = core.Assignment
	// Drift moves readers with constant-speed random headings, reflecting
	// at the region boundary (the "highly dynamic readers" of the paper's
	// introduction).
	Drift = mobility.Drift
	// VerifyOptions tunes VerifySchedule.
	VerifyOptions = verify.Options
	// VerifyReport is the independent checker's outcome.
	VerifyReport = verify.Report
)

// NewDrift builds a reader-mobility process over the given region; see
// package mobility for the staleness and adaptive-rescheduling harnesses.
func NewDrift(numReaders int, minX, minY, maxX, maxY, speed float64, seed uint64) *Drift {
	return mobility.NewDrift(numReaders, geom.R2(minX, minY, maxX, maxY), speed, seed)
}

// VerifySchedule independently replays a recorded covering schedule against
// a pristine copy of the deployment, checking feasibility, per-slot tag
// accounting, double-serves and completion. Run RunCoveringSchedule with
// MCSOptions.RecordSlots to obtain a verifiable result.
func VerifySchedule(sys *System, result *MCSResult, opts VerifyOptions) (VerifyReport, error) {
	return verify.Schedule(sys, result, opts)
}

// Fault injection (see internal/fault for the full scenario DSL).
type (
	// FaultScenario is a seeded, reproducible script of fault events,
	// attachable to RunCoveringSchedule (MCSOptions.Faults, tick = schedule
	// slot), Simulate (SimConfig.Faults, tick = macro slot) and Distributed
	// (Distributed.Faults, tick = protocol round).
	FaultScenario = fault.Scenario
	// FaultEvent is one scripted fault; build with CrashReader and friends.
	FaultEvent = fault.Event
	// Retrying decorates a Scheduler with bounded seeded-backoff retries,
	// converting persistent protocol failures into retry-exhausted errors.
	Retrying = core.Retrying
)

// FaultForever marks a fault interval that never ends.
const FaultForever = fault.Forever

// CrashReader fail-stops a reader at the given tick, permanently.
func CrashReader(reader, at int) FaultEvent { return fault.Crash(reader, at) }

// CrashReaderRecover takes a reader down for ticks [at, until).
func CrashReaderRecover(reader, at, until int) FaultEvent {
	return fault.CrashRecover(reader, at, until)
}

// StraggleReader pauses a reader for k ticks starting at the given tick.
func StraggleReader(reader, at, k int) FaultEvent { return fault.Straggle(reader, at, k) }

// PartitionNetwork cuts the given edges for ticks [at, until); only the
// distributed protocol's radio network observes partitions.
func PartitionNetwork(edges [][2]int, at, until int) FaultEvent {
	return fault.Partition(edges, at, until)
}

// MessageLoss drops each network message independently with the given rate
// during ticks [at, until).
func MessageLoss(rate float64, at, until int) FaultEvent { return fault.Loss(rate, at, until) }

// ToDeployment converts a System to its serializable form.
func ToDeployment(sys *System) *Deployment { return deploy.ToDeployment(sys) }

// LoadDeployment reads a deployment JSON file.
func LoadDeployment(path string) (*Deployment, error) { return deploy.LoadFile(path) }
