module rfidsched

go 1.22
