// Mobility: the "highly dynamic readers" scenario the paper's introduction
// uses to argue against location-based scheduling. Readers drift around the
// region; we measure (1) how quickly a frozen activation set decays —
// losing weight and eventually feasibility — and (2) how rescheduling
// frequency trades computation against throughput, using Algorithm 2 whose
// only input (the interference graph) can be re-measured after movement.
package main

import (
	"fmt"
	"log/slog"
	"os"
	"strings"

	"rfidsched"
	"rfidsched/internal/geom"
	"rfidsched/internal/graph"
	"rfidsched/internal/mobility"
	"rfidsched/internal/model"
	"rfidsched/internal/obs"
)

func main() {
	logger := obs.NewLogger(os.Stderr, slog.LevelInfo)
	sys, err := rfidsched.PaperDeployment(808, 12, 5)
	if err != nil {
		obs.Fatal(logger, "generating deployment", err)
	}
	region := geom.R2(0, 0, 100, 100)
	g := rfidsched.InterferenceGraph(sys)

	// Part 1: staleness. Freeze one activation set, drift the readers,
	// watch the weight decay.
	fmt.Println("frozen-schedule decay (speed 3 units/slot):")
	drift := mobility.NewDrift(sys.NumReaders(), region, 3, 99)
	res, err := mobility.MeasureStaleness(sys.Clone(), rfidsched.NewGrowth(g, 1.25), drift, 24)
	if err != nil {
		obs.Fatal(logger, "measuring staleness", err)
	}
	w0 := res.Weights[0]
	for k := 0; k < len(res.Weights); k += 4 {
		bar := strings.Repeat("#", res.Weights[k]*40/max(1, w0))
		fmt.Printf("  t=%2d  weight %4d  %s\n", k, res.Weights[k], bar)
	}
	if res.FeasibleUntil < len(res.Weights) {
		fmt.Printf("  the frozen set stopped being feasible after %d slots\n", res.FeasibleUntil)
	} else {
		fmt.Println("  the frozen set stayed feasible over the horizon (weight still decays)")
	}

	// Part 2: rescheduling cadence.
	fmt.Println("\nrescheduling cadence under drift (speed 2 units/slot):")
	fmt.Printf("  %-18s %8s %12s %12s\n", "recompute every", "slots", "tags read", "recomputes")
	for _, every := range []int{1, 5, 10, 25} {
		d := mobility.NewDrift(sys.NumReaders(), region, 2, 123)
		run, err := mobility.RunAdaptive(sys.Clone(), func(cur *model.System) (model.OneShotScheduler, error) {
			// Movement changed the geometry: re-derive the interference
			// graph, exactly what a periodic RF site survey would do.
			return rfidsched.NewGrowth(graph.FromSystem(cur), 1.25), nil
		}, d, every, 5000)
		if err != nil {
			obs.Fatal(logger, "adaptive rescheduling", err)
		}
		status := ""
		if run.Incomplete {
			status = " (incomplete)"
		}
		fmt.Printf("  %-18d %8d %12d %12d%s\n", every, run.Slots, run.TagsRead, run.Recomputes, status)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
