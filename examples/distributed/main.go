// Distributed: Algorithm 3 running as a real message-passing protocol —
// one goroutine per reader, synchronous rounds, hop-bounded flooding over
// the interference-graph radio topology, no central entity. The example
// reports the communication cost (rounds, messages) alongside schedule
// quality, and shows how the control parameter c trades locality against
// the ρ guarantee.
package main

import (
	"fmt"
	"log/slog"
	"os"

	"rfidsched"
	"rfidsched/internal/obs"
)

func main() {
	logger := obs.NewLogger(os.Stderr, slog.LevelInfo)
	sys, err := rfidsched.PaperDeployment(404, 12, 5)
	if err != nil {
		obs.Fatal(logger, "generating deployment", err)
	}
	g := rfidsched.InterferenceGraph(sys)
	fmt.Printf("network: %d reader nodes, %d radio links, max degree %d\n\n",
		g.N(), g.M(), g.MaxDegree())

	// One protocol execution = one One-Shot Schedule computation.
	alg := rfidsched.NewDistributed(g, 1.25)
	X, err := alg.OneShot(sys)
	if err != nil {
		obs.Fatal(logger, "distributed one-shot", err)
	}
	fmt.Printf("one-shot result: %d readers activated, weight %d\n", len(X), sys.Weight(X))
	fmt.Printf("protocol cost:   %d synchronous rounds, %d messages (c = %d)\n\n",
		alg.LastStats.Rounds, alg.LastStats.MessagesSent, alg.ControlParameter())

	// The control parameter c bounds how far a coordinator may grow its
	// local solution. Small c = short epochs and few messages; large c =
	// the full Theorem 5 safety margin.
	fmt.Printf("%-6s %8s %10s %10s %8s\n", "c", "weight", "rounds", "messages", "slots")
	for _, c := range []int{2, 4, 8, 16} {
		a := rfidsched.NewDistributed(g, 1.25)
		a.C = c
		one := sys.Clone()
		X, err := a.OneShot(one)
		if err != nil {
			obs.Fatal(logger, "distributed one-shot", err)
		}
		w := one.Weight(X)
		rounds, msgs := a.LastStats.Rounds, a.LastStats.MessagesSent

		full := sys.Clone()
		res, err := rfidsched.RunCoveringSchedule(full, a, rfidsched.MCSOptions{})
		if err != nil {
			obs.Fatal(logger, "covering schedule", err)
		}
		fmt.Printf("%-6d %8d %10d %10d %8d\n", c, w, rounds, msgs, res.Size)
	}

	fmt.Println("\nevery decision was made from hop-local information only;")
	fmt.Println("the runtime verifies no node ever messaged beyond its radio range.")
}
