// Survey: the full "no location information" pipeline of Section V. An RF
// site survey measures pairwise signal strengths under log-distance path
// loss with shadowing, thresholds them into an estimated interference
// graph, and Algorithm 2 schedules on that measured graph — never touching
// reader coordinates. The example sweeps the shadowing noise and shows how
// survey quality (edge precision/recall) translates into schedule quality
// and, crucially, whether the resulting schedule is still feasible in the
// true geometry.
package main

import (
	"fmt"
	"log/slog"
	"os"

	"rfidsched"
	"rfidsched/internal/obs"
)

func main() {
	logger := obs.NewLogger(os.Stderr, slog.LevelInfo)
	sys, err := rfidsched.PaperDeployment(515, 12, 5)
	if err != nil {
		obs.Fatal(logger, "generating deployment", err)
	}
	trueGraph := rfidsched.InterferenceGraph(sys)
	fmt.Printf("ground truth: %d readers, %d interference edges\n\n", trueGraph.N(), trueGraph.M())

	fmt.Printf("%-10s %-8s %10s %8s %8s %10s %10s %9s\n",
		"sigma(dB)", "margin", "edges", "prec", "recall", "weight", "feasible", "slots")
	for _, cfg := range []struct {
		sigma, margin float64
	}{
		{0, 0},  // perfect survey
		{2, 0},  // light shadowing
		{6, 0},  // heavy shadowing
		{6, 10}, // heavy shadowing, conservative 10 dB margin
	} {
		est, rep, err := rfidsched.SurveyGraph(sys, rfidsched.SurveyParams{
			ShadowSigma: cfg.sigma,
			Margin:      cfg.margin,
			Samples:     8,
			Seed:        42,
		})
		if err != nil {
			obs.Fatal(logger, "running RF survey", err)
		}

		one := sys.Clone()
		sched := rfidsched.NewGrowth(est, 1.25)
		X, err := sched.OneShot(one)
		if err != nil {
			obs.Fatal(logger, "one-shot scheduling", err)
		}
		// The schedule was computed on the estimated graph; judge it
		// against physical reality.
		feasible := one.IsFeasible(X)
		w := one.Weight(X)

		full := sys.Clone()
		res, err := rfidsched.RunCoveringSchedule(full, sched, rfidsched.MCSOptions{})
		if err != nil {
			obs.Fatal(logger, "covering schedule", err)
		}

		fmt.Printf("%-10.0f %-8.0f %10d %8.2f %8.2f %10d %10v %9d\n",
			cfg.sigma, cfg.margin, est.M(), rep.Precision(), rep.Recall(), w, feasible, res.Size)
	}

	fmt.Println("\na conservative margin buys truly-feasible schedules from a noisy survey")
	fmt.Println("at the cost of extra (phantom) interference edges and slightly longer schedules.")
}
