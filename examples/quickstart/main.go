// Quickstart: generate the paper's evaluation deployment, compute a
// covering schedule with each of the three proposed algorithms plus the
// baselines, and print a comparison — the whole public API in ~60 lines.
package main

import (
	"fmt"
	"log/slog"
	"os"

	"rfidsched"
	"rfidsched/internal/obs"
)

func main() {
	logger := obs.NewLogger(os.Stderr, slog.LevelInfo)
	// The paper's Section VI setting: 50 readers and 1200 tags uniformly
	// random in a 100x100 region; interference radii ~ Poisson(12),
	// interrogation radii ~ Poisson(5), R_i >= r_i enforced.
	sys, err := rfidsched.PaperDeployment(2011, 12, 5)
	if err != nil {
		obs.Fatal(logger, "generating deployment", err)
	}
	fmt.Printf("deployment: %d readers, %d tags (%d coverable by some reader)\n\n",
		sys.NumReaders(), sys.NumTags(), sys.CoverableCount())

	// Algorithms 2 and 3 need only the interference graph — no reader
	// coordinates. Here we derive the exact graph; examples/survey shows
	// the measured-graph path.
	g := rfidsched.InterferenceGraph(sys)

	schedulers := []rfidsched.Scheduler{
		rfidsched.NewPTAS(),               // Algorithm 1: locations known
		rfidsched.NewGrowth(g, 1.25),      // Algorithm 2: graph only
		rfidsched.NewDistributed(g, 1.25), // Algorithm 3: no central entity
		rfidsched.NewGHC(),                // baseline: greedy hill-climbing
		rfidsched.NewColorwave(g, 7),      // baseline: Colorwave
	}

	fmt.Printf("%-18s %8s %10s %12s\n", "algorithm", "slots", "tags read", "one-shot w")
	for _, sched := range schedulers {
		// One-shot weight first (Figures 8/9 metric)...
		oneShot := sys.Clone()
		X, err := sched.OneShot(oneShot)
		if err != nil {
			obs.Fatal(logger, "one-shot scheduling", err)
		}
		w := oneShot.Weight(X)

		// ...then a full covering schedule (Figures 6/7 metric).
		run := sys.Clone()
		res, err := rfidsched.RunCoveringSchedule(run, sched, rfidsched.MCSOptions{})
		if err != nil {
			obs.Fatal(logger, "covering schedule", err)
		}
		fmt.Printf("%-18s %8d %10d %12d\n", sched.Name(), res.Size, res.TotalRead, w)
	}
}
