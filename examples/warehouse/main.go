// Warehouse: an aisle-structured deployment (readers along aisles, tags on
// shelves) with heterogeneous reader hardware, scheduled with Algorithm 2
// and simulated down to the link layer. This is the scenario the paper's
// introduction motivates — goods management with many readers covering
// dense tag populations — and it exercises the slot-level simulator's
// air-time accounting with every anti-collision protocol.
package main

import (
	"fmt"
	"log/slog"
	"os"

	"rfidsched"
	"rfidsched/internal/anticollision"
	"rfidsched/internal/obs"
)

func main() {
	logger := obs.NewLogger(os.Stderr, slog.LevelInfo)
	sys, err := rfidsched.Generate(rfidsched.DeployConfig{
		Seed:         77,
		NumReaders:   60,
		NumTags:      2400,
		Side:         120,
		LambdaR:      14,
		LambdaSmallR: 6,
		Layout:       rfidsched.LayoutAisles,
		NumAisles:    6,
	})
	if err != nil {
		obs.Fatal(logger, "generating warehouse deployment", err)
	}
	g := rfidsched.InterferenceGraph(sys)
	fmt.Printf("warehouse: %d readers on 6 aisles, %d tags (%d coverable), %d interference edges\n\n",
		sys.NumReaders(), sys.NumTags(), sys.CoverableCount(), g.M())

	// Schedule once per link-layer protocol: the reader activation schedule
	// is identical (same scheduler, same deployment); what changes is how
	// long each slot's tag inventory takes on the air.
	protocols := []anticollision.Protocol{
		nil, // idealized: one micro slot per tag (the paper's model)
		anticollision.FramedALOHA{FrameSize: 128},
		anticollision.VogtALOHA{},
		anticollision.QProtocol{},
		anticollision.TreeSplitting{},
	}
	fmt.Printf("%-22s %12s %12s %14s %12s\n",
		"link layer", "macro slots", "tags read", "micro slots", "slots/tag")
	for _, p := range protocols {
		name := "ideal"
		if p != nil {
			name = p.Name()
		}
		res, err := rfidsched.Simulate(sys.Clone(), rfidsched.NewGrowth(g, 1.25), rfidsched.SimConfig{
			Link: p,
			Seed: 99,
		})
		if err != nil {
			obs.Fatal(logger, "link-layer simulation", err)
		}
		fmt.Printf("%-22s %12d %12d %14d %12.2f\n",
			name, res.MacroSlots, res.TagsRead, res.TotalMicroSlots,
			float64(res.TotalMicroSlots)/float64(res.TagsRead))
	}

	// Churn extension: pallets keep arriving while the system reads.
	fmt.Println("\nwith tag churn (Poisson 30 arrivals/slot, 600 total):")
	res, err := rfidsched.Simulate(sys.Clone(), rfidsched.NewGrowth(g, 1.25), rfidsched.SimConfig{
		Link:        anticollision.VogtALOHA{},
		Seed:        101,
		ArrivalRate: 30,
		MaxArrivals: 600,
	})
	if err != nil {
		obs.Fatal(logger, "churn simulation", err)
	}
	fmt.Printf("  %d macro slots, %d tags injected, %d read, final population %d\n",
		res.MacroSlots, res.TagsInjected, res.TagsRead, res.Final.NumTags())
}
