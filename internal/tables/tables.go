// Package tables renders experiment results as aligned ASCII, Markdown, or
// CSV tables. The benchmark harness prints the same rows/series the paper's
// figures report, so everything here is presentation only: no statistics,
// no floats parsed back.
package tables

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple header + rows structure.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// WriteASCII renders the table with aligned columns and a rule under the
// header.
func (t *Table) WriteASCII(w io.Writer) error {
	widths := t.widths()
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	if err := writeRow(w, t.Header, widths); err != nil {
		return err
	}
	rule := make([]string, len(widths))
	for i, wd := range widths {
		rule[i] = strings.Repeat("-", wd)
	}
	if err := writeRow(w, rule, widths); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(w, row, widths); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders a GitHub-flavored Markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "**%s**\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		padded := pad(row, len(t.Header))
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(padded, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders header and rows as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(pad(row, len(t.Header))); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func (t *Table) widths() []int {
	n := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > n {
			n = len(row)
		}
	}
	widths := make([]int, n)
	measure := func(row []string) {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	measure(t.Header)
	for _, row := range t.Rows {
		measure(row)
	}
	return widths
}

func writeRow(w io.Writer, cells []string, widths []int) error {
	parts := make([]string, len(widths))
	for i := range widths {
		cell := ""
		if i < len(cells) {
			cell = cells[i]
		}
		parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
	}
	_, err := fmt.Fprintf(w, "%s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	return err
}

func pad(row []string, n int) []string {
	if len(row) >= n {
		return row[:n]
	}
	out := make([]string, n)
	copy(out, row)
	return out
}
