package tables

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{Title: "Demo", Header: []string{"alg", "x", "mean"}}
	t.Add("Alg1", 6, 12.50)
	t.Add("Alg2", 6, 13.0)
	t.Add("CA", 6, 22.125)
	return t
}

func TestASCIIAlignment(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Demo") {
		t.Errorf("missing title: %q", lines[0])
	}
	if !strings.Contains(lines[1], "alg") || !strings.Contains(lines[1], "mean") {
		t.Errorf("header: %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("rule: %q", lines[2])
	}
	if !strings.Contains(out, "12.5") {
		t.Error("float not rendered trimmed")
	}
	if strings.Contains(out, "12.50") {
		t.Error("trailing zero kept")
	}
}

func TestMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "**Demo**") {
		t.Error("missing bold title")
	}
	if !strings.Contains(out, "| alg | x | mean |") {
		t.Errorf("header row wrong:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- | --- |") {
		t.Error("separator row wrong")
	}
	if !strings.Contains(out, "| Alg2 | 6 | 13 |") {
		t.Errorf("data row wrong:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "alg,x,mean" {
		t.Errorf("csv header = %q", lines[0])
	}
	if lines[3] != "CA,6,22.12" {
		t.Errorf("csv row = %q", lines[3])
	}
}

func TestRaggedRowsPadded(t *testing.T) {
	tbl := &Table{Header: []string{"a", "b", "c"}}
	tbl.Rows = append(tbl.Rows, []string{"only"})
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "only,,") {
		t.Errorf("ragged row not padded: %q", buf.String())
	}
	buf.Reset()
	if err := tbl.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := tbl.WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestNoTitle(t *testing.T) {
	tbl := &Table{Header: []string{"x"}}
	tbl.Add(1)
	var buf bytes.Buffer
	if err := tbl.WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(buf.String(), "\n") {
		t.Error("blank title line emitted")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1.0, "1"}, {1.25, "1.25"}, {1.2, "1.2"}, {0, "0"}, {-2.50, "-2.5"},
	}
	for _, c := range cases {
		if got := trimFloat(c.in); got != c.want {
			t.Errorf("trimFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
