package anticollision

import (
	"testing"

	"rfidsched/internal/randx"
)

func allProtocols() []Protocol {
	// The fixed frame is kept comfortably sized for the largest test
	// population: a fixed frame overloaded by an order of magnitude
	// physically livelocks (all slots collide), which is Vogt's and Q's
	// reason to exist and is exercised separately.
	return []Protocol{
		FramedALOHA{FrameSize: 64},
		VogtALOHA{},
		QProtocol{},
		TreeSplitting{},
	}
}

func TestAllProtocolsReadEveryTag(t *testing.T) {
	for _, p := range allProtocols() {
		for _, n := range []int{0, 1, 2, 5, 50, 300} {
			rng := randx.New(42)
			res := p.Inventory(n, rng)
			if res.Singles != n {
				t.Errorf("%s: n=%d read %d tags", p.Name(), n, res.Singles)
			}
			if res.Slots != res.Singles+res.Collisions+res.Idle {
				t.Errorf("%s: slot accounting broken: %+v", p.Name(), res)
			}
			if n > 0 && res.Slots < n {
				t.Errorf("%s: %d slots for %d tags is impossible", p.Name(), res.Slots, n)
			}
		}
	}
}

func TestZeroTagsZeroOrTinyCost(t *testing.T) {
	for _, p := range allProtocols() {
		rng := randx.New(1)
		res := p.Inventory(0, rng)
		if res.Singles != 0 || res.Collisions != 0 {
			t.Errorf("%s: phantom activity on empty population: %+v", p.Name(), res)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	for _, p := range allProtocols() {
		a := p.Inventory(100, randx.New(7))
		b := p.Inventory(100, randx.New(7))
		if a != b {
			t.Errorf("%s: nondeterministic: %+v vs %+v", p.Name(), a, b)
		}
	}
}

func TestFramedALOHAEfficiencyNearTheory(t *testing.T) {
	// With frame size == population, slotted ALOHA efficiency approaches
	// 1/e ~ 0.368 per frame; completing the whole inventory keeps overall
	// efficiency in a band around ~0.35.
	rng := randx.New(9)
	var total Result
	for trial := 0; trial < 20; trial++ {
		res := FramedALOHA{FrameSize: 64}.Inventory(64, rng)
		total.Slots += res.Slots
		total.Singles += res.Singles
	}
	eff := total.Efficiency()
	if eff < 0.25 || eff > 0.45 {
		t.Errorf("framed ALOHA efficiency %v outside [0.25, 0.45]", eff)
	}
}

func TestTreeSplittingSlotBound(t *testing.T) {
	// Binary tree walking needs ~2.885 slots per tag asymptotically.
	rng := randx.New(11)
	var slots, tags int
	for trial := 0; trial < 20; trial++ {
		res := TreeSplitting{}.Inventory(200, rng)
		slots += res.Slots
		tags += res.Singles
	}
	perTag := float64(slots) / float64(tags)
	if perTag < 2.0 || perTag > 3.8 {
		t.Errorf("tree splitting %v slots/tag, expected ~2.9", perTag)
	}
}

func TestVogtAdaptsToLargePopulation(t *testing.T) {
	// NOTE: a fixed frame far smaller than the population (say 16 vs 500)
	// physically livelocks — nearly every slot collides — which is exactly
	// why dynamic sizing exists. Use a 128-slot fixed frame so the
	// comparison terminates, and let Vogt start badly sized.
	rng := randx.New(13)
	fixed := FramedALOHA{FrameSize: 128}.Inventory(500, rng)
	rng = randx.New(13)
	vogt := VogtALOHA{InitialFrame: 16}.Inventory(500, rng)
	if vogt.Slots >= fixed.Slots {
		t.Errorf("vogt (%d slots) not better than mis-sized fixed frame (%d slots)", vogt.Slots, fixed.Slots)
	}
}

func TestQProtocolReasonableEfficiency(t *testing.T) {
	rng := randx.New(15)
	var total Result
	for trial := 0; trial < 10; trial++ {
		res := QProtocol{}.Inventory(200, rng)
		total.Slots += res.Slots
		total.Singles += res.Singles
	}
	if eff := total.Efficiency(); eff < 0.15 {
		t.Errorf("Q protocol efficiency %v too low", eff)
	}
}

func TestDefaultsKickIn(t *testing.T) {
	rng := randx.New(17)
	if res := (FramedALOHA{}).Inventory(10, rng); res.Singles != 10 {
		t.Error("FramedALOHA zero-value frame broken")
	}
	if res := (VogtALOHA{MinFrame: 0, MaxFrame: 0}).Inventory(10, rng); res.Singles != 10 {
		t.Error("VogtALOHA zero-value clamps broken")
	}
	if res := (QProtocol{InitialQ: 0, C: 0, MaxQ: 0}).Inventory(10, rng); res.Singles != 10 {
		t.Error("QProtocol zero-value params broken")
	}
}

func TestEfficiencyZeroSlots(t *testing.T) {
	if (Result{}).Efficiency() != 0 {
		t.Error("Efficiency on zero slots should be 0")
	}
}

func TestNames(t *testing.T) {
	for _, p := range allProtocols() {
		if p.Name() == "" {
			t.Error("empty protocol name")
		}
	}
}
