package anticollision

import "math"

// Population estimation from framed-ALOHA observations. The paper's
// reference [24] (Kodialam & Nandagopal, MobiCom 2006) estimates tag
// cardinality from the idle/singleton/collision counts of a frame; dynamic
// framing (Vogt) and frame-size planning both need such estimates. Three
// classical estimators are provided; EstimatorAccuracy in the tests
// measures their bias against simulated frames.

// FrameObservation is what a reader sees after one ALOHA frame.
type FrameObservation struct {
	FrameSize  int
	Idle       int
	Singles    int
	Collisions int
}

// Estimator maps a frame observation to an estimated number of responding
// tags (including the singulated ones).
type Estimator interface {
	Name() string
	Estimate(obs FrameObservation) float64
}

// SchouteEstimator uses Schoute's expected 2.39 tags per colliding slot
// (optimal-backlog assumption): n ≈ singles + 2.39 * collisions.
type SchouteEstimator struct{}

// Name implements Estimator.
func (SchouteEstimator) Name() string { return "schoute" }

// Estimate implements Estimator.
func (SchouteEstimator) Estimate(obs FrameObservation) float64 {
	return float64(obs.Singles) + 2.39*float64(obs.Collisions)
}

// LowerBoundEstimator is Vogt's lower bound: every colliding slot hides at
// least two tags: n >= singles + 2 * collisions.
type LowerBoundEstimator struct{}

// Name implements Estimator.
func (LowerBoundEstimator) Name() string { return "vogt-lb" }

// Estimate implements Estimator.
func (LowerBoundEstimator) Estimate(obs FrameObservation) float64 {
	return float64(obs.Singles) + 2*float64(obs.Collisions)
}

// ZeroEstimator is the Kodialam-Nandagopal zero estimator: with n tags in F
// slots, E[idle] = F(1-1/F)^n, so n ≈ ln(idle/F) / ln(1-1/F). It needs at
// least one idle slot; with none it falls back to the upper bound that
// exactly one idle slot would have produced (the frame was saturated).
type ZeroEstimator struct{}

// Name implements Estimator.
func (ZeroEstimator) Name() string { return "zero" }

// Estimate implements Estimator.
func (ZeroEstimator) Estimate(obs FrameObservation) float64 {
	f := float64(obs.FrameSize)
	if f < 2 {
		return float64(obs.Singles + 2*obs.Collisions)
	}
	idle := float64(obs.Idle)
	if idle < 1 {
		idle = 0.5 // saturation fallback: below one idle slot's resolution
	}
	return math.Log(idle/f) / math.Log(1-1/f)
}

// CollisionEstimator inverts the expected collision count
// E[coll] = F(1 - (1-1/F)^n - (n/F)(1-1/F)^(n-1)) numerically by bisection.
type CollisionEstimator struct{}

// Name implements Estimator.
func (CollisionEstimator) Name() string { return "collision" }

// Estimate implements Estimator.
func (CollisionEstimator) Estimate(obs FrameObservation) float64 {
	f := float64(obs.FrameSize)
	if f < 2 || obs.Collisions == 0 {
		return float64(obs.Singles)
	}
	target := float64(obs.Collisions)
	expected := func(n float64) float64 {
		p := math.Pow(1-1/f, n)
		return f * (1 - p - n/f*math.Pow(1-1/f, n-1))
	}
	lo, hi := 0.0, 64*f // collisions saturate well below this
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if expected(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
