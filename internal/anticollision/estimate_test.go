package anticollision

import (
	"math"
	"testing"

	"rfidsched/internal/randx"
)

// observeFrame simulates one frame of size f with n tags and returns the
// observation.
func observeFrame(n, f int, rng *randx.RNG) FrameObservation {
	counts := make([]int, f)
	for i := 0; i < n; i++ {
		counts[rng.Intn(f)]++
	}
	obs := FrameObservation{FrameSize: f}
	for _, c := range counts {
		switch {
		case c == 0:
			obs.Idle++
		case c == 1:
			obs.Singles++
		default:
			obs.Collisions++
		}
	}
	return obs
}

func allEstimators() []Estimator {
	return []Estimator{
		SchouteEstimator{}, LowerBoundEstimator{}, ZeroEstimator{}, CollisionEstimator{},
	}
}

func TestEstimatorNames(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range allEstimators() {
		if e.Name() == "" || seen[e.Name()] {
			t.Errorf("bad/duplicate estimator name %q", e.Name())
		}
		seen[e.Name()] = true
	}
}

// Averaged over many frames at moderate load, every estimator should land
// within 25% of the true population.
func TestEstimatorAccuracyModerateLoad(t *testing.T) {
	rng := randx.New(42)
	const n, f, frames = 100, 128, 300
	for _, e := range allEstimators() {
		sum := 0.0
		for i := 0; i < frames; i++ {
			sum += e.Estimate(observeFrame(n, f, rng))
		}
		mean := sum / frames
		if math.Abs(mean-n)/n > 0.25 {
			t.Errorf("%s: mean estimate %.1f for true %d", e.Name(), mean, n)
		}
	}
}

// The zero estimator is known to stay accurate at higher loads where
// Schoute's per-collision constant drifts.
func TestZeroEstimatorHighLoad(t *testing.T) {
	rng := randx.New(7)
	const n, f, frames = 300, 128, 300
	sum := 0.0
	for i := 0; i < frames; i++ {
		sum += (ZeroEstimator{}).Estimate(observeFrame(n, f, rng))
	}
	mean := sum / frames
	if math.Abs(mean-n)/n > 0.2 {
		t.Errorf("zero estimator mean %.1f for true %d", mean, n)
	}
}

func TestLowerBoundIsLower(t *testing.T) {
	rng := randx.New(9)
	for i := 0; i < 50; i++ {
		obs := observeFrame(150, 64, rng)
		lb := (LowerBoundEstimator{}).Estimate(obs)
		sch := (SchouteEstimator{}).Estimate(obs)
		if lb > sch {
			t.Fatalf("lower bound %v above Schoute %v", lb, sch)
		}
	}
}

func TestZeroEstimatorSaturated(t *testing.T) {
	// No idle slots: must return a finite, large estimate, not +Inf/NaN.
	obs := FrameObservation{FrameSize: 64, Idle: 0, Singles: 4, Collisions: 60}
	v := (ZeroEstimator{}).Estimate(obs)
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 64 {
		t.Errorf("saturated estimate = %v", v)
	}
}

func TestEstimatorsDegenerateFrames(t *testing.T) {
	tiny := FrameObservation{FrameSize: 1, Idle: 0, Singles: 0, Collisions: 1}
	for _, e := range allEstimators() {
		v := e.Estimate(tiny)
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Errorf("%s: degenerate frame -> %v", e.Name(), v)
		}
	}
	empty := FrameObservation{FrameSize: 16, Idle: 16}
	for _, e := range allEstimators() {
		v := e.Estimate(empty)
		if v > 1 {
			t.Errorf("%s: empty frame estimated %v tags", e.Name(), v)
		}
	}
}

func TestCollisionEstimatorMonotone(t *testing.T) {
	// More collisions (same frame) must never decrease the estimate.
	prev := -1.0
	for coll := 0; coll <= 50; coll += 5 {
		obs := FrameObservation{FrameSize: 64, Collisions: coll, Idle: 64 - coll}
		v := (CollisionEstimator{}).Estimate(obs)
		if v < prev-1e-9 {
			t.Fatalf("estimate dropped at collisions=%d: %v -> %v", coll, prev, v)
		}
		prev = v
	}
}
