// Package anticollision implements the link-layer tag singulation protocols
// the paper assumes resolve tag-tag collisions (Section II: "TTc can be
// successfully resolved through certain link-layered protocol i.e., framed
// Aloha or tree-splitting"): fixed framed slotted ALOHA, Vogt's dynamic
// frame sizing, the EPCglobal Gen2 Q-algorithm, and binary tree splitting.
//
// The slot simulator composes one of these with a reader-activation
// schedule to convert "tags served per macro slot" into actual air-time, so
// total inventory duration — the metric EGA-style protocols optimize — can
// be reported alongside the paper's schedule-size metric.
package anticollision

import (
	"fmt"

	"rfidsched/internal/randx"
)

// Result describes one inventory run over a tag population.
type Result struct {
	Slots      int // total link-layer slots consumed
	Singles    int // slots with exactly one responder (successful reads)
	Collisions int // slots with >= 2 responders
	Idle       int // empty slots
}

// Efficiency returns the fraction of slots that read a tag.
func (r Result) Efficiency() float64 {
	if r.Slots == 0 {
		return 0
	}
	return float64(r.Singles) / float64(r.Slots)
}

// Protocol is a tag singulation protocol: Inventory simulates reading n
// tags to completion and reports the slot budget it needed.
type Protocol interface {
	Name() string
	Inventory(n int, rng *randx.RNG) Result
}

// FramedALOHA is classic framed slotted ALOHA with a fixed frame size: each
// unread tag picks a uniform slot in every frame; singleton slots succeed.
type FramedALOHA struct {
	FrameSize int // slots per frame; must be >= 1
}

// Name implements Protocol.
func (p FramedALOHA) Name() string { return fmt.Sprintf("framed-aloha(F=%d)", p.FrameSize) }

// Inventory implements Protocol.
func (p FramedALOHA) Inventory(n int, rng *randx.RNG) Result {
	f := p.FrameSize
	if f < 1 {
		f = 16
	}
	var res Result
	remaining := n
	for remaining > 0 {
		read := simulateFrame(remaining, f, rng, &res)
		remaining -= read
	}
	return res
}

// simulateFrame plays one frame of the given size with `tags` responders
// and returns the number singulated, updating res.
func simulateFrame(tags, frame int, rng *randx.RNG, res *Result) int {
	counts := make([]int, frame)
	for i := 0; i < tags; i++ {
		counts[rng.Intn(frame)]++
	}
	read := 0
	for _, c := range counts {
		res.Slots++
		switch {
		case c == 0:
			res.Idle++
		case c == 1:
			res.Singles++
			read++
		default:
			res.Collisions++
		}
	}
	return read
}

// VogtALOHA is framed ALOHA with Vogt's dynamic frame sizing: after each
// frame the backlog is estimated from the observed idle/single/collision
// counts (Schoute's estimator: ~2.39 tags per colliding slot) and the next
// frame is sized to the estimate, clamped to a power-of-two-ish range as
// real readers do.
type VogtALOHA struct {
	InitialFrame int // first frame size; default 16
	MinFrame     int // clamp; default 4
	MaxFrame     int // clamp; default 512

	// Backlog estimates the remaining population from each frame's
	// observation; nil uses SchouteEstimator (see estimate.go for the
	// alternatives and their accuracy trade-offs).
	Backlog Estimator
}

// Name implements Protocol.
func (p VogtALOHA) Name() string { return "vogt-aloha" }

// Inventory implements Protocol.
func (p VogtALOHA) Inventory(n int, rng *randx.RNG) Result {
	frame := p.InitialFrame
	if frame < 1 {
		frame = 16
	}
	minF := p.MinFrame
	if minF < 1 {
		minF = 4
	}
	maxF := p.MaxFrame
	if maxF < minF {
		maxF = 512
	}
	backlog := p.Backlog
	if backlog == nil {
		backlog = SchouteEstimator{}
	}
	var res Result
	remaining := n
	for remaining > 0 {
		before := res
		read := simulateFrame(remaining, frame, rng, &res)
		remaining -= read
		obs := FrameObservation{
			FrameSize:  frame,
			Idle:       res.Idle - before.Idle,
			Singles:    res.Singles - before.Singles,
			Collisions: res.Collisions - before.Collisions,
		}
		// Size the next frame to the estimated unresolved backlog (the
		// estimate includes the singles just read; subtract them).
		est := int(backlog.Estimate(obs) - float64(obs.Singles) + 0.5)
		if est < minF {
			est = minF
		}
		if est > maxF {
			est = maxF
		}
		frame = est
	}
	return res
}

// QProtocol is the EPCglobal Class-1 Gen-2 Q algorithm: tags draw a slot in
// [0, 2^Q); the reader nudges the float-valued Q up on collisions and down
// on idles, re-running rounds until the population is exhausted.
type QProtocol struct {
	InitialQ float64 // starting Q; default 4
	C        float64 // adjustment step; default 0.3
	MaxQ     float64 // cap; default 15
}

// Name implements Protocol.
func (p QProtocol) Name() string { return "gen2-q" }

// Inventory implements Protocol.
func (p QProtocol) Inventory(n int, rng *randx.RNG) Result {
	q := p.InitialQ
	if q <= 0 {
		q = 4
	}
	c := p.C
	if c <= 0 {
		c = 0.3
	}
	maxQ := p.MaxQ
	if maxQ <= 0 {
		maxQ = 15
	}
	var res Result
	remaining := n
	for remaining > 0 {
		qInt := int(q + 0.5)
		if qInt < 0 {
			qInt = 0
		}
		frame := 1 << qInt
		// One query round: each remaining tag draws a slot; the reader
		// walks the frame slot by slot, adjusting the float-valued Q per
		// outcome. When round(Q) changes, the reader issues QueryAdjust —
		// the round restarts with the new frame size and the tags not yet
		// singulated redraw.
		counts := make([]int, frame)
		for i := 0; i < remaining; i++ {
			counts[rng.Intn(frame)]++
		}
		for _, k := range counts {
			res.Slots++
			switch {
			case k == 0:
				res.Idle++
				q -= c
			case k == 1:
				res.Singles++
				remaining--
			default:
				res.Collisions++
				q += c
			}
			if q < 0 {
				q = 0
			}
			if q > maxQ {
				q = maxQ
			}
			if int(q+0.5) != qInt {
				break // QueryAdjust
			}
		}
	}
	return res
}

// TreeSplitting is the binary tree-walking protocol: a colliding group
// splits into two random subgroups, recursively, until every group is a
// singleton or empty. Every query is one slot.
type TreeSplitting struct{}

// Name implements Protocol.
func (TreeSplitting) Name() string { return "tree-splitting" }

// Inventory implements Protocol.
func (TreeSplitting) Inventory(n int, rng *randx.RNG) Result {
	var res Result
	var walk func(group int)
	walk = func(group int) {
		res.Slots++
		switch {
		case group == 0:
			res.Idle++
			return
		case group == 1:
			res.Singles++
			return
		default:
			res.Collisions++
			left := 0
			for i := 0; i < group; i++ {
				if rng.Bool(0.5) {
					left++
				}
			}
			walk(left)
			walk(group - left)
		}
	}
	if n > 0 {
		walk(n)
	}
	return res
}
