package fault

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestCompileValidation(t *testing.T) {
	cases := []struct {
		name string
		scn  Scenario
	}{
		{"node out of range", Scenario{Events: []Event{Crash(5, 0)}}},
		{"negative node", Scenario{Events: []Event{Crash(-1, 0)}}},
		{"empty interval", Scenario{Events: []Event{CrashRecover(0, 3, 3)}}},
		{"inverted interval", Scenario{Events: []Event{CrashRecover(0, 5, 2)}}},
		{"negative at", Scenario{Events: []Event{CrashRecover(0, -1, 2)}}},
		{"partition self-loop", Scenario{Events: []Event{Partition([][2]int{{1, 1}}, 0, 5)}}},
		{"partition out of range", Scenario{Events: []Event{Partition([][2]int{{0, 9}}, 0, 5)}}},
		{"straggle out of range", Scenario{Events: []Event{Straggle(4, 0, 2)}}},
	}
	for _, tc := range cases {
		if _, err := tc.scn.Compile(4); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := (Scenario{}).Compile(-1); err == nil {
		t.Error("negative node count accepted")
	}
}

func TestCrashIntervals(t *testing.T) {
	p := MustCompile(Scenario{Events: []Event{
		Crash(0, 5),
		CrashRecover(1, 2, 4),
	}}, 3)

	if p.Crashed(0, 4) {
		t.Error("node 0 down before At")
	}
	for _, tick := range []int{5, 6, 1000} {
		if !p.Crashed(0, tick) {
			t.Errorf("node 0 up at %d after permanent crash", tick)
		}
		if !p.PermanentlyDown(0, tick) {
			t.Errorf("node 0 not permanently down at %d", tick)
		}
	}
	if p.PermanentlyDown(0, 4) {
		t.Error("node 0 permanently down before the crash")
	}

	if p.Crashed(1, 1) || p.Crashed(1, 4) {
		t.Error("node 1 down outside [2,4)")
	}
	if !p.Crashed(1, 2) || !p.Crashed(1, 3) {
		t.Error("node 1 up inside [2,4)")
	}
	if p.PermanentlyDown(1, 3) {
		t.Error("recovering crash reported permanent")
	}

	if p.Crashed(2, 0) || p.Straggling(2, 0) {
		t.Error("untouched node faulted")
	}
}

func TestStraggleAndPartitionQueries(t *testing.T) {
	p := MustCompile(Scenario{Events: []Event{
		Straggle(2, 3, 4), // rounds 3..6
		Partition([][2]int{{0, 1}, {1, 2}}, 10, 20),
	}}, 4)

	for tick, want := range map[int]bool{2: false, 3: true, 6: true, 7: false} {
		if got := p.Straggling(2, tick); got != want {
			t.Errorf("Straggling(2,%d) = %v, want %v", tick, got, want)
		}
	}
	if !p.Cut(0, 1, 10) || !p.Cut(1, 0, 19) {
		t.Error("cut edge not cut (both orientations should match)")
	}
	if p.Cut(0, 1, 9) || p.Cut(0, 1, 20) {
		t.Error("edge cut outside the interval")
	}
	if p.Cut(0, 2, 15) {
		t.Error("uncut edge reported cut")
	}
	if !p.AnyCut(15) || p.AnyCut(25) {
		t.Error("AnyCut interval wrong")
	}
}

func TestDropDeterministicAndRateable(t *testing.T) {
	scn := Scenario{Seed: 42, Events: []Event{Loss(0.3, 0, Forever)}}
	run := func() []bool {
		p := MustCompile(scn, 1)
		out := make([]bool, 2000)
		for i := range out {
			out[i] = p.Drop(5)
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same scenario produced different drop sequences")
	}
	drops := 0
	for _, d := range a {
		if d {
			drops++
		}
	}
	if frac := float64(drops) / float64(len(a)); frac < 0.2 || frac > 0.4 {
		t.Errorf("drop fraction %v implausible for rate 0.3", frac)
	}

	// Outside the interval no draw happens and nothing drops.
	p := MustCompile(Scenario{Seed: 42, Events: []Event{Loss(1, 5, 10)}}, 1)
	if p.Drop(4) || p.Drop(10) {
		t.Error("loss active outside [5,10)")
	}
	if !p.Drop(5) {
		t.Error("rate-1 loss did not drop")
	}
}

func TestRateClamping(t *testing.T) {
	if Loss(1.7, 0, 1).Rate != 1 || Loss(-0.2, 0, 1).Rate != 0 {
		t.Error("loss rate not clamped to [0,1]")
	}
	if Duplicate(2, 0, 1).Rate != 1 {
		t.Error("duplicate rate not clamped")
	}
}

func TestSampleNodes(t *testing.T) {
	a := SampleNodes(50, 10, 7)
	b := SampleNodes(50, 10, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SampleNodes not deterministic")
	}
	if len(a) != 10 {
		t.Fatalf("len = %d, want 10", len(a))
	}
	seen := map[int]bool{}
	for _, v := range a {
		if v < 0 || v >= 50 {
			t.Fatalf("node %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("node %d sampled twice", v)
		}
		seen[v] = true
	}
	if got := SampleNodes(5, 10, 1); len(got) != 5 {
		t.Errorf("k>n not clamped: %v", got)
	}
	if SampleNodes(5, 0, 1) != nil || SampleNodes(0, 3, 1) != nil {
		t.Error("degenerate sample not empty")
	}
}

func TestCrashNodesHelper(t *testing.T) {
	evs := CrashNodes([]int{3, 1}, 7)
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	for _, ev := range evs {
		if ev.Kind != KindCrash || ev.At != 7 || ev.Until != Forever {
			t.Errorf("bad event %+v", ev)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindCrash: "crash", KindStraggle: "straggle", KindPartition: "partition",
		KindLoss: "loss", KindDuplicate: "duplicate", KindReorder: "reorder",
	} {
		if k.String() != want {
			t.Errorf("Kind %d = %q", k, k.String())
		}
	}
}

func TestPermAndReorder(t *testing.T) {
	p := MustCompile(Scenario{Seed: 9, Events: []Event{Reorder(0, 4)}}, 2)
	if !p.Reordered(0) || p.Reordered(4) {
		t.Error("reorder interval wrong")
	}
	perm := p.Perm(6)
	if len(perm) != 6 {
		t.Fatalf("perm len %d", len(perm))
	}
	seen := map[int]bool{}
	for _, v := range perm {
		seen[v] = true
	}
	if len(seen) != 6 {
		t.Errorf("not a permutation: %v", perm)
	}
}

func TestValidateDescriptiveErrors(t *testing.T) {
	// Validate is the construction-time pre-flight; each rejection must
	// carry a message that names the defect, not just "invalid".
	cases := []struct {
		name string
		scn  Scenario
		want string
	}{
		{"negative start", Scenario{Events: []Event{{Kind: KindCrash, Node: 0, At: -2, Until: 5}}}, "negative start tick"},
		{"zero-length window", Scenario{Events: []Event{{Kind: KindCrash, Node: 0, At: 3, Until: 3}}}, "zero-length window"},
		{"inverted window", Scenario{Events: []Event{{Kind: KindStraggle, Node: 0, At: 5, Until: 2}}}, "zero-length window"},
		{"start at Forever", Scenario{Events: []Event{{Kind: KindCrash, Node: 0, At: Forever, Until: Forever + 1}}}, "Forever"},
		{"node out of range", Scenario{Events: []Event{{Kind: KindCrash, Node: 7, At: 0, Until: 2}}}, "out of range"},
		{"negative node", Scenario{Events: []Event{{Kind: KindStraggle, Node: -1, At: 0, Until: 2}}}, "out of range"},
		{"NaN rate", Scenario{Events: []Event{{Kind: KindLoss, Rate: math.NaN(), At: 0, Until: 2}}}, "outside [0,1]"},
		{"negative rate", Scenario{Events: []Event{{Kind: KindLoss, Rate: -0.5, At: 0, Until: 2}}}, "outside [0,1]"},
		{"rate above one", Scenario{Events: []Event{{Kind: KindDuplicate, Rate: 1.5, At: 0, Until: 2}}}, "outside [0,1]"},
		{"partition edge out of range", Scenario{Events: []Event{{Kind: KindPartition, Edges: [][2]int{{0, 4}}, At: 0, Until: 2}}}, "invalid for 4 nodes"},
	}
	for _, tc := range cases {
		err := tc.scn.Validate(4)
		if err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// The pre-flight accepts exactly what Compile accepts.
	good := Scenario{Seed: 1, Events: []Event{
		Crash(1, 2), Straggle(0, 1, 3), Loss(0.25, 0, 10),
		Duplicate(1, 0, 5), Partition([][2]int{{0, 3}}, 2, 8),
	}}
	if err := good.Validate(4); err != nil {
		t.Errorf("Validate rejected a valid scenario: %v", err)
	}
}
