// Package fault defines deterministic, scripted fault scenarios for the
// execution layers of rfidsched. Real dense-reader deployments do not fail
// only by independent per-message loss: readers crash (and sometimes come
// back), radio links partition, slow controllers skip protocol rounds, and
// duplicated or reordered frames arrive out of sequence. A Scenario is a
// seeded, reproducible script of such events over an abstract integer
// timeline; each consumer interprets ticks at its own granularity:
//
//   - package distnet interprets ticks as protocol rounds (Algorithm 3's
//     synchronous network), where every fault kind applies;
//   - the covering-schedule driver (core.RunMCS) and the slot simulator
//     (slotsim.Run) interpret ticks as schedule slots, where crash and
//     straggle events decide which readers actually activate.
//
// Compiling a Scenario yields a Plan: an immutable query structure plus one
// seeded RNG for the probabilistic kinds (loss, duplication, reorder), so a
// fixed Scenario always replays the same faults — the contract the
// determinism regression tests in internal/core rely on. A Plan's RNG
// advances as it is queried, so compile a fresh Plan per run; Compile is
// cheap.
package fault

import (
	"fmt"
	"math"
	"slices"

	"rfidsched/internal/randx"
)

// Forever marks an event with no deactivation tick: the fault persists to
// the end of the run. It is deliberately far below MaxInt so interval
// arithmetic (at+k) cannot overflow.
const Forever = 1 << 30

// Kind enumerates the fault kinds of the scenario DSL.
type Kind uint8

const (
	// KindCrash is a fail-stop reader crash: the node stops stepping and
	// sending at At; with Until < Forever it reboots at Until (its radio
	// buffers are lost while down).
	KindCrash Kind = iota
	// KindStraggle pauses a node: it skips Steps during [At, Until) but
	// stays alive and keeps accumulating its inbox.
	KindStraggle
	// KindPartition cuts an edge set of the radio topology during
	// [At, Until): messages across cut edges are dropped.
	KindPartition
	// KindLoss drops each message independently with probability Rate
	// during [At, Until) — the generalization of the old Bernoulli
	// WithLoss knob.
	KindLoss
	// KindDuplicate delivers each message twice with probability Rate
	// during [At, Until).
	KindDuplicate
	// KindReorder shuffles every inbox delivered during [At, Until)
	// (deterministically, from the scenario seed) instead of the default
	// sorted-by-sender order.
	KindReorder
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindStraggle:
		return "straggle"
	case KindPartition:
		return "partition"
	case KindLoss:
		return "loss"
	case KindDuplicate:
		return "duplicate"
	case KindReorder:
		return "reorder"
	default:
		return fmt.Sprintf("fault.Kind(%d)", uint8(k))
	}
}

// Event is one scripted fault. Build events with the constructors below;
// the zero value is not a valid event.
type Event struct {
	Kind  Kind
	Node  int      // Crash / Straggle target
	Edges [][2]int // Partition cut (undirected pairs)
	At    int      // first active tick (inclusive)
	Until int      // first inactive tick (exclusive); Forever = permanent
	Rate  float64  // Loss / Duplicate probability in [0, 1]
}

// Crash returns a permanent fail-stop crash of node at tick at.
func Crash(node, at int) Event {
	return Event{Kind: KindCrash, Node: node, At: at, Until: Forever}
}

// CrashRecover returns a crash of node during [at, until): fail-stop at
// at, reboot at until with empty radio buffers.
func CrashRecover(node, at, until int) Event {
	return Event{Kind: KindCrash, Node: node, At: at, Until: until}
}

// Straggle returns a pause of node for k ticks starting at at: the node
// skips Steps but keeps accumulating messages.
func Straggle(node, at, k int) Event {
	return Event{Kind: KindStraggle, Node: node, At: at, Until: at + k}
}

// Partition cuts the given undirected edges during [at, until).
func Partition(edges [][2]int, at, until int) Event {
	return Event{Kind: KindPartition, Edges: edges, At: at, Until: until}
}

// Loss drops each message independently with probability rate during
// [at, until). Rates outside [0, 1] are clamped.
func Loss(rate float64, at, until int) Event {
	return Event{Kind: KindLoss, Rate: clamp01(rate), At: at, Until: until}
}

// Duplicate delivers each message twice with probability rate during
// [at, until). Rates outside [0, 1] are clamped.
func Duplicate(rate float64, at, until int) Event {
	return Event{Kind: KindDuplicate, Rate: clamp01(rate), At: at, Until: until}
}

// Reorder shuffles delivered inboxes during [at, until).
func Reorder(at, until int) Event {
	return Event{Kind: KindReorder, At: at, Until: until}
}

func clamp01(r float64) float64 {
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// Scenario is a seeded script of fault events. The zero value is the
// fault-free scenario. Scenarios are plain data: copy and extend freely.
type Scenario struct {
	// Seed drives every probabilistic event (loss, duplication, reorder).
	// Two compilations of the same scenario replay identical faults.
	Seed uint64

	// Events is the script; order is irrelevant.
	Events []Event
}

// IsZero reports whether the scenario injects no faults at all.
func (s Scenario) IsZero() bool { return len(s.Events) == 0 }

// span is a half-open active interval [at, until).
type span struct{ at, until int }

func (sp span) contains(t int) bool { return t >= sp.at && t < sp.until }

// Plan is a compiled Scenario for a system of n nodes: immutable interval
// structures plus the seeded RNG for probabilistic kinds. Query methods
// are cheap; the probabilistic ones (Drop, Duplicated, Perm) advance the
// RNG and must be called in a deterministic order (the single-threaded
// delivery loop of distnet does so).
type Plan struct {
	n        int
	crash    [][]span
	straggle [][]span
	cuts     map[uint64][]span
	anyCut   []span
	loss     []Event
	dup      []Event
	reorder  []span

	rng  *randx.RNG
	draw func() float64
}

// Compile validates the scenario against an n-node system and builds the
// query plan.
func (s Scenario) Compile(n int) (*Plan, error) {
	if n < 0 {
		return nil, fmt.Errorf("fault: negative node count %d", n)
	}
	p := &Plan{
		n:        n,
		crash:    make([][]span, n),
		straggle: make([][]span, n),
		cuts:     map[uint64][]span{},
	}
	p.rng = randx.New(s.Seed)
	p.draw = p.rng.Float64
	for i, ev := range s.Events {
		if ev.At < 0 {
			return nil, fmt.Errorf("fault: event %d (%s): negative start tick %d", i, ev.Kind, ev.At)
		}
		if ev.At >= Forever {
			return nil, fmt.Errorf("fault: event %d (%s): start tick %d is at or beyond Forever (%d) and can never activate", i, ev.Kind, ev.At, Forever)
		}
		if ev.Until <= ev.At {
			return nil, fmt.Errorf("fault: event %d (%s): zero-length window [%d,%d)", i, ev.Kind, ev.At, ev.Until)
		}
		if ev.Kind == KindLoss || ev.Kind == KindDuplicate {
			if math.IsNaN(ev.Rate) || ev.Rate < 0 || ev.Rate > 1 {
				return nil, fmt.Errorf("fault: event %d (%s): rate %v outside [0,1]", i, ev.Kind, ev.Rate)
			}
		}
		sp := span{ev.At, ev.Until}
		switch ev.Kind {
		case KindCrash, KindStraggle:
			if ev.Node < 0 || ev.Node >= n {
				return nil, fmt.Errorf("fault: event %d (%s): node %d out of range [0,%d)", i, ev.Kind, ev.Node, n)
			}
			if ev.Kind == KindCrash {
				p.crash[ev.Node] = append(p.crash[ev.Node], sp)
			} else {
				p.straggle[ev.Node] = append(p.straggle[ev.Node], sp)
			}
		case KindPartition:
			for _, e := range ev.Edges {
				u, v := e[0], e[1]
				if u == v || u < 0 || v < 0 || u >= n || v >= n {
					return nil, fmt.Errorf("fault: event %d (partition): edge (%d,%d) invalid for %d nodes", i, u, v, n)
				}
				p.cuts[edgeKey(u, v)] = append(p.cuts[edgeKey(u, v)], sp)
			}
			p.anyCut = append(p.anyCut, sp)
		case KindLoss:
			p.loss = append(p.loss, ev)
		case KindDuplicate:
			p.dup = append(p.dup, ev)
		case KindReorder:
			p.reorder = append(p.reorder, sp)
		default:
			return nil, fmt.Errorf("fault: event %d: unknown kind %d", i, ev.Kind)
		}
	}
	for _, spans := range [][][]span{p.crash, p.straggle} {
		for _, l := range spans {
			slices.SortFunc(l, func(a, b span) int { return a.at - b.at })
		}
	}
	return p, nil
}

// Validate checks the scenario against an n-node system without keeping
// the query plan — the cheap pre-flight check CLIs and config loaders run
// before committing to a long run. It accepts exactly the scenarios
// Compile accepts: non-negative below-Forever start ticks, non-empty
// windows, in-range node IDs and edge endpoints, rates inside [0, 1].
func (s Scenario) Validate(n int) error {
	_, err := s.Compile(n)
	return err
}

// MustCompile is Compile for scenarios known valid; it panics on error
// (tests and examples).
func MustCompile(s Scenario, n int) *Plan {
	p, err := s.Compile(n)
	if err != nil {
		panic(err)
	}
	return p
}

func edgeKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(uint32(v))
}

// N returns the node count the plan was compiled for.
func (p *Plan) N() int { return p.n }

// SetDraw overrides the loss-draw source; the legacy distnet WithLoss shim
// uses it to preserve caller-supplied randomness streams.
func (p *Plan) SetDraw(draw func() float64) { p.draw = draw }

// RNGState captures the plan's probabilistic-draw state for checkpointing.
// A resumed consumer compiles the same Scenario (rebuilding the immutable
// interval structures) and calls RestoreRNG so the probabilistic kinds
// (loss, duplication, reorder) continue the exact stream the interrupted
// run was drawing from.
func (p *Plan) RNGState() (state, inc uint64) { return p.rng.State() }

// RestoreRNG restores the draw stream captured by RNGState. It does not
// undo a SetDraw override — callers that replaced the draw source own its
// persistence.
func (p *Plan) RestoreRNG(state, inc uint64) { p.rng.SetState(state, inc) }

// Crashed reports whether node is down (fail-stop, not yet recovered) at
// tick t.
func (p *Plan) Crashed(node, t int) bool { return inSpans(p.crash[node], t) }

// PermanentlyDown reports whether node is crashed at tick t with no
// scripted recovery: some crash interval with Until == Forever has begun.
// Consumers use it to distinguish "wait for the reboot" from "replan
// without this reader".
func (p *Plan) PermanentlyDown(node, t int) bool {
	for _, sp := range p.crash[node] {
		if sp.at <= t && sp.until == Forever {
			return true
		}
	}
	return false
}

// Straggling reports whether node skips its Step at tick t.
func (p *Plan) Straggling(node, t int) bool { return inSpans(p.straggle[node], t) }

// Cut reports whether the undirected edge (u,v) carries no traffic at
// tick t.
func (p *Plan) Cut(u, v, t int) bool { return inSpans(p.cuts[edgeKey(u, v)], t) }

// AnyCut reports whether any partition is active at tick t (telemetry).
func (p *Plan) AnyCut(t int) bool { return inSpans(p.anyCut, t) }

// Reordered reports whether inboxes delivered at tick t are shuffled.
func (p *Plan) Reordered(t int) bool { return inSpans(p.reorder, t) }

// Drop decides the fate of one message at tick t under the active loss
// events; it consumes one RNG draw per active event.
func (p *Plan) Drop(t int) bool {
	drop := false
	for _, ev := range p.loss {
		if t >= ev.At && t < ev.Until && p.draw() < ev.Rate {
			drop = true
		}
	}
	return drop
}

// Duplicated decides whether one delivered message at tick t is duplicated;
// it consumes one RNG draw per active duplication event.
func (p *Plan) Duplicated(t int) bool {
	dup := false
	for _, ev := range p.dup {
		if t >= ev.At && t < ev.Until && p.rng.Float64() < ev.Rate {
			dup = true
		}
	}
	return dup
}

// Perm returns a seeded pseudo-random permutation of [0, k) for inbox
// reordering; it advances the RNG.
func (p *Plan) Perm(k int) []int { return p.rng.Perm(k) }

func inSpans(spans []span, t int) bool {
	for _, sp := range spans {
		if sp.contains(t) {
			return true
		}
	}
	return false
}

// SampleNodes deterministically picks k distinct nodes of [0, n) from
// seed — the helper chaos sweeps use to crash a fraction of the fleet.
// k is clamped to [0, n]; the result is sorted.
func SampleNodes(n, k int, seed uint64) []int {
	if k <= 0 || n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	perm := randx.New(seed).Perm(n)
	out := append([]int(nil), perm[:k]...)
	slices.Sort(out)
	return out
}

// CrashNodes returns one permanent fail-stop event per node at tick at.
func CrashNodes(nodes []int, at int) []Event {
	out := make([]Event, 0, len(nodes))
	for _, v := range nodes {
		out = append(out, Crash(v, at))
	}
	return out
}
