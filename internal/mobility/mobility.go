// Package mobility models moving readers — the situation the paper's
// introduction uses to motivate location-free scheduling ("the position of
// each reader is often highly dynamic and we can not expect that their
// exact geometry location can always be obtained").
//
// Readers drift with constant-speed random headings, reflecting off the
// region boundary. Because model.System is immutable geometry, each Step
// rebuilds the system at the new positions while carrying the read-state
// over; tag indices are stable so bookkeeping survives.
//
// Two measurement harnesses quantify what mobility does to scheduling:
//
//   - MeasureStaleness freezes one activation set and watches its weight
//     and feasibility decay as the readers move out from under it — the
//     cost of NOT rescheduling.
//   - RunAdaptive re-runs the one-shot scheduler every `recompute` slots
//     and reports throughput, the knob a deployment actually tunes.
package mobility

import (
	"fmt"
	"math"

	"rfidsched/internal/geom"
	"rfidsched/internal/model"
	"rfidsched/internal/randx"
)

// Drift moves readers with constant speed and per-slot heading jitter,
// reflecting at the region boundary.
type Drift struct {
	Region geom.Rect
	Speed  float64 // distance per slot
	Jitter float64 // heading change std-dev per slot, radians

	rng      *randx.RNG
	headings []float64
}

// NewDrift builds a drift process for n readers.
func NewDrift(n int, region geom.Rect, speed float64, seed uint64) *Drift {
	d := &Drift{Region: region, Speed: speed, Jitter: 0.3, rng: randx.New(seed)}
	d.headings = make([]float64, n)
	for i := range d.headings {
		d.headings[i] = d.rng.Float64() * 2 * math.Pi
	}
	return d
}

// Step advances every reader one slot and returns the rebuilt system with
// the read-state carried over. The input system is not mutated.
func (d *Drift) Step(sys *model.System) (*model.System, error) {
	if len(d.headings) != sys.NumReaders() {
		return nil, fmt.Errorf("mobility: drift built for %d readers, system has %d",
			len(d.headings), sys.NumReaders())
	}
	readers := make([]model.Reader, sys.NumReaders())
	for i := range readers {
		r := sys.Reader(i)
		d.headings[i] += d.rng.NormalMS(0, d.Jitter)
		nx := r.Pos.X + d.Speed*math.Cos(d.headings[i])
		ny := r.Pos.Y + d.Speed*math.Sin(d.headings[i])
		// Reflect at the boundary (and flip the heading component).
		if nx < d.Region.Min.X {
			nx = 2*d.Region.Min.X - nx
			d.headings[i] = math.Pi - d.headings[i]
		} else if nx > d.Region.Max.X {
			nx = 2*d.Region.Max.X - nx
			d.headings[i] = math.Pi - d.headings[i]
		}
		if ny < d.Region.Min.Y {
			ny = 2*d.Region.Min.Y - ny
			d.headings[i] = -d.headings[i]
		} else if ny > d.Region.Max.Y {
			ny = 2*d.Region.Max.Y - ny
			d.headings[i] = -d.headings[i]
		}
		r.Pos = geom.Pt(nx, ny)
		readers[i] = r
	}
	next, err := model.NewSystem(readers, sys.Tags())
	if err != nil {
		return nil, fmt.Errorf("mobility: rebuilding system: %w", err)
	}
	for t := 0; t < sys.NumTags(); t++ {
		if sys.IsRead(t) {
			next.MarkRead(t)
		}
	}
	return next, nil
}

// StalenessResult traces a frozen activation set under drift.
type StalenessResult struct {
	// Weights[k] is the weight of the frozen set after k drift steps
	// (Weights[0] is the weight at computation time). Read-state is frozen
	// too: this isolates the geometric decay.
	Weights []int
	// FeasibleUntil is the first step at which the frozen set stopped
	// being a feasible scheduling set (len(Weights) if it never broke).
	FeasibleUntil int
}

// MeasureStaleness computes one activation set with sched, then drifts the
// readers for horizon steps, recording the set's weight and feasibility at
// each step without serving any tags.
func MeasureStaleness(sys *model.System, sched model.OneShotScheduler, drift *Drift, horizon int) (*StalenessResult, error) {
	X, err := sched.OneShot(sys)
	if err != nil {
		return nil, err
	}
	res := &StalenessResult{FeasibleUntil: horizon + 1}
	cur := sys
	for k := 0; k <= horizon; k++ {
		res.Weights = append(res.Weights, cur.Weight(X))
		if k < res.FeasibleUntil && !cur.IsFeasible(X) {
			res.FeasibleUntil = k
		}
		if k == horizon {
			break
		}
		cur, err = drift.Step(cur)
		if err != nil {
			return nil, err
		}
	}
	if res.FeasibleUntil > horizon {
		res.FeasibleUntil = len(res.Weights)
	}
	return res, nil
}

// AdaptiveResult reports a rescheduling run under drift.
type AdaptiveResult struct {
	Slots      int
	TagsRead   int
	Recomputes int
	Incomplete bool
	Final      *model.System
}

// RunAdaptive serves tags under drift, recomputing the activation set every
// `recompute` slots (1 = every slot, the paper's implicit assumption). The
// scheduler factory receives the current system so graph-based algorithms
// can rebuild their interference graph after movement.
func RunAdaptive(sys *model.System, makeSched func(*model.System) (model.OneShotScheduler, error),
	drift *Drift, recompute, maxSlots int) (*AdaptiveResult, error) {
	if recompute < 1 {
		recompute = 1
	}
	if maxSlots <= 0 {
		maxSlots = 10000
	}
	res := &AdaptiveResult{}
	cur := sys
	var X []int
	for cur.UnreadCoverableCount() > 0 {
		if res.Slots >= maxSlots {
			res.Incomplete = true
			break
		}
		if res.Slots%recompute == 0 {
			sched, err := makeSched(cur)
			if err != nil {
				return nil, err
			}
			X, err = sched.OneShot(cur)
			if err != nil {
				return nil, err
			}
			res.Recomputes++
		}
		covered := cur.Covered(X, nil)
		for _, t := range covered {
			cur.MarkRead(int(t))
		}
		res.TagsRead += len(covered)
		res.Slots++
		next, err := drift.Step(cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	res.Final = cur
	return res, nil
}
