package mobility

import (
	"testing"

	"rfidsched/internal/core"
	"rfidsched/internal/deploy"
	"rfidsched/internal/geom"
	"rfidsched/internal/graph"
	"rfidsched/internal/model"
)

func paperSystem(t *testing.T, seed uint64) *model.System {
	t.Helper()
	sys, err := deploy.Generate(deploy.Paper(seed, 12, 5))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func region() geom.Rect { return geom.R2(0, 0, 100, 100) }

func TestStepKeepsReadersInRegion(t *testing.T) {
	sys := paperSystem(t, 1)
	d := NewDrift(sys.NumReaders(), region(), 3, 7)
	cur := sys
	var err error
	for step := 0; step < 50; step++ {
		cur, err = d.Step(cur)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cur.NumReaders(); i++ {
			p := cur.Reader(i).Pos
			if p.X < -1e-9 || p.X > 100+1e-9 || p.Y < -1e-9 || p.Y > 100+1e-9 {
				t.Fatalf("step %d: reader %d escaped to %v", step, i, p)
			}
		}
	}
}

func TestStepMovesReadersBySpeed(t *testing.T) {
	sys := paperSystem(t, 3)
	d := NewDrift(sys.NumReaders(), region(), 2, 9)
	next, err := d.Step(sys)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sys.NumReaders(); i++ {
		moved := sys.Reader(i).Pos.Dist(next.Reader(i).Pos)
		// Reflection can shorten the apparent displacement but never extend
		// it beyond the speed.
		if moved > 2+1e-9 {
			t.Fatalf("reader %d moved %v > speed", i, moved)
		}
	}
}

func TestStepCarriesReadState(t *testing.T) {
	sys := paperSystem(t, 5)
	sys.MarkRead(0)
	sys.MarkRead(7)
	d := NewDrift(sys.NumReaders(), region(), 1, 11)
	next, err := d.Step(sys)
	if err != nil {
		t.Fatal(err)
	}
	if !next.IsRead(0) || !next.IsRead(7) || next.IsRead(1) {
		t.Error("read state not carried through movement")
	}
	if next.NumTags() != sys.NumTags() {
		t.Error("tag population changed")
	}
}

func TestStepSizeMismatch(t *testing.T) {
	sys := paperSystem(t, 7)
	d := NewDrift(3, region(), 1, 13)
	if _, err := d.Step(sys); err == nil {
		t.Error("reader-count mismatch accepted")
	}
}

func TestStalenessDecays(t *testing.T) {
	sys := paperSystem(t, 9)
	g := graph.FromSystem(sys)
	d := NewDrift(sys.NumReaders(), region(), 4, 15)
	res, err := MeasureStaleness(sys, core.NewGrowth(g, 1.25), d, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Weights) != 31 {
		t.Fatalf("weights traced %d steps", len(res.Weights))
	}
	if res.Weights[0] <= 0 {
		t.Fatal("initial weight not positive")
	}
	// After 30 steps at speed 4 (half the region width of total drift) the
	// frozen set must have lost a meaningful fraction of its weight.
	last := res.Weights[len(res.Weights)-1]
	if float64(last) > 0.9*float64(res.Weights[0]) {
		t.Errorf("weight barely decayed: %d -> %d", res.Weights[0], last)
	}
}

func TestStalenessZeroSpeedIsStable(t *testing.T) {
	sys := paperSystem(t, 11)
	g := graph.FromSystem(sys)
	d := NewDrift(sys.NumReaders(), region(), 0, 17)
	res, err := MeasureStaleness(sys, core.NewGrowth(g, 1.25), d, 10)
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range res.Weights {
		if w != res.Weights[0] {
			t.Fatalf("zero-speed weight changed at step %d: %d -> %d", k, res.Weights[0], w)
		}
	}
	if res.FeasibleUntil != len(res.Weights) {
		t.Error("zero-speed set lost feasibility")
	}
}

func TestRunAdaptiveCompletes(t *testing.T) {
	sys := paperSystem(t, 13)
	d := NewDrift(sys.NumReaders(), region(), 1, 19)
	res, err := RunAdaptive(sys.Clone(), func(cur *model.System) (model.OneShotScheduler, error) {
		return core.NewGrowth(graph.FromSystem(cur), 1.25), nil
	}, d, 1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete {
		t.Fatalf("adaptive run incomplete after %d slots", res.Slots)
	}
	if res.Final.UnreadCoverableCount() != 0 {
		t.Error("coverable tags left")
	}
	if res.Recomputes != res.Slots {
		t.Errorf("recompute-every-slot: %d recomputes for %d slots", res.Recomputes, res.Slots)
	}
}

func TestRunAdaptiveStaleIsWorse(t *testing.T) {
	base := paperSystem(t, 15)
	mk := func(cur *model.System) (model.OneShotScheduler, error) {
		return core.NewGrowth(graph.FromSystem(cur), 1.25), nil
	}
	fresh, err := RunAdaptive(base.Clone(), mk, NewDrift(base.NumReaders(), region(), 3, 21), 1, 3000)
	if err != nil {
		t.Fatal(err)
	}
	stale, err := RunAdaptive(base.Clone(), mk, NewDrift(base.NumReaders(), region(), 3, 21), 25, 3000)
	if err != nil {
		t.Fatal(err)
	}
	// Rescheduling every slot must not be slower than rescheduling every 25
	// slots under fast movement (allow equality: both may be limited by
	// coverage, and small slack for lucky drift).
	if fresh.Slots > stale.Slots+2 {
		t.Errorf("fresh schedule (%d slots) worse than 25-slot-stale (%d slots)", fresh.Slots, stale.Slots)
	}
}

func TestRunAdaptiveDefaults(t *testing.T) {
	sys := paperSystem(t, 17)
	d := NewDrift(sys.NumReaders(), region(), 1, 23)
	res, err := RunAdaptive(sys.Clone(), func(cur *model.System) (model.OneShotScheduler, error) {
		return core.NewGrowth(graph.FromSystem(cur), 1.25), nil
	}, d, 0, 0) // recompute<1 and maxSlots<=0 take defaults
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots == 0 {
		t.Error("no slots executed")
	}
}
