package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// FlightRecorder is a fixed-capacity ring-buffer Tracer: it retains the last
// n events and forgets older ones, so a multi-hour run can keep a post-mortem
// trace in a few hundred kilobytes of memory. Compose it with Tee to record
// alongside a full JSONL sink, and dump it:
//
//   - on demand, through Events/WriteJSONL/DumpFile (the /debug/flight
//     endpoint of the telemetry server, see Handler);
//   - automatically on a degraded or incomplete run_completed event, when an
//     auto-dump path is configured (AutoDump);
//   - on panic, via `defer rec.DumpOnPanic(path)` or an explicit DumpFile in
//     a recover block (the rfidsched supervisor archives one dump per
//     crashed attempt).
//
// Like every Tracer it is pure observation — recording changes no engine
// decision, so seeded runs stay bit-identical with the recorder attached.
// All methods are safe for concurrent use.
type FlightRecorder struct {
	mu       sync.Mutex
	buf      []Event // ring storage; len grows to cap, then wraps
	next     int     // overwrite position once full
	dropped  int64   // events overwritten since creation
	autoPath string  // dump target for bad run_completed events ("" = off)
	err      error   // first dump error (sticky)
}

// DefaultFlightCapacity is the ring size NewFlightRecorder falls back to for
// non-positive capacities.
const DefaultFlightCapacity = 512

// NewFlightRecorder builds a recorder retaining the last n events (n <= 0
// means DefaultFlightCapacity).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightCapacity
	}
	return &FlightRecorder{buf: make([]Event, 0, n)}
}

// Emit implements Tracer: append the event, evicting the oldest once the
// ring is full. A run_completed event with cause "degraded" or "incomplete"
// triggers an automatic dump when AutoDump configured one.
func (f *FlightRecorder) Emit(e Event) {
	f.mu.Lock()
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, e)
	} else {
		f.buf[f.next] = e
		f.next = (f.next + 1) % len(f.buf)
		f.dropped++
	}
	auto := ""
	if e.Type == RunCompleted && (e.Cause == "degraded" || e.Cause == "incomplete") {
		auto = f.autoPath
	}
	f.mu.Unlock()
	if auto != "" {
		f.DumpFile(auto)
	}
}

// AutoDump arms (path != "") or disarms (path == "") the automatic dump
// taken when a run completes degraded or incomplete. Each triggering run
// overwrites the file — the dump describes the most recent bad run.
func (f *FlightRecorder) AutoDump(path string) {
	f.mu.Lock()
	f.autoPath = path
	f.mu.Unlock()
}

// Cap returns the ring capacity.
func (f *FlightRecorder) Cap() int { return cap(f.buf) }

// Len returns how many events the ring currently holds.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.buf)
}

// Dropped returns how many events have been evicted by ring wrap — the
// count of history the recorder no longer holds.
func (f *FlightRecorder) Dropped() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Events returns the retained events, oldest first.
func (f *FlightRecorder) Events() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Event, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	out = append(out, f.buf[:f.next]...)
	return out
}

// WriteJSONL writes the retained events to w as JSON lines, oldest first —
// the same format a JSONL tracer produces, so every trace consumer
// (ReadSummary, `rfidsim -fig trace-report`) accepts a flight dump. A dump
// may begin mid-run where the ring wrapped; ReadSummary tolerates the
// missing prefix.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range f.Events() {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("obs: flight dump: %w", err)
		}
	}
	return nil
}

// DumpFile writes the retained events to path, truncating any previous
// dump. The first error is remembered (see Err) so fire-and-forget dump
// sites — panic handlers, the auto-dump trigger — stay one-liners.
func (f *FlightRecorder) DumpFile(path string) error {
	err := f.dumpFile(path)
	if err != nil {
		f.mu.Lock()
		if f.err == nil {
			f.err = err
		}
		f.mu.Unlock()
	}
	return err
}

func (f *FlightRecorder) dumpFile(path string) error {
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: flight dump: %w", err)
	}
	if err := f.WriteJSONL(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// Err returns the first dump error, if any.
func (f *FlightRecorder) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// DumpOnPanic dumps the flight record to path if the calling goroutine is
// panicking, then re-panics with the original value. Use it as a deferred
// call bracketing the run:
//
//	defer rec.DumpOnPanic("crash.flight.jsonl")
//
// When no panic is in flight it does nothing, so the happy path pays only
// the deferred call.
func (f *FlightRecorder) DumpOnPanic(path string) {
	if r := recover(); r != nil {
		f.DumpFile(path)
		panic(r)
	}
}
