package history

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rfidsched/internal/obs"
)

// fakeClock is a deterministic ms-stepped clock for driving Sample directly.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.UnixMilli(1_000_000)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestStore(t *testing.T, reg *obs.Registry, opts Options) (*Store, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	opts.Clock = clk.Now
	return New(reg, opts), clk
}

func TestSampleRecordsAllMetricKinds(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("c").Add(7)
	reg.Gauge("g").Set(2.5)
	reg.Histogram("h").Observe(1)
	reg.Histogram("h").Observe(3)

	st, _ := newTestStore(t, reg, Options{Capacity: 8})
	st.Sample()

	doc := st.Snapshot(nil, 0, 0)
	tier := doc.Tiers[0]
	if got := tier.Series["c"]; len(got) != 1 || float64(got[0]) != 7 {
		t.Fatalf("counter series = %v, want [7]", got)
	}
	if got := tier.Series["g"]; len(got) != 1 || float64(got[0]) != 2.5 {
		t.Fatalf("gauge series = %v, want [2.5]", got)
	}
	if got := tier.Series["h.count"]; len(got) != 1 || float64(got[0]) != 2 {
		t.Fatalf("h.count = %v, want [2]", got)
	}
	if got := tier.Series["h.mean"]; len(got) != 1 || float64(got[0]) != 2 {
		t.Fatalf("h.mean = %v, want [2]", got)
	}
	if got := tier.Series["h.max"]; len(got) != 1 || float64(got[0]) != 3 {
		t.Fatalf("h.max = %v, want [3]", got)
	}
	// The sampler's own counter shows up too; it increments after the
	// snapshot, so the first sample records the pre-increment value.
	if got := tier.Series["history.samples"]; len(got) != 1 || float64(got[0]) != 0 {
		t.Fatalf("history.samples = %v, want [0]", got)
	}
	if st.Samples() != 1 {
		t.Fatalf("Samples() = %d, want 1", st.Samples())
	}
}

func TestLateSeriesBackfillNaN(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("early").Inc()
	st, clk := newTestStore(t, reg, Options{Capacity: 8})
	st.Sample()

	clk.Advance(time.Second)
	reg.Gauge("late").Set(9)
	st.Sample()

	tier := st.Snapshot(nil, 0, 0).Tiers[0]
	late := tier.Series["late"]
	if len(late) != 2 {
		t.Fatalf("late series has %d samples, want 2", len(late))
	}
	if !math.IsNaN(float64(late[0])) {
		t.Fatalf("late[0] = %v, want NaN backfill", late[0])
	}
	if float64(late[1]) != 9 {
		t.Fatalf("late[1] = %v, want 9", late[1])
	}
}

func TestRingWrapKeepsNewestOldestFirst(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("g")
	st, clk := newTestStore(t, reg, Options{Capacity: 4, Tiers: 1})
	for i := 0; i < 10; i++ {
		g.Set(float64(i))
		st.Sample()
		clk.Advance(time.Second)
	}
	tier := st.Snapshot([]string{"g"}, 0, 0).Tiers[0]
	if tier.Samples != 10 {
		t.Fatalf("Samples = %d, want 10", tier.Samples)
	}
	want := []float64{6, 7, 8, 9}
	if len(tier.Series["g"]) != len(want) {
		t.Fatalf("retained %d samples, want %d", len(tier.Series["g"]), len(want))
	}
	for i, w := range want {
		if float64(tier.Series["g"][i]) != w {
			t.Fatalf("g[%d] = %v, want %v", i, tier.Series["g"][i], w)
		}
	}
	for i := 1; i < len(tier.TS); i++ {
		if tier.TS[i] <= tier.TS[i-1] {
			t.Fatalf("timestamps not increasing: %v", tier.TS)
		}
	}
}

func TestDownsampleCounterLastGaugeMean(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	st, clk := newTestStore(t, reg, Options{Capacity: 16, Tiers: 2, Factor: 4})
	for i := 1; i <= 8; i++ {
		c.Add(1)          // 1,2,...,8
		g.Set(float64(i)) // 1,2,...,8
		st.Sample()
		clk.Advance(time.Second)
	}
	tier1 := st.Snapshot(nil, 1, 0).Tiers[0]
	if tier1.Samples != 2 {
		t.Fatalf("tier-1 samples = %d, want 2", tier1.Samples)
	}
	// Counter folds to the window's last value; gauge to the window mean.
	if got := tier1.Series["c"]; float64(got[0]) != 4 || float64(got[1]) != 8 {
		t.Fatalf("downsampled counter = %v, want [4 8]", got)
	}
	if got := tier1.Series["g"]; float64(got[0]) != 2.5 || float64(got[1]) != 6.5 {
		t.Fatalf("downsampled gauge = %v, want [2.5 6.5]", got)
	}
	if got := tier1.IntervalMS; got != 4000 {
		t.Fatalf("tier-1 interval = %dms, want 4000", got)
	}
}

func TestMaxSeriesCapCountsDrops(t *testing.T) {
	reg := obs.NewRegistry()
	// history.samples is registered by New, so the cap of 2 leaves one slot.
	reg.Counter("kept")
	st, _ := newTestStore(t, reg, Options{MaxSeries: 2})
	st.Sample()
	reg.Counter("dropped.a")
	reg.Counter("dropped.b")
	st.Sample()

	if st.DroppedSeries() != 2 {
		t.Fatalf("DroppedSeries = %d, want 2", st.DroppedSeries())
	}
	doc := st.Snapshot(nil, 0, 0)
	if doc.DroppedSeries != 2 {
		t.Fatalf("doc.DroppedSeries = %d, want 2", doc.DroppedSeries)
	}
	if _, ok := doc.Tiers[0].Series["dropped.a"]; ok {
		t.Fatal("dropped series leaked into the snapshot")
	}
	if _, ok := doc.Tiers[0].Series["kept"]; !ok {
		t.Fatal("series admitted before the cap disappeared")
	}
}

func TestStartStopIdempotent(t *testing.T) {
	reg := obs.NewRegistry()
	st := New(reg, Options{Interval: time.Millisecond})
	stop := st.Start()
	deadline := time.Now().Add(5 * time.Second)
	for st.Samples() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sampler took no samples within 5s")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // second stop must not panic or hang
}

func TestHandlerServesFilteredJSON(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("serve.requests").Add(3)
	reg.Gauge("other.gauge").Set(1)
	st, clk := newTestStore(t, reg, Options{Capacity: 8, Tiers: 2, Factor: 2})
	for i := 0; i < 4; i++ {
		st.Sample()
		clk.Advance(time.Second)
	}

	rec := httptest.NewRecorder()
	st.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/history?series=serve.&tier=0&last=2", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if got := rec.Header().Get("Content-Type"); got != "application/json" {
		t.Fatalf("Content-Type = %q", got)
	}
	if got := rec.Header().Get("Cache-Control"); got != "no-store" {
		t.Fatalf("Cache-Control = %q", got)
	}
	var doc Doc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("response is not JSON: %v", err)
	}
	if len(doc.Tiers) != 1 {
		t.Fatalf("tier filter kept %d tiers, want 1", len(doc.Tiers))
	}
	tier := doc.Tiers[0]
	if len(tier.TS) != 2 {
		t.Fatalf("last=2 kept %d samples, want 2", len(tier.TS))
	}
	if _, ok := tier.Series["serve.requests"]; !ok {
		t.Fatal("series filter dropped serve.requests")
	}
	if _, ok := tier.Series["other.gauge"]; ok {
		t.Fatal("series filter leaked other.gauge")
	}
}

func TestHandlerRejectsBadRequests(t *testing.T) {
	reg := obs.NewRegistry()
	st, _ := newTestStore(t, reg, Options{})
	h := st.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/history", strings.NewReader("{}")))
	if rec.Code != 405 {
		t.Fatalf("POST status = %d, want 405", rec.Code)
	}
	if got := rec.Header().Get("Allow"); got != "GET" {
		t.Fatalf("Allow = %q, want GET", got)
	}

	for _, q := range []string{"?tier=99", "?tier=x", "?last=-1", "?last=x"} {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/history"+q, nil))
		if rec.Code != 400 {
			t.Fatalf("GET %s status = %d, want 400", q, rec.Code)
		}
	}
}

func TestJSONFloatNullsNaN(t *testing.T) {
	b, err := json.Marshal([]JSONFloat{1.5, JSONFloat(math.NaN()), JSONFloat(math.Inf(1))})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "[1.5,null,null]" {
		t.Fatalf("marshal = %s, want [1.5,null,null]", b)
	}
}

// TestSamplerRaces drives Sample concurrently with live registry mutation,
// histogram observation, and cross-registry Merge — the exact interleaving
// the service daemon runs all day. Meaningful under -race (the CI race job
// runs this package); the assertions just prove the store stayed coherent.
func TestSamplerRaces(t *testing.T) {
	reg := obs.NewRegistry()
	st, _ := newTestStore(t, reg, Options{Capacity: 32, Tiers: 2, Factor: 4})

	// Seed the metrics before the goroutines exist so the sampled-series
	// assertion below cannot lose a scheduling race.
	reg.Counter("race.counter")
	reg.Gauge("race.gauge")
	reg.Histogram("race.hist")

	var wg sync.WaitGroup
	stopCh := make(chan struct{})
	wg.Add(3)
	go func() { // mutator: counters, gauges, histograms
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stopCh:
				return
			default:
			}
			reg.Counter("race.counter").Inc()
			reg.Gauge("race.gauge").Set(float64(i))
			reg.Histogram("race.hist").Observe(float64(i % 10))
		}
	}()
	go func() { // merger: shard registries folding in, as the MCS driver does
		defer wg.Done()
		for {
			select {
			case <-stopCh:
				return
			default:
			}
			shard := obs.NewRegistry()
			shard.Counter("race.counter").Add(2)
			shard.Histogram("race.hist").Observe(5)
			reg.Merge(shard)
		}
	}()
	go func() { // reader: snapshots while sampling runs
		defer wg.Done()
		for {
			select {
			case <-stopCh:
				return
			default:
			}
			_ = st.Snapshot(nil, -1, 4)
		}
	}()

	for i := 0; i < 200; i++ {
		st.Sample()
	}
	close(stopCh)
	wg.Wait()

	if st.Samples() != 200 {
		t.Fatalf("Samples = %d, want 200", st.Samples())
	}
	tier := st.Snapshot([]string{"race."}, 0, 0).Tiers[0]
	if len(tier.Series["race.counter"]) == 0 {
		t.Fatal("race.counter never sampled")
	}
}
