// Package history is the embedded metric-history layer of the telemetry
// stack: a fixed-memory ring of time-series samples taken from an
// obs.Registry at a configurable cadence, exposed as JSON at /history and
// consumed by the rfidtop terminal dashboard. It fills the gap between
// Prometheus scrapes — an operator (or the smoke tests) can ask the process
// itself what the last few minutes looked like, with no external collector.
//
// Memory is bounded by construction: at most MaxSeries series, each holding
// Capacity float64 samples per tier, across Tiers downsampling tiers —
// MaxSeries × Tiers × Capacity × 8 bytes, independent of run length (the
// sizing math is worked through in DESIGN.md §16). Tier 0 samples raw at
// Interval; each higher tier folds Factor samples of the tier below into
// one, so tier t covers Capacity × Interval × Factor^t of wall clock.
// Counters downsample by taking the window's last value (rates computed
// between downsampled points stay exact); gauges and histogram-derived
// series take the window mean.
//
// Sampling is pure observation: the sampler only reads the registry's
// atomic snapshots, so running it concurrently with live engines perturbs
// nothing and a disabled store (simply never constructed) costs nothing —
// the same off-switch convention as the nil Tracer.
package history

import (
	"encoding/json"
	"math"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"rfidsched/internal/obs"
)

// Defaults for Options fields left zero.
const (
	DefaultInterval  = time.Second
	DefaultCapacity  = 512
	DefaultTiers     = 3
	DefaultFactor    = 8
	DefaultMaxSeries = 256
)

// Options configures a Store. Zero fields take the documented defaults.
type Options struct {
	// Interval is the tier-0 sampling cadence (default 1s).
	Interval time.Duration
	// Capacity is how many samples each tier retains (default 512).
	Capacity int
	// Tiers is how many downsampling tiers to keep (default 3).
	Tiers int
	// Factor is how many tier-t samples fold into one tier-t+1 sample
	// (default 8).
	Factor int
	// MaxSeries caps how many distinct series the store tracks; series
	// appearing after the cap are dropped and counted (default 256).
	MaxSeries int
	// Clock supplies sample timestamps (nil = time.Now). Tests inject a
	// fake clock and call Sample directly for fully deterministic rings.
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = DefaultInterval
	}
	if o.Capacity <= 0 {
		o.Capacity = DefaultCapacity
	}
	if o.Tiers <= 0 {
		o.Tiers = DefaultTiers
	}
	if o.Factor <= 1 {
		o.Factor = DefaultFactor
	}
	if o.MaxSeries <= 0 {
		o.MaxSeries = DefaultMaxSeries
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// series kinds decide the downsampling aggregate.
const (
	kindCounter = iota // cumulative; window aggregate = last value
	kindGauge          // point-in-time; window aggregate = mean
)

// seriesData is one named series' rings, one per tier, NaN where the series
// had no value (it appeared after sampling started).
type seriesData struct {
	kind int
	vals [][]float64 // [tier][Capacity]
}

// tier is one resolution level's shared clock ring.
type tier struct {
	ts []int64 // unix milliseconds, ring-indexed
	n  int     // total samples ever written to this tier
}

// Store is the ring time-series store. Create with New, feed it with Sample
// (directly, or via the Start goroutine), serve it with Handler.
type Store struct {
	reg  *obs.Registry
	opts Options

	mu            sync.Mutex
	tiers         []*tier
	series        map[string]*seriesData
	names         []string // sorted series names, maintained incrementally
	droppedSeries int      // series refused past MaxSeries
	samples       *obs.Counter
}

// New builds a store sampling reg. The store holds no goroutine until Start.
func New(reg *obs.Registry, opts Options) *Store {
	opts = opts.withDefaults()
	s := &Store{
		reg:     reg,
		opts:    opts,
		tiers:   make([]*tier, opts.Tiers),
		series:  map[string]*seriesData{},
		samples: reg.Counter("history.samples"),
	}
	for t := range s.tiers {
		s.tiers[t] = &tier{ts: make([]int64, opts.Capacity)}
	}
	return s
}

// Interval returns the tier-0 sampling cadence.
func (s *Store) Interval() time.Duration { return s.opts.Interval }

// Samples returns how many tier-0 samples have been taken.
func (s *Store) Samples() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tiers[0].n
}

// DroppedSeries returns how many distinct series were refused because the
// MaxSeries cap was already spent.
func (s *Store) DroppedSeries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.droppedSeries
}

// Start launches the background sampler at the configured cadence and
// returns its stop function. Stop is idempotent and returns once the
// sampler goroutine has exited.
func (s *Store) Start() (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(s.opts.Interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s.Sample()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}

// Sample takes one tier-0 sample of the registry now (per the store clock)
// and cascades any due downsampling tiers. Safe for concurrent use with
// live registry mutation — it reads one atomic snapshot.
func (s *Store) Sample() {
	snap := s.reg.Snapshot()
	now := s.opts.Clock().UnixMilli()

	s.mu.Lock()
	defer s.mu.Unlock()

	// Discover new series first so this very sample records them.
	for _, name := range snap.CounterNames() {
		s.ensure(name, kindCounter)
	}
	for _, name := range snap.GaugeNames() {
		s.ensure(name, kindGauge)
	}
	for _, name := range snap.HistogramNames() {
		for _, suffix := range histSuffixes {
			s.ensure(name+suffix, kindGauge)
		}
	}

	t0 := s.tiers[0]
	pos := t0.n % s.opts.Capacity
	t0.ts[pos] = now
	for name, sd := range s.series {
		sd.vals[0][pos] = seriesValue(snap, name)
	}
	t0.n++
	s.samples.Inc()

	// Cascade: every Factor samples of tier t complete one tier t+1 sample.
	for t := 0; t+1 < len(s.tiers); t++ {
		if s.tiers[t].n%s.opts.Factor != 0 {
			break
		}
		s.downsample(t)
	}
}

// histSuffixes are the derived series one histogram contributes: sample
// count (cumulative, but windows of Welford accumulators only grow — mean
// aggregation would lie, so treat derived series uniformly as gauges and
// let consumers rate the .count series), mean, std, max.
var histSuffixes = []string{".count", ".mean", ".std", ".max"}

// seriesValue extracts the named series' current value from a snapshot, or
// NaN when the metric is (still or again) absent.
func seriesValue(snap obs.Snapshot, name string) float64 {
	if v, ok := snap.Counters[name]; ok {
		return float64(v)
	}
	if v, ok := snap.Gauges[name]; ok {
		return v
	}
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		if h, ok := snap.Histograms[name[:i]]; ok {
			switch name[i:] {
			case ".count":
				return float64(h.N)
			case ".mean":
				return h.Mean
			case ".std":
				return h.Std
			case ".max":
				return h.Max
			}
		}
	}
	return math.NaN()
}

// ensure registers a series, backfilling its rings with NaN; past the
// MaxSeries cap the series is dropped and counted.
func (s *Store) ensure(name string, kind int) {
	if _, ok := s.series[name]; ok {
		return
	}
	if len(s.series) >= s.opts.MaxSeries {
		s.droppedSeries++
		return
	}
	sd := &seriesData{kind: kind, vals: make([][]float64, len(s.tiers))}
	for t := range sd.vals {
		ring := make([]float64, s.opts.Capacity)
		for i := range ring {
			ring[i] = math.NaN()
		}
		sd.vals[t] = ring
	}
	s.series[name] = sd
	i, _ := slices.BinarySearch(s.names, name)
	s.names = slices.Insert(s.names, i, name)
}

// downsample folds the newest Factor samples of tier t into one sample of
// tier t+1. Called with the lock held, only when tier t just completed a
// full window.
func (s *Store) downsample(t int) {
	lo, hi := s.tiers[t].n-s.opts.Factor, s.tiers[t].n // window [lo, hi)
	next := s.tiers[t+1]
	pos := next.n % s.opts.Capacity
	next.ts[pos] = s.tiers[t].ts[(hi-1)%s.opts.Capacity]
	for _, sd := range s.series {
		src := sd.vals[t]
		agg, n := math.NaN(), 0
		for i := lo; i < hi; i++ {
			v := src[i%s.opts.Capacity]
			if math.IsNaN(v) {
				continue
			}
			if sd.kind == kindCounter {
				agg = v // last non-NaN value in the window
				continue
			}
			if n == 0 {
				agg = 0
			}
			agg += v
			n++
		}
		if sd.kind != kindCounter && n > 0 {
			agg /= float64(n)
		}
		sd.vals[t+1][pos] = agg
	}
	next.n++
}

// TierDoc is one tier of the /history document.
type TierDoc struct {
	// IntervalMS is this tier's sample spacing (tier-0 interval × Factor^t).
	IntervalMS int64 `json:"interval_ms"`
	// Capacity is the ring size; Samples how many samples the tier has ever
	// taken (retained = min(Samples, Capacity)).
	Capacity int `json:"capacity"`
	Samples  int `json:"samples"`
	// TS holds the retained sample timestamps (unix ms), oldest first.
	TS []int64 `json:"ts"`
	// Series maps series name to its values aligned with TS; null marks
	// samples taken before the series existed.
	Series map[string][]JSONFloat `json:"series"`
}

// Doc is the /history response document.
type Doc struct {
	IntervalMS    int64     `json:"interval_ms"`
	MaxSeries     int       `json:"max_series"`
	DroppedSeries int       `json:"dropped_series,omitempty"`
	Tiers         []TierDoc `json:"tiers"`
}

// JSONFloat marshals NaN (no data) as null, since JSON has no NaN literal.
type JSONFloat float64

// MarshalJSON implements json.Marshaler.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// Snapshot assembles the document: every tier's retained window, oldest
// first, optionally filtered to series whose name starts with one of the
// given prefixes (nil = all), at most last samples per tier (0 = all).
func (s *Store) Snapshot(prefixes []string, tierSel int, last int) Doc {
	s.mu.Lock()
	defer s.mu.Unlock()

	doc := Doc{
		IntervalMS:    s.opts.Interval.Milliseconds(),
		MaxSeries:     s.opts.MaxSeries,
		DroppedSeries: s.droppedSeries,
	}
	names := s.names
	if prefixes != nil {
		names = nil
		for _, n := range s.names {
			for _, p := range prefixes {
				if strings.HasPrefix(n, p) {
					names = append(names, n)
					break
				}
			}
		}
	}
	interval := s.opts.Interval.Milliseconds()
	for t, tr := range s.tiers {
		if tierSel >= 0 && t != tierSel {
			interval *= int64(s.opts.Factor)
			continue
		}
		kept := min(tr.n, s.opts.Capacity)
		skip := 0
		if last > 0 && kept > last {
			skip = kept - last
		}
		td := TierDoc{
			IntervalMS: interval,
			Capacity:   s.opts.Capacity,
			Samples:    tr.n,
			Series:     make(map[string][]JSONFloat, len(names)),
		}
		// Ring order: the oldest retained sample sits at n % cap once the
		// ring has wrapped, at 0 before.
		start := 0
		if tr.n > s.opts.Capacity {
			start = tr.n % s.opts.Capacity
		}
		for i := skip; i < kept; i++ {
			td.TS = append(td.TS, tr.ts[(start+i)%s.opts.Capacity])
		}
		for _, name := range names {
			ring := s.series[name].vals[t]
			vals := make([]JSONFloat, 0, kept-skip)
			for i := skip; i < kept; i++ {
				vals = append(vals, JSONFloat(ring[(start+i)%s.opts.Capacity]))
			}
			td.Series[name] = vals
		}
		doc.Tiers = append(doc.Tiers, td)
		interval *= int64(s.opts.Factor)
	}
	return doc
}

// Handler serves the store as the /history endpoint: a JSON Doc, filterable
// with ?series=prefix[,prefix...], ?tier=N and ?last=N.
func (s *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		var prefixes []string
		if q := r.URL.Query().Get("series"); q != "" {
			prefixes = strings.Split(q, ",")
		}
		tierSel := -1
		if q := r.URL.Query().Get("tier"); q != "" {
			t, err := strconv.Atoi(q)
			if err != nil || t < 0 || t >= s.opts.Tiers {
				http.Error(w, "tier out of range", http.StatusBadRequest)
				return
			}
			tierSel = t
		}
		last := 0
		if q := r.URL.Query().Get("last"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n < 0 {
				http.Error(w, "last must be a non-negative integer", http.StatusBadRequest)
				return
			}
			last = n
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Snapshot(prefixes, tierSel, last))
	})
}
