package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// ServeOptions configures the telemetry handler. Every field is optional:
// a zero ServeOptions still serves /healthz, /readyz and /debug/pprof/.
type ServeOptions struct {
	// Registry backs /metrics (Prometheus text exposition of every metric)
	// and /runs (the JSON progress view over the well-known run gauges).
	Registry *Registry
	// Flight backs /debug/flight: an on-demand JSONL dump of the retained
	// event window. nil makes the endpoint a 404.
	Flight *FlightRecorder
	// Ready gates /readyz; nil means always ready. /healthz is pure
	// liveness — reachable process, 200 — and takes no hook on purpose.
	Ready func() bool
	// History backs /history: the embedded metric-history ring (see
	// internal/obs/history, whose Store.Handler fits here). nil makes the
	// endpoint a 404.
	History http.Handler
	// Events backs /events: the live SSE trace-event stream (an *SSEBroker
	// fits here). nil makes the endpoint a 404.
	Events http.Handler
}

// RunStatus is the JSON document the /runs endpoint serves: live progress of
// the covering-schedule run(s) feeding the registry, assembled from the
// well-known gauges and counters the driver and CLIs maintain. Fields whose
// metric has never been written are -1, so "slot 0" is never ambiguous with
// "no run started".
type RunStatus struct {
	// Slot is the slot the driver is currently executing (gauge
	// "mcs.slot.current").
	Slot int64 `json:"slot"`
	// TagsRead is the cumulative tags-read count (gauge "mcs.tags.read").
	TagsRead int64 `json:"tags_read"`
	// AnytimeSlots counts per-slot budget truncations (counter
	// "mcs.slots.truncated"); 0 when the counter does not exist, since a
	// budget-free run legitimately never creates it.
	AnytimeSlots int64 `json:"anytime_slots"`
	// CheckpointLastSlot is the newest durable slot (gauge
	// "checkpoint.last_slot").
	CheckpointLastSlot int64 `json:"checkpoint_last_slot"`
	// CheckpointLag is Slot - CheckpointLastSlot when both gauges exist
	// (healthy: 0 or 1), -1 otherwise.
	CheckpointLag int64 `json:"checkpoint_lag"`
	// CheckpointsWritten counts durable records appended (counter
	// "checkpoint.records").
	CheckpointsWritten int64 `json:"checkpoints_written"`
	// SuperviseAttempt is the watchdog's current attempt number, starting
	// at 0 (gauge "supervise.attempt"); -1 outside supervised runs.
	SuperviseAttempt int64 `json:"supervise_attempt"`
	// RunsCompleted counts run_completed trace events folded into the
	// registry (counter "events.run_completed").
	RunsCompleted int64 `json:"runs_completed"`
}

// RunStatusFrom assembles the /runs document from a registry snapshot.
func RunStatusFrom(s Snapshot) RunStatus {
	gauge := func(name string) int64 {
		v, ok := s.Gauges[name]
		if !ok {
			return -1
		}
		return int64(v)
	}
	st := RunStatus{
		Slot:               gauge("mcs.slot.current"),
		TagsRead:           gauge("mcs.tags.read"),
		AnytimeSlots:       s.Counters["mcs.slots.truncated"],
		CheckpointLastSlot: gauge("checkpoint.last_slot"),
		CheckpointLag:      -1,
		CheckpointsWritten: s.Counters["checkpoint.records"],
		SuperviseAttempt:   gauge("supervise.attempt"),
		RunsCompleted:      s.Counters["events.run_completed"],
	}
	if st.Slot >= 0 && st.CheckpointLastSlot >= 0 {
		st.CheckpointLag = st.Slot - st.CheckpointLastSlot
	}
	return st
}

// requireGet rejects non-GET/HEAD methods with 405 before running h. Every
// telemetry endpoint is a read; answering a stray POST with data would hide
// client bugs, and the Allow header is part of the 405 contract.
func requireGet(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// Handler builds the telemetry endpoint mux:
//
//	/metrics        Prometheus text exposition of the registry
//	/runs           JSON run progress (RunStatus)
//	/history        JSON metric history (ring time-series store)
//	/events         live SSE stream of trace events
//	/healthz        liveness — always 200 while the process serves
//	/readyz         readiness — 200, or 503 while ServeOptions.Ready is false
//	/debug/flight   JSONL dump of the flight recorder's retained window
//	/debug/pprof/   the standard net/http/pprof profiling endpoints
//
// Every typed endpoint declares its Content-Type, marks its payload
// uncacheable (Cache-Control: no-store — all of it is live state; a cached
// /metrics or /readyz is actively misleading), and rejects non-GET methods
// with 405 + Allow. The handler only reads atomic metric state and event
// copies, so serving concurrently with a live run is safe and perturbs
// nothing the engines compute — the determinism contract extends to
// scraping (DESIGN.md §13).
func Handler(opts ServeOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", requireGet(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ExpositionContentType)
		w.Header().Set("Cache-Control", "no-store")
		if opts.Registry == nil {
			return
		}
		// Errors past the first byte are undetectable anyway (headers are
		// gone); an error here just means the client went away.
		_ = opts.Registry.Snapshot().WriteExposition(w)
	}))
	mux.HandleFunc("/runs", requireGet(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		var st RunStatus
		if opts.Registry != nil {
			st = RunStatusFrom(opts.Registry.Snapshot())
		} else {
			st = RunStatusFrom(Snapshot{})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	}))
	mux.HandleFunc("/healthz", requireGet(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		_, _ = w.Write([]byte("ok\n"))
	}))
	mux.HandleFunc("/readyz", requireGet(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		if opts.Ready != nil && !opts.Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write([]byte("ready\n"))
	}))
	mux.HandleFunc("/debug/flight", requireGet(func(w http.ResponseWriter, r *http.Request) {
		if opts.Flight == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Cache-Control", "no-store")
		_ = opts.Flight.WriteJSONL(w)
	}))
	mux.HandleFunc("/history", func(w http.ResponseWriter, r *http.Request) {
		if opts.History == nil {
			http.NotFound(w, r)
			return
		}
		opts.History.ServeHTTP(w, r)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		if opts.Events == nil {
			http.NotFound(w, r)
			return
		}
		opts.Events.ServeHTTP(w, r)
	})
	// net/http/pprof self-registers on http.DefaultServeMux at import; wire
	// its handlers onto this mux explicitly so the telemetry server works
	// without exposing the process-global mux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry server. Close shuts it down.
type Server struct {
	// Addr is the resolved listen address ("127.0.0.1:43125" for ":0"
	// requests), ready to print or curl.
	Addr string
	srv  *http.Server
}

// Serve binds addr (host:port; ":0" picks a free port) and serves the
// telemetry Handler on it in a background goroutine. It returns once the
// listener is bound, so the endpoints are reachable immediately — callers
// start it before kicking off the run they want observed.
func Serve(addr string, opts ServeOptions) (*Server, error) {
	return ServeHandler(addr, Handler(opts))
}

// ServeHandler is Serve for an arbitrary handler: bind addr, serve h in a
// background goroutine, return once the listener is bound with the resolved
// address. Services that mount their own routes on top of the telemetry mux
// (rfidserved wraps Handler with /v1/*) use this to get the same
// bind-then-report lifecycle the telemetry server has.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h}
	go func() {
		// ErrServerClosed on Close is the expected shutdown path; any other
		// serve error has no caller left to report to.
		_ = srv.Serve(ln)
	}()
	return &Server{Addr: ln.Addr().String(), srv: srv}, nil
}

// Close stops the server, closing the listener and any open connections.
func (s *Server) Close() error { return s.srv.Close() }
