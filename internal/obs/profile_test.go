package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartProfilesWritesBothFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
	if err := stop(); err != nil {
		t.Errorf("stop not idempotent: %v", err)
	}
}

func TestStartProfilesEmptyPathsNoop(t *testing.T) {
	stop, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartProfilesBadPath(t *testing.T) {
	if _, err := StartProfiles(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), ""); err == nil {
		t.Error("no error for uncreatable cpu profile path")
	}
}

// TestStartProfilesBadMemPath: an uncreatable heap-profile path must surface
// from stop(), not silently drop the profile.
func TestStartProfilesBadMemPath(t *testing.T) {
	stop, err := StartProfiles("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Error("no error for uncreatable heap profile path")
	}
	if err := stop(); err != nil {
		t.Errorf("second stop must be a no-op even after a failure: %v", err)
	}
}

// TestStartProfilesWhileCPUProfileActive: pprof allows one CPU profile at a
// time, so a second StartProfiles must fail cleanly — and must not kill the
// first profile, which still stops and writes normally.
func TestStartProfilesWhileCPUProfileActive(t *testing.T) {
	dir := t.TempDir()
	first := filepath.Join(dir, "cpu1.pprof")
	stop, err := StartProfiles(first, "")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	second := filepath.Join(dir, "cpu2.pprof")
	if _, err := StartProfiles(second, ""); err == nil {
		t.Error("second concurrent CPU profile started without error")
	}
	if err := stop(); err != nil {
		t.Fatalf("first profile could not stop after the failed second start: %v", err)
	}
	if fi, err := os.Stat(first); err != nil || fi.Size() == 0 {
		t.Errorf("first profile lost: %v", err)
	}
}
