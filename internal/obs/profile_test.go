package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartProfilesWritesBothFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
	if err := stop(); err != nil {
		t.Errorf("stop not idempotent: %v", err)
	}
}

func TestStartProfilesEmptyPathsNoop(t *testing.T) {
	stop, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartProfilesBadPath(t *testing.T) {
	if _, err := StartProfiles(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), ""); err == nil {
		t.Error("no error for uncreatable cpu profile path")
	}
}
