package obs

import (
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"rfidsched/internal/stats"
)

// Counter is a monotonically increasing metric. The zero value is ready;
// all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins float metric. The zero value is ready; all
// methods are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value (0 before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates a sample distribution, backed by stats.Acc (Welford
// moments + extrema; merging shards is exact via Acc.Merge). The zero value
// is ready; all methods are safe for concurrent use.
type Histogram struct {
	mu  sync.Mutex
	acc stats.Acc
}

// Observe folds one sample in.
func (h *Histogram) Observe(x float64) {
	h.mu.Lock()
	h.acc.Add(x)
	h.mu.Unlock()
}

// merge folds another histogram's samples in.
func (h *Histogram) merge(other *Histogram) {
	other.mu.Lock()
	shard := other.acc
	other.mu.Unlock()
	h.mu.Lock()
	h.acc.Merge(&shard)
	h.mu.Unlock()
}

// Snapshot summarizes the distribution seen so far.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{
		N: h.acc.N(), Mean: h.acc.Mean(), Std: h.acc.Std(),
		Min: h.acc.Min(), Max: h.acc.Max(),
	}
}

// HistSnapshot is a point-in-time histogram summary.
type HistSnapshot struct {
	N         int
	Mean, Std float64
	Min, Max  float64
}

// Registry is a namespace of named metrics. Metrics are created on first
// use (get-or-create, like expvar) so instrumented code never has to
// pre-register. Safe for concurrent use; for contended hot loops, give each
// goroutine its own shard Registry and Merge them afterwards.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Merge folds a shard registry into r: counters add, histograms merge their
// accumulators exactly (Chan et al., via stats.Acc.Merge), gauges take the
// shard's value when r has none of that name (last-write-wins semantics do
// not aggregate across shards).
func (r *Registry) Merge(shard *Registry) {
	shard.mu.Lock()
	counters := make(map[string]int64, len(shard.counters))
	for name, c := range shard.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(shard.gauges))
	for name, g := range shard.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]*Histogram, len(shard.histograms))
	for name, h := range shard.histograms {
		hists[name] = h
	}
	shard.mu.Unlock()

	for name, v := range counters {
		r.Counter(name).Add(v)
	}
	for name, v := range gauges {
		r.mu.Lock()
		_, exists := r.gauges[name]
		r.mu.Unlock()
		if !exists {
			r.Gauge(name).Set(v)
		}
	}
	for name, h := range hists {
		r.Histogram(name).merge(h)
	}
}

// Snapshot is a point-in-time copy of every metric, for programmatic
// scraping. Map iteration is randomized in Go; Names* give sorted keys for
// deterministic rendering.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistSnapshot
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hists[name] = h
	}
	r.mu.Unlock()

	snap := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)),
		Histograms: make(map[string]HistSnapshot, len(hists)),
	}
	for name, c := range counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range hists {
		snap.Histograms[name] = h.Snapshot()
	}
	return snap
}

// CounterNames returns the snapshot's counter names, sorted.
func (s Snapshot) CounterNames() []string { return sortedKeys(s.Counters) }

// GaugeNames returns the snapshot's gauge names, sorted.
func (s Snapshot) GaugeNames() []string { return sortedKeys(s.Gauges) }

// HistogramNames returns the snapshot's histogram names, sorted.
func (s Snapshot) HistogramNames() []string { return sortedKeys(s.Histograms) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// metricsTracer aggregates the event stream into a Registry: one counter
// per event type (plus per-cause breakdowns for failures and drops) and
// histograms of the per-slot and per-election distributions.
type metricsTracer struct {
	reg *Registry
}

// NewMetricsTracer returns a Tracer that folds events into reg. Metric
// names: "events.<type>" counters, "events.<type>.<cause>" cause
// breakdowns, "slot.tags_read", "slot.active_readers",
// "election.rounds" and "election.messages" histograms.
func NewMetricsTracer(reg *Registry) Tracer {
	return &metricsTracer{reg: reg}
}

// Emit implements Tracer.
func (m *metricsTracer) Emit(e Event) {
	m.reg.Counter("events." + string(e.Type)).Inc()
	switch e.Type {
	case ActivationFailed, MessageDropped, TagAbandoned, RunCompleted:
		if e.Cause != "" {
			m.reg.Counter("events." + string(e.Type) + "." + e.Cause).Inc()
		}
	}
	switch e.Type {
	case SlotExecuted:
		m.reg.Histogram("slot.tags_read").Observe(float64(e.N))
		m.reg.Histogram("slot.active_readers").Observe(float64(len(e.Readers)))
	case ElectionCompleted:
		m.reg.Histogram("election.rounds").Observe(float64(e.N))
		m.reg.Histogram("election.messages").Observe(float64(e.M))
	}
}
