package obs

import (
	"math"
	"sync"
	"testing"

	"rfidsched/internal/randx"
	"rfidsched/internal/stats"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Counter("a").Add(4)
	if got := r.Counter("a").Value(); got != 5 {
		t.Errorf("counter = %d", got)
	}
	r.Gauge("g").Set(2.5)
	if got := r.Gauge("g").Value(); got != 2.5 {
		t.Errorf("gauge = %v", got)
	}
	// Get-or-create must hand back the same instance.
	if r.Counter("a") != r.Counter("a") || r.Histogram("h") != r.Histogram("h") {
		t.Error("get-or-create returned distinct instances")
	}
}

func TestHistogramMatchesAccReference(t *testing.T) {
	r := NewRegistry()
	var ref stats.Acc
	rng := randx.New(7)
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 100
		r.Histogram("h").Observe(x)
		ref.Add(x)
	}
	got := r.Histogram("h").Snapshot()
	if got.N != ref.N() || got.Mean != ref.Mean() || got.Min != ref.Min() || got.Max != ref.Max() {
		t.Errorf("snapshot %+v != reference acc", got)
	}
	if math.Abs(got.Std-ref.Std()) > 1e-12 {
		t.Errorf("std %v != %v", got.Std, ref.Std())
	}
}

// TestRegistryMergeShards is the satellite contract: per-goroutine registry
// shards combine into exactly what a single accumulator would have seen —
// counters by addition, histograms through stats.Acc.Merge.
func TestRegistryMergeShards(t *testing.T) {
	const shards, perShard = 8, 257
	var ref stats.Acc
	var refCount int64
	main := NewRegistry()
	var shardRegs []*Registry
	rng := randx.New(42)
	for s := 0; s < shards; s++ {
		sr := NewRegistry()
		for i := 0; i < perShard; i++ {
			x := rng.Float64()*50 - 10
			sr.Histogram("slot.tags_read").Observe(x)
			ref.Add(x)
			sr.Counter("events").Inc()
			refCount++
		}
		sr.Gauge("last_x").Set(float64(s))
		shardRegs = append(shardRegs, sr)
	}
	for _, sr := range shardRegs {
		main.Merge(sr)
	}
	snap := main.Snapshot()
	if snap.Counters["events"] != refCount {
		t.Errorf("merged counter %d != %d", snap.Counters["events"], refCount)
	}
	h := snap.Histograms["slot.tags_read"]
	if h.N != ref.N() {
		t.Fatalf("merged N %d != %d", h.N, ref.N())
	}
	if math.Abs(h.Mean-ref.Mean()) > 1e-9 || math.Abs(h.Std-ref.Std()) > 1e-9 {
		t.Errorf("merged moments (%v, %v) != reference (%v, %v)", h.Mean, h.Std, ref.Mean(), ref.Std())
	}
	if h.Min != ref.Min() || h.Max != ref.Max() {
		t.Errorf("merged extrema (%v, %v) != reference (%v, %v)", h.Min, h.Max, ref.Min(), ref.Max())
	}
	if _, ok := snap.Gauges["last_x"]; !ok {
		t.Error("gauge lost in merge")
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(1)
				r.Gauge("g").Set(1)
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["c"] != 1600 || snap.Histograms["h"].N != 1600 {
		t.Errorf("lost updates: %+v", snap)
	}
}

func TestSnapshotSortedNames(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.Counter(n).Inc()
		r.Gauge(n).Set(1)
		r.Histogram(n).Observe(1)
	}
	snap := r.Snapshot()
	want := []string{"alpha", "mid", "zeta"}
	for i, n := range snap.CounterNames() {
		if n != want[i] {
			t.Fatalf("CounterNames unsorted: %v", snap.CounterNames())
		}
	}
	if len(snap.GaugeNames()) != 3 || len(snap.HistogramNames()) != 3 {
		t.Error("missing names")
	}
}

func TestMetricsTracerAggregates(t *testing.T) {
	reg := NewRegistry()
	tr := NewMetricsTracer(reg)
	tr.Emit(EvSlotPlanned(0, "Alg2-Growth", []int{1, 2}))
	tr.Emit(EvSlotExecuted(0, []int{1, 2}, 30))
	tr.Emit(EvSlotExecuted(1, []int{1}, 10))
	tr.Emit(EvActivationFailed(1, 2, "crash"))
	tr.Emit(EvActivationFailed(2, 2, "straggle"))
	tr.Emit(EvMessageDropped(4, 0, 1, "partition"))
	tr.Emit(EvElectionCompleted(0, 12, 340, []int{5}))
	tr.Emit(EvRunCompleted(2, 40, "Alg2-Growth", "degraded"))

	snap := reg.Snapshot()
	checks := map[string]int64{
		"events.slot_planned":               1,
		"events.slot_executed":              2,
		"events.activation_failed":          2,
		"events.activation_failed.crash":    1,
		"events.activation_failed.straggle": 1,
		"events.msg_dropped":                1,
		"events.msg_dropped.partition":      1,
		"events.election_completed":         1,
		"events.run_completed":              1,
		"events.run_completed.degraded":     1,
	}
	for name, want := range checks {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if h := snap.Histograms["slot.tags_read"]; h.N != 2 || h.Mean != 20 {
		t.Errorf("slot.tags_read = %+v", h)
	}
	if h := snap.Histograms["election.rounds"]; h.N != 1 || h.Mean != 12 {
		t.Errorf("election.rounds = %+v", h)
	}
	if h := snap.Histograms["election.messages"]; h.Mean != 340 {
		t.Errorf("election.messages = %+v", h)
	}
}

// TestHistogramObserveRacesMergeAndSnapshot hammers one histogram with
// concurrent Observes while Merge folds shards into the same registry and
// Snapshot reads it — the exact interleaving a live /metrics scrape of a
// parallel sweep produces. Run under -race this is the data-race proof; the
// final count is also checked so no observation is lost.
func TestHistogramObserveRacesMergeAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	const (
		writers   = 4
		perWriter = 2000
		merges    = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := reg.Histogram("race.hist")
			for i := 0; i < perWriter; i++ {
				h.Observe(float64(i))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < merges; i++ {
			shard := NewRegistry()
			shard.Histogram("race.hist").Observe(1)
			shard.Counter("race.count").Inc()
			reg.Merge(shard)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < merges; i++ {
			snap := reg.Snapshot()
			if h := snap.Histograms["race.hist"]; h.N < 0 {
				t.Error("negative histogram count")
			}
		}
	}()
	wg.Wait()
	snap := reg.Snapshot()
	if got := snap.Histograms["race.hist"].N; got != writers*perWriter+merges {
		t.Errorf("histogram N = %d, want %d (lost observations)", got, writers*perWriter+merges)
	}
	if got := snap.Counters["race.count"]; got != merges {
		t.Errorf("merged counter = %d, want %d", got, merges)
	}
}
