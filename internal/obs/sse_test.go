package obs

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestSSEBrokerEmitToSubscriber(t *testing.T) {
	b := NewSSEBroker(4)
	ch, cancel := b.subscribe()
	defer cancel()

	b.Emit(EvSlotExecuted(3, []int{1, 2}, 7))
	select {
	case frame := <-ch:
		s := string(frame)
		if !strings.HasPrefix(s, "event: slot_executed\n") {
			t.Fatalf("frame = %q, want slot_executed event name", s)
		}
		if !strings.Contains(s, "\nid: 1\n") {
			t.Fatalf("frame = %q, want id 1", s)
		}
		if !strings.Contains(s, "data: {") || !strings.HasSuffix(s, "\n\n") {
			t.Fatalf("frame = %q, not a well-formed SSE frame", s)
		}
	default:
		t.Fatal("no frame delivered")
	}
}

func TestSSEBrokerDropsWhenSubscriberFull(t *testing.T) {
	b := NewSSEBroker(1)
	_, cancel := b.subscribe()
	defer cancel()

	b.Emit(EvSlotPlanned(0, "alg", []int{0}))
	b.Emit(EvSlotPlanned(1, "alg", []int{0})) // buffer of 1 is already full
	if got := b.Dropped(); got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
}

func TestSSEBrokerNoSubscribersIsFree(t *testing.T) {
	b := NewSSEBroker(0)
	b.Emit(EvSlotPlanned(0, "alg", []int{0}))
	if b.Dropped() != 0 || b.Subscribers() != 0 {
		t.Fatalf("Dropped=%d Subscribers=%d, want 0/0", b.Dropped(), b.Subscribers())
	}
}

func TestSSEServeHTTPMethodAndHeaders(t *testing.T) {
	b := NewSSEBroker(0)
	rec := httptest.NewRecorder()
	b.ServeHTTP(rec, httptest.NewRequest("POST", "/events", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status = %d, want 405", rec.Code)
	}
	if got := rec.Header().Get("Allow"); got != "GET" {
		t.Fatalf("Allow = %q, want GET", got)
	}
}

// readSSE collects stream lines until the predicate matches or the deadline
// passes, then cancels the request context to release the handler.
func readSSE(t *testing.T, url string, want string) string {
	t.Helper()
	ctx, cancelCtx := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelCtx()
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", got)
	}
	if got := resp.Header.Get("Cache-Control"); got != "no-store" {
		t.Fatalf("Cache-Control = %q, want no-store", got)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
		if strings.Contains(sb.String(), want) {
			return sb.String()
		}
	}
	t.Fatalf("stream closed without %q; got:\n%s", want, sb.String())
	return ""
}

func TestSSEStreamReplaysFlightWindow(t *testing.T) {
	// The run finished before anyone connected: the flight recorder holds the
	// window, and a late subscriber still sees it via replay.
	flight := NewFlightRecorder(16)
	flight.Emit(EvSlotPlanned(0, "growth", []int{1, 2}))
	flight.Emit(EvRunCompleted(4, 5, "growth", "ok"))

	b := NewSSEBroker(0)
	b.SetReplay(flight)
	srv := httptest.NewServer(b)
	defer srv.Close()

	got := readSSE(t, srv.URL, "event: run_completed")
	if !strings.Contains(got, "event: slot_planned") {
		t.Fatalf("replay missing slot_planned:\n%s", got)
	}
	if !strings.Contains(got, `"alg":"growth"`) {
		t.Fatalf("replayed data lost the algorithm:\n%s", got)
	}
}

func TestSSEStreamReplaySuppressed(t *testing.T) {
	flight := NewFlightRecorder(16)
	flight.Emit(EvSlotPlanned(0, "growth", []int{1}))
	b := NewSSEBroker(0)
	b.SetReplay(flight)
	srv := httptest.NewServer(b)
	defer srv.Close()

	got := readSSE(t, srv.URL+"?replay=0", ": stream open")
	if strings.Contains(got, "slot_planned") {
		t.Fatalf("?replay=0 still replayed:\n%s", got)
	}
}

func TestSSEStreamDeliversLiveEvents(t *testing.T) {
	b := NewSSEBroker(0)
	srv := httptest.NewServer(b)
	defer srv.Close()

	// Emit once the subscriber is registered; poll because subscription
	// happens inside the handler goroutine.
	go func() {
		for i := 0; i < 5000; i++ {
			if b.Subscribers() > 0 {
				b.Emit(EvSlotExecuted(1, []int{0}, 2))
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	got := readSSE(t, srv.URL, `"type":"slot_executed"`)
	if !strings.Contains(got, "event: slot_executed") {
		t.Fatalf("live frame missing event name line:\n%s", got)
	}
}
