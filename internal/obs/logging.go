package obs

import (
	"io"
	"log/slog"
	"os"
)

// NewLogger is the shared slog setup for the repository's binaries and
// examples: a text handler without timestamps, so output is structured and
// greppable yet byte-for-byte reproducible across runs (the examples double
// as documentation; nondeterministic prefixes would defeat diffing them).
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{} // drop the timestamp
			}
			return a
		},
	}))
}

// NewJSONLogger is NewLogger with a JSON handler: one JSON object per line,
// timestamps dropped under the same reproducibility convention. It is the
// access-log format of the scheduling service — structured enough to grep a
// trace ID out of, deterministic enough to assert on in tests (durations
// come from an injectable clock, not the log timestamp).
func NewJSONLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{} // drop the timestamp
			}
			return a
		},
	}))
}

// osExit is swapped out by tests of Fatal.
var osExit = os.Exit

// Fatal logs msg with the error at Error level and exits with status 1 —
// the slog replacement for the examples' former bare log.Fatal.
func Fatal(l *slog.Logger, msg string, err error) {
	l.Error(msg, "err", err)
	osExit(1)
}
