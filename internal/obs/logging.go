package obs

import (
	"io"
	"log/slog"
	"os"
)

// NewLogger is the shared slog setup for the repository's binaries and
// examples: a text handler without timestamps, so output is structured and
// greppable yet byte-for-byte reproducible across runs (the examples double
// as documentation; nondeterministic prefixes would defeat diffing them).
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{} // drop the timestamp
			}
			return a
		},
	}))
}

// osExit is swapped out by tests of Fatal.
var osExit = os.Exit

// Fatal logs msg with the error at Error level and exits with status 1 —
// the slog replacement for the examples' former bare log.Fatal.
func Fatal(l *slog.Logger, msg string, err error) {
	l.Error(msg, "err", err)
	osExit(1)
}
