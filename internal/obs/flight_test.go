package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlightRecorderRetainsLastN(t *testing.T) {
	f := NewFlightRecorder(4)
	for slot := 0; slot < 10; slot++ {
		f.Emit(EvSlotExecuted(slot, []int{slot}, 1))
	}
	if f.Len() != 4 || f.Cap() != 4 {
		t.Fatalf("len=%d cap=%d, want 4/4", f.Len(), f.Cap())
	}
	if f.Dropped() != 6 {
		t.Errorf("dropped %d, want 6", f.Dropped())
	}
	ev := f.Events()
	for i, e := range ev {
		if want := 6 + i; e.T != want {
			t.Errorf("event %d has slot %d, want %d (oldest-first window)", i, e.T, want)
		}
	}
}

func TestFlightRecorderBelowCapacityKeepsAll(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Emit(EvSlotPlanned(0, "alg", []int{1}))
	f.Emit(EvSlotExecuted(0, []int{1}, 3))
	if got := f.Events(); len(got) != 2 || got[0].Type != SlotPlanned || got[1].Type != SlotExecuted {
		t.Errorf("unexpected window %+v", got)
	}
	if f.Dropped() != 0 {
		t.Errorf("dropped %d below capacity", f.Dropped())
	}
}

func TestFlightRecorderDefaultCapacity(t *testing.T) {
	if got := NewFlightRecorder(0).Cap(); got != DefaultFlightCapacity {
		t.Errorf("default capacity %d, want %d", got, DefaultFlightCapacity)
	}
}

// TestFlightDumpReadableBySummary round-trips a dump through the standard
// trace summarizer — the format contract behind `rfidsim -fig trace-report`
// accepting flight records.
func TestFlightDumpReadableBySummary(t *testing.T) {
	f := NewFlightRecorder(16)
	for slot := 0; slot < 5; slot++ {
		f.Emit(EvSlotPlanned(slot, "alg2", []int{0, 1}))
		f.Emit(EvSlotExecuted(slot, []int{0, 1}, 2))
	}
	f.Emit(EvRunCompleted(5, 10, "alg2", "ok"))

	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := ReadSummary(&buf)
	if err != nil {
		t.Fatalf("summarizing flight dump: %v", err)
	}
	if sum.Events[SlotExecuted] != 5 || sum.Events[RunCompleted] != 1 {
		t.Errorf("summary miscounted: %+v", sum.Events)
	}
}

func TestFlightRecorderAutoDumpOnBadRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	f := NewFlightRecorder(8)
	f.AutoDump(path)

	f.Emit(EvSlotExecuted(0, []int{1}, 2))
	f.Emit(EvRunCompleted(1, 2, "alg", "ok"))
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("healthy run triggered an auto dump (stat err: %v)", err)
	}

	f.Emit(EvRunCompleted(1, 2, "alg", "degraded"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("degraded run left no dump: %v", err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 3 {
		t.Errorf("dump has %d lines, want 3", lines)
	}
	if f.Err() != nil {
		t.Errorf("unexpected sticky error: %v", f.Err())
	}
}

func TestFlightRecorderAutoDumpOnIncompleteRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	f := NewFlightRecorder(8)
	f.AutoDump(path)
	f.Emit(EvRunCompleted(100, 7, "alg", "incomplete"))
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("incomplete run left no dump: %v", err)
	}
}

func TestFlightRecorderDumpErrorSticky(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Emit(EvSlotExecuted(0, nil, 0))
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "f.jsonl")
	if err := f.DumpFile(bad); err == nil {
		t.Fatal("dump into a missing directory succeeded")
	}
	if f.Err() == nil {
		t.Error("dump error not retained")
	}
}

func TestFlightRecorderDumpOnPanic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.jsonl")
	f := NewFlightRecorder(8)
	f.Emit(EvSlotExecuted(3, []int{2}, 1))

	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("DumpOnPanic swallowed the panic")
			} else if r != "boom" {
				t.Errorf("panic value changed to %v", r)
			}
		}()
		defer f.DumpOnPanic(path)
		panic("boom")
	}()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("panic left no dump: %v", err)
	}
	if !strings.Contains(string(data), `"slot_executed"`) {
		t.Errorf("dump missing the recorded event:\n%s", data)
	}
}

func TestFlightRecorderDumpOnPanicNoopWithoutPanic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "never.jsonl")
	f := NewFlightRecorder(4)
	func() { defer f.DumpOnPanic(path) }()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("dump written without a panic (stat err: %v)", err)
	}
}

// TestFlightRecorderComposesWithTee checks the recorder slots into the
// standard fan-out: a full sink and the ring both see every event.
func TestFlightRecorderComposesWithTee(t *testing.T) {
	full := &Collector{}
	ring := NewFlightRecorder(2)
	tr := Tee(full, ring)
	for slot := 0; slot < 5; slot++ {
		tr.Emit(EvSlotExecuted(slot, nil, 1))
	}
	if got := len(full.Events()); got != 5 {
		t.Errorf("full sink saw %d events, want 5", got)
	}
	if got := ring.Events(); len(got) != 2 || got[0].T != 3 || got[1].T != 4 {
		t.Errorf("ring window %+v, want slots 3,4", got)
	}
}
