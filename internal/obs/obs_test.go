package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestEventConstructorsDisambiguateZero(t *testing.T) {
	// Reader/tag id 0 must be distinguishable from "not applicable": the
	// constructors pin inapplicable numeric fields to -1.
	e := EvActivationFailed(3, 0, "crash")
	if e.Reader != 0 || e.Tag != -1 || e.From != -1 || e.To != -1 {
		t.Errorf("sentinels wrong: %+v", e)
	}
	e = EvMessageDropped(7, 0, 2, "loss")
	if e.From != 0 || e.To != 2 || e.Reader != -1 {
		t.Errorf("sentinels wrong: %+v", e)
	}
	e = EvTagAbandoned(10, 0)
	if e.Tag != 0 || e.Reader != -1 || e.Cause != "readers-dead" {
		t.Errorf("sentinels wrong: %+v", e)
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	in := EvSlotPlanned(4, "Alg2-Growth", []int{0, 3, 9})
	in.Run = "trial0"
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Event
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Type != SlotPlanned || out.T != 4 || out.Run != "trial0" ||
		out.Alg != "Alg2-Growth" || len(out.Readers) != 3 || out.Readers[2] != 9 {
		t.Errorf("round trip mangled event: %+v", out)
	}
}

func TestEventConstructorsCopyReaderSlices(t *testing.T) {
	x := []int{1, 2, 3}
	e := EvSlotExecuted(0, x, 5)
	x[0] = 99
	if e.Readers[0] != 1 {
		t.Error("EvSlotExecuted aliased the caller's slice")
	}
}

func TestJSONLWritesOneValidLinePerEvent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	tr.Emit(EvSlotPlanned(0, "GHC", []int{1}))
	tr.Emit(EvSlotExecuted(0, []int{1}, 12))
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	for i, ln := range lines {
		var e Event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Errorf("line %d invalid JSON: %v", i, err)
		}
	}
}

func TestJSONLConcurrentEmitKeepsLinesWhole(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	var wg sync.WaitGroup
	const goroutines, each = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Emit(EvSlotExecuted(i, []int{g}, i))
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != goroutines*each {
		t.Fatalf("%d lines, want %d", len(lines), goroutines*each)
	}
	for _, ln := range lines {
		var e Event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("interleaved line: %q", ln)
		}
	}
}

func TestWithRunStampsAndNests(t *testing.T) {
	var c Collector
	outer := WithRun(WithRun(&c, "outer"), "inner")
	outer.Emit(EvRunCompleted(5, 100, "GHC", "ok"))
	evs := c.Events()
	if len(evs) != 1 {
		t.Fatalf("%d events", len(evs))
	}
	// Emission passes through the "inner" decorator first (Run="inner"),
	// then "outer" prefixes its own segment: "outer/inner".
	if evs[0].Run != "outer/inner" {
		t.Errorf("Run = %q, want outer/inner", evs[0].Run)
	}
}

func TestWithRunNilInnerStaysNil(t *testing.T) {
	if tr := WithRun(nil, "x"); tr != nil {
		t.Error("WithRun(nil) must stay nil so call-site guards keep working")
	}
}

func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Error("Tee of no live tracers must be nil")
	}
	var a, b Collector
	if got := Tee(nil, &a); got != &a {
		t.Error("single live tracer should be returned unwrapped")
	}
	tr := Tee(&a, nil, &b)
	tr.Emit(EvStallFallback(1, []int{2}))
	if a.Count(StallFallback) != 1 || b.Count(StallFallback) != 1 {
		t.Error("Tee did not fan out")
	}
}

func TestCollectorCount(t *testing.T) {
	var c Collector
	c.Emit(EvSlotPlanned(0, "x", nil))
	c.Emit(EvSlotExecuted(0, nil, 1))
	c.Emit(EvSlotExecuted(1, nil, 2))
	if c.Count(SlotExecuted) != 2 || c.Count(SlotPlanned) != 1 || c.Count(TagAbandoned) != 0 {
		t.Error("Count wrong")
	}
}
