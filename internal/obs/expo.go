package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type of the Prometheus text
// exposition format rendered by WriteExposition (format version 0.0.4).
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteExposition renders the snapshot in the Prometheus text exposition
// format, one `# TYPE` header per metric family followed by its samples.
// Registry names use dots ("mcs.slots.truncated"); exposition names must
// match [a-zA-Z_:][a-zA-Z0-9_:]*, so every invalid character becomes an
// underscore. Counters and gauges map 1:1. A Histogram is a Welford
// accumulator, not a bucketed distribution, so it is exported as a summary
// (<name>_sum, <name>_count — enough for rate() of means) plus companion
// gauges <name>_min, <name>_max, <name>_mean and <name>_stddev.
//
// Output is deterministic: families render in kind-then-name order, and two
// registry names that sanitize to the same exposition name keep only the
// first (sorted) one.
func (s Snapshot) WriteExposition(w io.Writer) error {
	seen := map[string]bool{}
	// claim reserves a family name (and, for summaries, its _sum/_count
	// sample names); a collision drops the later family entirely rather
	// than emitting a duplicate TYPE line, which scrapers reject.
	claim := func(names ...string) bool {
		for _, n := range names {
			if seen[n] {
				return false
			}
		}
		for _, n := range names {
			seen[n] = true
		}
		return true
	}

	for _, name := range s.CounterNames() {
		n := SanitizeMetricName(name)
		if !claim(n) {
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range s.GaugeNames() {
		n := SanitizeMetricName(name)
		if !claim(n) {
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, formatSample(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range s.HistogramNames() {
		n := SanitizeMetricName(name)
		if !claim(n, n+"_sum", n+"_count") {
			continue
		}
		h := s.Histograms[name]
		sum := h.Mean * float64(h.N)
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n%s_sum %s\n%s_count %d\n",
			n, n, formatSample(sum), n, h.N); err != nil {
			return err
		}
		for _, companion := range []struct {
			suffix string
			v      float64
		}{
			{"min", h.Min}, {"max", h.Max}, {"mean", h.Mean}, {"stddev", h.Std},
		} {
			cn := n + "_" + companion.suffix
			if !claim(cn) {
				continue
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", cn, cn, formatSample(companion.v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// SanitizeMetricName maps a registry metric name onto the exposition
// charset: characters outside [a-zA-Z0-9_:] become underscores, and a name
// whose first character is a digit gains an underscore prefix. An empty
// name becomes "_".
func SanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatSample renders a float the way the exposition format expects;
// strconv already yields the spec's "NaN", "+Inf" and "-Inf" spellings.
func formatSample(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
