package obs

import "time"

// The span taxonomy of the scheduling stack (DESIGN.md §13). Each name keys
// one per-phase duration histogram, "span.<name>.seconds":
//
//	solve             one OneShot scheduler call inside the MCS driver loop
//	repair            the fault-repair work of one slot (down-mask refresh,
//	                  executable split, stall fallback)
//	election          one full distributed coordinator-election protocol run
//	checkpoint.write  one durable slot-record append, fsync included
const (
	SpanSolve           = "solve"
	SpanRepair          = "repair"
	SpanElection        = "election"
	SpanCheckpointWrite = "checkpoint.write"
)

// SpanMetric returns the histogram name a span of the given phase feeds.
func SpanMetric(name string) string { return "span." + name + ".seconds" }

// Span times one phase of work. It is a value, not a pointer: starting a
// span allocates nothing, and a span started against a nil registry is the
// zero Span, whose End is a no-op — the same zero-cost off switch as the
// nil-Tracer convention, so engines call StartSpan/End unconditionally.
//
// Spans are pure observation: the measured duration only ever lands in a
// Histogram, no engine reads it back, so a seeded run is bit-identical with
// spans enabled or disabled.
type Span struct {
	reg   *Registry
	name  string
	clock func() time.Time
	start time.Time
}

// StartSpan begins timing the named phase against reg using the wall clock.
// A nil registry returns the zero Span without reading the clock.
func StartSpan(reg *Registry, name string) Span {
	return StartSpanClock(reg, name, nil)
}

// StartSpanClock is StartSpan with an injectable clock, so tests can drive
// deterministic durations. A nil clock means time.Now.
func StartSpanClock(reg *Registry, name string, clock func() time.Time) Span {
	if reg == nil {
		return Span{}
	}
	if clock == nil {
		clock = time.Now
	}
	return Span{reg: reg, name: name, clock: clock, start: clock()}
}

// End observes the elapsed phase duration, in seconds, into the span's
// histogram. End on the zero Span is a no-op. A span may be ended only once;
// spans are cheap, start a new one per phase instance.
func (s Span) End() {
	if s.reg == nil {
		return
	}
	s.reg.Histogram(SpanMetric(s.name)).Observe(s.clock().Sub(s.start).Seconds())
}
