package obs

import (
	"bytes"
	"strings"
	"testing"
)

// syntheticTrace writes a two-slot single-run trace through JSONL and
// returns the buffer.
func syntheticTrace(t *testing.T, run string) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	var tr Tracer = NewJSONL(&buf)
	if run != "" {
		tr = WithRun(tr, run)
	}
	tr.Emit(EvSlotPlanned(0, "Alg3-Distributed", []int{0, 2, 5}))
	tr.Emit(EvActivationFailed(0, 5, "crash"))
	tr.Emit(EvSlotExecuted(0, []int{0, 2}, 40))
	tr.Emit(EvSlotPlanned(1, "Alg3-Distributed", []int{1}))
	tr.Emit(EvStallFallback(1, []int{3}))
	tr.Emit(EvSlotExecuted(1, []int{3}, 7))
	tr.Emit(EvMessageDropped(4, 0, 1, "loss"))
	tr.Emit(EvMessageDropped(9, 2, 3, "partition"))
	tr.Emit(EvElectionCompleted(0, 12, 200, []int{0, 2, 5}))
	tr.Emit(EvTagAbandoned(2, 77))
	tr.Emit(EvRunCompleted(2, 47, "Alg3-Distributed", "degraded"))
	return &buf
}

func TestReadSummarySingleRun(t *testing.T) {
	s, err := ReadSummary(syntheticTrace(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	if s.Lines() != 11 {
		t.Errorf("lines = %d", s.Lines())
	}
	if len(s.Runs) != 1 {
		t.Fatalf("runs = %d", len(s.Runs))
	}
	r := s.Runs[""]
	if r.Slots != 2 || r.TagsRead != 47 || r.FailedActivations != 1 ||
		r.Fallbacks != 1 || r.LostTags != 1 || r.Elections != 1 ||
		r.Rounds != 12 || r.Messages != 200 || r.Drops != 2 {
		t.Errorf("run summary wrong: %+v", r)
	}
	if r.Status != "degraded" || r.ReportedSlots != 2 || r.ReportedTags != 47 {
		t.Errorf("run_completed echo wrong: %+v", r)
	}
	if s.FailuresByCause["crash"] != 1 {
		t.Error("failure cause lost")
	}
	if s.DropsByCause["loss"] != 1 || s.DropsByCause["partition"] != 1 {
		t.Error("drop causes lost")
	}
	if len(s.Slots) != 2 {
		t.Fatalf("slot detail rows = %d", len(s.Slots))
	}
	if d := s.Slots[0]; d.Planned != 3 || d.Active != 2 || d.TagsRead != 40 || d.Failed != 1 || d.Fallback {
		t.Errorf("slot 0 detail wrong: %+v", d)
	}
	if d := s.Slots[1]; d.Planned != 1 || d.Active != 1 || d.TagsRead != 7 || !d.Fallback {
		t.Errorf("slot 1 detail wrong: %+v", d)
	}
	if s.TagsPerSlot.N != 2 || s.TagsPerSlot.Mean != 23.5 {
		t.Errorf("tags/slot hist wrong: %+v", s.TagsPerSlot)
	}
}

func TestReadSummaryMultiRunDropsSlotDetail(t *testing.T) {
	a := syntheticTrace(t, "runA")
	b := syntheticTrace(t, "runB")
	a.Write(b.Bytes())
	s, err := ReadSummary(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Runs) != 2 {
		t.Fatalf("runs = %d", len(s.Runs))
	}
	if s.Slots != nil {
		t.Error("slot detail must be dropped for interleaved runs")
	}
	if ids := s.RunIDs(); ids[0] != "runA" || ids[1] != "runB" {
		t.Errorf("run ids %v", ids)
	}
	for _, id := range s.RunIDs() {
		if r := s.Runs[id]; r.Slots != 2 || r.TagsRead != 47 {
			t.Errorf("%s summary wrong: %+v", id, r)
		}
	}
}

func TestReadSummaryRejectsGarbage(t *testing.T) {
	if _, err := ReadSummary(strings.NewReader("{\"type\":\"slot_executed\"}\nnot json\n")); err == nil {
		t.Error("no error for malformed trace line")
	}
}

func TestWriteReportIsDeterministicAndComplete(t *testing.T) {
	var first string
	for i := 0; i < 3; i++ {
		s, err := ReadSummary(syntheticTrace(t, ""))
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := s.Write(&out); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = out.String()
			for _, want := range []string{
				"events by type", "failed activations by cause",
				"messages dropped by cause", "per-run summary",
				"per-slot detail", "fallback", "degraded",
			} {
				if !strings.Contains(first, want) {
					t.Errorf("report missing %q:\n%s", want, first)
				}
			}
		} else if out.String() != first {
			t.Fatal("report output not deterministic")
		}
	}
}

func TestSlotDetailCap(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	for i := 0; i < maxSlotDetail+10; i++ {
		tr.Emit(EvSlotExecuted(i, []int{0}, 1))
	}
	s, err := ReadSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !s.SlotsTruncated {
		t.Error("truncation not flagged")
	}
	if len(s.Slots) != maxSlotDetail {
		t.Errorf("detail rows = %d", len(s.Slots))
	}
	if r := s.Runs[""]; r.Slots != maxSlotDetail+10 {
		t.Errorf("aggregates must stay exact past the cap: %+v", r)
	}
}

// TestReadSummaryFlightDumpWindow feeds a flight-recorder dump to the
// summarizer: the ring wrapped mid-run, so the window opens at a high slot
// number and the first slot is missing its slot_planned prefix.
func TestReadSummaryFlightDumpWindow(t *testing.T) {
	rec := NewFlightRecorder(5)
	rec.Emit(EvSlotPlanned(999, "Alg2-Growth", []int{9})) // evicted by the ring
	for slot := 1000; slot < 1003; slot++ {
		rec.Emit(EvSlotPlanned(slot, "Alg2-Growth", []int{1, 2}))
		rec.Emit(EvSlotExecuted(slot, []int{1, 2}, 5))
	}
	// Capacity 5 of 7 emits: the ring holds slot 1000's executed event
	// onward — slot 999 entirely and slot 1000's planned event are gone.
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := ReadSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.SlotBase != 1000 {
		t.Errorf("SlotBase = %d, want 1000", s.SlotBase)
	}
	if len(s.Slots) != 3 {
		t.Fatalf("detail rows = %d, want 3", len(s.Slots))
	}
	if d := s.Slots[0]; d.Slot != 1000 || d.Planned != -1 || d.Active != 2 || d.TagsRead != 5 {
		t.Errorf("wrapped first slot wrong: %+v", d)
	}
	if d := s.Slots[1]; d.Slot != 1001 || d.Planned != 2 {
		t.Errorf("intact slot wrong: %+v", d)
	}
	if s.SlotsTruncated {
		t.Error("a small window must not report truncation")
	}

	var out bytes.Buffer
	if err := s.Write(&out); err != nil {
		t.Fatal(err)
	}
	rep := out.String()
	if !strings.Contains(rep, "mid-run window: trace opens at slot 1000") {
		t.Errorf("report does not flag the mid-run window:\n%s", rep)
	}
	if !strings.Contains(rep, "  1000          -        2") {
		t.Errorf("missing-planned slot not rendered as '-':\n%s", rep)
	}
}
