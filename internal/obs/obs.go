// Package obs is the observability layer of the scheduling stack: slot-level
// tracing, a metrics registry, profiling hooks, and structured logging —
// stdlib only, like every other substrate in this repository.
//
// The design splits observation from interpretation. The execution engines
// (core.RunMCS, core.Distributed, distnet, slotsim) emit typed events
// through a Tracer; sinks decide what to do with them — append JSONL lines
// (JSONL), aggregate into metrics (NewMetricsTracer), buffer for assertions
// (Collector), or fan out (Tee). A nil Tracer is the disabled state: every
// call site is guarded with `if tr != nil`, so the event struct is never
// even built and the instrumented hot paths stay allocation-free (see
// BenchmarkRunMCSTracerNil in package core and cmd/obsbench).
//
// Tracing is strictly read-only observation. No engine consults the tracer
// for decisions and no RNG is shared with it, so a seeded run produces an
// identical result with tracing on or off — the determinism contract
// DESIGN.md §9 spells out and the engines' trace tests enforce.
package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// EventType names one kind of trace event.
type EventType string

// The event taxonomy. Tick axes: schedule/macro slots for the slot events,
// protocol rounds for the network events.
const (
	// SlotPlanned: the one-shot scheduler proposed reader set Readers for
	// slot T (before execution-time faults are applied). Alg carries the
	// scheduler name.
	SlotPlanned EventType = "slot_planned"
	// SlotExecuted: slot T actually activated Readers and read N unread
	// tags.
	SlotExecuted EventType = "slot_executed"
	// ActivationFailed: planned Reader was down at execution of slot T;
	// Cause is "crash" or "straggle".
	ActivationFailed EventType = "activation_failed"
	// StallFallback: the stall guard replaced the scheduler's set with the
	// conservative greedy set Readers at slot T.
	StallFallback EventType = "stall_fallback"
	// TagAbandoned: at end of run (slot T), unread Tag was given up because
	// every covering reader is permanently dead; Cause is "readers-dead".
	TagAbandoned EventType = "tag_abandoned"
	// MessageDropped: the protocol network dropped a From→To message at
	// round T; Cause is "loss", "partition" or "down".
	MessageDropped EventType = "msg_dropped"
	// ElectionCompleted: one distributed one-shot computation (a full
	// coordinator-election protocol run) finished: the T-th call on this
	// scheduler took N rounds and M messages and decided Readers.
	ElectionCompleted EventType = "election_completed"
	// RunCompleted: a covering-schedule or simulator run ended after T
	// slots having read N tags; Cause is "ok", "degraded" or "incomplete".
	RunCompleted EventType = "run_completed"
	// SlotTruncated: slot T's one-shot computation hit its per-slot budget
	// and the scheduler (Alg) returned its anytime incumbent instead of
	// finishing the search.
	SlotTruncated EventType = "slot_truncated"
	// CheckpointWritten: durable driver state through slot T was flushed;
	// N is the cumulative tags-read count the checkpoint records.
	CheckpointWritten EventType = "checkpoint_written"
	// CheckpointRestored: a run resumed from durable state at slot T; N is
	// the restored cumulative tags-read count.
	CheckpointRestored EventType = "checkpoint_restored"
	// RequestPhase: one phase of a service request's lifecycle (decode,
	// queue, solve, verify, encode, ...) finished. Run carries the request's
	// trace ID, Cause the phase name, N the phase duration in nanoseconds.
	// Emitted into the flight recorder for slow requests so a post-mortem
	// dump carries the request's full breakdown (DESIGN.md §16).
	RequestPhase EventType = "request_phase"
	// RequestCompleted: a service request finished. Run carries the trace
	// ID, Cause the endpoint, Alg the requested algorithm, M the HTTP
	// status, N the total duration in nanoseconds.
	RequestCompleted EventType = "request_completed"
)

// Event is one trace record. Numeric fields that do not apply to a given
// type are -1 (and still marshaled), so a trace line is never ambiguous
// about reader/tag id 0. The constructors below set the convention; build
// events through them.
type Event struct {
	Type EventType `json:"type"`
	// Run identifies the run the event belongs to when one sink serves
	// many concurrent runs (see WithRun); empty for single-run traces.
	Run string `json:"run,omitempty"`
	// T is the event's tick on its own axis: slot number for slot events,
	// round number for msg_dropped, call index for election_completed,
	// final size for run_completed.
	T      int    `json:"t"`
	Reader int    `json:"reader"`
	Tag    int    `json:"tag"`
	From   int    `json:"from"`
	To     int    `json:"to"`
	N      int    `json:"n"` // primary count payload
	M      int    `json:"m"` // secondary count payload
	Cause  string `json:"cause,omitempty"`
	Alg    string `json:"alg,omitempty"`
	// Readers is the reader set the event concerns (planned, active,
	// fallback or decided set).
	Readers []int `json:"readers,omitempty"`
}

// base returns an event with every inapplicable numeric field at -1.
func base(t EventType, tick int) Event {
	return Event{Type: t, T: tick, Reader: -1, Tag: -1, From: -1, To: -1, N: -1, M: -1}
}

// EvSlotPlanned builds a slot_planned event. The readers slice is copied so
// engines may keep mutating their working set.
func EvSlotPlanned(slot int, alg string, readers []int) Event {
	e := base(SlotPlanned, slot)
	e.Alg = alg
	e.Readers = append([]int(nil), readers...)
	return e
}

// EvSlotExecuted builds a slot_executed event.
func EvSlotExecuted(slot int, readers []int, tagsRead int) Event {
	e := base(SlotExecuted, slot)
	e.Readers = append([]int(nil), readers...)
	e.N = tagsRead
	return e
}

// EvActivationFailed builds an activation_failed event.
func EvActivationFailed(slot, reader int, cause string) Event {
	e := base(ActivationFailed, slot)
	e.Reader = reader
	e.Cause = cause
	return e
}

// EvStallFallback builds a stall_fallback event.
func EvStallFallback(slot int, readers []int) Event {
	e := base(StallFallback, slot)
	e.Readers = append([]int(nil), readers...)
	return e
}

// EvTagAbandoned builds a tag_abandoned event.
func EvTagAbandoned(slot, tag int) Event {
	e := base(TagAbandoned, slot)
	e.Tag = tag
	e.Cause = "readers-dead"
	return e
}

// EvMessageDropped builds a msg_dropped event.
func EvMessageDropped(round, from, to int, cause string) Event {
	e := base(MessageDropped, round)
	e.From, e.To = from, to
	e.Cause = cause
	return e
}

// EvElectionCompleted builds an election_completed event for the call-th
// one-shot protocol execution, which used rounds rounds and messages
// messages and decided the given reader set.
func EvElectionCompleted(call, rounds, messages int, readers []int) Event {
	e := base(ElectionCompleted, call)
	e.N = rounds
	e.M = messages
	e.Readers = append([]int(nil), readers...)
	return e
}

// EvSlotTruncated builds a slot_truncated event: slot's one-shot hit its
// budget and alg returned an anytime incumbent.
func EvSlotTruncated(slot int, alg string) Event {
	e := base(SlotTruncated, slot)
	e.Alg = alg
	return e
}

// EvCheckpointWritten builds a checkpoint_written event for the checkpoint
// covering everything through slot, with the cumulative tags-read count.
func EvCheckpointWritten(slot, totalRead int) Event {
	e := base(CheckpointWritten, slot)
	e.N = totalRead
	return e
}

// EvCheckpointRestored builds a checkpoint_restored event: the run resumed
// at slot with totalRead tags already credited.
func EvCheckpointRestored(slot, totalRead int) Event {
	e := base(CheckpointRestored, slot)
	e.N = totalRead
	return e
}

// EvRequestPhase builds a request_phase event: the request identified by
// trace spent durNs nanoseconds in the named lifecycle phase.
func EvRequestPhase(trace, phase string, durNs int64) Event {
	e := base(RequestPhase, -1)
	e.Run = trace
	e.Cause = phase
	e.N = int(durNs)
	return e
}

// EvRequestCompleted builds a request_completed event: the request
// identified by trace against the named endpoint (and algorithm, when it
// reached one) finished with the given HTTP status after durNs nanoseconds.
func EvRequestCompleted(trace, endpoint, alg string, status int, durNs int64) Event {
	e := base(RequestCompleted, -1)
	e.Run = trace
	e.Cause = endpoint
	e.Alg = alg
	e.M = status
	e.N = int(durNs)
	return e
}

// EvRunCompleted builds a run_completed event; status is "ok", "degraded"
// or "incomplete".
func EvRunCompleted(slots, tagsRead int, alg, status string) Event {
	e := base(RunCompleted, slots)
	e.N = tagsRead
	e.Alg = alg
	e.Cause = status
	return e
}

// Tracer receives trace events. Implementations must be safe for concurrent
// Emit calls: the experiment harness runs trials in parallel against one
// shared sink. A nil Tracer means tracing is off — call sites guard, they
// do not call.
type Tracer interface {
	Emit(Event)
}

// JSONL appends events as JSON lines to a writer. Safe for concurrent use.
// Encoding errors are sticky: the first one is kept (see Err) and later
// events are dropped rather than interleaving partial lines.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONL builds a JSONL tracer writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Emit implements Tracer.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(e)
}

// Err returns the first encoding error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Collector buffers events in memory — the assertion sink for tests.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Tracer.
func (c *Collector) Emit(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of the collected events in emission order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Count returns how many collected events have the given type.
func (c *Collector) Count(t EventType) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.events {
		if e.Type == t {
			n++
		}
	}
	return n
}

// runTracer stamps a run identifier onto every event before forwarding.
type runTracer struct {
	inner Tracer
	run   string
}

// WithRun returns a Tracer that prefixes every event's Run field with run
// (joined by "/" when the event already carries one, so decorators nest:
// the outermost wrapper contributes the leftmost path segment). A nil inner
// tracer returns nil, preserving the "nil means off" contract through
// decoration.
func WithRun(inner Tracer, run string) Tracer {
	if inner == nil {
		return nil
	}
	return &runTracer{inner: inner, run: run}
}

// Emit implements Tracer.
func (r *runTracer) Emit(e Event) {
	if e.Run == "" {
		e.Run = r.run
	} else {
		e.Run = r.run + "/" + e.Run
	}
	r.inner.Emit(e)
}

// Tee fans events out to every non-nil tracer. It returns nil when none
// remain, so Tee(nil, nil) is still the zero-cost disabled state.
func Tee(tracers ...Tracer) Tracer {
	var live []Tracer
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return teeTracer(live)
}

type teeTracer []Tracer

// Emit implements Tracer.
func (ts teeTracer) Emit(e Event) {
	for _, t := range ts {
		t.Emit(e)
	}
}
