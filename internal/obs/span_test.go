package obs

import (
	"testing"
	"time"
)

// fakeClock returns a clock that advances by step on every reading.
func fakeClock(start time.Time, step time.Duration) func() time.Time {
	now := start
	return func() time.Time {
		t := now
		now = now.Add(step)
		return t
	}
}

func TestSpanObservesDeterministicDuration(t *testing.T) {
	reg := NewRegistry()
	clock := fakeClock(time.Unix(1000, 0), 250*time.Millisecond)
	sp := StartSpanClock(reg, SpanSolve, clock)
	sp.End()

	h := reg.Snapshot().Histograms[SpanMetric(SpanSolve)]
	if h.N != 1 {
		t.Fatalf("span histogram has %d samples, want 1", h.N)
	}
	if h.Mean != 0.25 {
		t.Errorf("span duration %v, want 0.25s", h.Mean)
	}
}

func TestSpanAccumulatesPerPhase(t *testing.T) {
	reg := NewRegistry()
	clock := fakeClock(time.Unix(0, 0), 100*time.Millisecond)
	for i := 0; i < 5; i++ {
		StartSpanClock(reg, SpanCheckpointWrite, clock).End()
	}
	StartSpanClock(reg, SpanRepair, clock).End()

	snap := reg.Snapshot()
	if h := snap.Histograms[SpanMetric(SpanCheckpointWrite)]; h.N != 5 {
		t.Errorf("checkpoint.write has %d samples, want 5", h.N)
	}
	if h := snap.Histograms[SpanMetric(SpanRepair)]; h.N != 1 {
		t.Errorf("repair has %d samples, want 1", h.N)
	}
}

func TestSpanNilRegistryIsNoop(t *testing.T) {
	sp := StartSpan(nil, SpanElection)
	sp.End() // must not panic
	var zero Span
	zero.End() // zero value likewise
}

func TestSpanWallClockDefault(t *testing.T) {
	reg := NewRegistry()
	sp := StartSpan(reg, SpanSolve)
	sp.End()
	h := reg.Snapshot().Histograms[SpanMetric(SpanSolve)]
	if h.N != 1 {
		t.Fatalf("span histogram has %d samples, want 1", h.N)
	}
	if h.Mean < 0 {
		t.Errorf("wall-clock span measured negative duration %v", h.Mean)
	}
}
