package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func telemetryGet(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, string(body)
}

func TestHandlerMetricsExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("events.slot_executed").Add(9)
	reg.Gauge("mcs.slot.current").Set(8)
	reg.Histogram("span.solve.seconds").Observe(0.5)

	h := Handler(ServeOptions{Registry: reg})
	res, body := telemetryGet(t, h, "/metrics")
	if res.StatusCode != 200 {
		t.Fatalf("/metrics status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != ExpositionContentType {
		t.Errorf("content type %q", ct)
	}
	samples := validateExposition(t, body)
	if samples["events_slot_executed"] != "9" || samples["mcs_slot_current"] != "8" {
		t.Errorf("exposition missing live metrics:\n%s", body)
	}
	if samples["span_solve_seconds_count"] != "1" {
		t.Errorf("span histogram not exposed:\n%s", body)
	}
}

func TestHandlerMetricsNoRegistry(t *testing.T) {
	res, body := telemetryGet(t, Handler(ServeOptions{}), "/metrics")
	if res.StatusCode != 200 || body != "" {
		t.Errorf("registry-less /metrics: status %d body %q", res.StatusCode, body)
	}
}

func TestHandlerRunsProgress(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("mcs.slot.current").Set(12)
	reg.Gauge("mcs.tags.read").Set(345)
	reg.Gauge("checkpoint.last_slot").Set(11)
	reg.Gauge("supervise.attempt").Set(1)
	reg.Counter("mcs.slots.truncated").Add(3)
	reg.Counter("checkpoint.records").Add(13)
	reg.Counter("events.run_completed").Add(0)

	res, body := telemetryGet(t, Handler(ServeOptions{Registry: reg}), "/runs")
	if res.StatusCode != 200 {
		t.Fatalf("/runs status %d", res.StatusCode)
	}
	var st RunStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/runs is not JSON: %v\n%s", err, body)
	}
	want := RunStatus{
		Slot: 12, TagsRead: 345, AnytimeSlots: 3,
		CheckpointLastSlot: 11, CheckpointLag: 1, CheckpointsWritten: 13,
		SuperviseAttempt: 1,
	}
	if st != want {
		t.Errorf("run status %+v, want %+v", st, want)
	}
}

func TestRunStatusUnsetGaugesAreMinusOne(t *testing.T) {
	st := RunStatusFrom(NewRegistry().Snapshot())
	if st.Slot != -1 || st.TagsRead != -1 || st.CheckpointLastSlot != -1 ||
		st.CheckpointLag != -1 || st.SuperviseAttempt != -1 {
		t.Errorf("empty registry status %+v, want -1 sentinels", st)
	}
	if st.AnytimeSlots != 0 || st.CheckpointsWritten != 0 {
		t.Errorf("absent counters should read 0: %+v", st)
	}
}

func TestHandlerHealthAndReadiness(t *testing.T) {
	ready := false
	h := Handler(ServeOptions{Ready: func() bool { return ready }})

	if res, _ := telemetryGet(t, h, "/healthz"); res.StatusCode != 200 {
		t.Errorf("/healthz status %d", res.StatusCode)
	}
	if res, _ := telemetryGet(t, h, "/readyz"); res.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("not-ready /readyz status %d, want 503", res.StatusCode)
	}
	ready = true
	if res, _ := telemetryGet(t, h, "/readyz"); res.StatusCode != 200 {
		t.Errorf("ready /readyz status %d", res.StatusCode)
	}
	// No hook: always ready.
	if res, _ := telemetryGet(t, Handler(ServeOptions{}), "/readyz"); res.StatusCode != 200 {
		t.Errorf("hookless /readyz status %d", res.StatusCode)
	}
}

func TestHandlerFlightDump(t *testing.T) {
	rec := NewFlightRecorder(8)
	rec.Emit(EvSlotExecuted(0, []int{1, 2}, 5))
	rec.Emit(EvRunCompleted(1, 5, "alg2", "ok"))
	h := Handler(ServeOptions{Flight: rec})

	res, body := telemetryGet(t, h, "/debug/flight")
	if res.StatusCode != 200 {
		t.Fatalf("/debug/flight status %d", res.StatusCode)
	}
	sum, err := ReadSummary(strings.NewReader(body))
	if err != nil {
		t.Fatalf("flight dump is not a readable trace: %v", err)
	}
	if sum.Lines() != 2 {
		t.Errorf("dump has %d lines, want 2", sum.Lines())
	}
}

func TestHandlerFlightAbsent(t *testing.T) {
	if res, _ := telemetryGet(t, Handler(ServeOptions{}), "/debug/flight"); res.StatusCode != 404 {
		t.Errorf("recorder-less /debug/flight status %d, want 404", res.StatusCode)
	}
}

func TestHandlerPprofIndex(t *testing.T) {
	res, body := telemetryGet(t, Handler(ServeOptions{}), "/debug/pprof/")
	if res.StatusCode != 200 {
		t.Fatalf("/debug/pprof/ status %d", res.StatusCode)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index looks wrong:\n%.200s", body)
	}
}

// TestServeBindsAndServes exercises the real listener path: bind :0, hit the
// endpoints over TCP, close, and confirm the port is released.
func TestServeBindsAndServes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("events.slot_executed").Inc()
	srv, err := Serve("127.0.0.1:0", ServeOptions{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	res, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != 200 || !strings.Contains(string(body), "events_slot_executed 1") {
		t.Errorf("live /metrics: status %d body:\n%s", res.StatusCode, body)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + srv.Addr + "/healthz"); err == nil {
		t.Error("server still reachable after Close")
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:99999", ServeOptions{}); err == nil {
		t.Error("no error for an unbindable address")
	}
}
