package obs

import (
	"bytes"
	"errors"
	"log/slog"
	"strings"
	"testing"
)

func TestNewLoggerDropsTimestampsAndIsGreppable(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelInfo)
	l.Info("schedule done", "slots", 42, "alg", "Alg2-Growth")
	line := buf.String()
	if strings.Contains(line, "time=") {
		t.Errorf("timestamp not dropped: %s", line)
	}
	for _, want := range []string{"level=INFO", `msg="schedule done"`, "slots=42", "alg=Alg2-Growth"} {
		if !strings.Contains(line, want) {
			t.Errorf("missing %q in %s", want, line)
		}
	}
	// Determinism: two identical records render identically.
	var buf2 bytes.Buffer
	NewLogger(&buf2, slog.LevelInfo).Info("schedule done", "slots", 42, "alg", "Alg2-Growth")
	if buf2.String() != line {
		t.Error("logger output not reproducible")
	}
}

func TestNewLoggerLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelWarn)
	l.Info("quiet")
	if buf.Len() != 0 {
		t.Error("info leaked through warn level")
	}
	l.Warn("loud")
	if buf.Len() == 0 {
		t.Error("warn suppressed")
	}
}

func TestFatalLogsAndExits(t *testing.T) {
	exited := -1
	old := osExit
	osExit = func(code int) { exited = code }
	defer func() { osExit = old }()
	var buf bytes.Buffer
	Fatal(NewLogger(&buf, slog.LevelInfo), "boom", errors.New("kaput"))
	if exited != 1 {
		t.Errorf("exit code %d", exited)
	}
	if !strings.Contains(buf.String(), "err=kaput") || !strings.Contains(buf.String(), "level=ERROR") {
		t.Errorf("fatal line wrong: %s", buf.String())
	}
}
