package obs

import (
	"bufio"
	"math"
	"regexp"
	"strings"
	"testing"
)

var (
	expoTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)
	expoSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*) (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|-?[0-9]\.[0-9]+|NaN|[+-]Inf)$`)
)

// validateExposition is a strict checker of the subset of the Prometheus
// text format WriteExposition emits: every line is a TYPE header or a
// bare-name sample, every sample belongs to the family most recently
// declared (allowing the summary's _sum/_count and companion suffixes via
// their own TYPE lines), and no family is declared twice.
func validateExposition(t *testing.T, text string) map[string]string {
	t.Helper()
	types := map[string]string{}
	samples := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	line := 0
	for sc.Scan() {
		line++
		l := sc.Text()
		if l == "" {
			continue
		}
		if strings.HasPrefix(l, "#") {
			m := expoTypeRe.FindStringSubmatch(l)
			if m == nil {
				t.Fatalf("line %d: malformed comment/TYPE line %q", line, l)
			}
			if _, dup := types[m[1]]; dup {
				t.Fatalf("line %d: family %q declared twice", line, m[1])
			}
			types[m[1]] = m[2]
			continue
		}
		m := expoSampleRe.FindStringSubmatch(l)
		if m == nil {
			t.Fatalf("line %d: malformed sample line %q", line, l)
		}
		name := m[1]
		family := name
		if types[family] == "" {
			// summary samples carry the family name plus _sum/_count
			for _, suf := range []string{"_sum", "_count"} {
				if strings.HasSuffix(name, suf) && types[strings.TrimSuffix(name, suf)] == "summary" {
					family = strings.TrimSuffix(name, suf)
				}
			}
		}
		if types[family] == "" {
			t.Fatalf("line %d: sample %q has no TYPE declaration", line, name)
		}
		samples[name] = m[2]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestWriteExpositionValidAndComplete(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mcs.slots.truncated").Add(7)
	reg.Counter("events.slot_executed").Add(42)
	reg.Gauge("mcs.slot.current").Set(41)
	reg.Gauge("checkpoint.last_slot").Set(40)
	for i := 1; i <= 4; i++ {
		reg.Histogram("span.solve.seconds").Observe(float64(i) * 0.5)
	}

	var b strings.Builder
	if err := reg.Snapshot().WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	samples := validateExposition(t, b.String())

	want := map[string]string{
		"mcs_slots_truncated":      "7",
		"events_slot_executed":     "42",
		"mcs_slot_current":         "41",
		"checkpoint_last_slot":     "40",
		"span_solve_seconds_sum":   "5",
		"span_solve_seconds_count": "4",
		"span_solve_seconds_min":   "0.5",
		"span_solve_seconds_max":   "2",
		"span_solve_seconds_mean":  "1.25",
	}
	for name, v := range want {
		if samples[name] != v {
			t.Errorf("%s = %q, want %q (all: %v)", name, samples[name], v, samples)
		}
	}
	if _, ok := samples["span_solve_seconds_stddev"]; !ok {
		t.Error("no stddev companion gauge")
	}
}

func TestWriteExpositionEmptySnapshot(t *testing.T) {
	var b strings.Builder
	if err := (Snapshot{}).WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("empty snapshot rendered %q", b.String())
	}
}

func TestWriteExpositionEmptyHistogram(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("span.repair.seconds") // created, never observed
	var b strings.Builder
	if err := reg.Snapshot().WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	samples := validateExposition(t, b.String())
	if samples["span_repair_seconds_count"] != "0" {
		t.Errorf("empty histogram count %q, want 0", samples["span_repair_seconds_count"])
	}
}

func TestWriteExpositionNameCollision(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.b").Add(1)
	reg.Counter("a_b").Add(2)
	var b strings.Builder
	if err := reg.Snapshot().WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	// The validator fails on duplicate TYPE declarations; reaching here
	// means one family survived. Sorted order makes "a.b" the winner.
	samples := validateExposition(t, b.String())
	if samples["a_b"] != "1" {
		t.Errorf("collision winner a_b=%q, want the first sorted name's value 1", samples["a_b"])
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"mcs.slot.current", "mcs_slot_current"},
		{"span.checkpoint.write.seconds", "span_checkpoint_write_seconds"},
		{"already_fine:colon", "already_fine:colon"},
		{"events.run-completed", "events_run_completed"},
		{"9lives", "_9lives"},
		{"", "_"},
		{"héllo", "h_llo"},
	}
	for _, c := range cases {
		if got := SanitizeMetricName(c.in); got != c.want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestFormatSampleSpecials pins the exposition spellings of the special
// values: "+Inf", "-Inf" and "NaN" — exactly strconv's output, checked here
// so a formatting refactor cannot silently drift off-spec.
func TestFormatSampleSpecials(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{1.5, "1.5"},
		{0, "0"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
	}
	for _, c := range cases {
		if got := formatSample(c.v); got != c.want {
			t.Errorf("formatSample(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	if got := formatSample(math.NaN()); got != "NaN" {
		t.Errorf("formatSample(NaN) = %q, want NaN", got)
	}
	if !expoSampleRe.MatchString("x " + formatSample(math.Inf(1))) {
		t.Error("validator rejects +Inf samples")
	}
}
