package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"slices"

	"rfidsched/internal/stats"
)

// maxSlotDetail caps how many per-slot rows a summary retains; beyond it
// the per-slot table is truncated (the aggregates are still exact).
const maxSlotDetail = 512

// RunSummary aggregates one run's events (keyed by the Run field; a trace
// written without WithRun has a single run keyed "").
type RunSummary struct {
	Run               string
	Alg               string
	Slots             int // slot_executed events
	TagsRead          int // sum of their tag counts
	FailedActivations int
	Fallbacks         int
	LostTags          int
	Elections         int
	Rounds            int // protocol rounds across all elections
	Messages          int // protocol messages across all elections
	Drops             int // msg_dropped events
	Status            string
	// ReportedSlots/ReportedTags echo the engine's own run_completed
	// totals (-1 when the trace has none), so a report cross-checks the
	// event-derived numbers against the result struct.
	ReportedSlots int
	ReportedTags  int
}

// SlotDetail is one reconstructed slot of a single-run trace. Planned is -1
// when the trace window opens mid-slot and the slot_planned event fell off
// the front (a flight-recorder ring dump) — unknown, not zero readers.
type SlotDetail struct {
	Slot     int
	Planned  int // readers the scheduler proposed; -1 = not in the window
	Active   int // readers that actually activated
	TagsRead int
	Failed   int // activations lost to faults
	Fallback bool
}

// TraceSummary is the digested form of a JSONL trace.
type TraceSummary struct {
	Events          map[EventType]int
	FailuresByCause map[string]int // activation_failed by cause
	DropsByCause    map[string]int // msg_dropped by cause
	Runs            map[string]*RunSummary
	TagsPerSlot     HistSnapshot
	RoundsPerElect  HistSnapshot

	// Slots is the per-slot reconstruction, kept only while the trace
	// stays single-run and within maxSlotDetail slots of SlotBase.
	// SlotBase is the first slot number seen: 0 for a full trace, higher
	// for a mid-run window such as a flight-recorder dump, whose ring
	// retains only the tail of the run.
	Slots          []SlotDetail
	SlotBase       int
	SlotsTruncated bool

	lines int
}

// Lines returns how many trace lines were read.
func (s *TraceSummary) Lines() int { return s.lines }

// ReadSummary digests a JSONL trace from r. Unknown event types are counted
// but otherwise ignored, so traces from newer writers still summarize.
func ReadSummary(r io.Reader) (*TraceSummary, error) {
	s := &TraceSummary{
		Events:          map[EventType]int{},
		FailuresByCause: map[string]int{},
		DropsByCause:    map[string]int{},
		Runs:            map[string]*RunSummary{},
		SlotBase:        -1, // unset until the first slot event
	}
	var tagsPerSlot, roundsPerElect stats.Acc
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", s.lines+1, err)
		}
		s.lines++
		s.Events[e.Type]++
		run := s.run(e.Run)
		switch e.Type {
		case SlotPlanned:
			if e.Alg != "" {
				run.Alg = e.Alg
			}
			s.slot(e.T).Planned = len(e.Readers)
		case SlotExecuted:
			run.Slots++
			run.TagsRead += e.N
			tagsPerSlot.Add(float64(e.N))
			d := s.slot(e.T)
			d.Active = len(e.Readers)
			d.TagsRead = e.N
		case ActivationFailed:
			run.FailedActivations++
			s.FailuresByCause[e.Cause]++
			s.slot(e.T).Failed++
		case StallFallback:
			run.Fallbacks++
			s.slot(e.T).Fallback = true
		case TagAbandoned:
			run.LostTags++
		case MessageDropped:
			run.Drops++
			s.DropsByCause[e.Cause]++
		case ElectionCompleted:
			run.Elections++
			run.Rounds += e.N
			run.Messages += e.M
			roundsPerElect.Add(float64(e.N))
		case RunCompleted:
			run.Status = e.Cause
			run.ReportedSlots = e.T
			run.ReportedTags = e.N
			if e.Alg != "" {
				run.Alg = e.Alg
			}
		}
	}
	s.TagsPerSlot = HistSnapshot{
		N: tagsPerSlot.N(), Mean: tagsPerSlot.Mean(), Std: tagsPerSlot.Std(),
		Min: tagsPerSlot.Min(), Max: tagsPerSlot.Max(),
	}
	s.RoundsPerElect = HistSnapshot{
		N: roundsPerElect.N(), Mean: roundsPerElect.Mean(), Std: roundsPerElect.Std(),
		Min: roundsPerElect.Min(), Max: roundsPerElect.Max(),
	}
	if len(s.Runs) > 1 {
		// Interleaved runs share slot numbers; the reconstruction is only
		// meaningful for a single run.
		s.Slots, s.SlotsTruncated = nil, true
	}
	if s.SlotBase < 0 {
		s.SlotBase = 0
	}
	return s, nil
}

func (s *TraceSummary) run(id string) *RunSummary {
	r := s.Runs[id]
	if r == nil {
		r = &RunSummary{Run: id, ReportedSlots: -1, ReportedTags: -1}
		s.Runs[id] = r
	}
	return r
}

// slot returns the detail row for a slot, growing the table as needed (and
// abandoning detail once the cap is passed — aggregates stay exact). Rows
// are indexed relative to the first slot seen, so a flight-recorder dump
// whose window opens deep into a run still gets full per-slot detail.
func (s *TraceSummary) slot(i int) *SlotDetail {
	if s.SlotBase < 0 {
		s.SlotBase = i
	}
	idx := i - s.SlotBase
	if idx < 0 || idx >= maxSlotDetail {
		s.SlotsTruncated = true
		return &SlotDetail{} // discarded scratch row
	}
	for len(s.Slots) <= idx {
		s.Slots = append(s.Slots, SlotDetail{Slot: s.SlotBase + len(s.Slots), Planned: -1})
	}
	return &s.Slots[idx]
}

// RunIDs returns the run identifiers, sorted.
func (s *TraceSummary) RunIDs() []string {
	ids := make([]string, 0, len(s.Runs))
	for id := range s.Runs {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// Write renders the summary as the per-cause and per-run (and, for
// single-run traces, per-slot) ASCII tables `rfidsim -fig trace-report`
// prints. Output is deterministic: every map is rendered in sorted order.
func (s *TraceSummary) Write(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("trace report: %d events, %d runs\n\n", s.lines, len(s.Runs)); err != nil {
		return err
	}

	if err := p("events by type\n"); err != nil {
		return err
	}
	types := make([]string, 0, len(s.Events))
	for t := range s.Events {
		types = append(types, string(t))
	}
	slices.Sort(types)
	for _, t := range types {
		if err := p("  %-22s %8d\n", t, s.Events[EventType(t)]); err != nil {
			return err
		}
	}

	if len(s.FailuresByCause) > 0 {
		if err := p("\nfailed activations by cause\n"); err != nil {
			return err
		}
		for _, c := range sortedKeys(s.FailuresByCause) {
			if err := p("  %-22s %8d\n", c, s.FailuresByCause[c]); err != nil {
				return err
			}
		}
	}
	if len(s.DropsByCause) > 0 {
		if err := p("\nmessages dropped by cause\n"); err != nil {
			return err
		}
		for _, c := range sortedKeys(s.DropsByCause) {
			if err := p("  %-22s %8d\n", c, s.DropsByCause[c]); err != nil {
				return err
			}
		}
	}

	if err := p("\nper-run summary\n"); err != nil {
		return err
	}
	if err := p("  %-40s %-18s %6s %6s %6s %6s %5s %6s %6s %8s %6s %-10s\n",
		"run", "alg", "slots", "tags", "failed", "lost", "fall", "elect", "rounds", "msgs", "drops", "status"); err != nil {
		return err
	}
	for _, id := range s.RunIDs() {
		r := s.Runs[id]
		name := r.Run
		if name == "" {
			name = "(default)"
		}
		status := r.Status
		if status == "" {
			status = "-"
		}
		if err := p("  %-40s %-18s %6d %6d %6d %6d %5d %6d %6d %8d %6d %-10s\n",
			name, r.Alg, r.Slots, r.TagsRead, r.FailedActivations, r.LostTags,
			r.Fallbacks, r.Elections, r.Rounds, r.Messages, r.Drops, status); err != nil {
			return err
		}
	}

	if s.TagsPerSlot.N > 0 {
		if err := p("\ntags read per slot: n=%d mean=%.2f std=%.2f min=%g max=%g\n",
			s.TagsPerSlot.N, s.TagsPerSlot.Mean, s.TagsPerSlot.Std,
			s.TagsPerSlot.Min, s.TagsPerSlot.Max); err != nil {
			return err
		}
	}
	if s.RoundsPerElect.N > 0 {
		if err := p("protocol rounds per election: n=%d mean=%.2f std=%.2f min=%g max=%g\n",
			s.RoundsPerElect.N, s.RoundsPerElect.Mean, s.RoundsPerElect.Std,
			s.RoundsPerElect.Min, s.RoundsPerElect.Max); err != nil {
			return err
		}
	}

	if len(s.Runs) == 1 && len(s.Slots) > 0 {
		if err := p("\nper-slot detail\n"); err != nil {
			return err
		}
		if s.SlotBase > 0 {
			if err := p("  (mid-run window: trace opens at slot %d — a flight-recorder dump\n   retains only the most recent events)\n", s.SlotBase); err != nil {
				return err
			}
		}
		if err := p("  %-6s %8s %8s %6s %8s %s\n",
			"slot", "planned", "active", "tags", "failed", "note"); err != nil {
			return err
		}
		for _, d := range s.Slots {
			note := ""
			if d.Fallback {
				note = "fallback"
			}
			planned := "-" // slot_planned fell off the front of the ring
			if d.Planned >= 0 {
				planned = fmt.Sprintf("%d", d.Planned)
			}
			if err := p("  %-6d %8s %8d %6d %8d %s\n",
				d.Slot, planned, d.Active, d.TagsRead, d.Failed, note); err != nil {
				return err
			}
		}
		if s.SlotsTruncated {
			if err := p("  ... (detail truncated at %d slots)\n", maxSlotDetail); err != nil {
				return err
			}
		}
	}
	return nil
}
