package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
)

// SSEBroker fans the trace-event stream out to HTTP clients as Server-Sent
// Events — the /events endpoint of the telemetry server. It is a Tracer, so
// it composes with Tee like every other sink, and like every other sink it
// is pure observation: Emit never blocks (a slow client's buffer overflowing
// drops frames for that client, counted in Dropped) so the engines' timing
// and results are untouched by who is watching.
//
// A broker may be armed with a FlightRecorder (SetReplay): each new
// subscriber first receives the recorder's retained window, oldest first,
// before going live. That makes /events useful even after a short run has
// already finished — the CI smoke jobs connect after the fact and still see
// the run's tail — and gives an interactive client immediate context instead
// of a silent stream.
type SSEBroker struct {
	mu     sync.Mutex
	subs   map[int]chan []byte
	nextID int
	seq    atomic.Int64 // frame ids, monotonically increasing
	buffer int
	replay *FlightRecorder

	dropped atomic.Int64
}

// DefaultSSEBuffer is the per-subscriber frame buffer NewSSEBroker falls
// back to for non-positive sizes.
const DefaultSSEBuffer = 256

// NewSSEBroker builds a broker whose subscribers each buffer up to n frames
// (n <= 0 means DefaultSSEBuffer).
func NewSSEBroker(n int) *SSEBroker {
	if n <= 0 {
		n = DefaultSSEBuffer
	}
	return &SSEBroker{subs: map[int]chan []byte{}, buffer: n}
}

// SetReplay arms (non-nil) or disarms (nil) the replay of a flight
// recorder's retained window to each new subscriber.
func (b *SSEBroker) SetReplay(f *FlightRecorder) {
	b.mu.Lock()
	b.replay = f
	b.mu.Unlock()
}

// Subscribers returns how many clients are currently connected.
func (b *SSEBroker) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Dropped returns how many frames were discarded because a subscriber's
// buffer was full — backpressure shed at the edge, never propagated to the
// emitting engine.
func (b *SSEBroker) Dropped() int64 { return b.dropped.Load() }

// Emit implements Tracer: encode the event once and offer the frame to
// every subscriber without blocking.
func (b *SSEBroker) Emit(e Event) {
	b.mu.Lock()
	if len(b.subs) == 0 {
		b.mu.Unlock()
		return
	}
	frame := sseFrame(e, b.seq.Add(1))
	for _, ch := range b.subs {
		select {
		case ch <- frame:
		default:
			b.dropped.Add(1)
		}
	}
	b.mu.Unlock()
}

// sseFrame renders one event as an SSE frame: the event type doubles as the
// SSE event name, the JSON body is the data line, and the id is a process-
// local sequence number clients can use to spot gaps.
func sseFrame(e Event, id int64) []byte {
	body, err := json.Marshal(e)
	if err != nil {
		// Event is a plain struct of marshalable fields; this cannot happen,
		// but a comment frame beats a torn stream if it somehow does.
		return []byte(fmt.Sprintf(": marshal error: %v\n\n", err))
	}
	frame := make([]byte, 0, len(body)+len(e.Type)+32)
	frame = append(frame, "event: "...)
	frame = append(frame, e.Type...)
	frame = append(frame, "\nid: "...)
	frame = strconv.AppendInt(frame, id, 10)
	frame = append(frame, "\ndata: "...)
	frame = append(frame, body...)
	frame = append(frame, "\n\n"...)
	return frame
}

// subscribe registers a new client channel and returns it with its remover.
func (b *SSEBroker) subscribe() (chan []byte, func()) {
	ch := make(chan []byte, b.buffer)
	b.mu.Lock()
	id := b.nextID
	b.nextID++
	b.subs[id] = ch
	b.mu.Unlock()
	return ch, func() {
		b.mu.Lock()
		delete(b.subs, id)
		b.mu.Unlock()
	}
}

// ServeHTTP implements the /events endpoint: an SSE stream of the live
// trace-event feed, preceded by the flight recorder's retained window when
// replay is armed (suppress with ?replay=0). The stream runs until the
// client disconnects.
func (b *SSEBroker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	// Subscribe before replaying so no live event can fall in the gap
	// between the replayed window and the stream (a frame may appear in
	// both; SSE consumers tolerate duplicates, they cannot recover holes).
	ch, cancel := b.subscribe()
	defer cancel()

	b.mu.Lock()
	replay := b.replay
	b.mu.Unlock()
	if replay != nil && r.URL.Query().Get("replay") != "0" {
		for _, e := range replay.Events() {
			if _, err := w.Write(sseFrame(e, b.seq.Add(1))); err != nil {
				return
			}
		}
	}
	// An immediate comment frame forces headers and proxy buffers out, so a
	// client knows it is connected even when no events are flowing yet.
	if _, err := w.Write([]byte(": stream open\n\n")); err != nil {
		return
	}
	flusher.Flush()

	for {
		select {
		case frame := <-ch:
			if _, err := w.Write(frame); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
