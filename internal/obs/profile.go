package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles wires runtime/pprof into a binary: it starts a CPU profile
// at cpuPath (if non-empty) and returns a stop function that ends the CPU
// profile and writes a heap profile to memPath (if non-empty). Either path
// may be empty; with both empty the returned stop is a no-op, so callers
// can wire the flags unconditionally:
//
//	stop, err := obs.StartProfiles(*cpuprofile, *memprofile)
//	if err != nil { ... }
//	defer stop()
//
// The stop function is idempotent and returns the first error encountered.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = fmt.Errorf("obs: cpu profile: %w", err)
			}
		}
		if memPath != "" {
			if err := writeHeapProfile(memPath); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}

// writeHeapProfile snapshots the heap to path after a GC, so the profile
// reflects live objects rather than garbage awaiting collection.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}
