package model

// This file implements WeightEval, the incremental weight evaluator. The
// brute-force Weight of weight.go recomputes coverage for the whole
// activation set on every call — O(|X|·deg) per evaluation — which every
// scheduler pays inside enumeration loops. WeightEval instead maintains the
// quantities Weight is defined over as counters that are patched when one
// reader enters or leaves the set:
//
//   - coverCount[t]: active live readers whose interrogation region holds t
//   - coverSum[t]:   sum of those reader indices, so when coverCount[t]==1
//     the owning reader is just coverSum[t] (no owner array to maintain)
//   - single[v]:     unread tags t with coverCount[t]==1 owned by v
//   - rtc[v]:        active live readers u != v whose interference disk
//     contains v (v is clean iff rtc[v]==0)
//   - weight:        Σ single[v] over active live readers with rtc[v]==0,
//     which is exactly w(X) of Definition 3
//
// Add(v)/Remove(v) therefore cost O(|tagsOf(v)| + |interference nbrs of v|)
// and Weight() is O(1). MarginalGain(v) is an Add/Remove pair, O(Δ).
//
// Read-state and fault churn are folded in through observer hooks: the
// evaluator registers with its System at construction, and MarkRead,
// ResetReads and SetReaderDown notify every attached evaluator so the
// counters track the live system without polling. Close() detaches.
//
// The evaluator is differentially tested against weightAndCovered and the
// determinism contract of DESIGN.md §9 holds: for any activation set it
// reports bit-identical weights to the brute force, so schedulers that
// switch to it produce byte-identical schedules.

import (
	"sort"
	"sync"
)

// adjCache holds lazily-built, immutable adjacency structure shared by every
// clone of a System (the geometry never changes after construction, so the
// cache is built once under sync.Once and read concurrently afterwards).
type adjCache struct {
	interOnce sync.Once
	interOut  [][]int32 // interOut[u]: v != u with reader u's interference disk containing v
	interIn   [][]int32 // interIn[v]:  u != v whose interference disk contains v

	covOnce sync.Once
	covAdj  [][]int32 // covAdj[u]: v != u sharing at least one covered tag with u

	nbrOnce sync.Once
	nbr     [][]int32 // union of interOut ∪ interIn ∪ covAdj, sorted
}

// interAdj returns the directed interference adjacency (built on first use).
func (s *System) interAdj() (out, in [][]int32) {
	c := s.adj
	c.interOnce.Do(func() {
		n := len(s.readers)
		c.interOut = make([][]int32, n)
		c.interIn = make([][]int32, n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && s.readers[u].Interferes(s.readers[v]) {
					c.interOut[u] = append(c.interOut[u], int32(v))
					c.interIn[v] = append(c.interIn[v], int32(u))
				}
			}
		}
	})
	return c.interOut, c.interIn
}

// coverageAdj returns, per reader, the readers sharing at least one covered
// tag (built on first use).
func (s *System) coverageAdj() [][]int32 {
	c := s.adj
	c.covOnce.Do(func() {
		n := len(s.readers)
		c.covAdj = make([][]int32, n)
		stamp := make([]int, n)
		for i := range stamp {
			stamp[i] = -1
		}
		for u := 0; u < n; u++ {
			for _, t := range s.tagsOf[u] {
				for _, v := range s.readersOf[t] {
					if int(v) != u && stamp[v] != u {
						stamp[v] = u
						c.covAdj[u] = append(c.covAdj[u], v)
					}
				}
			}
			sort.Slice(c.covAdj[u], func(a, b int) bool { return c.covAdj[u][a] < c.covAdj[u][b] })
		}
	})
	return c.covAdj
}

// CouplingNeighbors returns the readers whose membership in an activation
// set can change reader v's marginal weight (and vice versa): interference
// in either direction, or a shared covered tag. The marginal weight of v
// depends only on system state within this 1-hop coupling ball, so adding a
// reader u can change w(X ∪ {v}) − w(X) only when u is within two coupling
// hops of v — the invariant the lazy gain queue in package baseline builds
// its invalidation sets from. The returned slice is shared and sorted;
// callers must not mutate it.
func (s *System) CouplingNeighbors(v int) []int32 {
	c := s.adj
	c.nbrOnce.Do(func() {
		out, in := s.interAdj()
		cov := s.coverageAdj()
		n := len(s.readers)
		c.nbr = make([][]int32, n)
		seen := make([]int, n)
		for i := range seen {
			seen[i] = -1
		}
		for u := 0; u < n; u++ {
			for _, lst := range [][]int32{out[u], in[u], cov[u]} {
				for _, w := range lst {
					if seen[w] != u {
						seen[w] = u
						c.nbr[u] = append(c.nbr[u], w)
					}
				}
			}
			sort.Slice(c.nbr[u], func(a, b int) bool { return c.nbr[u][a] < c.nbr[u][b] })
		}
	})
	return c.nbr[v]
}

// WeightEval incrementally evaluates w(X) for a dynamically maintained
// activation set X over a System. Construct with NewWeightEval, mutate the
// set with Add/Remove (or Snapshot/Restore for backtracking search), and
// read Weight()/MarginalGain(v) in O(1)/O(Δ). The evaluator observes the
// System's MarkRead/ResetReads/SetReaderDown transitions automatically; call
// Close when done so the System stops notifying it.
//
// Like the System itself, a WeightEval is not safe for concurrent use.
type WeightEval struct {
	sys *System

	active     []bool
	activePos  []int32 // index into activeList, -1 when inactive
	activeList []int

	coverCount []int32
	coverSum   []int32
	single     []int32
	rtc        []int32
	weight     int

	interOut [][]int32
	interIn  [][]int32

	snaps   [][]int
	scratch []bool

	closed bool
}

// NewWeightEval builds an evaluator with an empty activation set and
// attaches it to sys. The interference adjacency is cached on the System, so
// constructing many short-lived evaluators (as the branch-and-bound solver
// does) costs O(readers + tags) each, not O(readers²).
func NewWeightEval(sys *System) *WeightEval {
	out, in := sys.interAdj()
	e := &WeightEval{
		sys:        sys,
		active:     make([]bool, len(sys.readers)),
		activePos:  make([]int32, len(sys.readers)),
		coverCount: make([]int32, len(sys.tags)),
		coverSum:   make([]int32, len(sys.tags)),
		single:     make([]int32, len(sys.readers)),
		rtc:        make([]int32, len(sys.readers)),
		interOut:   out,
		interIn:    in,
	}
	for i := range e.activePos {
		e.activePos[i] = -1
	}
	sys.attach(e)
	return e
}

// Close detaches the evaluator from its System. Using a closed evaluator's
// counters afterwards is safe only while the System's read/down state does
// not change.
func (e *WeightEval) Close() {
	if !e.closed {
		e.closed = true
		e.sys.detach(e)
	}
}

// Weight returns w(X) for the current activation set in O(1).
func (e *WeightEval) Weight() int { return e.weight }

// Len returns |X|.
func (e *WeightEval) Len() int { return len(e.activeList) }

// Active reports whether reader v is in the current set.
func (e *WeightEval) Active(v int) bool {
	return v >= 0 && v < len(e.active) && e.active[v]
}

// AppendActive appends the current activation set to dst in ascending order.
func (e *WeightEval) AppendActive(dst []int) []int {
	start := len(dst)
	dst = append(dst, e.activeList...)
	sort.Ints(dst[start:])
	return dst
}

// Add inserts reader v into the activation set. Out-of-range and already
// active readers are no-ops returning false. A down reader joins the set but
// contributes nothing until it recovers, mirroring the brute-force Weight.
func (e *WeightEval) Add(v int) bool {
	if v < 0 || v >= len(e.active) || e.active[v] {
		return false
	}
	e.active[v] = true
	e.activePos[v] = int32(len(e.activeList))
	e.activeList = append(e.activeList, v)
	if !e.sys.isDown(v) {
		e.addEffective(v)
	}
	return true
}

// Remove deletes reader v from the activation set; false if it wasn't in it.
func (e *WeightEval) Remove(v int) bool {
	if v < 0 || v >= len(e.active) || !e.active[v] {
		return false
	}
	if !e.sys.isDown(v) {
		e.removeEffective(v)
	}
	e.active[v] = false
	pos := e.activePos[v]
	last := len(e.activeList) - 1
	moved := e.activeList[last]
	e.activeList[pos] = moved
	e.activePos[moved] = pos
	e.activeList = e.activeList[:last]
	e.activePos[v] = -1
	return true
}

// MarginalGain returns w(X ∪ {v}) − w(X) in O(Δ) without changing the set.
// An already-active (or invalid) v gains nothing.
func (e *WeightEval) MarginalGain(v int) int {
	before := e.weight
	if !e.Add(v) {
		return 0
	}
	g := e.weight - before
	e.Remove(v)
	return g
}

// Snapshot pushes a copy of the current activation set onto the restore
// stack and returns the new stack depth. Only set membership is captured:
// read flags and the down mask belong to the System and flow through the
// observer hooks regardless of snapshots.
func (e *WeightEval) Snapshot() int {
	e.snaps = append(e.snaps, append([]int(nil), e.activeList...))
	return len(e.snaps)
}

// Restore pops the most recent snapshot and patches the activation set back
// to it by diffing (removals first, then additions), so the cost is
// proportional to the drift since Snapshot, not to |X|. Returns false if the
// stack is empty.
func (e *WeightEval) Restore() bool {
	if len(e.snaps) == 0 {
		return false
	}
	want := e.snaps[len(e.snaps)-1]
	e.snaps = e.snaps[:len(e.snaps)-1]
	if e.scratch == nil {
		e.scratch = make([]bool, len(e.active))
	}
	for _, v := range want {
		e.scratch[v] = true
	}
	for i := len(e.activeList) - 1; i >= 0; i-- {
		if v := e.activeList[i]; !e.scratch[v] {
			e.Remove(v)
		}
	}
	for _, v := range want {
		if !e.active[v] {
			e.Add(v)
		}
		e.scratch[v] = false
	}
	return true
}

// Reset empties the activation set and the snapshot stack.
func (e *WeightEval) Reset() {
	for len(e.activeList) > 0 {
		e.Remove(e.activeList[len(e.activeList)-1])
	}
	e.snaps = e.snaps[:0]
}

// addEffective folds an active, live reader v into the counters. The order
// matters: the tag loop charges coverage changes against the *current* clean
// statuses, the interference loop then re-prices readers v un-cleans with
// their already-updated single counts, and finally v's own tags count iff v
// ended up clean.
func (e *WeightEval) addEffective(v int) {
	read := e.sys.read
	for _, t := range e.sys.tagsOf[v] {
		old := e.coverCount[t]
		prev := e.coverSum[t]
		e.coverCount[t] = old + 1
		e.coverSum[t] = prev + int32(v)
		if read[t] {
			continue
		}
		switch old {
		case 0:
			e.single[v]++
		case 1:
			e.single[prev]--
			if e.rtc[prev] == 0 {
				e.weight--
			}
		}
	}
	rtcV := int32(0)
	for _, u := range e.interIn[v] {
		if e.active[u] && !e.sys.isDown(int(u)) {
			rtcV++
		}
	}
	e.rtc[v] = rtcV
	for _, u := range e.interOut[v] {
		if e.active[u] && !e.sys.isDown(int(u)) {
			e.rtc[u]++
			if e.rtc[u] == 1 {
				e.weight -= int(e.single[u])
			}
		}
	}
	if rtcV == 0 {
		e.weight += int(e.single[v])
	}
}

// removeEffective is the exact inverse of addEffective (reverse order).
func (e *WeightEval) removeEffective(v int) {
	if e.rtc[v] == 0 {
		e.weight -= int(e.single[v])
	}
	e.rtc[v] = 0
	for _, u := range e.interOut[v] {
		if e.active[u] && !e.sys.isDown(int(u)) {
			e.rtc[u]--
			if e.rtc[u] == 0 {
				e.weight += int(e.single[u])
			}
		}
	}
	read := e.sys.read
	for _, t := range e.sys.tagsOf[v] {
		e.coverCount[t]--
		e.coverSum[t] -= int32(v)
		if read[t] {
			continue
		}
		switch e.coverCount[t] {
		case 0:
			e.single[v]--
		case 1:
			owner := e.coverSum[t]
			e.single[owner]++
			if e.rtc[owner] == 0 {
				e.weight++
			}
		}
	}
}

// onTagRead is the System's MarkRead hook (called after the unread→read
// transition): a singly-covered tag stops crediting its owner.
func (e *WeightEval) onTagRead(t int) {
	if e.coverCount[t] == 1 {
		owner := e.coverSum[t]
		e.single[owner]--
		if e.rtc[owner] == 0 {
			e.weight--
		}
	}
}

// onResetReads rebuilds the unread-dependent counters after ResetReads;
// coverage and interference counters are read-state independent and stand.
func (e *WeightEval) onResetReads() {
	for i := range e.single {
		e.single[i] = 0
	}
	for t, c := range e.coverCount {
		if c == 1 {
			e.single[e.coverSum[t]]++
		}
	}
	e.weight = 0
	for _, v := range e.activeList {
		if !e.sys.isDown(v) && e.rtc[v] == 0 {
			e.weight += int(e.single[v])
		}
	}
}

// onReaderDown is the System's SetReaderDown hook (called after the mask
// transition). A down reader in the set behaves exactly as if removed —
// serves nothing, interferes with nothing — while keeping its membership, so
// recovery restores its contribution.
func (e *WeightEval) onReaderDown(v int, down bool) {
	if v < 0 || v >= len(e.active) || !e.active[v] {
		return
	}
	if down {
		e.removeEffective(v)
	} else {
		e.addEffective(v)
	}
}
