package model

// This file implements WeightEval, the incremental weight evaluator. The
// brute-force Weight of weight.go recomputes coverage for the whole
// activation set on every call — O(|X|·deg) per evaluation — which every
// scheduler pays inside enumeration loops. WeightEval instead maintains the
// quantities Weight is defined over as counters that are patched when one
// reader enters or leaves the set:
//
//   - coverCount[t]: active live readers whose interrogation region holds t
//   - coverSum[t]:   sum of those reader indices, so when coverCount[t]==1
//     the owning reader is just coverSum[t] (no owner array to maintain)
//   - single[v]:     unread tags t with coverCount[t]==1 owned by v
//   - rtc[v]:        active live readers u != v whose interference disk
//     contains v (v is clean iff rtc[v]==0)
//   - weight:        Σ single[v] over active live readers with rtc[v]==0,
//     which is exactly w(X) of Definition 3
//
// Add(v)/Remove(v) therefore cost O(|tagsOf(v)| + |interference nbrs of v|)
// and Weight() is O(1). MarginalGain(v) is an Add/Remove pair, O(Δ).
//
// Read-state and fault churn are folded in through observer hooks: the
// evaluator registers with its System at construction, and MarkRead,
// ResetReads and SetReaderDown notify every attached evaluator so the
// counters track the live system without polling. Close() detaches.
//
// The evaluator is differentially tested against weightAndCovered and the
// determinism contract of DESIGN.md §9 holds: for any activation set it
// reports bit-identical weights to the brute force, so schedulers that
// switch to it produce byte-identical schedules.

import (
	"slices"
	"sync"

	"rfidsched/internal/geom"
)

// adjCache holds lazily-built, immutable adjacency structure shared by every
// clone of a System (the geometry never changes after construction, so the
// cache is built once under sync.Once and read concurrently afterwards).
// Every relation is CSR (see csr.go); rows are ascending, matching the
// historical [][]int32 layout element for element.
//
// The cache also owns the scratch pools (clonePool, evalPool): pooling per
// geometry guarantees a recycled clone or evaluator always matches the
// reader/tag counts of the System it is reattached to. See pool.go.
type adjCache struct {
	interOnce sync.Once
	interOut  csr // interOut.row(u): v != u with reader u's interference disk containing v
	interIn   csr // interIn.row(v):  u != v whose interference disk contains v

	covOnce sync.Once
	covAdj  csr // covAdj.row(u): v != u sharing at least one covered tag with u

	nbrOnce sync.Once
	nbr     csr // union of interOut ∪ interIn ∪ covAdj, sorted

	// conflict packs, per reader u, the bitset of readers NOT independent
	// from u (Def. 2), one row of conflictW words each; bit u of row u is
	// set (a reader is never independent from itself). Independence is the
	// complement of interference-in-either-direction, so the bitsets are
	// derived from interOut ∪ interIn in O(edges) — no extra distance math.
	conflictOnce sync.Once
	conflictW    int
	conflict     []uint64
	// sweepBits, when non-nil, holds outBits|inBits per reader as stashed
	// by sweepInterAdj — the conflict build then ORs in the self bits
	// instead of re-walking the adjacency rows.
	sweepBits []uint64

	clonePool sync.Pool // *System clones of this geometry (pool.go)
	evalPool  sync.Pool // *WeightEval sized for this geometry (pool.go)
}

// Adjacency-construction strategy cutoffs. Below adjBruteReaders the O(n²)
// pairwise scan wins outright (no index to build, no sort). Above it a
// spatial index makes construction near-linear: the uniform grid keyed on
// the median interference radius, unless the largest radius dwarfs the
// median by more than adjRadiusSpread — then a median-radius cell grid
// degenerates into near-full scans per query and the kd-tree, whose depth
// adapts to the data rather than to a cell size, takes over.
const (
	adjBruteReaders = 48
	adjSweepReaders = 1024
	adjRadiusSpread = 16.0
)

// diskIndex is the common query surface of geom.SpatialGrid and geom.KDTree.
type diskIndex interface {
	QueryDisk(d geom.Disk, dst []int32) []int32
}

// buildInterAdj constructs the directed interference adjacency of rs in CSR
// form. All four strategies produce identical relations (same predicate —
// Reader.Interferes compares the same squared distances — and rows sorted
// ascending); only the construction cost differs. Tiny systems brute-force
// the pairwise scan; extreme radius spreads go to the kd-tree; mid-size
// systems use a plane sweep (cheapest at paper scale — no index to build);
// very large uniform systems use the spatial grid.
// buildInterAdjBits is buildInterAdj plus, on the sweep path, the combined
// interference bitsets (outBits|inBits per reader) the sweep accumulates
// anyway — conflictRow turns them into the conflict matrix with one OR of
// the self bit per reader instead of re-walking the CSR rows.
func buildInterAdjBits(rs []Reader) (out, in csr, bits []uint64) {
	n := len(rs)
	if n >= adjBruteReaders {
		maxR, med := 0.0, medianRadius(rs, func(r Reader) float64 { return r.InterferenceR })
		for _, r := range rs {
			if r.InterferenceR > maxR {
				maxR = r.InterferenceR
			}
		}
		if maxR <= adjRadiusSpread*med && n <= adjSweepReaders {
			return sweepInterAdj(rs)
		}
	}
	out, in = buildInterAdj(rs)
	return out, in, nil
}

func buildInterAdj(rs []Reader) (out, in csr) {
	n := len(rs)
	if n < adjBruteReaders {
		off := make([]int32, n+1)
		var dat []int32
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rs[u].Interferes(rs[v]) {
					dat = append(dat, int32(v))
				}
			}
			off[u+1] = int32(len(dat))
		}
		out = csr{off: off, dat: dat}
		return out, transposeCSR(out, n)
	}

	pts := make([]geom.Point, n)
	maxR := 0.0
	for i, r := range rs {
		pts[i] = r.Pos
		if r.InterferenceR > maxR {
			maxR = r.InterferenceR
		}
	}
	med := medianRadius(rs, func(r Reader) float64 { return r.InterferenceR })
	if maxR <= adjRadiusSpread*med && n <= adjSweepReaders {
		out, in, _ := sweepInterAdj(rs)
		return out, in
	}
	var idx diskIndex
	if maxR > adjRadiusSpread*med {
		idx = geom.NewKDTree(pts)
	} else {
		idx = geom.NewSpatialGrid(pts, med)
	}

	// Rows are packed in whatever order the index yields (minus the self
	// hit); two transposes then deliver both directions with ascending rows
	// and no comparison sort (see NewSystem).
	off := make([]int32, n+1)
	var dat []int32
	var buf []int32
	for u := 0; u < n; u++ {
		buf = idx.QueryDisk(rs[u].InterferenceDisk(), buf[:0])
		for _, v := range buf {
			if int(v) != u {
				dat = append(dat, v)
			}
		}
		off[u+1] = int32(len(dat))
	}
	in = transposeCSR(csr{off: off, dat: dat}, n)
	out = transposeCSR(in, n)
	return out, in
}

// sweepInterAdj builds the interference adjacency by a plane sweep: readers
// sorted by x, each scanned rightward until the x-gap exceeds both its own
// radius and the suffix maximum of the remaining radii (past that point no
// pair can interfere in either direction, whatever the boundary semantics,
// since the x-gap alone exceeds every radius involved). Each surviving pair
// is classified with the same Reader.Interferes predicate as the other
// strategies; hits are accumulated in per-reader bitsets, which expand into
// ascending CSR rows directly — no spatial index, no transpose, no sort
// beyond the initial 1-d ordering.
func sweepInterAdj(rs []Reader) (out, in csr, bits []uint64) {
	n := len(rs)
	w := (n + 63) / 64
	ord := make([]int32, n)
	for i := range ord {
		ord[i] = int32(i)
	}
	slices.SortFunc(ord, func(a, b int32) int {
		xa, xb := rs[a].Pos.X, rs[b].Pos.X
		switch {
		case xa < xb:
			return -1
		case xa > xb:
			return 1
		}
		return 0
	})
	// Coordinates, radii, and squared radii packed in sweep order so the
	// inner loop walks flat arrays instead of loading Reader structs. The
	// pair test is the Interferes predicate verbatim — one shared
	// Pos.Dist2 compared against each side's InterferenceR² — so the
	// relation is bit-identical to the other strategies.
	xs := make([]float64, n)
	ys := make([]float64, n)
	r2s := make([]float64, n)
	sufR := make([]float64, n+1)
	for i, u := range ord {
		r := rs[u]
		xs[i] = r.Pos.X
		ys[i] = r.Pos.Y
		r2s[i] = r.InterferenceR * r.InterferenceR
	}
	for i := n - 1; i >= 0; i-- {
		r := rs[ord[i]].InterferenceR
		if r < sufR[i+1] {
			r = sufR[i+1]
		}
		sufR[i] = r
	}
	outBits := make([]uint64, n*w)
	inBits := make([]uint64, n*w)
	for i := 0; i < n; i++ {
		u := int(ord[i])
		xu, yu := xs[i], ys[i]
		ru, ru2 := rs[u].InterferenceR, r2s[i]
		for j := i + 1; j < n; j++ {
			dx := xs[j] - xu
			if dx > ru && dx > sufR[j] {
				break
			}
			dy := ys[j] - yu
			d2 := dx*dx + dy*dy
			if d2 <= ru2 {
				v := int(ord[j])
				outBits[u*w+(v>>6)] |= 1 << (uint(v) & 63)
				inBits[v*w+(u>>6)] |= 1 << (uint(u) & 63)
			}
			if d2 <= r2s[j] {
				v := int(ord[j])
				outBits[v*w+(u>>6)] |= 1 << (uint(u) & 63)
				inBits[u*w+(v>>6)] |= 1 << (uint(v) & 63)
			}
		}
	}
	offO := make([]int32, n+1)
	offI := make([]int32, n+1)
	var datO, datI []int32
	for u := 0; u < n; u++ {
		datO = appendBits(datO, outBits[u*w:(u+1)*w])
		offO[u+1] = int32(len(datO))
		datI = appendBits(datI, inBits[u*w:(u+1)*w])
		offI[u+1] = int32(len(datI))
	}
	// outBits is free after expansion: fold inBits in and hand the union
	// to the caller for the conflict cache.
	for i := range outBits {
		outBits[i] |= inBits[i]
	}
	return csr{off: offO, dat: datO}, csr{off: offI, dat: datI}, outBits
}

// interAdj returns the directed interference adjacency (built on first use).
func (s *System) interAdj() (out, in csr) {
	c := s.adj
	c.interOnce.Do(func() {
		c.interOut, c.interIn, c.sweepBits = buildInterAdjBits(s.readers)
	})
	return c.interOut, c.interIn
}

// coverageAdj returns, per reader, the readers sharing at least one covered
// tag (built on first use).
func (s *System) coverageAdj() csr {
	c := s.adj
	c.covOnce.Do(func() {
		// Accumulate each row in a small bitset and expand it with
		// trailing-zeros iteration: bits come out in ascending index order,
		// so the row is born sorted — no stamp array, no comparison sort,
		// no transpose.
		n := len(s.readers)
		w := (n + 63) / 64
		row := make([]uint64, w)
		off := make([]int32, n+1)
		var dat []int32
		tOff, tDat := s.tagsOf.off, s.tagsOf.dat
		rOff, rDat := s.readersOf.off, s.readersOf.dat
		for u := 0; u < n; u++ {
			for i := range row {
				row[i] = 0
			}
			for _, t := range tDat[tOff[u]:tOff[u+1]] {
				for _, v := range rDat[rOff[t]:rOff[t+1]] {
					row[uint(v)>>6] |= 1 << (uint(v) & 63)
				}
			}
			row[uint(u)>>6] &^= 1 << (uint(u) & 63)
			dat = appendBits(dat, row)
			off[u+1] = int32(len(dat))
		}
		c.covAdj = csr{off: off, dat: dat}
	})
	return c.covAdj
}

// conflictRow returns reader u's conflict bitset (built on first use): bit v
// set iff u and v are NOT independent. Callers must not mutate the row.
func (s *System) conflictRow(u int) []uint64 {
	c := s.adj
	c.conflictOnce.Do(func() {
		out, in := s.interAdj()
		n := len(s.readers)
		w := (n + 63) / 64
		c.conflictW = w
		if c.sweepBits != nil {
			for v := 0; v < n; v++ {
				c.sweepBits[v*w+(v>>6)] |= 1 << (uint(v) & 63)
			}
			c.conflict, c.sweepBits = c.sweepBits, nil
			return
		}
		bits := make([]uint64, n*w)
		for v := 0; v < n; v++ {
			row := bits[v*w : (v+1)*w]
			row[uint(v)>>6] |= 1 << (uint(v) & 63)
			for _, x := range out.row(v) {
				row[uint(x)>>6] |= 1 << (uint(x) & 63)
			}
			for _, x := range in.row(v) {
				row[uint(x)>>6] |= 1 << (uint(x) & 63)
			}
		}
		c.conflict = bits
	})
	return c.conflict[u*c.conflictW : (u+1)*c.conflictW]
}

// ConflictBits exposes the packed independence bitsets for feasibility fast
// paths (mwfs curBits pruning, the PTAS augmentation, channel assignment):
// reader v's row occupies words [v*stride, (v+1)*stride), bit u set iff v
// and u are NOT independent. The slice is shared and immutable; callers
// must not mutate it.
func (s *System) ConflictBits() (bits []uint64, stride int) {
	s.conflictRow(0)
	return s.adj.conflict, s.adj.conflictW
}

// WarmAdjacency forces every lazily-built shared structure — interference
// adjacency, coverage adjacency, coupling neighborhoods, and independence
// bitsets — so later solves (and clones, which share the cache) never pay a
// first-use construction stall. Serving layers call this right after
// NewSystem; it is also the "first-solve prep" cost cmd/corebench gates.
func (s *System) WarmAdjacency() {
	if len(s.readers) == 0 {
		return
	}
	s.interAdj()
	s.coverageAdj()
	s.CouplingNeighbors(0)
	s.conflictRow(0)
}

// CouplingNeighbors returns the readers whose membership in an activation
// set can change reader v's marginal weight (and vice versa): interference
// in either direction, or a shared covered tag. The marginal weight of v
// depends only on system state within this 1-hop coupling ball, so adding a
// reader u can change w(X ∪ {v}) − w(X) only when u is within two coupling
// hops of v — the invariant the lazy gain queue in package baseline builds
// its invalidation sets from. The returned slice is shared and sorted;
// callers must not mutate it.
func (s *System) CouplingNeighbors(v int) []int32 {
	c := s.adj
	c.nbrOnce.Do(func() {
		// The conflict bitsets already hold interOut ∪ interIn ∪ {self};
		// OR in the coverage row, drop the self bit, and expand — same
		// born-sorted trailing-zeros trick as coverageAdj.
		s.conflictRow(0)
		cov := s.coverageAdj()
		n := len(s.readers)
		w := c.conflictW
		row := make([]uint64, w)
		off := make([]int32, n+1)
		dat := make([]int32, 0, len(c.interOut.dat)+len(c.interIn.dat)+len(cov.dat))
		for u := 0; u < n; u++ {
			copy(row, c.conflict[u*w:(u+1)*w])
			for _, v := range cov.row(u) {
				row[uint(v)>>6] |= 1 << (uint(v) & 63)
			}
			row[uint(u)>>6] &^= 1 << (uint(u) & 63)
			dat = appendBits(dat, row)
			off[u+1] = int32(len(dat))
		}
		c.nbr = csr{off: off, dat: dat}
	})
	return c.nbr.row(v)
}

// WeightEval incrementally evaluates w(X) for a dynamically maintained
// activation set X over a System. Construct with NewWeightEval, mutate the
// set with Add/Remove (or Snapshot/Restore for backtracking search), and
// read Weight()/MarginalGain(v) in O(1)/O(Δ). The evaluator observes the
// System's MarkRead/ResetReads/SetReaderDown transitions automatically; call
// Close when done so the System stops notifying it.
//
// Like the System itself, a WeightEval is not safe for concurrent use.
type WeightEval struct {
	sys *System

	active     []bool
	activePos  []int32 // index into activeList, -1 when inactive
	activeList []int

	coverCount []int32
	coverSum   []int32
	single     []int32
	rtc        []int32
	weight     int

	interOut csr
	interIn  csr

	// pooled marks an evaluator from NewPooledWeightEval; Close recycles it
	// into its geometry's evalPool (see pool.go).
	pooled bool

	snaps   [][]int
	scratch []bool

	closed bool
}

// NewWeightEval builds an evaluator with an empty activation set and
// attaches it to sys. The interference adjacency is cached on the System, so
// constructing many short-lived evaluators (as the branch-and-bound solver
// does) costs O(readers + tags) each, not O(readers²).
func NewWeightEval(sys *System) *WeightEval {
	out, in := sys.interAdj()
	e := &WeightEval{
		sys:        sys,
		active:     make([]bool, len(sys.readers)),
		activePos:  make([]int32, len(sys.readers)),
		coverCount: make([]int32, len(sys.tags)),
		coverSum:   make([]int32, len(sys.tags)),
		single:     make([]int32, len(sys.readers)),
		rtc:        make([]int32, len(sys.readers)),
		interOut:   out,
		interIn:    in,
	}
	for i := range e.activePos {
		e.activePos[i] = -1
	}
	sys.attach(e)
	return e
}

// Close detaches the evaluator from its System. For a plain evaluator,
// using the counters afterwards is safe only while the System's read/down
// state does not change. A pooled evaluator (NewPooledWeightEval) is
// instead drained and recycled — it must not be touched at all after
// Close. Closing is idempotent.
func (e *WeightEval) Close() {
	if e.closed {
		return
	}
	if e.pooled {
		e.closePooled()
		return
	}
	e.closed = true
	e.sys.detach(e)
}

// Weight returns w(X) for the current activation set in O(1).
func (e *WeightEval) Weight() int { return e.weight }

// Len returns |X|.
func (e *WeightEval) Len() int { return len(e.activeList) }

// Active reports whether reader v is in the current set.
func (e *WeightEval) Active(v int) bool {
	return v >= 0 && v < len(e.active) && e.active[v]
}

// AppendActive appends the current activation set to dst in ascending order.
func (e *WeightEval) AppendActive(dst []int) []int {
	start := len(dst)
	dst = append(dst, e.activeList...)
	slices.Sort(dst[start:])
	return dst
}

// Add inserts reader v into the activation set. Out-of-range and already
// active readers are no-ops returning false. A down reader joins the set but
// contributes nothing until it recovers, mirroring the brute-force Weight.
func (e *WeightEval) Add(v int) bool {
	if v < 0 || v >= len(e.active) || e.active[v] {
		return false
	}
	e.active[v] = true
	e.activePos[v] = int32(len(e.activeList))
	e.activeList = append(e.activeList, v)
	if !e.sys.isDown(v) {
		e.addEffective(v)
	}
	return true
}

// Remove deletes reader v from the activation set; false if it wasn't in it.
func (e *WeightEval) Remove(v int) bool {
	if v < 0 || v >= len(e.active) || !e.active[v] {
		return false
	}
	if !e.sys.isDown(v) {
		e.removeEffective(v)
	}
	e.active[v] = false
	pos := e.activePos[v]
	last := len(e.activeList) - 1
	moved := e.activeList[last]
	e.activeList[pos] = moved
	e.activePos[moved] = pos
	e.activeList = e.activeList[:last]
	e.activePos[v] = -1
	return true
}

// MarginalGain returns w(X ∪ {v}) − w(X) in O(Δ) without changing the set.
// An already-active (or invalid) v gains nothing.
func (e *WeightEval) MarginalGain(v int) int {
	before := e.weight
	if !e.Add(v) {
		return 0
	}
	g := e.weight - before
	e.Remove(v)
	return g
}

// Snapshot pushes a copy of the current activation set onto the restore
// stack and returns the new stack depth. Only set membership is captured:
// read flags and the down mask belong to the System and flow through the
// observer hooks regardless of snapshots.
func (e *WeightEval) Snapshot() int {
	e.snaps = append(e.snaps, append([]int(nil), e.activeList...))
	return len(e.snaps)
}

// Restore pops the most recent snapshot and patches the activation set back
// to it by diffing (removals first, then additions), so the cost is
// proportional to the drift since Snapshot, not to |X|. Returns false if the
// stack is empty.
func (e *WeightEval) Restore() bool {
	if len(e.snaps) == 0 {
		return false
	}
	want := e.snaps[len(e.snaps)-1]
	e.snaps = e.snaps[:len(e.snaps)-1]
	if e.scratch == nil {
		e.scratch = make([]bool, len(e.active))
	}
	for _, v := range want {
		e.scratch[v] = true
	}
	for i := len(e.activeList) - 1; i >= 0; i-- {
		if v := e.activeList[i]; !e.scratch[v] {
			e.Remove(v)
		}
	}
	for _, v := range want {
		if !e.active[v] {
			e.Add(v)
		}
		e.scratch[v] = false
	}
	return true
}

// Reset empties the activation set and the snapshot stack.
func (e *WeightEval) Reset() {
	for len(e.activeList) > 0 {
		e.Remove(e.activeList[len(e.activeList)-1])
	}
	e.snaps = e.snaps[:0]
}

// addEffective folds an active, live reader v into the counters. The order
// matters: the tag loop charges coverage changes against the *current* clean
// statuses, the interference loop then re-prices readers v un-cleans with
// their already-updated single counts, and finally v's own tags count iff v
// ended up clean.
func (e *WeightEval) addEffective(v int) {
	read := e.sys.read
	for _, t := range e.sys.tagsOf.row(v) {
		old := e.coverCount[t]
		prev := e.coverSum[t]
		e.coverCount[t] = old + 1
		e.coverSum[t] = prev + int32(v)
		if read[t] {
			continue
		}
		switch old {
		case 0:
			e.single[v]++
		case 1:
			e.single[prev]--
			if e.rtc[prev] == 0 {
				e.weight--
			}
		}
	}
	rtcV := int32(0)
	for _, u := range e.interIn.row(v) {
		if e.active[u] && !e.sys.isDown(int(u)) {
			rtcV++
		}
	}
	e.rtc[v] = rtcV
	for _, u := range e.interOut.row(v) {
		if e.active[u] && !e.sys.isDown(int(u)) {
			e.rtc[u]++
			if e.rtc[u] == 1 {
				e.weight -= int(e.single[u])
			}
		}
	}
	if rtcV == 0 {
		e.weight += int(e.single[v])
	}
}

// removeEffective is the exact inverse of addEffective (reverse order).
func (e *WeightEval) removeEffective(v int) {
	if e.rtc[v] == 0 {
		e.weight -= int(e.single[v])
	}
	e.rtc[v] = 0
	for _, u := range e.interOut.row(v) {
		if e.active[u] && !e.sys.isDown(int(u)) {
			e.rtc[u]--
			if e.rtc[u] == 0 {
				e.weight += int(e.single[u])
			}
		}
	}
	read := e.sys.read
	for _, t := range e.sys.tagsOf.row(v) {
		e.coverCount[t]--
		e.coverSum[t] -= int32(v)
		if read[t] {
			continue
		}
		switch e.coverCount[t] {
		case 0:
			e.single[v]--
		case 1:
			owner := e.coverSum[t]
			e.single[owner]++
			if e.rtc[owner] == 0 {
				e.weight++
			}
		}
	}
}

// onTagRead is the System's MarkRead hook (called after the unread→read
// transition): a singly-covered tag stops crediting its owner.
func (e *WeightEval) onTagRead(t int) {
	if e.coverCount[t] == 1 {
		owner := e.coverSum[t]
		e.single[owner]--
		if e.rtc[owner] == 0 {
			e.weight--
		}
	}
}

// onResetReads rebuilds the unread-dependent counters after ResetReads;
// coverage and interference counters are read-state independent and stand.
func (e *WeightEval) onResetReads() {
	for i := range e.single {
		e.single[i] = 0
	}
	for t, c := range e.coverCount {
		if c == 1 {
			e.single[e.coverSum[t]]++
		}
	}
	e.weight = 0
	for _, v := range e.activeList {
		if !e.sys.isDown(v) && e.rtc[v] == 0 {
			e.weight += int(e.single[v])
		}
	}
}

// onReaderDown is the System's SetReaderDown hook (called after the mask
// transition). A down reader in the set behaves exactly as if removed —
// serves nothing, interferes with nothing — while keeping its membership, so
// recovery restores its contribution.
func (e *WeightEval) onReaderDown(v int, down bool) {
	if v < 0 || v >= len(e.active) || !e.active[v] {
		return
	}
	if down {
		e.removeEffective(v)
	} else {
		e.addEffective(v)
	}
}
