package model

// Multi-channel extension. The paper's related work (Section VII) notes the
// EPCglobal Gen-2 dense reading mode: when readers transmit on different
// frequency channels, a reader no longer drowns its neighbors' tag
// responses — RTc vanishes between readers on distinct channels. RRc does
// NOT vanish: passive tags are frequency-dumb, so a tag inside two active
// interrogation regions stays confused regardless of channels.
//
// This file extends the weight function to channel assignments so the
// multi-channel scheduler in package core (and its ablation benchmarks) can
// quantify exactly how much of the paper's single-channel loss comes from
// RTc versus RRc.

// WeightChanneled returns the number of unread well-covered tags when the
// readers X[i] transmit on channels channel[i]. Well-covered now means:
// covered by exactly one active reader (on any channel — RRc is channel
// blind) whose reader is not inside the interference disk of another
// reader on the SAME channel. len(channel) must equal len(X); channel
// values are opaque labels.
func (s *System) WeightChanneled(X []int, channel []int) int {
	w, _ := s.channeled(X, channel, nil, false)
	return w
}

// CoveredChanneled appends the indices of unread tags well-covered under
// the channel assignment and returns the extended slice.
func (s *System) CoveredChanneled(X []int, channel []int, dst []int32) []int32 {
	_, dst = s.channeled(X, channel, dst, true)
	return dst
}

func (s *System) channeled(X []int, channel []int, dst []int32, collect bool) (int, []int32) {
	if len(X) != len(channel) {
		return 0, dst
	}
	// Clean = no same-channel interferer.
	clean := make(map[int]bool, len(X))
	for i, v := range X {
		if v < 0 || v >= len(s.readers) {
			continue
		}
		ok := true
		for j, u := range X {
			if i == j || u < 0 || u >= len(s.readers) {
				continue
			}
			if channel[i] == channel[j] && s.readers[u].Interferes(s.readers[v]) {
				ok = false
				break
			}
		}
		clean[v] = ok
	}

	s.ensureWeightScratch()
	s.touched = s.touched[:0]
	for _, v := range X {
		if v < 0 || v >= len(s.readers) {
			continue
		}
		for _, t := range s.tagsOf.row(v) {
			if s.coverCount[t] == 0 {
				s.touched = append(s.touched, t)
			}
			s.coverCount[t]++
			s.coverOwner[t] = int32(v)
		}
	}
	w := 0
	for _, t := range s.touched {
		if s.coverCount[t] == 1 && !s.read[t] && clean[int(s.coverOwner[t])] {
			w++
			if collect {
				dst = append(dst, t)
			}
		}
		s.coverCount[t] = 0
	}
	return w, dst
}

// IsChannelFeasible reports whether no two readers sharing a channel
// violate independence — the multi-channel analogue of IsFeasible.
func (s *System) IsChannelFeasible(X []int, channel []int) bool {
	if len(X) != len(channel) {
		return false
	}
	for i := 0; i < len(X); i++ {
		for j := i + 1; j < len(X); j++ {
			if X[i] == X[j] {
				return false
			}
			if channel[i] == channel[j] && !s.Independent(X[i], X[j]) {
				return false
			}
		}
	}
	return true
}
