package model

// This file implements the weight function w(X) of Definition 3 and its
// relatives. Weight is the hottest operation in the repository — every
// scheduler calls it inside enumeration loops — so it uses epoch-free
// scratch buffers owned by the System: coverCount/coverOwner are only ever
// non-zero for tag indices recorded in touched, and are re-zeroed on exit.

// Weight returns w(X): the number of unread tags that are well-covered when
// exactly the readers in X are activated (Definition 1/3). X may be any set
// of reader indices, feasible or not — readers suffering RTc simply
// contribute nothing, exactly as in the physical model.
func (s *System) Weight(X []int) int {
	w, _ := s.weightAndCovered(X, nil, false)
	return w
}

// Covered appends to dst the indices of unread tags well-covered under X and
// returns the extended slice alongside being exactly the tags Weight counts.
func (s *System) Covered(X []int, dst []int32) []int32 {
	_, dst = s.weightAndCovered(X, dst, true)
	return dst
}

// ensureWeightScratch allocates the Weight scratch buffers on first use.
// Construction skips them: eval-driven solvers (GHC, the branch-and-bound
// searches) never call Weight on the base System, so eagerly allocating
// O(readers+tags) scratch would tax the serve construct path for nothing.
// The buffers are born zeroed, which is exactly the between-calls invariant
// the weight paths maintain.
func (s *System) ensureWeightScratch() {
	if s.coverCount == nil {
		s.coverCount = make([]int32, len(s.tags))
		s.coverOwner = make([]int32, len(s.tags))
		s.touched = make([]int32, 0, len(s.tags))
		s.clean = make([]bool, len(s.readers))
	}
}

func (s *System) weightAndCovered(X []int, dst []int32, collect bool) (int, []int32) {
	s.ensureWeightScratch()
	clean := s.cleanMask(X)

	s.touched = s.touched[:0]
	for _, v := range X {
		if v < 0 || v >= len(s.readers) || s.isDown(v) {
			continue
		}
		for _, t := range s.tagsOf.row(v) {
			if s.coverCount[t] == 0 {
				s.touched = append(s.touched, t)
			}
			s.coverCount[t]++
			s.coverOwner[t] = int32(v)
		}
	}

	w := 0
	for _, t := range s.touched {
		if s.coverCount[t] == 1 && !s.read[t] {
			owner := s.coverOwner[t]
			if clean[owner] {
				w++
				if collect {
					dst = append(dst, t)
				}
			}
		}
		s.coverCount[t] = 0
	}
	s.resetClean(X)
	return w, dst
}

// cleanMask fills the System-owned clean scratch over reader indices,
// marking the readers in X that do NOT suffer RTc: reader v is clean iff no
// other activated reader u has v inside u's interference disk. Down readers
// do not transmit, so they are neither clean nor a source of interference.
// The scratch is all-false between calls — callers must pair every
// cleanMask with a resetClean(X) once they are done with the mask — which
// is what keeps Weight allocation-free at steady state.
func (s *System) cleanMask(X []int) []bool {
	clean := s.clean
	for _, v := range X {
		if v >= 0 && v < len(s.readers) && !s.isDown(v) {
			clean[v] = true
		}
	}
	for _, u := range X {
		if u < 0 || u >= len(s.readers) || s.isDown(u) {
			continue
		}
		for _, v := range X {
			if u == v || v < 0 || v >= len(s.readers) || s.isDown(v) {
				continue
			}
			if s.readers[u].Interferes(s.readers[v]) {
				clean[v] = false
			}
		}
	}
	return clean
}

// resetClean re-zeroes the cleanMask scratch entries X touched.
func (s *System) resetClean(X []int) {
	for _, v := range X {
		if v >= 0 && v < len(s.readers) {
			s.clean[v] = false
		}
	}
}

// MarginalWeight returns w(X ∪ {v}) - w(X), the quantity Greedy
// Hill-Climbing maximizes at each step. It may be negative: activating v can
// destroy previously well-covered tags through RRc overlap or RTc.
//
// Greedy loops probing many candidates against the same X should cache
// base = Weight(X) once and call MarginalWeightFrom, or better, hold the
// set in a WeightEval and use its O(Δ) MarginalGain.
func (s *System) MarginalWeight(X []int, v int) int {
	return s.MarginalWeightFrom(s.Weight(X), X, v)
}

// MarginalWeightFrom returns w(X ∪ {v}) - base where base is the caller's
// cached Weight(X), saving the redundant full recompute of the base weight
// that MarginalWeight pays on every candidate probe.
func (s *System) MarginalWeightFrom(base int, X []int, v int) int {
	ext := append(append(make([]int, 0, len(X)+1), X...), v)
	return s.Weight(ext) - base
}

// CollisionStats describes what happens physically in one slot if the
// readers in X transmit simultaneously.
type CollisionStats struct {
	Activated   int // |X|
	RTcReaders  int // activated readers drowned by another reader's signal
	RRcTags     int // unread tags lost to interrogation overlap (count >= 2)
	WellCovered int // unread tags actually served, == Weight(X)
}

// Collisions classifies the collision outcome of activating X.
func (s *System) Collisions(X []int) CollisionStats {
	st := CollisionStats{Activated: len(X)}
	s.ensureWeightScratch()
	clean := s.cleanMask(X)
	for _, v := range X {
		if v >= 0 && v < len(s.readers) && !s.isDown(v) && !clean[v] {
			st.RTcReaders++
		}
	}

	s.touched = s.touched[:0]
	for _, v := range X {
		if v < 0 || v >= len(s.readers) || s.isDown(v) {
			continue
		}
		for _, t := range s.tagsOf.row(v) {
			if s.coverCount[t] == 0 {
				s.touched = append(s.touched, t)
			}
			s.coverCount[t]++
			s.coverOwner[t] = int32(v)
		}
	}
	for _, t := range s.touched {
		if !s.read[t] {
			if s.coverCount[t] >= 2 {
				st.RRcTags++
			} else if clean[s.coverOwner[t]] {
				st.WellCovered++
			}
		}
		s.coverCount[t] = 0
	}
	s.resetClean(X)
	return st
}

// SingletonWeight returns w({v}); Algorithm 2 seeds its growth from the
// reader maximizing this. A down reader weighs zero, which is how the
// weight-greedy schedulers naturally avoid planning failed hardware.
// O(1): the per-reader unread counter is maintained by MarkRead.
func (s *System) SingletonWeight(v int) int {
	if s.isDown(v) {
		return 0
	}
	return int(s.unreadOf[v])
}
