package model

import "math/bits"

// csr is a compressed-sparse-row adjacency relation: one flat backing array
// of int32 values plus a rows+1 offset table. Every per-reader / per-tag
// relation in the geometry core (tagsOf, readersOf, interOut, interIn,
// covAdj, nbr) is stored this way so the hot solve loops — WeightEval
// Add/Remove/MarginalGain, the branch-and-bound push/pop, GHC's lazy gain
// re-pricing — walk one contiguous allocation instead of chasing a slice
// header per row. Rows are sorted ascending, matching the pre-CSR [][]int32
// layout element for element (the bit-identical-schedules contract).
//
// A csr is immutable after construction and shared by every clone of a
// System.
type csr struct {
	off []int32 // len rows()+1, off[0] == 0, non-decreasing
	dat []int32
}

// row returns row i as a sub-slice of the backing array. Callers must not
// mutate it.
func (c *csr) row(i int) []int32 { return c.dat[c.off[i]:c.off[i+1]] }

// rowLen returns len(row(i)) without materializing the slice header.
func (c *csr) rowLen(i int) int { return int(c.off[i+1] - c.off[i]) }

// rows returns the number of rows.
func (c *csr) rows() int { return len(c.off) - 1 }

// emptyCSR returns an n-row relation with every row empty — the valid zero
// layout for degenerate systems (no tags, no readers).
func emptyCSR(n int) csr { return csr{off: make([]int32, n+1)} }

// transposeCSR returns the reverse relation of c over m target columns:
// out.row(v) lists every u with v ∈ c.row(u), ascending (rows are filled by
// scanning u in ascending order, so sortedness is free). This is how
// readersOf is derived from tagsOf and interIn from interOut — one counting
// pass, one scatter pass, two allocations total.
func transposeCSR(c csr, m int) csr {
	// Counting pass into off[0..m-1], exclusive prefix sum, then scatter
	// using off[v] itself as the write cursor: after the scatter each off[v]
	// has advanced to the start of row v+1, so one overlapping copy shifts
	// the table into its final form. No separate cursor array needed.
	off := make([]int32, m+1)
	for _, v := range c.dat {
		off[v]++
	}
	sum := int32(0)
	for i := 0; i < m; i++ {
		cnt := off[i]
		off[i] = sum
		sum += cnt
	}
	off[m] = sum
	dat := make([]int32, len(c.dat))
	rowsN := len(c.off) - 1
	for u := 0; u < rowsN; u++ {
		for _, v := range c.dat[c.off[u]:c.off[u+1]] {
			dat[off[v]] = int32(u)
			off[v]++
		}
	}
	copy(off[1:], off[:m])
	off[0] = 0
	return csr{off: off, dat: dat}
}

// appendBits appends the indices of the set bits in row to dst, ascending —
// trailing-zeros iteration visits bits in index order, so relations
// accumulated in a bitset come out of this already sorted.
func appendBits(dst []int32, row []uint64) []int32 {
	for k, word := range row {
		base := int32(k) << 6
		for word != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return dst
}
