package model

// OneShotScheduler solves (exactly or approximately) the One-Shot Schedule
// Problem of Definition 6: given the current system state (geometry plus
// which tags are still unread), return a feasible scheduling set whose
// weight is as large as possible.
//
// Implementations must return a feasible set — the MCS driver verifies this
// and treats a violation as a bug, not a recoverable condition — but they
// may return an empty set when no activation can serve any unread tag.
type OneShotScheduler interface {
	// Name identifies the algorithm in experiment tables ("Alg1-PTAS",
	// "Colorwave", ...).
	Name() string

	// OneShot returns reader indices to activate for the next time slot.
	OneShot(sys *System) ([]int, error)
}

// Func adapts a function to the OneShotScheduler interface, mirroring
// http.HandlerFunc.
type Func struct {
	SchedName string
	F         func(sys *System) ([]int, error)
}

// Name implements OneShotScheduler.
func (f Func) Name() string { return f.SchedName }

// OneShot implements OneShotScheduler.
func (f Func) OneShot(sys *System) ([]int, error) { return f.F(sys) }
