package model

import (
	"testing"
	"testing/quick"

	"rfidsched/internal/geom"
	"rfidsched/internal/randx"
)

// Property-based tests on the system model: random deployments generated
// from quick's seeds, invariants from the paper's definitions checked on
// random activation sets.

// genSystem builds a random small system from a seed.
func genSystem(seed uint64, n, m int) *System {
	rng := randx.New(seed)
	readers := make([]Reader, n)
	for i := range readers {
		R := 2 + rng.Float64()*10
		readers[i] = Reader{
			Pos:            geom.Pt(rng.Float64()*60, rng.Float64()*60),
			InterferenceR:  R,
			InterrogationR: 0.3*R + rng.Float64()*0.7*R,
		}
	}
	tags := make([]Tag, m)
	for i := range tags {
		tags[i] = Tag{Pos: geom.Pt(rng.Float64()*60, rng.Float64()*60)}
	}
	sys, err := NewSystem(readers, tags)
	if err != nil {
		panic(err)
	}
	return sys
}

// genSet derives a random activation set from a seed.
func genSet(sys *System, seed uint64) []int {
	rng := randx.New(seed ^ 0xabcdef)
	var X []int
	for v := 0; v < sys.NumReaders(); v++ {
		if rng.Bool(0.3) {
			X = append(X, v)
		}
	}
	return X
}

// Weight is bounded by the unread tag count and non-negative.
func TestPropWeightBounds(t *testing.T) {
	f := func(seed uint64) bool {
		sys := genSystem(seed, 12, 80)
		X := genSet(sys, seed)
		w := sys.Weight(X)
		return w >= 0 && w <= sys.NumTags()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// A singleton is always feasible and its weight equals its unread coverage.
func TestPropSingletonWeight(t *testing.T) {
	f := func(seed uint64, idx uint8) bool {
		sys := genSystem(seed, 10, 60)
		v := int(idx) % sys.NumReaders()
		if !sys.IsFeasible([]int{v}) {
			return false
		}
		return sys.Weight([]int{v}) == sys.SingletonWeight(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Weight of a feasible set is subadditive in its elements: w(X) is at most
// the sum of singleton weights (each tag counted at most once somewhere).
func TestPropWeightSubadditive(t *testing.T) {
	f := func(seed uint64) bool {
		sys := genSystem(seed, 12, 80)
		X := genSet(sys, seed)
		sum := 0
		for _, v := range X {
			sum += sys.SingletonWeight(v)
		}
		return sys.Weight(X) <= sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Weight is permutation invariant (sets, not sequences).
func TestPropWeightPermutationInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		sys := genSystem(seed, 12, 80)
		X := genSet(sys, seed)
		if len(X) < 2 {
			return true
		}
		w1 := sys.Weight(X)
		rev := make([]int, len(X))
		for i, v := range X {
			rev[len(X)-1-i] = v
		}
		return sys.Weight(rev) == w1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Feasibility is closed under subsets.
func TestPropFeasibilitySubsetClosed(t *testing.T) {
	f := func(seed uint64) bool {
		sys := genSystem(seed, 12, 20)
		X := genSet(sys, seed)
		if !sys.IsFeasible(X) {
			return true
		}
		// Every prefix subset must stay feasible.
		for k := 0; k <= len(X); k++ {
			if !sys.IsFeasible(X[:k]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Reading tags never increases any weight.
func TestPropWeightMonotoneInUnread(t *testing.T) {
	f := func(seed uint64, tag uint8) bool {
		sys := genSystem(seed, 10, 60)
		X := genSet(sys, seed)
		before := sys.Weight(X)
		sys.MarkRead(int(tag) % sys.NumTags())
		after := sys.Weight(X)
		return after <= before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Covered() and Weight() always agree, and covered tags are unique and
// unread.
func TestPropCoveredConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		sys := genSystem(seed, 12, 80)
		// Randomly pre-read some tags.
		rng := randx.New(seed + 1)
		for t := 0; t < sys.NumTags(); t++ {
			if rng.Bool(0.3) {
				sys.MarkRead(t)
			}
		}
		X := genSet(sys, seed)
		cov := sys.Covered(X, nil)
		if len(cov) != sys.Weight(X) {
			return false
		}
		seen := map[int32]bool{}
		for _, tg := range cov {
			if seen[tg] || sys.IsRead(int(tg)) {
				return false
			}
			seen[tg] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Collisions() partitions unread covered tags: WellCovered + RRcTags equals
// the number of unread tags under at least one active interrogation region
// minus those lost to unclean readers.
func TestPropCollisionsConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		sys := genSystem(seed, 12, 80)
		X := genSet(sys, seed)
		st := sys.Collisions(X)
		if st.WellCovered != sys.Weight(X) {
			return false
		}
		if st.Activated != len(X) {
			return false
		}
		return st.RTcReaders >= 0 && st.RTcReaders <= len(X) && st.RRcTags >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Multi-channel weight with all readers on one channel equals plain weight;
// with every reader on its own channel, RTc vanishes so weight can only
// grow or stay equal.
func TestPropChanneledWeightBrackets(t *testing.T) {
	f := func(seed uint64) bool {
		sys := genSystem(seed, 12, 80)
		X := genSet(sys, seed)
		same := make([]int, len(X))
		w1 := sys.WeightChanneled(X, same)
		if w1 != sys.Weight(X) {
			return false
		}
		distinct := make([]int, len(X))
		for i := range distinct {
			distinct[i] = i
		}
		return sys.WeightChanneled(X, distinct) >= w1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Clone equivalence: any operation sequence yields identical weights on the
// clone.
func TestPropCloneEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		sys := genSystem(seed, 10, 50)
		rng := randx.New(seed + 2)
		for i := 0; i < 10; i++ {
			sys.MarkRead(rng.Intn(sys.NumTags()))
		}
		c := sys.Clone()
		X := genSet(sys, seed)
		return sys.Weight(X) == c.Weight(X) &&
			sys.UnreadCount() == c.UnreadCount() &&
			sys.UnreadCoverableCount() == c.UnreadCoverableCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
