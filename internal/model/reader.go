// Package model implements the multi-reader RFID system model of Tang et
// al. (IPDPS 2011): readers with heterogeneous interference and
// interrogation radii, passive tags, the independence relation between
// readers (Definition 2), the well-covered predicate (Definition 1), and the
// weight function w(X) of an activation set (Definition 3) together with
// unread-tag bookkeeping across time slots.
//
// The model deliberately accepts arbitrary (possibly infeasible) activation
// sets in Weight and Covered so that baseline algorithms such as Colorwave
// and Greedy Hill-Climbing, which may momentarily consider conflicting
// activations, are scored under exactly the same physics as the paper's
// algorithms.
package model

import (
	"fmt"
	"math"

	"rfidsched/internal/geom"
)

// Reader is one RFID reader. InterferenceR is R_i: any other reader within
// this distance is interfered with (RTc). InterrogationR is r_i = beta*R_i:
// tags within this distance can be read. The model requires
// 0 < InterrogationR <= InterferenceR.
type Reader struct {
	ID             int
	Pos            geom.Point
	InterferenceR  float64
	InterrogationR float64
}

// InterferenceDisk returns O(v_i), the interference disk of the reader.
func (r Reader) InterferenceDisk() geom.Disk {
	return geom.Disk{Center: r.Pos, R: r.InterferenceR}
}

// InterrogationDisk returns the interrogation disk of the reader.
func (r Reader) InterrogationDisk() geom.Disk {
	return geom.Disk{Center: r.Pos, R: r.InterrogationR}
}

// Independent reports whether r and o are independent per Definition 2:
// ||v_i - v_j|| > max(R_i, R_j). Independent readers can be activated
// simultaneously without reader-tag collision.
func (r Reader) Independent(o Reader) bool {
	maxR := math.Max(r.InterferenceR, o.InterferenceR)
	return r.Pos.Dist2(o.Pos) > maxR*maxR
}

// Interferes reports whether reader o lies inside r's interference disk,
// i.e. r's transmission drowns responses destined for o (the asymmetric RTc
// relation of Definition 1, condition 2).
func (r Reader) Interferes(o Reader) bool {
	return r.Pos.Dist2(o.Pos) <= r.InterferenceR*r.InterferenceR
}

// Covers reports whether the tag position p is inside r's interrogation
// region.
func (r Reader) Covers(p geom.Point) bool {
	return r.Pos.Dist2(p) <= r.InterrogationR*r.InterrogationR
}

// Validate checks the radii invariants of a single reader.
func (r Reader) Validate() error {
	if !r.Pos.IsFinite() {
		return fmt.Errorf("model: reader %d has non-finite position %v", r.ID, r.Pos)
	}
	if r.InterrogationR <= 0 {
		return fmt.Errorf("model: reader %d has non-positive interrogation radius %v", r.ID, r.InterrogationR)
	}
	if r.InterferenceR < r.InterrogationR {
		return fmt.Errorf("model: reader %d has interference radius %v < interrogation radius %v",
			r.ID, r.InterferenceR, r.InterrogationR)
	}
	return nil
}

// Tag is one passive tag. Tags have no radios of their own; they are read
// when well-covered by an activated reader. Read state lives in System, not
// here, so a Tag value is immutable.
type Tag struct {
	ID  int
	Pos geom.Point
}
