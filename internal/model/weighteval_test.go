package model

import (
	"testing"

	"rfidsched/internal/randx"
)

// Differential tests: WeightEval must agree bit-for-bit with the brute-force
// weightAndCovered on every reachable state — arbitrary activation sets,
// read churn, fault masks, resets, and snapshot/restore backtracking.

// evalActive returns the evaluator's current set as a sorted []int.
func evalActive(e *WeightEval) []int { return e.AppendActive(nil) }

// checkAgainstBrute asserts the evaluator matches the brute force for its
// current set, and that MarginalGain matches MarginalWeight for a probe.
func checkAgainstBrute(t *testing.T, sys *System, e *WeightEval, probe int, ctx string) {
	t.Helper()
	X := evalActive(e)
	if got, want := e.Weight(), sys.Weight(X); got != want {
		t.Fatalf("%s: eval.Weight()=%d brute=%d set=%v", ctx, got, want, X)
	}
	if probe >= 0 && probe < sys.NumReaders() && !e.Active(probe) {
		if got, want := e.MarginalGain(probe), sys.MarginalWeight(X, probe); got != want {
			t.Fatalf("%s: MarginalGain(%d)=%d MarginalWeight=%d set=%v", ctx, probe, got, want, X)
		}
	}
}

// TestWeightEvalDifferentialRandomOps drives 1k random operation sequences —
// Add, Remove, MarkRead, SetReaderDown/up, ResetReads, Snapshot, Restore —
// against randomized deployments and asserts the evaluator never diverges
// from the brute force after any single operation.
func TestWeightEvalDifferentialRandomOps(t *testing.T) {
	const sequences = 1000
	for seq := 0; seq < sequences; seq++ {
		seed := uint64(7000 + seq)
		rng := randx.New(seed)
		n := 5 + rng.Intn(12)
		m := 20 + rng.Intn(80)
		sys := genSystem(seed, n, m)
		e := NewWeightEval(sys)

		snapDepth := 0
		ops := 12 + rng.Intn(20)
		for op := 0; op < ops; op++ {
			switch k := rng.Intn(10); {
			case k < 4: // Add (biased: sets should grow)
				e.Add(rng.Intn(n))
			case k < 5:
				e.Remove(rng.Intn(n))
			case k < 7:
				sys.MarkRead(rng.Intn(m))
			case k < 8:
				v := rng.Intn(n)
				sys.SetReaderDown(v, !sys.ReaderDown(v))
			case k < 9:
				if rng.Bool(0.5) || snapDepth == 0 {
					e.Snapshot()
					snapDepth++
				} else {
					if !e.Restore() {
						t.Fatalf("seq %d: Restore failed at depth %d", seq, snapDepth)
					}
					snapDepth--
				}
			default:
				if rng.Bool(0.1) {
					sys.ResetReads()
				}
			}
			checkAgainstBrute(t, sys, e, rng.Intn(n), "random-ops")
		}
		e.Close()
	}
}

// TestWeightEvalSnapshotRestoreChurn interleaves MarkRead/SetReaderDown
// churn with snapshot/restore backtracking: Restore must return exactly to
// the snapshotted set while the weight reflects the *current* read/down
// state, matching the brute force recomputed from scratch.
func TestWeightEvalSnapshotRestoreChurn(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		seed := uint64(9100 + trial)
		rng := randx.New(seed)
		sys := genSystem(seed, 10, 60)
		e := NewWeightEval(sys)
		for _, v := range genSet(sys, seed) {
			e.Add(v)
		}

		before := evalActive(e)
		e.Snapshot()
		// Drift: mutate the set and churn system state.
		for i := 0; i < 8; i++ {
			switch rng.Intn(4) {
			case 0:
				e.Add(rng.Intn(sys.NumReaders()))
			case 1:
				e.Remove(rng.Intn(sys.NumReaders()))
			case 2:
				sys.MarkRead(rng.Intn(sys.NumTags()))
			case 3:
				v := rng.Intn(sys.NumReaders())
				sys.SetReaderDown(v, !sys.ReaderDown(v))
			}
		}
		if !e.Restore() {
			t.Fatal("Restore failed")
		}
		after := evalActive(e)
		if len(after) != len(before) {
			t.Fatalf("trial %d: restore drifted: before=%v after=%v", trial, before, after)
		}
		for i := range after {
			if after[i] != before[i] {
				t.Fatalf("trial %d: restore drifted: before=%v after=%v", trial, before, after)
			}
		}
		checkAgainstBrute(t, sys, e, rng.Intn(sys.NumReaders()), "post-restore")
		e.Close()
	}
}

// TestWeightEvalDownMaskEquivalence crashes and recovers readers while the
// set is held fixed; the evaluator must track the brute force through every
// transition, including readers added while already down.
func TestWeightEvalDownMaskEquivalence(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		seed := uint64(5400 + trial)
		rng := randx.New(seed)
		sys := genSystem(seed, 12, 70)

		// Pre-crash some readers, then attach and add everything.
		for v := 0; v < sys.NumReaders(); v++ {
			if rng.Bool(0.25) {
				sys.SetReaderDown(v, true)
			}
		}
		e := NewWeightEval(sys)
		for _, v := range genSet(sys, seed) {
			e.Add(v)
		}
		checkAgainstBrute(t, sys, e, rng.Intn(sys.NumReaders()), "initial-down")

		for i := 0; i < 10; i++ {
			v := rng.Intn(sys.NumReaders())
			sys.SetReaderDown(v, !sys.ReaderDown(v))
			if rng.Bool(0.3) {
				sys.MarkRead(rng.Intn(sys.NumTags()))
			}
			checkAgainstBrute(t, sys, e, rng.Intn(sys.NumReaders()), "down-churn")
		}
		e.Close()
	}
}

// TestWeightEvalDetach verifies Close stops notifications: a detached
// evaluator's weight stays stale by design while the system moves on.
func TestWeightEvalDetach(t *testing.T) {
	sys := genSystem(42, 8, 50)
	e := NewWeightEval(sys)
	for v := 0; v < sys.NumReaders(); v++ {
		e.Add(v)
	}
	if len(sys.evals) != 1 {
		t.Fatalf("attached evals = %d, want 1", len(sys.evals))
	}
	e.Close()
	if len(sys.evals) != 0 {
		t.Fatalf("evals after Close = %d, want 0", len(sys.evals))
	}
	w := e.Weight()
	for tg := 0; tg < sys.NumTags(); tg++ {
		sys.MarkRead(tg)
	}
	if e.Weight() != w {
		t.Fatalf("closed evaluator moved: %d -> %d", w, e.Weight())
	}
	e.Close() // double Close is a no-op
}

// TestWeightEvalResetAndReuse exercises Reset plus continued use.
func TestWeightEvalResetAndReuse(t *testing.T) {
	sys := genSystem(77, 10, 60)
	e := NewWeightEval(sys)
	defer e.Close()
	for _, v := range genSet(sys, 77) {
		e.Add(v)
	}
	e.Snapshot()
	e.Reset()
	if e.Weight() != 0 || e.Len() != 0 {
		t.Fatalf("Reset left weight=%d len=%d", e.Weight(), e.Len())
	}
	if e.Restore() {
		t.Fatal("Restore succeeded on emptied snapshot stack")
	}
	for _, v := range genSet(sys, 78) {
		e.Add(v)
	}
	checkAgainstBrute(t, sys, e, 3, "post-reset")
}

// TestSingletonWeightCounterConsistency pins the O(1) singleton counter to
// the definitional scan under read churn, resets, clones, and down masks.
func TestSingletonWeightCounterConsistency(t *testing.T) {
	sys := genSystem(123, 12, 80)
	rng := randx.New(321)
	scan := func(s *System, v int) int {
		if s.ReaderDown(v) {
			return 0
		}
		w := 0
		for _, tg := range s.TagsOf(v) {
			if !s.IsRead(int(tg)) {
				w++
			}
		}
		return w
	}
	check := func(s *System, ctx string) {
		t.Helper()
		for v := 0; v < s.NumReaders(); v++ {
			if got, want := s.SingletonWeight(v), scan(s, v); got != want {
				t.Fatalf("%s: SingletonWeight(%d)=%d scan=%d", ctx, v, got, want)
			}
		}
	}
	check(sys, "fresh")
	for i := 0; i < 40; i++ {
		sys.MarkRead(rng.Intn(sys.NumTags()))
	}
	sys.SetReaderDown(3, true)
	check(sys, "churned")
	c := sys.Clone()
	c.MarkRead(0)
	check(c, "clone")
	sys.ResetReads()
	check(sys, "reset")
}
