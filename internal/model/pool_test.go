package model

import (
	"sync"
	"testing"

	"rfidsched/internal/randx"
)

// Allocation-regression tests: the hot query paths must be allocation-free
// at steady state, and the pooled clone/eval paths must stay within a fixed
// bound once their pools are warm. These are the machine-checked half of the
// corebench gates.

func TestZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race instrumentation")
	}
	_, _, sys := genSpreadSystem(11, 60, 400, 1)
	sys.WarmAdjacency()
	X := []int{1, 4, 9, 17, 23, 42}

	if a := testing.AllocsPerRun(100, func() { sys.Weight(X) }); a != 0 {
		t.Errorf("System.Weight allocates %v per op at steady state, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { sys.Collisions(X) }); a != 0 {
		t.Errorf("System.Collisions allocates %v per op, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { sys.IsFeasible(X) }); a != 0 {
		t.Errorf("System.IsFeasible allocates %v per op, want 0", a)
	}

	eval := NewWeightEval(sys)
	defer eval.Close()
	for _, v := range X {
		eval.Add(v)
	}
	// Warm once so activeList reaches its steady capacity.
	eval.Add(50)
	eval.Remove(50)
	if a := testing.AllocsPerRun(100, func() { eval.Add(50); eval.Remove(50) }); a != 0 {
		t.Errorf("WeightEval Add/Remove allocates %v per op, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { eval.MarginalGain(50) }); a != 0 {
		t.Errorf("WeightEval.MarginalGain allocates %v per op, want 0", a)
	}
}

func TestPooledCloneAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race instrumentation")
	}
	_, _, sys := genSpreadSystem(13, 60, 400, 1)
	sys.WarmAdjacency()
	// Warm the pools.
	c := sys.ClonePooled()
	e := NewPooledWeightEval(c)
	e.Close()
	c.Release()

	// sync.Pool puts may allocate a per-P slot container on first use, so the
	// bound is a small constant rather than exactly zero; the point of the
	// gate is that the O(readers+tags) buffer allocations of a fresh Clone
	// and NewWeightEval are gone.
	if a := testing.AllocsPerRun(200, func() {
		c := sys.ClonePooled()
		c.Release()
	}); a > 1 {
		t.Errorf("pooled Clone/Release allocates %v per op, want <= 1", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		c := sys.ClonePooled()
		e := NewPooledWeightEval(c)
		e.Add(3)
		_ = e.Weight()
		e.Close()
		c.Release()
	}); a > 2 {
		t.Errorf("pooled clone+eval cycle allocates %v per op, want <= 2", a)
	}
}

// A pooled clone must behave exactly like a fresh Clone regardless of what
// the previous tenant of its buffers did.
func TestClonePooledMatchesClone(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		_, _, sys := genSpreadSystem(seed, 40, 250, 1)
		rng := randx.New(seed * 977)

		// Dirty a pooled clone with read/down churn, then release it.
		dirty := sys.ClonePooled()
		for i := 0; i < 30; i++ {
			dirty.MarkRead(int(rng.Intn(dirty.NumTags())))
		}
		dirty.SetReaderDown(int(rng.Intn(dirty.NumReaders())), true)
		dirty.Release()

		// Mutate the source, then clone both ways: the recycled buffers must
		// carry none of the dirty tenant's state.
		for i := 0; i < 20; i++ {
			sys.MarkRead(int(rng.Intn(sys.NumTags())))
		}
		sys.SetReaderDown(int(rng.Intn(sys.NumReaders())), true)

		fresh := sys.Clone()
		pooled := sys.ClonePooled()
		X := genSet(sys, seed)
		if fw, pw := fresh.Weight(X), pooled.Weight(X); fw != pw {
			t.Fatalf("seed %d: pooled clone weight %d != fresh clone weight %d", seed, pw, fw)
		}
		if fresh.UnreadCount() != pooled.UnreadCount() ||
			fresh.DownReaders() != pooled.DownReaders() ||
			fresh.UnreadCoverableCount() != pooled.UnreadCoverableCount() {
			t.Fatalf("seed %d: pooled clone state diverges from fresh clone", seed)
		}
		for v := 0; v < sys.NumReaders(); v++ {
			if fresh.SingletonWeight(v) != pooled.SingletonWeight(v) {
				t.Fatalf("seed %d: SingletonWeight(%d) diverges", seed, v)
			}
		}
		pooled.Release()
	}
}

// A pooled evaluator must report the same weights as a fresh one across a
// random op sequence, including after recycling.
func TestPooledWeightEvalMatchesFresh(t *testing.T) {
	_, _, sys := genSpreadSystem(21, 35, 200, 1)
	for round := 0; round < 4; round++ {
		rng := randx.New(uint64(round) * 1337)
		fresh := NewWeightEval(sys)
		pooled := NewPooledWeightEval(sys)
		for i := 0; i < 200; i++ {
			v := int(rng.Intn(sys.NumReaders()))
			if rng.Bool(0.5) {
				fresh.Add(v)
				pooled.Add(v)
			} else {
				fresh.Remove(v)
				pooled.Remove(v)
			}
			if fresh.Weight() != pooled.Weight() {
				t.Fatalf("round %d op %d: pooled weight %d != fresh %d", round, i, pooled.Weight(), fresh.Weight())
			}
			if g := int(rng.Intn(sys.NumReaders())); fresh.MarginalGain(g) != pooled.MarginalGain(g) {
				t.Fatalf("round %d op %d: MarginalGain diverges", round, i)
			}
		}
		fresh.Close()
		pooled.Close() // recycles; next round's Get must see zeroed counters
	}
}

// Release must refuse clones that still have evaluators attached, and
// Close/Release must be idempotent.
func TestPoolOwnershipGuards(t *testing.T) {
	_, _, sys := genSpreadSystem(31, 20, 80, 1)
	c := sys.ClonePooled()
	e := NewPooledWeightEval(c)
	c.Release() // must refuse: evaluator still attached
	c2 := sys.ClonePooled()
	if c2 == c {
		t.Fatal("Release recycled a clone with a live evaluator")
	}
	e.Add(1)
	if e.Weight() < 0 {
		t.Fatal("evaluator unusable after refused Release")
	}
	e.Close()
	e.Close() // idempotent
	c.Release()
	c.Release() // idempotent
	c2.Release()

	// The original System is never pooled.
	sys.Release()
	if got := sys.ClonePooled(); got == sys {
		t.Fatal("Release recycled the original System")
	}
}

// Pool traffic from many goroutines, each on its own clone: exercised under
// -race in CI (internal/model is in the race-parallel job).
func TestPoolConcurrentUse(t *testing.T) {
	_, _, sys := genSpreadSystem(41, 50, 300, 1)
	sys.WarmAdjacency()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := randx.New(uint64(g) + 1)
			for i := 0; i < 50; i++ {
				c := sys.ClonePooled()
				e := NewPooledWeightEval(c)
				for j := 0; j < 20; j++ {
					v := int(rng.Intn(c.NumReaders()))
					if rng.Bool(0.5) {
						e.Add(v)
					} else {
						e.Remove(v)
					}
					_ = e.Weight()
				}
				e.Close()
				c.Release()
			}
		}(g)
	}
	wg.Wait()
}
