package model

import (
	"math"
	"sort"

	"rfidsched/internal/geom"
)

// ReferenceAdjacency is the frozen pre-CSR geometry construction: per-row
// []int32 slices grown by append, closure-based sort.Slice ordering, the
// per-bucket-slice spatial grid (refGrid below), and the O(n²) pairwise
// interference loop. It is kept verbatim as the differential
// baseline — the CSR relations of NewSystem/adjCache must match it element
// for element (that equality is what carries the bit-identical-schedules
// contract across the rebuild) — and as the construction-cost reference
// cmd/corebench measures the grid/kd-tree path against. Not used on any
// production path.
type ReferenceAdjacency struct {
	TagsOf    [][]int32
	ReadersOf [][]int32
	InterOut  [][]int32
	InterIn   [][]int32
	CovAdj    [][]int32
	Nbr       [][]int32
}

// ReferenceCoverage is the frozen pre-CSR NewSystem: defensive copies of the
// input slices, coverage lists as per-row append-grown slices sorted with a
// closure sort.Slice, and the Weight scratch buffers the old constructor
// allocated eagerly (the CSR constructor defers them to first Weight use).
// cmd/corebench times BuildReferenceCoverage as the "what NewSystem cost
// before the rebuild" baseline, so the struct deliberately keeps every
// allocation the old constructor performed.
type ReferenceCoverage struct {
	Readers   []Reader
	Tags      []Tag
	TagsOf    [][]int32
	ReadersOf [][]int32
	Read      []bool
	UnreadOf  []int32

	CoverCount []int32
	CoverOwner []int32
	Touched    []int32
}

// BuildReferenceCoverage replicates the pre-CSR NewSystem verbatim: copy and
// re-ID the inputs, validate radii, build the coverage lists through the
// per-bucket-slice grid with a full sort of the interrogation radii for the
// cell size, and allocate the eager Weight scratch.
func BuildReferenceCoverage(readers []Reader, tags []Tag) (*ReferenceCoverage, error) {
	rs := make([]Reader, len(readers))
	copy(rs, readers)
	ts := make([]Tag, len(tags))
	copy(ts, tags)
	for i := range rs {
		rs[i].ID = i
		if err := rs[i].Validate(); err != nil {
			return nil, err
		}
	}
	for i := range ts {
		ts[i].ID = i
	}
	n := len(rs)
	ref := &ReferenceCoverage{
		Readers:    rs,
		Tags:       ts,
		TagsOf:     make([][]int32, n),
		ReadersOf:  make([][]int32, len(ts)),
		Read:       make([]bool, len(ts)),
		UnreadOf:   make([]int32, n),
		CoverCount: make([]int32, len(ts)),
		CoverOwner: make([]int32, len(ts)),
		Touched:    make([]int32, 0, len(ts)),
	}
	if len(ts) > 0 {
		pts := make([]geom.Point, len(ts))
		for i, t := range ts {
			pts[i] = t.Pos
		}
		radii := make([]float64, n)
		for i, r := range rs {
			radii[i] = r.InterrogationR
		}
		sort.Float64s(radii)
		cell := 1.0
		if n > 0 {
			if m := radii[n/2]; m > 0 {
				cell = m
			}
		}
		idx := newRefGrid(pts, cell)
		for i, r := range rs {
			covered := idx.QueryDisk(r.InterrogationDisk(), nil)
			sort.Slice(covered, func(a, b int) bool { return covered[a] < covered[b] })
			ref.TagsOf[i] = covered
			for _, t := range covered {
				ref.ReadersOf[t] = append(ref.ReadersOf[t], int32(i))
			}
		}
		for i := range rs {
			ref.UnreadOf[i] = int32(len(ref.TagsOf[i]))
		}
	}
	return ref, nil
}

// BuildReferenceAdjacency runs the pre-CSR construction over readers and
// tags: the coverage lists exactly as the old NewSystem built them
// (BuildReferenceCoverage), then the interference/coverage/coupling
// adjacency exactly as the old first solve built them lazily.
func BuildReferenceAdjacency(readers []Reader, tags []Tag) *ReferenceAdjacency {
	n := len(readers)
	cov, err := BuildReferenceCoverage(readers, tags)
	if err != nil {
		panic(err)
	}
	ref := &ReferenceAdjacency{
		TagsOf:    cov.TagsOf,
		ReadersOf: cov.ReadersOf,
		InterOut:  make([][]int32, n),
		InterIn:   make([][]int32, n),
		CovAdj:    make([][]int32, n),
		Nbr:       make([][]int32, n),
	}

	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && readers[u].Interferes(readers[v]) {
				ref.InterOut[u] = append(ref.InterOut[u], int32(v))
				ref.InterIn[v] = append(ref.InterIn[v], int32(u))
			}
		}
	}

	stamp := make([]int, n)
	for i := range stamp {
		stamp[i] = -1
	}
	for u := 0; u < n; u++ {
		for _, t := range ref.TagsOf[u] {
			for _, v := range ref.ReadersOf[t] {
				if int(v) != u && stamp[v] != u {
					stamp[v] = u
					ref.CovAdj[u] = append(ref.CovAdj[u], v)
				}
			}
		}
		sort.Slice(ref.CovAdj[u], func(a, b int) bool { return ref.CovAdj[u][a] < ref.CovAdj[u][b] })
	}

	seen := make([]int, n)
	for i := range seen {
		seen[i] = -1
	}
	for u := 0; u < n; u++ {
		for _, lst := range [][]int32{ref.InterOut[u], ref.InterIn[u], ref.CovAdj[u]} {
			for _, w := range lst {
				if seen[w] != u {
					seen[w] = u
					ref.Nbr[u] = append(ref.Nbr[u], w)
				}
			}
		}
		sort.Slice(ref.Nbr[u], func(a, b int) bool { return ref.Nbr[u][a] < ref.Nbr[u][b] })
	}
	return ref
}

// refGrid is the frozen pre-CSR uniform grid: per-bucket []int32 slices
// grown by append. geom.SpatialGrid has since moved to a flat CSR bucket
// layout; this copy pins the construction cost corebench measures against.
type refGrid struct {
	cell    float64
	minX    float64
	minY    float64
	cols    int
	rows    int
	points  []geom.Point
	buckets [][]int32
}

func newRefGrid(pts []geom.Point, cell float64) *refGrid {
	if cell <= 0 {
		cell = 1
	}
	g := &refGrid{cell: cell, points: pts}
	if len(pts) == 0 {
		g.cols, g.rows = 1, 1
		g.buckets = make([][]int32, 1)
		return g
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	g.minX, g.minY = minX, minY
	g.cols = int((maxX-minX)/cell) + 1
	g.rows = int((maxY-minY)/cell) + 1
	g.buckets = make([][]int32, g.cols*g.rows)
	for i, p := range pts {
		col := int((p.X - g.minX) / g.cell)
		row := int((p.Y - g.minY) / g.cell)
		if col < 0 {
			col = 0
		} else if col >= g.cols {
			col = g.cols - 1
		}
		if row < 0 {
			row = 0
		} else if row >= g.rows {
			row = g.rows - 1
		}
		c := row*g.cols + col
		g.buckets[c] = append(g.buckets[c], int32(i))
	}
	return g
}

func (g *refGrid) QueryDisk(d geom.Disk, dst []int32) []int32 {
	if len(g.points) == 0 {
		return dst
	}
	c0 := int(math.Floor((d.Center.X - d.R - g.minX) / g.cell))
	c1 := int(math.Floor((d.Center.X + d.R - g.minX) / g.cell))
	r0 := int(math.Floor((d.Center.Y - d.R - g.minY) / g.cell))
	r1 := int(math.Floor((d.Center.Y + d.R - g.minY) / g.cell))
	if c0 < 0 {
		c0 = 0
	}
	if r0 < 0 {
		r0 = 0
	}
	if c1 >= g.cols {
		c1 = g.cols - 1
	}
	if r1 >= g.rows {
		r1 = g.rows - 1
	}
	rr := d.R * d.R
	for row := r0; row <= r1; row++ {
		base := row * g.cols
		for col := c0; col <= c1; col++ {
			for _, idx := range g.buckets[base+col] {
				if g.points[idx].Dist2(d.Center) <= rr {
					dst = append(dst, idx)
				}
			}
		}
	}
	return dst
}
