package model

import (
	"testing"

	"rfidsched/internal/geom"
	"rfidsched/internal/randx"
)

// Differential tests for the CSR geometry core: every flattened relation and
// the independence bitsets must match the frozen pre-CSR construction
// (reference.go) element for element, on every construction strategy (brute
// pairwise scan, spatial grid, kd-tree).

// genSpreadSystem builds a random deployment of n readers and m tags whose
// interference radii span [base, base*spread] — spread > adjRadiusSpread
// steers buildInterAdj onto the kd-tree path; with spread ~1 the size picks
// the strategy (brute below adjBruteReaders, plane sweep up to
// adjSweepReaders, spatial grid beyond).
func genSpreadSystem(seed uint64, n, m int, spread float64) ([]Reader, []Tag, *System) {
	rng := randx.New(seed)
	readers := make([]Reader, n)
	for i := range readers {
		R := 2 + rng.Float64()*4
		if i == 0 && spread > 1 {
			R *= spread
		}
		readers[i] = Reader{
			Pos:            geom.Pt(rng.Float64()*80, rng.Float64()*80),
			InterferenceR:  R,
			InterrogationR: 0.3*R + rng.Float64()*0.7*R,
		}
	}
	tags := make([]Tag, m)
	for i := range tags {
		tags[i] = Tag{Pos: geom.Pt(rng.Float64()*80, rng.Float64()*80)}
	}
	sys, err := NewSystem(readers, tags)
	if err != nil {
		panic(err)
	}
	return readers, tags, sys
}

func rowsEqual(t *testing.T, what string, u int, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s[%d]: got %v want %v", what, u, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d]: got %v want %v", what, u, got, want)
		}
	}
}

func checkAgainstReference(t *testing.T, readers []Reader, tags []Tag, sys *System) {
	t.Helper()
	ref := BuildReferenceAdjacency(readers, tags)
	for u := 0; u < sys.NumReaders(); u++ {
		rowsEqual(t, "tagsOf", u, sys.TagsOf(u), ref.TagsOf[u])
	}
	for tt := 0; tt < sys.NumTags(); tt++ {
		rowsEqual(t, "readersOf", tt, sys.ReadersOf(tt), ref.ReadersOf[tt])
	}
	out, in := sys.interAdj()
	cov := sys.coverageAdj()
	for u := 0; u < sys.NumReaders(); u++ {
		rowsEqual(t, "interOut", u, out.row(u), ref.InterOut[u])
		rowsEqual(t, "interIn", u, in.row(u), ref.InterIn[u])
		rowsEqual(t, "covAdj", u, cov.row(u), ref.CovAdj[u])
		rowsEqual(t, "nbr", u, sys.CouplingNeighbors(u), ref.Nbr[u])
	}
	// Independence bitsets against the pairwise geometric definition.
	for u := 0; u < sys.NumReaders(); u++ {
		for v := 0; v < sys.NumReaders(); v++ {
			want := u != v && !readers[u].Interferes(readers[v]) && !readers[v].Interferes(readers[u])
			if got := sys.Independent(u, v); got != want {
				t.Fatalf("Independent(%d,%d) = %v, geometric definition says %v", u, v, got, want)
			}
		}
	}
}

func TestCSRMatchesReferenceBrutePath(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		n := 4 + int(seed)*5 // all below adjBruteReaders
		readers, tags, sys := genSpreadSystem(seed, n, 150, 1)
		checkAgainstReference(t, readers, tags, sys)
	}
}

func TestCSRMatchesReferenceSweepPath(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		readers, tags, sys := genSpreadSystem(seed, adjBruteReaders+40, 300, 1)
		checkAgainstReference(t, readers, tags, sys)
	}
}

func TestCSRMatchesReferenceGridPath(t *testing.T) {
	readers, tags, sys := genSpreadSystem(3, adjSweepReaders+60, 300, 1)
	checkAgainstReference(t, readers, tags, sys)
}

func TestCSRMatchesReferenceKDTreePath(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		// One giant radius forces max/median past adjRadiusSpread.
		readers, tags, sys := genSpreadSystem(seed, adjBruteReaders+40, 300, 4*adjRadiusSpread)
		checkAgainstReference(t, readers, tags, sys)
	}
}

func TestCSRTranspose(t *testing.T) {
	// transposeCSR on a hand-built relation: rows must come out ascending.
	c := csr{off: []int32{0, 2, 2, 5}, dat: []int32{1, 0, 2, 0, 1}}
	tr := transposeCSR(c, 3)
	want := [][]int32{{0, 2}, {0, 2}, {2}}
	for i, w := range want {
		rowsEqual(t, "transpose", i, tr.row(i), w)
	}
}

func TestIsFeasibleBitsetSemantics(t *testing.T) {
	_, _, sys := genSpreadSystem(7, 30, 100, 1)
	if sys.IsFeasible([]int{-1, -1}) {
		t.Fatal("duplicate out-of-range entries must be infeasible, not panic")
	}
	if sys.IsFeasible([]int{3, 3}) {
		t.Fatal("duplicate reader must be infeasible")
	}
	if !sys.IsFeasible(nil) {
		t.Fatal("empty set must be feasible")
	}
	// Cross-check every pair against the pairwise definition.
	for u := 0; u < sys.NumReaders(); u++ {
		for v := u + 1; v < sys.NumReaders(); v++ {
			if got, want := sys.IsFeasible([]int{u, v}), sys.Independent(u, v); got != want {
				t.Fatalf("IsFeasible({%d,%d}) = %v, Independent = %v", u, v, got, want)
			}
		}
	}
}
