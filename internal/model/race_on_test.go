//go:build race

package model

// raceEnabled skips the allocation-count assertions under the race detector,
// whose instrumentation allocates on paths that are clean in a normal build.
const raceEnabled = true
