package model

import (
	"testing"

	"rfidsched/internal/geom"
)

// mustSystem builds a system or fails the test.
func mustSystem(t *testing.T, readers []Reader, tags []Tag) *System {
	t.Helper()
	s, err := NewSystem(readers, tags)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return s
}

// figure2System reproduces the example of Figure 2 in the paper: three
// independent readers A(0), B(1), C(2) in a row, five tags, where activating
// all three yields weight 3 but activating only A and C yields weight 4.
func figure2System(t *testing.T) *System {
	readers := []Reader{
		{Pos: geom.Pt(0, 0), InterferenceR: 8, InterrogationR: 6},  // A
		{Pos: geom.Pt(10, 0), InterferenceR: 8, InterrogationR: 6}, // B
		{Pos: geom.Pt(20, 0), InterferenceR: 8, InterrogationR: 6}, // C
	}
	tags := []Tag{
		{Pos: geom.Pt(0, 0)},  // Tag1: A only
		{Pos: geom.Pt(5, 0)},  // Tag2: A and B overlap
		{Pos: geom.Pt(15, 0)}, // Tag3: B and C overlap
		{Pos: geom.Pt(20, 0)}, // Tag4: C only
		{Pos: geom.Pt(10, 0)}, // Tag5: B only
	}
	return mustSystem(t, readers, tags)
}

func TestFigure2Weights(t *testing.T) {
	s := figure2System(t)
	if !s.IsFeasible([]int{0, 1, 2}) {
		t.Fatal("A,B,C should be pairwise independent")
	}
	if w := s.Weight([]int{0, 1, 2}); w != 3 {
		t.Errorf("w({A,B,C}) = %d, want 3", w)
	}
	if w := s.Weight([]int{0, 2}); w != 4 {
		t.Errorf("w({A,C}) = %d, want 4", w)
	}
}

func TestFigure2WeightOfBAlone(t *testing.T) {
	s := figure2System(t)
	if w := s.Weight([]int{1}); w != 3 {
		t.Errorf("w({B}) = %d, want 3 (tags 2,3,5 all singly covered)", w)
	}
}

func TestCoveredMatchesWeight(t *testing.T) {
	s := figure2System(t)
	for _, X := range [][]int{{0}, {1}, {2}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}} {
		w := s.Weight(X)
		cov := s.Covered(X, nil)
		if len(cov) != w {
			t.Errorf("X=%v: weight %d but %d covered tags", X, w, len(cov))
		}
		for _, tg := range cov {
			if s.IsRead(int(tg)) {
				t.Errorf("X=%v: covered tag %d already read", X, tg)
			}
		}
	}
}

func TestWeightIgnoresReadTags(t *testing.T) {
	s := figure2System(t)
	s.MarkRead(0) // Tag1 (A only)
	if w := s.Weight([]int{0, 2}); w != 3 {
		t.Errorf("after reading Tag1, w({A,C}) = %d, want 3", w)
	}
	s.MarkRead(0) // idempotent
	if s.UnreadCount() != 4 {
		t.Errorf("UnreadCount = %d, want 4", s.UnreadCount())
	}
	s.ResetReads()
	if s.UnreadCount() != 5 {
		t.Errorf("after reset UnreadCount = %d", s.UnreadCount())
	}
	if w := s.Weight([]int{0, 2}); w != 4 {
		t.Errorf("after reset w({A,C}) = %d, want 4", w)
	}
}

func TestRTcSuppressesReader(t *testing.T) {
	// B sits inside A's interference disk, so with both active B reads
	// nothing; A is outside B's smaller disk and stays clean.
	readers := []Reader{
		{Pos: geom.Pt(0, 0), InterferenceR: 8, InterrogationR: 3}, // A
		{Pos: geom.Pt(7, 0), InterferenceR: 5, InterrogationR: 3}, // B
	}
	tags := []Tag{
		{Pos: geom.Pt(0, 0)}, // A only
		{Pos: geom.Pt(7, 0)}, // B only
	}
	s := mustSystem(t, readers, tags)
	if s.IsFeasible([]int{0, 1}) {
		t.Fatal("A,B should not be independent (dist 7 <= max(8,5))")
	}
	if w := s.Weight([]int{0, 1}); w != 1 {
		t.Errorf("w({A,B}) = %d, want 1 (only A's tag)", w)
	}
	st := s.Collisions([]int{0, 1})
	if st.RTcReaders != 1 {
		t.Errorf("RTcReaders = %d, want 1", st.RTcReaders)
	}
	if st.WellCovered != 1 {
		t.Errorf("WellCovered = %d, want 1", st.WellCovered)
	}
	if st.RRcTags != 0 {
		t.Errorf("RRcTags = %d, want 0", st.RRcTags)
	}
}

func TestMutualRTcKillsBoth(t *testing.T) {
	readers := []Reader{
		{Pos: geom.Pt(0, 0), InterferenceR: 10, InterrogationR: 2},
		{Pos: geom.Pt(5, 0), InterferenceR: 10, InterrogationR: 2},
	}
	tags := []Tag{{Pos: geom.Pt(0, 0)}, {Pos: geom.Pt(5, 0)}}
	s := mustSystem(t, readers, tags)
	if w := s.Weight([]int{0, 1}); w != 0 {
		t.Errorf("mutually interfering pair has weight %d, want 0", w)
	}
	st := s.Collisions([]int{0, 1})
	if st.RTcReaders != 2 {
		t.Errorf("RTcReaders = %d, want 2", st.RTcReaders)
	}
}

func TestRRcCounting(t *testing.T) {
	s := figure2System(t)
	st := s.Collisions([]int{0, 1, 2})
	if st.RRcTags != 2 { // tags 2 and 3 sit in overlaps
		t.Errorf("RRcTags = %d, want 2", st.RRcTags)
	}
	if st.WellCovered != 3 {
		t.Errorf("WellCovered = %d, want 3", st.WellCovered)
	}
	if st.RTcReaders != 0 {
		t.Errorf("RTcReaders = %d, want 0", st.RTcReaders)
	}
}

func TestMarginalWeight(t *testing.T) {
	s := figure2System(t)
	// Adding B to {A,C} turns tags 2,3 into RRc losses and gains tag 5:
	// 3 - 4 = -1.
	if mw := s.MarginalWeight([]int{0, 2}, 1); mw != -1 {
		t.Errorf("marginal of B to {A,C} = %d, want -1", mw)
	}
	if mw := s.MarginalWeight(nil, 1); mw != 3 {
		t.Errorf("marginal of B to {} = %d, want 3", mw)
	}
}

func TestSingletonWeight(t *testing.T) {
	s := figure2System(t)
	for v := 0; v < 3; v++ {
		if got, want := s.SingletonWeight(v), s.Weight([]int{v}); got != want {
			t.Errorf("SingletonWeight(%d) = %d, Weight = %d", v, got, want)
		}
	}
	s.MarkRead(1)
	for v := 0; v < 3; v++ {
		if got, want := s.SingletonWeight(v), s.Weight([]int{v}); got != want {
			t.Errorf("after read: SingletonWeight(%d) = %d, Weight = %d", v, got, want)
		}
	}
}

func TestIsFeasible(t *testing.T) {
	s := figure2System(t)
	if !s.IsFeasible(nil) {
		t.Error("empty set should be feasible")
	}
	if !s.IsFeasible([]int{1}) {
		t.Error("singleton should be feasible")
	}
	if s.IsFeasible([]int{1, 1}) {
		t.Error("duplicate entries should be infeasible")
	}
}

func TestIndependenceSymmetric(t *testing.T) {
	s := figure2System(t)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if s.Independent(i, j) != s.Independent(j, i) {
				t.Errorf("independence not symmetric for (%d,%d)", i, j)
			}
		}
	}
	if s.Independent(0, 0) {
		t.Error("a reader cannot be independent of itself (distance 0)")
	}
}

func TestCoverageLists(t *testing.T) {
	s := figure2System(t)
	if got := s.TagsOf(0); len(got) != 2 { // tags 0 and 1
		t.Errorf("TagsOf(A) = %v", got)
	}
	if got := s.TagsOf(1); len(got) != 3 { // tags 1(no!), check: B at 10 covers [4,16]: tags 2? positions 5,15,10 -> tags 1,2,4
		_ = got
	}
	// Cross-check tagsOf and readersOf are inverse relations.
	for ri := 0; ri < s.NumReaders(); ri++ {
		for _, tg := range s.TagsOf(ri) {
			found := false
			for _, rr := range s.ReadersOf(int(tg)) {
				if int(rr) == ri {
					found = true
				}
			}
			if !found {
				t.Fatalf("readersOf missing inverse of tagsOf: reader %d tag %d", ri, tg)
			}
		}
	}
	for tg := 0; tg < s.NumTags(); tg++ {
		for _, rr := range s.ReadersOf(tg) {
			found := false
			for _, tt := range s.TagsOf(int(rr)) {
				if int(tt) == tg {
					found = true
				}
			}
			if !found {
				t.Fatalf("tagsOf missing inverse of readersOf: tag %d reader %d", tg, rr)
			}
		}
	}
}

func TestValidationRejectsBadRadii(t *testing.T) {
	_, err := NewSystem([]Reader{{Pos: geom.Pt(0, 0), InterferenceR: 1, InterrogationR: 2}}, nil)
	if err == nil {
		t.Error("interrogation > interference accepted")
	}
	_, err = NewSystem([]Reader{{Pos: geom.Pt(0, 0), InterferenceR: 1, InterrogationR: 0}}, nil)
	if err == nil {
		t.Error("zero interrogation radius accepted")
	}
}

func TestCoverableCounts(t *testing.T) {
	readers := []Reader{{Pos: geom.Pt(0, 0), InterferenceR: 2, InterrogationR: 1}}
	tags := []Tag{
		{Pos: geom.Pt(0, 0)},   // coverable
		{Pos: geom.Pt(50, 50)}, // not coverable
	}
	s := mustSystem(t, readers, tags)
	if s.CoverableCount() != 1 {
		t.Errorf("CoverableCount = %d", s.CoverableCount())
	}
	if s.UnreadCoverableCount() != 1 {
		t.Errorf("UnreadCoverableCount = %d", s.UnreadCoverableCount())
	}
	s.MarkRead(0)
	if s.UnreadCoverableCount() != 0 {
		t.Errorf("after read UnreadCoverableCount = %d", s.UnreadCoverableCount())
	}
}

func TestCloneIsolation(t *testing.T) {
	s := figure2System(t)
	c := s.Clone()
	s.MarkRead(0)
	if c.IsRead(0) {
		t.Error("clone shares read state")
	}
	if c.UnreadCount() != 5 || s.UnreadCount() != 4 {
		t.Errorf("unread counts: clone %d orig %d", c.UnreadCount(), s.UnreadCount())
	}
	// Clone must produce identical weights on identical state.
	c.MarkRead(0)
	for _, X := range [][]int{{0}, {0, 1, 2}, {0, 2}} {
		if s.Weight(X) != c.Weight(X) {
			t.Errorf("weight mismatch on %v", X)
		}
	}
}

func TestEmptySystem(t *testing.T) {
	s := mustSystem(t, nil, nil)
	if s.Weight([]int{}) != 0 {
		t.Error("empty weight nonzero")
	}
	if s.NumReaders() != 0 || s.NumTags() != 0 {
		t.Error("empty system has elements")
	}
	_ = s.Bounds()
	_ = s.String()
}

func TestWeightOutOfRangeIndices(t *testing.T) {
	s := figure2System(t)
	// Defensive: invalid indices contribute nothing rather than panicking.
	if w := s.Weight([]int{-1, 99, 0}); w != s.Weight([]int{0}) {
		t.Error("out-of-range indices changed weight")
	}
}

func TestReaderAccessors(t *testing.T) {
	s := figure2System(t)
	r := s.Reader(1)
	if r.ID != 1 {
		t.Errorf("reader ID = %d", r.ID)
	}
	if d := r.InterferenceDisk(); d.R != 8 {
		t.Errorf("interference disk radius = %v", d.R)
	}
	if d := r.InterrogationDisk(); d.R != 6 {
		t.Errorf("interrogation disk radius = %v", d.R)
	}
	if !r.Covers(geom.Pt(10, 5)) || r.Covers(geom.Pt(10, 7)) {
		t.Error("Covers wrong")
	}
	tg := s.Tag(2)
	if tg.ID != 2 {
		t.Errorf("tag ID = %d", tg.ID)
	}
	if len(s.Readers()) != 3 || len(s.Tags()) != 5 {
		t.Error("slice accessors wrong")
	}
}

func TestSchedulerFunc(t *testing.T) {
	f := Func{SchedName: "test", F: func(sys *System) ([]int, error) { return []int{0}, nil }}
	if f.Name() != "test" {
		t.Error("Func.Name")
	}
	s := figure2System(t)
	X, err := f.OneShot(s)
	if err != nil || len(X) != 1 {
		t.Errorf("Func.OneShot = %v, %v", X, err)
	}
}

func TestReaderDownMask(t *testing.T) {
	s := figure2System(t)

	// Baseline: everything up.
	if s.DownReaders() != 0 || s.ReaderDown(1) {
		t.Fatal("fresh system has down readers")
	}
	if n := s.UnreadCoverableCount(); n != 5 {
		t.Fatalf("coverable = %d, want 5", n)
	}

	// Fail B (reader 1): it stops reading, interfering and counting.
	s.SetReaderDown(1, true)
	if !s.ReaderDown(1) || s.DownReaders() != 1 {
		t.Fatal("mask not set")
	}
	if w := s.SingletonWeight(1); w != 0 {
		t.Errorf("down reader singleton weight = %d, want 0", w)
	}
	// With B silent, {A,B,C} behaves exactly like {A,C}: the overlap tags
	// 2 and 3 become singly covered.
	if w := s.Weight([]int{0, 1, 2}); w != 4 {
		t.Errorf("w({A,B,C}) with B down = %d, want 4", w)
	}
	col := s.Collisions([]int{0, 1, 2})
	if col.WellCovered != 4 || col.RTcReaders != 0 {
		t.Errorf("collisions with B down: %+v", col)
	}
	// Tag5 is covered only by B, so it drops out of the coverable count.
	if n := s.UnreadCoverableCount(); n != 4 {
		t.Errorf("coverable with B down = %d, want 4", n)
	}

	// The mask survives Clone and double-set is idempotent.
	c := s.Clone()
	if !c.ReaderDown(1) || c.DownReaders() != 1 {
		t.Error("clone lost the down mask")
	}
	s.SetReaderDown(1, true)
	if s.DownReaders() != 1 {
		t.Error("idempotent set miscounted")
	}

	// Recovery restores the original weights.
	s.SetReaderDown(1, false)
	if s.DownReaders() != 0 {
		t.Error("mask not cleared")
	}
	if w := s.Weight([]int{0, 1, 2}); w != 3 {
		t.Errorf("w({A,B,C}) after recovery = %d, want 3", w)
	}
	if n := s.UnreadCoverableCount(); n != 5 {
		t.Errorf("coverable after recovery = %d, want 5", n)
	}
}

func TestDownReaderCausesNoInterference(t *testing.T) {
	// D and E interfere (distance 5 < R=8). With both active nothing is
	// well-covered; with E down, D reads its tags unmolested.
	readers := []Reader{
		{Pos: geom.Pt(0, 0), InterferenceR: 8, InterrogationR: 6}, // D
		{Pos: geom.Pt(5, 0), InterferenceR: 8, InterrogationR: 6}, // E
	}
	tags := []Tag{
		{Pos: geom.Pt(-4, 0)}, // D only
		{Pos: geom.Pt(0, 0)},  // D and E
	}
	s := mustSystem(t, readers, tags)
	if w := s.Weight([]int{0, 1}); w != 0 {
		t.Fatalf("w({D,E}) = %d, want 0 (mutual RTc)", w)
	}
	s.SetReaderDown(1, true)
	if w := s.Weight([]int{0, 1}); w != 2 {
		t.Errorf("w({D,E}) with E down = %d, want 2 (no interference from dead radio)", w)
	}
}
