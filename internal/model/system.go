package model

import (
	"fmt"
	"math"

	"rfidsched/internal/geom"
)

// System is an immutable deployment (readers + tags + precomputed coverage
// lists) plus the mutable unread-tag state that evolves as a covering
// schedule runs. The geometry never changes after construction; only the
// read/unread flags do. A System is not safe for concurrent mutation; use
// Clone to give each goroutine its own read-state.
type System struct {
	readers []Reader
	tags    []Tag

	// tagsOf.row(i) lists tag indices inside reader i's interrogation
	// region, sorted ascending. readersOf.row(t) lists reader indices whose
	// interrogation region contains tag t, sorted ascending. Both are CSR
	// relations (one flat backing array each) shared by all clones.
	tagsOf    csr
	readersOf csr

	read        []bool
	unreadCount int

	// down marks readers that have failed (crashed hardware, switched off):
	// a down reader neither reads tags nor interferes, and tags only it
	// covers stop counting as coverable. nil means every reader is up. The
	// mask is driven by the fault-injection layers (core.RunMCS repair
	// mode, slotsim) and may change slot to slot.
	down      []bool
	downCount int

	// unreadOf[v] counts the unread tags inside reader v's interrogation
	// region, maintained on MarkRead/ResetReads so SingletonWeight is O(1).
	unreadOf []int32

	// scratch buffers for Weight; see weight.go. clean is the cleanMask
	// scratch: all-false outside a weightAndCovered/Collisions call, so
	// Weight allocates nothing at steady state.
	coverCount []int32
	coverOwner []int32
	touched    []int32
	clean      []bool

	// pooled marks a clone obtained from ClonePooled; Release only recycles
	// such clones (see pool.go).
	pooled bool

	// adj caches interference/coverage adjacency shared by all clones (the
	// geometry is immutable); see weighteval.go.
	adj *adjCache

	// evals are the attached incremental evaluators, notified on read-state
	// and down-mask transitions; see weighteval.go. Not carried by Clone.
	evals []*WeightEval
}

// NewSystem builds a system from readers and tags, precomputing coverage
// lists with a spatial index. Reader and tag IDs are reassigned to their
// slice indices so the rest of the codebase can use indices and IDs
// interchangeably. It returns an error if any reader violates the radius
// invariants.
func NewSystem(readers []Reader, tags []Tag) (*System, error) {
	rs := make([]Reader, len(readers))
	copy(rs, readers)
	for i := range rs {
		rs[i].ID = i
		if err := rs[i].Validate(); err != nil {
			return nil, err
		}
	}
	ts := make([]Tag, len(tags))
	copy(ts, tags)
	// One pass re-IDs the tags and extracts the grid points — the tag slice
	// is the hot construction input (tens of KB), so fusing the passes keeps
	// it in cache.
	pts := make([]geom.Point, len(ts))
	for i := range ts {
		ts[i].ID = i
		pts[i] = ts[i].Pos
	}

	s := &System{
		readers:     rs,
		tags:        ts,
		tagsOf:      emptyCSR(len(rs)),
		readersOf:   emptyCSR(len(ts)),
		read:        make([]bool, len(ts)),
		unreadCount: len(ts),
		unreadOf:    make([]int32, len(rs)),
		adj:         &adjCache{},
	}

	if len(ts) > 0 {
		cell := medianRadius(rs, func(r Reader) float64 { return r.InterrogationR })
		idx := geom.NewSpatialGrid(pts, cell)
		// tagsOf rows are filled in reader order straight into the packed
		// array, in whatever order the grid yields; both relations then come
		// out ascending through transposition alone (the transpose scatter
		// scans rows in order, so ITS rows are ascending — transposing twice
		// sorts every row without a single comparison sort).
		off := make([]int32, len(rs)+1)
		dat := make([]int32, 0, len(ts))
		for i, r := range rs {
			dat = idx.QueryDisk(r.InterrogationDisk(), dat)
			off[i+1] = int32(len(dat))
		}
		s.readersOf = transposeCSR(csr{off: off, dat: dat}, len(ts))
		s.tagsOf = transposeCSR(s.readersOf, len(rs))
		for i := range rs {
			s.unreadOf[i] = int32(s.tagsOf.rowLen(i))
		}
	}
	return s, nil
}

// medianRadius returns the median of the given radius over rs, falling back
// to 1 for degenerate inputs — the cell-size heuristic for both spatial
// grids (tag coverage uses interrogation radii, reader adjacency uses
// interference radii).
func medianRadius(rs []Reader, radius func(Reader) float64) float64 {
	if len(rs) == 0 {
		return 1
	}
	radii := make([]float64, len(rs))
	for i, r := range rs {
		radii[i] = radius(r)
	}
	m := selectKth(radii, len(radii)/2)
	if m <= 0 {
		return 1
	}
	return m
}

// selectKth returns the k-th smallest element of a (0-based), reordering a in
// place: Hoare quickselect with a middle pivot, expected O(n) versus the full
// sort it replaced on the construction path. The k-th order statistic is the
// same value whichever algorithm finds it, so the grid cell sizes — and
// therefore every derived structure — are unchanged.
func selectKth(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		p := a[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return a[k]
		}
	}
	return a[k]
}

// NumReaders returns the number of readers.
func (s *System) NumReaders() int { return len(s.readers) }

// NumTags returns the number of tags.
func (s *System) NumTags() int { return len(s.tags) }

// Reader returns reader i by value.
func (s *System) Reader(i int) Reader { return s.readers[i] }

// Readers returns the reader slice. Callers must not mutate it.
func (s *System) Readers() []Reader { return s.readers }

// Tag returns tag t by value.
func (s *System) Tag(t int) Tag { return s.tags[t] }

// Tags returns the tag slice. Callers must not mutate it.
func (s *System) Tags() []Tag { return s.tags }

// TagsOf returns the sorted indices of tags inside reader i's interrogation
// region (read and unread alike). Callers must not mutate the slice.
func (s *System) TagsOf(i int) []int32 { return s.tagsOf.row(i) }

// ReadersOf returns the sorted indices of readers covering tag t. Callers
// must not mutate the slice.
func (s *System) ReadersOf(t int) []int32 { return s.readersOf.row(t) }

// Independent reports whether readers i and j are independent (Def. 2).
// The answer is a word test against the precomputed independence bitsets
// (built lazily from the interference adjacency, shared by all clones), so
// feasibility pruning loops pay no distance math.
func (s *System) Independent(i, j int) bool {
	row := s.conflictRow(i)
	return row[uint(j)>>6]&(1<<(uint(j)&63)) == 0
}

// IsFeasible reports whether X (reader indices) is a feasible scheduling
// set: pairwise independent per Definition 2. Each pair costs one word-AND
// against the conflict bitsets instead of distance math.
func (s *System) IsFeasible(X []int) bool {
	for a := 0; a < len(X); a++ {
		var row []uint64
		for b := a + 1; b < len(X); b++ {
			if X[a] == X[b] {
				return false // duplicate activation is not a set
			}
			if row == nil {
				row = s.conflictRow(X[a])
			}
			v := uint(X[b])
			if row[v>>6]&(1<<(v&63)) != 0 {
				return false
			}
		}
	}
	return true
}

// IsRead reports whether tag t has already been served.
func (s *System) IsRead(t int) bool { return s.read[t] }

// UnreadCount returns the number of tags not yet served.
func (s *System) UnreadCount() int { return s.unreadCount }

// MarkRead marks tag t as served. Marking an already-read tag is a no-op.
func (s *System) MarkRead(t int) {
	if !s.read[t] {
		s.read[t] = true
		s.unreadCount--
		for _, r := range s.readersOf.row(t) {
			s.unreadOf[r]--
		}
		for _, e := range s.evals {
			e.onTagRead(t)
		}
	}
}

// ResetReads marks every tag unread again, e.g. between experiment trials.
func (s *System) ResetReads() {
	for i := range s.read {
		s.read[i] = false
	}
	s.unreadCount = len(s.tags)
	for i := range s.unreadOf {
		s.unreadOf[i] = int32(s.tagsOf.rowLen(i))
	}
	for _, e := range s.evals {
		e.onResetReads()
	}
}

// SetReaderDown marks reader i as failed (down=true) or restores it. Down
// readers do not transmit: they serve no tags, cause no interference, have
// zero singleton weight, and drop out of coverability counts. The mask is
// how the fault-aware drivers re-plan on the surviving subgraph.
func (s *System) SetReaderDown(i int, down bool) {
	if down && s.down == nil {
		s.down = make([]bool, len(s.readers))
	}
	if s.down == nil || s.down[i] == down {
		return
	}
	s.down[i] = down
	if down {
		s.downCount++
	} else {
		s.downCount--
	}
	for _, e := range s.evals {
		e.onReaderDown(i, down)
	}
}

// attach registers an incremental evaluator for state-change notifications.
func (s *System) attach(e *WeightEval) { s.evals = append(s.evals, e) }

// detach unregisters an evaluator (swap-remove; order is irrelevant).
func (s *System) detach(e *WeightEval) {
	for i, x := range s.evals {
		if x == e {
			last := len(s.evals) - 1
			s.evals[i] = s.evals[last]
			s.evals[last] = nil
			s.evals = s.evals[:last]
			return
		}
	}
}

// ReaderDown reports whether reader i is currently marked failed.
func (s *System) ReaderDown(i int) bool { return s.down != nil && s.down[i] }

// DownReaders returns how many readers are currently marked failed.
func (s *System) DownReaders() int { return s.downCount }

// isDown is the hot-path mask check (nil mask = all up).
func (s *System) isDown(i int) bool { return s.down != nil && s.down[i] }

// UnreadCoverableCount returns the number of unread tags that at least one
// live reader can interrogate. Tags outside every interrogation region (or
// covered only by down readers) can never be read; a covering schedule
// terminates when this reaches zero.
func (s *System) UnreadCoverableCount() int {
	n := 0
	for t := range s.tags {
		if s.read[t] {
			continue
		}
		if s.downCount == 0 {
			if s.readersOf.rowLen(t) > 0 {
				n++
			}
			continue
		}
		for _, r := range s.readersOf.row(t) {
			if !s.down[r] {
				n++
				break
			}
		}
	}
	return n
}

// CoverableCount returns the number of tags (read or not) covered by at
// least one reader.
func (s *System) CoverableCount() int {
	n := 0
	for t := range s.tags {
		if s.readersOf.rowLen(t) > 0 {
			n++
		}
	}
	return n
}

// Clone returns a deep copy sharing the immutable geometry (including the
// lazily-built adjacency cache) but owning its own read-state and scratch
// buffers, so clones can run on separate goroutines. Attached WeightEvals
// are not carried over: an evaluator observes exactly one System.
func (s *System) Clone() *System {
	c := &System{
		readers:     s.readers,
		tags:        s.tags,
		tagsOf:      s.tagsOf,
		readersOf:   s.readersOf,
		read:        append([]bool(nil), s.read...),
		unreadCount: s.unreadCount,
		down:        append([]bool(nil), s.down...),
		downCount:   s.downCount,
		unreadOf:    append([]int32(nil), s.unreadOf...),
		adj:         s.adj,
	}
	return c
}

// Bounds returns the bounding box of all readers and tags, expanded by the
// largest interference radius, which is a convenient canvas for the PTAS
// scaling step.
func (s *System) Bounds() geom.Rect {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	maxR := 0.0
	for _, r := range s.readers {
		minX = math.Min(minX, r.Pos.X)
		minY = math.Min(minY, r.Pos.Y)
		maxX = math.Max(maxX, r.Pos.X)
		maxY = math.Max(maxY, r.Pos.Y)
		maxR = math.Max(maxR, r.InterferenceR)
	}
	for _, t := range s.tags {
		minX = math.Min(minX, t.Pos.X)
		minY = math.Min(minY, t.Pos.Y)
		maxX = math.Max(maxX, t.Pos.X)
		maxY = math.Max(maxY, t.Pos.Y)
	}
	if len(s.readers) == 0 && len(s.tags) == 0 {
		return geom.R2(0, 0, 1, 1)
	}
	return geom.R2(minX, minY, maxX, maxY).Expand(maxR)
}

// String implements fmt.Stringer with a one-line summary.
func (s *System) String() string {
	return fmt.Sprintf("System{readers=%d tags=%d unread=%d}", len(s.readers), len(s.tags), s.unreadCount)
}
