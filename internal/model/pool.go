package model

// Pooled solve scratch. The steady state of every driver — RunMCS calling a
// scheduler per slot, the parallel branch-and-bound building per-worker
// clones per solve, the serving daemon verifying per request — used to
// allocate a fresh System clone and WeightEval each time, only to drop them
// microseconds later. The pools here recycle both. They live on the
// adjCache, i.e. one pool pair per geometry, which guarantees a recycled
// object always matches the reader/tag counts of the System it is
// reattached to (clones share the adjCache pointer, so a clone's scratch
// returns to the same pool its siblings draw from).
//
// Ownership rules (DESIGN.md §15):
//
//   - ClonePooled hands the caller exclusive ownership of the clone; the
//     caller — and only the caller — returns it with Release, after which
//     the clone must not be touched.
//   - A clone with attached WeightEvals is never recycled: Close every
//     evaluator first (Release quietly refuses otherwise, so a forgotten
//     eval degrades to garbage-collected memory, never to aliased state).
//   - A WeightEval from NewPooledWeightEval is returned by its own Close,
//     which drains the activation set back to zero counters before
//     recycling. Closing is idempotent either way.
//   - Release/Close must not race with in-flight operations on the same
//     object (the System/WeightEval single-goroutine contract already
//     forbids that).

// ClonePooled is Clone backed by the geometry's clone pool: identical
// semantics and bit-identical downstream behavior, but the read/down/scratch
// buffers are recycled from previously Released clones, so per-slot and
// per-request clone churn stops allocating once the pool is warm. Call
// Release when done; a pooled clone that is never Released is simply
// garbage collected.
func (s *System) ClonePooled() *System {
	v := s.adj.clonePool.Get()
	if v == nil {
		c := s.Clone()
		c.pooled = true
		return c
	}
	c := v.(*System)
	c.readers, c.tags = s.readers, s.tags
	c.tagsOf, c.readersOf = s.tagsOf, s.readersOf
	c.adj = s.adj
	c.read = append(c.read[:0], s.read...)
	c.unreadCount = s.unreadCount
	if s.down != nil {
		c.down = append(c.down[:0], s.down...)
	} else {
		c.down = nil
	}
	c.downCount = s.downCount
	c.unreadOf = append(c.unreadOf[:0], s.unreadOf...)
	// coverCount/coverOwner/clean are all-zero and touched empty by the
	// release-time invariant (the weight paths re-zero their scratch on
	// every exit), so only the live state above needs copying.
	c.touched = c.touched[:0]
	c.evals = c.evals[:0]
	c.pooled = true
	return c
}

// Release returns a clone obtained from ClonePooled to its geometry's pool.
// No-op for ordinary Clones, for the original System, for double releases,
// and for clones that still have WeightEvals attached (close them first —
// see the ownership rules above).
func (s *System) Release() {
	if !s.pooled || len(s.evals) != 0 {
		return
	}
	s.pooled = false
	s.adj.clonePool.Put(s)
}

// NewPooledWeightEval is NewWeightEval backed by the geometry's evaluator
// pool: same observable behavior, but the counter slices are recycled from
// previously Closed pooled evaluators. The pool hands back evaluators with
// an empty activation set and all-zero counters (Close drains them), which
// is a valid state for any read/down configuration of sys, so reattachment
// is O(1).
func NewPooledWeightEval(sys *System) *WeightEval {
	if v := sys.adj.evalPool.Get(); v != nil {
		e := v.(*WeightEval)
		e.sys = sys
		e.closed = false
		sys.attach(e)
		return e
	}
	e := NewWeightEval(sys)
	e.pooled = true
	return e
}

// closePooled drains the activation set (driving every counter back to
// zero by exact inverse updates), detaches, and recycles the evaluator.
func (e *WeightEval) closePooled() {
	e.Reset()
	e.closed = true
	pool := &e.sys.adj.evalPool
	e.sys.detach(e)
	e.sys = nil
	pool.Put(e)
}
