package survey

import (
	"testing"

	"rfidsched/internal/core"
	"rfidsched/internal/deploy"
	"rfidsched/internal/geom"
	"rfidsched/internal/graph"
	"rfidsched/internal/model"
)

func paperSystem(t *testing.T, seed uint64) *model.System {
	t.Helper()
	sys, err := deploy.Generate(deploy.Paper(seed, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNoiselessSurveyIsExact(t *testing.T) {
	sys := paperSystem(t, 1)
	est, rep, err := EstimateGraph(sys, Params{ShadowSigma: 0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	truth := graph.FromSystem(sys)
	if rep.FalsePositive != 0 || rep.FalseNegative != 0 {
		t.Errorf("noiseless survey erred: %+v", rep)
	}
	if est.M() != truth.M() {
		t.Errorf("edge counts differ: est %d true %d", est.M(), truth.M())
	}
	for i := 0; i < truth.N(); i++ {
		for j := i + 1; j < truth.N(); j++ {
			if est.HasEdge(i, j) != truth.HasEdge(i, j) {
				t.Fatalf("edge (%d,%d) mismatch", i, j)
			}
		}
	}
	if rep.Precision() != 1 || rep.Recall() != 1 {
		t.Errorf("precision %v recall %v", rep.Precision(), rep.Recall())
	}
}

func TestNoisySurveyStillGoodOnAverage(t *testing.T) {
	sys := paperSystem(t, 3)
	_, rep, err := EstimateGraph(sys, Params{ShadowSigma: 2, Samples: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Precision() < 0.8 {
		t.Errorf("precision %v too low for sigma=2", rep.Precision())
	}
	if rep.Recall() < 0.8 {
		t.Errorf("recall %v too low for sigma=2", rep.Recall())
	}
}

func TestMoreNoiseMoreErrors(t *testing.T) {
	sys := paperSystem(t, 5)
	_, low, err := EstimateGraph(sys, Params{ShadowSigma: 1, Samples: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	_, high, err := EstimateGraph(sys, Params{ShadowSigma: 8, Samples: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	lowErr := low.FalsePositive + low.FalseNegative
	highErr := high.FalsePositive + high.FalseNegative
	if highErr <= lowErr {
		t.Errorf("sigma=8 errors (%d) not above sigma=1 errors (%d)", highErr, lowErr)
	}
}

func TestMarginImprovesRecall(t *testing.T) {
	sys := paperSystem(t, 7)
	_, plain, err := EstimateGraph(sys, Params{ShadowSigma: 4, Samples: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, margined, err := EstimateGraph(sys, Params{ShadowSigma: 4, Samples: 2, Seed: 8, Margin: 10})
	if err != nil {
		t.Fatal(err)
	}
	if margined.Recall() < plain.Recall() {
		t.Errorf("margin reduced recall: %v -> %v", plain.Recall(), margined.Recall())
	}
	if margined.FalseNegative > plain.FalseNegative {
		t.Errorf("margin increased false negatives")
	}
}

func TestMoreSamplesFewerErrors(t *testing.T) {
	sys := paperSystem(t, 9)
	errAt := func(samples int) int {
		_, rep, err := EstimateGraph(sys, Params{ShadowSigma: 6, Samples: samples, Seed: 10})
		if err != nil {
			t.Fatal(err)
		}
		return rep.FalsePositive + rep.FalseNegative
	}
	if e64, e1 := errAt(64), errAt(1); e64 > e1 {
		t.Errorf("64-sample errors (%d) exceed 1-sample errors (%d)", e64, e1)
	}
}

// A schedule computed by Algorithm 2 on a conservative (high-recall) survey
// graph must be feasible in the true system whenever the survey missed no
// true edge.
func TestConservativeGraphYieldsTrulyFeasibleSchedule(t *testing.T) {
	sys := paperSystem(t, 11)
	est, rep, err := EstimateGraph(sys, Params{ShadowSigma: 3, Samples: 4, Seed: 12, Margin: 15})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FalseNegative != 0 {
		t.Skipf("margin did not fully cover: %d false negatives", rep.FalseNegative)
	}
	X, err := core.NewGrowth(est, 1.25).OneShot(sys)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.IsFeasible(X) {
		t.Fatal("schedule from conservative survey graph infeasible in truth")
	}
}

func TestColocatedReadersAlwaysInterfere(t *testing.T) {
	readers := []model.Reader{
		{Pos: geom.Pt(5, 5), InterferenceR: 2, InterrogationR: 1},
		{Pos: geom.Pt(5, 5), InterferenceR: 2, InterrogationR: 1},
	}
	sys, err := model.NewSystem(readers, nil)
	if err != nil {
		t.Fatal(err)
	}
	est, _, err := EstimateGraph(sys, Params{ShadowSigma: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !est.HasEdge(0, 1) {
		t.Error("co-located readers not connected")
	}
}

func TestDefaults(t *testing.T) {
	p := Params{}.Defaults()
	if p.PathLossExp != 3 || p.RefLoss != 40 || p.Samples != 8 || p.Threshold != -70 {
		t.Errorf("defaults: %+v", p)
	}
	// Explicit values survive.
	q := Params{PathLossExp: 2.5, Samples: 3}.Defaults()
	if q.PathLossExp != 2.5 || q.Samples != 3 {
		t.Errorf("explicit values clobbered: %+v", q)
	}
}

func TestReportEdgeCases(t *testing.T) {
	r := Report{}
	if r.Precision() != 1 || r.Recall() != 1 {
		t.Error("empty report should have perfect precision/recall")
	}
	r = Report{TruePositive: 3, FalsePositive: 1, FalseNegative: 1}
	if r.Precision() != 0.75 {
		t.Errorf("precision = %v", r.Precision())
	}
	if r.Recall() != 0.75 {
		t.Errorf("recall = %v", r.Recall())
	}
}
