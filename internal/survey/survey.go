// Package survey simulates the RF site survey the paper invokes (Section V,
// footnote 1: "This can be done by a RF site survey using a localization
// device and radio signal strength measurement device") to obtain the
// interference graph without knowing reader coordinates.
//
// Physical model: log-distance path loss with log-normal shadowing,
//
//	RSS(d) = P_tx - PL0 - 10·α·log10(d/1m) + N(0, σ)
//
// Each reader's transmit power is calibrated so its signal crosses the
// interference threshold exactly at its interference radius R_i; the survey
// then measures each directed link with K samples and declares "j is inside
// i's interference region" when the averaged RSS clears the threshold. With
// σ = 0 the estimated graph equals the true interference graph; with noise
// the graph has missing/extra edges, which is precisely the regime
// Algorithms 2 and 3 must tolerate. A positive Margin makes the survey
// conservative (extra edges): a schedule feasible on a conservative graph
// is feasible in the real system, trading throughput for safety.
package survey

import (
	"math"

	"rfidsched/internal/graph"
	"rfidsched/internal/model"
	"rfidsched/internal/randx"
)

// Params configures the survey.
type Params struct {
	// PathLossExp is the path-loss exponent α (2 = free space, 3-4 = indoor
	// clutter). Default 3.
	PathLossExp float64
	// RefLoss is PL0, the loss at 1 m in dB. Default 40.
	RefLoss float64
	// ShadowSigma is the log-normal shadowing std-dev in dB. Default 2.
	ShadowSigma float64
	// Samples is the number of RSS measurements averaged per directed link.
	// Default 8.
	Samples int
	// Threshold is the interference RSS threshold in dBm. Default -70.
	Threshold float64
	// Margin (dB) biases the edge decision: positive values declare edges
	// that are Margin below the threshold, over-approximating interference.
	Margin float64
	// Seed drives the shadowing noise.
	Seed uint64
}

// Defaults fills zero fields with the documented defaults.
func (p Params) Defaults() Params {
	if p.PathLossExp == 0 {
		p.PathLossExp = 3
	}
	if p.RefLoss == 0 {
		p.RefLoss = 40
	}
	if p.Samples <= 0 {
		p.Samples = 8
	}
	if p.Threshold == 0 {
		p.Threshold = -70
	}
	return p
}

// Report compares the estimated graph with the true interference graph.
type Report struct {
	TruePositive  int // edges present in both
	FalsePositive int // estimated edges absent from the true graph
	FalseNegative int // true edges the survey missed
	TrueNegative  int // non-edges in both
}

// Precision returns TP/(TP+FP), or 1 if no edges were estimated.
func (r Report) Precision() float64 {
	if r.TruePositive+r.FalsePositive == 0 {
		return 1
	}
	return float64(r.TruePositive) / float64(r.TruePositive+r.FalsePositive)
}

// Recall returns TP/(TP+FN), or 1 if the true graph has no edges.
func (r Report) Recall() float64 {
	if r.TruePositive+r.FalseNegative == 0 {
		return 1
	}
	return float64(r.TruePositive) / float64(r.TruePositive+r.FalseNegative)
}

// EstimateGraph runs the survey over every reader pair and returns the
// estimated interference graph plus an accuracy report against the true
// geometry.
func EstimateGraph(sys *model.System, p Params) (*graph.Graph, Report, error) {
	p = p.Defaults()
	rng := randx.New(p.Seed)
	n := sys.NumReaders()

	var edges [][2]int
	var rep Report
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			est := p.linkCovered(sys, i, j, rng) || p.linkCovered(sys, j, i, rng)
			truth := !sys.Independent(i, j)
			switch {
			case est && truth:
				rep.TruePositive++
			case est && !truth:
				rep.FalsePositive++
			case !est && truth:
				rep.FalseNegative++
			default:
				rep.TrueNegative++
			}
			if est {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	g, err := graph.New(n, edges)
	if err != nil {
		return nil, rep, err
	}
	return g, rep, nil
}

// linkCovered measures the directed link i -> j: is reader j inside reader
// i's interference region according to averaged RSS samples?
func (p Params) linkCovered(sys *model.System, i, j int, rng *randx.RNG) bool {
	ri := sys.Reader(i)
	d := ri.Pos.Dist(sys.Reader(j).Pos)
	if d < 1e-9 {
		return true // co-located readers always interfere
	}
	// Calibrated transmit power: RSS(R_i) == Threshold when σ = 0.
	ptx := p.Threshold + p.RefLoss + 10*p.PathLossExp*math.Log10(math.Max(ri.InterferenceR, 1e-9))
	mean := ptx - p.RefLoss - 10*p.PathLossExp*math.Log10(d)
	if p.ShadowSigma > 0 {
		noise := 0.0
		for s := 0; s < p.Samples; s++ {
			noise += rng.NormalMS(0, p.ShadowSigma)
		}
		mean += noise / float64(p.Samples)
	}
	return mean+p.Margin >= p.Threshold
}
