package mwfs

import (
	"testing"

	"rfidsched/internal/deploy"
	"rfidsched/internal/geom"
	"rfidsched/internal/model"
)

func figure2System(t *testing.T) *model.System {
	t.Helper()
	readers := []model.Reader{
		{Pos: geom.Pt(0, 0), InterferenceR: 8, InterrogationR: 6},
		{Pos: geom.Pt(10, 0), InterferenceR: 8, InterrogationR: 6},
		{Pos: geom.Pt(20, 0), InterferenceR: 8, InterrogationR: 6},
	}
	tags := []model.Tag{
		{Pos: geom.Pt(0, 0)},
		{Pos: geom.Pt(5, 0)},
		{Pos: geom.Pt(15, 0)},
		{Pos: geom.Pt(20, 0)},
		{Pos: geom.Pt(10, 0)},
	}
	s, err := model.NewSystem(readers, tags)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSolveFigure2(t *testing.T) {
	s := figure2System(t)
	res := Solve(s, []int{0, 1, 2}, Options{})
	if !res.Exact {
		t.Error("tiny instance should solve exactly")
	}
	if res.Weight != 4 {
		t.Errorf("optimal weight = %d, want 4 (activate A and C)", res.Weight)
	}
	if len(res.Set) != 2 || res.Set[0] != 0 || res.Set[1] != 2 {
		t.Errorf("optimal set = %v, want [0 2]", res.Set)
	}
}

func TestSolveRespectsReadTags(t *testing.T) {
	s := figure2System(t)
	// Read everything A can see; optimum shifts.
	s.MarkRead(0)
	s.MarkRead(1)
	res := Solve(s, []int{0, 1, 2}, Options{})
	// Remaining unread: tags 2(B,C overlap),3(C),4(B).
	// {B,C}: tag2 overlap lost, 3 and 4 covered -> 2. {B}: 2,4 -> 2.
	// {C}: 2,3 -> 2. {A,C} -> 2. Optimum 2.
	if res.Weight != 2 {
		t.Errorf("weight = %d, want 2", res.Weight)
	}
}

func TestSolveEmptyCandidates(t *testing.T) {
	s := figure2System(t)
	res := Solve(s, nil, Options{})
	if res.Weight != 0 || len(res.Set) != 0 || !res.Exact {
		t.Errorf("empty candidates: %+v", res)
	}
}

func TestSolveSingleton(t *testing.T) {
	s := figure2System(t)
	res := Solve(s, []int{1}, Options{})
	if res.Weight != 3 || len(res.Set) != 1 || res.Set[0] != 1 {
		t.Errorf("singleton solve: %+v", res)
	}
}

func TestSolveIgnoresInvalidCandidates(t *testing.T) {
	s := figure2System(t)
	res := Solve(s, []int{-3, 0, 2, 99}, Options{})
	if res.Weight != 4 {
		t.Errorf("weight = %d, want 4", res.Weight)
	}
}

func TestSolveOutputFeasible(t *testing.T) {
	sys, err := deploy.Generate(deploy.Paper(3, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	cands := make([]int, 20)
	for i := range cands {
		cands[i] = i
	}
	res := Solve(sys, cands, Options{})
	if !sys.IsFeasible(res.Set) {
		t.Fatalf("solver returned infeasible set %v", res.Set)
	}
	if got := sys.Weight(res.Set); got != res.Weight {
		t.Errorf("reported weight %d != recomputed %d", res.Weight, got)
	}
}

// Brute force over all subsets must agree with branch and bound.
func TestSolveMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := deploy.Config{
			Seed: seed, NumReaders: 10, NumTags: 120, Side: 40,
			LambdaR: 10, LambdaSmallR: 5,
		}
		sys, err := deploy.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cands := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
		res := Solve(sys, cands, Options{})

		bestW := 0
		for mask := 0; mask < 1<<10; mask++ {
			var set []int
			for b := 0; b < 10; b++ {
				if mask&(1<<b) != 0 {
					set = append(set, b)
				}
			}
			if !sys.IsFeasible(set) {
				continue
			}
			if w := sys.Weight(set); w > bestW {
				bestW = w
			}
		}
		if res.Weight != bestW {
			t.Errorf("seed %d: B&B weight %d, brute force %d", seed, res.Weight, bestW)
		}
	}
}

func TestSolveNodeCap(t *testing.T) {
	sys, err := deploy.Generate(deploy.Paper(7, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	cands := make([]int, sys.NumReaders())
	for i := range cands {
		cands[i] = i
	}
	res := Solve(sys, cands, Options{MaxNodes: 50})
	if res.Exact {
		t.Error("node cap of 50 on a 50-reader instance should truncate")
	}
	if !sys.IsFeasible(res.Set) {
		t.Error("truncated result infeasible")
	}
}

func TestSolveDeterministic(t *testing.T) {
	sys, err := deploy.Generate(deploy.Paper(9, 12, 5))
	if err != nil {
		t.Fatal(err)
	}
	cands := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	a := Solve(sys, cands, Options{})
	b := Solve(sys, cands, Options{})
	if a.Weight != b.Weight || len(a.Set) != len(b.Set) {
		t.Fatal("solver not deterministic")
	}
	for i := range a.Set {
		if a.Set[i] != b.Set[i] {
			t.Fatal("solver set order not deterministic")
		}
	}
}
