package mwfs

import (
	"runtime"
	"testing"

	"rfidsched/internal/deploy"
	"rfidsched/internal/graph"
	"rfidsched/internal/randx"
)

// Determinism property tests for the parallel engine: for any Workers value
// an untruncated Solve must return exactly the sequential Set/Weight/Exact.
// Nodes is excluded — stale incumbent reads legitimately change how much the
// pool prunes (the Options.Workers doc pins this contract).

func samePick(a, b Result) bool {
	if a.Weight != b.Weight || a.Exact != b.Exact || len(a.Set) != len(b.Set) {
		return false
	}
	for i := range a.Set {
		if a.Set[i] != b.Set[i] {
			return false
		}
	}
	return true
}

// TestSolveParallelDeterminism sweeps randomized deployments with read
// churn, fault masks, and committed contexts, and asserts every worker count
// reproduces the sequential reference bit-for-bit.
func TestSolveParallelDeterminism(t *testing.T) {
	workerCounts := []int{0, 1, 2, 8, runtime.NumCPU()}
	for trial := 0; trial < 60; trial++ {
		seed := uint64(8100 + trial)
		rng := randx.New(seed ^ 0xc3c3)
		sys := randomSystem(t, seed, 12+rng.Intn(10), 60+rng.Intn(80))

		for tg := 0; tg < sys.NumTags(); tg++ {
			if rng.Bool(0.25) {
				sys.MarkRead(tg)
			}
		}
		for v := 0; v < sys.NumReaders(); v++ {
			if rng.Bool(0.15) {
				sys.SetReaderDown(v, true)
			}
		}

		var cands, ctx []int
		for v := 0; v < sys.NumReaders(); v++ {
			switch {
			case rng.Bool(0.7):
				cands = append(cands, v)
			case rng.Bool(0.3):
				ctx = append(ctx, v)
			}
		}

		ref := Solve(sys, cands, Options{Context: ctx})
		if !ref.Exact {
			t.Fatalf("trial %d: reference search unexpectedly truncated", trial)
		}
		for _, w := range workerCounts {
			got := Solve(sys, cands, Options{Context: ctx, Workers: w})
			if !samePick(ref, got) {
				t.Fatalf("trial %d: Workers=%d returned %+v, sequential returned %+v",
					trial, w, got, ref)
			}
		}
	}
}

// TestSolveParallelDeterminismDense drives deployments dense enough that
// interference prunes branches INSIDE the frontier depth, over both full
// candidate lists and graph-ball candidate sets as Algorithm 2 issues them.
// Regression test: the subtree search must resume at the frontier depth, not
// at the prefix length — a task prefix holds only the included candidates,
// so the two differ exactly when the frontier region has exclusions, and
// resuming early re-decided already-settled candidates (duplicated readers
// in the returned set, wrong merge winners).
func TestSolveParallelDeterminismDense(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		for _, lambdaR := range []float64{14, 16} {
			sys, err := deploy.Generate(deploy.Config{
				Seed: uint64(10 + trial), NumReaders: 14, NumTags: 150,
				Side: 60, LambdaR: lambdaR, LambdaSmallR: 5,
			})
			if err != nil {
				t.Fatal(err)
			}
			g := graph.FromSystem(sys)

			full := make([]int, sys.NumReaders())
			for i := range full {
				full[i] = i
			}
			// The ball around the max-singleton reader is the candidate set
			// Algorithm 2 actually solves over.
			seedReader, bestW := 0, -1
			for v := 0; v < sys.NumReaders(); v++ {
				if w := sys.SingletonWeight(v); w > bestW {
					seedReader, bestW = v, w
				}
			}
			indep := func(u, v int) bool { return !g.HasEdge(u, v) }
			for _, cands := range [][]int{full, g.Ball(seedReader, 4)} {
				ref := Solve(sys, cands, Options{Independent: indep})
				for _, w := range []int{2, 4, 8} {
					got := Solve(sys, cands, Options{Independent: indep, Workers: w})
					if !samePick(ref, got) {
						t.Fatalf("trial %d lambdaR=%v |cands|=%d: Workers=%d returned %+v, sequential %+v",
							trial, lambdaR, len(cands), w, got, ref)
					}
				}
			}
		}
	}
}

// TestSolveParallelBruteForce pins the parallel engine on the brute-force
// scoring path too (no evaluator, full Weight recompute per node).
func TestSolveParallelBruteForce(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		seed := uint64(9200 + trial)
		sys := randomSystem(t, seed, 13, 90)
		cands := make([]int, sys.NumReaders())
		for i := range cands {
			cands[i] = i
		}
		ref := Solve(sys, cands, Options{BruteForce: true})
		for _, w := range []int{2, 8} {
			got := Solve(sys, cands, Options{BruteForce: true, Workers: w})
			if !samePick(ref, got) {
				t.Fatalf("trial %d: Workers=%d brute %+v != sequential brute %+v",
					trial, w, got, ref)
			}
		}
	}
}

// TestSolveParallelTruncated checks the truncation contract: when MaxNodes
// bites, the parallel anytime best may differ from the sequential one, but it
// must still be a feasible set whose reported weight is its true weight, and
// Exact must be false on both paths.
func TestSolveParallelTruncated(t *testing.T) {
	sys := randomSystem(t, 4242, 18, 140)
	cands := make([]int, sys.NumReaders())
	for i := range cands {
		cands[i] = i
	}
	for _, maxNodes := range []int{40, 150, 300} {
		for _, w := range []int{2, 8} {
			got := Solve(sys, cands, Options{MaxNodes: maxNodes, Workers: w})
			if got.Exact {
				t.Fatalf("maxNodes=%d workers=%d: expected truncation, got Exact=true (nodes=%d)",
					maxNodes, w, got.Nodes)
			}
			for i, u := range got.Set {
				for _, v := range got.Set[i+1:] {
					if !sys.Independent(u, v) {
						t.Fatalf("maxNodes=%d workers=%d: infeasible pair (%d,%d) in %v",
							maxNodes, w, u, v, got.Set)
					}
				}
			}
			if trueW := sys.Weight(got.Set); trueW != got.Weight {
				t.Fatalf("maxNodes=%d workers=%d: reported weight %d, recomputed %d for %v",
					maxNodes, w, got.Weight, trueW, got.Set)
			}
		}
	}
}
