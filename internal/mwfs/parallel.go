package mwfs

// Parallel branch-and-bound (Options.Workers >= 2). The search tree is split
// at a FIXED frontier depth d derived only from the candidate count and the
// worker count — never from timing — so the set of subtree roots is a pure
// function of the instance. The caller's goroutine expands the tree
// breadth-limited to depth d in the exact sequential DFS pre-order
// (include-first), recording two kinds of merge items as it goes:
//
//   - eval items: internal nodes that strictly improved the running best
//     during expansion (their partial set is a candidate answer), and
//   - task items: subtree roots at depth d, handed to the worker pool.
//
// Workers solve subtrees on private System clones (each with its own
// incremental WeightEval), sharing only two atomics: the incumbent bound and
// the global node budget. The incumbent is monotone, so stale reads weaken
// pruning but never soundness; workers prune strictly BELOW it (ub <
// incumbent) — never at equality — because a tie found in an earlier merge
// item must remain discoverable everywhere for the tie-break to match the
// sequential scan.
//
// The deterministic merge then replays the item sequence in order with the
// sequential update rule (strictly greater wins, first achiever kept):
// because items appear in global DFS pre-order and every subtree reports the
// first occurrence of its own maximum, the merged answer is exactly the set
// the sequential search returns — at any worker count, under any
// interleaving. The full argument, including why pruned regions can never
// contain the first achiever of the final weight, is written out in
// DESIGN.md §11.

import (
	"slices"

	"rfidsched/internal/model"
	"rfidsched/internal/parsearch"
)

// frontierDepth returns the fixed split depth: the smallest d whose full
// binary frontier 2^d reaches ~8 subtree roots per worker (feasibility
// pruning thins the real frontier, so this overshoots on purpose), capped so
// the sequential expansion stays trivially cheap.
func frontierDepth(candLen, workers int) int {
	d := 0
	for (1<<d) < 8*workers && d < 14 && d < candLen {
		d++
	}
	return d
}

// task is one frontier subtree root: the include-prefix over cand[0:depth]
// and its (marginal) weight, emitted in global DFS pre-order.
type task struct {
	prefix []int
	w      int
}

// mergeItem is one entry of the deterministic merge sequence. taskIdx >= 0
// refers to a pool task; otherwise the item is an expansion-time candidate
// answer (set, w).
type mergeItem struct {
	taskIdx int
	set     []int
	w       int
}

// taskResult is a worker's answer for one subtree: the first occurrence of
// the subtree's maximum in subtree DFS order (hasBest=false when the budget
// died before the root was even visited).
type taskResult struct {
	set       []int
	w         int
	hasBest   bool
	nodes     int
	truncated bool
}

func solveParallel(sys *model.System, cand, suffix []int, indep func(u, v int) bool, opts Options, maxNodes, workers, depth int) Result {
	// The deadline rides the budget: Reserve polls it once per chunk, so
	// expiry drains every worker through the same monotone "grant = 0"
	// transition as node exhaustion (anytime contract, DESIGN.md §12).
	budget := parsearch.NewBudget(maxNodes).WithDeadline(opts.Deadline)

	// Phase 1: sequential frontier expansion on the caller's goroutine.
	x := &expander{
		sys:    sys,
		indep:  indep,
		cand:   cand,
		suffix: suffix,
		depth:  depth,
		ctx:    opts.Context,
		budget: budget,
	}
	if opts.Independent == nil {
		x.conf, x.confW = sys.ConflictBits()
		x.curBits = make([]uint64, x.confW)
	}
	if opts.BruteForce {
		x.ctxW = sys.Weight(opts.Context)
	} else {
		x.eval = model.NewPooledWeightEval(sys)
		for _, c := range opts.Context {
			x.eval.Add(c)
		}
		x.ctxW = x.eval.Weight()
	}
	x.expand(0, 0)
	if x.eval != nil {
		x.eval.Close()
	}

	// Phase 2: subtree solves on the pool. The incumbent starts at the
	// expansion-time best — every weight it will ever hold has been achieved
	// by some merge item, which is what makes strict-below pruning sound.
	incumbent := parsearch.NewIncumbent(x.bestW)
	results := make([]taskResult, len(x.tasks))
	solvers := make([]*psolver, workers)
	parsearch.ForEach(workers, len(x.tasks), func(worker, ti int) {
		ps := solvers[worker]
		if ps == nil {
			ps = newPSolver(sys, cand, suffix, indep, opts, depth, incumbent, budget)
			solvers[worker] = ps
		}
		results[ti] = ps.solveTask(x.tasks[ti])
		parsearch.RecordSubtreeNodes(results[ti].nodes)
	})
	for _, ps := range solvers {
		if ps != nil {
			ps.close()
		}
	}

	// Phase 3: deterministic merge in item (= DFS pre-order) order, with the
	// sequential update rule: strictly greater wins, first achiever kept.
	best, bestW := []int{}, 0
	nodes := x.nodes
	truncated := x.truncated
	for _, it := range x.items {
		if it.taskIdx < 0 {
			if it.w > bestW {
				best, bestW = it.set, it.w
			}
			continue
		}
		r := results[it.taskIdx]
		nodes += r.nodes
		truncated = truncated || r.truncated
		if r.hasBest && r.w > bestW {
			best, bestW = r.set, r.w
		}
	}

	set := append([]int(nil), best...)
	slices.Sort(set)
	return Result{Set: set, Weight: bestW, Exact: !truncated, TimedOut: budget.TimedOut(), Nodes: nodes}
}

// expander runs the depth-limited sequential DFS that builds the merge-item
// sequence. It mirrors solver.rec exactly on internal nodes; at the split
// depth it emits a task instead of recursing.
type expander struct {
	sys     *model.System
	eval    *model.WeightEval // nil on the brute-force path
	indep   func(u, v int) bool
	conf    []uint64 // conflict bitsets (nil when Options.Independent overrides)
	confW   int
	curBits []uint64
	cand    []int
	suffix  []int
	depth   int
	ctx     []int
	ctxW    int
	budget  *parsearch.Budget

	cur       []int
	bestW     int
	nodes     int
	grant     int
	truncated bool
	items     []mergeItem
	tasks     []task
	scratch   []int
}

func (x *expander) expand(i, curW int) {
	if i == x.depth {
		x.items = append(x.items, mergeItem{taskIdx: len(x.tasks)})
		x.tasks = append(x.tasks, task{prefix: append([]int(nil), x.cur...), w: curW})
		return
	}
	if x.grant == 0 {
		x.grant = x.budget.Reserve(parsearch.BudgetChunk)
		if x.grant == 0 {
			x.truncated = true
			return
		}
	}
	x.grant--
	x.nodes++
	if curW > x.bestW {
		x.bestW = curW
		x.items = append(x.items, mergeItem{taskIdx: -1, set: append([]int(nil), x.cur...), w: curW})
	}
	// Bound: the running expansion best is a lower bound on the sequential
	// best-so-far at this pre-order position, so pruning against it prunes
	// no subtree the sequential search would have kept.
	if curW+x.suffix[i] <= x.bestW {
		return
	}
	v := x.cand[i]
	var feasible bool
	if x.conf != nil {
		feasible = feasibleBits(x.conf, x.confW, v, x.curBits)
	} else {
		feasible = true
		for _, u := range x.cur {
			if !x.indep(u, v) {
				feasible = false
				break
			}
		}
	}
	if feasible {
		x.cur = append(x.cur, v)
		if x.curBits != nil {
			x.curBits[uint(v)>>6] |= 1 << (uint(v) & 63)
		}
		if x.eval != nil {
			x.eval.Add(v)
			x.expand(i+1, x.eval.Weight()-x.ctxW)
			x.eval.Remove(v)
		} else {
			x.expand(i+1, x.marginal())
		}
		if x.curBits != nil {
			x.curBits[uint(v)>>6] &^= 1 << (uint(v) & 63)
		}
		x.cur = x.cur[:len(x.cur)-1]
	}
	x.expand(i+1, curW)
}

func (x *expander) marginal() int {
	x.scratch = x.scratch[:0]
	x.scratch = append(x.scratch, x.cur...)
	x.scratch = append(x.scratch, x.ctx...)
	return x.sys.Weight(x.scratch) - x.ctxW
}

// psolver is one worker's private search state: a System clone (scratch
// buffers and evaluator attachment are per-clone, so workers never touch
// shared mutable memory) plus the chunked view of the global node budget.
type psolver struct {
	sys       *model.System
	eval      *model.WeightEval // nil on the brute-force path
	indep     func(u, v int) bool
	conf      []uint64 // conflict bitsets (nil when Options.Independent overrides)
	confW     int
	curBits   []uint64
	cand      []int
	suffix    []int
	ctx       []int
	ctxW      int
	depth     int
	incumbent *parsearch.Incumbent
	budget    *parsearch.Budget

	cur       []int
	best      []int
	bestW     int
	hasBest   bool
	nodes     int
	grant     int
	truncated bool
	scratch   []int
}

func newPSolver(sys *model.System, cand, suffix []int, indep func(u, v int) bool, opts Options, depth int, incumbent *parsearch.Incumbent, budget *parsearch.Budget) *psolver {
	// Workers draw their private System clone and evaluator from the
	// geometry's pools: per-solve worker setup stops allocating once the
	// pools are warm (close() returns both).
	ps := &psolver{
		sys:       sys.ClonePooled(),
		indep:     indep,
		cand:      cand,
		suffix:    suffix,
		ctx:       opts.Context,
		depth:     depth,
		incumbent: incumbent,
		budget:    budget,
	}
	if opts.Independent == nil {
		ps.conf, ps.confW = ps.sys.ConflictBits()
		ps.curBits = make([]uint64, ps.confW)
	}
	if opts.BruteForce {
		ps.ctxW = ps.sys.Weight(opts.Context)
	} else {
		ps.eval = model.NewPooledWeightEval(ps.sys)
		for _, c := range opts.Context {
			ps.eval.Add(c)
		}
		ps.ctxW = ps.eval.Weight()
	}
	return ps
}

func (ps *psolver) close() {
	if ps.eval != nil {
		ps.eval.Close()
	}
	ps.sys.Release()
}

// solveTask runs the subtree rooted at t: push the prefix, search, pop. The
// search resumes at candidate index ps.depth, NOT len(t.prefix): the prefix
// holds only the candidates the expander INCLUDED among cand[0:depth] —
// exclude branches and infeasible skips make it shorter than the frontier
// depth, and resuming early would re-decide candidates the expander already
// settled (re-including prefix members, re-visiting excluded ones).
func (ps *psolver) solveTask(t task) taskResult {
	ps.cur = append(ps.cur[:0], t.prefix...)
	ps.best = ps.best[:0]
	ps.bestW = 0
	ps.hasBest = false
	ps.nodes = 0
	ps.truncated = false
	if ps.curBits != nil {
		for _, v := range t.prefix {
			ps.curBits[uint(v)>>6] |= 1 << (uint(v) & 63)
		}
	}
	if ps.eval != nil {
		for _, v := range t.prefix {
			ps.eval.Add(v)
		}
	}
	ps.rec(ps.depth, t.w)
	if ps.eval != nil {
		for _, v := range t.prefix {
			ps.eval.Remove(v)
		}
	}
	if ps.curBits != nil {
		for _, v := range t.prefix {
			ps.curBits[uint(v)>>6] &^= 1 << (uint(v) & 63)
		}
	}
	return taskResult{
		set:       append([]int(nil), ps.best...),
		w:         ps.bestW,
		hasBest:   ps.hasBest,
		nodes:     ps.nodes,
		truncated: ps.truncated,
	}
}

// rec is solver.rec with two changes: the local best is root-seeded (the
// subtree must report the first occurrence of its own maximum, and the root
// node is its first node), and the prune bound folds in the shared incumbent
// strictly (ties with an earlier subtree's weight stay explorable so the
// deterministic merge can prefer the earlier achiever).
func (ps *psolver) rec(i, curW int) {
	if ps.grant == 0 {
		ps.grant = ps.budget.Reserve(parsearch.BudgetChunk)
		if ps.grant == 0 {
			ps.truncated = true
			return
		}
	}
	ps.grant--
	ps.nodes++
	if !ps.hasBest || curW > ps.bestW {
		ps.hasBest = true
		ps.bestW = curW
		ps.best = append(ps.best[:0], ps.cur...)
		ps.incumbent.Propose(curW)
	}
	if i >= len(ps.cand) {
		return
	}
	ub := curW + ps.suffix[i]
	if ub <= ps.bestW || ub < ps.incumbent.Get() {
		return
	}
	v := ps.cand[i]
	var feasible bool
	if ps.conf != nil {
		feasible = feasibleBits(ps.conf, ps.confW, v, ps.curBits)
	} else {
		feasible = true
		for _, u := range ps.cur {
			if !ps.indep(u, v) {
				feasible = false
				break
			}
		}
	}
	if feasible {
		ps.cur = append(ps.cur, v)
		if ps.curBits != nil {
			ps.curBits[uint(v)>>6] |= 1 << (uint(v) & 63)
		}
		if ps.eval != nil {
			ps.eval.Add(v)
			ps.rec(i+1, ps.eval.Weight()-ps.ctxW)
			ps.eval.Remove(v)
		} else {
			ps.rec(i+1, ps.marginal())
		}
		if ps.curBits != nil {
			ps.curBits[uint(v)>>6] &^= 1 << (uint(v) & 63)
		}
		ps.cur = ps.cur[:len(ps.cur)-1]
	}
	ps.rec(i+1, curW)
}

func (ps *psolver) marginal() int {
	ps.scratch = ps.scratch[:0]
	ps.scratch = append(ps.scratch, ps.cur...)
	ps.scratch = append(ps.scratch, ps.ctx...)
	return ps.sys.Weight(ps.scratch) - ps.ctxW
}
