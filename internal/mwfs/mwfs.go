// Package mwfs provides an exact branch-and-bound solver for the Maximum
// Weighted Feasible Scheduling set problem (Definition 6) restricted to a
// candidate subset of readers.
//
// It serves three masters:
//
//   - the exact baseline used as ground truth in approximation-ratio tests,
//   - Algorithm 2/3's local computation of Γ_r(v), the MWFS inside the r-hop
//     ball of a seed reader (the paper "computes it by enumeration",
//     justified by the growth-bounded property of interference graphs —
//     balls contain few mutually independent readers), and
//   - ablation benchmarks comparing exact and approximate one-shot weights.
//
// The search orders candidates by decreasing singleton weight and prunes
// with the subadditive bound w(X ∪ S) <= w(X) + Σ_{v∈S} w({v}), which holds
// because a newly activated reader can only create well-covered tags inside
// its own interrogation region.
package mwfs

import (
	"rfidsched/internal/model"
	"rfidsched/internal/parsearch"
)

// Options tunes the search.
type Options struct {
	// MaxNodes caps the number of search-tree nodes; 0 means the default
	// (4M). When the cap is hit the best set found so far is returned with
	// Exact=false in the result.
	MaxNodes int

	// Workers selects the search engine: values below 2 run the sequential
	// reference path (kept for differential tests), higher values fan the
	// branch-and-bound over a worker pool where every worker owns a System
	// clone and incremental evaluator (see parallel.go). For any Workers
	// value an untruncated search returns a bit-identical Result.Set and
	// Weight — the deterministic-merge argument is in DESIGN.md §11 — while
	// Result.Nodes may differ (stale incumbent reads change how much is
	// pruned, never what is returned). When MaxNodes truncates the search,
	// the anytime best may legitimately differ across worker counts; the
	// shared Exact=false flag means the same thing in every mode: the
	// global node allowance ran out before the tree did.
	//
	// Options.Independent must be safe for concurrent calls (a pure
	// function of its arguments, as graph- and geometry-backed predicates
	// are) when Workers >= 2.
	Workers int

	// Independent overrides the feasibility predicate. Algorithms 2 and 3
	// pass graph adjacency here so that feasibility is judged purely from
	// the (possibly survey-estimated) interference graph, never from
	// geometry. Nil means the system's geometric independence (Def. 2).
	Independent func(u, v int) bool

	// Context lists readers already committed to be active elsewhere. The
	// solver then maximizes the MARGINAL weight w(set ∪ Context) -
	// w(Context), so interrogation overlaps between the candidate set and
	// the context are charged to the candidates. Candidates are not
	// required to be independent from the context — feasibility across
	// clusters is the caller's concern (Algorithms 2/3 guarantee it by hop
	// separation); the context only shapes the objective. Context is a set:
	// candidates already present in it are skipped (re-activating a reader
	// is meaningless), and duplicate entries are ignored.
	Context []int

	// BruteForce disables the incremental weight evaluator and scores every
	// search node with a full System.Weight recompute — the pre-evaluator
	// behavior, kept for differential tests and the wbench regression
	// baseline. Results are identical either way; only the cost differs.
	BruteForce bool

	// Deadline is the anytime contract (DESIGN.md §12): the search polls it
	// once per parsearch.BudgetChunk nodes (piggybacked on the chunked
	// budget reservations on the parallel path) and, on expiry, stops
	// expanding and returns the best feasible set found so far with
	// TimedOut set. The empty set is feasible, so even a deadline that is
	// already expired at entry yields a valid (if empty) result, never an
	// error. nil means no deadline. Deterministic truncation is guaranteed
	// only in poll-budget mode with Workers < 2; see parsearch.Deadline.
	Deadline *parsearch.Deadline
}

// Result reports the solved set and search telemetry.
type Result struct {
	Set      []int // reader indices, ascending
	Weight   int
	Exact    bool // false if the node cap or deadline truncated the search
	TimedOut bool // true if Options.Deadline expired mid-search (anytime result)
	Nodes    int  // search nodes expanded (timing-dependent when Workers >= 2)
}

const defaultMaxNodes = 4 << 20

// Solve returns a maximum-weight feasible subset of candidates for the
// current unread-tag state of sys. The candidates slice is not mutated.
func Solve(sys *model.System, candidates []int, opts Options) Result {
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = defaultMaxNodes
	}

	// Order by singleton weight, heaviest first: good solutions early make
	// the bound bite. Candidates already committed in the context cannot
	// contribute (activating a reader twice is not a thing) and are dropped.
	inCtx := make(map[int]bool, len(opts.Context))
	for _, c := range opts.Context {
		inCtx[c] = true
	}
	cand := make([]int, 0, len(candidates))
	for _, v := range candidates {
		if v >= 0 && v < sys.NumReaders() && !inCtx[v] {
			cand = append(cand, v)
		}
	}
	single := make(map[int]int, len(cand))
	for _, v := range cand {
		single[v] = sys.SingletonWeight(v)
	}
	insertionSortBy(cand, func(a, b int) bool {
		if single[a] != single[b] {
			return single[a] > single[b]
		}
		return a < b
	})

	// suffix[i] = sum of singleton weights of cand[i:]; upper bound on any
	// weight still obtainable from the remaining candidates.
	suffix := make([]int, len(cand)+1)
	for i := len(cand) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + single[cand[i]]
	}

	indep := opts.Independent
	if indep == nil {
		indep = sys.Independent
	}

	// Parallel engine: only when a real pool was requested and the frontier
	// split leaves the workers non-trivial subtrees to chew on. A candidate
	// list no deeper than the split depth would put the whole tree inside
	// the (sequential) frontier expansion anyway.
	if workers := parsearch.Normalize(opts.Workers); workers >= 2 {
		if d := frontierDepth(len(cand), workers); len(cand) > d {
			return solveParallel(sys, cand, suffix, indep, opts, maxNodes, workers, d)
		}
	}

	s := &solver{
		sys:      sys,
		indep:    indep,
		cand:     cand,
		suffix:   suffix,
		maxNodes: maxNodes,
		exact:    true,
		ctx:      opts.Context,
		dl:       opts.Deadline,
	}
	if opts.Independent == nil {
		// Geometric feasibility: word-AND against the precomputed conflict
		// bitsets instead of the per-member predicate loop. Identical verdicts
		// (the bitsets are derived from the same Interferes comparisons), so
		// the search trajectory is unchanged.
		s.conf, s.confW = sys.ConflictBits()
		s.curBits = make([]uint64, s.confW)
	}
	if opts.BruteForce {
		s.ctxW = sys.Weight(opts.Context)
	} else {
		// Incremental path: hold cur ∪ ctx in a WeightEval so each
		// include/backtrack is an O(Δ) push/pop instead of a full recompute
		// per node. Weights are bit-identical to the brute force
		// (differentially tested), so the search — and thus Result — is too.
		// The evaluator is pool-recycled: local MWFS runs once per ball per
		// slot, and its counter slices dominate the per-call footprint.
		s.eval = model.NewPooledWeightEval(sys)
		defer s.eval.Close()
		for _, c := range opts.Context {
			s.eval.Add(c)
		}
		s.ctxW = s.eval.Weight()
	}
	s.best = append([]int(nil), s.cur...) // empty set, marginal weight 0
	s.rec(0, 0)

	set := append([]int(nil), s.best...)
	insertionSortBy(set, func(a, b int) bool { return a < b })
	return Result{Set: set, Weight: s.bestW, Exact: s.exact, TimedOut: s.timedOut, Nodes: s.nodes}
}

type solver struct {
	sys      *model.System
	eval     *model.WeightEval // nil on the brute-force path
	indep    func(u, v int) bool
	conf     []uint64 // conflict bitsets (nil when Options.Independent overrides)
	confW    int
	curBits  []uint64 // bitset mirror of cur, maintained by rec
	cand     []int
	suffix   []int
	cur      []int
	curW     int
	best     []int
	bestW    int
	nodes    int
	maxNodes int
	exact    bool
	timedOut bool
	ctx      []int
	ctxW     int
	dl       *parsearch.Deadline
	scratch  []int
}

// marginal returns w(cur ∪ ctx) - w(ctx) for the current partial set.
func (s *solver) marginal() int {
	if len(s.ctx) == 0 {
		return s.sys.Weight(s.cur)
	}
	s.scratch = s.scratch[:0]
	s.scratch = append(s.scratch, s.cur...)
	s.scratch = append(s.scratch, s.ctx...)
	return s.sys.Weight(s.scratch) - s.ctxW
}

func (s *solver) rec(i, curW int) {
	if s.timedOut {
		return
	}
	s.nodes++
	if s.nodes > s.maxNodes {
		s.exact = false
		return
	}
	// Anytime contract: poll the deadline at the budget-chunk cadence (the
	// first node polls too, so an expired-at-entry deadline truncates the
	// search before any expansion). Expiry keeps the incumbent as-is — it
	// is feasible by construction — and unwinds the recursion.
	if s.nodes%parsearch.BudgetChunk == 1 && s.dl.Poll() {
		s.timedOut = true
		s.exact = false
		return
	}
	if curW > s.bestW {
		s.bestW = curW
		s.best = append(s.best[:0], s.cur...)
	}
	if i >= len(s.cand) {
		return
	}
	// Bound: nothing past i can add more than suffix[i].
	if curW+s.suffix[i] <= s.bestW {
		return
	}

	v := s.cand[i]
	// Branch 1: include v if feasible with the current set.
	var feasible bool
	if s.conf != nil {
		feasible = feasibleBits(s.conf, s.confW, v, s.curBits)
	} else {
		feasible = true
		for _, u := range s.cur {
			if !s.indep(u, v) {
				feasible = false
				break
			}
		}
	}
	if feasible {
		s.cur = append(s.cur, v)
		if s.curBits != nil {
			s.curBits[uint(v)>>6] |= 1 << (uint(v) & 63)
		}
		if s.eval != nil {
			s.eval.Add(v)
			s.rec(i+1, s.eval.Weight()-s.ctxW)
			s.eval.Remove(v)
		} else {
			s.rec(i+1, s.marginal())
		}
		if s.curBits != nil {
			s.curBits[uint(v)>>6] &^= 1 << (uint(v) & 63)
		}
		s.cur = s.cur[:len(s.cur)-1]
	}
	// Branch 2: exclude v.
	s.rec(i+1, curW)
}

// feasibleBits reports whether candidate v is independent from every member
// of the bitset-mirrored current set: a word-AND of v's conflict row against
// the set bits. Equivalent to the pairwise Independent loop because the
// conflict bitsets encode exactly the symmetric Interferes relation (plus the
// self bit, which also reproduces the duplicate-candidate verdict).
func feasibleBits(conf []uint64, confW, v int, curBits []uint64) bool {
	row := conf[v*confW : (v+1)*confW]
	for k, w := range row {
		if w&curBits[k] != 0 {
			return false
		}
	}
	return true
}

// insertionSortBy sorts a small slice in place with the given less func;
// candidate lists here are tiny (<= number of readers), so this beats the
// interface overhead of sort.Slice on the hot local-MWFS path.
func insertionSortBy(a []int, less func(x, y int) bool) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && less(a[j], a[j-1]); j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
