package mwfs

import (
	"testing"

	"rfidsched/internal/geom"
	"rfidsched/internal/model"
	"rfidsched/internal/randx"
)

// Differential tests: the incremental-evaluator search must return exactly
// the same Result (set, weight, exactness, node count) as the brute-force
// path, across randomized deployments, contexts, down masks, and read churn.

func randomSystem(t *testing.T, seed uint64, n, m int) *model.System {
	t.Helper()
	rng := randx.New(seed)
	readers := make([]model.Reader, n)
	for i := range readers {
		R := 3 + rng.Float64()*9
		readers[i] = model.Reader{
			Pos:            geom.Pt(rng.Float64()*50, rng.Float64()*50),
			InterferenceR:  R,
			InterrogationR: 0.4*R + rng.Float64()*0.6*R,
		}
	}
	tags := make([]model.Tag, m)
	for i := range tags {
		tags[i] = model.Tag{Pos: geom.Pt(rng.Float64()*50, rng.Float64()*50)}
	}
	sys, err := model.NewSystem(readers, tags)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func sameResult(a, b Result) bool {
	if a.Weight != b.Weight || a.Exact != b.Exact || a.Nodes != b.Nodes || len(a.Set) != len(b.Set) {
		return false
	}
	for i := range a.Set {
		if a.Set[i] != b.Set[i] {
			return false
		}
	}
	return true
}

// TestSolveIncrementalEqualsBrute sweeps randomized instances — optionally
// with fault masks, pre-read tags, and committed contexts — and asserts the
// two search paths are indistinguishable.
func TestSolveIncrementalEqualsBrute(t *testing.T) {
	for trial := 0; trial < 120; trial++ {
		seed := uint64(3300 + trial)
		rng := randx.New(seed ^ 0x5a5a)
		sys := randomSystem(t, seed, 6+rng.Intn(9), 30+rng.Intn(60))

		// Churn: read some tags, crash some readers.
		for tg := 0; tg < sys.NumTags(); tg++ {
			if rng.Bool(0.25) {
				sys.MarkRead(tg)
			}
		}
		for v := 0; v < sys.NumReaders(); v++ {
			if rng.Bool(0.15) {
				sys.SetReaderDown(v, true)
			}
		}

		// Random candidate subset and (disjoint) random context.
		var cands, ctx []int
		for v := 0; v < sys.NumReaders(); v++ {
			switch {
			case rng.Bool(0.6):
				cands = append(cands, v)
			case rng.Bool(0.3):
				ctx = append(ctx, v)
			}
		}
		opts := Options{Context: ctx}
		inc := Solve(sys, cands, opts)
		opts.BruteForce = true
		brute := Solve(sys, cands, opts)
		if !sameResult(inc, brute) {
			t.Fatalf("trial %d: incremental %+v != brute %+v", trial, inc, brute)
		}
	}
}

// TestSolveIncrementalEqualsBruteTruncated pins equivalence when the node
// cap truncates the search: identical expansion order means identical
// truncation points and identical best-so-far results.
func TestSolveIncrementalEqualsBruteTruncated(t *testing.T) {
	sys := randomSystem(t, 99, 14, 120)
	cands := make([]int, sys.NumReaders())
	for i := range cands {
		cands[i] = i
	}
	for _, maxNodes := range []int{1, 5, 17, 100} {
		inc := Solve(sys, cands, Options{MaxNodes: maxNodes})
		brute := Solve(sys, cands, Options{MaxNodes: maxNodes, BruteForce: true})
		if !sameResult(inc, brute) {
			t.Fatalf("maxNodes=%d: incremental %+v != brute %+v", maxNodes, inc, brute)
		}
	}
}

// TestSolveContextCandidateOverlap documents the set semantics of Context:
// a candidate already committed in the context is skipped rather than
// double-activated, on both paths.
func TestSolveContextCandidateOverlap(t *testing.T) {
	sys := randomSystem(t, 7, 8, 50)
	cands := []int{0, 1, 2, 3, 4}
	ctx := []int{2, 4}
	inc := Solve(sys, cands, Options{Context: ctx})
	brute := Solve(sys, cands, Options{Context: ctx, BruteForce: true})
	if !sameResult(inc, brute) {
		t.Fatalf("overlap: incremental %+v != brute %+v", inc, brute)
	}
	for _, v := range inc.Set {
		if v == 2 || v == 4 {
			t.Fatalf("context reader %d re-activated in %v", v, inc.Set)
		}
	}
}
