package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccBasics(t *testing.T) {
	var a Acc
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if !almost(a.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v", a.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if !almost(a.Var(), 32.0/7, 1e-12) {
		t.Errorf("Var = %v", a.Var())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccEmpty(t *testing.T) {
	var a Acc
	if a.N() != 0 || a.Mean() != 0 || a.Var() != 0 || a.SE() != 0 || a.CI95() != 0 {
		t.Error("empty accumulator not all-zero")
	}
}

func TestAccSingle(t *testing.T) {
	var a Acc
	a.Add(3)
	if a.Var() != 0 || a.Mean() != 3 || a.Min() != 3 || a.Max() != 3 {
		t.Error("single-sample stats wrong")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	var small, large Acc
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 5))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 5))
	}
	if large.CI95() >= small.CI95() {
		t.Errorf("CI did not shrink: %v -> %v", small.CI95(), large.CI95())
	}
}

func TestMergeMatchesSequential(t *testing.T) {
	f := func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		var whole Acc
		for _, x := range clean {
			whole.Add(x)
		}
		var a, b Acc
		for i, x := range clean {
			if i%2 == 0 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		if a.N() != whole.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		scale := 1 + math.Abs(whole.Mean())
		return almost(a.Mean(), whole.Mean(), 1e-9*scale) &&
			almost(a.Var(), whole.Var(), 1e-6*(1+whole.Var())) &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeEmptyCases(t *testing.T) {
	var a, b Acc
	a.Merge(&b) // both empty
	if a.N() != 0 {
		t.Error("merging empties changed N")
	}
	b.Add(5)
	a.Merge(&b)
	if a.N() != 1 || a.Mean() != 5 {
		t.Error("merge into empty broken")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Error("empty summary N != 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {0.25, 17.5}, {-1, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile not NaN")
	}
	if Quantile([]float64{7}, 0.3) != 7 {
		t.Error("single-element quantile")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated input")
	}
}
