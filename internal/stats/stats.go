// Package stats provides the small statistical toolkit the experiment
// harness needs: single-pass (Welford) accumulators with confidence
// intervals, and summary helpers. All computations are numerically stable
// and allocation-free on the hot path.
package stats

import (
	"math"
	"slices"
)

// Acc accumulates samples with Welford's online algorithm. The zero value
// is ready to use.
type Acc struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one sample into the accumulator.
func (a *Acc) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the sample count.
func (a *Acc) N() int { return a.n }

// Mean returns the sample mean (0 with no samples).
func (a *Acc) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (a *Acc) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Acc) Std() float64 { return math.Sqrt(a.Var()) }

// SE returns the standard error of the mean.
func (a *Acc) SE() float64 {
	if a.n == 0 {
		return 0
	}
	return a.Std() / math.Sqrt(float64(a.n))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval for the mean.
func (a *Acc) CI95() float64 { return 1.96 * a.SE() }

// Min returns the smallest sample (0 with no samples).
func (a *Acc) Min() float64 { return a.min }

// Max returns the largest sample (0 with no samples).
func (a *Acc) Max() float64 { return a.max }

// Merge folds another accumulator into a (Chan et al. parallel variance).
func (a *Acc) Merge(b *Acc) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	delta := b.mean - a.mean
	total := a.n + b.n
	a.mean += delta * float64(b.n) / float64(total)
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(total)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = total
}

// Summary describes a sample set.
type Summary struct {
	N                int
	Mean, Std, CI95  float64
	Min, Median, Max float64
}

// Summarize computes a Summary of xs (zero Summary for empty input).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	var a Acc
	for _, x := range xs {
		a.Add(x)
	}
	sorted := append([]float64(nil), xs...)
	slices.Sort(sorted)
	return Summary{
		N: a.N(), Mean: a.Mean(), Std: a.Std(), CI95: a.CI95(),
		Min: a.Min(), Median: quantileSorted(sorted, 0.5), Max: a.Max(),
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation; NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	slices.Sort(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
