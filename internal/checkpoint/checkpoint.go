// Package checkpoint implements the durable run-state format of the
// covering-schedule stack (DESIGN.md §12): a versioned, checksummed JSONL
// envelope plus the MCS driver schema carried inside it.
//
// A checkpoint stream is a sequence of newline-delimited JSON records.
// Every record carries the format version, a kind tag, the payload as raw
// JSON, and a CRC32 of exactly those payload bytes — so a torn write, a
// flipped bit, or a record from a future format version is detected at
// decode time instead of silently corrupting a resumed run. Appending is
// the only write operation; a record, once written and fsynced, is never
// rewritten. Crash recovery therefore reduces to one rule: the final line
// of a crashed writer may be torn, and DecodeTail forgives exactly that —
// a run resumed from a torn stream simply re-executes the slot whose
// record did not survive.
//
// The package deliberately knows nothing about systems or schedulers; the
// MCS schema types (MCSHeader, MCSSlot) are plain data, and core.ResumeMCS
// owns the replay semantics.
package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Version is the stream format version. Decode rejects records written by
// any other version: resuming across format changes is a silent-corruption
// risk, not a compatibility exercise.
const Version = 1

// Record is one line of a checkpoint stream. CRC is the IEEE CRC32 of the
// exact Data bytes; Decode verifies it before a payload is ever handed to
// an unmarshaler.
type Record struct {
	V    int             `json:"v"`
	Kind string          `json:"kind"`
	CRC  uint32          `json:"crc"`
	Data json.RawMessage `json:"data"`
}

func checksum(data []byte) uint32 { return crc32.ChecksumIEEE(data) }

// Writer appends records to an underlying stream. Errors are sticky: after
// the first failure every Append returns the same error, so a driver loop
// can check once at the end instead of plumbing an error per slot. When the
// underlying writer is an *os.File, every Append fsyncs — a record the
// driver believes durable survives the process dying the next instant.
type Writer struct {
	w      io.Writer
	sync   func() error
	closer io.Closer
	err    error

	// Observer, when non-nil, is called after every successfully appended
	// (and, for files, fsynced) record with its kind and encoded size in
	// bytes — the hook the telemetry layer uses for its checkpoint volume
	// counters without this package importing it. It runs synchronously on
	// the appending goroutine; keep it cheap.
	Observer func(kind string, bytes int)
}

// NewWriter wraps w. Files get per-record fsync; any other writer is
// assumed durable on write (bytes.Buffer in tests, a network sink, ...).
func NewWriter(w io.Writer) *Writer {
	wr := &Writer{w: w}
	if f, ok := w.(*os.File); ok {
		wr.sync = f.Sync
	}
	return wr
}

// Create opens path for writing, truncating any previous stream, and
// returns a Writer that fsyncs after every record. Close it when done.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	w := NewWriter(f)
	w.closer = f
	return w, nil
}

// Append marshals payload, wraps it in a versioned checksummed record, and
// writes it as one line (plus fsync on files).
func (w *Writer) Append(kind string, payload any) error {
	if w.err != nil {
		return w.err
	}
	data, err := json.Marshal(payload)
	if err != nil {
		w.err = fmt.Errorf("checkpoint: marshal %s: %w", kind, err)
		return w.err
	}
	rec := Record{V: Version, Kind: kind, CRC: checksum(data), Data: data}
	line, err := json.Marshal(rec)
	if err != nil {
		w.err = fmt.Errorf("checkpoint: marshal record: %w", err)
		return w.err
	}
	line = append(line, '\n')
	if _, err := w.w.Write(line); err != nil {
		w.err = fmt.Errorf("checkpoint: write: %w", err)
		return w.err
	}
	if w.sync != nil {
		if err := w.sync(); err != nil {
			w.err = fmt.Errorf("checkpoint: sync: %w", err)
			return w.err
		}
	}
	if w.Observer != nil {
		w.Observer(kind, len(line))
	}
	return nil
}

// Err returns the sticky write error, if any.
func (w *Writer) Err() error { return w.err }

// Close closes the underlying file when the writer owns one (Create);
// writers over caller-supplied streams close nothing.
func (w *Writer) Close() error {
	if w.closer == nil {
		return nil
	}
	c := w.closer
	w.closer = nil
	return c.Close()
}

// Decode strictly parses a checkpoint stream: every line must be valid
// JSON, carry the supported version, and pass its checksum. Use it when the
// stream is expected intact (tests, archival verification); crashed runs
// resume through DecodeTail.
func Decode(r io.Reader) ([]Record, error) {
	return decode(r, false)
}

// DecodeTail parses a stream written by a process that may have died
// mid-append: it tolerates exactly one damaged FINAL line (truncated JSON,
// checksum mismatch from a partial flush) by dropping it, and still rejects
// damage anywhere earlier — a corrupt interior record means the stream is
// untrustworthy, not torn.
func DecodeTail(r io.Reader) ([]Record, error) {
	return decode(r, true)
}

func decode(r io.Reader, tolerateTail bool) ([]Record, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	lines := bytes.Split(raw, []byte("\n"))
	var out []Record
	for i, line := range lines {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		rec, perr := parseRecord(line)
		if perr != nil {
			if tolerateTail && lastContentLine(lines, i) {
				return out, nil
			}
			return nil, fmt.Errorf("checkpoint: line %d: %w", i+1, perr)
		}
		out = append(out, rec)
	}
	return out, nil
}

// lastContentLine reports whether every line after index i is blank.
func lastContentLine(lines [][]byte, i int) bool {
	for _, l := range lines[i+1:] {
		if len(bytes.TrimSpace(l)) > 0 {
			return false
		}
	}
	return true
}

func parseRecord(line []byte) (Record, error) {
	var rec Record
	if err := json.Unmarshal(line, &rec); err != nil {
		return rec, err
	}
	if rec.V != Version {
		return rec, fmt.Errorf("format version %d (supported: %d)", rec.V, Version)
	}
	if rec.Kind == "" {
		return rec, errors.New("record has no kind")
	}
	if rec.CRC != checksum(rec.Data) {
		return rec, errors.New("checksum mismatch")
	}
	return rec, nil
}

// Load reads the stream at path with crash tolerance (DecodeTail) — the
// entry point for -resume paths.
func Load(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	return DecodeTail(f)
}
