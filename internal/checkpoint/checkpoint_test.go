package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Slot int    `json:"slot"`
	Note string `json:"note,omitempty"`
}

func appendN(t *testing.T, w *Writer, n int) {
	t.Helper()
	if err := w.Append(KindMCSHeader, MCSHeader{Algorithm: "test", Readers: 3, Tags: 9}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Append(KindMCSSlot, payload{Slot: i}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	appendN(t, w, 5)

	recs, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("got %d records, want 6", len(recs))
	}
	if recs[0].Kind != KindMCSHeader {
		t.Errorf("first record kind = %q", recs[0].Kind)
	}
	for i, rec := range recs[1:] {
		var p payload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			t.Fatal(err)
		}
		if p.Slot != i {
			t.Errorf("record %d carries slot %d", i, p.Slot)
		}
	}
}

func TestDecodeTailForgivesTornFinalLine(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	appendN(t, w, 3)
	whole := buf.Len()
	if err := w.Append(KindMCSSlot, payload{Slot: 3}); err != nil {
		t.Fatal(err)
	}
	// Tear the final record mid-line, as a crash mid-write would.
	torn := buf.Bytes()[:whole+(buf.Len()-whole)/2]

	recs, err := DecodeTail(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("DecodeTail on torn stream: %v", err)
	}
	if len(recs) != 4 {
		t.Errorf("DecodeTail kept %d records, want 4", len(recs))
	}
	if _, err := Decode(bytes.NewReader(torn)); err == nil {
		t.Error("strict Decode accepted a torn stream")
	}
}

func TestDecodeRejectsInteriorDamage(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	appendN(t, w, 4)
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	lines[2] = lines[2][:len(lines[2])/2] // tear an interior record
	damaged := bytes.Join(lines, []byte("\n"))

	if _, err := Decode(bytes.NewReader(damaged)); err == nil {
		t.Error("Decode accepted interior damage")
	}
	// DecodeTail forgives only the FINAL line; interior damage means the
	// stream is untrustworthy.
	if _, err := DecodeTail(bytes.NewReader(damaged)); err == nil {
		t.Error("DecodeTail accepted interior damage")
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	data := []byte(`{"x":1}`)
	rec := Record{V: Version + 1, Kind: "future", CRC: checksum(data), Data: data}
	line, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Decode(bytes.NewReader(append(line, '\n')))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version-skewed record: err = %v, want version error", err)
	}
}

func TestDecodeRejectsChecksumMismatch(t *testing.T) {
	data := []byte(`{"slot":1}`)
	rec := Record{V: Version, Kind: KindMCSSlot, CRC: checksum(data) ^ 1, Data: data}
	line, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Decode(bytes.NewReader(append(line, '\n')))
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("bit-flipped record: err = %v, want checksum error", err)
	}
}

func TestDecodeRejectsKindlessRecord(t *testing.T) {
	data := []byte(`{}`)
	rec := Record{V: Version, CRC: checksum(data), Data: data}
	line, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(append(line, '\n'))); err == nil {
		t.Error("Decode accepted a record with no kind")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestWriterErrorsAreSticky(t *testing.T) {
	w := NewWriter(&failWriter{n: 2})
	if err := w.Append("a", payload{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("b", payload{}); err != nil {
		t.Fatal(err)
	}
	err := w.Append("c", payload{})
	if err == nil {
		t.Fatal("third append succeeded past the failing writer")
	}
	if err2 := w.Append("d", payload{}); !errors.Is(err2, err) && err2.Error() != err.Error() {
		t.Errorf("sticky error changed: %v then %v", err, err2)
	}
	if w.Err() == nil {
		t.Error("Err() did not report the sticky failure")
	}
}

func TestCreateLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 3)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Errorf("loaded %d records, want 4", len(recs))
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.ckpt")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: err = %v, want ErrNotExist", err)
	}
}

func TestParseMCSGrammar(t *testing.T) {
	header := func() Record {
		data, _ := json.Marshal(MCSHeader{Algorithm: "x", Readers: 2, Tags: 4})
		return Record{V: Version, Kind: KindMCSHeader, CRC: checksum(data), Data: data}
	}
	slot := func(i int) Record {
		data, _ := json.Marshal(MCSSlot{Slot: i})
		return Record{V: Version, Kind: KindMCSSlot, CRC: checksum(data), Data: data}
	}

	if _, err := ParseMCS(nil); err == nil {
		t.Error("ParseMCS accepted an empty stream")
	}
	if _, err := ParseMCS([]Record{slot(0)}); err == nil {
		t.Error("ParseMCS accepted a stream with no header")
	}
	if _, err := ParseMCS([]Record{header(), slot(0), slot(2)}); err == nil {
		t.Error("ParseMCS accepted a slot gap")
	}
	if _, err := ParseMCS([]Record{header(), slot(0), header()}); err == nil {
		t.Error("ParseMCS accepted a mid-stream header")
	}
	st, err := ParseMCS([]Record{header(), slot(0), slot(1)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Header.Algorithm != "x" || len(st.Slots) != 2 {
		t.Errorf("parsed %+v", st)
	}
}

func TestMCSSlotJSONKeepsNilSlices(t *testing.T) {
	// omitempty on the slice fields is what keeps resumed MCSResults
	// DeepEqual to uninterrupted ones: a nil Active must come back nil.
	data, err := json.Marshal(MCSSlot{Slot: 3})
	if err != nil {
		t.Fatal(err)
	}
	var got MCSSlot
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Active != nil || got.ReadTags != nil || got.Failed != nil {
		t.Errorf("empty slot round-tripped with non-nil slices: %s", data)
	}
}

func TestLoadMCSRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mcs.ckpt")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(KindMCSHeader, MCSHeader{Algorithm: "alg", Readers: 4, Tags: 10}); err != nil {
		t.Fatal(err)
	}
	want := []MCSSlot{
		{Slot: 0, Active: []int{1, 3}, ReadTags: []int{0, 2, 5}, Stall: 0},
		{Slot: 1, Active: []int{0}, Fallback: true, Anytime: true, Stall: 1,
			PlanRNG: &RNGState{State: 7, Inc: 9}, Sched: json.RawMessage(`{"k":1}`)},
	}
	for _, s := range want {
		if err := w.Append(KindMCSSlot, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := LoadMCS(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Header.Algorithm != "alg" {
		t.Errorf("header = %+v", st.Header)
	}
	if len(st.Slots) != 2 {
		t.Fatalf("got %d slots", len(st.Slots))
	}
	if fmt.Sprint(st.Slots[0].Active) != "[1 3]" || !st.Slots[1].Anytime || st.Slots[1].PlanRNG.State != 7 {
		t.Errorf("slots = %+v", st.Slots)
	}
}

func TestWriterObserver(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var kinds []string
	var total int
	w.Observer = func(kind string, n int) {
		kinds = append(kinds, kind)
		total += n
	}
	appendN(t, w, 3)
	want := []string{KindMCSHeader, KindMCSSlot, KindMCSSlot, KindMCSSlot}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Errorf("observed kinds %v, want %v", kinds, want)
	}
	// The observer sees the encoded line sizes, newline included: the sum is
	// exactly what reached the stream.
	if total != buf.Len() {
		t.Errorf("observed %d bytes, stream holds %d", total, buf.Len())
	}

	// A failed append must not be observed: the record never became durable.
	w2 := NewWriter(&failWriter{n: 0})
	calls := 0
	w2.Observer = func(string, int) { calls++ }
	if err := w2.Append("a", payload{}); err == nil {
		t.Fatal("append over a full disk succeeded")
	}
	if calls != 0 {
		t.Errorf("observer ran %d times on a failed append", calls)
	}
}
