package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzCheckpointDecode throws arbitrary bytes at both decoders and the MCS
// parser. The contract under fuzz: corrupt, truncated, or version-skewed
// input is rejected with an error — never a panic, never a hang — and
// anything DecodeTail accepts is a valid prefix the strict decoder also
// accepts once re-encoded.
func FuzzCheckpointDecode(f *testing.F) {
	// Seed with a well-formed stream and characteristic damage shapes.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Append(KindMCSHeader, MCSHeader{Algorithm: "seed", Readers: 2, Tags: 5})
	w.Append(KindMCSSlot, MCSSlot{Slot: 0, Active: []int{1}, ReadTags: []int{0, 3}})
	w.Append(KindMCSSlot, MCSSlot{Slot: 1, Anytime: true, Stall: 1})
	whole := buf.Bytes()
	f.Add(whole)
	f.Add(whole[:len(whole)-7])                           // torn final line
	f.Add([]byte(``))                                     // empty stream
	f.Add([]byte("\n\n\n"))                               // blank lines only
	f.Add([]byte(`{"v":99,"kind":"x","data":{}}`))        // version skew
	f.Add([]byte(`{"v":1,"kind":"x","crc":1,"data":{}}`)) // checksum mismatch
	f.Add([]byte(`not json at all`))
	f.Add(bytes.Replace(whole, []byte("slot"), []byte("slop"), 1)) // bit rot

	f.Fuzz(func(t *testing.T, data []byte) {
		strict, strictErr := Decode(bytes.NewReader(data))
		tail, tailErr := DecodeTail(bytes.NewReader(data))
		if strictErr == nil && tailErr != nil {
			t.Fatalf("strict Decode accepted what DecodeTail rejected: %v", tailErr)
		}
		if strictErr == nil && len(strict) != len(tail) {
			t.Fatalf("clean stream: Decode kept %d records, DecodeTail %d", len(strict), len(tail))
		}
		// Every surviving record must re-verify: version and checksum hold.
		for _, rec := range tail {
			if rec.V != Version {
				t.Fatalf("decoder passed through version %d", rec.V)
			}
			if rec.CRC != checksum(rec.Data) {
				t.Fatal("decoder passed through a checksum mismatch")
			}
		}
		// The MCS layer must be equally panic-free on whatever survived.
		if tailErr == nil {
			_, _ = ParseMCS(tail)
		}
	})
}
