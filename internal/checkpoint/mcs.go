package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Record kinds of the MCS driver stream: one header identifying the run,
// then one slot record per executed slot, in slot order.
const (
	KindMCSHeader = "mcs-header"
	KindMCSSlot   = "mcs-slot"
)

// MCSHeader identifies the run a slot stream belongs to. Resume verifies
// it against the freshly rebuilt system and scheduler before replaying
// anything — restoring a stream onto the wrong deployment must fail loudly,
// not produce a plausible-looking schedule.
type MCSHeader struct {
	Algorithm string `json:"algorithm"`
	Readers   int    `json:"readers"`
	Tags      int    `json:"tags"`
}

// RNGState is a serialized randx.RNG position.
type RNGState struct {
	State uint64 `json:"state"`
	Inc   uint64 `json:"inc"`
}

// MCSSlot is the durable record of one executed slot: everything the
// driver needs to replay the slot's effects without re-running its solver.
// Cumulative result counters are deliberately absent — they are recomputed
// from the per-slot data on resume, so the stream cannot contradict itself.
type MCSSlot struct {
	// Slot is the slot index; records must arrive in 0,1,2,... order.
	Slot int `json:"slot"`
	// Active is the executed reader set (after fault filtering).
	Active []int `json:"active,omitempty"`
	// ReadTags lists the tag IDs newly read this slot.
	ReadTags []int `json:"read_tags,omitempty"`
	// Fallback marks a slot forced by the stall guard.
	Fallback bool `json:"fallback,omitempty"`
	// Failed lists planned readers that were down at execution time.
	Failed []int `json:"failed,omitempty"`
	// Anytime marks a slot whose one-shot was truncated by its deadline.
	Anytime bool `json:"anytime,omitempty"`
	// Stall is the driver's consecutive-zero-progress counter AFTER this
	// slot — the one piece of loop state not derivable from the tag sets.
	Stall int `json:"stall,omitempty"`
	// PlanRNG is the fault plan's draw-stream position after this slot;
	// absent for fault-free runs.
	PlanRNG *RNGState `json:"plan_rng,omitempty"`
	// Sched is the scheduler's opaque state blob (SchedulerCheckpointer)
	// after this slot; absent for stateless schedulers.
	Sched json.RawMessage `json:"sched,omitempty"`
}

// MCSState is a decoded MCS stream: the header plus every surviving slot
// record, in order.
type MCSState struct {
	Header MCSHeader
	Slots  []MCSSlot
}

// ParseMCS interprets a record stream as an MCS driver checkpoint. It
// enforces the stream grammar — header first, then gap-free ascending slot
// records — because a stream with a hole cannot be replayed soundly.
func ParseMCS(recs []Record) (*MCSState, error) {
	if len(recs) == 0 {
		return nil, errors.New("checkpoint: empty MCS stream (not even a header survived)")
	}
	if recs[0].Kind != KindMCSHeader {
		return nil, fmt.Errorf("checkpoint: MCS stream starts with %q, want %q", recs[0].Kind, KindMCSHeader)
	}
	st := &MCSState{}
	if err := json.Unmarshal(recs[0].Data, &st.Header); err != nil {
		return nil, fmt.Errorf("checkpoint: MCS header: %w", err)
	}
	for i, rec := range recs[1:] {
		if rec.Kind != KindMCSSlot {
			return nil, fmt.Errorf("checkpoint: record %d has kind %q, want %q", i+1, rec.Kind, KindMCSSlot)
		}
		var slot MCSSlot
		if err := json.Unmarshal(rec.Data, &slot); err != nil {
			return nil, fmt.Errorf("checkpoint: slot record %d: %w", i, err)
		}
		if slot.Slot != i {
			return nil, fmt.Errorf("checkpoint: slot record %d carries slot index %d (stream has a gap or is reordered)", i, slot.Slot)
		}
		st.Slots = append(st.Slots, slot)
	}
	return st, nil
}

// LoadMCS reads and parses the MCS stream at path with crash tolerance —
// the one-call entry point for -resume.
func LoadMCS(path string) (*MCSState, error) {
	recs, err := Load(path)
	if err != nil {
		return nil, err
	}
	return ParseMCS(recs)
}
