package graph

// Hop-distance utilities. Algorithm 2 grows the ball N(v)^r hop by hop;
// Algorithm 3 additionally needs (2c+2)-hop information gathering, so these
// run on every scheduling round and keep allocation low via caller-supplied
// or internal scratch.

// HopDistances returns a slice dist of length N where dist[u] is the hop
// distance from v to u, capped at maxHops: vertices farther than maxHops (or
// unreachable) get -1. maxHops < 0 means unbounded.
func (g *Graph) HopDistances(v int, maxHops int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if v < 0 || v >= g.n {
		return dist
	}
	dist[v] = 0
	queue := make([]int32, 0, 16)
	queue = append(queue, int32(v))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		if maxHops >= 0 && du >= maxHops {
			continue
		}
		for _, w := range g.adj[u] {
			if dist[w] == -1 {
				dist[w] = du + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Ball returns N(v)^r — every vertex within hop distance r of v, including v
// itself — in ascending vertex order.
func (g *Graph) Ball(v, r int) []int {
	dist := g.HopDistances(v, r)
	out := make([]int, 0, 16)
	for u, d := range dist {
		if d >= 0 && d <= r {
			out = append(out, u)
		}
	}
	return out
}

// BallSize returns |N(v)^r| without materializing the ball.
func (g *Graph) BallSize(v, r int) int {
	dist := g.HopDistances(v, r)
	n := 0
	for _, d := range dist {
		if d >= 0 && d <= r {
			n++
		}
	}
	return n
}

// Components returns the connected components, each sorted ascending, in
// order of their smallest vertex.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for v := 0; v < g.n; v++ {
		if seen[v] {
			continue
		}
		comp := []int{v}
		seen[v] = true
		for i := 0; i < len(comp); i++ {
			for _, w := range g.adj[comp[i]] {
				if !seen[w] {
					seen[w] = true
					comp = append(comp, int(w))
				}
			}
		}
		// BFS order is not sorted; sort for deterministic output.
		insertionSort(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Eccentricity returns the maximum finite hop distance from v.
func (g *Graph) Eccentricity(v int) int {
	dist := g.HopDistances(v, -1)
	e := 0
	for _, d := range dist {
		if d > e {
			e = d
		}
	}
	return e
}

// Diameter returns the largest eccentricity over all vertices (per
// component; unreachable pairs are ignored). O(n * (n + m)).
func (g *Graph) Diameter() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if e := g.Eccentricity(v); e > d {
			d = e
		}
	}
	return d
}

// GrowthFunction measures the growth-bounded property the paper's Algorithm
// 2 analysis relies on: f(r) = max over v of the size of a maximum
// independent set inside N(v)^r. For polynomially growth-bounded graphs
// (which geometric interference graphs are), f(r) is polynomial in r. The
// computation is exponential in the ball's independence number and intended
// for diagnostics and tests on small instances. rMax caps the radius.
func (g *Graph) GrowthFunction(rMax int) []int {
	f := make([]int, rMax+1)
	for v := 0; v < g.n; v++ {
		for r := 0; r <= rMax; r++ {
			ball := g.Ball(v, r)
			size := g.maxIndependentSetSize(ball)
			if size > f[r] {
				f[r] = size
			}
		}
	}
	return f
}

// maxIndependentSetSize computes the independence number of the subgraph
// induced by verts via branch and bound.
func (g *Graph) maxIndependentSetSize(verts []int) int {
	best := 0
	var rec func(cand []int, size int)
	rec = func(cand []int, size int) {
		if size+len(cand) <= best {
			return
		}
		if len(cand) == 0 {
			if size > best {
				best = size
			}
			return
		}
		v := cand[0]
		// Branch 1: include v.
		var rest []int
		for _, u := range cand[1:] {
			if !g.HasEdge(v, u) {
				rest = append(rest, u)
			}
		}
		rec(rest, size+1)
		// Branch 2: exclude v.
		rec(cand[1:], size)
	}
	rec(verts, 0)
	return best
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
