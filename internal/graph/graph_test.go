package graph

import (
	"testing"

	"rfidsched/internal/geom"
	"rfidsched/internal/model"
)

// pathGraph returns the path 0-1-2-...-n-1.
func pathGraph(t *testing.T, n int) *Graph {
	t.Helper()
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	g, err := New(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, nil); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := New(2, [][2]int{{0, 0}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := New(2, [][2]int{{0, 5}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := New(2, [][2]int{{0, 1}, {1, 0}}); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestBasicProperties(t *testing.T) {
	g := pathGraph(t, 5)
	if g.N() != 5 || g.M() != 4 {
		t.Errorf("N=%d M=%d", g.N(), g.M())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Error("degrees wrong")
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Error("HasEdge misses edge")
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge invents edge")
	}
}

func TestIsIndependentSet(t *testing.T) {
	g := pathGraph(t, 5)
	if !g.IsIndependentSet([]int{0, 2, 4}) {
		t.Error("alternating set should be independent")
	}
	if g.IsIndependentSet([]int{0, 1}) {
		t.Error("adjacent pair accepted")
	}
	if g.IsIndependentSet([]int{2, 2}) {
		t.Error("duplicate accepted")
	}
	if !g.IsIndependentSet(nil) {
		t.Error("empty set should be independent")
	}
}

func TestHopDistances(t *testing.T) {
	g := pathGraph(t, 6)
	dist := g.HopDistances(0, -1)
	for i := 0; i < 6; i++ {
		if dist[i] != i {
			t.Errorf("dist[%d] = %d", i, dist[i])
		}
	}
	capped := g.HopDistances(0, 2)
	if capped[2] != 2 || capped[3] != -1 {
		t.Errorf("capped distances wrong: %v", capped)
	}
	if d := g.HopDistances(-1, 3); d[0] != -1 {
		t.Error("invalid source should yield all -1")
	}
}

func TestBall(t *testing.T) {
	g := pathGraph(t, 7)
	ball := g.Ball(3, 2)
	want := []int{1, 2, 3, 4, 5}
	if len(ball) != len(want) {
		t.Fatalf("Ball = %v", ball)
	}
	for i := range want {
		if ball[i] != want[i] {
			t.Fatalf("Ball = %v, want %v", ball, want)
		}
	}
	if g.BallSize(3, 2) != 5 {
		t.Errorf("BallSize = %d", g.BallSize(3, 2))
	}
	if got := g.Ball(0, 0); len(got) != 1 || got[0] != 0 {
		t.Errorf("Ball(v,0) = %v", got)
	}
}

func TestComponents(t *testing.T) {
	g, err := New(6, [][2]int{{0, 1}, {1, 2}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Errorf("first component = %v", comps[0])
	}
	if len(comps[1]) != 1 || comps[1][0] != 3 {
		t.Errorf("second component = %v", comps[1])
	}
	if len(comps[2]) != 2 || comps[2][0] != 4 {
		t.Errorf("third component = %v", comps[2])
	}
}

func TestEccentricityDiameter(t *testing.T) {
	g := pathGraph(t, 5)
	if e := g.Eccentricity(0); e != 4 {
		t.Errorf("ecc(0) = %d", e)
	}
	if e := g.Eccentricity(2); e != 2 {
		t.Errorf("ecc(2) = %d", e)
	}
	if d := g.Diameter(); d != 4 {
		t.Errorf("diameter = %d", d)
	}
}

func TestFromSystem(t *testing.T) {
	readers := []model.Reader{
		{Pos: geom.Pt(0, 0), InterferenceR: 8, InterrogationR: 4},
		{Pos: geom.Pt(5, 0), InterferenceR: 8, InterrogationR: 4},  // adjacent to 0
		{Pos: geom.Pt(20, 0), InterferenceR: 8, InterrogationR: 4}, // independent
	}
	sys, err := model.NewSystem(readers, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := FromSystem(sys)
	if !g.HasEdge(0, 1) {
		t.Error("missing interference edge 0-1")
	}
	if g.HasEdge(0, 2) || g.HasEdge(1, 2) {
		t.Error("spurious edge to independent reader")
	}
	// Edge relation must agree with independence for every pair.
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if g.HasEdge(i, j) == sys.Independent(i, j) {
				t.Errorf("edge/independence mismatch (%d,%d)", i, j)
			}
		}
	}
}

func TestGreedyColoring(t *testing.T) {
	g := pathGraph(t, 10)
	colors, k := g.GreedyColoring(nil)
	if !g.IsProperColoring(colors) {
		t.Fatal("improper coloring")
	}
	if k != 2 {
		t.Errorf("path should 2-color, got %d", k)
	}
}

func TestGreedyColoringCustomOrder(t *testing.T) {
	g, err := New(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}) // 4-cycle
	if err != nil {
		t.Fatal(err)
	}
	colors, k := g.GreedyColoring([]int{3, 1, 0, 2})
	if !g.IsProperColoring(colors) || k < 2 {
		t.Errorf("coloring %v with %d colors", colors, k)
	}
	// Partial/duplicated order must still color everything.
	colors2, _ := g.GreedyColoring([]int{2, 2, 99})
	if !g.IsProperColoring(colors2) {
		t.Error("partial order coloring improper")
	}
}

func TestDegeneracyOrderColoring(t *testing.T) {
	// Complete graph K5 needs 5 colors regardless of order.
	var edges [][2]int
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	g, err := New(5, edges)
	if err != nil {
		t.Fatal(err)
	}
	ord := g.DegeneracyOrder()
	if len(ord) != 5 {
		t.Fatalf("order = %v", ord)
	}
	colors, k := g.GreedyColoring(ord)
	if !g.IsProperColoring(colors) || k != 5 {
		t.Errorf("K5 colored with %d colors", k)
	}
}

func TestIsProperColoringRejects(t *testing.T) {
	g := pathGraph(t, 3)
	if g.IsProperColoring([]int{0, 0, 1}) {
		t.Error("monochromatic edge accepted")
	}
	if g.IsProperColoring([]int{0, -1, 0}) {
		t.Error("uncolored vertex accepted")
	}
	if g.IsProperColoring([]int{0, 1}) {
		t.Error("wrong length accepted")
	}
}

func TestColorClasses(t *testing.T) {
	classes := ColorClasses([]int{0, 1, 0, 2, 1}, 3)
	if len(classes) != 3 {
		t.Fatalf("classes = %v", classes)
	}
	if len(classes[0]) != 2 || classes[0][0] != 0 || classes[0][1] != 2 {
		t.Errorf("class 0 = %v", classes[0])
	}
	if len(classes[2]) != 1 || classes[2][0] != 3 {
		t.Errorf("class 2 = %v", classes[2])
	}
}

func TestGrowthFunction(t *testing.T) {
	g := pathGraph(t, 9)
	f := g.GrowthFunction(3)
	// Ball(v,r) on a path has <= 2r+1 vertices; max independent set within
	// is ceil((2r+1)/2) = r+1.
	want := []int{1, 2, 3, 4}
	for r, fr := range f {
		if fr != want[r] {
			t.Errorf("f(%d) = %d, want %d", r, fr, want[r])
		}
	}
}

func TestMaxIndependentSetSize(t *testing.T) {
	g := pathGraph(t, 5)
	all := []int{0, 1, 2, 3, 4}
	if s := g.maxIndependentSetSize(all); s != 3 {
		t.Errorf("MIS of P5 = %d, want 3", s)
	}
	if s := g.maxIndependentSetSize(nil); s != 0 {
		t.Errorf("MIS of empty = %d", s)
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := New(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 || g.MaxDegree() != 0 || g.Diameter() != 0 {
		t.Error("empty graph stats nonzero")
	}
	if comps := g.Components(); len(comps) != 0 {
		t.Errorf("components = %v", comps)
	}
	colors, k := g.GreedyColoring(nil)
	if len(colors) != 0 || k != 0 {
		t.Error("empty coloring wrong")
	}
}

// Geometric interference graphs are polynomially growth-bounded — the
// assumption Theorems 3/5 of the paper rest on. Empirically: the number of
// mutually independent readers inside an r-hop ball grows at most
// quadratically in r (disk packing), far below the exponential growth a
// general graph allows.
func TestGrowthBoundedOnGeometricGraphs(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		sys, err := model.NewSystem(randomReaders(seed, 40), nil)
		if err != nil {
			t.Fatal(err)
		}
		g := FromSystem(sys)
		f := g.GrowthFunction(4)
		for r := 1; r <= 4; r++ {
			// Packing bound: independent readers within r hops fit inside a
			// disk of radius ~2r*Rmax with pairwise distance > Rmin; the
			// quadratic cap below is loose by design (constants absorbed).
			cap := 8*(2*r+1)*(2*r+1) + 1
			if f[r] > cap {
				t.Errorf("seed %d: f(%d) = %d exceeds quadratic cap %d", seed, r, f[r], cap)
			}
		}
		// Monotone in r.
		for r := 1; r <= 4; r++ {
			if f[r] < f[r-1] {
				t.Errorf("growth function not monotone: f(%d)=%d < f(%d)=%d", r, f[r], r-1, f[r-1])
			}
		}
	}
}

func randomReaders(seed uint64, n int) []model.Reader {
	// Simple LCG so this test needs no extra imports.
	state := seed*2862933555777941757 + 3037000493
	next := func() float64 {
		state = state*2862933555777941757 + 3037000493
		return float64(state>>11) / float64(1<<53)
	}
	readers := make([]model.Reader, n)
	for i := range readers {
		R := 3 + 8*next()
		readers[i] = model.Reader{
			Pos:            geom.Pt(next()*80, next()*80),
			InterferenceR:  R,
			InterrogationR: R / 2,
		}
	}
	return readers
}
