// Package graph implements the interference graph of Definition 7: one node
// per reader, an edge whenever one reader lies inside the other's
// interference region (equivalently, whenever the two readers are NOT
// independent per Definition 2). Algorithms 2 and 3 operate purely on this
// graph — no geometry — which is exactly the paper's "no location
// information" setting. The package also provides the hop-neighborhood,
// coloring and growth-bound utilities those algorithms and the Colorwave
// baseline need.
package graph

import (
	"fmt"
	"slices"
	"sort"

	"rfidsched/internal/model"
)

// Graph is an undirected simple graph over vertices 0..n-1 with sorted
// adjacency lists. It is immutable after construction and safe for
// concurrent reads.
type Graph struct {
	n   int
	adj [][]int32
	m   int // edge count
}

// New builds a graph over n vertices from an edge list. Self-loops and
// duplicate edges are rejected.
func New(n int, edges [][2]int) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	g := &Graph{n: n, adj: make([][]int32, n)}
	seen := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			return nil, fmt.Errorf("graph: self-loop at %d", u)
		}
		if u < 0 || v < 0 || u >= n || v >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
		}
		key := [2]int{min(u, v), max(u, v)}
		if seen[key] {
			return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
		}
		seen[key] = true
		g.adj[u] = append(g.adj[u], int32(v))
		g.adj[v] = append(g.adj[v], int32(u))
		g.m++
	}
	for _, l := range g.adj {
		slices.Sort(l)
	}
	return g, nil
}

// FromSystem derives the true interference graph of a deployment: an edge
// joins i and j iff they are not independent. This is the graph a perfect
// RF site survey would measure; package survey builds the noisy version.
func FromSystem(sys *model.System) *Graph {
	n := sys.NumReaders()
	g := &Graph{n: n, adj: make([][]int32, n)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !sys.Independent(i, j) {
				g.adj[i] = append(g.adj[i], int32(j))
				g.adj[j] = append(g.adj[j], int32(i))
				g.m++
			}
		}
	}
	// adjacency built in increasing order; already sorted.
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) > d {
			d = len(g.adj[v])
		}
	}
	return d
}

// Neighbors returns the sorted adjacency list of v. Callers must not mutate
// the returned slice.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// HasEdge reports whether u and v are adjacent.
func (g *Graph) HasEdge(u, v int) bool {
	l := g.adj[u]
	i := sort.Search(len(l), func(i int) bool { return l[i] >= int32(v) })
	return i < len(l) && l[i] == int32(v)
}

// IsIndependentSet reports whether no two vertices of set are adjacent. In
// the interference graph this is precisely feasibility of a scheduling set.
func (g *Graph) IsIndependentSet(set []int) bool {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if set[i] == set[j] || g.HasEdge(set[i], set[j]) {
				return false
			}
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
