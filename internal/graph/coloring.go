package graph

// Coloring utilities backing the Colorwave baseline: a proper coloring of
// the interference graph maps directly to a TDMA frame (one color = one time
// slot) in which simultaneously transmitting readers never collide.

// GreedyColoring colors vertices in the given order, assigning each vertex
// the smallest color unused by its already-colored neighbors. It returns the
// color of every vertex and the number of colors used. If order is nil the
// natural order 0..n-1 is used. Vertices missing from a partial order are
// appended in natural order.
func (g *Graph) GreedyColoring(order []int) ([]int, int) {
	ord := normalizeOrder(g.n, order)
	colors := make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	maxColor := 0
	used := make([]bool, g.n+1)
	for _, v := range ord {
		for _, w := range g.adj[v] {
			if c := colors[w]; c >= 0 {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
		if c+1 > maxColor {
			maxColor = c + 1
		}
		for _, w := range g.adj[v] {
			if cc := colors[w]; cc >= 0 {
				used[cc] = false
			}
		}
	}
	return colors, maxColor
}

// DegeneracyOrder returns a smallest-last vertex order; greedy coloring in
// this order uses at most degeneracy+1 colors, the strongest cheap bound for
// geometric graphs.
func (g *Graph) DegeneracyOrder() []int {
	deg := make([]int, g.n)
	removed := make([]bool, g.n)
	for v := 0; v < g.n; v++ {
		deg[v] = len(g.adj[v])
	}
	order := make([]int, 0, g.n)
	for len(order) < g.n {
		best, bestDeg := -1, int(^uint(0)>>1)
		for v := 0; v < g.n; v++ {
			if !removed[v] && deg[v] < bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		removed[best] = true
		order = append(order, best)
		for _, w := range g.adj[best] {
			if !removed[w] {
				deg[w]--
			}
		}
	}
	// Smallest-last: reverse the removal order.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// IsProperColoring reports whether colors is a proper coloring (no edge
// monochromatic, all vertices colored with a non-negative color).
func (g *Graph) IsProperColoring(colors []int) bool {
	if len(colors) != g.n {
		return false
	}
	for v := 0; v < g.n; v++ {
		if colors[v] < 0 {
			return false
		}
		for _, w := range g.adj[v] {
			if colors[w] == colors[v] {
				return false
			}
		}
	}
	return true
}

// ColorClasses groups vertices by color: result[c] lists the vertices with
// color c, each class sorted ascending. Classes are independent sets when
// the coloring is proper.
func ColorClasses(colors []int, numColors int) [][]int {
	classes := make([][]int, numColors)
	for v, c := range colors {
		if c >= 0 && c < numColors {
			classes[c] = append(classes[c], v)
		}
	}
	return classes
}

func normalizeOrder(n int, order []int) []int {
	if order == nil {
		ord := make([]int, n)
		for i := range ord {
			ord[i] = i
		}
		return ord
	}
	seen := make([]bool, n)
	ord := make([]int, 0, n)
	for _, v := range order {
		if v >= 0 && v < n && !seen[v] {
			seen[v] = true
			ord = append(ord, v)
		}
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			ord = append(ord, v)
		}
	}
	return ord
}
