// Package verify independently validates covering schedules against the
// model's definitions — a second implementation of the rules used by tests
// and the CLI so a bug in the scheduler's own bookkeeping cannot hide
// behind itself. The checker re-simulates a recorded schedule from a fresh
// copy of the deployment and confirms:
//
//   - every slot's activation set is a feasible scheduling set (Def. 2),
//     unless the slot is flagged as a driver fallback AND fallbacks are
//     permitted by the options;
//   - the tags recorded as read in each slot are exactly the unread tags
//     well-covered by that slot's activation (Def. 1/3);
//   - no tag is served twice;
//   - at the end, every coverable tag has been served (Def. 4/5), unless
//     the result honestly reported fault degradation (Degraded/LostTags).
package verify

import (
	"fmt"

	"rfidsched/internal/core"
	"rfidsched/internal/model"
)

// Options tunes the verification.
type Options struct {
	// RequireFeasible demands pairwise independence of every slot's set.
	// Leave false when verifying baselines (GHC, Colorwave under kicks may
	// activate conflicting readers; physics charges them via weight).
	RequireFeasible bool
}

// Report is the verification outcome.
type Report struct {
	Slots         int
	TagsServed    int
	FeasibleSlots int
	EmptySlots    int // slots serving zero tags
	FallbackSlots int
}

// Schedule re-simulates result against a fresh clone of sys. The sys
// argument must be in the same initial read-state the schedule started
// from (typically all-unread); it is not mutated.
func Schedule(sys *model.System, result *core.MCSResult, opts Options) (Report, error) {
	var rep Report
	if result == nil {
		return rep, fmt.Errorf("verify: nil result")
	}
	if len(result.Slots) == 0 && result.Size != 0 {
		return rep, fmt.Errorf("verify: result has %d slots but no per-slot records; run with RecordSlots", result.Size)
	}
	sim := sys.Clone()
	served := make(map[int32]bool)

	for i, slot := range result.Slots {
		rep.Slots++
		if slot.Fallback {
			rep.FallbackSlots++
		}
		feasible := sim.IsFeasible(slot.Active)
		if feasible {
			rep.FeasibleSlots++
		} else if opts.RequireFeasible && !slot.Fallback {
			return rep, fmt.Errorf("verify: slot %d activation %v is not a feasible scheduling set", i, slot.Active)
		}

		covered := sim.Covered(slot.Active, nil)
		if len(covered) != slot.TagsRead {
			return rep, fmt.Errorf("verify: slot %d claims %d tags but the model serves %d",
				i, slot.TagsRead, len(covered))
		}
		if len(covered) == 0 {
			rep.EmptySlots++
		}
		for _, t := range covered {
			if served[t] {
				return rep, fmt.Errorf("verify: tag %d served twice (slot %d)", t, i)
			}
			served[t] = true
			sim.MarkRead(int(t))
			rep.TagsServed++
		}
	}

	if rep.TagsServed != result.TotalRead {
		return rep, fmt.Errorf("verify: result claims %d total reads, replay served %d",
			result.TotalRead, rep.TagsServed)
	}
	// A Degraded result has already declared (via LostTags) that some
	// coverable tags died with their only readers; completeness is only
	// demanded of runs that claim it.
	if !result.Incomplete && !result.Degraded && sim.UnreadCoverableCount() != 0 {
		return rep, fmt.Errorf("verify: schedule marked complete but %d coverable tags remain unread",
			sim.UnreadCoverableCount())
	}
	return rep, nil
}
