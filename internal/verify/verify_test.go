package verify

import (
	"testing"

	"rfidsched/internal/baseline"
	"rfidsched/internal/core"
	"rfidsched/internal/deploy"
	"rfidsched/internal/graph"
	"rfidsched/internal/model"
)

func paperSystem(t *testing.T, seed uint64) *model.System {
	t.Helper()
	sys, err := deploy.Generate(deploy.Paper(seed, 12, 5))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func runRecorded(t *testing.T, sys *model.System, sched model.OneShotScheduler) *core.MCSResult {
	t.Helper()
	res, err := core.RunMCS(sys.Clone(), sched, core.MCSOptions{RecordSlots: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestVerifyAllAlgorithms(t *testing.T) {
	sys := paperSystem(t, 1)
	g := graph.FromSystem(sys)
	cases := []struct {
		sched    model.OneShotScheduler
		feasible bool
	}{
		{core.NewPTAS(), true},
		{core.NewGrowth(g, 1.25), true},
		{core.NewDistributed(g, 1.25), true},
		{baseline.GHC{}, false},              // GHC may activate conflicting readers
		{baseline.NewColorwave(g, 3), false}, // kicks can momentarily conflict
	}
	for _, c := range cases {
		res := runRecorded(t, sys, c.sched)
		rep, err := Schedule(sys, res, Options{RequireFeasible: c.feasible})
		if err != nil {
			t.Errorf("%s: %v", c.sched.Name(), err)
			continue
		}
		if rep.TagsServed != res.TotalRead {
			t.Errorf("%s: verifier served %d != result %d", c.sched.Name(), rep.TagsServed, res.TotalRead)
		}
		if c.feasible && rep.FeasibleSlots+rep.FallbackSlots < rep.Slots {
			t.Errorf("%s: %d/%d slots feasible", c.sched.Name(), rep.FeasibleSlots, rep.Slots)
		}
	}
}

func TestVerifyDetectsDoubleServe(t *testing.T) {
	sys := paperSystem(t, 3)
	g := graph.FromSystem(sys)
	res := runRecorded(t, sys, core.NewGrowth(g, 1.25))
	// Replay the first slot a second time at the end: its tags are already
	// read in the replay, so the recorded TagsRead will disagree.
	res.Slots = append(res.Slots, res.Slots[0])
	res.Size++
	if _, err := Schedule(sys, res, Options{}); err == nil {
		t.Error("duplicated slot not detected")
	}
}

func TestVerifyDetectsWrongCount(t *testing.T) {
	sys := paperSystem(t, 5)
	g := graph.FromSystem(sys)
	res := runRecorded(t, sys, core.NewGrowth(g, 1.25))
	res.Slots[0].TagsRead++
	if _, err := Schedule(sys, res, Options{}); err == nil {
		t.Error("inflated per-slot count not detected")
	}
}

func TestVerifyDetectsTotalMismatch(t *testing.T) {
	sys := paperSystem(t, 7)
	g := graph.FromSystem(sys)
	res := runRecorded(t, sys, core.NewGrowth(g, 1.25))
	res.TotalRead++
	if _, err := Schedule(sys, res, Options{}); err == nil {
		t.Error("total mismatch not detected")
	}
}

func TestVerifyDetectsInfeasibleSlot(t *testing.T) {
	sys := paperSystem(t, 9)
	g := graph.FromSystem(sys)
	res := runRecorded(t, sys, core.NewGrowth(g, 1.25))
	// Find two non-independent readers and force them into slot 0's set;
	// the tag counts will also break, but feasibility is checked first.
	found := false
outer:
	for i := 0; i < sys.NumReaders() && !found; i++ {
		for j := i + 1; j < sys.NumReaders(); j++ {
			if !sys.Independent(i, j) {
				res.Slots[0].Active = []int{i, j}
				found = true
				break outer
			}
		}
	}
	if !found {
		t.Skip("no interfering pair in this deployment")
	}
	if _, err := Schedule(sys, res, Options{RequireFeasible: true}); err == nil {
		t.Error("infeasible slot not detected")
	}
}

func TestVerifyDetectsFalseCompletion(t *testing.T) {
	sys := paperSystem(t, 11)
	g := graph.FromSystem(sys)
	res := runRecorded(t, sys, core.NewGrowth(g, 1.25))
	// Drop the last slot but keep claiming completeness.
	last := res.Slots[len(res.Slots)-1]
	res.Slots = res.Slots[:len(res.Slots)-1]
	res.Size--
	res.TotalRead -= last.TagsRead
	if _, err := Schedule(sys, res, Options{}); err == nil {
		t.Error("false completion not detected")
	}
}

func TestVerifyNilAndUnrecorded(t *testing.T) {
	sys := paperSystem(t, 13)
	if _, err := Schedule(sys, nil, Options{}); err == nil {
		t.Error("nil result accepted")
	}
	res := &core.MCSResult{Size: 3} // no slot records
	if _, err := Schedule(sys, res, Options{}); err == nil {
		t.Error("unrecorded result accepted")
	}
	empty := &core.MCSResult{}
	sysEmpty, err := model.NewSystem(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Schedule(sysEmpty, empty, Options{}); err != nil {
		t.Errorf("empty schedule on empty system rejected: %v", err)
	}
}
