package baseline

import (
	"encoding/json"
	"fmt"

	"rfidsched/internal/graph"
	"rfidsched/internal/model"
	"rfidsched/internal/randx"
)

// Colorwave implements the CA baseline (Waldrop, Engels, Sarma, WCNC 2003)
// the paper compares against. Readers randomly color themselves so that
// interfering neighbors get distinct colors — when two neighbors collide on
// a color, one wins and the losers re-pick — and each color then owns one
// time slot of a TDMA frame; OneShot returns the next color class.
//
// Two readers that do not interfere may still share an interrogation
// overlap (RRc), permanently starving the tags in it if both stay on the
// same color. Colorwave's remedy is its kick mechanism: readers observing
// persistent collisions re-roll their color. We run that kick between
// slots on the unread-tag overlap structure, repairing any interference
// conflicts the re-roll introduces, which both matches the protocol's
// behavior and guarantees the covering schedule terminates.
//
// A Colorwave instance is stateful (current slot, colors, RNG) and serves
// one schedule run at a time; it is not safe for concurrent use.
type Colorwave struct {
	g   *graph.Graph
	rng *randx.RNG

	colors    []int
	numColors int
	slot      int
	inited    bool

	// MaxKicksPerSlot caps color re-rolls per slot (default 8).
	MaxKicksPerSlot int
}

// NewColorwave builds the baseline on the given interference graph.
func NewColorwave(g *graph.Graph, seed uint64) *Colorwave {
	return &Colorwave{g: g, rng: randx.New(seed), MaxKicksPerSlot: 8}
}

// Name implements model.OneShotScheduler.
func (*Colorwave) Name() string { return "Colorwave" }

// Colors exposes the current coloring (for tests). Do not mutate.
func (c *Colorwave) Colors() []int { return c.colors }

// NumColors returns the current frame length in slots.
func (c *Colorwave) NumColors() int { return c.numColors }

// colorwaveState is the JSON image of everything that makes the next
// OneShot call differ from a fresh instance: the coloring, the frame
// position and the RNG stream. The graph and MaxKicksPerSlot are
// configuration, not state, and stay with the instance.
type colorwaveState struct {
	Colors    []int  `json:"colors"`
	NumColors int    `json:"num_colors"`
	Slot      int    `json:"slot"`
	Inited    bool   `json:"inited"`
	RNGState  uint64 `json:"rng_state"`
	RNGInc    uint64 `json:"rng_inc"`
}

// CheckpointState implements the core.SchedulerCheckpointer contract: it
// snapshots the mutable run state (colors, frame slot, RNG) so a resumed
// schedule continues the exact color sequence of the interrupted one.
func (c *Colorwave) CheckpointState() ([]byte, error) {
	st := colorwaveState{
		Colors:    c.colors,
		NumColors: c.numColors,
		Slot:      c.slot,
		Inited:    c.inited,
	}
	st.RNGState, st.RNGInc = c.rng.State()
	return json.Marshal(st)
}

// RestoreState restores a snapshot taken by CheckpointState on an instance
// built over the same graph and seed.
func (c *Colorwave) RestoreState(data []byte) error {
	var st colorwaveState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("baseline: colorwave state: %w", err)
	}
	if st.Inited && len(st.Colors) != c.g.N() {
		return fmt.Errorf("baseline: colorwave state has %d colors, graph has %d readers", len(st.Colors), c.g.N())
	}
	c.colors = st.Colors
	c.numColors = st.NumColors
	c.slot = st.Slot
	c.inited = st.Inited
	c.rng.SetState(st.RNGState, st.RNGInc)
	return nil
}

// OneShot implements model.OneShotScheduler: it returns the reader set of
// the next non-empty color class, advancing the frame position.
func (c *Colorwave) OneShot(sys *model.System) ([]int, error) {
	if !c.inited {
		c.initColoring()
		c.inited = true
	}
	c.kick(sys)

	n := c.g.N()
	if n == 0 || c.numColors == 0 {
		return nil, nil
	}
	// Return the next non-empty color class; empty classes are compressed
	// out of the frame (they would be pure dead air).
	for tries := 0; tries < c.numColors; tries++ {
		col := c.slot % c.numColors
		c.slot++
		var X []int
		for v := 0; v < n; v++ {
			if c.colors[v] == col {
				X = append(X, v)
			}
		}
		if len(X) > 0 {
			return X, nil
		}
	}
	return nil, nil
}

// initColoring runs the randomized distributed coloring: every reader
// picks a random color among maxDegree+1; on each conflict edge a random
// winner keeps its color and the loser re-picks. A greedy repair pass
// guarantees properness if randomization has not converged in time.
func (c *Colorwave) initColoring() {
	n := c.g.N()
	k := c.g.MaxDegree() + 1
	c.colors = make([]int, n)
	for v := range c.colors {
		c.colors[v] = c.rng.Intn(k)
	}
	for round := 0; round < 20*k+20; round++ {
		conflicted := c.conflictedVertices()
		if len(conflicted) == 0 {
			break
		}
		// Losers re-pick: every conflicted vertex re-rolls with probability
		// 1/2, which breaks symmetric ties the way the random winner rule
		// does in the protocol.
		for _, v := range conflicted {
			if c.rng.Bool(0.5) {
				c.colors[v] = c.rng.Intn(k)
			}
		}
	}
	c.repair()
	c.numColors = c.maxUsedColor() + 1
}

func (c *Colorwave) conflictedVertices() []int {
	var out []int
	for v := 0; v < c.g.N(); v++ {
		for _, w := range c.g.Neighbors(v) {
			if c.colors[w] == c.colors[v] {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

// repair deterministically fixes any remaining conflicts by assigning the
// smallest color unused in the neighborhood.
func (c *Colorwave) repair() {
	n := c.g.N()
	for v := 0; v < n; v++ {
		conflict := false
		for _, w := range c.g.Neighbors(v) {
			if c.colors[w] == c.colors[v] {
				conflict = true
				break
			}
		}
		if !conflict {
			continue
		}
		used := make(map[int]bool, c.g.Degree(v))
		for _, w := range c.g.Neighbors(v) {
			used[c.colors[w]] = true
		}
		col := 0
		for used[col] {
			col++
		}
		c.colors[v] = col
	}
}

func (c *Colorwave) maxUsedColor() int {
	m := 0
	for _, col := range c.colors {
		if col > m {
			m = col
		}
	}
	return m
}

// kick re-rolls the color of readers that share a color with another reader
// covering the same unread tag (a persistent RRc collision in Colorwave's
// terms), then repairs interference conflicts and refreshes the frame
// length.
func (c *Colorwave) kick(sys *model.System) {
	kicks := 0
	maxKicks := c.MaxKicksPerSlot
	if maxKicks <= 0 {
		maxKicks = 8
	}
	kicked := make(map[int]bool)
	for t := 0; t < sys.NumTags() && kicks < maxKicks; t++ {
		if sys.IsRead(t) {
			continue
		}
		covering := sys.ReadersOf(t)
		if len(covering) < 2 {
			continue
		}
		for i := 0; i < len(covering) && kicks < maxKicks; i++ {
			for j := i + 1; j < len(covering) && kicks < maxKicks; j++ {
				u, v := int(covering[i]), int(covering[j])
				if c.colors[u] != c.colors[v] || kicked[u] || kicked[v] {
					continue
				}
				loser := u
				if c.rng.Bool(0.5) {
					loser = v
				}
				c.colors[loser] = c.rng.Intn(c.numColors + 1)
				kicked[loser] = true
				kicks++
			}
		}
	}
	if kicks > 0 {
		c.repair()
		c.numColors = c.maxUsedColor() + 1
	}
}
