// Package baseline implements the comparison algorithms of the paper's
// evaluation (Section VI) — Colorwave (CA) and Greedy Hill-Climbing (GHC) —
// plus an exact one-shot solver and a random feasible baseline used as
// ground truth and sanity floor in tests and ablations.
package baseline

import (
	"container/heap"

	"rfidsched/internal/model"
)

// GHC is the Greedy Hill-Climbing baseline exactly as the paper describes
// it: "at each step, we select a reader to add to current active reader
// set, in order to maximize the incremental weight together with other
// active readers at this time-slot. Then we keep adding the reader to the
// active set one by one recursively until the weight starts to decrease
// (the incremental weight becomes negative) due to various collisions."
//
// Note GHC optimizes raw weight and may activate readers that conflict —
// the weight function charges it for the resulting RTc/RRc losses, exactly
// like the physical system would.
//
// The selection loop is a CELF-style lazy priority queue over marginal
// gains, backed by the incremental model.WeightEval. Classic CELF trusts
// stale cached gains because a submodular objective only shrinks them; this
// weight function is NOT submodular (activating a reader that un-cleans a
// neighbor can *raise* a third reader's gain), so stale entries may
// understate the truth and pure pop-and-refresh would be unsound. The queue
// is kept exact by event-driven invalidation instead: adding reader u can
// only change the gain of readers within two hops of u in the coupling
// graph (System.CouplingNeighbors — interference in either direction or
// shared coverage), so exactly that 2-hop ball is re-priced per step, each
// reader in O(Δ) via MarginalGain, and superseded heap entries are skipped
// on pop (lazy deletion). On the growth-bounded interference graphs of the
// paper the ball is a small constant, replacing the brute force's n full
// weight recomputes per step. Schedules are bit-identical to the reference
// implementation: same gains, same (gain desc, index asc) selection order.
type GHC struct {
	// Brute selects with the O(n·|X|·deg) reference scan — a full weight
	// recompute per candidate per step — instead of the lazy queue. Kept
	// for differential tests and the wbench regression baseline; the
	// schedule produced is identical either way.
	Brute bool
}

// Name implements model.OneShotScheduler.
func (GHC) Name() string { return "GHC" }

// OneShot implements model.OneShotScheduler.
func (g GHC) OneShot(sys *model.System) ([]int, error) {
	if g.Brute {
		return ghcBrute(sys)
	}
	return ghcLazy(sys)
}

// ghcBrute is the reference implementation: every step rescans all
// candidates with full weight recomputes.
func ghcBrute(sys *model.System) ([]int, error) {
	n := sys.NumReaders()
	inSet := make([]bool, n)
	var X []int
	curW := 0
	for len(X) < n {
		bestV := -1
		bestGain := -1 << 30
		for v := 0; v < n; v++ {
			if inSet[v] {
				continue
			}
			X = append(X, v)
			gain := sys.Weight(X) - curW
			X = X[:len(X)-1]
			// Ties broken by lowest index for determinism.
			if gain > bestGain {
				bestV, bestGain = v, gain
			}
		}
		// The paper's stopping rule: keep adding "until the weight starts
		// to decrease (the incremental weight becomes negative)" — i.e.
		// zero-gain readers are still added.
		if bestV < 0 || bestGain < 0 {
			return X, nil
		}
		X = append(X, bestV)
		inSet[bestV] = true
		curW += bestGain
	}
	return X, nil
}

// gainEntry is one cached marginal gain in the lazy queue. version pairs
// the entry with the evaluation that produced it; a popped entry whose
// version lags the reader's current one is a superseded duplicate and is
// discarded (lazy deletion).
type gainEntry struct {
	gain    int
	v       int
	version int32
}

// gainHeap orders by gain descending, then reader index ascending, which
// reproduces the reference scan's argmax-with-lowest-index-ties rule.
type gainHeap []gainEntry

func (h gainHeap) Len() int { return len(h) }
func (h gainHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].v < h[j].v
}
func (h gainHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x any)   { *h = append(*h, x.(gainEntry)) }
func (h *gainHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ghcLazy is the lazy-queue implementation; see the GHC doc comment.
func ghcLazy(sys *model.System) ([]int, error) {
	n := sys.NumReaders()
	eval := model.NewPooledWeightEval(sys)
	defer eval.Close()

	cached := make([]int, n)    // current exact gain per candidate
	version := make([]int32, n) // bumped whenever cached[v] is re-pushed
	inSet := make([]bool, n)
	seen := make([]int32, n) // stamp buffer for the 2-hop invalidation walk
	for i := range seen {
		seen[i] = -1
	}

	h := make(gainHeap, 0, n)
	for v := 0; v < n; v++ {
		// Gain over the empty set is the singleton weight (O(1) counter).
		cached[v] = sys.SingletonWeight(v)
		h = append(h, gainEntry{gain: cached[v], v: v})
	}
	heap.Init(&h)

	var X []int
	step := int32(0)
	for h.Len() > 0 {
		top := heap.Pop(&h).(gainEntry)
		if inSet[top.v] || top.version != version[top.v] {
			continue // superseded entry
		}
		if top.gain < 0 {
			break // every live cached gain is exact, so nothing can improve
		}
		u := top.v
		X = append(X, u)
		inSet[u] = true
		eval.Add(u)
		step++

		// Re-price the 2-hop coupling ball of u — the only readers whose
		// marginal gain the addition can have changed.
		reprice := func(w int) {
			if inSet[w] || seen[w] == step {
				return
			}
			seen[w] = step
			if g := eval.MarginalGain(w); g != cached[w] {
				cached[w] = g
				version[w]++
				heap.Push(&h, gainEntry{gain: g, v: w, version: version[w]})
			}
		}
		for _, w1 := range sys.CouplingNeighbors(u) {
			reprice(int(w1))
			for _, w2 := range sys.CouplingNeighbors(int(w1)) {
				reprice(int(w2))
			}
		}
	}
	return X, nil
}
