// Package baseline implements the comparison algorithms of the paper's
// evaluation (Section VI) — Colorwave (CA) and Greedy Hill-Climbing (GHC) —
// plus an exact one-shot solver and a random feasible baseline used as
// ground truth and sanity floor in tests and ablations.
package baseline

import "rfidsched/internal/model"

// GHC is the Greedy Hill-Climbing baseline exactly as the paper describes
// it: "at each step, we select a reader to add to current active reader
// set, in order to maximize the incremental weight together with other
// active readers at this time-slot. Then we keep adding the reader to the
// active set one by one recursively until the weight starts to decrease
// (the incremental weight becomes negative) due to various collisions."
//
// Note GHC optimizes raw weight and may activate readers that conflict —
// the weight function charges it for the resulting RTc/RRc losses, exactly
// like the physical system would.
type GHC struct{}

// Name implements model.OneShotScheduler.
func (GHC) Name() string { return "GHC" }

// OneShot implements model.OneShotScheduler.
func (GHC) OneShot(sys *model.System) ([]int, error) {
	n := sys.NumReaders()
	inSet := make([]bool, n)
	var X []int
	curW := 0
	for len(X) < n {
		bestV := -1
		bestGain := -1 << 30
		for v := 0; v < n; v++ {
			if inSet[v] {
				continue
			}
			X = append(X, v)
			gain := sys.Weight(X) - curW
			X = X[:len(X)-1]
			// Ties broken by lowest index for determinism.
			if gain > bestGain {
				bestV, bestGain = v, gain
			}
		}
		// The paper's stopping rule: keep adding "until the weight starts
		// to decrease (the incremental weight becomes negative)" — i.e.
		// zero-gain readers are still added.
		if bestV < 0 || bestGain < 0 {
			return X, nil
		}
		X = append(X, bestV)
		inSet[bestV] = true
		curW += bestGain
	}
	return X, nil
}
