package baseline

import (
	"testing"

	"rfidsched/internal/deploy"
	"rfidsched/internal/geom"
	"rfidsched/internal/graph"
	"rfidsched/internal/model"
	"rfidsched/internal/randx"
)

func paperSystem(t *testing.T, seed uint64) *model.System {
	t.Helper()
	sys, err := deploy.Generate(deploy.Paper(seed, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func figure2System(t *testing.T) *model.System {
	t.Helper()
	readers := []model.Reader{
		{Pos: geom.Pt(0, 0), InterferenceR: 8, InterrogationR: 6},
		{Pos: geom.Pt(10, 0), InterferenceR: 8, InterrogationR: 6},
		{Pos: geom.Pt(20, 0), InterferenceR: 8, InterrogationR: 6},
	}
	tags := []model.Tag{
		{Pos: geom.Pt(0, 0)}, {Pos: geom.Pt(5, 0)}, {Pos: geom.Pt(15, 0)},
		{Pos: geom.Pt(20, 0)}, {Pos: geom.Pt(10, 0)},
	}
	s, err := model.NewSystem(readers, tags)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGHCFigure2(t *testing.T) {
	s := figure2System(t)
	X, err := GHC{}.OneShot(s)
	if err != nil {
		t.Fatal(err)
	}
	// GHC first adds B (weight 3), then A or C add +1 each (their overlap
	// tags die but solo tags arrive): B(3) -> +A: tags 0 gained, tag 1 lost
	// => net... verify only that weight is positive and no improvement
	// remains.
	w := s.Weight(X)
	if w <= 0 {
		t.Fatalf("GHC produced non-positive weight %d with %v", w, X)
	}
	for v := 0; v < s.NumReaders(); v++ {
		if s.MarginalWeight(X, v) > 0 {
			t.Errorf("GHC left positive marginal at reader %d", v)
		}
	}
}

func TestGHCStopsAtLocalOptimum(t *testing.T) {
	sys := paperSystem(t, 1)
	X, err := GHC{}.OneShot(sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(X) == 0 {
		t.Fatal("GHC returned empty set on a dense instance")
	}
	inX := make(map[int]bool)
	for _, v := range X {
		if inX[v] {
			t.Fatalf("GHC duplicated reader %d", v)
		}
		inX[v] = true
	}
	for v := 0; v < sys.NumReaders(); v++ {
		if inX[v] {
			continue
		}
		if sys.MarginalWeight(X, v) > 0 {
			t.Errorf("positive marginal left at %d", v)
		}
	}
}

func TestGHCName(t *testing.T) {
	if (GHC{}).Name() != "GHC" {
		t.Error("name")
	}
}

func TestExactBeatsOrMatchesGHC(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := deploy.Config{Seed: seed, NumReaders: 12, NumTags: 150, Side: 50,
			LambdaR: 10, LambdaSmallR: 5}
		sys, err := deploy.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ex := &Exact{}
		Xe, err := ex.OneShot(sys)
		if err != nil {
			t.Fatal(err)
		}
		if !ex.LastExact {
			t.Fatal("12-reader instance should be exactly solvable")
		}
		Xg, err := GHC{}.OneShot(sys)
		if err != nil {
			t.Fatal(err)
		}
		if sys.Weight(Xe) < sys.Weight(Xg) {
			t.Errorf("seed %d: exact %d < GHC %d", seed, sys.Weight(Xe), sys.Weight(Xg))
		}
		if !sys.IsFeasible(Xe) {
			t.Error("exact result infeasible")
		}
	}
}

func TestExactName(t *testing.T) {
	if (&Exact{}).Name() != "Exact" {
		t.Error("name")
	}
}

func TestRandomProducesMaximalFeasible(t *testing.T) {
	sys := paperSystem(t, 5)
	rng := randx.New(7)
	r := &Random{Next: rng.Intn}
	X, err := r.OneShot(sys)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.IsFeasible(X) {
		t.Fatal("random set infeasible")
	}
	// Maximality: no reader outside X is independent of all of X.
	inX := make(map[int]bool)
	for _, v := range X {
		inX[v] = true
	}
	for v := 0; v < sys.NumReaders(); v++ {
		if inX[v] {
			continue
		}
		ok := true
		for _, u := range X {
			if !sys.Independent(u, v) {
				ok = false
				break
			}
		}
		if ok {
			t.Errorf("reader %d could extend the 'maximal' set", v)
		}
	}
}

func TestRandomName(t *testing.T) {
	if (&Random{}).Name() != "Random" {
		t.Error("name")
	}
}

func TestColorwaveProperColoring(t *testing.T) {
	sys := paperSystem(t, 9)
	g := graph.FromSystem(sys)
	cw := NewColorwave(g, 11)
	if _, err := cw.OneShot(sys); err != nil {
		t.Fatal(err)
	}
	if !g.IsProperColoring(cw.Colors()) {
		t.Fatal("colorwave coloring improper after init")
	}
	// Kicks across several slots must preserve properness.
	for i := 0; i < 20; i++ {
		if _, err := cw.OneShot(sys); err != nil {
			t.Fatal(err)
		}
	}
	if !g.IsProperColoring(cw.Colors()) {
		t.Fatal("colorwave coloring improper after kicks")
	}
}

func TestColorwaveSlotsAreFeasible(t *testing.T) {
	sys := paperSystem(t, 13)
	g := graph.FromSystem(sys)
	cw := NewColorwave(g, 17)
	for i := 0; i < 30; i++ {
		X, err := cw.OneShot(sys)
		if err != nil {
			t.Fatal(err)
		}
		// A color class of a proper coloring of the interference graph is an
		// independent set = feasible scheduling set.
		if !sys.IsFeasible(X) {
			t.Fatalf("slot %d: color class %v infeasible", i, X)
		}
	}
}

func TestColorwaveCyclesThroughAllReaders(t *testing.T) {
	sys := paperSystem(t, 19)
	g := graph.FromSystem(sys)
	cw := NewColorwave(g, 23)
	seen := make(map[int]bool)
	// kick() can recolor readers between slots, so a reader might dodge its
	// slot occasionally, but over several frames everyone must appear.
	for i := 0; i < 10*cwFrameBound(cw, sys); i++ {
		X, err := cw.OneShot(sys)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range X {
			seen[v] = true
		}
		if len(seen) == sys.NumReaders() {
			return
		}
	}
	t.Errorf("only %d/%d readers ever activated", len(seen), sys.NumReaders())
}

func cwFrameBound(cw *Colorwave, sys *model.System) int {
	if n := cw.NumColors(); n > 0 {
		return n + 1
	}
	return sys.NumReaders() + 1
}

func TestColorwaveEmptyGraph(t *testing.T) {
	sys, err := model.NewSystem([]model.Reader{
		{Pos: geom.Pt(0, 0), InterferenceR: 2, InterrogationR: 1},
	}, []model.Tag{{Pos: geom.Pt(0, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromSystem(sys)
	cw := NewColorwave(g, 1)
	X, err := cw.OneShot(sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(X) != 1 || X[0] != 0 {
		t.Errorf("single-reader slot = %v", X)
	}
}

func TestColorwaveName(t *testing.T) {
	if NewColorwave(nil, 0).Name() != "Colorwave" {
		t.Error("name")
	}
}
