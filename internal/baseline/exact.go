package baseline

import (
	"rfidsched/internal/model"
	"rfidsched/internal/mwfs"
	"rfidsched/internal/parsearch"
)

// Exact solves the One-Shot Schedule Problem optimally by branch and bound
// over all readers. Exponential in the worst case; intended for small
// instances (tests, approximation-ratio measurements) and for ablations on
// the paper-scale 50-reader deployments, where the interference structure
// keeps the search tractable.
type Exact struct {
	// MaxNodes caps the search; 0 uses the solver default. When hit, the
	// result is the best set found (still feasible), not a failure.
	MaxNodes int
	// Workers is passed through to mwfs.Options.Workers: values below 2
	// keep the sequential reference path; results are identical either way.
	Workers int
	// Deadline, when non-nil, bounds each OneShot call under the anytime
	// contract: the branch and bound returns its best feasible incumbent
	// (possibly empty) on expiry instead of blocking. core.RunMCS installs
	// a fresh per-slot deadline through SetDeadline.
	Deadline *parsearch.Deadline
	// LastExact records whether the most recent OneShot call completed an
	// exact search. Diagnostic only; not safe for concurrent use.
	LastExact bool
	// lastAnytime records whether the most recent OneShot was truncated by
	// the deadline; see Anytime.
	lastAnytime bool
}

// Name implements model.OneShotScheduler.
func (*Exact) Name() string { return "Exact" }

// SetWorkers implements the solver-worker plumbing used by
// core.MCSOptions.SolverWorkers and the CLIs.
func (e *Exact) SetWorkers(w int) { e.Workers = w }

// SetDeadline implements the core.DeadlineSetter contract.
func (e *Exact) SetDeadline(dl *parsearch.Deadline) { e.Deadline = dl }

// Anytime implements the core.AnytimeReporter contract: true when the most
// recent OneShot was truncated by the deadline.
func (e *Exact) Anytime() bool { return e.lastAnytime }

// OneShot implements model.OneShotScheduler.
func (e *Exact) OneShot(sys *model.System) ([]int, error) {
	cands := make([]int, sys.NumReaders())
	for i := range cands {
		cands[i] = i
	}
	res := mwfs.Solve(sys, cands, mwfs.Options{MaxNodes: e.MaxNodes, Workers: e.Workers, Deadline: e.Deadline})
	e.LastExact = res.Exact
	e.lastAnytime = res.TimedOut
	return res.Set, nil
}

// Random returns a uniformly random maximal feasible scheduling set: it
// visits readers in random order and activates each one that stays
// independent of the set so far. It is the sanity floor every published
// algorithm must beat.
type Random struct {
	// Next is the random source; must be non-nil. One instance per
	// goroutine: not safe for concurrent use.
	Next func(n int) int
}

// Name implements model.OneShotScheduler.
func (*Random) Name() string { return "Random" }

// OneShot implements model.OneShotScheduler.
func (r *Random) OneShot(sys *model.System) ([]int, error) {
	n := sys.NumReaders()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Next(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	var X []int
	for _, v := range order {
		ok := true
		for _, u := range X {
			if !sys.Independent(u, v) {
				ok = false
				break
			}
		}
		if ok {
			X = append(X, v)
		}
	}
	return X, nil
}
