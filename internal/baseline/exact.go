package baseline

import (
	"rfidsched/internal/model"
	"rfidsched/internal/mwfs"
)

// Exact solves the One-Shot Schedule Problem optimally by branch and bound
// over all readers. Exponential in the worst case; intended for small
// instances (tests, approximation-ratio measurements) and for ablations on
// the paper-scale 50-reader deployments, where the interference structure
// keeps the search tractable.
type Exact struct {
	// MaxNodes caps the search; 0 uses the solver default. When hit, the
	// result is the best set found (still feasible), not a failure.
	MaxNodes int
	// Workers is passed through to mwfs.Options.Workers: values below 2
	// keep the sequential reference path; results are identical either way.
	Workers int
	// LastExact records whether the most recent OneShot call completed an
	// exact search. Diagnostic only; not safe for concurrent use.
	LastExact bool
}

// Name implements model.OneShotScheduler.
func (*Exact) Name() string { return "Exact" }

// SetWorkers implements the solver-worker plumbing used by
// core.MCSOptions.SolverWorkers and the CLIs.
func (e *Exact) SetWorkers(w int) { e.Workers = w }

// OneShot implements model.OneShotScheduler.
func (e *Exact) OneShot(sys *model.System) ([]int, error) {
	cands := make([]int, sys.NumReaders())
	for i := range cands {
		cands[i] = i
	}
	res := mwfs.Solve(sys, cands, mwfs.Options{MaxNodes: e.MaxNodes, Workers: e.Workers})
	e.LastExact = res.Exact
	return res.Set, nil
}

// Random returns a uniformly random maximal feasible scheduling set: it
// visits readers in random order and activates each one that stays
// independent of the set so far. It is the sanity floor every published
// algorithm must beat.
type Random struct {
	// Next is the random source; must be non-nil. One instance per
	// goroutine: not safe for concurrent use.
	Next func(n int) int
}

// Name implements model.OneShotScheduler.
func (*Random) Name() string { return "Random" }

// OneShot implements model.OneShotScheduler.
func (r *Random) OneShot(sys *model.System) ([]int, error) {
	n := sys.NumReaders()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Next(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	var X []int
	for _, v := range order {
		ok := true
		for _, u := range X {
			if !sys.Independent(u, v) {
				ok = false
				break
			}
		}
		if ok {
			X = append(X, v)
		}
	}
	return X, nil
}
