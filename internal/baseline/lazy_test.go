package baseline

import (
	"testing"

	"rfidsched/internal/geom"
	"rfidsched/internal/model"
	"rfidsched/internal/randx"
)

// The lazy gain queue must reproduce the brute-force GHC schedule exactly —
// same readers, same order — on arbitrary instances, because its 2-hop
// invalidation keeps every cached gain exact (see the GHC doc comment).

func lazySystem(t *testing.T, seed uint64, n, m int) *model.System {
	t.Helper()
	rng := randx.New(seed)
	readers := make([]model.Reader, n)
	for i := range readers {
		R := 2 + rng.Float64()*11
		readers[i] = model.Reader{
			Pos:            geom.Pt(rng.Float64()*70, rng.Float64()*70),
			InterferenceR:  R,
			InterrogationR: 0.3*R + rng.Float64()*0.7*R,
		}
	}
	tags := make([]model.Tag, m)
	for i := range tags {
		tags[i] = model.Tag{Pos: geom.Pt(rng.Float64()*70, rng.Float64()*70)}
	}
	sys, err := model.NewSystem(readers, tags)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func TestGHCLazyEqualsBrute(t *testing.T) {
	for trial := 0; trial < 150; trial++ {
		seed := uint64(8800 + trial)
		rng := randx.New(seed ^ 0xfeed)
		sys := lazySystem(t, seed, 6+rng.Intn(14), 40+rng.Intn(100))
		for tg := 0; tg < sys.NumTags(); tg++ {
			if rng.Bool(0.2) {
				sys.MarkRead(tg)
			}
		}
		for v := 0; v < sys.NumReaders(); v++ {
			if rng.Bool(0.1) {
				sys.SetReaderDown(v, true)
			}
		}

		lazy, err := GHC{}.OneShot(sys)
		if err != nil {
			t.Fatalf("trial %d: lazy: %v", trial, err)
		}
		brute, err := GHC{Brute: true}.OneShot(sys)
		if err != nil {
			t.Fatalf("trial %d: brute: %v", trial, err)
		}
		if len(lazy) != len(brute) {
			t.Fatalf("trial %d: lazy %v != brute %v", trial, lazy, brute)
		}
		for i := range lazy {
			if lazy[i] != brute[i] {
				t.Fatalf("trial %d: lazy %v != brute %v (diverge at step %d)", trial, lazy, brute, i)
			}
		}
	}
}
