// Package viz renders experiment series as ASCII line charts so the figure
// shapes — who wins, where curves cross — are visible straight from the
// terminal without any plotting dependency. One glyph per series, points
// scaled into a fixed-size grid, axes annotated with the data ranges.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	Points []Point
}

// Point is an (x, y) sample.
type Point struct {
	X, Y float64
}

// Chart is a renderable ASCII chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns (default 64)
	Height int // plot rows (default 16)
	Series []Series
}

// glyphs assigns one marker per series, cycling if there are many.
var glyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render writes the chart to w.
func (c *Chart) Render(w io.Writer) error {
	width := c.Width
	if width <= 0 {
		width = 64
	}
	height := c.Height
	if height <= 0 {
		height = 16
	}

	minX, maxX, minY, maxY, any := c.bounds()
	if !any {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", c.Title)
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		g := glyphs[si%len(glyphs)]
		// Plot interpolated segments so curves read as lines, then overlay
		// the sample markers.
		for i := 0; i+1 < len(s.Points); i++ {
			c.segment(grid, width, height, minX, maxX, minY, maxY, s.Points[i], s.Points[i+1], g)
		}
		for _, p := range s.Points {
			col, row := c.project(p, width, height, minX, maxX, minY, maxY)
			grid[row][col] = g
		}
	}

	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.6g ", maxY)
		case height - 1:
			label = fmt.Sprintf("%7.6g ", minY)
		case height / 2:
			label = fmt.Sprintf("%7.6g ", (minY+maxY)/2)
		}
		if _, err := fmt.Fprintf(w, "%s|%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "        +%s\n", strings.Repeat("-", width)); err != nil {
		return err
	}
	xAxis := fmt.Sprintf("%-10.6g%s%10.6g", minX, strings.Repeat(" ", max(0, width-12)), maxX)
	if _, err := fmt.Fprintf(w, "        %s\n", xAxis); err != nil {
		return err
	}
	if c.XLabel != "" || c.YLabel != "" {
		if _, err := fmt.Fprintf(w, "        x: %s   y: %s\n", c.XLabel, c.YLabel); err != nil {
			return err
		}
	}
	// Legend.
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", glyphs[si%len(glyphs)], s.Name))
	}
	_, err := fmt.Fprintf(w, "        %s\n", strings.Join(legend, "   "))
	return err
}

func (c *Chart) bounds() (minX, maxX, minY, maxY float64, any bool) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for _, p := range s.Points {
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
			any = true
		}
	}
	return minX, maxX, minY, maxY, any
}

func (c *Chart) project(p Point, width, height int, minX, maxX, minY, maxY float64) (col, row int) {
	col = int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
	row = int(math.Round((maxY - p.Y) / (maxY - minY) * float64(height-1)))
	if col < 0 {
		col = 0
	}
	if col >= width {
		col = width - 1
	}
	if row < 0 {
		row = 0
	}
	if row >= height {
		row = height - 1
	}
	return col, row
}

// segment draws a light interpolation between two points with '.' where the
// cell is still empty, letting markers and other series win collisions.
func (c *Chart) segment(grid [][]byte, width, height int, minX, maxX, minY, maxY float64, a, b Point, _ byte) {
	steps := width / 2
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		p := Point{X: a.X + t*(b.X-a.X), Y: a.Y + t*(b.Y-a.Y)}
		col, row := c.project(p, width, height, minX, maxX, minY, maxY)
		if grid[row][col] == ' ' {
			grid[row][col] = '.'
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
