package viz

import (
	"bytes"
	"strings"
	"testing"
)

func demo() *Chart {
	return &Chart{
		Title:  "demo",
		XLabel: "lambda",
		YLabel: "weight",
		Series: []Series{
			{Name: "up", Points: []Point{{0, 0}, {5, 50}, {10, 100}}},
			{Name: "down", Points: []Point{{0, 100}, {5, 50}, {10, 0}}},
		},
	}
}

func TestRenderBasics(t *testing.T) {
	var buf bytes.Buffer
	if err := demo().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "x: lambda") {
		t.Error("missing axis labels")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing data markers")
	}
	// 16 plot rows + frame lines.
	if lines := strings.Count(out, "\n"); lines < 18 {
		t.Errorf("only %d lines", lines)
	}
}

func TestRenderEmpty(t *testing.T) {
	var buf bytes.Buffer
	c := &Chart{Title: "empty"}
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty chart not flagged")
	}
}

func TestRenderSinglePoint(t *testing.T) {
	var buf bytes.Buffer
	c := &Chart{Series: []Series{{Name: "pt", Points: []Point{{3, 7}}}}}
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Error("single point not plotted")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate Y range must not divide by zero.
	var buf bytes.Buffer
	c := &Chart{Series: []Series{{Name: "flat", Points: []Point{{0, 5}, {10, 5}}}}}
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestProjectionCorners(t *testing.T) {
	c := &Chart{}
	w, h := 64, 16
	col, row := c.project(Point{0, 0}, w, h, 0, 10, 0, 10)
	if col != 0 || row != h-1 {
		t.Errorf("min corner at (%d,%d)", col, row)
	}
	col, row = c.project(Point{10, 10}, w, h, 0, 10, 0, 10)
	if col != w-1 || row != 0 {
		t.Errorf("max corner at (%d,%d)", col, row)
	}
	// Out-of-range points clamp.
	col, row = c.project(Point{-5, 20}, w, h, 0, 10, 0, 10)
	if col != 0 || row != 0 {
		t.Errorf("clamp failed: (%d,%d)", col, row)
	}
}

func TestManySeriesCycleGlyphs(t *testing.T) {
	c := &Chart{}
	for i := 0; i < 10; i++ {
		c.Series = append(c.Series, Series{
			Name:   strings.Repeat("s", i+1),
			Points: []Point{{0, float64(i)}, {1, float64(i)}},
		})
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestCustomDimensions(t *testing.T) {
	c := demo()
	c.Width = 20
	c.Height = 5
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if len(line) > 20+30 { // plot + labels margin
			t.Errorf("line too long for custom width: %q", line)
		}
	}
}
