package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"rfidsched/internal/deploy"
)

// Fingerprint canonically identifies a scheduling problem instance: the
// resolved deployment geometry plus every scheduling-relevant request knob.
// It is the cache key, the single-flight key, the job id, and the shard
// selector, so its definition is the service's correctness pivot:
//
//   - included: algorithm, mode, rho (alg2/alg3 only — canonicalized to 0
//     elsewhere), seed (colorwave/random only), deterministic per-slot poll
//     budget, slot cap, and the full reader/tag geometry (positions and
//     both radii, as exact float64 bit patterns);
//   - excluded: solver worker count (schedules are bit-identical at any
//     value, DESIGN.md §11), wall-clock deadlines (non-deterministic, those
//     requests bypass the cache), and transport knobs (async, no_cache).
//
// Generator requests are fingerprinted by the deployment they expand to,
// not the generator parameters, so a generator spec and its materialized
// JSON deployment hit the same cache line.
//
// The hash is SHA-256 over a versioned, length-prefixed binary encoding;
// any change to the encoding must bump fpVersion.
type Fingerprint [sha256.Size]byte

const fpVersion = "rfidserved-fp-v1"

// String returns the fingerprint in hex — the wire form used for job ids.
func (fp Fingerprint) String() string { return hex.EncodeToString(fp[:]) }

// ParseFingerprint parses the hex wire form.
func ParseFingerprint(s string) (Fingerprint, bool) {
	var fp Fingerprint
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(fp) {
		return fp, false
	}
	copy(fp[:], b)
	return fp, true
}

// Shard maps the fingerprint onto one of n queue shards. Identical
// instances always land on the same shard, giving the queue natural
// affinity for the recurring-request workload.
func (fp Fingerprint) Shard(n int) int {
	if n <= 1 {
		return 0
	}
	return int(binary.BigEndian.Uint64(fp[:8]) % uint64(n))
}

// fpWriter serializes fingerprint fields into a running hash.
type fpWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (w *fpWriter) u64(v uint64) {
	binary.BigEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

func (w *fpWriter) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *fpWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.h.Write([]byte(s))
}

// FingerprintRequest computes the canonical fingerprint of a normalized
// request and its resolved deployment. Callers must pass requests through
// DecodeRequest (or Request.normalize) first: canonicalization is what
// makes "rho on a PTAS request" and similar irrelevant fields collapse.
func FingerprintRequest(req *Request, dep *deploy.Deployment) Fingerprint {
	w := &fpWriter{h: sha256.New()}
	w.str(fpVersion)
	w.str(req.Algorithm)
	w.str(req.Mode)
	w.f64(req.Rho)
	w.u64(req.Seed)
	w.u64(uint64(req.SlotPolls))
	w.u64(uint64(req.MaxSlots))
	w.u64(uint64(len(dep.Readers)))
	for _, r := range dep.Readers {
		w.f64(r.X)
		w.f64(r.Y)
		w.f64(r.InterferenceR)
		w.f64(r.InterrogationR)
	}
	w.u64(uint64(len(dep.Tags)))
	for _, t := range dep.Tags {
		w.f64(t.X)
		w.f64(t.Y)
	}
	var fp Fingerprint
	w.h.Sum(fp[:0])
	return fp
}
