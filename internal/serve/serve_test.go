package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rfidsched/internal/obs"
)

// newTestServer builds a server with small limits and an httptest front
// end; the cleanup drains the pool so worker goroutines never outlive the
// test.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Limits == (Limits{}) {
		opts.Limits = testLimits()
	}
	s := NewServer(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = s.Drain(10 * time.Second)
	})
	return s, ts
}

func postSchedule(t *testing.T, ts *httptest.Server, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/schedule: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, b
}

func decodeResponse(t *testing.T, b []byte) Response {
	t.Helper()
	var r Response
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatalf("decode response %s: %v", b, err)
	}
	return r
}

func counter(reg *obs.Registry, name string) int64 {
	return reg.Counter(name).Value()
}

const smallBody = `{
  "generator": {"seed": 3, "readers": 12, "tags": 80, "side": 50, "lambdaR": 12, "lambdar": 5},
  "algorithm": "alg2"
}`

func TestScheduleSolveAndCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Options{})

	status, b := postSchedule(t, ts, smallBody)
	if status != http.StatusOK {
		t.Fatalf("cold solve: status %d, body %s", status, b)
	}
	cold := decodeResponse(t, b)
	if cold.Cached {
		t.Error("cold solve reported cached=true")
	}
	res := cold.Result
	if res == nil || !res.Verified || res.Slots == 0 || res.TagsRead == 0 {
		t.Fatalf("cold solve result malformed: %+v", res)
	}
	if len(res.Schedule) != res.Slots {
		t.Fatalf("schedule has %d slots, result claims %d", len(res.Schedule), res.Slots)
	}

	status, b = postSchedule(t, ts, smallBody)
	if status != http.StatusOK {
		t.Fatalf("warm solve: status %d, body %s", status, b)
	}
	warm := decodeResponse(t, b)
	if !warm.Cached {
		t.Error("second identical request was not a cache hit")
	}
	coldJSON, _ := json.Marshal(cold.Result)
	warmJSON, _ := json.Marshal(warm.Result)
	if string(coldJSON) != string(warmJSON) {
		t.Errorf("cache hit result differs from cold solve:\n%s\n%s", coldJSON, warmJSON)
	}
	if got := counter(s.reg, "serve.solves"); got != 1 {
		t.Errorf("serve.solves = %d, want 1", got)
	}
	if got := counter(s.reg, "serve.cache.hits"); got != 1 {
		t.Errorf("serve.cache.hits = %d, want 1", got)
	}
}

func TestScheduleBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := map[string]string{
		"emptyBody":       ``,
		"notJSON":         `schedule me`,
		"nanLiteral":      `{"deployment":{"readers":[{"x":NaN,"y":0,"interferenceRadius":3,"interrogationRadius":1}],"tags":[]},"algorithm":"alg2"}`,
		"negativeRadius":  `{"deployment":{"readers":[{"x":1,"y":1,"interferenceRadius":-5,"interrogationRadius":2}],"tags":[]}}`,
		"zeroRadius":      `{"deployment":{"readers":[{"x":1,"y":1,"interferenceRadius":4,"interrogationRadius":0}],"tags":[]}}`,
		"invertedRadii":   `{"deployment":{"readers":[{"x":1,"y":1,"interferenceRadius":1,"interrogationRadius":4}],"tags":[]}}`,
		"infViaExponent":  `{"deployment":{"readers":[{"x":1e999,"y":1,"interferenceRadius":4,"interrogationRadius":1}],"tags":[]}}`,
		"noReaders":       `{"deployment":{"readers":[],"tags":[]}}`,
		"noSpec":          `{"algorithm":"alg2"}`,
		"bothSpecs":       `{"deployment":{"readers":[{"x":1,"y":1,"interferenceRadius":4,"interrogationRadius":1}],"tags":[]},"generator":{"readers":5,"tags":5}}`,
		"badAlgorithm":    `{"generator":{"seed":1,"readers":5,"tags":5},"algorithm":"simulated-annealing"}`,
		"badMode":         `{"generator":{"seed":1,"readers":5,"tags":5},"mode":"batch"}`,
		"badRho":          `{"generator":{"seed":1,"readers":5,"tags":5},"algorithm":"alg2","rho":0.5}`,
		"negativeWorkers": `{"generator":{"seed":1,"readers":5,"tags":5},"workers":-2}`,
		"negativePolls":   `{"generator":{"seed":1,"readers":5,"tags":5},"slot_polls":-1}`,
		"negDeadline":     `{"generator":{"seed":1,"readers":5,"tags":5},"deadline_ms":-100}`,
		"tooManyReaders":  `{"generator":{"seed":1,"readers":5000,"tags":5}}`,
		"tooManyTags":     `{"generator":{"seed":1,"readers":5,"tags":500000}}`,
		"badLayout":       `{"generator":{"seed":1,"readers":5,"tags":5,"layout":"orbital"}}`,
		"unknownField":    `{"generator":{"seed":1,"readers":5,"tags":5},"algoritm":"alg2"}`,
		"trailingGarbage": `{"generator":{"seed":1,"readers":5,"tags":5}}{"again":true}`,
		"genReaders0":     `{"generator":{"seed":1,"readers":0,"tags":5}}`,
	}
	for name, body := range cases {
		status, b := postSchedule(t, ts, body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400), body %s", name, status, b)
		}
		var e map[string]string
		if err := json.Unmarshal(b, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body not JSON {error}: %s", name, b)
		}
	}
}

func TestScheduleMethodAndJobsRouting(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/schedule")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/schedule: status %d, want 405", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/not-a-fingerprint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad job id: status %d, want 400", resp.StatusCode)
	}

	unknown := strings.Repeat("ab", 32)
	resp, err = http.Get(ts.URL + "/v1/jobs/" + unknown)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}

	// Telemetry fallthrough: the obs endpoints are mounted under the same
	// handler.
	for _, path := range []string{"/metrics", "/runs", "/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := `{"generator": {"seed": 5, "readers": 10, "tags": 50, "side": 40, "lambdaR": 12, "lambdar": 5}, "algorithm": "ghc", "async": true}`
	status, b := postSchedule(t, ts, body)
	if status != http.StatusAccepted {
		t.Fatalf("async submit: status %d, body %s", status, b)
	}
	var jr JobResponse
	if err := json.Unmarshal(b, &jr); err != nil || jr.Job == "" {
		t.Fatalf("async submit body: %s", b)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + jr.Job)
		if err != nil {
			t.Fatal(err)
		}
		jb, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(jb, &jr); err != nil {
			t.Fatalf("poll body %s: %v", jb, err)
		}
		if jr.Status == JobDone {
			if jr.Result == nil || !jr.Result.Verified {
				t.Fatalf("done job carries no verified result: %s", jb)
			}
			break
		}
		if jr.Status == JobFailed {
			t.Fatalf("job failed: %s", jr.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", jr.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSingleFlight holds the one solve of N concurrent identical requests
// at the gate until all stragglers have attached, then asserts exactly one
// solve happened and every waiter got the same bit-identical result.
func TestSingleFlight(t *testing.T) {
	const n = 5
	release := make(chan struct{})
	running := make(chan struct{}, n)
	s, ts := newTestServer(t, Options{})
	s.solveGate = func(*Job) {
		running <- struct{}{}
		<-release
	}

	select {
	case <-running:
		t.Fatal("solve before any request")
	default:
	}

	var wg sync.WaitGroup
	results := make([]string, n)
	errs := make([]error, n)
	kick := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-kick
			status, b := postScheduleQuiet(ts, smallBody)
			if status != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", status, b)
				return
			}
			var r Response
			if err := json.Unmarshal(b, &r); err != nil {
				errs[i] = err
				return
			}
			j, _ := json.Marshal(r.Result)
			results[i] = string(j)
		}(i)
	}
	close(kick)

	// The first request reaches the gate; the rest must observe the pending
	// job and merge. Wait for the merge counter so the release below cannot
	// race a straggler into a cache hit (which would also be fine, but then
	// the assertion "merged = n-1" would flake).
	<-running
	waitCounter(t, s.reg, "serve.singleflight.merged", n-1)
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Errorf("request %d result differs from request 0", i)
		}
	}
	if got := counter(s.reg, "serve.solves"); got != 1 {
		t.Errorf("serve.solves = %d, want exactly 1 for %d concurrent identical requests", got, n)
	}
	if got := counter(s.reg, "serve.singleflight.merged"); got != n-1 {
		t.Errorf("serve.singleflight.merged = %d, want %d", got, n-1)
	}
}

func postScheduleQuiet(ts *httptest.Server, body string) (int, []byte) {
	resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, []byte(err.Error())
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func waitCounter(t *testing.T, reg *obs.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for counter(reg, name) < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want %d (timed out)", name, counter(reg, name), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueueBackpressure fills the single shard (depth 1, one gated worker)
// and asserts the overflow request is rejected with 429.
func TestQueueBackpressure(t *testing.T) {
	// Buffered token gate: each solve consumes one token; the test releases
	// a surplus once the backpressure assertions are done, so cleanup's
	// Drain always terminates.
	release := make(chan struct{}, 16)
	running := make(chan struct{}, 16)
	s, ts := newTestServer(t, Options{Shards: 1, WorkersPerShard: 1, QueueDepth: 1})
	s.solveGate = func(*Job) {
		running <- struct{}{}
		<-release
	}

	asyncBody := func(seed int) string {
		return fmt.Sprintf(`{"generator": {"seed": %d, "readers": 8, "tags": 30, "side": 40, "lambdaR": 12, "lambdar": 5}, "algorithm": "ghc", "async": true}`, seed)
	}
	// Job A occupies the worker (wait until it is truly running, not queued).
	if status, b := postSchedule(t, ts, asyncBody(1)); status != http.StatusAccepted {
		t.Fatalf("job A: status %d, body %s", status, b)
	}
	<-running
	// Job B fills the queue slot.
	if status, b := postSchedule(t, ts, asyncBody(2)); status != http.StatusAccepted {
		t.Fatalf("job B: status %d, body %s", status, b)
	}
	// Job C overflows.
	status, b := postSchedule(t, ts, asyncBody(3))
	if status != http.StatusTooManyRequests {
		t.Fatalf("job C: status %d (want 429), body %s", status, b)
	}
	if got := counter(s.reg, "serve.rejected.queue_full"); got != 1 {
		t.Errorf("serve.rejected.queue_full = %d, want 1", got)
	}
	// A rejected fingerprint must not wedge: after capacity frees up the
	// same request is admitted.
	for i := 0; i < cap(release); i++ {
		release <- struct{}{}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, _ = postSchedule(t, ts, asyncBody(3))
		if status == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job C never admitted after drain: status %d", status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDrain: while one job is gated in flight, Drain must flip readiness
// and refuse new work, then complete once the job finishes — and the
// in-flight waiter still gets its 200.
func TestDrain(t *testing.T) {
	release := make(chan struct{})
	running := make(chan struct{}, 1)
	s, ts := newTestServer(t, Options{})
	s.solveGate = func(*Job) {
		running <- struct{}{}
		<-release
	}

	type outcome struct {
		status int
		body   []byte
	}
	inflight := make(chan outcome, 1)
	go func() {
		st, b := postScheduleQuiet(ts, smallBody)
		inflight <- outcome{st, b}
	}()
	<-running

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(30 * time.Second) }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New work is refused while draining.
	status, b := postSchedule(t, ts, `{"generator": {"seed": 99, "readers": 8, "tags": 30, "side": 40, "lambdaR": 12, "lambdar": 5}}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d (want 503), body %s", status, b)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain: status %d, want 503", resp.StatusCode)
	}

	select {
	case err := <-drained:
		t.Fatalf("drain returned %v with a job still gated", err)
	default:
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	out := <-inflight
	if out.status != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d, body %s", out.status, out.body)
	}
	r := decodeResponse(t, out.body)
	if r.Result == nil || !r.Result.Verified {
		t.Fatalf("drained job returned unverified result: %s", out.body)
	}
}

// TestDrainTimeout: a drain that cannot finish reports the timeout instead
// of hanging.
func TestDrainTimeout(t *testing.T) {
	release := make(chan struct{})
	running := make(chan struct{}, 1)
	s, ts := newTestServer(t, Options{})
	s.solveGate = func(*Job) {
		running <- struct{}{}
		<-release
	}
	go postScheduleQuiet(ts, smallBody)
	<-running
	if err := s.Drain(50 * time.Millisecond); err == nil {
		t.Fatal("Drain returned nil with a job wedged at the gate")
	}
	close(release)
}

// TestOneShotMode exercises mode=oneshot including the anytime flag under a
// deterministic poll budget.
func TestOneShotMode(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := `{"generator": {"seed": 3, "readers": 12, "tags": 80, "side": 50, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2", "mode": "oneshot"}`
	status, b := postSchedule(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("oneshot: status %d, body %s", status, b)
	}
	r := decodeResponse(t, b)
	if r.Result.Mode != ModeOneShot || !r.Result.Verified {
		t.Fatalf("oneshot result malformed: %+v", r.Result)
	}
	if len(r.Result.Active) == 0 || r.Result.Weight <= 0 {
		t.Fatalf("oneshot returned empty set on a coverable deployment: %+v", r.Result)
	}
	if len(r.Result.Schedule) != 0 || r.Result.Slots != 0 {
		t.Errorf("oneshot result carries MCS fields: %+v", r.Result)
	}
}

// TestDeadlineCappedMCS: a deterministic per-slot poll budget yields an
// anytime (truncated) yet complete, verified schedule.
func TestDeadlineCappedMCS(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := `{"generator": {"seed": 3, "readers": 12, "tags": 80, "side": 50, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2", "slot_polls": 1}`
	status, b := postSchedule(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("budgeted mcs: status %d, body %s", status, b)
	}
	r := decodeResponse(t, b)
	if !r.Result.Verified {
		t.Fatal("budgeted schedule not verified")
	}
	if r.Result.AnytimeSlots == 0 {
		t.Error("slot_polls=1 produced no anytime slots")
	}
	if r.Result.Incomplete {
		t.Error("budgeted schedule incomplete — the stall guard should force completion")
	}
}

// TestWallDeadlineBypassesCache: requests carrying a wall-clock deadline
// must not be served from (or stored into) the schedule cache.
func TestWallDeadlineBypassesCache(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	body := `{"generator": {"seed": 3, "readers": 12, "tags": 80, "side": 50, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2", "deadline_ms": 5000}`
	for i := 0; i < 2; i++ {
		status, b := postSchedule(t, ts, body)
		if status != http.StatusOK {
			t.Fatalf("deadline request %d: status %d, body %s", i, status, b)
		}
		if decodeResponse(t, b).Cached {
			t.Fatalf("deadline request %d served from cache", i)
		}
	}
	if got := counter(s.reg, "serve.solves"); got != 2 {
		t.Errorf("serve.solves = %d, want 2 (no caching across wall-deadline requests)", got)
	}
	if got := s.cache.Len(); got != 0 {
		t.Errorf("cache holds %d entries after uncacheable requests, want 0", got)
	}
}
