package serve

import (
	"bytes"
	"math"
	"testing"
)

// FuzzDecodeScheduleRequest hardens the one parser in the service that
// faces attacker-grade input: the /v1/schedule request decoder. Whatever
// the bytes — malformed JSON, NaN/Inf smuggled through exponents, negative
// radii, generator bombs — the decoder must return a clean BadRequestError
// or a request satisfying every admission invariant; it must never panic
// and never let non-finite geometry or cap-busting sizes through. Accepted
// requests must also fingerprint deterministically (the cache key cannot
// depend on decode order or hidden state).
func FuzzDecodeScheduleRequest(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`not json at all`,
		`{"generator": {"seed": 3, "readers": 12, "tags": 80, "side": 50, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2"}`,
		`{"generator": {"readers": 5, "tags": 5}, "algorithm": "colorwave", "seed": 9, "mode": "oneshot"}`,
		`{"deployment": {"readers": [{"x": 1, "y": 2, "interferenceRadius": 4, "interrogationRadius": 2}], "tags": [{"x": 1, "y": 1}]}}`,
		`{"deployment": {"readers": [{"x": NaN, "y": 0, "interferenceRadius": 3, "interrogationRadius": 1}], "tags": []}}`,
		`{"deployment": {"readers": [{"x": 1e999, "y": 0, "interferenceRadius": 3, "interrogationRadius": 1}], "tags": []}}`,
		`{"deployment": {"readers": [{"x": 0, "y": 0, "interferenceRadius": -3, "interrogationRadius": 1}], "tags": []}}`,
		`{"deployment": {"readers": [{"x": 0, "y": 0, "interferenceRadius": 1, "interrogationRadius": 3}], "tags": []}}`,
		`{"deployment": {"readers": [], "tags": [{"x": 1e999, "y": -1e999}]}}`,
		`{"generator": {"readers": 1000000000, "tags": 1000000000}}`,
		`{"generator": {"readers": -5, "tags": -5}}`,
		`{"generator": {"readers": 5, "tags": 5, "side": -10}}`,
		`{"generator": {"readers": 5, "tags": 5, "lambdaR": 1e999}}`,
		`{"generator": {"readers": 5, "tags": 5, "layout": "orbital"}}`,
		`{"generator": {"readers": 5, "tags": 5}, "rho": 0.1, "algorithm": "alg3"}`,
		`{"generator": {"readers": 5, "tags": 5}, "workers": -1}`,
		`{"generator": {"readers": 5, "tags": 5}, "deadline_ms": -7}`,
		`{"generator": {"readers": 5, "tags": 5}, "slot_polls": 2, "max_slots": 3}`,
		`{"generator": {"readers": 5, "tags": 5}} trailing`,
		`{"generator": {"readers": 5, "tags": 5}, "unknown_field": 1}`,
		`{"algorithm": "alg2"}`,
		`[1, 2, 3]`,
		`"just a string"`,
		`{"deployment": {"readers": [{"x": 5e-324, "y": 1.7976931348623157e308, "interferenceRadius": 2, "interrogationRadius": 2}], "tags": []}, "mode": "oneshot"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	// Tiny caps keep the harness fast even when the mutator finds a big
	// valid generator spec.
	lim := Limits{MaxReaders: 40, MaxTags: 200, MaxWorkers: 4}

	f.Fuzz(func(t *testing.T, data []byte) {
		req, dep, err := DecodeRequest(bytes.NewReader(data), lim)
		if err != nil {
			if !IsBadRequest(err) {
				t.Fatalf("decoder error is not a BadRequestError: %v", err)
			}
			return
		}
		// Accepted: the admission invariants must hold.
		if len(dep.Readers) == 0 || len(dep.Readers) > lim.MaxReaders || len(dep.Tags) > lim.MaxTags {
			t.Fatalf("accepted deployment busts caps: %d readers, %d tags", len(dep.Readers), len(dep.Tags))
		}
		for i, r := range dep.Readers {
			for _, v := range []float64{r.X, r.Y, r.InterferenceR, r.InterrogationR} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("accepted reader %d carries non-finite value %v", i, v)
				}
			}
			if r.InterrogationR <= 0 || r.InterferenceR < r.InterrogationR {
				t.Fatalf("accepted reader %d violates radius invariants (R=%v, r=%v)", i, r.InterferenceR, r.InterrogationR)
			}
		}
		for i, tg := range dep.Tags {
			if math.IsNaN(tg.X) || math.IsInf(tg.X, 0) || math.IsNaN(tg.Y) || math.IsInf(tg.Y, 0) {
				t.Fatalf("accepted tag %d carries non-finite position (%v, %v)", i, tg.X, tg.Y)
			}
		}
		if req.Workers < 0 || req.Workers > lim.MaxWorkers || req.SlotPolls < 0 || req.DeadlineMS < 0 || req.MaxSlots < 0 {
			t.Fatalf("accepted request busts knob bounds: %+v", req)
		}
		// The geometry must be buildable: model.NewSystem re-validates.
		if _, err := buildSystem(dep); err != nil {
			t.Fatalf("accepted deployment rejected by the model: %v", err)
		}
		// Fingerprinting is total and deterministic on accepted requests.
		if FingerprintRequest(req, dep) != FingerprintRequest(req, dep) {
			t.Fatal("fingerprint not deterministic")
		}
	})
}
