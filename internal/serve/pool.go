package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"rfidsched/internal/deploy"
	"rfidsched/internal/obs"
)

// Job states reported by /v1/jobs/{id}.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// Job is one admitted scheduling problem flowing through the queue. A job
// is the single-flight unit: every concurrent request with the same
// fingerprint attaches to the same Job and waits on its done channel; the
// solve happens exactly once.
type Job struct {
	FP  Fingerprint
	Req *Request
	Dep *deploy.Deployment

	done chan struct{} // closed when the job reaches done/failed

	// trace is the creating request's trace (nil for jobs materialized
	// outside a request); the worker attributes queue/solve/verify phases to
	// it. enqueuedAt stamps shard admission for the queue-latency phase.
	trace      *reqTrace
	enqueuedAt time.Time

	mu     sync.Mutex
	status string
	res    *Result
	err    error
}

func newJob(fp Fingerprint, req *Request, dep *deploy.Deployment) *Job {
	return &Job{FP: fp, Req: req, Dep: dep, done: make(chan struct{}), status: JobQueued}
}

// Done returns the channel closed on completion.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status returns the job's current state.
func (j *Job) Status() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Outcome returns the result and error once the job is finished; before
// that both are nil.
func (j *Job) Outcome() (*Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.res, j.err
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.status = JobRunning
	j.mu.Unlock()
}

func (j *Job) finish(res *Result, err error) {
	j.mu.Lock()
	if err != nil {
		j.status = JobFailed
	} else {
		j.status = JobDone
	}
	j.res, j.err = res, err
	j.mu.Unlock()
	close(j.done)
}

// Pool errors surfaced to the HTTP layer as backpressure statuses.
var (
	// ErrQueueFull means the job's shard is at capacity — HTTP 429.
	ErrQueueFull = errors.New("serve: shard queue full")
	// ErrDraining means the pool stopped accepting work — HTTP 503.
	ErrDraining = errors.New("serve: draining")
)

// pool is the sharded work queue and its bounded worker set. A job's shard
// is a pure function of its fingerprint (Fingerprint.Shard), so identical
// instances queue behind each other instead of racing across shards, and
// each shard's channel capacity is the admission-control backpressure knob:
// a full shard rejects instead of buffering without bound.
type pool struct {
	shards   []chan *Job
	solve    func(*Job)
	wg       sync.WaitGroup
	mu       sync.Mutex
	closed   bool
	depth    atomic.Int64 // queued but not yet picked up
	gauge    *obs.Gauge   // "serve.queue.depth"
	inflight *obs.Gauge   // "serve.jobs.inflight"
}

// newPool starts workersPerShard workers per shard, each draining only its
// own shard channel (capacity queueDepth).
func newPool(shards, workersPerShard, queueDepth int, reg *obs.Registry, solve func(*Job)) *pool {
	if shards < 1 {
		shards = 1
	}
	if workersPerShard < 1 {
		workersPerShard = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	p := &pool{
		shards:   make([]chan *Job, shards),
		solve:    solve,
		gauge:    reg.Gauge("serve.queue.depth"),
		inflight: reg.Gauge("serve.jobs.inflight"),
	}
	p.gauge.Set(0)
	p.inflight.Set(0)
	var running atomic.Int64
	for i := range p.shards {
		ch := make(chan *Job, queueDepth)
		p.shards[i] = ch
		for w := 0; w < workersPerShard; w++ {
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				for j := range ch {
					p.gauge.Set(float64(p.depth.Add(-1)))
					p.inflight.Set(float64(running.Add(1)))
					p.solve(j)
					p.inflight.Set(float64(running.Add(-1)))
				}
			}()
		}
	}
	return p
}

// enqueue admits a job to its shard, or rejects it with the backpressure
// error the HTTP layer maps to 429/503. The mutex serializes the closed
// check against drain's channel close, so enqueue never sends on a closed
// channel.
func (p *pool) enqueue(j *Job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrDraining
	}
	select {
	case p.shards[j.FP.Shard(len(p.shards))] <- j:
		p.gauge.Set(float64(p.depth.Add(1)))
		return nil
	default:
		return ErrQueueFull
	}
}

// drain closes intake and blocks until every queued and in-flight job has
// completed. Queued jobs still run — a drain finishes the work it admitted;
// it only refuses new work.
func (p *pool) drain() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		for _, ch := range p.shards {
			close(ch)
		}
	}
	p.mu.Unlock()
	p.wg.Wait()
}
