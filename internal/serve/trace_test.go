package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"rfidsched/internal/obs"
	"rfidsched/internal/obs/history"
)

// lockedBuffer is a bytes.Buffer safe for the handler goroutines that write
// access-log lines concurrently with test assertions.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestTraceIDEchoAndValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	do := func(traceID string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest("POST", ts.URL+"/v1/schedule", strings.NewReader(smallBody))
		if traceID != "" {
			req.Header.Set(TraceHeader, traceID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	// A valid client ID round-trips verbatim.
	if got := do("client-trace_1.a").Header.Get(TraceHeader); got != "client-trace_1.a" {
		t.Fatalf("valid client trace id: echoed %q", got)
	}
	// No client ID: the server mints a 16-hex-char one.
	gen := do("").Header.Get(TraceHeader)
	if len(gen) != 16 || !validTraceID(gen) {
		t.Fatalf("generated trace id %q is not 16 valid chars", gen)
	}
	// Unsafe IDs (over-length, odd characters) are replaced, not echoed.
	for _, bad := range []string{"spaced id", strings.Repeat("a", 65), "ünïcode"} {
		if got := do(bad).Header.Get(TraceHeader); got == bad || got == "" {
			t.Fatalf("unsafe trace id %q: echoed %q", bad, got)
		}
	}
	// The validator itself also refuses values the HTTP client would never
	// let a test send, like header-injection attempts.
	for _, bad := range []string{"", "evil\nid", "a b", "semi;colon"} {
		if validTraceID(bad) {
			t.Errorf("validTraceID(%q) = true", bad)
		}
	}
}

func TestTraceIDOnErrorResponses(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// Bad request: header echoed AND the error body carries the same ID.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/schedule", strings.NewReader("not json"))
	req.Header.Set(TraceHeader, "err-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get(TraceHeader); got != "err-trace-1" {
		t.Fatalf("400 header trace = %q", got)
	}
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error body not JSON: %s", body)
	}
	if eb.TraceID != "err-trace-1" || eb.Error == "" {
		t.Fatalf("error body = %+v, want trace err-trace-1", eb)
	}

	// Method not allowed on the jobs endpoint also echoes a trace.
	resp, err = http.Post(ts.URL+"/v1/jobs/abc", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get(TraceHeader) == "" {
		t.Fatalf("POST /v1/jobs: status %d, trace %q", resp.StatusCode, resp.Header.Get(TraceHeader))
	}
}

func TestBackpressureRetryAfter(t *testing.T) {
	release := make(chan struct{}, 16)
	running := make(chan struct{}, 16)
	s, ts := newTestServer(t, Options{Shards: 1, WorkersPerShard: 1, QueueDepth: 1})
	s.solveGate = func(*Job) {
		running <- struct{}{}
		<-release
	}
	defer func() {
		for i := 0; i < cap(release); i++ {
			release <- struct{}{}
		}
	}()

	asyncBody := func(seed int) string {
		return fmt.Sprintf(`{"generator": {"seed": %d, "readers": 8, "tags": 30, "side": 40, "lambdaR": 12, "lambdar": 5}, "algorithm": "ghc", "async": true}`, seed)
	}
	if status, b := postSchedule(t, ts, asyncBody(1)); status != http.StatusAccepted {
		t.Fatalf("job A: status %d, body %s", status, b)
	}
	<-running
	if status, b := postSchedule(t, ts, asyncBody(2)); status != http.StatusAccepted {
		t.Fatalf("job B: status %d, body %s", status, b)
	}

	resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", strings.NewReader(asyncBody(3)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow: status %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("429 Retry-After = %q, want 1", got)
	}
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("429 body not JSON: %s", body)
	}
	if eb.RetryAfterSeconds != 1 || eb.TraceID == "" {
		t.Fatalf("429 body = %+v, want retry_after_seconds=1 and a trace id", eb)
	}
}

func TestDrainingRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", strings.NewReader(smallBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "5" {
		t.Fatalf("503 Retry-After = %q, want 5", got)
	}
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("503 body not JSON: %s", body)
	}
	if eb.RetryAfterSeconds != 5 || eb.TraceID == "" {
		t.Fatalf("503 body = %+v, want retry_after_seconds=5 and a trace id", eb)
	}
}

func TestResponseHeadersNoStore(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", strings.NewReader(smallBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "application/json" {
		t.Fatalf("Content-Type = %q", got)
	}
	if got := resp.Header.Get("Cache-Control"); got != "no-store" {
		t.Fatalf("Cache-Control = %q", got)
	}
}

func TestPhaseHistogramsPopulated(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	if status, b := postSchedule(t, ts, smallBody); status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, b)
	}
	snap := s.reg.Snapshot()
	for _, name := range []string{
		"serve.request.schedule.seconds",
		"serve.phase.decode.seconds",
		"serve.phase.cache.seconds",
		"serve.phase.queue.seconds",
		"serve.phase.solve.seconds",
		"serve.phase.verify.seconds",
		"serve.phase.encode.seconds",
		"serve.solve.alg2.seconds",
	} {
		h, ok := snap.Histograms[name]
		if !ok || h.N == 0 {
			t.Errorf("histogram %s missing or empty after a solved request", name)
		}
	}
}

func TestAccessLogLine(t *testing.T) {
	var buf lockedBuffer
	_, ts := newTestServer(t, Options{AccessLog: obs.NewJSONLogger(&buf, 0)})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/schedule", strings.NewReader(smallBody))
	req.Header.Set(TraceHeader, "log-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	line := strings.TrimSpace(buf.String())
	var entry map[string]any
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("access log is not one JSON line: %q", line)
	}
	if entry["trace"] != "log-trace-1" || entry["endpoint"] != "schedule" {
		t.Fatalf("access log entry = %v", entry)
	}
	if entry["status"] != float64(200) || entry["outcome"] != "solved" {
		t.Fatalf("access log entry = %v", entry)
	}
	phases, ok := entry["phases"].(map[string]any)
	if !ok {
		t.Fatalf("access log lacks phase group: %v", entry)
	}
	for _, p := range []string{"decode_ms", "solve_ms", "verify_ms", "encode_ms"} {
		if _, ok := phases[p]; !ok {
			t.Errorf("phase group lacks %s: %v", phases, p)
		}
	}
}

func TestSlowRequestLandsInFlightRecorder(t *testing.T) {
	flight := obs.NewFlightRecorder(64)
	var buf lockedBuffer
	_, ts := newTestServer(t, Options{
		AccessLog:   obs.NewJSONLogger(&buf, 0),
		SlowRequest: time.Nanosecond, // everything is slow
		Flight:      flight,
	})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/schedule", strings.NewReader(smallBody))
	req.Header.Set(TraceHeader, "slow-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// End to end: the teed trace is visible through the /debug/flight
	// endpoint the obs handler mounts, as JSONL with our trace in Run.
	dresp, err := http.Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	dump, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != 200 {
		t.Fatalf("/debug/flight status %d", dresp.StatusCode)
	}
	var phaseLines, completedLines int
	for _, line := range strings.Split(strings.TrimSpace(string(dump)), "\n") {
		var e obs.Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("flight dump line not JSON: %q", line)
		}
		if e.Run != "slow-trace-1" {
			continue
		}
		switch e.Type {
		case obs.RequestPhase:
			phaseLines++
		case obs.RequestCompleted:
			if e.Cause != "schedule" || e.M != 200 {
				t.Fatalf("request_completed event = %+v", e)
			}
			completedLines++
		}
	}
	if phaseLines == 0 || completedLines != 1 {
		t.Fatalf("flight dump: %d phase lines, %d completed lines (want >0, 1):\n%s",
			phaseLines, completedLines, dump)
	}
	if !strings.Contains(buf.String(), "slow request") {
		t.Fatalf("slow request did not log at Warn: %s", buf.String())
	}
}

func TestRequestCompletedEventEmitted(t *testing.T) {
	flight := obs.NewFlightRecorder(16) // any Tracer works; a recorder is inspectable
	_, ts := newTestServer(t, Options{Tracer: flight})
	if status, b := postSchedule(t, ts, smallBody); status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, b)
	}
	var found bool
	for _, e := range flight.Events() {
		if e.Type == obs.RequestCompleted && e.Cause == "schedule" && e.M == 200 && e.N >= 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no request_completed event in tracer: %+v", flight.Events())
	}
}

// TestObservabilityDoesNotPerturbSchedules is the PR's determinism property:
// the same request produces bit-identical Result JSON whether every
// observability feature is on or off, at 1 and at 4 solver workers.
func TestObservabilityDoesNotPerturbSchedules(t *testing.T) {
	body := func(workers int) string {
		return fmt.Sprintf(`{
  "generator": {"seed": 11, "readers": 14, "tags": 90, "side": 50, "lambdaR": 12, "lambdar": 5},
  "algorithm": "alg2",
  "workers": %d
}`, workers)
	}

	solve := func(t *testing.T, observed bool, workers int) string {
		t.Helper()
		opts := Options{}
		var stop func()
		if observed {
			reg := obs.NewRegistry()
			flight := obs.NewFlightRecorder(256)
			broker := obs.NewSSEBroker(0)
			broker.SetReplay(flight)
			store := history.New(reg, history.Options{Interval: time.Millisecond})
			stop = store.Start()
			var buf lockedBuffer
			opts = Options{
				Metrics:     reg,
				AccessLog:   obs.NewJSONLogger(&buf, 0),
				SlowRequest: time.Nanosecond,
				Flight:      flight,
				Tracer:      obs.Tee(flight, broker),
				History:     store.Handler(),
				Events:      broker,
			}
		}
		_, ts := newTestServer(t, opts)
		if stop != nil {
			t.Cleanup(stop)
		}
		status, b := postSchedule(t, ts, body(workers))
		if status != http.StatusOK {
			t.Fatalf("status %d, body %s", status, b)
		}
		res, err := json.Marshal(decodeResponse(t, b).Result)
		if err != nil {
			t.Fatal(err)
		}
		return string(res)
	}

	for _, workers := range []int{1, 4} {
		bare := solve(t, false, workers)
		full := solve(t, true, workers)
		if bare != full {
			t.Errorf("workers=%d: schedule differs with observability on:\nbare: %s\nfull: %s",
				workers, bare, full)
		}
		if workers == 1 {
			// Cross-worker determinism is part of the same contract.
			if w4 := solve(t, false, 4); w4 != bare {
				t.Errorf("schedule differs between 1 and 4 workers:\n%s\n%s", bare, w4)
			}
		}
	}
}
