// Package serve turns the scheduling library into a long-running
// scheduling-as-a-service daemon: an HTTP/JSON front end that accepts
// deployment specs (or rfidgen-style generator parameters), funnels them
// through a sharded work queue into a bounded worker pool, and returns
// one-shot MWFS or full MCS schedules. Identical requests are collapsed
// twice — in flight by single-flight deduplication and across time by an
// LRU schedule cache keyed by a canonical deployment fingerprint — so the
// recurring re-scheduling workload of a dense deployment (tag churn,
// energy re-planning) costs one solve, not one per client. See DESIGN.md
// §14 for the architecture.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"rfidsched/internal/deploy"
	"rfidsched/internal/geom"
	"rfidsched/internal/model"
)

// Algorithms the service accepts, matching the rfidsched CLI names.
const (
	AlgPTAS        = "alg1"
	AlgGrowth      = "alg2"
	AlgDistributed = "alg3"
	AlgGHC         = "ghc"
	AlgColorwave   = "colorwave"
	AlgRandom      = "random"
	AlgExact       = "exact"
)

// Request modes.
const (
	ModeMCS     = "mcs"     // full covering schedule (default)
	ModeOneShot = "oneshot" // a single slot's scheduling set
)

// DefaultMaxSlots is the normalized MCS slot cap: requests that leave
// MaxSlots at 0 are canonicalized to this value (the core driver's own
// default), so "unset" and "explicitly the default" share a fingerprint.
const DefaultMaxSlots = 100000

// DefaultRho is the growth threshold applied when an alg2/alg3 request
// leaves rho unset, matching the rfidsched CLI default.
const DefaultRho = 1.25

// Limits is the admission-control envelope the decoder enforces before any
// solving work happens. The zero value means "use DefaultLimits".
type Limits struct {
	// MaxReaders and MaxTags bound the deployment size a single request may
	// submit (inline or via generator), capping per-job memory.
	MaxReaders int
	MaxTags    int
	// MaxWorkers caps the per-request solver worker count; requests asking
	// for more are clamped, not rejected (results are bit-identical at any
	// worker count).
	MaxWorkers int
	// MaxSlotDeadline caps the per-slot wall-clock budget a request may
	// claim; longer asks are clamped.
	MaxSlotDeadline time.Duration
}

// DefaultLimits returns the daemon's default admission envelope: an order
// of magnitude above the paper's 50x1200 evaluation scale, solver workers
// capped at the machine, per-slot wall budgets at 10s.
func DefaultLimits() Limits {
	return Limits{
		MaxReaders:      2000,
		MaxTags:         100000,
		MaxWorkers:      runtime.NumCPU(),
		MaxSlotDeadline: 10 * time.Second,
	}
}

// withDefaults fills zero fields from DefaultLimits.
func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxReaders <= 0 {
		l.MaxReaders = d.MaxReaders
	}
	if l.MaxTags <= 0 {
		l.MaxTags = d.MaxTags
	}
	if l.MaxWorkers <= 0 {
		l.MaxWorkers = d.MaxWorkers
	}
	if l.MaxSlotDeadline <= 0 {
		l.MaxSlotDeadline = d.MaxSlotDeadline
	}
	return l
}

// Generator mirrors the rfidgen CLI parameters: instead of shipping the
// whole deployment, a client may ask the service to draw it (the paper's
// Section VI setting and the layout variants).
type Generator struct {
	Seed         uint64  `json:"seed"`
	Readers      int     `json:"readers"`
	Tags         int     `json:"tags"`
	Side         float64 `json:"side"`
	LambdaR      float64 `json:"lambdaR"`
	LambdaSmallR float64 `json:"lambdar"`
	Layout       string  `json:"layout,omitempty"`
}

// Request is the /v1/schedule request body. Exactly one of Deployment and
// Generator must be set.
type Request struct {
	// Deployment is an inline deployment in the rfidgen JSON format.
	Deployment *deploy.Deployment `json:"deployment,omitempty"`
	// Generator asks the service to draw the deployment instead.
	Generator *Generator `json:"generator,omitempty"`

	Algorithm string `json:"algorithm,omitempty"` // default alg2
	Mode      string `json:"mode,omitempty"`      // "mcs" (default) or "oneshot"

	// Rho is the growth threshold for alg2/alg3 (default 1.25, must be >1).
	// Ignored (and canonicalized to 0) for every other algorithm.
	Rho float64 `json:"rho,omitempty"`
	// Seed feeds the randomized algorithms (colorwave, random); ignored and
	// canonicalized to 0 for the deterministic ones.
	Seed uint64 `json:"seed,omitempty"`

	// Workers is the solver worker count (parsearch pool); clamped to the
	// server's MaxWorkers. Not part of the fingerprint: schedules are
	// bit-identical at any worker count (DESIGN.md §11).
	Workers int `json:"workers,omitempty"`

	// DeadlineMS bounds each slot's solve in wall-clock milliseconds (the
	// anytime contract; truncated slots still activate a feasible set).
	// Wall-clock truncation is not deterministic, so requests carrying a
	// deadline bypass the schedule cache.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// SlotPolls is the deterministic per-slot poll budget — the reproducible
	// alternative to DeadlineMS. Scheduling-relevant, so it is part of the
	// fingerprint and cacheable.
	SlotPolls int `json:"slot_polls,omitempty"`
	// MaxSlots caps the schedule length (0 = the driver default).
	MaxSlots int `json:"max_slots,omitempty"`

	// Async makes POST /v1/schedule return 202 with the job id immediately;
	// poll /v1/jobs/{id} for the result.
	Async bool `json:"async,omitempty"`
	// NoCache skips the cache lookup, forcing a fresh solve (the result is
	// still stored). In-flight identical requests still coalesce.
	NoCache bool `json:"no_cache,omitempty"`
}

// BadRequestError marks client errors (HTTP 400) as opposed to solver or
// infrastructure failures (HTTP 5xx).
type BadRequestError struct{ msg string }

func (e *BadRequestError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &BadRequestError{msg: fmt.Sprintf(format, args...)}
}

// IsBadRequest reports whether err is a client-side request error.
func IsBadRequest(err error) bool {
	var b *BadRequestError
	return errors.As(err, &b)
}

// DecodeRequest parses and validates a /v1/schedule body. The returned
// request is normalized (defaults applied, irrelevant knobs canonicalized)
// and its deployment resolved — generator specs are expanded into concrete
// reader/tag records — so it is ready to fingerprint and solve. Every
// rejection is a BadRequestError; the decoder never panics, whatever the
// bytes (the FuzzDecodeScheduleRequest target enforces this).
func DecodeRequest(r io.Reader, lim Limits) (*Request, *deploy.Deployment, error) {
	lim = lim.withDefaults()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, nil, badRequestf("decode request: %v", err)
	}
	// Trailing garbage after the JSON document is a malformed request, not
	// something to silently ignore.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, nil, badRequestf("decode request: trailing data after JSON body")
	}
	dep, err := req.normalize(lim)
	if err != nil {
		return nil, nil, err
	}
	return &req, dep, nil
}

// normalize validates the request against the limits, applies defaults,
// canonicalizes fields irrelevant to the chosen algorithm/mode (so
// equivalent requests share a fingerprint), and resolves the deployment.
func (req *Request) normalize(lim Limits) (*deploy.Deployment, error) {
	if req.Algorithm == "" {
		req.Algorithm = AlgGrowth
	}
	switch req.Algorithm {
	case AlgPTAS, AlgGrowth, AlgDistributed, AlgGHC, AlgColorwave, AlgRandom, AlgExact:
	default:
		return nil, badRequestf("unknown algorithm %q", req.Algorithm)
	}
	if req.Mode == "" {
		req.Mode = ModeMCS
	}
	if req.Mode != ModeMCS && req.Mode != ModeOneShot {
		return nil, badRequestf("unknown mode %q (want %q or %q)", req.Mode, ModeMCS, ModeOneShot)
	}

	switch req.Algorithm {
	case AlgGrowth, AlgDistributed:
		if req.Rho == 0 {
			req.Rho = DefaultRho
		}
		if math.IsNaN(req.Rho) || math.IsInf(req.Rho, 0) || req.Rho <= 1 {
			return nil, badRequestf("rho = %v, need a finite value > 1", req.Rho)
		}
	default:
		req.Rho = 0
	}
	if req.Algorithm != AlgColorwave && req.Algorithm != AlgRandom {
		req.Seed = 0
	}

	if req.Workers < 0 {
		return nil, badRequestf("workers = %d, need >= 0", req.Workers)
	}
	if req.Workers > lim.MaxWorkers {
		req.Workers = lim.MaxWorkers
	}
	if req.DeadlineMS < 0 {
		return nil, badRequestf("deadline_ms = %d, need >= 0", req.DeadlineMS)
	}
	if maxMS := lim.MaxSlotDeadline.Milliseconds(); req.DeadlineMS > maxMS {
		req.DeadlineMS = maxMS
	}
	if req.SlotPolls < 0 {
		return nil, badRequestf("slot_polls = %d, need >= 0", req.SlotPolls)
	}
	if req.MaxSlots < 0 {
		return nil, badRequestf("max_slots = %d, need >= 0", req.MaxSlots)
	}
	if req.Mode == ModeMCS && req.MaxSlots == 0 {
		req.MaxSlots = DefaultMaxSlots
	}
	if req.Mode == ModeOneShot {
		req.MaxSlots = 0 // meaningless for a single slot
	}

	switch {
	case req.Deployment != nil && req.Generator != nil:
		return nil, badRequestf("request carries both a deployment and a generator; send exactly one")
	case req.Deployment != nil:
		if err := validateDeployment(req.Deployment, lim); err != nil {
			return nil, err
		}
		return req.Deployment, nil
	case req.Generator != nil:
		dep, err := expandGenerator(req.Generator, lim)
		if err != nil {
			return nil, err
		}
		return dep, nil
	default:
		return nil, badRequestf("request carries neither a deployment nor a generator")
	}
}

// Cacheable reports whether the (normalized) request's result may be served
// from and stored into the schedule cache: only wall-clock deadlines make a
// solve non-reproducible.
func (req *Request) Cacheable() bool { return req.DeadlineMS == 0 }

// validateDeployment enforces the model's geometric invariants on an inline
// deployment before it gets near model.NewSystem: finite coordinates
// everywhere, positive interrogation radii, interference >= interrogation.
// (NewSystem re-checks readers; tags it trusts, so the NaN/Inf tag check
// here is load-bearing.)
func validateDeployment(d *deploy.Deployment, lim Limits) error {
	if len(d.Readers) == 0 {
		return badRequestf("deployment has no readers")
	}
	if len(d.Readers) > lim.MaxReaders {
		return badRequestf("deployment has %d readers, server cap is %d", len(d.Readers), lim.MaxReaders)
	}
	if len(d.Tags) > lim.MaxTags {
		return badRequestf("deployment has %d tags, server cap is %d", len(d.Tags), lim.MaxTags)
	}
	for i, r := range d.Readers {
		if !geom.Pt(r.X, r.Y).IsFinite() {
			return badRequestf("reader %d has non-finite position (%v, %v)", i, r.X, r.Y)
		}
		if math.IsNaN(r.InterrogationR) || r.InterrogationR <= 0 {
			return badRequestf("reader %d has non-positive interrogation radius %v", i, r.InterrogationR)
		}
		if math.IsNaN(r.InterferenceR) || math.IsInf(r.InterferenceR, 0) || math.IsInf(r.InterrogationR, 0) {
			return badRequestf("reader %d has non-finite radius (R=%v, r=%v)", i, r.InterferenceR, r.InterrogationR)
		}
		if r.InterferenceR < r.InterrogationR {
			return badRequestf("reader %d has interference radius %v < interrogation radius %v",
				i, r.InterferenceR, r.InterrogationR)
		}
	}
	for i, t := range d.Tags {
		if !geom.Pt(t.X, t.Y).IsFinite() {
			return badRequestf("tag %d has non-finite position (%v, %v)", i, t.X, t.Y)
		}
	}
	return nil
}

// expandGenerator draws the deployment a generator spec describes, after
// validating the spec against both deploy's own rules and the server caps.
func expandGenerator(g *Generator, lim Limits) (*deploy.Deployment, error) {
	cfg := deploy.Config{
		Seed:       g.Seed,
		NumReaders: g.Readers,
		NumTags:    g.Tags,
		Side:       g.Side,
		LambdaR:    g.LambdaR, LambdaSmallR: g.LambdaSmallR,
	}
	if cfg.Side == 0 {
		cfg.Side = 100
	}
	if cfg.LambdaR == 0 {
		cfg.LambdaR = 12
	}
	if cfg.LambdaSmallR == 0 {
		cfg.LambdaSmallR = 5
	}
	switch g.Layout {
	case "", "uniform":
		cfg.Layout = deploy.Uniform
	case "clustered":
		cfg.Layout = deploy.Clustered
	case "aisles":
		cfg.Layout = deploy.Aisles
	case "hotspot":
		cfg.Layout = deploy.Hotspot
	case "grid":
		cfg.Layout = deploy.GridReaders
	default:
		return nil, badRequestf("unknown layout %q", g.Layout)
	}
	if math.IsNaN(cfg.Side) || math.IsInf(cfg.Side, 0) ||
		math.IsNaN(cfg.LambdaR) || math.IsInf(cfg.LambdaR, 0) ||
		math.IsNaN(cfg.LambdaSmallR) || math.IsInf(cfg.LambdaSmallR, 0) {
		return nil, badRequestf("generator parameters must be finite")
	}
	if cfg.NumReaders > lim.MaxReaders {
		return nil, badRequestf("generator asks for %d readers, server cap is %d", cfg.NumReaders, lim.MaxReaders)
	}
	if cfg.NumTags > lim.MaxTags {
		return nil, badRequestf("generator asks for %d tags, server cap is %d", cfg.NumTags, lim.MaxTags)
	}
	if err := cfg.Validate(); err != nil {
		return nil, badRequestf("%v", err)
	}
	sys, err := deploy.Generate(cfg)
	if err != nil {
		return nil, badRequestf("generate deployment: %v", err)
	}
	return deploy.ToDeployment(sys), nil
}

// buildSystem constructs the live system for a resolved deployment,
// classifying failures as client errors (geometry the model rejects).
func buildSystem(dep *deploy.Deployment) (*model.System, error) {
	sys, err := dep.ToSystem()
	if err != nil {
		return nil, badRequestf("%v", err)
	}
	return sys, nil
}
