package serve

import (
	"strings"
	"testing"

	"rfidsched/internal/deploy"
)

// decodeTestRequest runs a JSON body through the production decoder with
// small limits, failing the test on rejection.
func decodeTestRequest(t *testing.T, body string) (*Request, *deploy.Deployment) {
	t.Helper()
	req, dep, err := DecodeRequest(strings.NewReader(body), testLimits())
	if err != nil {
		t.Fatalf("DecodeRequest(%s): %v", body, err)
	}
	return req, dep
}

func testLimits() Limits {
	return Limits{MaxReaders: 100, MaxTags: 2000, MaxWorkers: 8}
}

func fpOf(t *testing.T, body string) Fingerprint {
	t.Helper()
	req, dep := decodeTestRequest(t, body)
	return FingerprintRequest(req, dep)
}

const fpBaseBody = `{
  "generator": {"seed": 11, "readers": 10, "tags": 60, "side": 50, "lambdaR": 12, "lambdar": 5},
  "algorithm": "alg2"
}`

// TestFingerprintSensitivity: every scheduling-relevant field change must
// move the fingerprint; every irrelevant knob must not.
func TestFingerprintSensitivity(t *testing.T) {
	base := fpOf(t, fpBaseBody)

	relevant := map[string]string{
		"algorithm": `{"generator": {"seed": 11, "readers": 10, "tags": 60, "side": 50, "lambdaR": 12, "lambdar": 5}, "algorithm": "ghc"}`,
		"rho":       `{"generator": {"seed": 11, "readers": 10, "tags": 60, "side": 50, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2", "rho": 1.5}`,
		"mode":      `{"generator": {"seed": 11, "readers": 10, "tags": 60, "side": 50, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2", "mode": "oneshot"}`,
		"slotPolls": `{"generator": {"seed": 11, "readers": 10, "tags": 60, "side": 50, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2", "slot_polls": 100}`,
		"maxSlots":  `{"generator": {"seed": 11, "readers": 10, "tags": 60, "side": 50, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2", "max_slots": 7}`,
		"genSeed":   `{"generator": {"seed": 12, "readers": 10, "tags": 60, "side": 50, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2"}`,
		"readers":   `{"generator": {"seed": 11, "readers": 11, "tags": 60, "side": 50, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2"}`,
		"tags":      `{"generator": {"seed": 11, "readers": 10, "tags": 61, "side": 50, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2"}`,
	}
	for name, body := range relevant {
		if fpOf(t, body) == base {
			t.Errorf("%s: scheduling-relevant change did not move the fingerprint", name)
		}
	}

	irrelevant := map[string]string{
		"workers":  `{"generator": {"seed": 11, "readers": 10, "tags": 60, "side": 50, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2", "workers": 4}`,
		"async":    `{"generator": {"seed": 11, "readers": 10, "tags": 60, "side": 50, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2", "async": true}`,
		"noCache":  `{"generator": {"seed": 11, "readers": 10, "tags": 60, "side": 50, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2", "no_cache": true}`,
		"deadline": `{"generator": {"seed": 11, "readers": 10, "tags": 60, "side": 50, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2", "deadline_ms": 500}`,
		// rho is canonicalized to 0 for algorithms that ignore it, so a ghc
		// request with and without rho collide (both differ from base,
		// which is alg2).
	}
	for name, body := range irrelevant {
		if fpOf(t, body) != base {
			t.Errorf("%s: irrelevant knob moved the fingerprint", name)
		}
	}

	// Canonicalization: rho on an algorithm that ignores it collapses.
	a := fpOf(t, `{"generator": {"seed": 11, "readers": 10, "tags": 60, "side": 50, "lambdaR": 12, "lambdar": 5}, "algorithm": "ghc", "rho": 2.5}`)
	b := fpOf(t, `{"generator": {"seed": 11, "readers": 10, "tags": 60, "side": 50, "lambdaR": 12, "lambdar": 5}, "algorithm": "ghc"}`)
	if a != b {
		t.Errorf("rho moved the fingerprint of a ghc request, which ignores it")
	}
	// Likewise seed on a deterministic algorithm.
	c := fpOf(t, `{"generator": {"seed": 11, "readers": 10, "tags": 60, "side": 50, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2", "seed": 999}`)
	if c != base {
		t.Errorf("seed moved the fingerprint of an alg2 request, which ignores it")
	}
	// Default materialization: rho omitted and rho explicitly 1.25 collide.
	d := fpOf(t, `{"generator": {"seed": 11, "readers": 10, "tags": 60, "side": 50, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2", "rho": 1.25}`)
	if d != base {
		t.Errorf("explicit default rho moved the fingerprint")
	}
}

// TestFingerprintGeneratorInlineEquivalence: a generator spec and the
// deployment it expands to must share a fingerprint — the cache must not
// distinguish how the geometry arrived.
func TestFingerprintGeneratorInlineEquivalence(t *testing.T) {
	req, dep := decodeTestRequest(t, fpBaseBody)
	genFP := FingerprintRequest(req, dep)

	var sb strings.Builder
	if err := dep.Write(&sb); err != nil {
		t.Fatal(err)
	}
	inlineBody := `{"deployment": ` + sb.String() + `, "algorithm": "alg2"}`
	if got := fpOf(t, inlineBody); got != genFP {
		t.Errorf("inline deployment fingerprint %s != generator fingerprint %s", got, genFP)
	}
}

// TestFingerprintGeometrySensitivity: nudging any coordinate or radius of
// the resolved deployment moves the fingerprint.
func TestFingerprintGeometrySensitivity(t *testing.T) {
	req, dep := decodeTestRequest(t, fpBaseBody)
	base := FingerprintRequest(req, dep)

	mutations := []struct {
		name string
		f    func(d *deploy.Deployment)
	}{
		{"readerX", func(d *deploy.Deployment) { d.Readers[3].X += 1e-9 }},
		{"readerY", func(d *deploy.Deployment) { d.Readers[0].Y -= 0.5 }},
		{"interferenceR", func(d *deploy.Deployment) { d.Readers[5].InterferenceR += 1 }},
		{"interrogationR", func(d *deploy.Deployment) { d.Readers[5].InterrogationR -= 0.25 }},
		{"tagX", func(d *deploy.Deployment) { d.Tags[17].X += 1e-12 }},
		{"tagY", func(d *deploy.Deployment) { d.Tags[59].Y += 3 }},
		{"dropTag", func(d *deploy.Deployment) { d.Tags = d.Tags[:len(d.Tags)-1] }},
		{"dropReader", func(d *deploy.Deployment) { d.Readers = d.Readers[:len(d.Readers)-1] }},
	}
	for _, m := range mutations {
		_, mut := decodeTestRequest(t, fpBaseBody) // fresh copy
		m.f(mut)
		if FingerprintRequest(req, mut) == base {
			t.Errorf("%s: geometry change did not move the fingerprint", m.name)
		}
	}

	// Comment and Side are serialization metadata, not geometry.
	_, mut := decodeTestRequest(t, fpBaseBody)
	mut.Comment = "annotated"
	mut.Side = 1234
	if FingerprintRequest(req, mut) != base {
		t.Errorf("deployment metadata (comment/side) moved the fingerprint")
	}
}

func TestFingerprintParseRoundTrip(t *testing.T) {
	fp := fpOf(t, fpBaseBody)
	got, ok := ParseFingerprint(fp.String())
	if !ok || got != fp {
		t.Fatalf("ParseFingerprint(%q) = %v, %v", fp.String(), got, ok)
	}
	if _, ok := ParseFingerprint("zz"); ok {
		t.Error("ParseFingerprint accepted junk")
	}
	if _, ok := ParseFingerprint(fp.String()[:40]); ok {
		t.Error("ParseFingerprint accepted a truncated id")
	}
}

func TestFingerprintShardStable(t *testing.T) {
	fp := fpOf(t, fpBaseBody)
	for _, n := range []int{0, 1, 4, 7} {
		s := fp.Shard(n)
		if s != fp.Shard(n) {
			t.Fatalf("shard not stable at n=%d", n)
		}
		if n > 1 && (s < 0 || s >= n) {
			t.Fatalf("shard %d out of range for n=%d", s, n)
		}
		if n <= 1 && s != 0 {
			t.Fatalf("shard = %d for n=%d, want 0", s, n)
		}
	}
}
