package serve

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"rfidsched/internal/obs"
)

// TraceHeader is the request/response header carrying the trace ID. A
// client may supply its own (propagating an upstream ID); the server
// generates one otherwise, and echoes the effective ID on every response —
// including job-poll replies and error responses — so any observed response
// can be joined against the access log, the /metrics histograms, and (for
// slow requests) the flight recorder.
const TraceHeader = "X-Trace-Id"

// The request lifecycle phases (DESIGN.md §16). Each phase feeds the
// histogram "serve.phase.<name>.seconds"; the whole request feeds
// "serve.request.<endpoint>.seconds" and the solve additionally feeds
// "serve.solve.<algorithm>.seconds".
const (
	PhaseDecode = "decode" // admission: body decode + validation + fingerprint
	PhaseCache  = "cache"  // schedule-cache lookup
	PhaseQueue  = "queue"  // enqueue → worker pickup
	PhaseSolve  = "solve"  // the scheduler run itself
	PhaseVerify = "verify" // independent re-verification of the schedule
	PhaseEncode = "encode" // response serialization
	PhaseWait   = "wait"   // a merged waiter's attach → job-done interval
)

// maxTraceIDLen bounds accepted client trace IDs; longer ones are replaced,
// not truncated, so an ID seen anywhere is always intact.
const maxTraceIDLen = 64

// validTraceID accepts IDs that are safe to echo into headers, logs and
// metrics verbatim: non-empty, bounded, ASCII letters/digits/._- only.
func validTraceID(id string) bool {
	if id == "" || len(id) > maxTraceIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// newTraceID draws a fresh 64-bit random ID, hex encoded.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the OS entropy device is gone; trace IDs
		// only need uniqueness, so degrade to a constant rather than crash.
		return "trace-entropy-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// tracePhase is one completed lifecycle phase.
type tracePhase struct {
	name string
	d    time.Duration
}

// reqTrace is one request's lifecycle record: identity, phase breakdown,
// and the request attributes worth logging. It is created at the top of the
// handler and finished exactly once; phases recorded by the worker pool
// (queue/solve/verify) land on the job creator's trace via Job.trace. The
// phase list is mutex-guarded because a waiter whose client disconnected
// finishes its trace while the worker is still appending — the snapshot
// simply misses the phases that had not happened yet.
type reqTrace struct {
	id       string
	endpoint string
	method   string
	start    time.Time

	// Request attributes, filled as decoding learns them.
	alg    string
	mode   string
	merged bool // attached to another request's in-flight job

	mu     sync.Mutex
	phases []tracePhase
}

// startTrace builds the trace for an incoming request, honoring a valid
// client-supplied ID, and stamps the response header immediately so even
// early-exit error paths echo it.
func (s *Server) startTrace(w http.ResponseWriter, r *http.Request, endpoint string) *reqTrace {
	id := r.Header.Get(TraceHeader)
	if !validTraceID(id) {
		id = newTraceID()
	}
	w.Header().Set(TraceHeader, id)
	return &reqTrace{
		id:       id,
		endpoint: endpoint,
		method:   r.Method,
		start:    s.now(),
	}
}

// addPhase records a completed phase.
func (t *reqTrace) addPhase(name string, d time.Duration) {
	t.mu.Lock()
	t.phases = append(t.phases, tracePhase{name: name, d: d})
	t.mu.Unlock()
}

// snapshotPhases copies the phases recorded so far.
func (t *reqTrace) snapshotPhases() []tracePhase {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]tracePhase(nil), t.phases...)
}

// phase records one completed phase that started at the given instant and
// ends now, both on the trace and in its "serve.phase.<name>.seconds"
// histogram. Observing at record time (rather than at finishTrace) keeps
// the histograms complete for async and abandoned requests, whose phases
// outlive the HTTP exchange.
func (s *Server) phase(t *reqTrace, name string, start time.Time) time.Duration {
	d := s.now().Sub(start)
	if t != nil {
		t.addPhase(name, d)
	}
	s.reg.Histogram("serve.phase." + name + ".seconds").Observe(d.Seconds())
	return d
}

// now returns the server clock's current time.
func (s *Server) now() time.Time {
	if s.opts.Clock != nil {
		return s.opts.Clock()
	}
	return time.Now()
}

// finishTrace closes out a request: observe the per-endpoint and per-phase
// latency histograms, write the access-log line, emit the request_completed
// trace event, and — when the request ran slower than the slow-request
// threshold — escalate to a Warn log and tee the full phase breakdown into
// the flight recorder for post-mortem dumping.
func (s *Server) finishTrace(t *reqTrace, status int, outcome string) {
	total := s.now().Sub(t.start)
	phases := t.snapshotPhases()

	s.reg.Histogram("serve.request." + t.endpoint + ".seconds").Observe(total.Seconds())

	slow := s.opts.SlowRequest > 0 && total >= s.opts.SlowRequest
	if s.opts.Tracer != nil {
		s.opts.Tracer.Emit(obs.EvRequestCompleted(t.id, t.endpoint, t.alg, status, total.Nanoseconds()))
	}
	if slow && s.opts.Flight != nil {
		for _, p := range phases {
			s.opts.Flight.Emit(obs.EvRequestPhase(t.id, p.name, p.d.Nanoseconds()))
		}
		s.opts.Flight.Emit(obs.EvRequestCompleted(t.id, t.endpoint, t.alg, status, total.Nanoseconds()))
	}

	if s.opts.AccessLog == nil {
		return
	}
	attrs := make([]any, 0, 16)
	attrs = append(attrs,
		slog.String("trace", t.id),
		slog.String("endpoint", t.endpoint),
		slog.String("method", t.method),
		slog.Int("status", status),
		slog.String("outcome", outcome),
		slog.Float64("dur_ms", float64(total.Nanoseconds())/1e6),
	)
	if t.alg != "" {
		attrs = append(attrs, slog.String("alg", t.alg))
	}
	if t.mode != "" {
		attrs = append(attrs, slog.String("mode", t.mode))
	}
	if t.merged {
		attrs = append(attrs, slog.Bool("merged", true))
	}
	if len(phases) > 0 {
		phaseAttrs := make([]any, 0, len(phases))
		for _, p := range phases {
			phaseAttrs = append(phaseAttrs, slog.Float64(p.name+"_ms", float64(p.d.Nanoseconds())/1e6))
		}
		attrs = append(attrs, slog.Group("phases", phaseAttrs...))
	}
	if slow {
		s.opts.AccessLog.Warn("slow request", attrs...)
	} else {
		s.opts.AccessLog.Info("request", attrs...)
	}
}
