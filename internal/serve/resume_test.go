package serve

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"rfidsched/internal/checkpoint"
	"rfidsched/internal/core"
	"rfidsched/internal/graph"
)

// TestCheckpointResumeAcrossRestart simulates the drain/crash-restart
// story: a previous process left a durable half-finished MCS run under the
// request's fingerprint in the checkpoint directory. A new server must
// resume it bit-identically — the response equals a cold solve from a
// checkpoint-free server — and clean the file up afterwards.
func TestCheckpointResumeAcrossRestart(t *testing.T) {
	body := `{"generator": {"seed": 21, "readers": 12, "tags": 90, "side": 50, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2"}`
	req, dep := decodeTestRequest(t, body)
	fp := FingerprintRequest(req, dep)

	// Reference: cold solve on a server without checkpointing.
	_, tsRef := newTestServer(t, Options{})
	status, b := postSchedule(t, tsRef, body)
	if status != http.StatusOK {
		t.Fatalf("reference solve: status %d, body %s", status, b)
	}
	refJSON, _ := json.Marshal(decodeResponse(t, b).Result)

	// Fabricate the interrupted run: execute the same instance directly
	// with a slot cap, writing the durable prefix a dying server would
	// leave behind. MaxSlots=1 guarantees the checkpoint is a strict
	// prefix (the reference schedule has >= 2 slots).
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, fp.String()+".ckpt")
	w, err := checkpoint.Create(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := dep.ToSystem()
	if err != nil {
		t.Fatal(err)
	}
	sched := core.NewGrowth(graph.FromSystem(sys), req.Rho)
	partial, err := core.RunMCS(sys, sched, core.MCSOptions{
		MaxSlots: 1, RecordSlots: true, Checkpoint: w,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !partial.Incomplete {
		t.Skipf("instance solved in one slot; no prefix to resume")
	}

	// A fresh server over the same directory must resume, not recompute.
	s, ts := newTestServer(t, Options{CheckpointDir: dir})
	status, b = postSchedule(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("resumed solve: status %d, body %s", status, b)
	}
	got := decodeResponse(t, b)
	gotJSON, _ := json.Marshal(got.Result)
	if string(gotJSON) != string(refJSON) {
		t.Errorf("resumed result differs from cold solve:\n%s\n%s", gotJSON, refJSON)
	}
	if n := counter(s.reg, "serve.resumed"); n != 1 {
		t.Errorf("serve.resumed = %d, want 1", n)
	}
	if _, err := os.Stat(ckptPath); !os.IsNotExist(err) {
		t.Errorf("checkpoint %s not removed after successful solve (err=%v)", ckptPath, err)
	}
}

// TestCheckpointCorruptFallsBack: a garbage checkpoint file must not wedge
// the fingerprint — the server falls back to a cold solve and still
// returns the right schedule.
func TestCheckpointCorruptFallsBack(t *testing.T) {
	body := `{"generator": {"seed": 22, "readers": 10, "tags": 60, "side": 45, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2"}`
	req, dep := decodeTestRequest(t, body)
	fp := FingerprintRequest(req, dep)

	_, tsRef := newTestServer(t, Options{})
	status, b := postSchedule(t, tsRef, body)
	if status != http.StatusOK {
		t.Fatalf("reference solve: status %d, body %s", status, b)
	}
	refJSON, _ := json.Marshal(decodeResponse(t, b).Result)

	dir := t.TempDir()
	ckptPath := filepath.Join(dir, fp.String()+".ckpt")
	if err := os.WriteFile(ckptPath, []byte("not a checkpoint stream\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Options{CheckpointDir: dir})
	status, b = postSchedule(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("solve over corrupt checkpoint: status %d, body %s", status, b)
	}
	gotJSON, _ := json.Marshal(decodeResponse(t, b).Result)
	if string(gotJSON) != string(refJSON) {
		t.Errorf("fallback result differs from cold solve:\n%s\n%s", gotJSON, refJSON)
	}
}

// TestCheckpointMismatchFallsBack: a well-formed checkpoint stream that
// belongs to a different instance (ResumeMCS rejects its header) also
// falls back to a cold solve with the correct result.
func TestCheckpointMismatchFallsBack(t *testing.T) {
	body := `{"generator": {"seed": 23, "readers": 10, "tags": 60, "side": 45, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2"}`
	req, dep := decodeTestRequest(t, body)
	fp := FingerprintRequest(req, dep)

	_, tsRef := newTestServer(t, Options{})
	status, b := postSchedule(t, tsRef, body)
	if status != http.StatusOK {
		t.Fatalf("reference solve: status %d, body %s", status, b)
	}
	refJSON, _ := json.Marshal(decodeResponse(t, b).Result)

	// A valid stream from a smaller, different deployment, planted under
	// this request's fingerprint.
	otherBody := `{"generator": {"seed": 1, "readers": 6, "tags": 30, "side": 30, "lambdaR": 12, "lambdar": 5}, "algorithm": "alg2"}`
	_, otherDep := decodeTestRequest(t, otherBody)
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, fp.String()+".ckpt")
	w, err := checkpoint.Create(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	otherSys, err := otherDep.ToSystem()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunMCS(otherSys, core.NewGrowth(graph.FromSystem(otherSys), 1.25),
		core.MCSOptions{MaxSlots: 1, Checkpoint: w}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, Options{CheckpointDir: dir})
	status, b = postSchedule(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("solve over mismatched checkpoint: status %d, body %s", status, b)
	}
	gotJSON, _ := json.Marshal(decodeResponse(t, b).Result)
	if string(gotJSON) != string(refJSON) {
		t.Errorf("fallback result differs from cold solve:\n%s\n%s", gotJSON, refJSON)
	}
	if n := counter(s.reg, "serve.resumed"); n != 1 {
		t.Errorf("serve.resumed = %d, want 1 (the attempt counts even when it falls back)", n)
	}
}
