package serve

import (
	"container/list"
	"sync"

	"rfidsched/internal/obs"
)

// Cache is the LRU schedule cache: fingerprint → solved Result. Hits,
// misses and evictions are counted in the obs Registry ("serve.cache.*")
// and the live entry count is exported as a gauge, so /metrics shows the
// cache working (or thrashing) next to the queue gauges.
//
// Results are stored by pointer and must be treated as immutable once
// cached — every reader of a hit sees the same object. The server encodes
// them straight to JSON and never mutates them.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[Fingerprint]*list.Element

	hits, misses, evictions *obs.Counter
	entries                 *obs.Gauge
}

type cacheEntry struct {
	fp  Fingerprint
	res *Result
}

// NewCache builds a cache holding at most capacity schedules (minimum 1)
// and registers its counters in reg.
func NewCache(capacity int, reg *obs.Registry) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	c := &Cache{
		cap:       capacity,
		ll:        list.New(),
		items:     make(map[Fingerprint]*list.Element),
		hits:      reg.Counter("serve.cache.hits"),
		misses:    reg.Counter("serve.cache.misses"),
		evictions: reg.Counter("serve.cache.evictions"),
		entries:   reg.Gauge("serve.cache.entries"),
	}
	c.entries.Set(0)
	return c
}

// Get returns the cached result for fp, promoting it to most recently used.
func (c *Cache) Get(fp Fingerprint) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[fp]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).res, true
}

// Put stores (or refreshes) the result for fp, evicting the least recently
// used entry past capacity.
func (c *Cache) Put(fp Fingerprint, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[fp]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.items[fp] = c.ll.PushFront(&cacheEntry{fp: fp, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).fp)
		c.evictions.Inc()
	}
	c.entries.Set(float64(c.ll.Len()))
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
