package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"rfidsched/internal/obs"
)

func TestCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache(2, reg)
	fps := make([]Fingerprint, 3)
	for i := range fps {
		fps[i][0] = byte(i + 1)
	}
	r := func(i int) *Result { return &Result{Fingerprint: fps[i].String()} }

	c.Put(fps[0], r(0))
	c.Put(fps[1], r(1))
	if _, ok := c.Get(fps[0]); !ok {
		t.Fatal("fp0 evicted below capacity")
	}
	// fp0 is now most recent; inserting fp2 must evict fp1.
	c.Put(fps[2], r(2))
	if _, ok := c.Get(fps[1]); ok {
		t.Error("fp1 survived past capacity despite being least recently used")
	}
	if _, ok := c.Get(fps[0]); !ok {
		t.Error("fp0 evicted despite recent use")
	}
	if _, ok := c.Get(fps[2]); !ok {
		t.Error("fp2 missing right after insert")
	}
	if got := reg.Counter("serve.cache.evictions").Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}

	// Refreshing an existing key must not grow the cache.
	c.Put(fps[0], r(0))
	if c.Len() != 2 {
		t.Errorf("len after refresh = %d, want 2", c.Len())
	}
}

// TestCacheHitBitIdentical is the cache-correctness property test: for
// every algorithm, and for solver worker counts 1 and 4, a cache hit must
// return a schedule bit-identical to the cold solve — and the cold solves
// themselves must agree across worker counts (the parallel-determinism
// contract the cache's worker-free fingerprint relies on).
func TestCacheHitBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-algorithm solve matrix")
	}
	algorithms := []string{"alg1", "alg2", "alg3", "ghc", "colorwave", "random", "exact"}
	gen := `{"seed": 9, "readers": 10, "tags": 60, "side": 45, "lambdaR": 12, "lambdar": 5}`
	for _, alg := range algorithms {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			t.Parallel()
			var reference string
			for _, workers := range []int{1, 4} {
				body := fmt.Sprintf(`{"generator": %s, "algorithm": %q, "seed": 7, "workers": %d}`, gen, alg, workers)

				_, ts := newTestServer(t, Options{})
				status, b := postSchedule(t, ts, body)
				if status != http.StatusOK {
					t.Fatalf("cold solve (workers=%d): status %d, body %s", workers, status, b)
				}
				cold := decodeResponse(t, b)
				if cold.Cached {
					t.Fatalf("cold solve (workers=%d) claims cached", workers)
				}

				status, b = postSchedule(t, ts, body)
				if status != http.StatusOK {
					t.Fatalf("warm solve (workers=%d): status %d, body %s", workers, status, b)
				}
				warm := decodeResponse(t, b)
				if !warm.Cached {
					t.Fatalf("warm solve (workers=%d) missed the cache", workers)
				}

				coldJSON, _ := json.Marshal(cold.Result)
				warmJSON, _ := json.Marshal(warm.Result)
				if string(coldJSON) != string(warmJSON) {
					t.Fatalf("workers=%d: cache hit differs from cold solve:\n%s\n%s", workers, coldJSON, warmJSON)
				}
				if reference == "" {
					reference = string(coldJSON)
				} else if string(coldJSON) != reference {
					t.Fatalf("cold solves differ across worker counts:\n%s\n%s", reference, coldJSON)
				}
			}
		})
	}
}
