package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rfidsched/internal/baseline"
	"rfidsched/internal/checkpoint"
	"rfidsched/internal/core"
	"rfidsched/internal/deploy"
	"rfidsched/internal/graph"
	"rfidsched/internal/model"
	"rfidsched/internal/obs"
	"rfidsched/internal/randx"
	"rfidsched/internal/verify"
)

// Options configures a Server. Zero fields take the documented defaults.
type Options struct {
	// Shards is the number of queue shards (default 4).
	Shards int
	// WorkersPerShard is the solver worker count per shard (default 2).
	WorkersPerShard int
	// QueueDepth is each shard's channel capacity; a full shard returns
	// HTTP 429 (default 64).
	QueueDepth int
	// CacheEntries bounds the LRU schedule cache (default 256).
	CacheEntries int
	// Limits is the admission envelope (DefaultLimits when zero).
	Limits Limits
	// MaxBody caps the request body in bytes (default 32 MiB).
	MaxBody int64
	// CheckpointDir, when set, makes cacheable MCS jobs durable: each run
	// appends a per-slot checkpoint to <dir>/<fingerprint>.ckpt, a job found
	// mid-flight on disk (a previous process died or was drained out) is
	// resumed bit-identically instead of recomputed, and the file is removed
	// once the result is safely in the cache and response.
	CheckpointDir string
	// Metrics receives the service and solver telemetry; a fresh registry
	// is created when nil.
	Metrics *obs.Registry
	// RetainJobs bounds the finished-job index served by /v1/jobs
	// (default 1024).
	RetainJobs int

	// AccessLog, when non-nil, receives one structured line per request
	// (obs.NewJSONLogger is the intended handler): trace ID, endpoint,
	// status, outcome, and the phase breakdown in milliseconds.
	AccessLog *slog.Logger
	// SlowRequest, when > 0, marks requests that take at least this long:
	// they log at Warn instead of Info and their full phase trace is teed
	// into Flight, so a slow request can be post-mortemed from
	// /debug/flight after the fact.
	SlowRequest time.Duration
	// Flight, when non-nil, is served at /debug/flight and receives the
	// phase traces of slow requests (see SlowRequest).
	Flight *obs.FlightRecorder
	// Tracer, when non-nil, receives a request_completed event per request
	// — the feed an SSE /events broker (obs.NewSSEBroker) streams live.
	Tracer obs.Tracer
	// History, when non-nil, is served at /history (the metric-history
	// ring; see internal/obs/history).
	History http.Handler
	// Events, when non-nil, is served at /events (the SSE stream).
	Events http.Handler
	// Clock overrides the request-timing clock (nil = time.Now). All new
	// observability is pure measurement: schedules are bit-identical
	// whatever the clock says (the determinism property tests enforce it).
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.WorkersPerShard <= 0 {
		o.WorkersPerShard = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 256
	}
	if o.MaxBody <= 0 {
		o.MaxBody = 32 << 20
	}
	if o.RetainJobs <= 0 {
		o.RetainJobs = 1024
	}
	o.Limits = o.Limits.withDefaults()
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	return o
}

// Server is the scheduling service: HTTP front end, sharded queue, worker
// pool, schedule cache, single-flight index. Create with NewServer, mount
// Handler on an http.Server, and call Drain on shutdown.
type Server struct {
	opts  Options
	reg   *obs.Registry
	cache *Cache
	pool  *pool

	mu       sync.Mutex
	pending  map[Fingerprint]*Job // queued or running
	finished map[Fingerprint]*Job // completed, retained for /v1/jobs
	order    []Fingerprint        // finished eviction order (FIFO)

	draining atomic.Bool

	// solveGate, when set, is called at the top of every solve — a test
	// hook that lets the single-flight and drain tests hold a job in the
	// "running" state deterministically.
	solveGate func(*Job)
}

// NewServer builds the service and starts its worker pool.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		reg:      opts.Metrics,
		pending:  make(map[Fingerprint]*Job),
		finished: make(map[Fingerprint]*Job),
	}
	s.cache = NewCache(opts.CacheEntries, s.reg)
	s.pool = newPool(opts.Shards, opts.WorkersPerShard, opts.QueueDepth, s.reg, s.runJob)
	// Touch the counters the smoke tests scrape so they exist (as zeros)
	// from the first request on.
	for _, name := range []string{
		"serve.requests", "serve.solves", "serve.singleflight.merged",
		"serve.rejected.queue_full", "serve.rejected.draining",
		"serve.jobs.done", "serve.jobs.failed", "serve.resumed",
	} {
		s.reg.Counter(name)
	}
	return s
}

// Metrics returns the registry backing the service telemetry.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully shuts the service down: new schedule requests are
// refused with 503 (and /readyz flips to 503 for load balancers), while
// every already-admitted job — queued or in flight — runs to completion,
// its waiters receiving normal responses. Drain returns nil once the pool
// is empty, or an error if that takes longer than timeout; with a
// CheckpointDir configured, any MCS progress is durable on disk either
// way, so a supervisor may exit and restart without losing work.
func (s *Server) Drain(timeout time.Duration) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.pool.drain()
		close(done)
	}()
	if timeout <= 0 {
		<-done
		return nil
	}
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("serve: drain timed out after %v with jobs still in flight", timeout)
	}
}

// Handler returns the service mux:
//
//	POST /v1/schedule   solve (sync by default, 202 + job id with async)
//	GET  /v1/jobs/{id}  job status / result by fingerprint
//	(everything else)   the obs telemetry endpoints: /metrics, /runs,
//	                    /history, /events, /healthz, /readyz (503 while
//	                    draining), /debug/flight, /debug/pprof/
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/schedule", s.handleSchedule)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.Handle("/", obs.Handler(obs.ServeOptions{
		Registry: s.reg,
		Flight:   s.opts.Flight,
		History:  s.opts.History,
		Events:   s.opts.Events,
		Ready:    func() bool { return !s.draining.Load() },
	}))
	return mux
}

// Response is the /v1/schedule (and completed /v1/jobs) response envelope.
// Result is identical bit-for-bit whether it came from a cold solve, the
// cache, or a merged in-flight request — only the envelope's Cached flag
// differs.
type Response struct {
	Cached bool    `json:"cached"`
	Result *Result `json:"result"`
}

// JobResponse is the /v1/jobs/{id} (and async 202) envelope.
type JobResponse struct {
	Job    string  `json:"job"`
	Status string  `json:"status"`
	Error  string  `json:"error,omitempty"`
	Result *Result `json:"result,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ErrorBody is the JSON error envelope. Backpressure responses (429/503)
// carry RetryAfterSeconds mirroring the Retry-After header, and every error
// issued after the trace exists carries TraceID, so a rejected request is
// correlatable in the access log without headers surviving the client.
type ErrorBody struct {
	Error             string `json:"error"`
	TraceID           string `json:"trace_id,omitempty"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorBody{Error: msg})
}

// writeTracedError is writeError with the request's trace ID in the body,
// and — when retryAfter > 0 — the Retry-After header and its body mirror.
func writeTracedError(w http.ResponseWriter, t *reqTrace, status int, retryAfter int, msg string) {
	body := ErrorBody{Error: msg, TraceID: t.id, RetryAfterSeconds: retryAfter}
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	writeJSON(w, status, body)
}

// Retry-After values for the two backpressure rejections: a full shard
// clears in about a solve time, a drain never clears for this process —
// give the balancer a beat to notice /readyz went 503.
const (
	retryAfterQueueFull = 1
	retryAfterDraining  = 5
)

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	t := s.startTrace(w, r, "schedule")
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeTracedError(w, t, http.StatusMethodNotAllowed, 0, "POST only")
		s.finishTrace(t, http.StatusMethodNotAllowed, "method_not_allowed")
		return
	}
	s.reg.Counter("serve.requests").Inc()
	if s.draining.Load() {
		s.reg.Counter("serve.rejected.draining").Inc()
		writeTracedError(w, t, http.StatusServiceUnavailable, retryAfterDraining, "server is draining")
		s.finishTrace(t, http.StatusServiceUnavailable, "draining")
		return
	}
	decodeStart := s.now()
	req, dep, err := DecodeRequest(http.MaxBytesReader(w, r.Body, s.opts.MaxBody), s.opts.Limits)
	if err != nil {
		s.phase(t, PhaseDecode, decodeStart)
		writeTracedError(w, t, http.StatusBadRequest, 0, err.Error())
		s.finishTrace(t, http.StatusBadRequest, "bad_request")
		return
	}
	fp := FingerprintRequest(req, dep)
	s.phase(t, PhaseDecode, decodeStart)
	t.alg, t.mode = req.Algorithm, req.Mode

	if req.Cacheable() && !req.NoCache {
		cacheStart := s.now()
		res, ok := s.cache.Get(fp)
		s.phase(t, PhaseCache, cacheStart)
		if ok {
			encodeStart := s.now()
			writeJSON(w, http.StatusOK, Response{Cached: true, Result: res})
			s.phase(t, PhaseEncode, encodeStart)
			s.finishTrace(t, http.StatusOK, "cache_hit")
			return
		}
	}

	job, created := s.attach(fp, req, dep, t)
	if created {
		job.enqueuedAt = s.now()
		if err := s.pool.enqueue(job); err != nil {
			s.detach(fp)
			switch {
			case errors.Is(err, ErrQueueFull):
				s.reg.Counter("serve.rejected.queue_full").Inc()
				writeTracedError(w, t, http.StatusTooManyRequests, retryAfterQueueFull,
					"shard queue full, retry later")
				s.finishTrace(t, http.StatusTooManyRequests, "queue_full")
			default:
				s.reg.Counter("serve.rejected.draining").Inc()
				writeTracedError(w, t, http.StatusServiceUnavailable, retryAfterDraining,
					"server is draining")
				s.finishTrace(t, http.StatusServiceUnavailable, "draining")
			}
			return
		}
	}

	if req.Async {
		encodeStart := s.now()
		writeJSON(w, http.StatusAccepted, JobResponse{Job: fp.String(), Status: job.Status()})
		s.phase(t, PhaseEncode, encodeStart)
		s.finishTrace(t, http.StatusAccepted, "accepted")
		return
	}

	waitStart := s.now()
	select {
	case <-job.Done():
	case <-r.Context().Done():
		// The client went away; the job keeps running (other waiters, the
		// cache, and /v1/jobs still want the result). 499 is the de-facto
		// "client closed request" status for exactly this outcome.
		s.finishTrace(t, 499, "client_gone")
		return
	}
	if t.merged {
		// A merged waiter spent the whole interval waiting on someone
		// else's job; the queue/solve/verify phases belong to the creator.
		s.phase(t, PhaseWait, waitStart)
	}
	res, jerr := job.Outcome()
	if jerr != nil {
		status := http.StatusInternalServerError
		outcome := "solver_error"
		if IsBadRequest(jerr) {
			status = http.StatusBadRequest
			outcome = "bad_request"
		}
		writeTracedError(w, t, status, 0, jerr.Error())
		s.finishTrace(t, status, outcome)
		return
	}
	encodeStart := s.now()
	writeJSON(w, http.StatusOK, Response{Cached: false, Result: res})
	s.phase(t, PhaseEncode, encodeStart)
	outcome := "solved"
	if t.merged {
		outcome = "merged"
	}
	s.finishTrace(t, http.StatusOK, outcome)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	t := s.startTrace(w, r, "jobs")
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeTracedError(w, t, http.StatusMethodNotAllowed, 0, "GET only")
		s.finishTrace(t, http.StatusMethodNotAllowed, "method_not_allowed")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	fp, ok := ParseFingerprint(id)
	if !ok {
		writeTracedError(w, t, http.StatusBadRequest, 0, "job id must be a 64-char hex fingerprint")
		s.finishTrace(t, http.StatusBadRequest, "bad_request")
		return
	}
	s.mu.Lock()
	job := s.pending[fp]
	if job == nil {
		job = s.finished[fp]
	}
	s.mu.Unlock()
	if job != nil {
		resp := JobResponse{Job: id, Status: job.Status()}
		if res, err := job.Outcome(); err != nil {
			resp.Error = err.Error()
		} else {
			resp.Result = res
		}
		encodeStart := s.now()
		writeJSON(w, http.StatusOK, resp)
		s.phase(t, PhaseEncode, encodeStart)
		s.finishTrace(t, http.StatusOK, "job_"+resp.Status)
		return
	}
	// The job index is bounded; fall back to the cache so a long-finished
	// fingerprint still resolves.
	if res, ok := s.cache.Get(fp); ok {
		encodeStart := s.now()
		writeJSON(w, http.StatusOK, JobResponse{Job: id, Status: JobDone, Result: res})
		s.phase(t, PhaseEncode, encodeStart)
		s.finishTrace(t, http.StatusOK, "job_cache")
		return
	}
	writeTracedError(w, t, http.StatusNotFound, 0, "unknown job")
	s.finishTrace(t, http.StatusNotFound, "not_found")
}

// attach returns the in-flight job for fp, creating it if none exists.
// The second return reports creation: exactly one caller per fingerprint
// generation creates (and must enqueue) the job; everyone else merges onto
// it — the single-flight guarantee. The creator's trace rides on the job so
// the worker can attribute queue/solve/verify phases to it; merged requests
// are marked so their access-log line says where the time really went.
func (s *Server) attach(fp Fingerprint, req *Request, dep *deploy.Deployment, t *reqTrace) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if job, ok := s.pending[fp]; ok {
		s.reg.Counter("serve.singleflight.merged").Inc()
		if t != nil {
			t.merged = true
		}
		return job, false
	}
	job := newJob(fp, req, dep)
	job.trace = t
	s.pending[fp] = job
	return job, true
}

// detach removes a job that never ran (its enqueue was rejected).
func (s *Server) detach(fp Fingerprint) {
	s.mu.Lock()
	delete(s.pending, fp)
	s.mu.Unlock()
}

// runJob is the worker-pool entry point: solve once, publish to the cache,
// move the job from the pending (single-flight) index to the bounded
// finished index, and wake every waiter.
func (s *Server) runJob(job *Job) {
	job.setRunning()
	if !job.enqueuedAt.IsZero() {
		// Queue latency: enqueue → worker pickup, attributed to the trace of
		// the request that created the job.
		s.phase(job.trace, PhaseQueue, job.enqueuedAt)
	}
	if s.solveGate != nil {
		s.solveGate(job)
	}
	s.reg.Counter("serve.solves").Inc()
	solveStart := s.now()
	res, err := s.solveJob(job)
	s.reg.Histogram("serve.solve." + job.Req.Algorithm + ".seconds").
		Observe(s.now().Sub(solveStart).Seconds())
	if err == nil && job.Req.Cacheable() {
		s.cache.Put(job.FP, res)
	}
	if err != nil {
		s.reg.Counter("serve.jobs.failed").Inc()
	} else {
		s.reg.Counter("serve.jobs.done").Inc()
	}

	s.mu.Lock()
	delete(s.pending, job.FP)
	if _, dup := s.finished[job.FP]; !dup {
		s.order = append(s.order, job.FP)
	}
	s.finished[job.FP] = job
	for len(s.order) > s.opts.RetainJobs {
		evict := s.order[0]
		s.order = s.order[1:]
		delete(s.finished, evict)
	}
	s.mu.Unlock()

	job.finish(res, err)
}

// solveJob executes one scheduling problem end to end: build the system,
// construct the scheduler, run the one-shot solve or the full MCS driver
// (with durable checkpoint/resume when configured), and verify the answer
// against the independent checker before anyone sees it.
func (s *Server) solveJob(job *Job) (*Result, error) {
	req := job.Req
	sys, err := buildSystem(job.Dep)
	if err != nil {
		return nil, err
	}
	sched, err := newScheduler(req, sys)
	if err != nil {
		return nil, err
	}
	if req.Mode == ModeOneShot {
		return s.solveOneShot(job, sys, sched)
	}
	return s.solveMCS(job, sys, sched)
}

// newScheduler mirrors the rfidsched CLI's algorithm table on a normalized
// request.
func newScheduler(req *Request, sys *model.System) (model.OneShotScheduler, error) {
	switch req.Algorithm {
	case AlgPTAS:
		return core.NewPTAS(), nil
	case AlgGrowth:
		return core.NewGrowth(graph.FromSystem(sys), req.Rho), nil
	case AlgDistributed:
		return core.NewDistributed(graph.FromSystem(sys), req.Rho), nil
	case AlgGHC:
		return baseline.GHC{}, nil
	case AlgColorwave:
		return baseline.NewColorwave(graph.FromSystem(sys), req.Seed), nil
	case AlgRandom:
		rng := randx.New(req.Seed)
		return &baseline.Random{Next: rng.Intn}, nil
	case AlgExact:
		return &baseline.Exact{}, nil
	default:
		// normalize() already rejected unknown names; a miss here is a bug.
		return nil, fmt.Errorf("serve: unhandled algorithm %q", req.Algorithm)
	}
}

// requireFeasible mirrors the CLI's verification policy: the paper's
// algorithms (and the exact baseline) must emit pairwise-independent slots;
// the heuristic baselines are only held to the physical accounting rules.
func requireFeasible(alg string) bool {
	switch alg {
	case AlgPTAS, AlgGrowth, AlgDistributed, AlgExact:
		return true
	}
	return false
}

// solveOneShot answers a single-slot request: one feasible scheduling set
// maximizing weight, under the request's deadline if any.
func (s *Server) solveOneShot(job *Job, sys *model.System, sched model.OneShotScheduler) (*Result, error) {
	req := job.Req
	if req.Workers != 0 {
		if sw, ok := sched.(interface{ SetWorkers(int) }); ok {
			sw.SetWorkers(req.Workers)
		}
	}
	if ds, ok := sched.(core.DeadlineSetter); ok {
		switch {
		case req.SlotPolls > 0:
			ds.SetDeadline(core.NewPollBudget(req.SlotPolls))
		case req.DeadlineMS > 0:
			ds.SetDeadline(core.NewDeadline(time.Duration(req.DeadlineMS) * time.Millisecond))
		}
	}
	span := obs.StartSpan(s.reg, obs.SpanSolve)
	solveStart := s.now()
	X, err := sched.OneShot(sys)
	s.phase(job.trace, PhaseSolve, solveStart)
	span.End()
	if err != nil {
		return nil, fmt.Errorf("serve: %s one-shot: %w", sched.Name(), err)
	}
	verifyStart := s.now()
	feasible := sys.IsFeasible(X)
	s.phase(job.trace, PhaseVerify, verifyStart)
	if requireFeasible(req.Algorithm) && !feasible {
		return nil, fmt.Errorf("serve: %s produced an infeasible one-shot set %v", sched.Name(), X)
	}
	anytime := false
	if ar, ok := sched.(core.AnytimeReporter); ok {
		anytime = ar.Anytime()
	}
	res := &Result{
		Fingerprint: job.FP.String(),
		Algorithm:   sched.Name(),
		Mode:        ModeOneShot,
		Active:      canonInts(X),
		Weight:      sys.Weight(X),
		TagsRead:    len(sys.Covered(X, nil)),
		Anytime:     anytime,
		Verified:    feasible || !requireFeasible(req.Algorithm),
	}
	return res, nil
}

// solveMCS runs the full covering-schedule driver, resuming from a durable
// checkpoint when one is on disk for this fingerprint (left by a drained or
// crashed predecessor), and re-verifies the schedule with internal/verify
// before returning it.
func (s *Server) solveMCS(job *Job, sys *model.System, sched model.OneShotScheduler) (*Result, error) {
	req := job.Req
	opts := core.MCSOptions{
		MaxSlots:       req.MaxSlots,
		RecordSlots:    true,
		SolverWorkers:  req.Workers,
		SlotPollBudget: req.SlotPolls,
		Metrics:        s.reg,
	}
	if req.DeadlineMS > 0 {
		opts.SlotDeadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}

	// verifySys stays pristine: verify.Schedule replays the result against
	// the same initial read state the run started from. Pool-recycled:
	// request churn is the daemon's steady state, and the replay clone is
	// dropped the moment the response is built.
	verifySys := sys.ClonePooled()
	defer verifySys.Release()

	var ckptPath string
	var state *checkpoint.MCSState
	if s.opts.CheckpointDir != "" && req.Cacheable() {
		ckptPath = filepath.Join(s.opts.CheckpointDir, job.FP.String()+".ckpt")
		if st, err := checkpoint.LoadMCS(ckptPath); err == nil {
			// A durable prefix from a previous life of this fingerprint:
			// resume instead of recomputing. The fingerprint pins the exact
			// deployment, algorithm and knobs, so the header always matches.
			state = st
		}
		w, err := checkpoint.Create(ckptPath)
		if err != nil {
			return nil, fmt.Errorf("serve: checkpoint %s: %w", ckptPath, err)
		}
		opts.Checkpoint = w
		defer w.Close()
	}

	var mcsRes *core.MCSResult
	var err error
	solveStart := s.now()
	if state != nil {
		s.reg.Counter("serve.resumed").Inc()
		mcsRes, err = core.ResumeMCS(sys, sched, opts, state)
		if err != nil {
			// A stale or corrupt checkpoint must not wedge the fingerprint
			// forever: fall back to a cold solve on fresh state. The half-
			// written resume stream is truncated by re-creating the writer.
			sys = verifySys.Clone()
			if sched, err = newScheduler(req, sys); err != nil {
				return nil, err
			}
			if opts.Checkpoint != nil {
				_ = opts.Checkpoint.Close()
				w, cerr := checkpoint.Create(ckptPath)
				if cerr != nil {
					return nil, fmt.Errorf("serve: checkpoint %s: %w", ckptPath, cerr)
				}
				opts.Checkpoint = w
				defer w.Close()
			}
			mcsRes, err = core.RunMCS(sys, sched, opts)
		}
	} else {
		mcsRes, err = core.RunMCS(sys, sched, opts)
	}
	s.phase(job.trace, PhaseSolve, solveStart)
	if err != nil {
		return nil, fmt.Errorf("serve: %s: %w", sched.Name(), err)
	}

	verifyStart := s.now()
	rep, err := verify.Schedule(verifySys, mcsRes, verify.Options{RequireFeasible: requireFeasible(req.Algorithm)})
	s.phase(job.trace, PhaseVerify, verifyStart)
	if err != nil {
		return nil, fmt.Errorf("serve: schedule failed verification: %w", err)
	}
	if ckptPath != "" {
		// The schedule is solved, verified, and about to be cached; the
		// durable intermediate state has served its purpose.
		_ = os.Remove(ckptPath)
	}

	res := &Result{
		Fingerprint:   job.FP.String(),
		Algorithm:     mcsRes.Algorithm,
		Mode:          ModeMCS,
		Slots:         mcsRes.Size,
		TagsRead:      mcsRes.TotalRead,
		Fallbacks:     mcsRes.Fallbacks,
		AnytimeSlots:  mcsRes.AnytimeSlots,
		Incomplete:    mcsRes.Incomplete,
		Verified:      true,
		FeasibleSlots: rep.FeasibleSlots,
		Schedule:      make([]ScheduleSlot, len(mcsRes.Slots)),
	}
	for i, sl := range mcsRes.Slots {
		res.Schedule[i] = ScheduleSlot{
			Active:   canonInts(sl.Active),
			TagsRead: sl.TagsRead,
			Fallback: sl.Fallback,
		}
	}
	return res, nil
}

// canonInts normalizes a possibly-nil reader set to an empty slice so the
// JSON form is always an array, never null.
func canonInts(x []int) []int {
	if x == nil {
		return []int{}
	}
	return x
}
