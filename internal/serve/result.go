package serve

// Result is the solved, verified answer to a schedule request — the unit
// the cache stores and every transport (sync response, async job poll,
// cache hit) serves identically. Determinism contract: for a cacheable
// request, the Result of a cold solve, a cache hit, and a merged
// single-flight wait are bit-identical, at any solver worker count
// (the cache property tests enforce this).
type Result struct {
	// Fingerprint is the canonical instance id (hex SHA-256); also the job
	// id under /v1/jobs/.
	Fingerprint string `json:"fingerprint"`
	// Algorithm is the scheduler's own name ("Alg2-Growth", ...), not the
	// request alias.
	Algorithm string `json:"algorithm"`
	Mode      string `json:"mode"`

	// One-shot mode: the feasible scheduling set and its weight.
	Active []int `json:"active,omitempty"`
	Weight int   `json:"weight,omitempty"`
	// Anytime reports that the one-shot solve was truncated by its budget
	// and returned the best incumbent (still feasible).
	Anytime bool `json:"anytime,omitempty"`

	// MCS mode: the covering schedule and the paper's metrics.
	Slots        int  `json:"slots,omitempty"`
	Fallbacks    int  `json:"fallbacks,omitempty"`
	AnytimeSlots int  `json:"anytime_slots,omitempty"`
	Incomplete   bool `json:"incomplete,omitempty"`

	// TagsRead is the total tags served (MCS) or the tags the one slot
	// would serve (one-shot).
	TagsRead int `json:"tags_read"`

	// Verified is set after the schedule passed the independent checker
	// (internal/verify) — the service never returns an unverified MCS
	// schedule.
	Verified bool `json:"verified"`
	// FeasibleSlots counts slots the checker found pairwise-independent.
	FeasibleSlots int `json:"feasible_slots,omitempty"`

	// Schedule is the slot-by-slot activation plan (MCS mode).
	Schedule []ScheduleSlot `json:"schedule,omitempty"`
}

// ScheduleSlot is one slot of an MCS schedule.
type ScheduleSlot struct {
	Active   []int `json:"active"`
	TagsRead int   `json:"tags_read"`
	Fallback bool  `json:"fallback,omitempty"`
}
