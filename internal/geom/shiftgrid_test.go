package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestDiskLevelBins(t *testing.T) {
	k := 3
	// Level 0: 1/(k+1) < 2R <= 1  =>  1/8 < R <= 1/2.
	cases := []struct {
		r    float64
		want int
	}{
		{0.5, 0},
		{0.2, 0},
		{0.126, 0},
		{0.124, 1}, // 2R = 0.248 <= 1/4
		{0.5 / 4, 1},
		{0.5 / 16, 2},
		{0.5 / 64, 3},
	}
	for _, c := range cases {
		if got := DiskLevel(c.r, k); got != c.want {
			t.Errorf("DiskLevel(%v, %d) = %d, want %d", c.r, k, got, c.want)
		}
	}
}

func TestDiskLevelBoundary(t *testing.T) {
	// Exactly 2R = 1/(k+1)^j belongs to level j (right-closed bins).
	k := 3
	for j := 0; j <= 4; j++ {
		r := 0.5 * math.Pow(float64(k+1), -float64(j))
		if got := DiskLevel(r, k); got != j {
			t.Errorf("boundary radius for level %d classified as %d", j, got)
		}
	}
}

func TestDiskLevelDegenerate(t *testing.T) {
	if DiskLevel(0, 3) != 0 || DiskLevel(-1, 3) != 0 {
		t.Error("non-positive radius should map to level 0")
	}
}

func TestSpacingAndSide(t *testing.T) {
	g := ShiftGrid{K: 3}
	if g.Spacing(0) != 1 {
		t.Errorf("Spacing(0) = %v", g.Spacing(0))
	}
	if math.Abs(g.Spacing(2)-1.0/16) > 1e-15 {
		t.Errorf("Spacing(2) = %v", g.Spacing(2))
	}
	if math.Abs(g.SquareSide(1)-3.0/4) > 1e-15 {
		t.Errorf("SquareSide(1) = %v", g.SquareSide(1))
	}
}

func TestSquareIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for k := 2; k <= 5; k++ {
		for r := 0; r < k; r++ {
			for s := 0; s < k; s++ {
				g := ShiftGrid{K: k, R: r, S: s}
				for i := 0; i < 50; i++ {
					p := Pt(rng.Float64()*4-2, rng.Float64()*4-2)
					for level := 0; level <= 3; level++ {
						ix, iy := g.SquareIndex(p, level)
						rect := g.SquareRect(level, ix, iy)
						if !rect.Contains(p) {
							t.Fatalf("k=%d (r,s)=(%d,%d) level=%d: square %v does not contain %v",
								k, r, s, level, rect, p)
						}
					}
				}
			}
		}
	}
}

func TestSurviveDiskInsideItsSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := ShiftGrid{K: 4, R: 1, S: 2}
	for i := 0; i < 500; i++ {
		level := rng.Intn(3)
		// Radius valid for this level: 1/(k+1)^(level+1) < 2R <= 1/(k+1)^level.
		lo := 0.5 * g.Spacing(level+1)
		hi := 0.5 * g.Spacing(level)
		r := lo + rng.Float64()*(hi-lo)*0.999 + (hi-lo)*0.0005
		d := D(rng.Float64()*3, rng.Float64()*3, r)
		if lv := DiskLevel(d.R, g.K); lv != level {
			continue // floating point at bin edge; skip
		}
		if g.Survives(d, level) {
			ix, iy := g.SquareIndex(d.Center, level)
			sq := g.SquareRect(level, ix, iy)
			if !sq.ContainsDisk(d) {
				t.Fatalf("survive disk %v (level %d) not inside its square %v", d, level, sq)
			}
		}
	}
}

func TestChildParentInverse(t *testing.T) {
	g := ShiftGrid{K: 3, R: 2, S: 1}
	for idx := -10; idx <= 10; idx++ {
		lo, hi := g.ChildXRange(idx)
		if hi-lo != g.K {
			t.Fatalf("x child range size = %d, want %d", hi-lo+1, g.K+1)
		}
		for c := lo; c <= hi; c++ {
			if p := g.ParentX(c); p != idx {
				t.Fatalf("ParentX(%d) = %d, want %d", c, p, idx)
			}
		}
		lo, hi = g.ChildYRange(idx)
		for c := lo; c <= hi; c++ {
			if p := g.ParentY(c); p != idx {
				t.Fatalf("ParentY(%d) = %d, want %d", c, p, idx)
			}
		}
	}
}

// Children tile the parent square exactly.
func TestChildSquaresTileParent(t *testing.T) {
	g := ShiftGrid{K: 3, R: 1, S: 1}
	for _, idx := range [][2]int{{0, 0}, {-2, 3}, {5, -1}} {
		parent := g.SquareRect(1, idx[0], idx[1])
		xlo, xhi := g.ChildXRange(idx[0])
		ylo, yhi := g.ChildYRange(idx[1])
		var area float64
		for ix := xlo; ix <= xhi; ix++ {
			for iy := ylo; iy <= yhi; iy++ {
				child := g.SquareRect(2, ix, iy)
				if !parent.Expand(1e-9).ContainsRect(child) {
					t.Fatalf("child %v escapes parent %v", child, parent)
				}
				area += child.Area()
			}
		}
		if math.Abs(area-parent.Area()) > 1e-9 {
			t.Fatalf("children area %v != parent area %v", area, parent.Area())
		}
	}
}

// A point's child square index is within the child range of its parent
// square index (consistency of the hierarchy).
func TestSquareHierarchyConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := ShiftGrid{K: 4, R: 3, S: 0}
	for i := 0; i < 300; i++ {
		p := Pt(rng.Float64()*6-3, rng.Float64()*6-3)
		for level := 0; level < 3; level++ {
			pix, piy := g.SquareIndex(p, level)
			cix, ciy := g.SquareIndex(p, level+1)
			if g.ParentX(cix) != pix || g.ParentY(ciy) != piy {
				t.Fatalf("hierarchy broken at %v level %d: parent (%d,%d), child (%d,%d) -> (%d,%d)",
					p, level, pix, piy, cix, ciy, g.ParentX(cix), g.ParentY(ciy))
			}
		}
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{7, 2, 3}, {-7, 2, -4}, {6, 3, 2}, {-6, 3, -2}, {0, 5, 0}, {-1, 5, -1},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// The fraction of disks that survive at least one shifting should be 1 for
// disks much smaller than the square side placed away from lines; and a disk
// centered on a line never survives.
func TestSurvivesEdgeCases(t *testing.T) {
	g := ShiftGrid{K: 3, R: 0, S: 0}
	// Level-0 square side is 3. Disk of radius 0.3 centered mid-square survives.
	d := D(1.5, 1.5, 0.3)
	if !g.Survives(d, 0) {
		t.Error("central disk should survive")
	}
	// Disk overlapping the x=0 line (a shifted line for r=0) cannot survive.
	d2 := D(0.1, 1.5, 0.3)
	if g.Survives(d2, 0) {
		t.Error("line-crossing disk should not survive")
	}
}
