package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Pt(1, 2)
	q := Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
}

func TestPointDist(t *testing.T) {
	if d := Pt(0, 0).Dist(Pt(3, 4)); math.Abs(d-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := Pt(1, 1).Dist(Pt(1, 1)); d != 0 {
		t.Errorf("Dist to self = %v", d)
	}
}

func TestPointNorm(t *testing.T) {
	if n := Pt(3, 4).Norm(); math.Abs(n-5) > 1e-12 {
		t.Errorf("Norm = %v, want 5", n)
	}
}

func TestPointIsFinite(t *testing.T) {
	if !Pt(1, 2).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	if Pt(math.NaN(), 0).IsFinite() {
		t.Error("NaN point reported finite")
	}
	if Pt(0, math.Inf(1)).IsFinite() {
		t.Error("Inf point reported finite")
	}
}

func TestPointString(t *testing.T) {
	if s := Pt(1, 2).String(); s == "" {
		t.Error("empty String()")
	}
}

// Property: distance is symmetric and Dist2 == Dist^2.
func TestPointDistProperties(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if anyBad(ax, ay, bx, by) {
			return true
		}
		a, b := Pt(ax, ay), Pt(bx, by)
		d1, d2 := a.Dist(b), b.Dist(a)
		if d1 != d2 {
			return false
		}
		return relClose(d1*d1, a.Dist2(b), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality.
func TestPointTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		if anyBad(ax, ay, bx, by, cx, cy) {
			return true
		}
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9*(1+a.Dist(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func anyBad(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
			return true
		}
	}
	return false
}

func relClose(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}
