package geom

import "math"

// SpatialGrid is a uniform-grid spatial index over a fixed set of points.
// It answers "which point IDs lie within disk d" queries in expected time
// proportional to the number of candidate cells, which makes coverage-list
// construction O(n + m) for the deployments used in the paper instead of
// O(n*m).
//
// Buckets are stored flat in CSR form — one offsets array plus one packed
// index array, filled by a counting pass and a scatter pass — so building
// the grid performs a constant number of allocations regardless of the cell
// count, and a query walks contiguous memory instead of chasing per-bucket
// slice headers. Within a bucket, point indices are ascending (the scatter
// pass visits points in index order).
//
// The grid is built once and then read-only, so it is safe for concurrent
// queries.
type SpatialGrid struct {
	cell    float64
	invCell float64 // 1/cell; multiplication is measurably cheaper than division on the hot query path
	minX    float64
	minY    float64
	cols    int
	rows    int
	points  []Point
	// Bucket b holds point indices dat[off[b]:off[b+1]].
	off []int32
	dat []int32
}

// NewSpatialGrid indexes pts with the given cell size. Cell size must be
// positive; a good default is the median query radius. The points slice is
// retained (not copied) and must not be mutated afterwards.
func NewSpatialGrid(pts []Point, cell float64) *SpatialGrid {
	if cell <= 0 {
		cell = 1
	}
	g := &SpatialGrid{cell: cell, invCell: 1 / cell, points: pts}
	if len(pts) == 0 {
		g.cols, g.rows = 1, 1
		g.off = make([]int32, 2)
		return g
	}
	minX, minY := pts[0].X, pts[0].Y
	maxX, maxY := pts[0].X, pts[0].Y
	for _, p := range pts[1:] {
		if p.X < minX {
			minX = p.X
		} else if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		} else if p.Y > maxY {
			maxY = p.Y
		}
	}
	g.minX, g.minY = minX, minY
	g.cols = int((maxX-minX)*g.invCell) + 1
	g.rows = int((maxY-minY)*g.invCell) + 1

	// Counting pass: cell of each point, bucket sizes; scatter pass using
	// off[c] itself as the write cursor — after the scatter each off[c] has
	// advanced to the start of bucket c+1, so one overlapping copy shifts
	// the table into place (same idiom as the model package's CSR
	// transpose). No separate cursor array.
	nb := g.cols * g.rows
	cells := make([]int32, len(pts))
	g.off = make([]int32, nb+1)
	for i, p := range pts {
		c := g.cellIndex(p)
		cells[i] = int32(c)
		g.off[c]++
	}
	sum := int32(0)
	for b := 0; b < nb; b++ {
		cnt := g.off[b]
		g.off[b] = sum
		sum += cnt
	}
	g.off[nb] = sum
	g.dat = make([]int32, len(pts))
	for i := range pts {
		c := cells[i]
		g.dat[g.off[c]] = int32(i)
		g.off[c]++
	}
	copy(g.off[1:], g.off[:nb])
	g.off[0] = 0
	return g
}

// Len returns the number of indexed points.
func (g *SpatialGrid) Len() int { return len(g.points) }

func (g *SpatialGrid) cellIndex(p Point) int {
	col := int((p.X - g.minX) * g.invCell)
	row := int((p.Y - g.minY) * g.invCell)
	if col < 0 {
		col = 0
	} else if col >= g.cols {
		col = g.cols - 1
	}
	if row < 0 {
		row = 0
	} else if row >= g.rows {
		row = g.rows - 1
	}
	return row*g.cols + col
}

// QueryDisk appends to dst the indices of all points within disk d (boundary
// inclusive) and returns the extended slice. Results are in unspecified
// order.
func (g *SpatialGrid) QueryDisk(d Disk, dst []int32) []int32 {
	if len(g.points) == 0 {
		return dst
	}
	c0, c1, r0, r1 := g.cellRange(d.Center.X-d.R, d.Center.X+d.R, d.Center.Y-d.R, d.Center.Y+d.R)
	rr := d.R * d.R
	// Cell-level pruning on the slightly EXPANDED cell rectangle — a
	// superset of where the bucket's points can lie, since cellIndex rounds
	// (p-min)*invCell and a point may sit a few ULPs outside its nominal
	// cell. If the expanded rect is entirely outside the disk the bucket
	// contributes nothing; if it is entirely inside, every bucket member is
	// in the disk and is appended wholesale. Cells straddling the boundary
	// fall through to the exact per-point Dist2 test, so the result set is
	// identical to the plain scan.
	eps := g.cell * 1e-9
	cx, cy := d.Center.X, d.Center.Y
	for row := r0; row <= r1; row++ {
		base := row * g.cols
		y0 := g.minY + float64(row)*g.cell
		y1 := y0 + g.cell
		for col := c0; col <= c1; col++ {
			b := base + col
			bucket := g.dat[g.off[b]:g.off[b+1]]
			// The rect tests below cost ~a dozen flops; for sparse buckets
			// the plain point scan is cheaper than deciding whether to
			// skip it.
			if len(bucket) < 12 {
				for _, idx := range bucket {
					if g.points[idx].Dist2(d.Center) <= rr {
						dst = append(dst, idx)
					}
				}
				continue
			}
			x0 := g.minX + float64(col)*g.cell
			x1 := x0 + g.cell
			// Nearest distance from center to the expanded cell rect.
			nx, ny := 0.0, 0.0
			if cx < x0-eps {
				nx = x0 - eps - cx
			} else if cx > x1+eps {
				nx = cx - x1 - eps
			}
			if cy < y0-eps {
				ny = y0 - eps - cy
			} else if cy > y1+eps {
				ny = cy - y1 - eps
			}
			if nx*nx+ny*ny > rr {
				continue
			}
			// Farthest distance from center to the expanded cell rect.
			fx := cx - x0 + eps
			if x1+eps-cx > fx {
				fx = x1 + eps - cx
			}
			fy := cy - y0 + eps
			if y1+eps-cy > fy {
				fy = y1 + eps - cy
			}
			if fx*fx+fy*fy <= rr {
				dst = append(dst, bucket...)
				continue
			}
			for _, idx := range bucket {
				if g.points[idx].Dist2(d.Center) <= rr {
					dst = append(dst, idx)
				}
			}
		}
	}
	return dst
}

// QueryRect appends to dst the indices of all points inside rectangle r
// (boundary inclusive) and returns the extended slice.
func (g *SpatialGrid) QueryRect(r Rect, dst []int32) []int32 {
	if len(g.points) == 0 {
		return dst
	}
	c0, c1, r0, r1 := g.cellRange(r.Min.X, r.Max.X, r.Min.Y, r.Max.Y)
	for row := r0; row <= r1; row++ {
		base := row * g.cols
		for col := c0; col <= c1; col++ {
			b := base + col
			for _, idx := range g.dat[g.off[b]:g.off[b+1]] {
				if r.Contains(g.points[idx]) {
					dst = append(dst, idx)
				}
			}
		}
	}
	return dst
}

// cellRange clamps the cell rectangle covering [x0,x1]×[y0,y1]. The same
// monotone coordinate-to-cell mapping is used here and in cellIndex, so any
// point whose coordinates fall inside the queried box is inside the scanned
// cell range regardless of floating-point rounding at cell boundaries.
func (g *SpatialGrid) cellRange(x0, x1, y0, y1 float64) (c0, c1, r0, r1 int) {
	c0 = int(math.Floor((x0 - g.minX) * g.invCell))
	c1 = int(math.Floor((x1 - g.minX) * g.invCell))
	r0 = int(math.Floor((y0 - g.minY) * g.invCell))
	r1 = int(math.Floor((y1 - g.minY) * g.invCell))
	if c0 < 0 {
		c0 = 0
	}
	if r0 < 0 {
		r0 = 0
	}
	if c1 >= g.cols {
		c1 = g.cols - 1
	}
	if r1 >= g.rows {
		r1 = g.rows - 1
	}
	return c0, c1, r0, r1
}
