package geom

import "math"

// SpatialGrid is a uniform-grid spatial index over a fixed set of points.
// It answers "which point IDs lie within disk d" queries in expected time
// proportional to the number of candidate cells, which makes coverage-list
// construction O(n + m) for the deployments used in the paper instead of
// O(n*m).
//
// The grid is built once and then read-only, so it is safe for concurrent
// queries.
type SpatialGrid struct {
	cell   float64
	minX   float64
	minY   float64
	cols   int
	rows   int
	points []Point
	// buckets[row*cols+col] lists the indices of points in that cell.
	buckets [][]int32
}

// NewSpatialGrid indexes pts with the given cell size. Cell size must be
// positive; a good default is the median query radius. The points slice is
// retained (not copied) and must not be mutated afterwards.
func NewSpatialGrid(pts []Point, cell float64) *SpatialGrid {
	if cell <= 0 {
		cell = 1
	}
	g := &SpatialGrid{cell: cell, points: pts}
	if len(pts) == 0 {
		g.cols, g.rows = 1, 1
		g.buckets = make([][]int32, 1)
		return g
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	g.minX, g.minY = minX, minY
	g.cols = int((maxX-minX)/cell) + 1
	g.rows = int((maxY-minY)/cell) + 1
	g.buckets = make([][]int32, g.cols*g.rows)
	for i, p := range pts {
		c := g.cellIndex(p)
		g.buckets[c] = append(g.buckets[c], int32(i))
	}
	return g
}

// Len returns the number of indexed points.
func (g *SpatialGrid) Len() int { return len(g.points) }

func (g *SpatialGrid) cellIndex(p Point) int {
	col := int((p.X - g.minX) / g.cell)
	row := int((p.Y - g.minY) / g.cell)
	if col < 0 {
		col = 0
	} else if col >= g.cols {
		col = g.cols - 1
	}
	if row < 0 {
		row = 0
	} else if row >= g.rows {
		row = g.rows - 1
	}
	return row*g.cols + col
}

// QueryDisk appends to dst the indices of all points within disk d (boundary
// inclusive) and returns the extended slice. Results are in unspecified
// order.
func (g *SpatialGrid) QueryDisk(d Disk, dst []int32) []int32 {
	if len(g.points) == 0 {
		return dst
	}
	c0 := int(math.Floor((d.Center.X - d.R - g.minX) / g.cell))
	c1 := int(math.Floor((d.Center.X + d.R - g.minX) / g.cell))
	r0 := int(math.Floor((d.Center.Y - d.R - g.minY) / g.cell))
	r1 := int(math.Floor((d.Center.Y + d.R - g.minY) / g.cell))
	if c0 < 0 {
		c0 = 0
	}
	if r0 < 0 {
		r0 = 0
	}
	if c1 >= g.cols {
		c1 = g.cols - 1
	}
	if r1 >= g.rows {
		r1 = g.rows - 1
	}
	rr := d.R * d.R
	for row := r0; row <= r1; row++ {
		base := row * g.cols
		for col := c0; col <= c1; col++ {
			for _, idx := range g.buckets[base+col] {
				if g.points[idx].Dist2(d.Center) <= rr {
					dst = append(dst, idx)
				}
			}
		}
	}
	return dst
}

// QueryRect appends to dst the indices of all points inside rectangle r
// (boundary inclusive) and returns the extended slice.
func (g *SpatialGrid) QueryRect(r Rect, dst []int32) []int32 {
	if len(g.points) == 0 {
		return dst
	}
	c0 := int(math.Floor((r.Min.X - g.minX) / g.cell))
	c1 := int(math.Floor((r.Max.X - g.minX) / g.cell))
	r0 := int(math.Floor((r.Min.Y - g.minY) / g.cell))
	r1 := int(math.Floor((r.Max.Y - g.minY) / g.cell))
	if c0 < 0 {
		c0 = 0
	}
	if r0 < 0 {
		r0 = 0
	}
	if c1 >= g.cols {
		c1 = g.cols - 1
	}
	if r1 >= g.rows {
		r1 = g.rows - 1
	}
	for row := r0; row <= r1; row++ {
		base := row * g.cols
		for col := c0; col <= c1; col++ {
			for _, idx := range g.buckets[base+col] {
				if r.Contains(g.points[idx]) {
					dst = append(dst, idx)
				}
			}
		}
	}
	return dst
}
