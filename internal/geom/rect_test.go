package geom

import (
	"testing"
	"testing/quick"
)

func TestR2Normalizes(t *testing.T) {
	r := R2(5, 7, 1, 2)
	if r.Min != Pt(1, 2) || r.Max != Pt(5, 7) {
		t.Errorf("R2 did not normalize: %v", r)
	}
}

func TestRectDims(t *testing.T) {
	r := R2(0, 0, 4, 3)
	if r.Width() != 4 || r.Height() != 3 || r.Area() != 12 {
		t.Errorf("dims wrong: w=%v h=%v a=%v", r.Width(), r.Height(), r.Area())
	}
	if r.Center() != Pt(2, 1.5) {
		t.Errorf("Center = %v", r.Center())
	}
}

func TestRectContains(t *testing.T) {
	r := R2(0, 0, 10, 10)
	if !r.Contains(Pt(0, 0)) || !r.Contains(Pt(10, 10)) || !r.Contains(Pt(5, 5)) {
		t.Error("Contains misses inside/boundary points")
	}
	if r.Contains(Pt(-0.1, 5)) || r.Contains(Pt(5, 10.1)) {
		t.Error("Contains accepts outside points")
	}
	if r.ContainsStrict(Pt(0, 5)) {
		t.Error("ContainsStrict accepts boundary")
	}
}

func TestRectIntersects(t *testing.T) {
	a := R2(0, 0, 2, 2)
	if !a.Intersects(R2(1, 1, 3, 3)) {
		t.Error("overlapping rects reported disjoint")
	}
	if !a.Intersects(R2(2, 0, 4, 2)) {
		t.Error("touching rects should intersect")
	}
	if a.Intersects(R2(2.1, 0, 4, 2)) {
		t.Error("disjoint rects reported intersecting")
	}
}

func TestRectContainsRect(t *testing.T) {
	outer := R2(0, 0, 10, 10)
	if !outer.ContainsRect(R2(1, 1, 9, 9)) || !outer.ContainsRect(outer) {
		t.Error("ContainsRect misses contained rects")
	}
	if outer.ContainsRect(R2(5, 5, 11, 9)) {
		t.Error("ContainsRect accepts protruding rect")
	}
}

func TestRectDiskPredicates(t *testing.T) {
	r := R2(0, 0, 10, 10)
	inside := D(5, 5, 2)
	crossing := D(0.5, 5, 2)
	outside := D(20, 20, 2)
	touching := D(12, 5, 2)

	if !r.ContainsDisk(inside) {
		t.Error("inside disk not contained")
	}
	if r.ContainsDisk(crossing) {
		t.Error("crossing disk reported contained")
	}
	if !r.IntersectsDisk(inside) || !r.IntersectsDisk(crossing) {
		t.Error("IntersectsDisk misses")
	}
	if r.IntersectsDisk(outside) {
		t.Error("IntersectsDisk accepts far disk")
	}
	if !r.IntersectsDisk(touching) {
		t.Error("tangent disk should intersect (closed)")
	}
	if !r.DiskCrossesBoundary(crossing) {
		t.Error("crossing disk should cross boundary")
	}
	if r.DiskCrossesBoundary(inside) || r.DiskCrossesBoundary(outside) {
		t.Error("non-crossing disk reported as crossing")
	}
}

func TestRectExpand(t *testing.T) {
	r := R2(0, 0, 2, 2).Expand(1)
	if r != R2(-1, -1, 3, 3) {
		t.Errorf("Expand = %v", r)
	}
}

func TestRectString(t *testing.T) {
	if R2(0, 0, 1, 1).String() == "" {
		t.Error("empty String()")
	}
}

// Property: a disk fully contained in a rect intersects it and does not
// cross its boundary.
func TestRectDiskConsistency(t *testing.T) {
	f := func(cx, cy, r float64) bool {
		if anyBad(cx, cy, r) {
			return true
		}
		rect := R2(-100, -100, 100, 100)
		d := D(clamp(cx, -99, 99), clamp(cy, -99, 99), clamp(r, 0.01, 0.5))
		if !rect.ContainsDisk(d) {
			return true // not the case under test
		}
		return rect.IntersectsDisk(d) && !rect.DiskCrossesBoundary(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
