package geom

import (
	"fmt"
	"math"
)

// Disk is a closed disk in the plane. In the RFID model a reader owns two
// concentric disks: its interference disk (radius R_i) and its interrogation
// disk (radius r_i = beta*R_i).
type Disk struct {
	Center Point
	R      float64
}

// D is shorthand for Disk{Center: Pt(x, y), R: r}.
func D(x, y, r float64) Disk { return Disk{Center: Pt(x, y), R: r} }

// Contains reports whether p lies inside or on the boundary of d.
func (d Disk) Contains(p Point) bool {
	return d.Center.Dist2(p) <= d.R*d.R
}

// ContainsStrict reports whether p lies strictly inside d.
func (d Disk) ContainsStrict(p Point) bool {
	return d.Center.Dist2(p) < d.R*d.R
}

// Intersects reports whether d and e share at least one point.
func (d Disk) Intersects(e Disk) bool {
	s := d.R + e.R
	return d.Center.Dist2(e.Center) <= s*s
}

// ContainsDisk reports whether e is entirely inside d (boundaries allowed to
// touch).
func (d Disk) ContainsDisk(e Disk) bool {
	if e.R > d.R {
		return false
	}
	return d.Center.Dist(e.Center)+e.R <= d.R+1e-12
}

// Area returns the area of the disk.
func (d Disk) Area() float64 { return math.Pi * d.R * d.R }

// Bounds returns the axis-aligned bounding box of d.
func (d Disk) Bounds() Rect {
	return Rect{
		Min: Pt(d.Center.X-d.R, d.Center.Y-d.R),
		Max: Pt(d.Center.X+d.R, d.Center.Y+d.R),
	}
}

// LensArea returns the area of the intersection of d and e (the "lens").
// It is used by deployment diagnostics to estimate expected RRc overlap.
func (d Disk) LensArea(e Disk) float64 {
	dist := d.Center.Dist(e.Center)
	if dist >= d.R+e.R {
		return 0
	}
	small, big := d, e
	if small.R > big.R {
		small, big = big, small
	}
	if dist+small.R <= big.R {
		return small.Area()
	}
	r1, r2 := d.R, e.R
	// Standard circular-lens formula.
	d2 := dist * dist
	a1 := r1 * r1 * math.Acos(clamp((d2+r1*r1-r2*r2)/(2*dist*r1), -1, 1))
	a2 := r2 * r2 * math.Acos(clamp((d2+r2*r2-r1*r1)/(2*dist*r2), -1, 1))
	k := (-dist + r1 + r2) * (dist + r1 - r2) * (dist - r1 + r2) * (dist + r1 + r2)
	if k < 0 {
		k = 0
	}
	return a1 + a2 - 0.5*math.Sqrt(k)
}

// HitsVerticalLine reports whether the disk "hits" the vertical line x = a
// in the paper's sense: a-R < x <= a+R.
func (d Disk) HitsVerticalLine(a float64) bool {
	return a-d.R < d.Center.X && d.Center.X <= a+d.R
}

// HitsHorizontalLine reports whether the disk hits the horizontal line y = b:
// b-R < y <= b+R.
func (d Disk) HitsHorizontalLine(b float64) bool {
	return b-d.R < d.Center.Y && d.Center.Y <= b+d.R
}

// String implements fmt.Stringer.
func (d Disk) String() string {
	return fmt.Sprintf("Disk{%v r=%.4g}", d.Center, d.R)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
