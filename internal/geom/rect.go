package geom

import "fmt"

// Rect is a closed axis-aligned rectangle [Min.X, Max.X] x [Min.Y, Max.Y].
type Rect struct {
	Min, Max Point
}

// R2 is shorthand for a rectangle from (x0,y0) to (x1,y1). Coordinates are
// normalized so Min <= Max componentwise.
func R2(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Min: Pt(x0, y0), Max: Pt(x1, y1)}
}

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of the rectangle.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the center point of the rectangle.
func (r Rect) Center() Point {
	return Pt((r.Min.X+r.Max.X)/2, (r.Min.Y+r.Max.Y)/2)
}

// Contains reports whether p is inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsStrict reports whether p is strictly inside r.
func (r Rect) ContainsStrict(p Point) bool {
	return p.X > r.Min.X && p.X < r.Max.X && p.Y > r.Min.Y && p.Y < r.Max.Y
}

// Intersects reports whether r and s overlap (touching boundaries count).
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.Min.X >= r.Min.X && s.Max.X <= r.Max.X &&
		s.Min.Y >= r.Min.Y && s.Max.Y <= r.Max.Y
}

// ContainsDisk reports whether disk d lies entirely within r, boundary
// touches allowed.
func (r Rect) ContainsDisk(d Disk) bool {
	return d.Center.X-d.R >= r.Min.X && d.Center.X+d.R <= r.Max.X &&
		d.Center.Y-d.R >= r.Min.Y && d.Center.Y+d.R <= r.Max.Y
}

// IntersectsDisk reports whether disk d and rectangle r share a point.
func (r Rect) IntersectsDisk(d Disk) bool {
	// Distance from disk center to the rectangle.
	dx := 0.0
	if d.Center.X < r.Min.X {
		dx = r.Min.X - d.Center.X
	} else if d.Center.X > r.Max.X {
		dx = d.Center.X - r.Max.X
	}
	dy := 0.0
	if d.Center.Y < r.Min.Y {
		dy = r.Min.Y - d.Center.Y
	} else if d.Center.Y > r.Max.Y {
		dy = d.Center.Y - r.Max.Y
	}
	return dx*dx+dy*dy <= d.R*d.R
}

// DiskCrossesBoundary reports whether disk d intersects the boundary of r,
// i.e. d has points both inside and outside of r. A disk entirely inside or
// entirely outside does not cross.
func (r Rect) DiskCrossesBoundary(d Disk) bool {
	return r.IntersectsDisk(d) && !r.ContainsDisk(d)
}

// Expand returns r grown by m on every side.
func (r Rect) Expand(m float64) Rect {
	return Rect{Min: Pt(r.Min.X-m, r.Min.Y-m), Max: Pt(r.Max.X+m, r.Max.Y+m)}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("Rect[%v %v]", r.Min, r.Max)
}
