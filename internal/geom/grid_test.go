package geom

import (
	"math/rand"
	"sort"
	"testing"
)

func randomPoints(n int, side float64, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*side, rng.Float64()*side)
	}
	return pts
}

func bruteDisk(pts []Point, d Disk) []int32 {
	var out []int32
	for i, p := range pts {
		if d.Contains(p) {
			out = append(out, int32(i))
		}
	}
	return out
}

func bruteRect(pts []Point, r Rect) []int32 {
	var out []int32
	for i, p := range pts {
		if r.Contains(p) {
			out = append(out, int32(i))
		}
	}
	return out
}

func sortIDs(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSpatialGridMatchesBruteForce(t *testing.T) {
	pts := randomPoints(500, 100, 1)
	g := NewSpatialGrid(pts, 7)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		d := D(rng.Float64()*100, rng.Float64()*100, rng.Float64()*20)
		got := g.QueryDisk(d, nil)
		want := bruteDisk(pts, d)
		sortIDs(got)
		sortIDs(want)
		if !equalIDs(got, want) {
			t.Fatalf("query %v: got %d ids, want %d", d, len(got), len(want))
		}
	}
}

func TestSpatialGridRectMatchesBruteForce(t *testing.T) {
	pts := randomPoints(500, 100, 3)
	g := NewSpatialGrid(pts, 4)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		r := R2(x, y, x+rng.Float64()*30, y+rng.Float64()*30)
		got := g.QueryRect(r, nil)
		want := bruteRect(pts, r)
		sortIDs(got)
		sortIDs(want)
		if !equalIDs(got, want) {
			t.Fatalf("query %v: got %d ids, want %d", r, len(got), len(want))
		}
	}
}

func TestSpatialGridEmpty(t *testing.T) {
	g := NewSpatialGrid(nil, 5)
	if g.Len() != 0 {
		t.Errorf("Len = %d", g.Len())
	}
	if got := g.QueryDisk(D(0, 0, 10), nil); len(got) != 0 {
		t.Errorf("query on empty grid returned %v", got)
	}
	if got := g.QueryRect(R2(0, 0, 1, 1), nil); len(got) != 0 {
		t.Errorf("rect query on empty grid returned %v", got)
	}
}

func TestSpatialGridSinglePoint(t *testing.T) {
	g := NewSpatialGrid([]Point{Pt(5, 5)}, 3)
	if got := g.QueryDisk(D(5, 5, 0.1), nil); len(got) != 1 || got[0] != 0 {
		t.Errorf("got %v", got)
	}
	if got := g.QueryDisk(D(50, 50, 1), nil); len(got) != 0 {
		t.Errorf("far query got %v", got)
	}
}

func TestSpatialGridNonPositiveCell(t *testing.T) {
	// Must not panic; falls back to a default cell size.
	g := NewSpatialGrid([]Point{Pt(0, 0), Pt(1, 1)}, -3)
	if got := g.QueryDisk(D(0, 0, 2), nil); len(got) != 2 {
		t.Errorf("got %v", got)
	}
}

func TestSpatialGridQueryBeyondBounds(t *testing.T) {
	pts := randomPoints(100, 10, 7)
	g := NewSpatialGrid(pts, 2)
	// Huge disk covering everything, centered far outside the data extent.
	got := g.QueryDisk(D(-1000, -1000, 5000), nil)
	if len(got) != len(pts) {
		t.Errorf("got %d, want %d", len(got), len(pts))
	}
}

func TestSpatialGridAppendSemantics(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 0)}
	g := NewSpatialGrid(pts, 1)
	dst := make([]int32, 0, 4)
	dst = append(dst, 99)
	out := g.QueryDisk(D(0, 0, 5), dst)
	if out[0] != 99 || len(out) != 3 {
		t.Errorf("append semantics broken: %v", out)
	}
}
