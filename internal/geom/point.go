// Package geom provides the planar geometry used throughout rfidsched:
// points, disks, axis-aligned rectangles, a uniform-grid spatial index for
// range queries, and the shifted hierarchical grid that underlies the PTAS
// of Algorithm 1 (Tang et al., IPDPS 2011).
//
// All coordinates are float64 and all regions live in the Euclidean plane.
// The package is purely computational and safe for concurrent use: every
// type is either immutable after construction or documented otherwise.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred primitive on hot paths (coverage
// tests, independence checks).
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4g,%.4g)", p.X, p.Y) }

// IsFinite reports whether both coordinates are finite numbers.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}
