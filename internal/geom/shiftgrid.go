package geom

import "math"

// ShiftGrid is the (r,s)-shifted hierarchical subdivision used by the PTAS
// of Algorithm 1. After the interference radii are scaled so the largest
// radius is 1/2, disks are binned into levels
//
//	level j:  1/(k+1)^(j+1) < 2R <= 1/(k+1)^j
//
// and for each level j the plane carries grid lines with spacing
// u_j = 1/(k+1)^j. The (r,s)-shifting keeps only vertical lines whose index
// is congruent to r (mod k) and horizontal lines congruent to s (mod k), so
// a j-square has side k*u_j. Erlebach et al. (SODA'01) observed — and the
// paper relies on — the fact that every shifted line at level j is also a
// shifted line at level j+1, hence each j-square decomposes exactly into
// (k+1)^2 child (j+1)-squares.
type ShiftGrid struct {
	K int // shift parameter k >= 2; the PTAS loses a (1-1/k)^2 factor
	R int // vertical shifting index, 0 <= R < K
	S int // horizontal shifting index, 0 <= S < K
}

// Spacing returns u_level = 1/(k+1)^level, the distance between consecutive
// (unshifted) grid lines at the given level.
func (g ShiftGrid) Spacing(level int) float64 {
	return math.Pow(float64(g.K+1), -float64(level))
}

// SquareSide returns the side length of a level square: k * u_level.
func (g ShiftGrid) SquareSide(level int) float64 {
	return float64(g.K) * g.Spacing(level)
}

// DiskLevel returns the level of a disk of radius r under shift parameter k,
// i.e. floor(log_{k+1}(1/(2r))). Radii must satisfy 0 < r <= 1/2 (callers
// scale the instance first). A small relative tolerance absorbs floating-
// point error at bin boundaries.
func DiskLevel(r float64, k int) int {
	if r <= 0 {
		return 0
	}
	l := math.Log(1/(2*r)) / math.Log(float64(k+1))
	lv := int(math.Floor(l + 1e-9))
	if lv < 0 {
		lv = 0
	}
	return lv
}

// SquareIndex returns the (ix, iy) index of the level-j square of the
// shifting that contains p. The square with index a spans
// x in [(r+a*k)*u_j, (r+(a+1)*k)*u_j) and analogously for y with s.
func (g ShiftGrid) SquareIndex(p Point, level int) (ix, iy int) {
	u := g.Spacing(level)
	ix = int(math.Floor((p.X/u - float64(g.R)) / float64(g.K)))
	iy = int(math.Floor((p.Y/u - float64(g.S)) / float64(g.K)))
	return ix, iy
}

// SquareRect returns the rectangle of the level square with the given index.
func (g ShiftGrid) SquareRect(level, ix, iy int) Rect {
	u := g.Spacing(level)
	x0 := (float64(g.R) + float64(ix)*float64(g.K)) * u
	y0 := (float64(g.S) + float64(iy)*float64(g.K)) * u
	side := float64(g.K) * u
	return Rect{Min: Pt(x0, y0), Max: Pt(x0+side, y0+side)}
}

// Survives reports whether a disk of the given level survives the shifting:
// it does not intersect the boundary of the level square containing its
// center (and therefore of any level square). Survive disks are entirely
// inside exactly one square of their level.
func (g ShiftGrid) Survives(d Disk, level int) bool {
	ix, iy := g.SquareIndex(d.Center, level)
	sq := g.SquareRect(level, ix, iy)
	return d.Center.X-d.R > sq.Min.X && d.Center.X+d.R < sq.Max.X &&
		d.Center.Y-d.R > sq.Min.Y && d.Center.Y+d.R < sq.Max.Y
}

// ChildIndexRange maps a square index at level j to the inclusive range of
// child square indices at level j+1 along the same axis. Every j-square has
// exactly (k+1) children per axis; the same formula applies to x indices
// (using R) and y indices (using S) because the derivation
// a' = a*(k+1) + shift is shift-symmetric.
func (g ShiftGrid) ChildIndexRange(idx int, shift int) (lo, hi int) {
	lo = idx*(g.K+1) + shift
	return lo, lo + g.K
}

// ChildXRange returns the child index range along x for a level-j square.
func (g ShiftGrid) ChildXRange(ix int) (lo, hi int) { return g.ChildIndexRange(ix, g.R) }

// ChildYRange returns the child index range along y for a level-j square.
func (g ShiftGrid) ChildYRange(iy int) (lo, hi int) { return g.ChildIndexRange(iy, g.S) }

// ParentIndex maps a level-(j+1) square index back to its level-j parent
// index along one axis (inverse of ChildIndexRange).
func (g ShiftGrid) ParentIndex(idx int, shift int) int {
	return floorDiv(idx-shift, g.K+1)
}

// ParentX returns the parent x index of a child x index.
func (g ShiftGrid) ParentX(ix int) int { return g.ParentIndex(ix, g.R) }

// ParentY returns the parent y index of a child y index.
func (g ShiftGrid) ParentY(iy int) int { return g.ParentIndex(iy, g.S) }

// floorDiv returns floor(a/b) for b > 0, correct for negative a.
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
