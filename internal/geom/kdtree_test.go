package geom

import (
	"math/rand"
	"testing"
)

func TestKDTreeMatchesBruteForce(t *testing.T) {
	pts := randomPoints(400, 100, 21)
	tree := NewKDTree(pts)
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 200; i++ {
		d := D(rng.Float64()*100, rng.Float64()*100, rng.Float64()*25)
		got := tree.QueryDisk(d, nil)
		want := bruteDisk(pts, d)
		sortIDs(got)
		sortIDs(want)
		if !equalIDs(got, want) {
			t.Fatalf("query %v: got %d, want %d", d, len(got), len(want))
		}
	}
}

func TestKDTreeMatchesGrid(t *testing.T) {
	pts := randomPoints(300, 60, 23)
	tree := NewKDTree(pts)
	grid := NewSpatialGrid(pts, 5)
	rng := rand.New(rand.NewSource(24))
	for i := 0; i < 100; i++ {
		d := D(rng.Float64()*60, rng.Float64()*60, rng.Float64()*15)
		a := tree.QueryDisk(d, nil)
		b := grid.QueryDisk(d, nil)
		sortIDs(a)
		sortIDs(b)
		if !equalIDs(a, b) {
			t.Fatalf("tree and grid disagree on %v: %d vs %d", d, len(a), len(b))
		}
	}
}

func TestKDTreeEmpty(t *testing.T) {
	tree := NewKDTree(nil)
	if tree.Len() != 0 {
		t.Error("empty length")
	}
	if got := tree.QueryDisk(D(0, 0, 10), nil); len(got) != 0 {
		t.Errorf("empty query = %v", got)
	}
	if i, _ := tree.Nearest(Pt(0, 0)); i != -1 {
		t.Errorf("empty nearest = %d", i)
	}
}

func TestKDTreeSinglePoint(t *testing.T) {
	tree := NewKDTree([]Point{Pt(3, 4)})
	if got := tree.QueryDisk(D(0, 0, 5), nil); len(got) != 1 || got[0] != 0 {
		t.Errorf("got %v", got)
	}
	if got := tree.QueryDisk(D(0, 0, 4.9), nil); len(got) != 0 {
		t.Errorf("got %v", got)
	}
	i, d2 := tree.Nearest(Pt(0, 0))
	if i != 0 || d2 != 25 {
		t.Errorf("nearest = %d, %v", i, d2)
	}
}

func TestKDTreeNearestMatchesBruteForce(t *testing.T) {
	pts := randomPoints(300, 80, 25)
	tree := NewKDTree(pts)
	rng := rand.New(rand.NewSource(26))
	for i := 0; i < 300; i++ {
		q := Pt(rng.Float64()*80, rng.Float64()*80)
		gotIdx, gotD2 := tree.Nearest(q)
		bestIdx, bestD2 := -1, 0.0
		for j, p := range pts {
			if d2 := p.Dist2(q); bestIdx < 0 || d2 < bestD2 {
				bestIdx, bestD2 = j, d2
			}
		}
		if gotD2 != bestD2 {
			t.Fatalf("nearest(%v) = %d (%v), want %d (%v)", q, gotIdx, gotD2, bestIdx, bestD2)
		}
	}
}

func TestKDTreeDuplicatePoints(t *testing.T) {
	pts := []Point{Pt(1, 1), Pt(1, 1), Pt(1, 1), Pt(2, 2)}
	tree := NewKDTree(pts)
	got := tree.QueryDisk(D(1, 1, 0.5), nil)
	if len(got) != 3 {
		t.Errorf("duplicates: got %v", got)
	}
}

func TestKDTreeAppendSemantics(t *testing.T) {
	tree := NewKDTree([]Point{Pt(0, 0)})
	dst := []int32{7}
	out := tree.QueryDisk(D(0, 0, 1), dst)
	if len(out) != 2 || out[0] != 7 {
		t.Errorf("append semantics: %v", out)
	}
}
