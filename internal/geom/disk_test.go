package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDiskContains(t *testing.T) {
	d := D(0, 0, 5)
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(0, 0), true},
		{Pt(5, 0), true}, // boundary is inside (closed disk)
		{Pt(3, 4), true}, // exactly on boundary
		{Pt(5.01, 0), false},
		{Pt(4, 4), false},
	}
	for _, c := range cases {
		if got := d.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if d.ContainsStrict(Pt(5, 0)) {
		t.Error("ContainsStrict includes boundary")
	}
}

func TestDiskIntersects(t *testing.T) {
	a := D(0, 0, 1)
	if !a.Intersects(D(1.5, 0, 1)) {
		t.Error("overlapping disks reported disjoint")
	}
	if !a.Intersects(D(2, 0, 1)) {
		t.Error("tangent disks should intersect (closed)")
	}
	if a.Intersects(D(2.001, 0, 1)) {
		t.Error("disjoint disks reported intersecting")
	}
}

func TestDiskContainsDisk(t *testing.T) {
	big := D(0, 0, 10)
	if !big.ContainsDisk(D(2, 2, 3)) {
		t.Error("inner disk not contained")
	}
	if !big.ContainsDisk(D(0, 0, 10)) {
		t.Error("identical disk not contained")
	}
	if big.ContainsDisk(D(8, 0, 3)) {
		t.Error("protruding disk reported contained")
	}
}

func TestDiskArea(t *testing.T) {
	if a := D(0, 0, 2).Area(); math.Abs(a-4*math.Pi) > 1e-12 {
		t.Errorf("Area = %v", a)
	}
}

func TestDiskBounds(t *testing.T) {
	b := D(1, 2, 3).Bounds()
	want := R2(-2, -1, 4, 5)
	if b != want {
		t.Errorf("Bounds = %v, want %v", b, want)
	}
}

func TestLensAreaDisjoint(t *testing.T) {
	if a := D(0, 0, 1).LensArea(D(5, 0, 1)); a != 0 {
		t.Errorf("disjoint lens area = %v", a)
	}
}

func TestLensAreaContained(t *testing.T) {
	small := D(0.5, 0, 1)
	big := D(0, 0, 4)
	if a := big.LensArea(small); math.Abs(a-small.Area()) > 1e-9 {
		t.Errorf("contained lens area = %v, want %v", a, small.Area())
	}
}

func TestLensAreaHalfOverlap(t *testing.T) {
	// Two unit disks with centers at distance 0; lens = full disk area.
	a := D(0, 0, 1)
	b := D(1e-12, 0, 1)
	if got := a.LensArea(b); math.Abs(got-math.Pi) > 1e-4 {
		t.Errorf("coincident lens area = %v, want pi", got)
	}
}

func TestLensAreaSymmetric(t *testing.T) {
	f := func(x1, y1, r1, x2, y2, r2 float64) bool {
		if anyBad(x1, y1, r1, x2, y2, r2) {
			return true
		}
		a := D(x1, y1, math.Abs(r1)+0.1)
		b := D(x2, y2, math.Abs(r2)+0.1)
		return relClose(a.LensArea(b), b.LensArea(a), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLensAreaBounded(t *testing.T) {
	f := func(x1, y1, r1, x2, y2, r2 float64) bool {
		if anyBad(x1, y1, r1, x2, y2, r2) {
			return true
		}
		a := D(x1, y1, math.Mod(math.Abs(r1), 100)+0.1)
		b := D(x2, y2, math.Mod(math.Abs(r2), 100)+0.1)
		lens := a.LensArea(b)
		if lens < -1e-9 {
			return false
		}
		maxA := math.Min(a.Area(), b.Area())
		return lens <= maxA+1e-6*maxA+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiskHitsLines(t *testing.T) {
	d := D(5, 5, 1)
	if !d.HitsVerticalLine(5.5) {
		t.Error("should hit x=5.5")
	}
	if !d.HitsVerticalLine(4) { // 4-1 < 5 <= 4+1: boundary of half-open interval
		t.Error("should hit x=4 (half-open hit definition)")
	}
	if d.HitsVerticalLine(6) { // 6-1 < 5 is false: center exactly at a-R
		t.Error("should not hit x=6 (half-open hit definition)")
	}
	if d.HitsVerticalLine(3.9) { // 3.9+1 < 5
		t.Error("should not hit x=3.9")
	}
	if !d.HitsHorizontalLine(4.5) {
		t.Error("should hit y=4.5")
	}
	if d.HitsHorizontalLine(7) {
		t.Error("should not hit y=7")
	}
}

func TestDiskString(t *testing.T) {
	if D(0, 0, 1).String() == "" {
		t.Error("empty String()")
	}
}

func TestClamp(t *testing.T) {
	if clamp(5, 0, 1) != 1 || clamp(-5, 0, 1) != 0 || clamp(0.5, 0, 1) != 0.5 {
		t.Error("clamp misbehaves")
	}
}
