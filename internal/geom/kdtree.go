package geom

import "slices"

// KDTree is a 2-d tree over a fixed point set — the alternative spatial
// index to SpatialGrid. The grid wins on uniform paper-scale deployments;
// the tree wins when densities are wildly non-uniform (hotspot layouts) or
// query radii vary by orders of magnitude, because its depth adapts to the
// data rather than to a fixed cell size. BenchmarkSpatialIndex compares
// them; model.NewSystem uses the grid by default.
//
// The tree is built once and read-only afterwards, safe for concurrent
// queries.
type KDTree struct {
	points []Point
	// nodes store point indices in build order; node i's children are
	// implicit via the recursion bounds kept in-line (slice-based kd-tree:
	// idx is a permutation of point indices; each recursion level owns a
	// contiguous segment with its median at the middle).
	idx []int32
}

// NewKDTree builds a tree over pts. The pts slice is retained and must not
// be mutated afterwards.
func NewKDTree(pts []Point) *KDTree {
	t := &KDTree{points: pts, idx: make([]int32, len(pts))}
	for i := range t.idx {
		t.idx[i] = int32(i)
	}
	t.build(0, len(t.idx), 0)
	return t
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.points) }

// build arranges idx[lo:hi) so the median by the split axis sits at mid,
// recursively.
func (t *KDTree) build(lo, hi, axis int) {
	if hi-lo <= 1 {
		return
	}
	mid := (lo + hi) / 2
	seg := t.idx[lo:hi]
	nth := mid - lo
	// Full sort of the segment to place the median: simple and fine for a
	// build-once structure.
	slices.SortFunc(seg, func(a, b int32) int {
		pa, pb := t.points[a], t.points[b]
		ka, kb := pa.X, pb.X
		if axis == 1 {
			ka, kb = pa.Y, pb.Y
		}
		switch {
		case ka < kb:
			return -1
		case ka > kb:
			return 1
		}
		return 0
	})
	_ = nth
	t.build(lo, mid, 1-axis)
	t.build(mid+1, hi, 1-axis)
}

// QueryDisk appends the indices of all points within d (boundary inclusive)
// and returns the extended slice.
func (t *KDTree) QueryDisk(d Disk, dst []int32) []int32 {
	return t.query(0, len(t.idx), 0, d, dst)
}

func (t *KDTree) query(lo, hi, axis int, d Disk, dst []int32) []int32 {
	if lo >= hi {
		return dst
	}
	mid := (lo + hi) / 2
	p := t.points[t.idx[mid]]
	if d.Contains(p) {
		dst = append(dst, t.idx[mid])
	}
	var coord, center float64
	if axis == 0 {
		coord, center = p.X, d.Center.X
	} else {
		coord, center = p.Y, d.Center.Y
	}
	if center-d.R <= coord {
		dst = t.query(lo, mid, 1-axis, d, dst)
	}
	if center+d.R >= coord {
		dst = t.query(mid+1, hi, 1-axis, d, dst)
	}
	return dst
}

// Nearest returns the index of the nearest point to q and its distance
// (squared); (-1, 0) on an empty tree.
func (t *KDTree) Nearest(q Point) (int, float64) {
	if len(t.points) == 0 {
		return -1, 0
	}
	best := -1
	bestD2 := 0.0
	var rec func(lo, hi, axis int)
	rec = func(lo, hi, axis int) {
		if lo >= hi {
			return
		}
		mid := (lo + hi) / 2
		p := t.points[t.idx[mid]]
		d2 := p.Dist2(q)
		if best < 0 || d2 < bestD2 {
			best, bestD2 = int(t.idx[mid]), d2
		}
		var diff float64
		if axis == 0 {
			diff = q.X - p.X
		} else {
			diff = q.Y - p.Y
		}
		near, far := [2]int{lo, mid}, [2]int{mid + 1, hi}
		if diff > 0 {
			near, far = far, near
		}
		rec(near[0], near[1], 1-axis)
		if diff*diff < bestD2 {
			rec(far[0], far[1], 1-axis)
		}
	}
	rec(0, len(t.idx), 0)
	return best, bestD2
}
