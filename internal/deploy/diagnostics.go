package deploy

import (
	"fmt"
	"io"

	"rfidsched/internal/model"
)

// Diagnostics summarizes the geometry of a deployment: how much of the tag
// population any schedule could ever serve, how contended the airspace is,
// and how much RRc-prone interrogation overlap the radii create. rfidgen
// prints it so a user knows what they generated; the experiment notes in
// EXPERIMENTS.md lean on the same quantities to explain curve shapes.
type Diagnostics struct {
	Readers int
	Tags    int

	// CoverableTags is the number of tags inside at least one interrogation
	// region — the ceiling any covering schedule can reach.
	CoverableTags int
	// CoverableFraction = CoverableTags / Tags (0 when there are no tags).
	CoverableFraction float64

	// MeanTagsPerReader is the average interrogation-region population.
	MeanTagsPerReader float64
	// MaxTagsPerReader is the largest single-reader population, a lower
	// bound on any reader's busiest slot.
	MaxTagsPerReader int

	// InterferenceEdges counts non-independent reader pairs (the edges of
	// Definition 7's interference graph).
	InterferenceEdges int
	// InterferenceDensity = edges / C(n,2).
	InterferenceDensity float64

	// OverlapPairs counts reader pairs whose interrogation regions
	// intersect — RRc exposure. DangerousOverlapPairs counts the subset
	// that is simultaneously independent (schedulable together), the pairs
	// that can deadlock tag coverage for hop-local algorithms.
	OverlapPairs          int
	DangerousOverlapPairs int

	// MultiCoveredTags counts tags inside >= 2 interrogation regions.
	MultiCoveredTags int
}

// Diagnose computes deployment diagnostics for sys.
func Diagnose(sys *model.System) Diagnostics {
	d := Diagnostics{Readers: sys.NumReaders(), Tags: sys.NumTags()}
	for t := 0; t < sys.NumTags(); t++ {
		covering := len(sys.ReadersOf(t))
		if covering > 0 {
			d.CoverableTags++
		}
		if covering >= 2 {
			d.MultiCoveredTags++
		}
	}
	if d.Tags > 0 {
		d.CoverableFraction = float64(d.CoverableTags) / float64(d.Tags)
	}
	total := 0
	for i := 0; i < d.Readers; i++ {
		n := len(sys.TagsOf(i))
		total += n
		if n > d.MaxTagsPerReader {
			d.MaxTagsPerReader = n
		}
	}
	if d.Readers > 0 {
		d.MeanTagsPerReader = float64(total) / float64(d.Readers)
	}
	for i := 0; i < d.Readers; i++ {
		ri := sys.Reader(i)
		for j := i + 1; j < d.Readers; j++ {
			rj := sys.Reader(j)
			independent := sys.Independent(i, j)
			if !independent {
				d.InterferenceEdges++
			}
			if ri.InterrogationDisk().Intersects(rj.InterrogationDisk()) {
				d.OverlapPairs++
				if independent {
					d.DangerousOverlapPairs++
				}
			}
		}
	}
	if d.Readers > 1 {
		d.InterferenceDensity = float64(d.InterferenceEdges) / float64(d.Readers*(d.Readers-1)/2)
	}
	return d
}

// Write renders the diagnostics as a human-readable block.
func (d Diagnostics) Write(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"readers:             %d\n"+
			"tags:                %d (%.0f%% coverable)\n"+
			"tags per reader:     mean %.1f, max %d\n"+
			"interference edges:  %d (density %.1f%%)\n"+
			"interrogation overlaps: %d pairs (%d schedulable together: RRc risk)\n"+
			"multi-covered tags:  %d\n",
		d.Readers,
		d.Tags, 100*d.CoverableFraction,
		d.MeanTagsPerReader, d.MaxTagsPerReader,
		d.InterferenceEdges, 100*d.InterferenceDensity,
		d.OverlapPairs, d.DangerousOverlapPairs,
		d.MultiCoveredTags,
	)
	return err
}
