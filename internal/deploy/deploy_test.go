package deploy

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"rfidsched/internal/randx"
)

func TestPaperConfig(t *testing.T) {
	cfg := Paper(1, 12, 5)
	if cfg.NumReaders != 50 || cfg.NumTags != 1200 || cfg.Side != 100 {
		t.Errorf("paper config wrong: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("paper config invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Config{
		{NumReaders: 0, NumTags: 1, Side: 1, LambdaR: 1, LambdaSmallR: 1},
		{NumReaders: 1, NumTags: -1, Side: 1, LambdaR: 1, LambdaSmallR: 1},
		{NumReaders: 1, NumTags: 1, Side: 0, LambdaR: 1, LambdaSmallR: 1},
		{NumReaders: 1, NumTags: 1, Side: 1, LambdaR: 0, LambdaSmallR: 1},
		{NumReaders: 1, NumTags: 1, Side: 1, LambdaR: 1, LambdaSmallR: -2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: Generate accepted bad config", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Paper(42, 12, 5)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.NumReaders(); i++ {
		if a.Reader(i) != b.Reader(i) {
			t.Fatalf("reader %d differs between same-seed runs", i)
		}
	}
	for i := 0; i < a.NumTags(); i++ {
		if a.Tag(i) != b.Tag(i) {
			t.Fatalf("tag %d differs between same-seed runs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(Paper(1, 12, 5))
	b, _ := Generate(Paper(2, 12, 5))
	same := 0
	for i := 0; i < a.NumReaders(); i++ {
		if a.Reader(i).Pos == b.Reader(i).Pos {
			same++
		}
	}
	if same == a.NumReaders() {
		t.Error("different seeds gave identical reader layout")
	}
}

func TestRadiiInvariant(t *testing.T) {
	for _, layout := range []Layout{Uniform, Clustered, Aisles, Hotspot, GridReaders} {
		cfg := Paper(7, 10, 6)
		cfg.Layout = layout
		sys, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		for i := 0; i < sys.NumReaders(); i++ {
			r := sys.Reader(i)
			if r.InterrogationR <= 0 || r.InterferenceR < r.InterrogationR {
				t.Fatalf("%v: reader %d violates radius invariant: %+v", layout, i, r)
			}
		}
	}
}

func TestPositionsInsideRegion(t *testing.T) {
	for _, layout := range []Layout{Uniform, Clustered, Aisles, Hotspot, GridReaders} {
		cfg := Paper(9, 10, 5)
		cfg.Layout = layout
		sys, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		for i := 0; i < sys.NumReaders(); i++ {
			p := sys.Reader(i).Pos
			if p.X < 0 || p.X > cfg.Side || p.Y < 0 || p.Y > cfg.Side {
				t.Fatalf("%v: reader %d outside region: %v", layout, i, p)
			}
		}
		for i := 0; i < sys.NumTags(); i++ {
			p := sys.Tag(i).Pos
			if p.X < 0 || p.X > cfg.Side || p.Y < 0 || p.Y > cfg.Side {
				t.Fatalf("%v: tag %d outside region: %v", layout, i, p)
			}
		}
	}
}

func TestDrawRadiiDistribution(t *testing.T) {
	rng := randx.New(5)
	const n = 50000
	var sumR, sumr float64
	for i := 0; i < n; i++ {
		R, r := DrawRadii(rng, 12, 5)
		if r > R || r < 1 {
			t.Fatalf("invalid radii R=%v r=%v", R, r)
		}
		sumR += R
		sumr += r
	}
	// Swapping inflates R's mean slightly and deflates r's; both stay near
	// their Poisson means at this separation of lambdas.
	meanR, meanr := sumR/n, sumr/n
	if math.Abs(meanR-12) > 0.5 {
		t.Errorf("mean R = %v, want ~12", meanR)
	}
	if math.Abs(meanr-5) > 0.5 {
		t.Errorf("mean r = %v, want ~5", meanr)
	}
}

func TestHotspotConcentration(t *testing.T) {
	cfg := Paper(11, 10, 5)
	cfg.Layout = Hotspot
	cfg.HotspotFrac = 0.7
	cfg.HotspotRadius = 10
	sys, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inside := 0
	for i := 0; i < sys.NumTags(); i++ {
		p := sys.Tag(i).Pos
		dx, dy := p.X-50, p.Y-50
		if dx*dx+dy*dy <= 100.001 {
			inside++
		}
	}
	frac := float64(inside) / float64(sys.NumTags())
	// The hotspot disk is ~3% of the area; uniform would put ~3% there.
	if frac < 0.5 {
		t.Errorf("hotspot fraction = %v, want >= 0.5", frac)
	}
}

func TestClusteredSpread(t *testing.T) {
	cfg := Paper(13, 10, 5)
	cfg.Layout = Clustered
	cfg.Clusters = 3
	cfg.ClusterSpread = 2
	sys, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumTags() != cfg.NumTags {
		t.Errorf("tags = %d", sys.NumTags())
	}
}

func TestGridReadersCount(t *testing.T) {
	cfg := Paper(15, 10, 5)
	cfg.Layout = GridReaders
	cfg.NumReaders = 7 // not a perfect square
	sys, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumReaders() != 7 {
		t.Errorf("readers = %d", sys.NumReaders())
	}
}

func TestLayoutString(t *testing.T) {
	for _, l := range []Layout{Uniform, Clustered, Aisles, Hotspot, GridReaders, Layout(99)} {
		if l.String() == "" {
			t.Errorf("empty string for layout %d", int(l))
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	sys, err := Generate(Paper(21, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	d := ToDeployment(sys)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := d2.ToSystem()
	if err != nil {
		t.Fatal(err)
	}
	if sys2.NumReaders() != sys.NumReaders() || sys2.NumTags() != sys.NumTags() {
		t.Fatal("round trip changed sizes")
	}
	for i := 0; i < sys.NumReaders(); i++ {
		if sys.Reader(i) != sys2.Reader(i) {
			t.Fatalf("reader %d changed in round trip", i)
		}
	}
	// Weights must agree — coverage lists rebuilt identically.
	X := []int{0, 5, 10}
	if sys.Weight(X) != sys2.Weight(X) {
		t.Error("round-tripped system computes different weight")
	}
}

func TestJSONFileRoundTrip(t *testing.T) {
	sys, err := Generate(Paper(23, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dep.json")
	if err := ToDeployment(sys).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	d, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Readers) != 50 || len(d.Tags) != 1200 {
		t.Errorf("loaded %d readers %d tags", len(d.Readers), len(d.Tags))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("{nope")); err == nil {
		t.Error("garbage JSON accepted")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/path/x.json"); err == nil {
		t.Error("missing file accepted")
	}
}
