package deploy

import (
	"math"

	"rfidsched/internal/geom"
	"rfidsched/internal/randx"
)

// Scenario layouts beyond the paper's uniform setting, used by the examples
// (warehouse, supermarket hotspot) and by robustness tests: the algorithms'
// relative ranking should be layout-invariant even though absolute numbers
// move.

func clusteredTagPositions(cfg Config, rng *randx.RNG) []geom.Point {
	clusters := cfg.Clusters
	if clusters <= 0 {
		clusters = 6
	}
	spread := cfg.ClusterSpread
	if spread <= 0 {
		spread = cfg.Side / 20
	}
	centers := uniformPoints(clusters, cfg.Side, rng)
	pts := make([]geom.Point, cfg.NumTags)
	for i := range pts {
		c := centers[rng.Intn(clusters)]
		pts[i] = geom.Pt(
			clamp(c.X+rng.NormalMS(0, spread), 0, cfg.Side),
			clamp(c.Y+rng.NormalMS(0, spread), 0, cfg.Side),
		)
	}
	return pts
}

func hotspotTagPositions(cfg Config, rng *randx.RNG) []geom.Point {
	frac := cfg.HotspotFrac
	if frac <= 0 || frac > 1 {
		frac = 0.6
	}
	radius := cfg.HotspotRadius
	if radius <= 0 {
		radius = cfg.Side / 8
	}
	center := geom.Pt(cfg.Side/2, cfg.Side/2)
	pts := make([]geom.Point, cfg.NumTags)
	for i := range pts {
		if rng.Bool(frac) {
			// Uniform in the hotspot disk via sqrt radius transform.
			ang := rng.Float64() * 2 * math.Pi
			rr := radius * math.Sqrt(rng.Float64())
			pts[i] = geom.Pt(
				clamp(center.X+rr*math.Cos(ang), 0, cfg.Side),
				clamp(center.Y+rr*math.Sin(ang), 0, cfg.Side),
			)
		} else {
			pts[i] = geom.Pt(rng.Float64()*cfg.Side, rng.Float64()*cfg.Side)
		}
	}
	return pts
}

func aisleReaderPositions(cfg Config, rng *randx.RNG) []geom.Point {
	aisles := cfg.NumAisles
	if aisles <= 0 {
		aisles = 5
	}
	pts := make([]geom.Point, cfg.NumReaders)
	for i := range pts {
		aisle := i % aisles
		x := (float64(aisle) + 0.5) * cfg.Side / float64(aisles)
		// Readers spread evenly along the aisle with small jitter.
		perAisle := (cfg.NumReaders + aisles - 1) / aisles
		slot := i / aisles
		y := (float64(slot) + 0.5) * cfg.Side / float64(perAisle)
		pts[i] = geom.Pt(
			clamp(x+rng.NormalMS(0, cfg.Side/200), 0, cfg.Side),
			clamp(y+rng.NormalMS(0, cfg.Side/200), 0, cfg.Side),
		)
	}
	return pts
}

func aisleTagPositions(cfg Config, rng *randx.RNG) []geom.Point {
	aisles := cfg.NumAisles
	if aisles <= 0 {
		aisles = 5
	}
	shelfOffset := cfg.Side / float64(aisles) / 4
	pts := make([]geom.Point, cfg.NumTags)
	for i := range pts {
		aisle := rng.Intn(aisles)
		x := (float64(aisle) + 0.5) * cfg.Side / float64(aisles)
		side := 1.0
		if rng.Bool(0.5) {
			side = -1.0
		}
		pts[i] = geom.Pt(
			clamp(x+side*shelfOffset+rng.NormalMS(0, shelfOffset/4), 0, cfg.Side),
			rng.Float64()*cfg.Side,
		)
	}
	return pts
}

func gridReaderPositions(cfg Config) []geom.Point {
	n := cfg.NumReaders
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	rows := (n + cols - 1) / cols
	pts := make([]geom.Point, 0, n)
	for r := 0; r < rows && len(pts) < n; r++ {
		for c := 0; c < cols && len(pts) < n; c++ {
			pts = append(pts, geom.Pt(
				(float64(c)+0.5)*cfg.Side/float64(cols),
				(float64(r)+0.5)*cfg.Side/float64(rows),
			))
		}
	}
	return pts
}
