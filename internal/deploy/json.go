package deploy

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"rfidsched/internal/geom"
	"rfidsched/internal/model"
)

// Deployment is the serializable form of a generated system, used by the
// rfidgen/rfidsched command pair so a deployment can be generated once and
// scheduled many times (or edited by hand).
type Deployment struct {
	Comment string         `json:"comment,omitempty"`
	Side    float64        `json:"side,omitempty"`
	Readers []ReaderRecord `json:"readers"`
	Tags    []TagRecord    `json:"tags"`
}

// ReaderRecord is the JSON form of one reader.
type ReaderRecord struct {
	X              float64 `json:"x"`
	Y              float64 `json:"y"`
	InterferenceR  float64 `json:"interferenceRadius"`
	InterrogationR float64 `json:"interrogationRadius"`
}

// TagRecord is the JSON form of one tag.
type TagRecord struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// ToDeployment converts a system to its serializable form.
func ToDeployment(sys *model.System) *Deployment {
	d := &Deployment{
		Readers: make([]ReaderRecord, sys.NumReaders()),
		Tags:    make([]TagRecord, sys.NumTags()),
	}
	for i := 0; i < sys.NumReaders(); i++ {
		r := sys.Reader(i)
		d.Readers[i] = ReaderRecord{
			X: r.Pos.X, Y: r.Pos.Y,
			InterferenceR:  r.InterferenceR,
			InterrogationR: r.InterrogationR,
		}
	}
	for t := 0; t < sys.NumTags(); t++ {
		p := sys.Tag(t).Pos
		d.Tags[t] = TagRecord{X: p.X, Y: p.Y}
	}
	return d
}

// ToSystem converts a deployment back into a live system.
func (d *Deployment) ToSystem() (*model.System, error) {
	readers := make([]model.Reader, len(d.Readers))
	for i, r := range d.Readers {
		readers[i] = model.Reader{
			Pos:            geom.Pt(r.X, r.Y),
			InterferenceR:  r.InterferenceR,
			InterrogationR: r.InterrogationR,
		}
	}
	tags := make([]model.Tag, len(d.Tags))
	for i, t := range d.Tags {
		tags[i] = model.Tag{Pos: geom.Pt(t.X, t.Y)}
	}
	return model.NewSystem(readers, tags)
}

// Write encodes the deployment as indented JSON.
func (d *Deployment) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Read decodes a deployment from JSON.
func Read(r io.Reader) (*Deployment, error) {
	var d Deployment
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("deploy: decode: %w", err)
	}
	return &d, nil
}

// SaveFile writes the deployment to a file.
func (d *Deployment) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a deployment from a file.
func LoadFile(path string) (*Deployment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
