// Package deploy generates the randomized deployments used in the paper's
// evaluation (Section VI) and the richer scenario layouts used by the
// examples. The paper's setting: 50 readers and 1200 tags uniformly
// distributed in a 100x100 square; each reader's interference radius is
// drawn from Poisson(lambdaR) and its interrogation radius from
// Poisson(lambdar), with assignments adjusted so that R_i >= r_i always
// holds ("We may need to modify some assignments to ensure Ri >= ri").
package deploy

import (
	"fmt"

	"rfidsched/internal/geom"
	"rfidsched/internal/model"
	"rfidsched/internal/randx"
)

// Layout selects how reader and tag positions are drawn.
type Layout int

const (
	// Uniform scatters readers and tags uniformly in the square — the
	// paper's evaluation setting.
	Uniform Layout = iota
	// Clustered groups tags into Gaussian clusters (pallets, checkout
	// lanes); readers remain uniform.
	Clustered
	// Aisles arranges readers along equally spaced vertical aisles and tags
	// along shelf lines beside them — a warehouse scenario.
	Aisles
	// Hotspot puts a configurable fraction of tags into a dense central
	// hotspot and the rest uniform.
	Hotspot
	// GridReaders places readers on a regular grid with uniform tags,
	// useful for planned deployments and worst-case RRc overlap studies.
	GridReaders
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	switch l {
	case Uniform:
		return "uniform"
	case Clustered:
		return "clustered"
	case Aisles:
		return "aisles"
	case Hotspot:
		return "hotspot"
	case GridReaders:
		return "grid"
	default:
		return fmt.Sprintf("layout(%d)", int(l))
	}
}

// Config parameterizes Generate. The zero value is not useful; start from
// Paper() and override.
type Config struct {
	Seed       uint64
	NumReaders int
	NumTags    int
	Side       float64 // side length of the square deployment region

	// LambdaR and LambdaSmallR are the Poisson means for the interference
	// and interrogation radii (the paper's lambda_R and lambda_r).
	LambdaR      float64
	LambdaSmallR float64

	Layout Layout

	// Clustered layout parameters.
	Clusters      int     // number of tag clusters (default 6)
	ClusterSpread float64 // std-dev of each cluster (default Side/20)

	// Hotspot layout parameters.
	HotspotFrac   float64 // fraction of tags in the hotspot (default 0.6)
	HotspotRadius float64 // hotspot radius (default Side/8)

	// Aisles layout parameters.
	NumAisles int // default 5
}

// Paper returns the evaluation configuration of Section VI with the given
// Poisson means. The paper fixes 50 readers, 1200 tags, side 100.
func Paper(seed uint64, lambdaR, lambdaSmallR float64) Config {
	return Config{
		Seed:         seed,
		NumReaders:   50,
		NumTags:      1200,
		Side:         100,
		LambdaR:      lambdaR,
		LambdaSmallR: lambdaSmallR,
		Layout:       Uniform,
	}
}

// Validate reports configuration errors before any generation work.
func (c Config) Validate() error {
	if c.NumReaders <= 0 {
		return fmt.Errorf("deploy: NumReaders = %d, need > 0", c.NumReaders)
	}
	if c.NumTags < 0 {
		return fmt.Errorf("deploy: NumTags = %d, need >= 0", c.NumTags)
	}
	if c.Side <= 0 {
		return fmt.Errorf("deploy: Side = %v, need > 0", c.Side)
	}
	if c.LambdaR <= 0 || c.LambdaSmallR <= 0 {
		return fmt.Errorf("deploy: Poisson means must be positive (lambdaR=%v lambdar=%v)",
			c.LambdaR, c.LambdaSmallR)
	}
	return nil
}

// Generate draws a deployment and assembles the model.System.
func Generate(cfg Config) (*model.System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := randx.New(cfg.Seed)

	readerPos := readerPositions(cfg, rng)
	tagPos := tagPositions(cfg, rng)

	readers := make([]model.Reader, cfg.NumReaders)
	for i := range readers {
		R, r := DrawRadii(rng, cfg.LambdaR, cfg.LambdaSmallR)
		readers[i] = model.Reader{Pos: readerPos[i], InterferenceR: R, InterrogationR: r}
	}
	tags := make([]model.Tag, len(tagPos))
	for i := range tags {
		tags[i] = model.Tag{Pos: tagPos[i]}
	}
	return model.NewSystem(readers, tags)
}

// DrawRadii draws one (interference, interrogation) radius pair following
// the paper's rule: both Poisson, adjusted so that R >= r >= 1. If the draw
// comes out inverted the two values are swapped — the least intrusive
// "modification" that preserves both marginal distributions' support.
func DrawRadii(rng *randx.RNG, lambdaR, lambdaSmallR float64) (R, r float64) {
	Ri := rng.PoissonPositive(lambdaR)
	ri := rng.PoissonPositive(lambdaSmallR)
	if ri > Ri {
		Ri, ri = ri, Ri
	}
	return float64(Ri), float64(ri)
}

func readerPositions(cfg Config, rng *randx.RNG) []geom.Point {
	switch cfg.Layout {
	case Aisles:
		return aisleReaderPositions(cfg, rng)
	case GridReaders:
		return gridReaderPositions(cfg)
	default:
		return uniformPoints(cfg.NumReaders, cfg.Side, rng)
	}
}

func tagPositions(cfg Config, rng *randx.RNG) []geom.Point {
	switch cfg.Layout {
	case Clustered:
		return clusteredTagPositions(cfg, rng)
	case Aisles:
		return aisleTagPositions(cfg, rng)
	case Hotspot:
		return hotspotTagPositions(cfg, rng)
	default:
		return uniformPoints(cfg.NumTags, cfg.Side, rng)
	}
}

func uniformPoints(n int, side float64, rng *randx.RNG) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
	}
	return pts
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
