package deploy

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"rfidsched/internal/geom"
	"rfidsched/internal/model"
)

func TestDiagnoseHandBuilt(t *testing.T) {
	// Two independent readers with an interrogation overlap (dangerous
	// pair), one tag in the overlap, one tag exclusive, one uncovered.
	readers := []model.Reader{
		{Pos: geom.Pt(0, 0), InterferenceR: 8, InterrogationR: 6},
		{Pos: geom.Pt(10, 0), InterferenceR: 8, InterrogationR: 6},
	}
	tags := []model.Tag{
		{Pos: geom.Pt(5, 0)},  // overlap -> multi covered
		{Pos: geom.Pt(-3, 0)}, // reader 0 only
		{Pos: geom.Pt(50, 50)},
	}
	sys, err := model.NewSystem(readers, tags)
	if err != nil {
		t.Fatal(err)
	}
	d := Diagnose(sys)
	if d.Readers != 2 || d.Tags != 3 {
		t.Errorf("shape: %+v", d)
	}
	if d.CoverableTags != 2 {
		t.Errorf("coverable = %d", d.CoverableTags)
	}
	if math.Abs(d.CoverableFraction-2.0/3) > 1e-12 {
		t.Errorf("fraction = %v", d.CoverableFraction)
	}
	if d.InterferenceEdges != 0 {
		t.Errorf("edges = %d (readers are independent: dist 10 > 8)", d.InterferenceEdges)
	}
	if d.OverlapPairs != 1 || d.DangerousOverlapPairs != 1 {
		t.Errorf("overlaps: %+v", d)
	}
	if d.MultiCoveredTags != 1 {
		t.Errorf("multi = %d", d.MultiCoveredTags)
	}
	if d.MaxTagsPerReader != 2 { // reader 0 covers tags 0 and 1
		t.Errorf("max per reader = %d", d.MaxTagsPerReader)
	}
	if math.Abs(d.MeanTagsPerReader-1.5) > 1e-12 {
		t.Errorf("mean per reader = %v", d.MeanTagsPerReader)
	}
}

func TestDiagnoseInterferingPair(t *testing.T) {
	readers := []model.Reader{
		{Pos: geom.Pt(0, 0), InterferenceR: 20, InterrogationR: 2},
		{Pos: geom.Pt(10, 0), InterferenceR: 20, InterrogationR: 2},
	}
	sys, err := model.NewSystem(readers, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := Diagnose(sys)
	if d.InterferenceEdges != 1 || d.InterferenceDensity != 1 {
		t.Errorf("%+v", d)
	}
	if d.OverlapPairs != 0 || d.DangerousOverlapPairs != 0 {
		t.Errorf("phantom overlap: %+v", d)
	}
}

func TestDiagnosePaperScale(t *testing.T) {
	sys, err := Generate(Paper(17, 12, 5))
	if err != nil {
		t.Fatal(err)
	}
	d := Diagnose(sys)
	if d.CoverableFraction < 0.2 || d.CoverableFraction > 0.8 {
		t.Errorf("implausible coverable fraction %v at lambda_r=5", d.CoverableFraction)
	}
	if d.InterferenceEdges == 0 {
		t.Error("no interference at lambda_R=12 is implausible")
	}
	if d.DangerousOverlapPairs > d.OverlapPairs {
		t.Error("dangerous subset exceeds total")
	}
}

func TestDiagnosticsWrite(t *testing.T) {
	sys, err := Generate(Paper(19, 12, 5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Diagnose(sys).Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"readers:", "tags:", "interference edges:", "RRc risk"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestDiagnoseEmpty(t *testing.T) {
	sys, err := model.NewSystem([]model.Reader{
		{Pos: geom.Pt(0, 0), InterferenceR: 1, InterrogationR: 1},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := Diagnose(sys)
	if d.Tags != 0 || d.CoverableFraction != 0 || d.InterferenceDensity != 0 {
		t.Errorf("%+v", d)
	}
}
