// Package parsearch is the deterministic multi-core search kernel shared by
// the repository's three hot solvers: the branch-and-bound MWFS search
// (package mwfs), the PTAS shifted-grid DP (core.PTAS) and the exact MCS
// state-space search (core.ExactMCS).
//
// It provides exactly the three primitives a deterministic parallel
// branch-and-bound needs and nothing else:
//
//   - ForEach, a fixed-size worker pool over an indexed task list. Tasks are
//     claimed by atomic counter, so scheduling is work-stealing-free and
//     allocation-free; determinism comes from the CALLER merging per-task
//     results by task index, never by completion order.
//   - Incumbent, the shared best-weight bound. It is a monotone atomic
//     maximum: stale reads are always a LOWER bound on the true incumbent,
//     so a worker pruning against a stale value only prunes less than it
//     could — correctness is never at stake, only wasted nodes.
//   - Budget, the global node allowance. Workers reserve nodes in chunks so
//     the hot search loop never contends on the shared counter; exhaustion
//     is a single monotone transition every worker observes, which is what
//     makes a truncated parallel result carry the same Exact=false meaning
//     as a truncated sequential one.
//
// The package is stdlib-only and deliberately knows nothing about systems,
// weights or schedules; the solvers own their determinism arguments (see
// DESIGN.md §11) and use these primitives to implement them.
package parsearch

import (
	"sync"
	"sync/atomic"

	"rfidsched/internal/obs"
)

// Normalize maps a user-facing Workers knob to an effective worker count:
// values below 2 mean "sequential" (0), everything else is taken as-is. The
// solvers treat 0/1 identically — the sequential reference path — because a
// pool of one worker can only reproduce the sequential scan anyway, minus
// the clone setup cost.
func Normalize(workers int) int {
	if workers < 2 {
		return 0
	}
	return workers
}

// ForEach runs fn(worker, task) for every task in [0, tasks), distributing
// tasks over the given number of pool workers. Workers claim tasks through a
// shared atomic counter, so each task runs exactly once, on exactly one
// worker; the worker index lets callers give each goroutine private scratch
// state (a System clone, a WeightEval) allocated up front.
//
// With workers < 2 the tasks run inline on the calling goroutine (worker 0)
// in ascending order — the sequential reference the determinism tests pin
// the pool against. Completion ORDER is never meaningful: callers must
// collect results into per-task slots and merge by task index.
func ForEach(workers, tasks int, fn func(worker, task int)) {
	if tasks <= 0 {
		return
	}
	if workers < 2 || tasks == 1 {
		for t := 0; t < tasks; t++ {
			fn(0, t)
		}
		recordTasks(tasks)
		return
	}
	if workers > tasks {
		workers = tasks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= tasks {
					return
				}
				fn(worker, t)
			}
		}(w)
	}
	wg.Wait()
	recordTasks(tasks)
}

// Incumbent is the shared best-weight bound of a parallel branch-and-bound:
// a monotone atomic maximum. Reads may be arbitrarily stale; staleness only
// weakens pruning (a stale value is a valid lower bound on the final best),
// never correctness. Solvers preserving a sequential tie-break must prune
// strictly BELOW the incumbent (ub < Get()), because a tie found in an
// earlier subtree of the deterministic merge order must stay discoverable
// in every later subtree.
type Incumbent struct {
	v atomic.Int64
}

// NewIncumbent returns an incumbent holding the given initial bound.
func NewIncumbent(initial int) *Incumbent {
	in := &Incumbent{}
	in.v.Store(int64(initial))
	return in
}

// Get returns the current bound (possibly stale by the time it is used —
// that is fine, see the type comment).
func (in *Incumbent) Get() int { return int(in.v.Load()) }

// Propose raises the bound to w if w is larger; lower proposals are no-ops.
func (in *Incumbent) Propose(w int) {
	nw := int64(w)
	for {
		cur := in.v.Load()
		if cur >= nw || in.v.CompareAndSwap(cur, nw) {
			return
		}
	}
}

// BudgetChunk is how many nodes a worker reserves from the shared Budget at
// a time. Chunking keeps the per-node cost of budget accounting at one
// local decrement; the price is that a truncated parallel search may expand
// up to workers×BudgetChunk nodes past the cap, versus exactly one for the
// sequential path. Exact=false means the same thing either way: the global
// allowance ran out before the tree did.
const BudgetChunk = 256

// Budget is a shared node allowance for a truncation-capped search. The
// caller-facing contract is monotone: once exhausted, every subsequent
// Reserve returns 0, on every worker. An attached Deadline (WithDeadline)
// piggybacks cooperative cancellation on the same chunked cadence: Reserve
// polls it once per call, so a deadline costs the search one check per
// BudgetChunk nodes, never one per node.
type Budget struct {
	max  int64
	used atomic.Int64
	dl   *Deadline
}

// NewBudget returns a budget of max nodes. max <= 0 is an unlimited budget.
func NewBudget(max int) *Budget {
	return &Budget{max: int64(max)}
}

// WithDeadline attaches a cooperative deadline to the budget and returns
// the budget for chaining. A nil deadline is a no-op. Once the deadline
// expires, every subsequent Reserve returns 0 on every worker — the same
// monotone transition as node exhaustion, so solver truncation handling
// covers both causes with one code path; TimedOut distinguishes them.
func (b *Budget) WithDeadline(dl *Deadline) *Budget {
	b.dl = dl
	return b
}

// Reserve grants up to n nodes from the allowance and returns how many were
// granted (0 when the budget is exhausted or the attached deadline has
// expired). Grants are charged immediately; callers keep unused grant
// remainders charged — the slack is bounded by one chunk per worker and
// only matters in already-truncated searches.
func (b *Budget) Reserve(n int) int {
	if b.dl.Poll() {
		return 0
	}
	if b.max <= 0 {
		return n
	}
	after := b.used.Add(int64(n))
	over := after - b.max
	if over <= 0 {
		return n
	}
	granted := int64(n) - over
	if granted < 0 {
		granted = 0
	}
	return int(granted)
}

// Exhausted reports whether the allowance has run out (node cap hit or
// deadline expired).
func (b *Budget) Exhausted() bool {
	return (b.max > 0 && b.used.Load() >= b.max) || b.dl.Expired()
}

// TimedOut reports whether the attached deadline (if any) has expired —
// how callers split "anytime: out of time" from "truncated: out of nodes".
func (b *Budget) TimedOut() bool { return b.dl.Expired() }

// Metrics are the optional observability hooks (see internal/obs): a
// counter of pool tasks dispatched and a histogram of per-subtree node
// counts, so trace reports can show where parallel search time goes. The
// registry pointer is atomic so EnableMetrics is safe to call while pools
// run; a nil registry (the default) keeps the hot path at one atomic load.
var metricsReg atomic.Pointer[obs.Registry]

// EnableMetrics routes pool telemetry into reg ("parsearch.pool.tasks"
// counter, "parsearch.subtree_nodes" histogram). Pass nil to disable.
func EnableMetrics(reg *obs.Registry) {
	metricsReg.Store(reg)
}

func recordTasks(n int) {
	if reg := metricsReg.Load(); reg != nil {
		reg.Counter("parsearch.pool.tasks").Add(int64(n))
	}
}

// RecordSubtreeNodes feeds one solved subtree's expanded-node count into the
// metrics histogram; no-op while metrics are disabled.
func RecordSubtreeNodes(nodes int) {
	if reg := metricsReg.Load(); reg != nil {
		reg.Histogram("parsearch.subtree_nodes").Observe(float64(nodes))
	}
}
