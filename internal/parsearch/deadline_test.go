package parsearch

import (
	"context"
	"testing"
	"time"
)

func TestNilDeadlineNeverExpires(t *testing.T) {
	var d *Deadline
	for i := 0; i < 3; i++ {
		if d.Poll() || d.Expired() {
			t.Fatal("nil deadline expired")
		}
	}
}

func TestPollBudgetExpiresExactlyOnSchedule(t *testing.T) {
	d := PollBudget(3)
	for i := 0; i < 3; i++ {
		if d.Poll() {
			t.Fatalf("poll %d expired early", i)
		}
	}
	if !d.Poll() {
		t.Fatal("poll 4 of a 3-poll budget did not expire")
	}
	// Sticky from here on, including through Expired.
	if !d.Expired() || !d.Poll() {
		t.Fatal("expiry not sticky")
	}
}

func TestPollBudgetNonPositiveAlreadyExpired(t *testing.T) {
	for _, n := range []int{0, -5} {
		d := PollBudget(n)
		if !d.Expired() {
			t.Errorf("PollBudget(%d) not expired at birth", n)
		}
	}
}

func TestExpiredDoesNotConsumePollBudget(t *testing.T) {
	d := PollBudget(1)
	for i := 0; i < 10; i++ {
		if d.Expired() {
			t.Fatal("Expired consumed the poll allowance")
		}
	}
	if d.Poll() {
		t.Fatal("first poll expired")
	}
	if !d.Poll() {
		t.Fatal("second poll of a 1-poll budget did not expire")
	}
}

func TestContextDeadline(t *testing.T) {
	if FromContext(nil) != nil {
		t.Error("nil context should yield a nil (never-expiring) deadline")
	}
	ctx, cancel := context.WithCancel(context.Background())
	d := FromContext(ctx)
	if d.Expired() || d.Poll() {
		t.Fatal("live context reported expiry")
	}
	cancel()
	if !d.Expired() {
		t.Fatal("canceled context not expired")
	}
	if !d.Poll() {
		t.Fatal("Poll disagrees with Expired after cancel")
	}
}

func TestWallClockDeadline(t *testing.T) {
	base := time.Unix(1000, 0)
	now := base
	d := At(base.Add(50 * time.Millisecond))
	d.SetNow(func() time.Time { return now })
	if d.Expired() {
		t.Fatal("expired before the wall instant")
	}
	now = base.Add(50 * time.Millisecond)
	if !d.Expired() {
		t.Fatal("not expired at the wall instant")
	}
	// Sticky: rolling the clock back does not resurrect it.
	now = base
	if !d.Expired() {
		t.Fatal("wall expiry not sticky")
	}
}

func TestCombinedPollBudgetAndWall(t *testing.T) {
	// Whichever trips first wins; here the poll budget is the binding one.
	base := time.Unix(1000, 0)
	d := PollBudget(2).WithWall(base.Add(time.Hour))
	d.SetNow(func() time.Time { return base })
	if d.Poll() || d.Poll() {
		t.Fatal("expired before the poll budget ran out")
	}
	if !d.Poll() {
		t.Fatal("poll budget exhausted but not expired")
	}
}

func TestBudgetWithDeadlineStopsReserving(t *testing.T) {
	b := NewBudget(1 << 30).WithDeadline(PollBudget(2))
	if b.Reserve(BudgetChunk) == 0 {
		t.Fatal("first reserve refused")
	}
	if b.Reserve(BudgetChunk) == 0 {
		t.Fatal("second reserve refused")
	}
	if b.Reserve(BudgetChunk) != 0 {
		t.Fatal("reserve granted past the deadline")
	}
	if !b.Exhausted() || !b.TimedOut() {
		t.Fatal("deadline expiry not reflected in Exhausted/TimedOut")
	}
}
