package parsearch

import (
	"context"
	"sync/atomic"
	"time"
)

// Deadline is the cooperative cancellation token of the anytime solver
// contracts (DESIGN.md §12). Every solver in the stack — the MWFS branch
// and bound, the PTAS square DP, Algorithm 2's growth loop, the exact MCS
// BFS — periodically Polls the deadline at the same cadence it already
// reserves node budget (one poll per BudgetChunk of work, so the hot loops
// gain one predictable branch, not a syscall per node). When a poll reports
// expiry the solver stops expanding, keeps its best-so-far FEASIBLE
// incumbent, and reports the truncation through its result status; it never
// returns an error and never returns an infeasible set.
//
// A Deadline expires for any of three reasons, checked in this order:
//
//   - the deterministic poll budget ran out (PollBudget mode): expiry is a
//     pure function of how many polls happened, so sequential solvers are
//     bit-reproducible under truncation — the mode tests and CI use;
//   - the attached context was canceled (FromContext);
//   - the wall clock passed the deadline instant (After / At).
//
// Modes combine: a Deadline may carry both a poll budget and a wall clock,
// and whichever trips first wins. Expiry is sticky — once expired, always
// expired — which is the monotone transition every worker of a pool
// observes, exactly like Budget exhaustion.
//
// A nil *Deadline never expires; every method is nil-receiver safe, so call
// sites need no guard. A Deadline is safe for concurrent use; with pooled
// workers (Workers >= 2) the poll budget is consumed in scheduler order, so
// deterministic truncation is only guaranteed on the sequential path —
// parallel deadline truncation is anytime-correct but not bit-reproducible,
// the same caveat mwfs.Options.MaxNodes already carries.
type Deadline struct {
	wall  time.Time        // zero = no wall-clock deadline
	now   func() time.Time // test hook; nil = time.Now
	ctx   context.Context  // nil = no context
	polls atomic.Int64     // remaining poll allowance in deterministic mode
	det   bool             // poll budget active
	dead  atomic.Bool      // sticky expiry
}

// After returns a deadline expiring d from now. Non-positive d is already
// expired.
func After(d time.Duration) *Deadline { return At(time.Now().Add(d)) }

// At returns a deadline expiring at instant t.
func At(t time.Time) *Deadline { return &Deadline{wall: t} }

// FromContext returns a deadline that expires when ctx is canceled or its
// own deadline passes. A nil ctx yields a never-expiring Deadline (nil).
func FromContext(ctx context.Context) *Deadline {
	if ctx == nil {
		return nil
	}
	d := &Deadline{ctx: ctx}
	if t, ok := ctx.Deadline(); ok {
		d.wall = t
	}
	return d
}

// PollBudget returns a deterministic deadline that expires after n polls.
// Non-positive n is already expired. This is the node-count fallback mode:
// truncation depends only on the poll count, never on the clock, so tests
// and CI reproduce the same truncated result on any machine.
func PollBudget(n int) *Deadline {
	d := &Deadline{det: true}
	d.polls.Store(int64(n))
	if n <= 0 {
		d.dead.Store(true)
	}
	return d
}

// WithWall adds a wall-clock deadline to d (combining with an existing poll
// budget) and returns d for chaining.
func (d *Deadline) WithWall(t time.Time) *Deadline {
	d.wall = t
	return d
}

// SetNow overrides the clock (tests). Not safe to call concurrently with
// polling.
func (d *Deadline) SetNow(now func() time.Time) { d.now = now }

// Expired reports whether the deadline has passed without consuming poll
// budget: sticky expiry, context state, and the wall clock are checked; the
// deterministic allowance is only consumed by Poll. Safe on a nil receiver
// (never expired).
func (d *Deadline) Expired() bool {
	if d == nil {
		return false
	}
	if d.dead.Load() {
		return true
	}
	if d.ctx != nil && d.ctx.Err() != nil {
		d.dead.Store(true)
		return true
	}
	if !d.wall.IsZero() {
		now := time.Now
		if d.now != nil {
			now = d.now
		}
		if !now().Before(d.wall) {
			d.dead.Store(true)
			return true
		}
	}
	return false
}

// Poll consumes one unit of the deterministic allowance (when in poll-budget
// mode) and reports whether the deadline has expired. Solvers call it once
// per chunk of work; nil receivers report false at the cost of one branch.
func (d *Deadline) Poll() bool {
	if d == nil {
		return false
	}
	if d.det && !d.dead.Load() {
		if d.polls.Add(-1) < 0 {
			d.dead.Store(true)
			return true
		}
	}
	return d.Expired()
}
