package parsearch

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"rfidsched/internal/obs"
)

func TestNormalize(t *testing.T) {
	for in, want := range map[int]int{-3: 0, 0: 0, 1: 0, 2: 2, 8: 8} {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestForEachRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, runtime.NumCPU()} {
		for _, tasks := range []int{0, 1, 3, 64, 1000} {
			counts := make([]atomic.Int32, max(tasks, 1))
			ForEach(workers, tasks, func(worker, task int) {
				if worker < 0 || (workers >= 2 && worker >= workers) {
					t.Errorf("workers=%d: worker index %d out of range", workers, worker)
				}
				counts[task].Add(1)
			})
			for i := 0; i < tasks; i++ {
				if n := counts[i].Load(); n != 1 {
					t.Fatalf("workers=%d tasks=%d: task %d ran %d times", workers, tasks, i, n)
				}
			}
		}
	}
}

func TestForEachInlineOrder(t *testing.T) {
	// Below the parallel threshold, tasks must run ascending on worker 0 —
	// the sequential reference order the solvers' merges are pinned to.
	var got []int
	ForEach(1, 5, func(worker, task int) {
		if worker != 0 {
			t.Fatalf("inline run used worker %d", worker)
		}
		got = append(got, task)
	})
	for i, task := range got {
		if task != i {
			t.Fatalf("inline order %v, want ascending", got)
		}
	}
}

func TestIncumbentMonotoneMax(t *testing.T) {
	in := NewIncumbent(10)
	in.Propose(5)
	if got := in.Get(); got != 10 {
		t.Fatalf("lower proposal moved the bound to %d", got)
	}
	in.Propose(17)
	if got := in.Get(); got != 17 {
		t.Fatalf("bound = %d, want 17", got)
	}

	// Concurrent proposals: the final bound is the maximum proposed.
	in = NewIncumbent(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				in.Propose(g*1000 + i)
			}
		}(g)
	}
	wg.Wait()
	if got := in.Get(); got != 7999 {
		t.Fatalf("concurrent max = %d, want 7999", got)
	}
}

func TestBudgetReserve(t *testing.T) {
	b := NewBudget(10)
	if got := b.Reserve(4); got != 4 {
		t.Fatalf("first reserve granted %d, want 4", got)
	}
	if got := b.Reserve(4); got != 4 {
		t.Fatalf("second reserve granted %d, want 4", got)
	}
	if got := b.Reserve(4); got != 2 {
		t.Fatalf("partial reserve granted %d, want 2", got)
	}
	if !b.Exhausted() {
		t.Fatal("budget should be exhausted")
	}
	if got := b.Reserve(1); got != 0 {
		t.Fatalf("exhausted reserve granted %d, want 0", got)
	}

	unlimited := NewBudget(0)
	for i := 0; i < 100; i++ {
		if got := unlimited.Reserve(BudgetChunk); got != BudgetChunk {
			t.Fatalf("unlimited reserve granted %d", got)
		}
	}
	if unlimited.Exhausted() {
		t.Fatal("unlimited budget reported exhausted")
	}
}

func TestBudgetMonotoneUnderContention(t *testing.T) {
	// Total granted never exceeds max, and once any worker sees a zero
	// grant, every later reserve is zero too.
	const maxNodes = 100_000
	b := NewBudget(maxNodes)
	var granted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				got := b.Reserve(BudgetChunk)
				granted.Add(int64(got))
				if got == 0 {
					if again := b.Reserve(BudgetChunk); again != 0 {
						t.Errorf("reserve granted %d after a denial", again)
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	if total := granted.Load(); total != maxNodes {
		t.Fatalf("granted %d nodes total, want exactly %d", total, maxNodes)
	}
}

func TestMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	EnableMetrics(reg)
	defer EnableMetrics(nil)

	ForEach(2, 10, func(worker, task int) {})
	RecordSubtreeNodes(40)
	RecordSubtreeNodes(60)

	snap := reg.Snapshot()
	if got := snap.Counters["parsearch.pool.tasks"]; got != 10 {
		t.Errorf("pool.tasks = %d, want 10", got)
	}
	h := snap.Histograms["parsearch.subtree_nodes"]
	if h.N != 2 || h.Mean != 50 {
		t.Errorf("subtree_nodes N=%d Mean=%v, want 2/50", h.N, h.Mean)
	}

	// Disabled metrics must be a no-op, not a panic.
	EnableMetrics(nil)
	ForEach(2, 3, func(worker, task int) {})
	RecordSubtreeNodes(1)
	if got := reg.Snapshot().Counters["parsearch.pool.tasks"]; got != 10 {
		t.Errorf("disabled metrics still recorded: %d", got)
	}
}
