package slotsim

import (
	"testing"

	"rfidsched/internal/anticollision"
	"rfidsched/internal/baseline"
	"rfidsched/internal/core"
	"rfidsched/internal/deploy"
	"rfidsched/internal/geom"
	"rfidsched/internal/graph"
	"rfidsched/internal/model"
)

func paperSystem(t *testing.T, seed uint64) *model.System {
	t.Helper()
	sys, err := deploy.Generate(deploy.Paper(seed, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestIdealLinkReadsAllCoverable(t *testing.T) {
	sys := paperSystem(t, 1)
	coverable := sys.CoverableCount()
	g := graph.FromSystem(sys)
	res, err := Run(sys, core.NewGrowth(g, 1.25), Config{RecordTimeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete {
		t.Fatal("incomplete")
	}
	if res.TagsRead != coverable {
		t.Errorf("read %d of %d coverable", res.TagsRead, coverable)
	}
	// Ideal link layer: one micro slot per tag.
	if res.TotalMicroSlots != res.TagsRead {
		t.Errorf("ideal link micro slots %d != tags %d", res.TotalMicroSlots, res.TagsRead)
	}
	if len(res.Timeline) != res.MacroSlots {
		t.Errorf("timeline length %d != %d slots", len(res.Timeline), res.MacroSlots)
	}
	sum := 0
	for _, sl := range res.Timeline {
		sum += sl.TagsRead
	}
	if sum != res.TagsRead {
		t.Errorf("timeline reads %d != total %d", sum, res.TagsRead)
	}
	if res.Final == nil {
		t.Error("Final system not set")
	}
}

func TestLinkLayerCostsMoreThanIdeal(t *testing.T) {
	base := paperSystem(t, 3)
	g := graph.FromSystem(base)

	ideal, err := Run(base.Clone(), core.NewGrowth(g, 1.25), Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	aloha, err := Run(base.Clone(), core.NewGrowth(g, 1.25), Config{
		Seed: 5, Link: anticollision.VogtALOHA{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if aloha.TotalMicroSlots <= ideal.TotalMicroSlots {
		t.Errorf("ALOHA micro slots %d not above ideal %d", aloha.TotalMicroSlots, ideal.TotalMicroSlots)
	}
	if aloha.TagsRead != ideal.TagsRead {
		t.Errorf("link layer changed tags read: %d vs %d", aloha.TagsRead, ideal.TagsRead)
	}
}

func TestArrivalsAreReadToo(t *testing.T) {
	sys := paperSystem(t, 7)
	g := graph.FromSystem(sys)
	res, err := Run(sys, core.NewGrowth(g, 1.25), Config{
		Seed:        9,
		ArrivalRate: 20,
		MaxArrivals: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TagsInjected != 200 {
		t.Errorf("injected %d, want 200", res.TagsInjected)
	}
	if res.Incomplete {
		t.Fatal("incomplete with arrivals")
	}
	if res.Final.UnreadCoverableCount() != 0 {
		t.Error("coverable arrivals left unread")
	}
	// Every coverable tag — initial population and arrivals alike — must
	// end up read. (Only ~40% of uniform tags fall inside any
	// interrogation region at these radii, so compare against coverable.)
	if res.TagsRead != res.Final.CoverableCount() {
		t.Errorf("read %d, coverable %d", res.TagsRead, res.Final.CoverableCount())
	}
	if res.Final.NumTags() != 1400 {
		t.Errorf("final population %d, want 1400", res.Final.NumTags())
	}
}

func TestMaxSlotsCap(t *testing.T) {
	sys := paperSystem(t, 11)
	lazy := model.Func{SchedName: "lazy", F: func(*model.System) ([]int, error) { return nil, nil }}
	res, err := Run(sys, lazy, Config{MaxMacroSlots: 5})
	if err != nil {
		t.Fatal(err)
	}
	// The zero-progress guard turns every lazy slot into a singleton read,
	// so the run makes progress but may still hit the cap.
	if res.MacroSlots > 5 {
		t.Errorf("macro slots %d exceeded cap", res.MacroSlots)
	}
	if res.TagsRead == 0 {
		t.Error("guard did not force progress")
	}
}

func TestSchedulerErrorPropagates(t *testing.T) {
	sys := paperSystem(t, 13)
	bad := model.Func{SchedName: "bad", F: func(*model.System) ([]int, error) {
		return nil, errBoom
	}}
	if _, err := Run(sys, bad, Config{}); err == nil {
		t.Error("error swallowed")
	}
}

var errBoom = errString("boom")

type errString string

func (e errString) Error() string { return string(e) }

func TestCollisionTelemetry(t *testing.T) {
	sys := paperSystem(t, 15)
	res, err := Run(sys, baseline.GHC{}, Config{RecordTimeline: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, sl := range res.Timeline {
		if sl.RTcReaders < 0 || sl.RRcTags < 0 {
			t.Fatalf("negative collision stats: %+v", sl)
		}
	}
}

func TestPerReaderCounts(t *testing.T) {
	readers := []model.Reader{
		{Pos: geom.Pt(0, 0), InterferenceR: 8, InterrogationR: 6},
		{Pos: geom.Pt(20, 0), InterferenceR: 8, InterrogationR: 6},
	}
	tags := []model.Tag{
		{Pos: geom.Pt(0, 0)}, {Pos: geom.Pt(1, 0)}, {Pos: geom.Pt(20, 0)},
	}
	sys, err := model.NewSystem(readers, tags)
	if err != nil {
		t.Fatal(err)
	}
	X := []int{0, 1}
	covered := sys.Covered(X, nil)
	counts := perReaderCounts(sys, X, covered)
	if counts[0] != 2 || counts[1] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestColorwaveUnderSlotSim(t *testing.T) {
	sys := paperSystem(t, 17)
	g := graph.FromSystem(sys)
	res, err := Run(sys, baseline.NewColorwave(g, 19), Config{MaxMacroSlots: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete {
		t.Errorf("colorwave incomplete after %d slots", res.MacroSlots)
	}
}

func TestTimelineRecordsArrivals(t *testing.T) {
	sys := paperSystem(t, 21)
	g := graph.FromSystem(sys)
	res, err := Run(sys, core.NewGrowth(g, 1.25), Config{
		Seed: 23, ArrivalRate: 10, MaxArrivals: 50, RecordTimeline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sl := range res.Timeline {
		total += sl.Arrivals
	}
	if total != res.TagsInjected {
		t.Errorf("timeline arrivals %d != injected %d", total, res.TagsInjected)
	}
}

func TestRunDeterministic(t *testing.T) {
	mk := func() *Result {
		sys := paperSystem(t, 25)
		g := graph.FromSystem(sys)
		res, err := Run(sys, core.NewGrowth(g, 1.25), Config{
			Seed: 27, Link: anticollision.VogtALOHA{},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.MacroSlots != b.MacroSlots || a.TotalMicroSlots != b.TotalMicroSlots || a.TagsRead != b.TagsRead {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestMicroSlotsAtLeastTags(t *testing.T) {
	sys := paperSystem(t, 29)
	g := graph.FromSystem(sys)
	for _, link := range []anticollision.Protocol{
		anticollision.VogtALOHA{}, anticollision.TreeSplitting{}, anticollision.QProtocol{},
	} {
		res, err := Run(sys.Clone(), core.NewGrowth(g, 1.25), Config{Seed: 31, Link: link})
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalMicroSlots < res.TagsRead {
			t.Errorf("%s: %d micro slots for %d tags is impossible",
				link.Name(), res.TotalMicroSlots, res.TagsRead)
		}
	}
}

func TestSlotPollBudgetTruncatesButCompletes(t *testing.T) {
	sys := paperSystem(t, 9)
	coverable := sys.CoverableCount()
	g := graph.FromSystem(sys)

	run := func() *Result {
		res, err := Run(sys.Clone(), core.NewGrowth(g, 1.25), Config{SlotPollBudget: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	// The anytime contract at the slot-sim layer: a starved per-slot budget
	// costs macro slots, never coverage or termination.
	if res.Incomplete {
		t.Fatal("budget-starved slot sim did not finish")
	}
	if res.TagsRead != coverable {
		t.Errorf("read %d of %d coverable", res.TagsRead, coverable)
	}
	if res.AnytimeSlots == 0 {
		t.Error("no macro slot reported truncation under a one-poll budget")
	}
	// Deterministic in poll-budget mode.
	res2 := run()
	if res2.MacroSlots != res.MacroSlots || res2.AnytimeSlots != res.AnytimeSlots || res2.TagsRead != res.TagsRead {
		t.Errorf("budgeted slot sim not reproducible: %+v vs %+v", res2, res)
	}

	// Unbudgeted run: no truncations reported.
	free, err := Run(sys.Clone(), core.NewGrowth(g, 1.25), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if free.AnytimeSlots != 0 {
		t.Errorf("unbudgeted run reported %d anytime slots", free.AnytimeSlots)
	}
	if res.MacroSlots < free.MacroSlots {
		t.Errorf("budgeted sim (%d macro slots) shorter than unbudgeted (%d)", res.MacroSlots, free.MacroSlots)
	}
}

func TestSlotBudgetIgnoredBySchedulersWithoutTheKnob(t *testing.T) {
	// GHC implements neither SetDeadline nor Anytime: the budget must be a
	// no-op, not a crash.
	sys := paperSystem(t, 10)
	res, err := Run(sys.Clone(), baseline.GHC{}, Config{SlotPollBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.AnytimeSlots != 0 {
		t.Errorf("budget-blind scheduler reported %d anytime slots", res.AnytimeSlots)
	}
}
