package slotsim

import (
	"reflect"
	"testing"

	"rfidsched/internal/core"
	"rfidsched/internal/fault"
	"rfidsched/internal/graph"
)

func TestFaultyRunRepairsAndReportsDegraded(t *testing.T) {
	sys := paperSystem(t, 9)
	coverable := sys.CoverableCount()
	g := graph.FromSystem(sys)
	crashed := fault.SampleNodes(sys.NumReaders(), sys.NumReaders()/5, 13)
	res, err := Run(sys, core.NewGrowth(g, 1.25), Config{
		RecordTimeline: true,
		Faults:         &fault.Scenario{Seed: 13, Events: fault.CrashNodes(crashed, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete {
		t.Fatalf("simulator failed to finish around the crashes: %+v", res)
	}
	if res.TagsRead+res.LostTags != coverable {
		t.Errorf("TagsRead %d + LostTags %d != coverable %d", res.TagsRead, res.LostTags, coverable)
	}
	isCrashed := make(map[int]bool)
	for _, v := range crashed {
		isCrashed[v] = true
	}
	failedSeen := 0
	for _, sl := range res.Timeline {
		failedSeen += len(sl.Failed)
		for _, v := range sl.Active {
			if sl.Slot >= 1 && isCrashed[v] {
				t.Errorf("slot %d activated reader %d, dead since slot 1", sl.Slot, v)
			}
		}
	}
	if failedSeen != res.FailedActivations {
		t.Errorf("timeline shows %d failures, result says %d", failedSeen, res.FailedActivations)
	}
	if res.FailedActivations > 0 && !res.Degraded {
		t.Error("failed activations must mark the run Degraded")
	}
}

func TestFaultyRunDeterministic(t *testing.T) {
	run := func() *Result {
		sys := paperSystem(t, 11)
		g := graph.FromSystem(sys)
		res, err := Run(sys, core.NewGrowth(g, 1.25), Config{
			Seed:           21,
			RecordTimeline: true,
			Faults: &fault.Scenario{Seed: 21, Events: append(
				fault.CrashNodes(fault.SampleNodes(sys.NumReaders(), 3, 21), 1),
				fault.Straggle(0, 0, 2)),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		res.Final = nil // system pointers differ; compare observable outcome
		return res
	}
	r1, r2 := run(), run()
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("fault runs differ across identical scenarios:\n%+v\n%+v", r1, r2)
	}
}

func TestStragglerCostsSlotsNotTags(t *testing.T) {
	// A transient pause must never lose coverage: all coverable tags are
	// still read, only later.
	sys := paperSystem(t, 15)
	coverable := sys.CoverableCount()
	g := graph.FromSystem(sys)
	res, err := Run(sys, core.NewGrowth(g, 1.25), Config{
		Faults: &fault.Scenario{Events: []fault.Event{
			fault.Straggle(0, 0, 3),
			fault.Straggle(1, 1, 4),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LostTags != 0 {
		t.Errorf("straggling lost %d tags", res.LostTags)
	}
	if res.TagsRead != coverable {
		t.Errorf("read %d of %d coverable", res.TagsRead, coverable)
	}
}
