// Package slotsim is the discrete slot-level simulator gluing a reader
// activation schedule to the link layer: it is the instrument corresponding
// to the paper's "custom simulator" (Section VI) plus a finer-grained
// air-time model.
//
// Each macro slot activates the reader set chosen by a one-shot scheduler;
// every clean (non-RTc) reader then inventories its well-covered tags with
// a tag anti-collision protocol, costing link-layer micro slots. The
// simulator therefore reports both the paper's metric (macro slots until
// every coverable tag is read) and total air time (micro slots), along with
// RTc/RRc collision telemetry per slot.
//
// As an extension beyond the paper's static-tag model (its Related Work
// points out that EGA assumes "no new tags will appear in the system
// dynamically"), the simulator optionally injects tag arrivals between
// macro slots, rebuilding coverage incrementally, so churn experiments can
// measure how the schedulers track a moving population.
package slotsim

import (
	"fmt"
	"slices"
	"time"

	"rfidsched/internal/anticollision"
	"rfidsched/internal/fault"
	"rfidsched/internal/geom"
	"rfidsched/internal/model"
	"rfidsched/internal/obs"
	"rfidsched/internal/parsearch"
	"rfidsched/internal/randx"
)

// Config tunes a simulation run.
type Config struct {
	// Link is the tag anti-collision protocol used inside each macro slot.
	// nil models the paper's idealized slot: every well-covered tag is read
	// in exactly one micro slot.
	Link anticollision.Protocol

	// MaxMacroSlots caps the run (0 = 100000).
	MaxMacroSlots int

	// Seed drives link-layer randomness and arrivals.
	Seed uint64

	// RecordTimeline retains per-slot statistics.
	RecordTimeline bool

	// SolverWorkers routes a worker count into schedulers exposing a
	// SetWorkers(int) knob (PTAS, Growth, baseline.Exact), mirroring
	// core.MCSOptions.SolverWorkers; 0 leaves the scheduler untouched.
	// Results are bit-identical at every value.
	SolverWorkers int

	// SlotDeadline bounds each macro slot's one-shot computation in
	// wall-clock time, mirroring core.MCSOptions.SlotDeadline: before every
	// OneShot call a fresh deadline is installed into schedulers exposing a
	// SetDeadline knob (PTAS, Growth, baseline.Exact). Truncated slots
	// return anytime incumbents (still feasible) and are counted in
	// Result.AnytimeSlots. 0 disables.
	SlotDeadline time.Duration

	// SlotPollBudget is the deterministic fallback to SlotDeadline: the
	// per-slot deadline expires after this many cooperative solver polls,
	// so tests truncate at the same node everywhere. Takes precedence over
	// SlotDeadline. 0 disables.
	SlotPollBudget int

	// ArrivalRate is the Poisson mean of new tags appearing per macro slot
	// (0 = the paper's static population). Arrivals are uniform in the
	// arrival region.
	ArrivalRate float64

	// ArrivalRegion is the box new tags appear in; the zero value uses the
	// system's bounding box.
	ArrivalRegion geom.Rect

	// MaxArrivals caps total injected tags so runs terminate (default
	// 10x initial population when ArrivalRate > 0).
	MaxArrivals int

	// Faults scripts reader failures against the run; its tick axis is the
	// macro slot. The simulator mirrors the repair semantics of the MCS
	// driver: readers crashed or straggling at slot t fail to activate
	// (their tags go unread and the failure is recorded), the scheduler's
	// view of the fleet lags one slot behind reality, and tags coverable
	// only by permanently dead readers are given up honestly rather than
	// chased forever.
	Faults *fault.Scenario

	// Tracer receives macro-slot trace events (see package obs), the
	// same taxonomy as core.RunMCS so one summarizer serves both
	// engines. nil disables tracing at zero cost (guarded call sites),
	// and tracing never perturbs the link-layer RNG: same seed, same
	// Result, tracer or not.
	Tracer obs.Tracer
}

// SlotStats records one macro slot.
type SlotStats struct {
	Slot       int
	Active     []int
	TagsRead   int
	MicroSlots int
	RTcReaders int
	RRcTags    int
	Arrivals   int
	Failed     []int // planned readers that were down at execution time
}

// Result is the outcome of a simulation.
type Result struct {
	Algorithm       string
	MacroSlots      int
	TotalMicroSlots int
	TagsRead        int
	TagsInjected    int
	Incomplete      bool
	Timeline        []SlotStats

	// AnytimeSlots counts macro slots whose one-shot computation was
	// truncated by the per-slot budget (Config.SlotDeadline/SlotPollBudget).
	AnytimeSlots int

	// Fault telemetry (zero without Config.Faults); same honesty contract
	// as core.MCSResult — a degraded run reports exactly what survived.
	Degraded          bool
	FailedActivations int
	LostTags          int

	// Final is the system state at the end of the run. With tag arrivals
	// the simulator rebuilds the system, so the caller's original pointer
	// goes stale; read the final population from here.
	Final *model.System
}

// Run simulates sched on sys until every coverable tag has been read (and,
// with churn enabled, the arrival budget is exhausted and drained). The
// system's read state is mutated; pass a clone to preserve the original.
func Run(sys *model.System, sched model.OneShotScheduler, cfg Config) (*Result, error) {
	maxSlots := cfg.MaxMacroSlots
	if maxSlots <= 0 {
		maxSlots = 100000
	}
	if cfg.SolverWorkers != 0 {
		if sw, ok := sched.(interface{ SetWorkers(int) }); ok {
			sw.SetWorkers(cfg.SolverWorkers)
		}
	}
	rng := randx.New(cfg.Seed)
	res := &Result{Algorithm: sched.Name()}
	tr := cfg.Tracer

	// Per-slot budget plumbing, structurally typed so slotsim stays
	// independent of the scheduler package (the method set matches
	// core.DeadlineSetter / core.AnytimeReporter).
	budgeted := cfg.SlotPollBudget > 0 || cfg.SlotDeadline > 0
	ds, _ := sched.(interface{ SetDeadline(*parsearch.Deadline) })
	ar, _ := sched.(interface{ Anytime() bool })
	slotDeadline := func() *parsearch.Deadline {
		if cfg.SlotPollBudget > 0 {
			return parsearch.PollBudget(cfg.SlotPollBudget)
		}
		return parsearch.After(cfg.SlotDeadline)
	}
	var plan *fault.Plan
	if cfg.Faults != nil && !cfg.Faults.IsZero() {
		p, err := cfg.Faults.Compile(sys.NumReaders())
		if err != nil {
			return nil, fmt.Errorf("slotsim: fault scenario: %w", err)
		}
		plan = p
	}

	arrivalsLeft := 0
	if cfg.ArrivalRate > 0 {
		arrivalsLeft = cfg.MaxArrivals
		if arrivalsLeft <= 0 {
			arrivalsLeft = 10 * sys.NumTags()
		}
	}
	region := cfg.ArrivalRegion
	if region.Width() == 0 || region.Height() == 0 {
		region = sys.Bounds()
	}

	for reachableUnread(sys, plan, res.MacroSlots) > 0 || arrivalsLeft > 0 {
		if res.MacroSlots >= maxSlots {
			res.Incomplete = true
			break
		}
		// Inject arrivals before scheduling the slot.
		arrived := 0
		if cfg.ArrivalRate > 0 && arrivalsLeft > 0 {
			arrived = rng.Poisson(cfg.ArrivalRate)
			if arrived > arrivalsLeft {
				arrived = arrivalsLeft
			}
			arrivalsLeft -= arrived
			if arrived > 0 {
				var err error
				sys, err = injectTags(sys, arrived, region, rng)
				if err != nil {
					return nil, err
				}
				res.TagsInjected += arrived
			}
		}
		slot := res.MacroSlots
		if reachableUnread(sys, plan, slot) == 0 {
			if arrivalsLeft == 0 {
				break
			}
			// Nothing to read yet; an idle macro slot passes while we wait
			// for arrivals.
			res.MacroSlots++
			continue
		}

		if plan != nil {
			// As in core.RunMCS, the scheduler learns of a failure only
			// through the failed activation: plan with last slot's fleet.
			applyDownMask(sys, plan, slot-1)
		}
		if budgeted && ds != nil {
			ds.SetDeadline(slotDeadline())
		}
		X, err := sched.OneShot(sys)
		if err != nil {
			return nil, fmt.Errorf("slotsim: %s failed at slot %d: %w", sched.Name(), res.MacroSlots, err)
		}
		if tr != nil {
			tr.Emit(obs.EvSlotPlanned(slot, res.Algorithm, X))
		}
		if ar != nil && ar.Anytime() {
			res.AnytimeSlots++
			if tr != nil {
				tr.Emit(obs.EvSlotTruncated(slot, res.Algorithm))
			}
		}
		var failedX []int
		if plan != nil {
			X, failedX = splitExecutable(sys, plan, X, slot)
			res.FailedActivations += len(failedX)
			if tr != nil {
				for _, v := range failedX {
					tr.Emit(obs.EvActivationFailed(slot, v, failCause(plan, v, slot)))
				}
			}
			applyDownMask(sys, plan, slot) // the guard below must see the true fleet
		}
		covered := sys.Covered(X, nil)
		if len(covered) == 0 && sys.UnreadCoverableCount() > 0 {
			// Zero-progress guard: replace a useless activation with the
			// best singleton so the run always terminates (slot-level
			// experiments should not burn hundreds of dead slots the way
			// a patient MCS driver can afford to).
			X = []int{bestSingleton(sys)}
			covered = sys.Covered(X, nil)
			if tr != nil {
				tr.Emit(obs.EvStallFallback(slot, X))
			}
		}
		col := sys.Collisions(X)

		micro := len(covered) // ideal link layer: one micro slot per tag
		if cfg.Link != nil {
			micro = 0
			counts := perReaderCounts(sys, X, covered)
			// Deterministic reader order: the link-layer RNG is shared, so
			// map-iteration order would otherwise leak into the totals.
			owners := make([]int, 0, len(counts))
			for v := range counts {
				owners = append(owners, v)
			}
			slices.Sort(owners)
			for _, v := range owners {
				micro += cfg.Link.Inventory(counts[v], rng).Slots
			}
		}
		for _, t := range covered {
			sys.MarkRead(int(t))
		}

		res.MacroSlots++
		res.TotalMicroSlots += micro
		res.TagsRead += len(covered)
		if tr != nil {
			tr.Emit(obs.EvSlotExecuted(slot, X, len(covered)))
		}
		if cfg.RecordTimeline {
			res.Timeline = append(res.Timeline, SlotStats{
				Slot:       res.MacroSlots - 1,
				Active:     append([]int(nil), X...),
				TagsRead:   len(covered),
				MicroSlots: micro,
				RTcReaders: col.RTcReaders,
				RRcTags:    col.RRcTags,
				Arrivals:   arrived,
				Failed:     failedX,
			})
		}
	}
	if budgeted && ds != nil {
		ds.SetDeadline(nil) // leave the scheduler reusable
	}
	if plan != nil {
		lost := lostTagIDs(sys, plan, res.MacroSlots)
		res.LostTags = len(lost)
		res.Degraded = res.FailedActivations > 0 || res.LostTags > 0
		if tr != nil {
			for _, t := range lost {
				tr.Emit(obs.EvTagAbandoned(res.MacroSlots, t))
			}
		}
	}
	if tr != nil {
		status := "ok"
		switch {
		case res.Incomplete:
			status = "incomplete"
		case res.Degraded:
			status = "degraded"
		}
		tr.Emit(obs.EvRunCompleted(res.MacroSlots, res.TagsRead, res.Algorithm, status))
	}
	res.Final = sys
	return res, nil
}

// failCause classifies a failed activation; crash wins over straggle.
func failCause(plan *fault.Plan, reader, slot int) string {
	if plan.Crashed(reader, slot) {
		return "crash"
	}
	return "straggle"
}

// applyDownMask, splitExecutable, reachableUnread and lostTagIDs mirror the
// repair semantics of core.RunMCS on the simulator's macro-slot axis (local
// copies keep slotsim independent of the scheduler package).

func applyDownMask(sys *model.System, plan *fault.Plan, slot int) {
	for r := 0; r < sys.NumReaders(); r++ {
		down := slot >= 0 && (plan.Crashed(r, slot) || plan.Straggling(r, slot))
		sys.SetReaderDown(r, down)
	}
}

func splitExecutable(sys *model.System, plan *fault.Plan, X []int, slot int) (live, failed []int) {
	for _, v := range X {
		switch {
		case !plan.Crashed(v, slot) && !plan.Straggling(v, slot):
			live = append(live, v)
		case !sys.ReaderDown(v):
			failed = append(failed, v)
		}
	}
	return live, failed
}

func reachableUnread(sys *model.System, plan *fault.Plan, slot int) int {
	if plan == nil {
		return sys.UnreadCoverableCount()
	}
	n := 0
	for t := 0; t < sys.NumTags(); t++ {
		if sys.IsRead(t) {
			continue
		}
		for _, r := range sys.ReadersOf(t) {
			if !plan.PermanentlyDown(int(r), slot) {
				n++
				break
			}
		}
	}
	return n
}

func lostTagIDs(sys *model.System, plan *fault.Plan, slot int) []int {
	var lost []int
	for t := 0; t < sys.NumTags(); t++ {
		if sys.IsRead(t) || len(sys.ReadersOf(t)) == 0 {
			continue
		}
		dead := true
		for _, r := range sys.ReadersOf(t) {
			if !plan.PermanentlyDown(int(r), slot) {
				dead = false
				break
			}
		}
		if dead {
			lost = append(lost, t)
		}
	}
	return lost
}

// perReaderCounts returns, for each clean active reader, how many of the
// covered tags it owns (the population it must singulate).
func perReaderCounts(sys *model.System, X []int, covered []int32) map[int]int {
	owner := make(map[int32]int, len(covered))
	counts := make(map[int]int)
	for _, t := range covered {
		// The owner is the unique active reader covering t.
		for _, r := range sys.ReadersOf(int(t)) {
			for _, v := range X {
				if int(r) == v {
					owner[t] = v
				}
			}
		}
	}
	for _, v := range owner {
		counts[v]++
	}
	return counts
}

// bestSingleton is the zero-progress fallback picker. SingletonWeight is an
// O(1) counter read (maintained by MarkRead), so the scan is O(readers) —
// it no longer walks every reader's tag list the way the pre-incremental
// model forced it to.
func bestSingleton(sys *model.System) int {
	best, bestW := 0, -1
	for v := 0; v < sys.NumReaders(); v++ {
		if w := sys.SingletonWeight(v); w > bestW {
			best, bestW = v, w
		}
	}
	return best
}

// injectTags rebuilds the system with extra tags appended, carrying over
// the read state of the existing population.
func injectTags(sys *model.System, n int, region geom.Rect, rng *randx.RNG) (*model.System, error) {
	readers := sys.Readers()
	oldTags := sys.Tags()
	tags := make([]model.Tag, 0, len(oldTags)+n)
	tags = append(tags, oldTags...)
	for i := 0; i < n; i++ {
		tags = append(tags, model.Tag{Pos: geom.Pt(
			rng.UniformRange(region.Min.X, region.Max.X),
			rng.UniformRange(region.Min.Y, region.Max.Y),
		)})
	}
	next, err := model.NewSystem(readers, tags)
	if err != nil {
		return nil, fmt.Errorf("slotsim: rebuilding system with arrivals: %w", err)
	}
	for t := 0; t < len(oldTags); t++ {
		if sys.IsRead(t) {
			next.MarkRead(t)
		}
	}
	return next, nil
}
