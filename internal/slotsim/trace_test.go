package slotsim

import (
	"reflect"
	"testing"

	"rfidsched/internal/anticollision"
	"rfidsched/internal/core"
	"rfidsched/internal/fault"
	"rfidsched/internal/graph"
	"rfidsched/internal/obs"
)

// TestTraceMatchesSimResult: the macro-slot event stream must reconstruct
// the simulator's telemetry exactly, mirroring the core.RunMCS contract.
func TestTraceMatchesSimResult(t *testing.T) {
	sys := paperSystem(t, 9)
	g := graph.FromSystem(sys)
	crashed := fault.SampleNodes(sys.NumReaders(), sys.NumReaders()/5, 13)
	var c obs.Collector
	res, err := Run(sys, core.NewGrowth(g, 1.25), Config{
		RecordTimeline: true,
		Faults:         &fault.Scenario{Seed: 13, Events: fault.CrashNodes(crashed, 1)},
		Tracer:         &c,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Count(obs.ActivationFailed); got != res.FailedActivations {
		t.Errorf("activation_failed events %d != %d", got, res.FailedActivations)
	}
	if got := c.Count(obs.TagAbandoned); got != res.LostTags {
		t.Errorf("tag_abandoned events %d != %d", got, res.LostTags)
	}
	tags := 0
	executed := 0
	for _, e := range c.Events() {
		if e.Type == obs.SlotExecuted {
			tags += e.N
			executed++
		}
	}
	// Idle macro slots (churn waiting) execute nothing; here, with no
	// arrivals, every macro slot is an executed slot.
	if executed != res.MacroSlots {
		t.Errorf("slot_executed events %d != MacroSlots %d", executed, res.MacroSlots)
	}
	if tags != res.TagsRead {
		t.Errorf("traced tags %d != TagsRead %d", tags, res.TagsRead)
	}
	if got := c.Count(obs.RunCompleted); got != 1 {
		t.Errorf("run_completed events %d", got)
	}
}

// TestSimTracingPreservesDeterminism: with a randomized link layer and tag
// churn in play, a tracer must not consume or reorder any RNG draw.
func TestSimTracingPreservesDeterminism(t *testing.T) {
	run := func(tr obs.Tracer) *Result {
		sys := paperSystem(t, 11)
		g := graph.FromSystem(sys)
		res, err := Run(sys, core.NewGrowth(g, 1.25), Config{
			Seed:           21,
			Link:           anticollision.VogtALOHA{},
			ArrivalRate:    5,
			MaxArrivals:    40,
			RecordTimeline: true,
			Faults: &fault.Scenario{Seed: 21, Events: append(
				fault.CrashNodes(fault.SampleNodes(sys.NumReaders(), 3, 21), 1),
				fault.Straggle(0, 0, 2)),
			},
			Tracer: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		res.Final = nil // system pointers differ; compare observable outcome
		return res
	}
	baseline := run(nil)
	if !reflect.DeepEqual(baseline, run(&obs.Collector{})) {
		t.Error("tracing changed the simulation outcome")
	}
}
