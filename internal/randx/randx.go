// Package randx provides the deterministic random number generation used by
// every stochastic component of rfidsched: deployment generation, radius
// assignment (the paper draws interference and interrogation radii from
// Poisson distributions with means lambdaR and lambdar), link-layer slot
// selection, Colorwave color rolls, and shadowing noise in the RF survey.
//
// The core generator is a splitmix64-style splittable generator (Steele,
// Lea, Flood 2014) implemented from scratch so experiments are
// bit-reproducible across Go releases — math/rand's stream ordering is not
// part of its compatibility promise. The type also satisfies math/rand's
// Source/Source64 for callers that want the stdlib convenience methods.
package randx

import "math"

// RNG is a small, fast, deterministic pseudo-random generator. The zero
// value is not usable; construct with New. RNG is not safe for concurrent
// use; give each goroutine its own stream via Split.
type RNG struct {
	state uint64
	inc   uint64
}

// New returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{inc: 0xda3e39cb94b95bdb | 1}
	r.state = splitmix64(&seed)
	r.Uint64() // decorrelate the first output from the raw seed
	return r
}

// NewStream returns a generator on an independent stream: same seed,
// different stream index. Streams with distinct indices are statistically
// independent, which is how per-trial and per-goroutine generators are
// derived from one experiment seed.
func NewStream(seed, stream uint64) *RNG {
	s := seed
	r := &RNG{inc: (splitmix64(&s)+2*stream)<<1 | 1}
	r.state = splitmix64(&s) + stream*0x9e3779b97f4a7c15
	r.Uint64()
	return r
}

// Split derives a new independent generator from r, advancing r.
func (r *RNG) Split() *RNG {
	return NewStream(r.Uint64(), r.Uint64())
}

// State captures the generator's internal state for checkpointing; the
// (state, inc) pair fully determines the future stream. Restore with
// SetState.
func (r *RNG) State() (state, inc uint64) { return r.state, r.inc }

// SetState restores a generator to a state previously captured with State,
// so the stream continues exactly where the captured generator left off.
func (r *RNG) SetState(state, inc uint64) { r.state, r.inc = state, inc }

func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits. The generator is a
// splitmix64-style counter generator (Steele et al., "Fast Splittable
// Pseudorandom Number Generators"): the state advances by a per-stream odd
// gamma and the output is a finalizing bijective mix of the new state.
func (r *RNG) Uint64() uint64 {
	r.state += r.inc
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative 63-bit integer; part of rand.Source.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Seed is part of rand.Source; it reseeds the generator in place.
func (r *RNG) Seed(seed int64) { *r = *New(uint64(seed)) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, bias-free.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hi = t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi += aHi*bHi + t>>32
	return hi, lo
}

// UniformRange returns a uniform value in [lo, hi).
func (r *RNG) UniformRange(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Normal returns a standard normal variate (Marsaglia polar method).
func (r *RNG) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// NormalMS returns a normal variate with the given mean and standard
// deviation.
func (r *RNG) NormalMS(mean, sd float64) float64 { return mean + sd*r.Normal() }

// Exponential returns an exponential variate with the given rate (mean
// 1/rate).
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("randx: Exponential with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Poisson returns a Poisson variate with the given mean lambda. The paper's
// radius assignment draws R_i ~ Poisson(lambdaR) and r_i ~ Poisson(lambdar).
// Knuth's product method is used for small lambda; for large lambda the
// method switches to the normal approximation with continuity correction,
// clamped at zero, which is accurate to well under the experiment's trial
// noise for lambda >= 30.
func (r *RNG) Poisson(lambda float64) int {
	switch {
	case lambda <= 0:
		return 0
	case lambda < 30:
		limit := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= limit {
				return k
			}
			k++
		}
	default:
		v := math.Floor(r.NormalMS(lambda, math.Sqrt(lambda)) + 0.5)
		if v < 0 {
			return 0
		}
		return int(v)
	}
}

// PoissonPositive returns a Poisson variate conditioned to be at least 1.
// Radius assignment uses it so no reader ends up with a zero range.
func (r *RNG) PoissonPositive(lambda float64) int {
	for i := 0; i < 10000; i++ {
		if v := r.Poisson(lambda); v > 0 {
			return v
		}
	}
	return 1 // lambda so small that rejection is hopeless; degenerate to 1
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
