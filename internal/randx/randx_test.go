package randx

import (
	"math"
	"math/rand"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestStreamsDiffer(t *testing.T) {
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between streams", same)
	}
}

func TestSplitIndependent(t *testing.T) {
	a := New(9)
	c := a.Split()
	if a.Uint64() == c.Uint64() {
		t.Error("split stream identical to parent")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/7.0) > 0.05*n/7.0 {
			t.Errorf("bucket %d count %d far from uniform %d", i, c, n/7)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUniformRange(t *testing.T) {
	r := New(6)
	for i := 0; i < 1000; i++ {
		v := r.UniformRange(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("UniformRange out of range: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(8)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestNormalMS(t *testing.T) {
	r := New(9)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormalMS(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Errorf("NormalMS mean = %v", mean)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(10)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("exponential mean = %v, want 0.5", mean)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exponential(0) did not panic")
		}
	}()
	New(1).Exponential(0)
}

func TestPoissonSmallLambda(t *testing.T) {
	r := New(11)
	const n = 200000
	lambda := 5.0
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := float64(r.Poisson(lambda))
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-lambda) > 0.05 {
		t.Errorf("poisson mean = %v, want %v", mean, lambda)
	}
	if math.Abs(variance-lambda) > 0.15 {
		t.Errorf("poisson variance = %v, want %v", variance, lambda)
	}
}

func TestPoissonLargeLambda(t *testing.T) {
	r := New(12)
	const n = 100000
	lambda := 100.0
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Poisson(lambda))
	}
	if mean := sum / n; math.Abs(mean-lambda) > 0.5 {
		t.Errorf("poisson(100) mean = %v", mean)
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	r := New(13)
	for i := 0; i < 100; i++ {
		if v := r.Poisson(0); v != 0 {
			t.Fatalf("Poisson(0) = %d", v)
		}
		if v := r.Poisson(-1); v != 0 {
			t.Fatalf("Poisson(-1) = %d", v)
		}
	}
}

func TestPoissonPositive(t *testing.T) {
	r := New(14)
	for _, lambda := range []float64{0.001, 0.5, 3, 50} {
		for i := 0; i < 200; i++ {
			if v := r.PoissonPositive(lambda); v < 1 {
				t.Fatalf("PoissonPositive(%v) = %d", lambda, v)
			}
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(15)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) len = %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(16)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	orig := append([]int(nil), s...)
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	seen := make(map[int]bool)
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != len(orig) {
		t.Errorf("shuffle lost elements: %v", s)
	}
}

func TestBool(t *testing.T) {
	r := New(17)
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			count++
		}
	}
	if frac := float64(count) / n; math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
}

// RNG satisfies math/rand.Source so it can back stdlib helpers.
func TestSourceCompat(t *testing.T) {
	src := New(18)
	stdr := rand.New(src)
	for i := 0; i < 100; i++ {
		v := stdr.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("stdlib adapter out of range: %d", v)
		}
	}
}

func TestSeedMethod(t *testing.T) {
	r := New(1)
	r.Seed(99)
	want := New(99)
	for i := 0; i < 10; i++ {
		if r.Uint64() != want.Uint64() {
			t.Fatal("Seed did not reset to seed-99 stream")
		}
	}
}

func TestMul128(t *testing.T) {
	hi, lo := mul128(0xffffffffffffffff, 0xffffffffffffffff)
	// (2^64-1)^2 = 2^128 - 2^65 + 1
	if hi != 0xfffffffffffffffe || lo != 1 {
		t.Errorf("mul128 max = (%x, %x)", hi, lo)
	}
	hi, lo = mul128(1<<32, 1<<32)
	if hi != 1 || lo != 0 {
		t.Errorf("mul128(2^32,2^32) = (%x, %x)", hi, lo)
	}
	hi, lo = mul128(12345, 67890)
	if hi != 0 || lo != 12345*67890 {
		t.Errorf("mul128 small = (%x, %x)", hi, lo)
	}
}
