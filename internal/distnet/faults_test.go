package distnet

import (
	"reflect"
	"testing"

	"rfidsched/internal/fault"
)

// chatter sends payload to a fixed peer every round until lastRound, then
// parks. It records the first round a nonempty inbox arrived.
type chatter struct {
	id, peer  int
	lastRound int
	heardAt   int // -1 until a message arrives
	got       []Message
}

func newChatter(id, peer, lastRound int) *chatter {
	return &chatter{id: id, peer: peer, lastRound: lastRound, heardAt: -1}
}

func (c *chatter) Step(round int, inbox []Message) ([]Message, bool) {
	if len(inbox) > 0 && c.heardAt < 0 {
		c.heardAt = round
		c.got = append(c.got, inbox...)
	}
	if round >= c.lastRound {
		return nil, true
	}
	if c.peer >= 0 {
		return []Message{{From: c.id, To: c.peer, Payload: round}}, false
	}
	return nil, false
}

func TestPermanentCrashRemovesNodeAndBlocksFlood(t *testing.T) {
	// Chain 0-1-2-3-4 with node 2 crashed from the start: the token flood
	// from node 0 must never reach nodes 3 and 4, and the run must still
	// terminate (a crashed node can never park).
	g := mustGraph(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	nodes := make([]Node, 5)
	fs := make([]*flooder, 5)
	for i := range nodes {
		fs[i] = &flooder{id: i, g: g}
		nodes[i] = fs[i]
	}
	plan := fault.MustCompile(fault.Scenario{Events: []fault.Event{fault.Crash(2, 0)}}, 5)
	stats, err := NewNetwork(g).WithFaults(plan).Run(nodes, 100)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CrashedNodes != 1 {
		t.Errorf("CrashedNodes = %d, want 1", stats.CrashedNodes)
	}
	if fs[1].heard == 0 {
		t.Error("node 1 should still hear the flood")
	}
	for _, id := range []int{2, 3, 4} {
		if fs[id].heard != 0 {
			t.Errorf("node %d heard the flood across a crashed relay", id)
		}
	}
	if stats.ParkedAtRound[2] != -1 {
		t.Error("crashed node reported as parked")
	}
}

func TestCrashWithRecoveryReceivesAfterReboot(t *testing.T) {
	g := mustGraph(t, 2, [][2]int{{0, 1}})
	sender := newChatter(0, 1, 8)
	receiver := newChatter(1, -1, 8)
	plan := fault.MustCompile(fault.Scenario{Events: []fault.Event{fault.CrashRecover(1, 0, 3)}}, 2)
	if _, err := NewNetwork(g).WithFaults(plan).Run([]Node{sender, receiver}, 100); err != nil {
		t.Fatal(err)
	}
	// Messages sent while the radio is dark (rounds 0-2) are lost; the
	// first one that can land is sent at round 3 and read at round 4.
	if receiver.heardAt != 4 {
		t.Errorf("receiver heard at round %d, want 4", receiver.heardAt)
	}
}

func TestPartitionCutsAndHeals(t *testing.T) {
	g := mustGraph(t, 3, [][2]int{{0, 1}, {1, 2}})

	// Permanent cut of edge (1,2): node 2 stays deaf.
	relayDeaf := func() (*Stats, *chatter) {
		n0 := newChatter(0, 1, 10)
		n1 := newChatter(1, 2, 10)
		n2 := newChatter(2, -1, 10)
		plan := fault.MustCompile(fault.Scenario{Events: []fault.Event{
			fault.Partition([][2]int{{1, 2}}, 0, fault.Forever),
		}}, 3)
		stats, err := NewNetwork(g).WithFaults(plan).Run([]Node{n0, n1, n2}, 100)
		if err != nil {
			t.Fatal(err)
		}
		return stats, n2
	}
	stats, n2 := relayDeaf()
	if n2.heardAt != -1 {
		t.Error("message crossed a cut edge")
	}
	if stats.PartitionDropped == 0 || stats.PartitionedRounds == 0 {
		t.Errorf("partition telemetry missing: %+v", stats)
	}

	// Healing cut [0,4): traffic resumes once the interval ends.
	n0 := newChatter(0, 1, 10)
	n1 := newChatter(1, 2, 10)
	n2 = newChatter(2, -1, 10)
	plan := fault.MustCompile(fault.Scenario{Events: []fault.Event{
		fault.Partition([][2]int{{1, 2}}, 0, 4),
	}}, 3)
	if _, err := NewNetwork(g).WithFaults(plan).Run([]Node{n0, n1, n2}, 100); err != nil {
		t.Fatal(err)
	}
	if n2.heardAt != 5 {
		t.Errorf("node 2 heard at round %d, want 5 (first send after heal at round 4)", n2.heardAt)
	}
}

func TestStragglerRetainsInbox(t *testing.T) {
	g := mustGraph(t, 2, [][2]int{{0, 1}})
	sender := newChatter(0, 1, 1) // sends once at round 0, parks at round 1
	receiver := newChatter(1, -1, 8)
	plan := fault.MustCompile(fault.Scenario{Events: []fault.Event{
		fault.Straggle(1, 1, 4), // skips rounds 1..4
	}}, 2)
	stats, err := NewNetwork(g).WithFaults(plan).Run([]Node{sender, receiver}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StragglerSkips != 4 {
		t.Errorf("StragglerSkips = %d, want 4", stats.StragglerSkips)
	}
	// The round-0 message is delivered at round 1, survives the pause, and
	// is finally read at round 5.
	if receiver.heardAt != 5 || len(receiver.got) != 1 {
		t.Errorf("receiver heard at %d with %d messages, want round 5 with 1", receiver.heardAt, len(receiver.got))
	}
}

func TestDuplicationDeliversTwice(t *testing.T) {
	g := mustGraph(t, 2, [][2]int{{0, 1}})
	sender := newChatter(0, 1, 1)
	receiver := newChatter(1, -1, 3)
	plan := fault.MustCompile(fault.Scenario{Events: []fault.Event{
		fault.Duplicate(1, 0, fault.Forever),
	}}, 2)
	stats, err := NewNetwork(g).WithFaults(plan).Run([]Node{sender, receiver}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DuplicatedMessages != 1 {
		t.Errorf("DuplicatedMessages = %d, want 1", stats.DuplicatedMessages)
	}
	if len(receiver.got) != 2 {
		t.Errorf("receiver got %d copies, want 2", len(receiver.got))
	}
}

func TestReorderIsDeterministic(t *testing.T) {
	g := mustGraph(t, 4, [][2]int{{3, 0}, {3, 1}, {3, 2}})
	run := func() ([]int, *Stats) {
		var got []int
		nodes := []Node{
			fn(func(int, []Message) ([]Message, bool) { return []Message{{From: 0, To: 3}}, true }),
			fn(func(int, []Message) ([]Message, bool) { return []Message{{From: 1, To: 3}}, true }),
			fn(func(int, []Message) ([]Message, bool) { return []Message{{From: 2, To: 3}}, true }),
			fn(func(round int, inbox []Message) ([]Message, bool) {
				if round == 1 {
					for _, m := range inbox {
						got = append(got, m.From)
					}
					return nil, true
				}
				return nil, false
			}),
		}
		plan := fault.MustCompile(fault.Scenario{Seed: 3, Events: []fault.Event{
			fault.Reorder(0, fault.Forever),
		}}, 4)
		stats, err := NewNetwork(g).WithFaults(plan).Run(nodes, 10)
		if err != nil {
			t.Fatal(err)
		}
		return got, stats
	}
	got1, s1 := run()
	got2, s2 := run()
	if !reflect.DeepEqual(got1, got2) {
		t.Errorf("reorder not reproducible: %v vs %v", got1, got2)
	}
	if len(got1) != 3 {
		t.Fatalf("inbox size %d, want 3", len(got1))
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("stats differ across identical runs:\n%+v\n%+v", s1, s2)
	}
}

// TestParkedNodesReceiveNothing guards the delivery fix: messages addressed
// to a node that has already parked (or parks this very round) are counted
// in UndeliveredDown and never enqueued, so parked inboxes stay empty
// instead of silently growing for the rest of the run.
func TestParkedNodesReceiveNothing(t *testing.T) {
	g := mustGraph(t, 2, [][2]int{{0, 1}})
	sender := newChatter(0, 1, 4) // sends rounds 0..3, parks at 4
	parker := fn(func(int, []Message) ([]Message, bool) { return nil, true })
	stats, err := NewNetwork(g).Run([]Node{sender, parker}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 parks at round 0; every one of the 4 messages (including the
	// round-0 one, sent in the same round the recipient parked) must be
	// suppressed.
	if stats.MessagesSent != 4 {
		t.Fatalf("MessagesSent = %d, want 4", stats.MessagesSent)
	}
	if stats.UndeliveredDown != 4 {
		t.Errorf("UndeliveredDown = %d, want 4 (parked inbox must stay empty)", stats.UndeliveredDown)
	}
	if stats.MessagesLost != 0 {
		t.Errorf("suppressed deliveries miscounted as loss: %+v", stats)
	}
}

func TestWithLossShimDropsEverything(t *testing.T) {
	g := mustGraph(t, 2, [][2]int{{0, 1}})
	sender := newChatter(0, 1, 3)
	receiver := newChatter(1, -1, 3)
	stats, err := NewNetwork(g).WithLoss(1.0, func() float64 { return 0 }).Run([]Node{sender, receiver}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if receiver.heardAt != -1 {
		t.Error("message survived rate-1 loss")
	}
	if stats.MessagesLost == 0 || stats.MessagesLost != stats.MessagesSent-stats.UndeliveredDown {
		t.Errorf("loss accounting off: %+v", stats)
	}
}
