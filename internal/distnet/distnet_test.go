package distnet

import (
	"sync/atomic"
	"testing"

	"rfidsched/internal/graph"
)

func mustGraph(t *testing.T, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	g, err := graph.New(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// flooder floods a token through the graph and records the round it first
// heard it; node 0 originates.
type flooder struct {
	id    int
	g     *graph.Graph
	heard int32 // round+1 when first heard, 0 = never
}

func (f *flooder) Step(round int, inbox []Message) ([]Message, bool) {
	if f.id == 0 && round == 0 {
		atomic.StoreInt32(&f.heard, 1)
		return Broadcast(f.g, 0, "tok"), false
	}
	if atomic.LoadInt32(&f.heard) == 0 && len(inbox) > 0 {
		atomic.StoreInt32(&f.heard, int32(round)+1)
		return Broadcast(f.g, f.id, "tok"), false
	}
	// Park once heard (or after enough silence).
	if atomic.LoadInt32(&f.heard) != 0 || round > 10 {
		return nil, true
	}
	return nil, false
}

func TestFloodReachesByHopDistance(t *testing.T) {
	g := mustGraph(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	nodes := make([]Node, 5)
	fs := make([]*flooder, 5)
	for i := range nodes {
		fs[i] = &flooder{id: i, g: g}
		nodes[i] = fs[i]
	}
	stats, err := NewNetwork(g).Run(nodes, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range fs {
		wantRound := i // hop distance from 0
		if got := int(f.heard) - 1; got != wantRound {
			t.Errorf("node %d heard at round %d, want %d", i, got, wantRound)
		}
	}
	if stats.MessagesSent == 0 {
		t.Error("no messages counted")
	}
	for i, r := range stats.ParkedAtRound {
		if r < 0 {
			t.Errorf("node %d never parked", i)
		}
	}
}

type fn func(round int, inbox []Message) ([]Message, bool)

func (f fn) Step(round int, inbox []Message) ([]Message, bool) { return f(round, inbox) }

func TestRejectsNonNeighborSend(t *testing.T) {
	g := mustGraph(t, 3, [][2]int{{0, 1}})
	nodes := []Node{
		fn(func(round int, _ []Message) ([]Message, bool) {
			return []Message{{From: 0, To: 2, Payload: nil}}, true // 2 is not a neighbor
		}),
		fn(func(int, []Message) ([]Message, bool) { return nil, true }),
		fn(func(int, []Message) ([]Message, bool) { return nil, true }),
	}
	if _, err := NewNetwork(g).Run(nodes, 10); err == nil {
		t.Error("out-of-range send accepted")
	}
}

func TestRejectsForgedSender(t *testing.T) {
	g := mustGraph(t, 2, [][2]int{{0, 1}})
	nodes := []Node{
		fn(func(int, []Message) ([]Message, bool) {
			return []Message{{From: 1, To: 0}}, true // node 0 claims to be node 1
		}),
		fn(func(int, []Message) ([]Message, bool) { return nil, true }),
	}
	if _, err := NewNetwork(g).Run(nodes, 10); err == nil {
		t.Error("forged sender accepted")
	}
}

func TestMaxRoundsExceeded(t *testing.T) {
	g := mustGraph(t, 1, nil)
	nodes := []Node{fn(func(int, []Message) ([]Message, bool) { return nil, false })}
	if _, err := NewNetwork(g).Run(nodes, 5); err == nil {
		t.Error("runaway node not reported")
	}
}

func TestNodeCountMismatch(t *testing.T) {
	g := mustGraph(t, 2, nil)
	if _, err := NewNetwork(g).Run([]Node{}, 5); err == nil {
		t.Error("node count mismatch accepted")
	}
}

func TestInboxSortedBySender(t *testing.T) {
	g := mustGraph(t, 4, [][2]int{{3, 0}, {3, 1}, {3, 2}})
	var got []int
	nodes := []Node{
		fn(func(round int, _ []Message) ([]Message, bool) {
			return []Message{{From: 0, To: 3}}, true
		}),
		fn(func(round int, _ []Message) ([]Message, bool) {
			return []Message{{From: 1, To: 3}}, true
		}),
		fn(func(round int, _ []Message) ([]Message, bool) {
			return []Message{{From: 2, To: 3}}, true
		}),
		fn(func(round int, inbox []Message) ([]Message, bool) {
			if round == 1 {
				for _, m := range inbox {
					got = append(got, m.From)
				}
				return nil, true
			}
			return nil, false
		}),
	}
	if _, err := NewNetwork(g).Run(nodes, 10); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("inbox order = %v", got)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	build := func() ([]Node, *graph.Graph) {
		g := mustGraph(t, 6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
		nodes := make([]Node, 6)
		for i := range nodes {
			i := i
			nodes[i] = fn(func(round int, inbox []Message) ([]Message, bool) {
				if round >= 3 {
					return nil, true
				}
				return Broadcast(g, i, round), false
			})
		}
		return nodes, g
	}
	n1, g1 := build()
	s1, err := NewNetwork(g1).Run(n1, 100)
	if err != nil {
		t.Fatal(err)
	}
	n2, g2 := build()
	s2, err := NewNetwork(g2).Run(n2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s1.MessagesSent != s2.MessagesSent || s1.Rounds != s2.Rounds {
		t.Errorf("non-deterministic stats: %+v vs %+v", s1, s2)
	}
}

func TestTimeoutStatsStillReturned(t *testing.T) {
	g := mustGraph(t, 1, nil)
	nodes := []Node{fn(func(int, []Message) ([]Message, bool) { return nil, false })}
	stats, err := NewNetwork(g).Run(nodes, 2)
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if stats == nil || stats.Rounds != 2 {
		t.Errorf("stats on timeout: %+v", stats)
	}
}
