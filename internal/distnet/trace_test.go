package distnet

import (
	"testing"

	"rfidsched/internal/fault"
	"rfidsched/internal/obs"
)

// TestTracedDropsMatchStats drives every drop path — Bernoulli loss, a cut
// edge, and delivery to a parked node — and checks the per-message trace
// agrees with the aggregate Stats counters, cause by cause.
func TestTracedDropsMatchStats(t *testing.T) {
	g := mustGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	n0 := newChatter(0, 1, 12)
	n1 := newChatter(1, 2, 12)
	n2 := newChatter(2, 3, 2) // parks early: later 1→2 traffic drops as "down"
	n3 := newChatter(3, -1, 12)
	plan := fault.MustCompile(fault.Scenario{Seed: 11, Events: []fault.Event{
		fault.Loss(0.4, 0, fault.Forever),
		fault.Partition([][2]int{{0, 1}}, 4, 8),
	}}, 4)

	var c obs.Collector
	stats, err := NewNetwork(g).WithFaults(plan).WithTracer(&c).Run([]Node{n0, n1, n2, n3}, 100)
	if err != nil {
		t.Fatal(err)
	}

	byCause := map[string]int{}
	for _, e := range c.Events() {
		if e.Type != obs.MessageDropped {
			t.Fatalf("unexpected event type %q from distnet", e.Type)
		}
		if e.From < 0 || e.To < 0 || !g.HasEdge(e.From, e.To) {
			t.Errorf("drop event names a non-edge: %+v", e)
		}
		byCause[e.Cause]++
	}
	if byCause["loss"] != stats.MessagesLost {
		t.Errorf("traced loss %d != Stats.MessagesLost %d", byCause["loss"], stats.MessagesLost)
	}
	if byCause["partition"] != stats.PartitionDropped {
		t.Errorf("traced partition %d != Stats.PartitionDropped %d", byCause["partition"], stats.PartitionDropped)
	}
	if byCause["down"] != stats.UndeliveredDown {
		t.Errorf("traced down %d != Stats.UndeliveredDown %d", byCause["down"], stats.UndeliveredDown)
	}
	if total := byCause["loss"] + byCause["partition"] + byCause["down"]; total == 0 {
		t.Fatal("scenario produced no drops; test exercised nothing")
	}
}

// TestTracerNilEmitsNothingAndChangesNothing re-runs the same faulty
// scenario with and without a tracer and compares the Stats — observation
// must not perturb the network.
func TestTracerNilEmitsNothingAndChangesNothing(t *testing.T) {
	run := func(tr obs.Tracer) *Stats {
		g := mustGraph(t, 3, [][2]int{{0, 1}, {1, 2}})
		n0 := newChatter(0, 1, 10)
		n1 := newChatter(1, 2, 10)
		n2 := newChatter(2, -1, 10)
		plan := fault.MustCompile(fault.Scenario{Seed: 3, Events: []fault.Event{
			fault.Loss(0.3, 0, fault.Forever),
		}}, 3)
		net := NewNetwork(g).WithFaults(plan)
		if tr != nil {
			net.WithTracer(tr)
		}
		stats, err := net.Run([]Node{n0, n1, n2}, 100)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	plain := run(nil)
	var c obs.Collector
	traced := run(&c)
	if plain.MessagesSent != traced.MessagesSent || plain.MessagesLost != traced.MessagesLost ||
		plain.Rounds != traced.Rounds {
		t.Errorf("tracer changed network behavior: %+v vs %+v", plain, traced)
	}
	if c.Count(obs.MessageDropped) != traced.MessagesLost {
		t.Errorf("traced %d drops, stats %d", c.Count(obs.MessageDropped), traced.MessagesLost)
	}
}
