// Package distnet is the message-passing substrate for Algorithm 3: a
// synchronous (BSP-style) network of reader nodes. Each node runs its Step
// function once per round — all Steps of a round execute concurrently on
// their own goroutines — and may send messages only to its neighbors in the
// interference graph; messages sent in round t are delivered at round t+1.
//
// The synchronous model matches the paper's setting (slotted time is
// already assumed for tag reading) and makes executions deterministic:
// inboxes are sorted by sender at delivery time, so a seeded run always
// produces the same schedule regardless of goroutine interleaving.
//
// Failure injection is scripted through package fault (WithFaults): reader
// crashes stop a node from stepping and sending, partitions cut edge
// traffic, stragglers skip rounds, and probabilistic loss, duplication and
// reordering perturb delivery — all reproducibly from a scenario seed. The
// legacy WithLoss knob remains as a thin shim over a loss-only plan.
package distnet

import (
	"fmt"
	"slices"
	"sync"

	"rfidsched/internal/fault"
	"rfidsched/internal/graph"
	"rfidsched/internal/obs"
)

// Message is a payload in flight between adjacent nodes.
type Message struct {
	From, To int
	Payload  any
}

// Node is the per-reader protocol logic. Implementations receive the round
// number and this round's inbox and return messages to send (delivered next
// round). Returning done=true parks the node: Step is no longer called, and
// when every node is done the network halts.
type Node interface {
	Step(round int, inbox []Message) (outbox []Message, done bool)
}

// Stats summarizes one network run.
type Stats struct {
	Rounds        int
	MessagesSent  int
	MessagesLost  int // dropped by Bernoulli loss injection (subset of MessagesSent)
	MaxInboxSize  int
	ParkedAtRound []int // round at which each node declared done (-1 = never)

	// Fault telemetry (all zero without WithFaults).
	CrashedNodes       int // nodes removed by permanent fail-stop crashes
	PartitionedRounds  int // rounds during which at least one edge was cut
	PartitionDropped   int // messages dropped on cut edges
	DuplicatedMessages int // extra copies delivered by duplication faults
	StragglerSkips     int // (node, round) Steps skipped by straggle faults
	UndeliveredDown    int // messages addressed to parked or crashed nodes
}

// Network executes nodes over an interference-graph topology.
type Network struct {
	g *graph.Graph

	// plan scripts failure injection; nil runs fault-free.
	plan *fault.Plan

	// tracer receives msg_dropped events; nil traces nothing. Emission
	// happens in the single-threaded delivery phase, so event order is
	// deterministic for a fixed seed.
	tracer obs.Tracer
}

// NewNetwork builds a network with the given topology.
func NewNetwork(g *graph.Graph) *Network { return &Network{g: g} }

// WithFaults attaches a compiled fault plan (see package fault). The plan's
// tick axis is the round number. Returns the network for chaining.
func (n *Network) WithFaults(plan *fault.Plan) *Network {
	n.plan = plan
	return n
}

// WithTracer attaches a trace sink for per-message drop events (cause
// "down", "partition" or "loss" — the same taxonomy as the Stats counters
// UndeliveredDown / PartitionDropped / MessagesLost). Returns the network
// for chaining.
func (n *Network) WithTracer(tr obs.Tracer) *Network {
	n.tracer = tr
	return n
}

// WithLoss enables message-loss injection: every message is independently
// dropped with probability rate, drawn from draw (a seeded uniform [0,1)
// source keeps runs reproducible). Dropped messages still count in
// Stats.MessagesSent — they were transmitted, just not delivered — and are
// tallied in Stats.MessagesLost. Returns the network for chaining.
//
// WithLoss is a shim over WithFaults for the common single-knob case; new
// code wanting richer failure models should build a fault.Scenario.
func (n *Network) WithLoss(rate float64, draw func() float64) *Network {
	if rate <= 0 || draw == nil {
		return n
	}
	plan := fault.MustCompile(fault.Scenario{
		Events: []fault.Event{fault.Loss(rate, 0, fault.Forever)},
	}, n.g.N())
	plan.SetDraw(draw)
	return n.WithFaults(plan)
}

// Run drives the nodes until all are done (or permanently crashed) or
// maxRounds elapses. It returns an error if a node addresses a non-neighbor
// (a protocol bug: radios cannot reach beyond the interference range) or if
// maxRounds is exhausted with undone nodes.
//
// Under a fault plan: permanently crashed nodes are removed from the run
// (they can never park, so waiting for them would always time out); nodes
// in a crash-with-recovery window lose their pending inbox and skip Steps
// until the reboot; straggling nodes skip Steps but keep accumulating
// messages; messages over cut edges, to dark radios, or sacrificed to
// Bernoulli loss are dropped with per-cause telemetry. Parked nodes never
// receive new messages — their inboxes stay empty (see UndeliveredDown).
func (n *Network) Run(nodes []Node, maxRounds int) (*Stats, error) {
	if len(nodes) != n.g.N() {
		return nil, fmt.Errorf("distnet: %d nodes for %d-vertex topology", len(nodes), n.g.N())
	}
	stats := &Stats{ParkedAtRound: make([]int, len(nodes))}
	for i := range stats.ParkedAtRound {
		stats.ParkedAtRound[i] = -1
	}
	plan := n.plan
	done := make([]bool, len(nodes))   // parked by protocol decision
	failed := make([]bool, len(nodes)) // removed by permanent crash
	inboxes := make([][]Message, len(nodes))
	remaining := len(nodes)

	type result struct {
		id     int
		outbox []Message
		done   bool
	}

	for round := 0; remaining > 0; round++ {
		if round >= maxRounds {
			return stats, fmt.Errorf("distnet: %d nodes still running after %d rounds", remaining, maxRounds)
		}
		stats.Rounds = round + 1

		// Fault bookkeeping for this round (single-threaded, deterministic).
		if plan != nil {
			for id := range nodes {
				if !done[id] && !failed[id] && plan.PermanentlyDown(id, round) {
					failed[id] = true
					inboxes[id] = nil
					stats.CrashedNodes++
					remaining--
				}
			}
			if remaining == 0 {
				break
			}
			if plan.AnyCut(round) {
				stats.PartitionedRounds++
			}
		}
		crashedNow := func(id int) bool { return plan != nil && plan.Crashed(id, round) }

		results := make([]result, 0, remaining)
		var stragglers []int
		var mu sync.Mutex
		var wg sync.WaitGroup
		for id := range nodes {
			if done[id] || failed[id] {
				continue
			}
			if crashedNow(id) {
				// Transient outage: the node is dark and its radio buffers
				// are lost; it resumes stepping after the scripted reboot.
				inboxes[id] = nil
				continue
			}
			if plan != nil && plan.Straggling(id, round) {
				// Alive but paused: the Step is skipped, the inbox kept.
				stats.StragglerSkips++
				stragglers = append(stragglers, id)
				continue
			}
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				out, d := nodes[id].Step(round, inboxes[id])
				mu.Lock()
				results = append(results, result{id: id, outbox: out, done: d})
				mu.Unlock()
			}(id)
		}
		wg.Wait()
		slices.SortFunc(results, func(a, b result) int { return a.id - b.id })

		next := make([][]Message, len(nodes))
		for _, id := range stragglers {
			next[id] = inboxes[id] // unread messages carry over
		}
		// Park first, deliver second: a message sent to a node that parked
		// this same round must not enqueue, regardless of id order.
		for _, res := range results {
			if l := len(inboxes[res.id]); l > stats.MaxInboxSize {
				stats.MaxInboxSize = l
			}
			if res.done {
				done[res.id] = true
				stats.ParkedAtRound[res.id] = round
				remaining--
			}
		}
		for _, res := range results {
			for _, m := range res.outbox {
				if m.From != res.id {
					return stats, fmt.Errorf("distnet: node %d forged sender %d", res.id, m.From)
				}
				if !n.g.HasEdge(m.From, m.To) {
					return stats, fmt.Errorf("distnet: node %d sent beyond radio range to %d", m.From, m.To)
				}
				stats.MessagesSent++
				switch {
				case done[m.To] || failed[m.To] || crashedNow(m.To):
					// Parked or dark recipients never enqueue: delivering
					// would only grow an inbox nobody reads.
					stats.UndeliveredDown++
					if n.tracer != nil {
						n.tracer.Emit(obs.EvMessageDropped(round, m.From, m.To, "down"))
					}
				case plan != nil && plan.Cut(m.From, m.To, round):
					stats.PartitionDropped++
					if n.tracer != nil {
						n.tracer.Emit(obs.EvMessageDropped(round, m.From, m.To, "partition"))
					}
				case plan != nil && plan.Drop(round):
					stats.MessagesLost++
					if n.tracer != nil {
						n.tracer.Emit(obs.EvMessageDropped(round, m.From, m.To, "loss"))
					}
				default:
					next[m.To] = append(next[m.To], m)
					if plan != nil && plan.Duplicated(round) {
						stats.DuplicatedMessages++
						next[m.To] = append(next[m.To], m)
					}
				}
			}
		}
		// Deterministic delivery order (sorted by sender), then scripted
		// reordering if a reorder fault is active.
		for id := range next {
			box := next[id]
			if len(box) < 2 {
				continue
			}
			slices.SortStableFunc(box, func(a, b Message) int { return a.From - b.From })
			if plan != nil && plan.Reordered(round) {
				perm := plan.Perm(len(box))
				shuffled := make([]Message, len(box))
				for i, j := range perm {
					shuffled[i] = box[j]
				}
				next[id] = shuffled
			}
		}
		inboxes = next
	}
	return stats, nil
}

// Broadcast is a helper constructing one message per neighbor of from.
func Broadcast(g *graph.Graph, from int, payload any) []Message {
	nbrs := g.Neighbors(from)
	out := make([]Message, 0, len(nbrs))
	for _, to := range nbrs {
		out = append(out, Message{From: from, To: int(to), Payload: payload})
	}
	return out
}
