// Package distnet is the message-passing substrate for Algorithm 3: a
// synchronous (BSP-style) network of reader nodes. Each node runs its Step
// function once per round — all Steps of a round execute concurrently on
// their own goroutines — and may send messages only to its neighbors in the
// interference graph; messages sent in round t are delivered at round t+1.
//
// The synchronous model matches the paper's setting (slotted time is
// already assumed for tag reading) and makes executions deterministic:
// inboxes are sorted by sender before delivery, so a seeded run always
// produces the same schedule regardless of goroutine interleaving.
package distnet

import (
	"fmt"
	"sort"
	"sync"

	"rfidsched/internal/graph"
)

// Message is a payload in flight between adjacent nodes.
type Message struct {
	From, To int
	Payload  any
}

// Node is the per-reader protocol logic. Implementations receive the round
// number and this round's inbox and return messages to send (delivered next
// round). Returning done=true parks the node: Step is no longer called, and
// when every node is done the network halts.
type Node interface {
	Step(round int, inbox []Message) (outbox []Message, done bool)
}

// Stats summarizes one network run.
type Stats struct {
	Rounds        int
	MessagesSent  int
	MessagesLost  int // dropped by loss injection (subset of MessagesSent)
	MaxInboxSize  int
	ParkedAtRound []int // round at which each node declared done (-1 = never)
}

// Network executes nodes over an interference-graph topology.
type Network struct {
	g *graph.Graph

	// lossRate drops each message independently with this probability
	// (failure injection); lossDraw supplies the randomness.
	lossRate float64
	lossDraw func() float64
}

// NewNetwork builds a network with the given topology.
func NewNetwork(g *graph.Graph) *Network { return &Network{g: g} }

// WithLoss enables message-loss injection: every message is independently
// dropped with probability rate, drawn from draw (a seeded uniform [0,1)
// source keeps runs reproducible). Dropped messages still count in
// Stats.MessagesSent — they were transmitted, just not delivered — and are
// tallied in Stats.MessagesLost. Returns the network for chaining.
func (n *Network) WithLoss(rate float64, draw func() float64) *Network {
	n.lossRate = rate
	n.lossDraw = draw
	return n
}

// Run drives the nodes until all are done or maxRounds elapses. It returns
// an error if a node addresses a non-neighbor (a protocol bug: radios
// cannot reach beyond the interference range) or if maxRounds is exhausted
// with undone nodes.
func (n *Network) Run(nodes []Node, maxRounds int) (*Stats, error) {
	if len(nodes) != n.g.N() {
		return nil, fmt.Errorf("distnet: %d nodes for %d-vertex topology", len(nodes), n.g.N())
	}
	stats := &Stats{ParkedAtRound: make([]int, len(nodes))}
	for i := range stats.ParkedAtRound {
		stats.ParkedAtRound[i] = -1
	}
	done := make([]bool, len(nodes))
	inboxes := make([][]Message, len(nodes))
	remaining := len(nodes)

	type result struct {
		id     int
		outbox []Message
		done   bool
	}

	for round := 0; remaining > 0; round++ {
		if round >= maxRounds {
			return stats, fmt.Errorf("distnet: %d nodes still running after %d rounds", remaining, maxRounds)
		}
		stats.Rounds = round + 1

		results := make([]result, 0, remaining)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for id := range nodes {
			if done[id] {
				continue
			}
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				inbox := inboxes[id]
				sort.Slice(inbox, func(a, b int) bool { return inbox[a].From < inbox[b].From })
				out, d := nodes[id].Step(round, inbox)
				mu.Lock()
				results = append(results, result{id: id, outbox: out, done: d})
				mu.Unlock()
			}(id)
		}
		wg.Wait()
		sort.Slice(results, func(a, b int) bool { return results[a].id < results[b].id })

		next := make([][]Message, len(nodes))
		for _, res := range results {
			if l := len(inboxes[res.id]); l > stats.MaxInboxSize {
				stats.MaxInboxSize = l
			}
			for _, m := range res.outbox {
				if m.From != res.id {
					return stats, fmt.Errorf("distnet: node %d forged sender %d", res.id, m.From)
				}
				if !n.g.HasEdge(m.From, m.To) {
					return stats, fmt.Errorf("distnet: node %d sent beyond radio range to %d", m.From, m.To)
				}
				stats.MessagesSent++
				if n.lossRate > 0 && n.lossDraw != nil && n.lossDraw() < n.lossRate {
					stats.MessagesLost++
					continue
				}
				next[m.To] = append(next[m.To], m)
			}
			if res.done {
				done[res.id] = true
				stats.ParkedAtRound[res.id] = round
				remaining--
			}
		}
		for id := range inboxes {
			inboxes[id] = next[id]
		}
	}
	return stats, nil
}

// Broadcast is a helper constructing one message per neighbor of from.
func Broadcast(g *graph.Graph, from int, payload any) []Message {
	nbrs := g.Neighbors(from)
	out := make([]Message, 0, len(nbrs))
	for _, to := range nbrs {
		out = append(out, Message{From: from, To: int(to), Payload: payload})
	}
	return out
}
