package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	return Config{
		Trials: 2, Seed: 1, NumReaders: 20, NumTags: 300, Side: 80,
		Sweep: []float64{8, 12},
	}
}

func TestUnknownFigure(t *testing.T) {
	if _, err := RunFigure("fig99", tiny()); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestFigureIDs(t *testing.T) {
	ids := FigureIDs()
	if len(ids) != 4 {
		t.Fatalf("ids = %v", ids)
	}
	for _, id := range ids {
		if _, ok := figures[id]; !ok {
			t.Errorf("id %s missing from registry", id)
		}
	}
}

func TestRunFigureOneShot(t *testing.T) {
	res, err := RunFigure("fig9", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "fig9" || len(res.Series) != len(AlgNames) {
		t.Fatalf("result shape: %+v", res)
	}
	for _, s := range res.Series {
		if len(s.Points) != 2 {
			t.Fatalf("%s has %d points, want 2", s.Algorithm, len(s.Points))
		}
		for _, p := range s.Points {
			if p.N != 2 {
				t.Errorf("%s x=%v N=%d, want 2", s.Algorithm, p.X, p.N)
			}
			if p.Mean < 0 {
				t.Errorf("%s negative mean", s.Algorithm)
			}
		}
		if s.Points[0].X >= s.Points[1].X {
			t.Errorf("%s points unsorted", s.Algorithm)
		}
	}
}

func TestRunFigureMCS(t *testing.T) {
	cfg := tiny()
	cfg.Algorithms = []string{"Alg2-Growth", "GHC"}
	res, err := RunFigure("fig7", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.Mean < 1 {
				t.Errorf("%s schedule size %v < 1", s.Algorithm, p.Mean)
			}
		}
	}
}

func TestRunFigureDeterministic(t *testing.T) {
	cfg := tiny()
	cfg.Algorithms = []string{"Alg2-Growth"}
	a, err := RunFigure("fig8", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFigure("fig8", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Series {
		for j := range a.Series[i].Points {
			if a.Series[i].Points[j] != b.Series[i].Points[j] {
				t.Fatalf("nondeterministic: %+v vs %+v", a.Series[i].Points[j], b.Series[i].Points[j])
			}
		}
	}
}

// The headline comparison of the paper, at reduced scale: the proposed
// algorithms must beat Colorwave on one-shot weight at every sweep point.
func TestProposedBeatColorwave(t *testing.T) {
	cfg := tiny()
	cfg.Trials = 3
	cfg.Algorithms = []string{"Alg2-Growth", "Colorwave"}
	res, err := RunFigure("fig9", cfg)
	if err != nil {
		t.Fatal(err)
	}
	growth := res.Series[0]
	ca := res.Series[1]
	for i := range growth.Points {
		if growth.Points[i].Mean <= ca.Points[i].Mean {
			t.Errorf("x=%v: Alg2 %.1f not above CA %.1f",
				growth.Points[i].X, growth.Points[i].Mean, ca.Points[i].Mean)
		}
	}
}

func TestMakeSchedulerUnknown(t *testing.T) {
	if _, err := makeScheduler("nope", nil, 1.25, 1); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestConfigOverrides(t *testing.T) {
	cfg := tiny()
	cfg.FixedLambdaR = 9
	cfg.FixedLambdaSmallR = 4
	cfg.Algorithms = []string{"GHC"}
	res, err := RunFigure("fig8", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series[0].Points) != 2 {
		t.Fatal("override broke sweep")
	}
}

func TestRenderers(t *testing.T) {
	cfg := tiny()
	cfg.Algorithms = []string{"Alg2-Growth", "GHC"}
	res, err := RunFigure("fig9", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ascii, md, csv bytes.Buffer
	if err := res.WriteASCII(&ascii); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ascii.String(), "Alg2-Growth") {
		t.Error("ascii missing series")
	}
	if !strings.Contains(md.String(), "| lambda_R |") {
		t.Errorf("markdown header missing:\n%s", md.String())
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+2*2 { // header + 2 algs * 2 points
		t.Errorf("csv lines = %d:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[1], "fig9,Alg2-Growth,8,") {
		t.Errorf("csv row = %q", lines[1])
	}
}

// TestRunFigureReportsFailedTrials forces one sweep point to fail (a
// negative lambda is rejected by deploy.Generate) and checks that RunFigure
// drains every worker error and reports how many trials failed, rather than
// surfacing only the first error and leaving the rest buffered.
func TestRunFigureReportsFailedTrials(t *testing.T) {
	cfg := tiny()
	cfg.Trials = 3
	cfg.Workers = 2
	cfg.Algorithms = []string{"GHC"}
	cfg.Sweep = []float64{-1, 12} // every trial at x=-1 fails, x=12 succeeds
	_, err := RunFigure("fig6", cfg)
	if err == nil {
		t.Fatal("RunFigure succeeded despite a failing sweep point")
	}
	if !strings.Contains(err.Error(), "3 of 6 trials failed") {
		t.Fatalf("error does not report the failure count: %v", err)
	}
}
