package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"slices"
	"sync"

	"rfidsched/internal/checkpoint"
)

// Sweep checkpointing: a figure or ablation run is a grid of independent
// (x, trial) cells, each minutes-cheap but hours-expensive in aggregate, so
// the durable unit is the cell. Completed cells are appended to a
// checkpoint stream (same versioned, checksummed JSONL envelope as the MCS
// driver's, see internal/checkpoint); a resumed run replays them into the
// aggregation for free and only re-executes the cells that never finished.
// One stream serves a whole multi-figure invocation — cells carry their
// figure id — so `rfidsim -fig all -resume` picks up mid-sweep.
const (
	// KindSweepHeader opens a sweep stream: the Config shape all cells were
	// measured under. Resume refuses a stream whose shape differs — mixing
	// samples from two configurations would be silent data corruption.
	KindSweepHeader = "sweep-header"
	// KindSweepCell records one completed (figure, x, trial) cell.
	KindSweepCell = "sweep-cell"
)

// SweepHeader pins the configuration a sweep stream belongs to.
type SweepHeader struct {
	Trials     int     `json:"trials"`
	Seed       uint64  `json:"seed"`
	NumReaders int     `json:"readers"`
	NumTags    int     `json:"tags"`
	Side       float64 `json:"side"`
	Rho        float64 `json:"rho"`
}

// SweepSample is one labeled measurement inside a cell (an algorithm's
// metric for the paper figures, a series label for ablations).
type SweepSample struct {
	Label string  `json:"label"`
	V     float64 `json:"v"`
}

// SweepCell is the durable record of one completed (figure, x, trial) cell.
type SweepCell struct {
	Figure  string        `json:"figure"`
	X       float64       `json:"x"`
	Trial   int           `json:"trial"`
	Samples []SweepSample `json:"samples"`
}

// SweepCheckpoint makes figure and ablation sweeps durable at cell
// granularity. Safe for concurrent use by the trial worker pool.
type SweepCheckpoint struct {
	mu       sync.Mutex
	w        *checkpoint.Writer
	done     map[string]SweepCell
	restored int
}

func cellKey(figure string, x float64, trial int) string {
	return fmt.Sprintf("%s/x=%g/trial=%d", figure, x, trial)
}

// OpenSweepCheckpoint opens (or resumes) the sweep stream at path for the
// given configuration. With resume set and an existing stream present, its
// surviving cells are loaded — after the header is verified against cfg —
// and the stream is compacted: rewritten from scratch with the header and
// every intact cell, so a torn final line from the crashed writer never
// poisons subsequent appends. Without resume, any previous stream is
// truncated. Close flushes and releases the file.
func OpenSweepCheckpoint(path string, cfg Config, resume bool) (*SweepCheckpoint, error) {
	cfg = cfg.withDefaults()
	hdr := SweepHeader{
		Trials: cfg.Trials, Seed: cfg.Seed,
		NumReaders: cfg.NumReaders, NumTags: cfg.NumTags,
		Side: cfg.Side, Rho: cfg.Rho,
	}
	sc := &SweepCheckpoint{done: map[string]SweepCell{}}

	if resume {
		recs, err := checkpoint.Load(path)
		switch {
		case err == nil:
			if err := sc.ingest(recs, hdr); err != nil {
				return nil, err
			}
		case errors.Is(err, os.ErrNotExist):
			// Nothing to resume: a fresh stream is the correct outcome.
		default:
			return nil, err
		}
	}

	w, err := checkpoint.Create(path)
	if err != nil {
		return nil, err
	}
	sc.w = w
	if err := w.Append(KindSweepHeader, hdr); err != nil {
		w.Close()
		return nil, err
	}
	// Compaction: re-record the surviving cells in deterministic order.
	keys := make([]string, 0, len(sc.done))
	for k := range sc.done {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		if err := w.Append(KindSweepCell, sc.done[k]); err != nil {
			w.Close()
			return nil, err
		}
	}
	return sc, nil
}

// ingest verifies the stream header and indexes its cells (last write wins,
// so a cell re-recorded after an earlier partial run shadows the stale one).
func (sc *SweepCheckpoint) ingest(recs []checkpoint.Record, want SweepHeader) error {
	if len(recs) == 0 {
		return nil
	}
	if recs[0].Kind != KindSweepHeader {
		return fmt.Errorf("experiments: sweep stream starts with %q, want %q", recs[0].Kind, KindSweepHeader)
	}
	var got SweepHeader
	if err := json.Unmarshal(recs[0].Data, &got); err != nil {
		return fmt.Errorf("experiments: sweep header: %w", err)
	}
	if got != want {
		return fmt.Errorf("experiments: sweep checkpoint was recorded under %+v, resuming with %+v (delete the file or match the flags)", got, want)
	}
	for i, rec := range recs[1:] {
		if rec.Kind != KindSweepCell {
			return fmt.Errorf("experiments: sweep record %d has kind %q, want %q", i+1, rec.Kind, KindSweepCell)
		}
		var cell SweepCell
		if err := json.Unmarshal(rec.Data, &cell); err != nil {
			return fmt.Errorf("experiments: sweep cell %d: %w", i+1, err)
		}
		sc.done[cellKey(cell.Figure, cell.X, cell.Trial)] = cell
		sc.restored++
	}
	return nil
}

// Restored reports how many completed cells the stream carried at open.
func (sc *SweepCheckpoint) Restored() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.restored
}

// lookup returns the recorded measurements for a cell, if present. When
// required is non-nil the cell only counts as done if it carries a sample
// for every required label — a stream recorded under a narrower -algs
// subset must not satisfy a broader rerun.
func (sc *SweepCheckpoint) lookup(figure string, x float64, trial int, required []string) (map[string]float64, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	cell, ok := sc.done[cellKey(figure, x, trial)]
	if !ok {
		return nil, false
	}
	vals := make(map[string]float64, len(cell.Samples))
	for _, s := range cell.Samples {
		vals[s.Label] = s.V
	}
	for _, lbl := range required {
		if _, ok := vals[lbl]; !ok {
			return nil, false
		}
	}
	return vals, true
}

// record appends a completed cell to the stream (fsynced) and indexes it.
func (sc *SweepCheckpoint) record(figure string, x float64, trial int, vals map[string]float64) error {
	labels := make([]string, 0, len(vals))
	for lbl := range vals {
		labels = append(labels, lbl)
	}
	slices.Sort(labels)
	cell := SweepCell{Figure: figure, X: x, Trial: trial}
	for _, lbl := range labels {
		cell.Samples = append(cell.Samples, SweepSample{Label: lbl, V: vals[lbl]})
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if err := sc.w.Append(KindSweepCell, cell); err != nil {
		return err
	}
	sc.done[cellKey(figure, x, trial)] = cell
	return nil
}

// Close releases the underlying stream.
func (sc *SweepCheckpoint) Close() error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.w == nil {
		return nil
	}
	err := sc.w.Err()
	if cerr := sc.w.Close(); err == nil {
		err = cerr
	}
	sc.w = nil
	return err
}
