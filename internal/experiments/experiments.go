// Package experiments defines and runs the paper's evaluation (Section VI):
// one definition per figure, multi-trial, aggregated with confidence
// intervals, and rendered as the same series the figures plot.
//
// Setting (paper defaults): 50 readers and 1200 tags uniformly random in a
// 100x100 square; interference radii ~ Poisson(lambdaR), interrogation
// radii ~ Poisson(lambdar) with R_i >= r_i enforced. Five algorithms are
// compared — Alg1 (PTAS), Alg2 (centralized growth), Alg3 (distributed),
// Colorwave (CA) and Greedy Hill-Climbing (GHC) — on two metrics:
//
//	Figures 6/7: size of the covering schedule (time slots to read every
//	             coverable tag), sweeping lambdaR resp. lambdar.
//	Figures 8/9: total well-covered tags in a single time slot, sweeping
//	             lambdar resp. lambdaR.
//
// Trials run in parallel (one goroutine per deployment, paired across
// algorithms so every algorithm sees the same random instances).
package experiments

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"time"

	"rfidsched/internal/baseline"
	"rfidsched/internal/core"
	"rfidsched/internal/deploy"
	"rfidsched/internal/graph"
	"rfidsched/internal/model"
	"rfidsched/internal/obs"
	"rfidsched/internal/stats"
)

// AlgNames lists the algorithms of the paper's evaluation in plot order.
var AlgNames = []string{"Alg1-PTAS", "Alg2-Growth", "Alg3-Distributed", "Colorwave", "GHC"}

// Config parameterizes a figure run.
type Config struct {
	Trials     int     // deployments per sweep point (default 10)
	Seed       uint64  // base seed; trial seeds derive from it
	NumReaders int     // default 50
	NumTags    int     // default 1200
	Side       float64 // default 100
	Rho        float64 // growth threshold for Alg2/Alg3 (default 1.25)
	Workers    int     // parallel trial workers (default NumCPU)

	// SolverWorkers routes a worker count into each trial's schedulers that
	// expose SetWorkers (PTAS, Growth, baseline.Exact). Schedules are
	// bit-identical at every value. Default: 1 (sequential solvers) when
	// Workers > 1 — trial-level parallelism already saturates the cores,
	// and nesting pools would oversubscribe — else NumCPU, so single-trial
	// runs get the full machine at the solver level.
	SolverWorkers int

	// Algorithms filters which algorithms run (nil = all five).
	Algorithms []string

	// FixedLambdaR / FixedLambdaSmallR override the fixed parameter of the
	// sweep (0 = the figure's default).
	FixedLambdaR      float64
	FixedLambdaSmallR float64

	// Sweep overrides the swept values (nil = the figure's default).
	Sweep []float64

	// Tracer, when non-nil, receives slot-level trace events from every
	// run the experiment performs. Trials run in parallel, so the sink
	// must be concurrency-safe (obs.JSONL and obs.Collector are); each
	// run's events are stamped with a "figure/x/trial/algorithm" run id
	// via obs.WithRun so a single trace file stays attributable.
	Tracer obs.Tracer

	// Metrics, when non-nil, receives live driver telemetry from every run
	// (progress gauges, per-phase span histograms; see core.MCSOptions
	// .Metrics) — the registry the `rfidsim -http` telemetry server scrapes.
	// The registry is safe for the harness's parallel trials; counters and
	// histograms aggregate across them, while the progress gauges are
	// last-write-wins and so reflect *some* in-flight run at each instant.
	Metrics *obs.Registry

	// Checkpoint, when non-nil, makes the sweep durable at cell
	// granularity: every completed (figure, x, trial) cell is appended to
	// the stream, and cells already recorded there are replayed into the
	// aggregation instead of re-executed (see OpenSweepCheckpoint). One
	// checkpoint may span several RunFigure/RunAblation calls.
	Checkpoint *SweepCheckpoint

	// SlotDeadline / SlotPollBudget bound each slot's (or one-shot call's)
	// solver work, exactly as in core.MCSOptions: SlotDeadline in
	// wall-clock time, SlotPollBudget in deterministic cooperative polls
	// (precedence when both are set). Truncated calls still yield feasible
	// sets — the anytime contract — so long sweeps trade tail latency for
	// slightly longer schedules instead of hanging on hard instances.
	SlotDeadline   time.Duration
	SlotPollBudget int
}

func (c Config) withDefaults() Config {
	if c.Trials <= 0 {
		c.Trials = 10
	}
	if c.NumReaders <= 0 {
		c.NumReaders = 50
	}
	if c.NumTags <= 0 {
		c.NumTags = 1200
	}
	if c.Side <= 0 {
		c.Side = 100
	}
	if c.Rho <= 1 {
		c.Rho = 1.25
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.SolverWorkers <= 0 {
		if c.Workers > 1 {
			c.SolverWorkers = 1
		} else {
			c.SolverWorkers = runtime.NumCPU()
		}
	}
	if c.Algorithms == nil {
		c.Algorithms = AlgNames
	}
	return c
}

// Point is one aggregated sweep point of one algorithm's series.
type Point struct {
	X    float64
	Mean float64
	CI95 float64
	N    int
}

// Series is one algorithm's curve.
type Series struct {
	Algorithm string
	Points    []Point
}

// FigureResult is a reproduced figure.
type FigureResult struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Figure descriptors.
type figureDef struct {
	id, title, xlabel, ylabel string
	metric                    string // "mcs" or "oneshot"
	sweep                     []float64
	sweepIsLambdaR            bool
	fixedLambdaR              float64
	fixedLambdaSmallR         float64
}

var figures = map[string]figureDef{
	"fig6": {
		id: "fig6", title: "Figure 6: covering schedule size vs lambda_R (lambda_r fixed)",
		xlabel: "lambda_R", ylabel: "schedule size (slots)",
		metric: "mcs", sweep: []float64{6, 8, 10, 12, 14, 16},
		sweepIsLambdaR: true, fixedLambdaSmallR: 5,
	},
	"fig7": {
		id: "fig7", title: "Figure 7: covering schedule size vs lambda_r (lambda_R fixed)",
		xlabel: "lambda_r", ylabel: "schedule size (slots)",
		metric: "mcs", sweep: []float64{3, 4, 5, 6, 7, 8},
		sweepIsLambdaR: false, fixedLambdaR: 12,
	},
	"fig8": {
		id: "fig8", title: "Figure 8: one-shot well-covered tags vs lambda_r (lambda_R fixed)",
		xlabel: "lambda_r", ylabel: "well-covered tags in one slot",
		metric: "oneshot", sweep: []float64{3, 4, 5, 6, 7, 8},
		sweepIsLambdaR: false, fixedLambdaR: 12,
	},
	"fig9": {
		id: "fig9", title: "Figure 9: one-shot well-covered tags vs lambda_R (lambda_r fixed)",
		xlabel: "lambda_R", ylabel: "well-covered tags in one slot",
		metric: "oneshot", sweep: []float64{6, 8, 10, 12, 14, 16},
		sweepIsLambdaR: true, fixedLambdaSmallR: 5,
	},
}

// FigureIDs returns the known figure identifiers in order.
func FigureIDs() []string { return []string{"fig6", "fig7", "fig8", "fig9"} }

// RunFigure reproduces one of the paper's figures.
func RunFigure(id string, cfg Config) (*FigureResult, error) {
	def, ok := figures[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure %q (have %v)", id, FigureIDs())
	}
	cfg = cfg.withDefaults()
	sweep := def.sweep
	if cfg.Sweep != nil {
		sweep = cfg.Sweep
	}
	fixedR := def.fixedLambdaR
	if cfg.FixedLambdaR > 0 {
		fixedR = cfg.FixedLambdaR
	}
	fixedr := def.fixedLambdaSmallR
	if cfg.FixedLambdaSmallR > 0 {
		fixedr = cfg.FixedLambdaSmallR
	}

	type task struct {
		x     float64
		trial int
	}

	var tasks []task
	for _, x := range sweep {
		for tr := 0; tr < cfg.Trials; tr++ {
			tasks = append(tasks, task{x: x, trial: tr})
		}
	}

	samplesCh := make(chan []sample, len(tasks))
	taskCh := make(chan task)
	errCh := make(chan error, len(tasks))
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range taskCh {
				if cfg.Checkpoint != nil {
					if vals, ok := cfg.Checkpoint.lookup(def.id, tk.x, tk.trial, cfg.Algorithms); ok {
						ss := make([]sample, 0, len(cfg.Algorithms))
						for _, alg := range cfg.Algorithms {
							ss = append(ss, sample{x: tk.x, alg: alg, v: vals[alg]})
						}
						samplesCh <- ss
						continue
					}
				}
				ss, err := runTrial(def, cfg, tk.x, tk.trial, fixedR, fixedr)
				if err != nil {
					errCh <- err
					continue
				}
				if cfg.Checkpoint != nil {
					vals := make(map[string]float64, len(ss))
					for _, s := range ss {
						vals[s.alg] = s.v
					}
					if err := cfg.Checkpoint.record(def.id, tk.x, tk.trial, vals); err != nil {
						errCh <- err
						continue
					}
				}
				samplesCh <- ss
			}
		}()
	}
	for _, tk := range tasks {
		taskCh <- tk
	}
	close(taskCh)
	wg.Wait()
	close(samplesCh)
	close(errCh)
	// Drain ALL trial errors before aggregating: reporting only the first
	// one used to leave the rest unread and let a partially-populated
	// figure through on later calls' buffered channels. A single failed
	// trial invalidates the paired design, so the whole figure fails.
	var firstErr error
	failed := 0
	for err := range errCh {
		failed++
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("experiments: %d of %d trials failed, first error: %w", failed, len(tasks), firstErr)
	}

	// Aggregate.
	accs := map[string]map[float64]*stats.Acc{}
	for _, alg := range cfg.Algorithms {
		accs[alg] = map[float64]*stats.Acc{}
	}
	for ss := range samplesCh {
		for _, s := range ss {
			m := accs[s.alg]
			if m == nil {
				continue
			}
			if m[s.x] == nil {
				m[s.x] = &stats.Acc{}
			}
			m[s.x].Add(s.v)
		}
	}

	res := &FigureResult{ID: def.id, Title: def.title, XLabel: def.xlabel, YLabel: def.ylabel}
	for _, alg := range cfg.Algorithms {
		ser := Series{Algorithm: alg}
		xs := make([]float64, 0, len(accs[alg]))
		for x := range accs[alg] {
			xs = append(xs, x)
		}
		slices.Sort(xs)
		for _, x := range xs {
			a := accs[alg][x]
			ser.Points = append(ser.Points, Point{X: x, Mean: a.Mean(), CI95: a.CI95(), N: a.N()})
		}
		res.Series = append(res.Series, ser)
	}
	return res, nil
}

// sample is one (sweep point, algorithm, measurement) triple.
type sample struct {
	x   float64
	alg string
	v   float64
}

// runTrial generates one deployment and measures every requested algorithm
// on it (paired design).
func runTrial(def figureDef, cfg Config, x float64, trial int, fixedR, fixedr float64) (out []sample, err error) {
	lambdaR, lambdar := fixedR, fixedr
	if def.sweepIsLambdaR {
		lambdaR = x
	} else {
		lambdar = x
	}
	if lambdar > lambdaR {
		lambdar = lambdaR // keep the radii rule satisfiable in skewed sweeps
	}
	seed := cfg.Seed*1_000_003 + uint64(trial)*7919 + uint64(x*131)
	dcfg := deploy.Config{
		Seed: seed, NumReaders: cfg.NumReaders, NumTags: cfg.NumTags,
		Side: cfg.Side, LambdaR: lambdaR, LambdaSmallR: lambdar,
	}
	base, err := deploy.Generate(dcfg)
	if err != nil {
		return nil, err
	}
	g := graph.FromSystem(base)

	for _, alg := range cfg.Algorithms {
		sched, err := makeScheduler(alg, g, cfg.Rho, seed)
		if err != nil {
			return nil, err
		}
		if sw, ok := sched.(interface{ SetWorkers(int) }); ok {
			sw.SetWorkers(cfg.SolverWorkers)
		}
		var tr obs.Tracer
		if cfg.Tracer != nil {
			tr = obs.WithRun(cfg.Tracer, fmt.Sprintf("%s/x=%v/trial%d/%s", def.id, x, trial, alg))
			if d, ok := sched.(*core.Distributed); ok {
				d.Tracer = tr
			}
		}
		sys := base.Clone()
		var v float64
		switch def.metric {
		case "mcs":
			res, err := core.RunMCS(sys, sched, core.MCSOptions{
				Tracer:         tr,
				Metrics:        cfg.Metrics,
				SlotDeadline:   cfg.SlotDeadline,
				SlotPollBudget: cfg.SlotPollBudget,
			})
			if err != nil {
				return nil, err
			}
			v = float64(res.Size)
		case "oneshot":
			if ds, ok := sched.(core.DeadlineSetter); ok {
				if cfg.SlotPollBudget > 0 {
					ds.SetDeadline(core.NewPollBudget(cfg.SlotPollBudget))
				} else if cfg.SlotDeadline > 0 {
					ds.SetDeadline(core.NewDeadline(cfg.SlotDeadline))
				}
			}
			X, err := sched.OneShot(sys)
			if err != nil {
				return nil, err
			}
			v = float64(sys.Weight(X))
		default:
			return nil, fmt.Errorf("experiments: unknown metric %q", def.metric)
		}
		out = append(out, sample{x: x, alg: alg, v: v})
	}
	return out, nil
}

func makeScheduler(name string, g *graph.Graph, rho float64, seed uint64) (model.OneShotScheduler, error) {
	switch name {
	case "Alg1-PTAS":
		return core.NewPTAS(), nil
	case "Alg2-Growth":
		return core.NewGrowth(g, rho), nil
	case "Alg3-Distributed":
		return core.NewDistributed(g, rho), nil
	case "Colorwave":
		return baseline.NewColorwave(g, seed), nil
	case "GHC":
		return baseline.GHC{}, nil
	case "Exact":
		return &baseline.Exact{}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown algorithm %q", name)
	}
}
