package experiments

import (
	"bytes"
	"testing"
)

func ablTiny() Config {
	return Config{Trials: 2, Seed: 5, NumReaders: 15, NumTags: 200, Side: 60}
}

func TestAblationIDs(t *testing.T) {
	ids := AblationIDs()
	if len(ids) != 6 {
		t.Fatalf("ids = %v", ids)
	}
	for _, id := range ids {
		if _, err := RunAblation(id, Config{Trials: 1, Seed: 1, NumReaders: 10, NumTags: 80, Side: 40, Sweep: sweepFor(id)}); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}

func sweepFor(id string) []float64 {
	switch id {
	case "abl-rho":
		return []float64{1.25}
	case "abl-channels":
		return []float64{2}
	case "abl-mobility":
		return []float64{1}
	case "abl-airtime":
		return []float64{4}
	case "abl-chaos":
		return []float64{0.2}
	default:
		return []float64{2}
	}
}

func TestUnknownAblation(t *testing.T) {
	if _, err := RunAblation("abl-nope", ablTiny()); err == nil {
		t.Error("unknown ablation accepted")
	}
}

func TestAblRhoSeries(t *testing.T) {
	cfg := ablTiny()
	cfg.Sweep = []float64{1.1, 1.5}
	res, err := RunAblation("abl-rho", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 { // weight and max_r
		t.Fatalf("series: %+v", res.Series)
	}
	for _, s := range res.Series {
		if len(s.Points) != 2 {
			t.Fatalf("%s: %d points", s.Algorithm, len(s.Points))
		}
	}
	// NOTE: weight is NOT monotone in rho — patient growth (small rho)
	// builds bigger local solutions but removes bigger (r̄+1)-balls, which
	// can cost more than it gains (the 1/rho guarantee is only a lower
	// bound). We assert structure and positivity; the trade-off itself is
	// the ablation's finding.
	var weight, maxR Series
	for _, s := range res.Series {
		switch s.Algorithm {
		case "weight":
			weight = s
		case "max_r":
			maxR = s
		}
	}
	if weight.Algorithm == "" || maxR.Algorithm == "" {
		t.Fatal("expected weight and max_r series")
	}
	for _, p := range weight.Points {
		if p.Mean <= 0 {
			t.Errorf("non-positive weight at rho=%v", p.X)
		}
	}
	// The growth radius must not increase with rho (stricter growth
	// condition stops earlier).
	if maxR.Points[0].Mean < maxR.Points[1].Mean {
		t.Errorf("max_r rose with rho: %v -> %v", maxR.Points[0].Mean, maxR.Points[1].Mean)
	}
}

func TestAblChannelsMonotone(t *testing.T) {
	cfg := ablTiny()
	cfg.Sweep = []float64{1, 4}
	res, err := RunAblation("abl-channels", cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	if pts[1].Mean < pts[0].Mean {
		t.Errorf("4 channels (%v) below 1 channel (%v)", pts[1].Mean, pts[0].Mean)
	}
}

func TestAblMobilityDecreasing(t *testing.T) {
	cfg := ablTiny()
	cfg.Trials = 3
	cfg.Sweep = []float64{0, 6}
	res, err := RunAblation("abl-mobility", cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	if pts[0].Mean < 99.9 {
		t.Errorf("zero speed retained %v%%, want 100", pts[0].Mean)
	}
	if pts[1].Mean >= pts[0].Mean {
		t.Errorf("fast drift retained %v%% >= static %v%%", pts[1].Mean, pts[0].Mean)
	}
}

func TestAblSurveyRendersEverywhere(t *testing.T) {
	cfg := ablTiny()
	cfg.Sweep = []float64{0, 4}
	res, err := RunAblation("abl-survey", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var a, m, c, ch bytes.Buffer
	if err := res.WriteASCII(&a); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteMarkdown(&m); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&c); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteChart(&ch); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || m.Len() == 0 || c.Len() == 0 || ch.Len() == 0 {
		t.Error("a renderer produced no output")
	}
}
