package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// tinyCfg keeps sweep-checkpoint tests fast: one worker makes sample
// aggregation order (and thus floating-point accumulation) identical across
// the reference and resumed runs, so FigureResults compare with DeepEqual.
func tinyCfg() Config {
	return Config{
		Trials: 2, Seed: 5, NumReaders: 10, NumTags: 60, Side: 60,
		Workers: 1, SolverWorkers: 1,
		Algorithms: []string{"Alg2-Growth", "GHC"},
		Sweep:      []float64{8, 12},
	}
}

func TestSweepCheckpointResumeReproducesFigure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	cfg := tinyCfg()

	ckpt, err := OpenSweepCheckpoint(path, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = ckpt
	want, err := RunFigure("fig6", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}

	// Kill mid-sweep: keep the header and half the recorded cells, with the
	// last surviving line torn as a crash mid-append would leave it.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(raw), "\n"), "\n")
	keep := 1 + (len(lines)-1)/2
	torn := strings.Join(lines[:keep], "") + lines[keep][:len(lines[keep])/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg2 := tinyCfg()
	ckpt2, err := OpenSweepCheckpoint(path, cfg2, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt2.Close()
	if ckpt2.Restored() == 0 {
		t.Fatal("resume restored no cells from a half-complete stream")
	}
	if ckpt2.Restored() >= len(cfg2.Sweep)*cfg2.Trials {
		t.Fatalf("resume restored %d cells from a truncated stream", ckpt2.Restored())
	}
	cfg2.Checkpoint = ckpt2
	got, err := RunFigure("fig6", cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed figure diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestSweepCheckpointFullResumeSkipsAllWork(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	cfg := tinyCfg()
	ckpt, err := OpenSweepCheckpoint(path, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = ckpt
	want, err := RunFigure("fig6", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ckpt.Close()

	cfg2 := tinyCfg()
	ckpt2, err := OpenSweepCheckpoint(path, cfg2, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt2.Close()
	if n, total := ckpt2.Restored(), len(cfg2.Sweep)*cfg2.Trials; n != total {
		t.Fatalf("restored %d cells, want all %d", n, total)
	}
	cfg2.Checkpoint = ckpt2
	got, err := RunFigure("fig6", cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("fully resumed figure diverged from the original")
	}
}

func TestSweepCheckpointRejectsConfigMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	cfg := tinyCfg()
	ckpt, err := OpenSweepCheckpoint(path, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	ckpt.Close()

	other := tinyCfg()
	other.Seed = 999
	if _, err := OpenSweepCheckpoint(path, other, true); err == nil {
		t.Error("resume accepted a stream recorded under a different seed")
	}
}

func TestSweepCheckpointNarrowerAlgsDoNotSatisfyBroaderRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	cfg := tinyCfg()
	cfg.Algorithms = []string{"GHC"}
	ckpt, err := OpenSweepCheckpoint(path, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = ckpt
	if _, err := RunFigure("fig6", cfg); err != nil {
		t.Fatal(err)
	}
	ckpt.Close()

	// The header matches (algorithms are not part of it), but each cell
	// lacks the Alg2-Growth sample, so every cell must re-run.
	broad := tinyCfg()
	ckpt2, err := OpenSweepCheckpoint(path, broad, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt2.Close()
	broad.Checkpoint = ckpt2
	res, err := RunFigure("fig6", broad)
	if err != nil {
		t.Fatal(err)
	}
	for _, ser := range res.Series {
		for _, p := range ser.Points {
			if p.N != broad.Trials {
				t.Fatalf("%s at x=%v aggregated %d samples, want %d", ser.Algorithm, p.X, p.N, broad.Trials)
			}
		}
	}
}

func TestSweepCheckpointFreshRunIgnoresStaleStream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if err := os.WriteFile(path, []byte("garbage that is not a checkpoint\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Without resume, a pre-existing (even corrupt) file is truncated.
	ckpt, err := OpenSweepCheckpoint(path, tinyCfg(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt.Close()
	if ckpt.Restored() != 0 {
		t.Errorf("fresh open restored %d cells", ckpt.Restored())
	}
	// Resume on a missing file is a fresh start, not an error.
	ckpt2, err := OpenSweepCheckpoint(filepath.Join(t.TempDir(), "missing.ckpt"), tinyCfg(), true)
	if err != nil {
		t.Fatal(err)
	}
	ckpt2.Close()
}

func TestAblationSweepCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "abl.ckpt")
	cfg := tinyCfg()
	cfg.Sweep = []float64{1.1, 1.5}

	ckpt, err := OpenSweepCheckpoint(path, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = ckpt
	want, err := RunAblation("abl-rho", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ckpt.Close()

	cfg2 := tinyCfg()
	cfg2.Sweep = []float64{1.1, 1.5}
	ckpt2, err := OpenSweepCheckpoint(path, cfg2, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt2.Close()
	if n, total := ckpt2.Restored(), len(cfg2.Sweep)*cfg2.Trials; n != total {
		t.Fatalf("restored %d ablation cells, want %d", n, total)
	}
	cfg2.Checkpoint = ckpt2
	got, err := RunAblation("abl-rho", cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("resumed ablation diverged from the original")
	}
}
