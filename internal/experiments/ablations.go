package experiments

import (
	"fmt"
	"slices"
	"sync"

	"rfidsched/internal/anticollision"
	"rfidsched/internal/core"
	"rfidsched/internal/deploy"
	"rfidsched/internal/geom"
	"rfidsched/internal/graph"
	"rfidsched/internal/mobility"
	"rfidsched/internal/obs"
	"rfidsched/internal/slotsim"
	"rfidsched/internal/stats"
	"rfidsched/internal/survey"
)

// Ablation experiments: the design-choice sweeps DESIGN.md calls out,
// packaged with the same multi-trial machinery and rendering as the paper
// figures so `rfidsim -fig <ablation>` and the benchmarks share one
// implementation.
//
//	abl-rho      Algorithm 2/3 growth threshold ρ vs one-shot weight
//	abl-survey   RF-survey shadowing σ vs schedule size on the measured graph
//	abl-channels dense-reading-mode channel count vs one-shot weight
//	abl-mobility reader speed vs frozen-schedule weight retention
//	abl-airtime  total link-layer air time per scheduler (EGA-style metric)
//	abl-chaos    crash fraction x loss x partition grid (fault injection)
//
// Every ablation returns a FigureResult, so all renderers apply.

// AblationIDs lists the available ablations in order.
func AblationIDs() []string {
	return []string{"abl-rho", "abl-survey", "abl-channels", "abl-mobility", "abl-airtime", "abl-chaos"}
}

// RunAblation executes one ablation under cfg (Trials, Seed, deployment
// shape and Workers are honored; Algorithms/Sweep are ablation specific).
func RunAblation(id string, cfg Config) (*FigureResult, error) {
	cfg = cfg.withDefaults()
	switch id {
	case "abl-rho":
		return ablRho(cfg)
	case "abl-survey":
		return ablSurvey(cfg)
	case "abl-channels":
		return ablChannels(cfg)
	case "abl-mobility":
		return ablMobility(cfg)
	case "abl-airtime":
		return ablAirtime(cfg)
	case "abl-chaos":
		return ablChaos(cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown ablation %q (have %v)", id, AblationIDs())
	}
}

// ablationSweep runs fn(sys, g, x, trial) for every (x, trial) pair in
// parallel and aggregates per series label.
func ablationSweep(cfg Config, sweep []float64, title, xlabel, ylabel string,
	fn func(seed uint64, x float64) (map[string]float64, error)) (*FigureResult, error) {

	type task struct {
		x     float64
		trial int
	}
	var tasks []task
	for _, x := range sweep {
		for tr := 0; tr < cfg.Trials; tr++ {
			tasks = append(tasks, task{x, tr})
		}
	}
	type res struct {
		x    float64
		vals map[string]float64
	}
	taskCh := make(chan task)
	resCh := make(chan res, len(tasks))
	errCh := make(chan error, len(tasks))
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range taskCh {
				if cfg.Checkpoint != nil {
					// Ablation series labels are not known up front, so any
					// recorded cell counts as done (required labels nil).
					if vals, ok := cfg.Checkpoint.lookup(title, tk.x, tk.trial, nil); ok {
						resCh <- res{x: tk.x, vals: vals}
						continue
					}
				}
				// The swept variable is an ALGORITHM parameter here (rho,
				// channels, speed, survey noise), so — unlike the paper
				// figures where x shapes the deployment — the deployment
				// seed depends only on the trial: every x sees the same
				// paired instances.
				seed := cfg.Seed*999983 + uint64(tk.trial)*7919
				vals, err := fn(seed, tk.x)
				if err != nil {
					errCh <- err
					continue
				}
				if cfg.Checkpoint != nil {
					if err := cfg.Checkpoint.record(title, tk.x, tk.trial, vals); err != nil {
						errCh <- err
						continue
					}
				}
				resCh <- res{x: tk.x, vals: vals}
			}
		}()
	}
	for _, tk := range tasks {
		taskCh <- tk
	}
	close(taskCh)
	wg.Wait()
	close(resCh)
	close(errCh)
	// Same contract as RunFigure: drain every error, fail the whole sweep.
	var firstErr error
	failed := 0
	for err := range errCh {
		failed++
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("experiments: %d of %d trials failed, first error: %w", failed, len(tasks), firstErr)
	}

	accs := map[string]map[float64]*stats.Acc{}
	var labels []string
	for r := range resCh {
		for label, v := range r.vals {
			if accs[label] == nil {
				accs[label] = map[float64]*stats.Acc{}
				labels = append(labels, label)
			}
			if accs[label][r.x] == nil {
				accs[label][r.x] = &stats.Acc{}
			}
			accs[label][r.x].Add(v)
		}
	}
	slices.Sort(labels)

	out := &FigureResult{ID: title, Title: title, XLabel: xlabel, YLabel: ylabel}
	for _, label := range labels {
		ser := Series{Algorithm: label}
		for _, x := range sweep {
			if a := accs[label][x]; a != nil {
				ser.Points = append(ser.Points, Point{X: x, Mean: a.Mean(), CI95: a.CI95(), N: a.N()})
			}
		}
		out.Series = append(out.Series, ser)
	}
	return out, nil
}

func (c Config) deployment(seed uint64, lambdaR, lambdar float64) (deploy.Config, error) {
	d := deploy.Config{
		Seed: seed, NumReaders: c.NumReaders, NumTags: c.NumTags,
		Side: c.Side, LambdaR: lambdaR, LambdaSmallR: lambdar,
	}
	return d, d.Validate()
}

func ablRho(cfg Config) (*FigureResult, error) {
	sweep := cfg.Sweep
	if sweep == nil {
		sweep = []float64{1.05, 1.1, 1.25, 1.5, 2.0}
	}
	return ablationSweep(cfg, sweep,
		"Ablation: growth threshold rho vs one-shot weight and radius",
		"rho", "weight / max radius",
		func(seed uint64, rho float64) (map[string]float64, error) {
			dcfg, err := cfg.deployment(seed, 12, 5)
			if err != nil {
				return nil, err
			}
			sys, err := deploy.Generate(dcfg)
			if err != nil {
				return nil, err
			}
			g := graph.FromSystem(sys)
			alg := core.NewGrowth(g, rho)
			X, err := alg.OneShot(sys)
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"weight": float64(sys.Weight(X)),
				"max_r":  float64(alg.LastMaxRadius),
			}, nil
		})
}

func ablSurvey(cfg Config) (*FigureResult, error) {
	sweep := cfg.Sweep
	if sweep == nil {
		sweep = []float64{0, 2, 4, 6, 8}
	}
	return ablationSweep(cfg, sweep,
		"Ablation: survey shadowing sigma vs schedule quality on the measured graph",
		"sigma (dB)", "slots / edge accuracy (%)",
		func(seed uint64, sigma float64) (map[string]float64, error) {
			dcfg, err := cfg.deployment(seed, 12, 5)
			if err != nil {
				return nil, err
			}
			sys, err := deploy.Generate(dcfg)
			if err != nil {
				return nil, err
			}
			est, rep, err := survey.EstimateGraph(sys, survey.Params{ShadowSigma: sigma, Seed: seed})
			if err != nil {
				return nil, err
			}
			res, err := core.RunMCS(sys.Clone(), core.NewGrowth(est, cfg.Rho), core.MCSOptions{})
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"slots":      float64(res.Size),
				"precision%": 100 * rep.Precision(),
				"recall%":    100 * rep.Recall(),
			}, nil
		})
}

func ablChannels(cfg Config) (*FigureResult, error) {
	sweep := cfg.Sweep
	if sweep == nil {
		sweep = []float64{1, 2, 4, 8}
	}
	return ablationSweep(cfg, sweep,
		"Ablation: dense-reading-mode channels vs one-shot weight",
		"channels", "well-covered tags in one slot",
		func(seed uint64, ch float64) (map[string]float64, error) {
			dcfg, err := cfg.deployment(seed, 14, 6)
			if err != nil {
				return nil, err
			}
			sys, err := deploy.Generate(dcfg)
			if err != nil {
				return nil, err
			}
			plan, err := (core.MultiChannel{Channels: int(ch)}).OneShot(sys)
			if err != nil {
				return nil, err
			}
			return map[string]float64{"weight": float64(plan.Weight(sys))}, nil
		})
}

// ablAirtime compares total link-layer air time (micro slots to inventory
// the whole population) across schedulers — the metric EGA-style protocols
// optimize, computed by the slot simulator with Vogt dynamic-frame ALOHA.
// The sweep axis indexes the scheduler (0=Alg1, 1=Alg2, 2=Alg3, 3=GHC,
// 4=CA) so the table reads as one row per algorithm.
func ablAirtime(cfg Config) (*FigureResult, error) {
	sweep := cfg.Sweep
	if sweep == nil {
		sweep = []float64{0, 1, 2, 3, 4}
	}
	names := AlgNames
	return ablationSweep(cfg, sweep,
		"Ablation: total air time (Vogt-ALOHA micro slots) per scheduler",
		"algorithm index (0=Alg1 1=Alg2 2=Alg3 3=CA 4=GHC)", "micro slots / macro slots",
		func(seed uint64, idx float64) (map[string]float64, error) {
			i := int(idx)
			if i < 0 || i >= len(names) {
				return nil, fmt.Errorf("experiments: algorithm index %v out of range", idx)
			}
			dcfg, err := cfg.deployment(seed, 12, 5)
			if err != nil {
				return nil, err
			}
			sys, err := deploy.Generate(dcfg)
			if err != nil {
				return nil, err
			}
			g := graph.FromSystem(sys)
			sched, err := makeScheduler(names[i], g, cfg.Rho, seed)
			if err != nil {
				return nil, err
			}
			var tr obs.Tracer
			if cfg.Tracer != nil {
				tr = obs.WithRun(cfg.Tracer, fmt.Sprintf("abl-airtime/%s/seed=%d", names[i], seed))
				if d, ok := sched.(*core.Distributed); ok {
					d.Tracer = tr
				}
			}
			res, err := slotsim.Run(sys, sched, slotsim.Config{
				Link:   anticollision.VogtALOHA{},
				Seed:   seed,
				Tracer: tr,
			})
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"micro_slots": float64(res.TotalMicroSlots),
				"macro_slots": float64(res.MacroSlots),
			}, nil
		})
}

func ablMobility(cfg Config) (*FigureResult, error) {
	sweep := cfg.Sweep
	if sweep == nil {
		sweep = []float64{0, 1, 2, 4, 8}
	}
	return ablationSweep(cfg, sweep,
		"Ablation: reader speed vs frozen-schedule weight retention after 10 slots",
		"speed (units/slot)", "% of initial weight retained",
		func(seed uint64, speed float64) (map[string]float64, error) {
			dcfg, err := cfg.deployment(seed, 12, 5)
			if err != nil {
				return nil, err
			}
			sys, err := deploy.Generate(dcfg)
			if err != nil {
				return nil, err
			}
			g := graph.FromSystem(sys)
			d := mobility.NewDrift(sys.NumReaders(), geom.R2(0, 0, cfg.Side, cfg.Side), speed, seed)
			res, err := mobility.MeasureStaleness(sys, core.NewGrowth(g, cfg.Rho), d, 10)
			if err != nil {
				return nil, err
			}
			if res.Weights[0] == 0 {
				return map[string]float64{"retained%": 100}, nil
			}
			return map[string]float64{
				"retained%": 100 * float64(res.Weights[len(res.Weights)-1]) / float64(res.Weights[0]),
			}, nil
		})
}
