package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblChaosGrid(t *testing.T) {
	cfg := tiny()
	cfg.NumReaders = 14
	cfg.NumTags = 150
	cfg.Side = 60
	cfg.Sweep = []float64{0, 0.25}
	res, err := RunAblation("abl-chaos", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 {
		t.Fatal("chaos grid produced no series")
	}
	byLabel := map[string]Series{}
	for _, s := range res.Series {
		byLabel[s.Algorithm] = s
	}
	for _, want := range []string{"failed%", "degraded%"} {
		if _, ok := byLabel[want]; !ok {
			t.Errorf("missing aggregate series %q (have %v)", want, labelsOf(res))
		}
	}
	// With a quarter of the fleet crashing, some run must report
	// degradation; with nobody crashing and no faults at the slot layer,
	// none may.
	deg := byLabel["degraded%"]
	if len(deg.Points) != 2 {
		t.Fatalf("degraded%% has %d points, want 2", len(deg.Points))
	}
	if deg.Points[0].X == 0 && deg.Points[0].Mean != 0 {
		t.Errorf("zero crash fraction reported %.1f%% degraded runs", deg.Points[0].Mean)
	}
	if deg.Points[1].Mean == 0 {
		t.Errorf("25%% crash fraction reported no degraded runs")
	}

	var buf bytes.Buffer
	if err := res.WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "chaos") {
		t.Error("rendered table missing title")
	}
}

func labelsOf(res *FigureResult) []string {
	var out []string
	for _, s := range res.Series {
		out = append(out, s.Algorithm)
	}
	return out
}

func TestAblChaosListedAndDeterministic(t *testing.T) {
	found := false
	for _, id := range AblationIDs() {
		if id == "abl-chaos" {
			found = true
		}
	}
	if !found {
		t.Fatal("abl-chaos not registered")
	}

	cfg := tiny()
	cfg.Trials = 1
	cfg.NumReaders = 12
	cfg.NumTags = 100
	cfg.Side = 50
	cfg.Sweep = []float64{0.2}
	run := func() string {
		res, err := RunAblation("abl-chaos", cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if r1, r2 := run(), run(); r1 != r2 {
		t.Errorf("chaos ablation not reproducible:\n%s\nvs\n%s", r1, r2)
	}
}
