package experiments

import (
	"fmt"
	"io"

	"rfidsched/internal/tables"
	"rfidsched/internal/viz"
)

// ToTable renders the figure as a wide table: one row per sweep value, one
// column per algorithm (mean ± CI95), matching how the paper's figures are
// read.
func (f *FigureResult) ToTable() *tables.Table {
	t := &tables.Table{Title: f.Title}
	t.Header = append(t.Header, f.XLabel)
	for _, s := range f.Series {
		t.Header = append(t.Header, s.Algorithm)
	}
	// Collect the x grid from the first non-empty series.
	var xs []float64
	for _, s := range f.Series {
		if len(s.Points) > 0 {
			for _, p := range s.Points {
				xs = append(xs, p.X)
			}
			break
		}
	}
	for _, x := range xs {
		row := []any{x}
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = fmt.Sprintf("%.1f±%.1f", p.Mean, p.CI95)
					break
				}
			}
			row = append(row, cell)
		}
		t.Add(row...)
	}
	return t
}

// WriteASCII renders the figure to w as an aligned text table.
func (f *FigureResult) WriteASCII(w io.Writer) error { return f.ToTable().WriteASCII(w) }

// WriteMarkdown renders the figure to w as a Markdown table.
func (f *FigureResult) WriteMarkdown(w io.Writer) error { return f.ToTable().WriteMarkdown(w) }

// WriteChart renders the figure as an ASCII line chart — the closest
// terminal analogue of the paper's plots.
func (f *FigureResult) WriteChart(w io.Writer) error {
	c := &viz.Chart{Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel}
	for _, s := range f.Series {
		vs := viz.Series{Name: s.Algorithm}
		for _, p := range s.Points {
			vs.Points = append(vs.Points, viz.Point{X: p.X, Y: p.Mean})
		}
		c.Series = append(c.Series, vs)
	}
	return c.Render(w)
}

// WriteCSV renders the figure to w as CSV in long form (algorithm, x, mean,
// ci95, n) — friendlier for downstream plotting than the wide table.
func (f *FigureResult) WriteCSV(w io.Writer) error {
	t := &tables.Table{Header: []string{"figure", "algorithm", "x", "mean", "ci95", "n"}}
	for _, s := range f.Series {
		for _, p := range s.Points {
			t.Add(f.ID, s.Algorithm, p.X, p.Mean, p.CI95, p.N)
		}
	}
	return t.WriteCSV(w)
}
