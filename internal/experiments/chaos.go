package experiments

import (
	"fmt"

	"rfidsched/internal/core"
	"rfidsched/internal/deploy"
	"rfidsched/internal/fault"
	"rfidsched/internal/graph"
	"rfidsched/internal/obs"
)

// ablChaos is the chaos sweep: the distributed protocol (Algorithm 3 behind
// a Retrying wrapper) drives a full covering schedule while faults are
// injected at both layers — message loss and a healing network partition
// against the protocol rounds, fail-stop reader crashes against the
// schedule slots. The x axis sweeps the crashed fraction of the fleet; the
// four slots series pair loss {0, 15%} with partition {off, on} on the same
// deployments, and the aggregate series report how often runs failed
// outright (retry budget exhausted) or completed degraded.
//
// The honesty contract under test: every cell of the grid ends in a
// completed schedule, a Degraded result, or a clean error — never a hang or
// silent garbage.
func ablChaos(cfg Config) (*FigureResult, error) {
	sweep := cfg.Sweep
	if sweep == nil {
		sweep = []float64{0, 0.1, 0.2, 0.3}
	}
	type combo struct {
		label     string
		loss      float64
		partition bool
	}
	combos := []combo{
		{"slots[loss=0,part=off]", 0, false},
		{"slots[loss=.15,part=off]", 0.15, false},
		{"slots[loss=0,part=on]", 0, true},
		{"slots[loss=.15,part=on]", 0.15, true},
	}
	return ablationSweep(cfg, sweep,
		"Ablation: chaos grid — crash fraction x loss x partition (Alg3 + retry + repair)",
		"crashed fraction of fleet", "schedule slots / % of runs",
		func(seed uint64, frac float64) (map[string]float64, error) {
			dcfg, err := cfg.deployment(seed, 12, 5)
			if err != nil {
				return nil, err
			}
			sys, err := deploy.Generate(dcfg)
			if err != nil {
				return nil, err
			}
			g := graph.FromSystem(sys)
			n := sys.NumReaders()
			var crashEvents []fault.Event
			if k := int(frac*float64(n) + 0.5); k > 0 {
				crashEvents = fault.CrashNodes(fault.SampleNodes(n, k, seed), 1)
			}
			// Partition scenario: cut every other interference edge for the
			// protocol's first 40 rounds, then heal. Flooding redundancy
			// must route around it or the retry layer re-runs the election.
			var cut [][2]int
			for u := 0; u < n; u++ {
				for _, v := range g.Neighbors(u) {
					if int(v) > u && (u+int(v))%2 == 0 {
						cut = append(cut, [2]int{u, int(v)})
					}
				}
			}

			vals := map[string]float64{}
			failed, degraded := 0.0, 0.0
			for _, cb := range combos {
				var tr obs.Tracer
				if cfg.Tracer != nil {
					tr = obs.WithRun(cfg.Tracer,
						fmt.Sprintf("abl-chaos/frac=%v/seed=%d/%s", frac, seed, cb.label))
				}
				d := core.NewDistributed(g, cfg.Rho)
				d.LossRate = cb.loss
				d.LossSeed = seed
				d.Strict = true
				d.Tracer = tr
				if cb.partition && len(cut) > 0 {
					d.Faults = &fault.Scenario{Seed: seed, Events: []fault.Event{
						fault.Partition(cut, 0, 40),
					}}
				}
				sched := &core.Retrying{
					Inner: d, MaxAttempts: 3, Seed: seed,
					// A retry models re-running the election later: the
					// network's randomness (loss, duplication) re-rolls.
					OnRetry: func(attempt int, _ error) {
						d.LossSeed = seed + uint64(attempt)*1000003
						if d.Faults != nil {
							d.Faults.Seed = d.LossSeed
						}
					},
				}
				var faults *fault.Scenario
				if len(crashEvents) > 0 {
					faults = &fault.Scenario{Seed: seed, Events: crashEvents}
				}
				res, err := core.RunMCS(sys.Clone(), sched, core.MCSOptions{
					MaxSlots: 500,
					Faults:   faults,
					Tracer:   tr,
					Metrics:  cfg.Metrics,
				})
				if err != nil {
					// Retry-exhausted protocol failures are data, not run
					// aborts: the grid's whole point is charting them.
					failed += 100.0 / float64(len(combos))
					continue
				}
				if res.Incomplete {
					return nil, fmt.Errorf("experiments: chaos run hit MaxSlots without declaring loss (%s)", cb.label)
				}
				if res.Degraded {
					degraded += 100.0 / float64(len(combos))
				}
				vals[cb.label] = float64(res.Size)
			}
			vals["failed%"] = failed
			vals["degraded%"] = degraded
			return vals, nil
		})
}
