package core

import (
	"runtime"
	"testing"

	"rfidsched/internal/deploy"
	"rfidsched/internal/graph"
	"rfidsched/internal/model"
	"rfidsched/internal/randx"
)

// Determinism property tests for the parallel solvers: PTAS, Growth (through
// its mwfs.Workers pass-through) and ExactMCS must return bit-identical
// results at every worker count, including under read churn and fault masks.

var detWorkerCounts = []int{0, 1, 2, 8, runtime.NumCPU()}

// churn marks a random quarter of the tags read and a random 15% of the
// readers down, as the mwfs differential harness does.
func churn(sys *model.System, rng *randx.RNG) {
	for tg := 0; tg < sys.NumTags(); tg++ {
		if rng.Bool(0.25) {
			sys.MarkRead(tg)
		}
	}
	for v := 0; v < sys.NumReaders(); v++ {
		if rng.Bool(0.15) {
			sys.SetReaderDown(v, true)
		}
	}
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPTASParallelDeterminism(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		seed := uint64(5100 + trial*31)
		sys, _ := quickSystem(seed)
		rng := randx.New(seed ^ 0xbeef)
		churn(sys, rng)

		ref := NewPTAS()
		refSet, err := ref.OneShot(sys)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range detWorkerCounts {
			p := NewPTAS()
			p.Workers = w
			got, err := p.OneShot(sys)
			if err != nil {
				t.Fatal(err)
			}
			if !sameSet(refSet, got) {
				t.Fatalf("trial %d: PTAS Workers=%d returned %v, sequential %v", trial, w, got, refSet)
			}
			if p.LastShift != ref.LastShift {
				t.Fatalf("trial %d: PTAS Workers=%d winning shift %v, sequential %v", trial, w, p.LastShift, ref.LastShift)
			}
			if p.LastEvals != ref.LastEvals {
				t.Fatalf("trial %d: PTAS Workers=%d evals %d, sequential %d", trial, w, p.LastEvals, ref.LastEvals)
			}
		}
	}
}

func TestGrowthParallelDeterminism(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		seed := uint64(6200 + trial*17)
		sys, g := quickSystem(seed)
		rng := randx.New(seed ^ 0xfeed)
		churn(sys, rng)

		refSet, err := NewGrowth(g, 1.25).OneShot(sys)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range detWorkerCounts {
			gr := NewGrowth(g, 1.25)
			gr.SetWorkers(w)
			got, err := gr.OneShot(sys)
			if err != nil {
				t.Fatal(err)
			}
			if !sameSet(refSet, got) {
				t.Fatalf("trial %d: Growth Workers=%d returned %v, sequential %v", trial, w, got, refSet)
			}
		}
	}
}

// TestGrowthParallelDeterminismDense repeats the Growth check on deployments
// dense enough (lambda_R 16 on a 60-side square) that the interference graph
// prunes inside the solver's parallel frontier depth — the regime where the
// subtree resume-index regression showed up as duplicated readers in local
// solutions and longer schedules. The seeds include the ones that caught it.
func TestGrowthParallelDeterminismDense(t *testing.T) {
	for _, seed := range []uint64{15, 39, 51, 84, 105, 200, 201, 202, 203} {
		run := func(workers int) *MCSResult {
			sys, err := deploy.Generate(deploy.Config{
				Seed: seed, NumReaders: 14, NumTags: 150,
				Side: 60, LambdaR: 16, LambdaSmallR: 5,
			})
			if err != nil {
				t.Fatal(err)
			}
			g := graph.FromSystem(sys)
			res, err := RunMCS(sys, NewGrowth(g, 1.25), MCSOptions{
				SolverWorkers: workers, RecordSlots: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		ref := run(0)
		for _, w := range detWorkerCounts {
			got := run(w)
			if got.Size != ref.Size || got.TotalRead != ref.TotalRead {
				t.Fatalf("seed %d: SolverWorkers=%d gave %d slots/%d read, sequential %d/%d",
					seed, w, got.Size, got.TotalRead, ref.Size, ref.TotalRead)
			}
			for s := range ref.Slots {
				if !sameSet(ref.Slots[s].Active, got.Slots[s].Active) {
					t.Fatalf("seed %d: SolverWorkers=%d slot %d active %v, sequential %v",
						seed, w, s, got.Slots[s].Active, ref.Slots[s].Active)
				}
			}
		}
	}
}

// TestMCSSolverWorkersDeterminism drives full covering-schedule runs through
// the MCSOptions.SolverWorkers plumbing: same schedule length, same total,
// slot for slot, at every worker count.
func TestMCSSolverWorkersDeterminism(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		seed := uint64(7300 + trial*13)
		run := func(workers int) *MCSResult {
			sys, g := quickSystem(seed)
			res, err := RunMCS(sys, NewGrowth(g, 1.25), MCSOptions{
				SolverWorkers: workers, RecordSlots: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		ref := run(0)
		for _, w := range detWorkerCounts {
			got := run(w)
			if got.Size != ref.Size || got.TotalRead != ref.TotalRead {
				t.Fatalf("trial %d: SolverWorkers=%d gave %d slots/%d read, sequential %d/%d",
					trial, w, got.Size, got.TotalRead, ref.Size, ref.TotalRead)
			}
			for s := range ref.Slots {
				if !sameSet(ref.Slots[s].Active, got.Slots[s].Active) {
					t.Fatalf("trial %d: SolverWorkers=%d slot %d active %v, sequential %v",
						trial, w, s, got.Slots[s].Active, ref.Slots[s].Active)
				}
			}
		}
	}
}

func TestExactMCSParallelDeterminism(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		seed := uint64(40 + trial)
		sys := tinyInstance(t, seed)
		if trial%2 == 1 {
			// Pre-read churn: the BFS must agree from non-empty start states
			// too. (No down-mask churn here — ExactMCS enumerates geometry,
			// and killing readers can legitimately make instances trivial.)
			rng := randx.New(seed ^ 0xd00d)
			for tg := 0; tg < sys.NumTags(); tg++ {
				if rng.Bool(0.3) {
					sys.MarkRead(tg)
				}
			}
		}
		ref, refErr := ExactMCS{}.Solve(sys)
		for _, w := range detWorkerCounts {
			got, err := ExactMCS{Workers: w}.Solve(sys)
			if (err == nil) != (refErr == nil) {
				t.Fatalf("trial %d: Workers=%d err=%v, sequential err=%v", trial, w, err, refErr)
			}
			if got != ref {
				t.Fatalf("trial %d: ExactMCS Workers=%d = %d, sequential = %d", trial, w, got, ref)
			}
		}
	}
}
