package core

import (
	"fmt"
	"sort"
	"strings"

	"rfidsched/internal/geom"
	"rfidsched/internal/model"
	"rfidsched/internal/mwfs"
)

// PTAS is Algorithm 1: the polynomial-time approximation scheme for the
// One-Shot Schedule Problem when reader locations are known and radii are
// heterogeneous (Section IV).
//
// The instance is scaled so the largest interference radius is 1/2, disks
// are binned into levels by radius (level j holds disks with
// 1/(k+1)^(j+1) < 2R <= 1/(k+1)^j), and for each of the k^2 (r,s)-shiftings
// the disks that hit a shifted grid line of their level are discarded
// ("survive" filter). The survivors nest perfectly: a survive disk of level
// j lies strictly inside exactly one j-square, and every shifted line of a
// coarse level persists at all finer levels, so j-squares tile into
// (k+1)^2 child (j+1)-squares. A dynamic program then walks the square
// hierarchy: in each square it enumerates up to Lambda independent disks of
// the square's level, recurses into the children with the chosen disks
// threaded through as context, and keeps the candidate with the largest
// exact weight. Theorem 2 guarantees some shifting preserves a
// (1-1/k)^2 fraction of the optimal weight.
//
// Faithfulness note (see DESIGN.md §6): because w is subadditive the DP
// evaluates every candidate with the exact weight function over the full
// union (cheap at paper scale) rather than summing child values; context
// filtering to intersecting disks is lossless because interrogation regions
// are contained in interference disks.
type PTAS struct {
	// K is the shifting parameter k >= 2; the approximation factor is
	// (1-1/k)^2 and the work grows with k^2 shiftings. Default 3.
	K int

	// Lambda caps the number of same-level disks chosen per square per DP
	// node. Default 6. Larger values improve weight on dense instances at
	// exponential enumeration cost.
	Lambda int

	// MaxEvals caps candidate evaluations per shifting as a safety valve on
	// adversarial instances; 0 means the default (2M). Exhausting the
	// budget degrades quality, never feasibility.
	MaxEvals int

	// LastEvals reports candidate evaluations used by the most recent
	// OneShot call, summed over shiftings. Diagnostic; not concurrency-safe.
	LastEvals int

	// LastShift reports the winning (r,s) shifting of the last call.
	LastShift [2]int
}

// NewPTAS returns Algorithm 1 with the default parameters (k=3, Λ=6).
func NewPTAS() *PTAS { return &PTAS{K: 3, Lambda: 6} }

// Name implements model.OneShotScheduler.
func (p *PTAS) Name() string { return "Alg1-PTAS" }

// OneShot implements model.OneShotScheduler.
func (p *PTAS) OneShot(sys *model.System) ([]int, error) {
	k := p.K
	if k < 2 {
		k = 3
	}
	lambda := p.Lambda
	if lambda <= 0 {
		lambda = 6
	}
	maxEvals := p.MaxEvals
	if maxEvals <= 0 {
		maxEvals = 2 << 20
	}
	n := sys.NumReaders()
	if n == 0 {
		return nil, nil
	}

	inst := newPTASInstance(sys, k)
	p.LastEvals = 0

	var best []int
	bestW := -1
	for r := 0; r < k; r++ {
		for s := 0; s < k; s++ {
			dp := &ptasDP{
				inst:   inst,
				grid:   geom.ShiftGrid{K: k, R: r, S: s},
				lambda: lambda,
				budget: maxEvals,
				memo:   make(map[string][]int),
			}
			set := dp.run()
			p.LastEvals += dp.evals
			// Augmentation pass: the (r,s)-shifting discarded disks that hit
			// grid lines purely for the analysis; greedily re-adding any
			// discarded reader that stays independent and increases the
			// weight can only help, so Theorem 2's bound is preserved while
			// the small-k survive loss is largely recovered.
			set = augmentFeasible(sys, set)
			if w := sys.Weight(set); w > bestW {
				bestW = w
				best = set
				p.LastShift = [2]int{r, s}
			}
		}
	}
	sort.Ints(best)
	return best, nil
}

// augmentFeasible greedily extends X with readers that keep the set
// feasible and strictly increase its weight, largest marginal first. The
// working set is held in a WeightEval so each candidate probe costs O(Δ)
// (MarginalGain) rather than a full weight recompute — this is both the
// PTAS augmentation pass and the covering-schedule stall fallback, so it
// sits on the hot path of every driver.
func augmentFeasible(sys *model.System, X []int) []int {
	in := make([]bool, sys.NumReaders())
	eval := model.NewWeightEval(sys)
	defer eval.Close()
	for _, v := range X {
		in[v] = true
		eval.Add(v)
	}
	cur := append([]int(nil), X...)
	curW := eval.Weight()
	for {
		bestV, bestW := -1, curW
		for v := 0; v < sys.NumReaders(); v++ {
			if in[v] {
				continue
			}
			feasible := true
			for _, u := range cur {
				if !sys.Independent(u, v) {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			if w := curW + eval.MarginalGain(v); w > bestW {
				bestV, bestW = v, w
			}
		}
		if bestV < 0 {
			return cur
		}
		cur = append(cur, bestV)
		in[bestV] = true
		eval.Add(bestV)
		curW = bestW
	}
}

// ptasInstance holds the scaled geometry shared by all shiftings.
type ptasInstance struct {
	sys    *model.System
	k      int
	disks  []geom.Disk // scaled interference disks, index == reader index
	levels []int
	maxLvl int
}

func newPTASInstance(sys *model.System, k int) *ptasInstance {
	n := sys.NumReaders()
	inst := &ptasInstance{sys: sys, k: k, disks: make([]geom.Disk, n), levels: make([]int, n)}
	maxR := 0.0
	for i := 0; i < n; i++ {
		if R := sys.Reader(i).InterferenceR; R > maxR {
			maxR = R
		}
	}
	if maxR <= 0 {
		maxR = 1
	}
	scale := 0.5 / maxR
	for i := 0; i < n; i++ {
		rd := sys.Reader(i)
		inst.disks[i] = geom.Disk{Center: rd.Pos.Scale(scale), R: rd.InterferenceR * scale}
		inst.levels[i] = geom.DiskLevel(inst.disks[i].R, k)
		if inst.levels[i] > inst.maxLvl {
			inst.maxLvl = inst.levels[i]
		}
	}
	return inst
}

type sqKey struct{ level, ix, iy int }

// ptasDP is the per-shifting dynamic program.
type ptasDP struct {
	inst   *ptasInstance
	grid   geom.ShiftGrid
	lambda int
	budget int
	evals  int

	disksAt    map[sqKey][]int // survive disks of the key's level in that square
	hasContent map[sqKey]bool  // square subtree contains at least one survive disk
	roots      map[sqKey]bool  // content-bearing level-0 squares
	memo       map[string][]int
}

func (dp *ptasDP) run() []int {
	dp.classify()
	var total []int
	// Deterministic root order.
	rootKeys := make([]sqKey, 0, len(dp.roots))
	for kk := range dp.roots {
		rootKeys = append(rootKeys, kk)
	}
	sort.Slice(rootKeys, func(a, b int) bool {
		if rootKeys[a].ix != rootKeys[b].ix {
			return rootKeys[a].ix < rootKeys[b].ix
		}
		return rootKeys[a].iy < rootKeys[b].iy
	})
	// Survive disks in different 0-squares are pairwise independent and
	// their interrogation regions disjoint, so root solutions combine by
	// plain union with additive weights.
	for _, rk := range rootKeys {
		total = append(total, dp.solve(rk, nil)...)
	}
	return total
}

// classify computes survive disks, buckets them by their square, and marks
// the ancestor chain of every occupied square as content-bearing.
func (dp *ptasDP) classify() {
	dp.disksAt = make(map[sqKey][]int)
	dp.hasContent = make(map[sqKey]bool)
	dp.roots = make(map[sqKey]bool)
	for i, d := range dp.inst.disks {
		lvl := dp.inst.levels[i]
		if !dp.grid.Survives(d, lvl) {
			continue
		}
		ix, iy := dp.grid.SquareIndex(d.Center, lvl)
		key := sqKey{lvl, ix, iy}
		dp.disksAt[key] = append(dp.disksAt[key], i)
		// Mark the chain up to level 0.
		for l := lvl; l >= 0; l-- {
			cix, ciy := dp.grid.SquareIndex(d.Center, l)
			dp.hasContent[sqKey{l, cix, ciy}] = true
			if l == 0 {
				dp.roots[sqKey{0, cix, ciy}] = true
			}
		}
	}
}

// solve returns the best feasible disk set inside square key's subtree,
// independent from every disk in ctx, judged by exact weight of the union
// with ctx. ctx is sorted ascending.
func (dp *ptasDP) solve(key sqKey, ctx []int) []int {
	mk := memoKey(key, ctx)
	if got, ok := dp.memo[mk]; ok {
		return got
	}

	// Candidates of this square's level, pre-filtered against the context.
	var cands []int
	for _, i := range dp.disksAt[key] {
		if dp.compatible(i, ctx) {
			cands = append(cands, i)
		}
	}
	children := dp.contentChildren(key)

	bestSet := []int{}
	bestW := dp.weightWith(nil, ctx)
	evaluate := func(chosen []int) {
		if dp.evals >= dp.budget {
			return
		}
		dp.evals++
		cand := append([]int(nil), chosen...)
		if len(children) > 0 {
			inner := append(append([]int(nil), ctx...), chosen...)
			sort.Ints(inner)
			for _, ck := range children {
				childCtx := dp.filterIntersecting(inner, ck)
				cand = append(cand, dp.solve(ck, childCtx)...)
			}
		}
		if w := dp.weightWith(cand, ctx); w > bestW {
			bestW = w
			bestSet = cand
		}
	}

	if len(cands) <= dp.lambda*2 {
		// Small candidate pool: enumerate every independent subset D with
		// |D| <= lambda (including the empty set) so the children can adapt
		// to each choice through the threaded context — the textbook DP.
		var enumerate func(start int, chosen []int)
		enumerate = func(start int, chosen []int) {
			evaluate(chosen)
			if len(chosen) >= dp.lambda || dp.evals >= dp.budget {
				return
			}
			for i := start; i < len(cands); i++ {
				d := cands[i]
				ok := true
				for _, c := range chosen {
					if !dp.independent(d, c) {
						ok = false
						break
					}
				}
				if ok {
					enumerate(i+1, append(chosen, d))
				}
			}
		}
		enumerate(0, nil)
	} else {
		// Dense square (the paper's 50-homogeneous-reader evaluation puts
		// nearly every disk at one level inside a handful of squares, where
		// optimal feasible sets hold dozens of disks — far beyond any
		// enumerable Λ). Candidate choices: the empty set, and the
		// branch-and-bound maximum-weight independent subset of the
		// square's own disks. Children still adapt via the context.
		evaluate(nil)
		if remaining := dp.budget - dp.evals; remaining > 0 {
			res := mwfs.Solve(dp.inst.sys, cands, mwfs.Options{
				MaxNodes:    remaining,
				Independent: dp.independent,
			})
			dp.evals += res.Nodes
			if len(res.Set) > 0 {
				evaluate(res.Set)
			}
		}
	}

	dp.memo[mk] = bestSet
	return bestSet
}

// contentChildren lists the child squares of key that carry survive disks,
// in deterministic order.
func (dp *ptasDP) contentChildren(key sqKey) []sqKey {
	xlo, xhi := dp.grid.ChildXRange(key.ix)
	ylo, yhi := dp.grid.ChildYRange(key.iy)
	var out []sqKey
	for ix := xlo; ix <= xhi; ix++ {
		for iy := ylo; iy <= yhi; iy++ {
			ck := sqKey{key.level + 1, ix, iy}
			if dp.hasContent[ck] {
				out = append(out, ck)
			}
		}
	}
	return out
}

// filterIntersecting keeps the disks of set whose scaled interference disk
// intersects the child square — the only ones that can constrain or overlap
// anything inside it.
func (dp *ptasDP) filterIntersecting(set []int, ck sqKey) []int {
	rect := dp.grid.SquareRect(ck.level, ck.ix, ck.iy)
	var out []int
	for _, i := range set {
		if rect.IntersectsDisk(dp.inst.disks[i]) {
			out = append(out, i)
		}
	}
	return out
}

func (dp *ptasDP) compatible(d int, ctx []int) bool {
	for _, c := range ctx {
		if !dp.independent(d, c) {
			return false
		}
	}
	return true
}

func (dp *ptasDP) independent(a, b int) bool {
	return dp.inst.sys.Independent(a, b)
}

// weightWith returns w(set ∪ ctx) on the live system.
func (dp *ptasDP) weightWith(set, ctx []int) int {
	if len(ctx) == 0 {
		return dp.inst.sys.Weight(set)
	}
	u := append(append(make([]int, 0, len(set)+len(ctx)), set...), ctx...)
	return dp.inst.sys.Weight(u)
}

func memoKey(key sqKey, ctx []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:%d:%d|", key.level, key.ix, key.iy)
	for _, c := range ctx {
		fmt.Fprintf(&b, "%d,", c)
	}
	return b.String()
}
