package core

import (
	"slices"
	"strconv"

	"rfidsched/internal/geom"
	"rfidsched/internal/model"
	"rfidsched/internal/mwfs"
	"rfidsched/internal/parsearch"
)

// PTAS is Algorithm 1: the polynomial-time approximation scheme for the
// One-Shot Schedule Problem when reader locations are known and radii are
// heterogeneous (Section IV).
//
// The instance is scaled so the largest interference radius is 1/2, disks
// are binned into levels by radius (level j holds disks with
// 1/(k+1)^(j+1) < 2R <= 1/(k+1)^j), and for each of the k^2 (r,s)-shiftings
// the disks that hit a shifted grid line of their level are discarded
// ("survive" filter). The survivors nest perfectly: a survive disk of level
// j lies strictly inside exactly one j-square, and every shifted line of a
// coarse level persists at all finer levels, so j-squares tile into
// (k+1)^2 child (j+1)-squares. A dynamic program then walks the square
// hierarchy: in each square it enumerates up to Lambda independent disks of
// the square's level, recurses into the children with the chosen disks
// threaded through as context, and keeps the candidate with the largest
// exact weight. Theorem 2 guarantees some shifting preserves a
// (1-1/k)^2 fraction of the optimal weight.
//
// Faithfulness note (see DESIGN.md §6): because w is subadditive the DP
// evaluates every candidate with the exact weight function over the full
// union (cheap at paper scale) rather than summing child values; context
// filtering to intersecting disks is lossless because interrogation regions
// are contained in interference disks.
//
// Parallelism: content-bearing level-0 squares ("roots") hold disjoint
// subtrees whose solutions union additively, and the k^2 shiftings are
// independent computations over shared geometry — so the unit of fan-out is
// the (shifting, root) pair. Every root gets its own memo table (subtrees
// never share squares, so a shared table gains nothing) and a fixed
// per-root share of the evaluation budget, applied identically in the
// sequential and parallel paths so results are bit-identical at any worker
// count (DESIGN.md §11).
type PTAS struct {
	// K is the shifting parameter k >= 2; the approximation factor is
	// (1-1/k)^2 and the work grows with k^2 shiftings. Default 3.
	K int

	// Lambda caps the number of same-level disks chosen per square per DP
	// node. Default 6. Larger values improve weight on dense instances at
	// exponential enumeration cost.
	Lambda int

	// MaxEvals caps candidate evaluations as a safety valve on adversarial
	// instances; 0 means the default (2M). The allowance is split into equal
	// deterministic shares per content root of each shifting — never drawn
	// from a shared pool — so exhaustion degrades the same roots by the same
	// amount regardless of Workers. Exhausting the budget degrades quality,
	// never feasibility.
	MaxEvals int

	// Workers fans (shifting, root) subproblems over a pool where each
	// worker evaluates weights on its own System clone; values below 2 run
	// the same task list inline on the calling goroutine. Results are
	// bit-identical across all Workers values. The branch-and-bound inside
	// dense squares stays sequential per task — root-level fan-out is the
	// parallelism, and nesting pools would oversubscribe.
	Workers int

	// Deadline, when non-nil, bounds the call: the square DP polls it once
	// per candidate evaluation and once per inner branch-and-bound chunk,
	// and on expiry every remaining subtree keeps its best-so-far feasible
	// set (possibly empty). The final augmentation pass still runs — it is
	// polynomial and only adds weight — so even a fully expired deadline
	// yields a feasible, progress-making set, never an error (anytime
	// contract, DESIGN.md §12). RunMCS installs a fresh per-slot deadline
	// through SetDeadline.
	Deadline *Deadline

	// LastEvals reports candidate evaluations used by the most recent
	// OneShot call, summed over shiftings. Diagnostic; not concurrency-safe.
	LastEvals int

	// LastShift reports the winning (r,s) shifting of the last call.
	LastShift [2]int

	// lastAnytime records whether the most recent OneShot was truncated by
	// the deadline; see Anytime.
	lastAnytime bool
}

// NewPTAS returns Algorithm 1 with the default parameters (k=3, Λ=6).
func NewPTAS() *PTAS { return &PTAS{K: 3, Lambda: 6} }

// Name implements model.OneShotScheduler.
func (p *PTAS) Name() string { return "Alg1-PTAS" }

// SetWorkers implements the solver-worker plumbing used by
// MCSOptions.SolverWorkers and the CLIs.
func (p *PTAS) SetWorkers(w int) { p.Workers = w }

// SetDeadline implements DeadlineSetter.
func (p *PTAS) SetDeadline(dl *Deadline) { p.Deadline = dl }

// Anytime implements AnytimeReporter: true when the most recent OneShot
// was truncated by the deadline and returned an anytime incumbent.
func (p *PTAS) Anytime() bool { return p.lastAnytime }

// OneShot implements model.OneShotScheduler.
func (p *PTAS) OneShot(sys *model.System) ([]int, error) {
	k := p.K
	if k < 2 {
		k = 3
	}
	lambda := p.Lambda
	if lambda <= 0 {
		lambda = 6
	}
	maxEvals := p.MaxEvals
	if maxEvals <= 0 {
		maxEvals = 2 << 20
	}
	n := sys.NumReaders()
	if n == 0 {
		return nil, nil
	}

	inst := newPTASInstance(sys, k)
	p.LastEvals = 0

	// Classification per shifting is cheap (O(n·levels)) and stays on the
	// calling goroutine; the task list is every (shifting, root) pair in
	// deterministic (r, s, root-order) sequence.
	plans := make([]*shiftPlan, 0, k*k)
	for r := 0; r < k; r++ {
		for s := 0; s < k; s++ {
			plans = append(plans, newShiftPlan(inst, geom.ShiftGrid{K: k, R: r, S: s}, lambda))
		}
	}
	type rootTask struct{ plan, root int }
	var tasks []rootTask
	for pi, pl := range plans {
		for ri := range pl.rootKeys {
			tasks = append(tasks, rootTask{pi, ri})
		}
	}

	type rootResult struct {
		set      []int
		evals    int
		timedOut bool
	}
	workers := parsearch.Normalize(p.Workers)
	p.lastAnytime = false
	results := make([]rootResult, len(tasks))
	clones := make([]*model.System, max(workers, 1))
	parsearch.ForEach(workers, len(tasks), func(w, t int) {
		wsys := sys
		if workers >= 2 {
			// Weight evaluation mutates System-owned scratch, so each pool
			// worker scores on a private clone (shared immutable geometry).
			if clones[w] == nil {
				clones[w] = sys.ClonePooled()
			}
			wsys = clones[w]
		}
		tk := tasks[t]
		pl := plans[tk.plan]
		share := maxEvals / len(pl.rootKeys)
		if share < 1 {
			share = 1
		}
		dp := &ptasDP{plan: pl, sys: wsys, budget: share, memo: make(map[dpMemoKey][]int), dl: p.Deadline}
		set := dp.solve(pl.rootKeys[tk.root], nil)
		results[t] = rootResult{set: set, evals: dp.evals, timedOut: dp.timedOut}
	})
	for _, c := range clones {
		if c != nil {
			c.Release()
		}
	}

	// Deterministic merge: union each shifting's roots in task order (their
	// interrogation regions are disjoint, weights additive), augment, then
	// keep the strictly best shifting in (r,s) order.
	var best []int
	bestW := -1
	idx := 0
	for _, pl := range plans {
		var total []int
		for range pl.rootKeys {
			total = append(total, results[idx].set...)
			p.LastEvals += results[idx].evals
			p.lastAnytime = p.lastAnytime || results[idx].timedOut
			idx++
		}
		// Augmentation pass: the (r,s)-shifting discarded disks that hit
		// grid lines purely for the analysis; greedily re-adding any
		// discarded reader that stays independent and increases the
		// weight can only help, so Theorem 2's bound is preserved while
		// the small-k survive loss is largely recovered.
		set := augmentFeasible(sys, total)
		if w := sys.Weight(set); w > bestW {
			bestW = w
			best = set
			p.LastShift = [2]int{pl.grid.R, pl.grid.S}
		}
	}
	slices.Sort(best)
	return best, nil
}

// augmentFeasible greedily extends X with readers that keep the set
// feasible and strictly increase its weight, largest marginal first. The
// working set is held in a WeightEval so each candidate probe costs O(Δ)
// (MarginalGain) rather than a full weight recompute — this is both the
// PTAS augmentation pass and the covering-schedule stall fallback, so it
// sits on the hot path of every driver.
func augmentFeasible(sys *model.System, X []int) []int {
	in := make([]bool, sys.NumReaders())
	eval := model.NewPooledWeightEval(sys)
	defer eval.Close()
	// Feasibility against the working set is a word-AND over the conflict
	// bitsets (identical verdicts to the pairwise Independent loop), so each
	// candidate probe is O(n/64) instead of O(|cur|) predicate calls.
	conf, confW := sys.ConflictBits()
	curBits := make([]uint64, confW)
	for _, v := range X {
		in[v] = true
		curBits[uint(v)>>6] |= 1 << (uint(v) & 63)
		eval.Add(v)
	}
	cur := append([]int(nil), X...)
	curW := eval.Weight()
	for {
		bestV, bestW := -1, curW
		for v := 0; v < sys.NumReaders(); v++ {
			if in[v] {
				continue
			}
			row := conf[v*confW : (v+1)*confW]
			feasible := true
			for k, wd := range row {
				if wd&curBits[k] != 0 {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			if w := curW + eval.MarginalGain(v); w > bestW {
				bestV, bestW = v, w
			}
		}
		if bestV < 0 {
			return cur
		}
		cur = append(cur, bestV)
		in[bestV] = true
		curBits[uint(bestV)>>6] |= 1 << (uint(bestV) & 63)
		eval.Add(bestV)
		curW = bestW
	}
}

// ptasInstance holds the scaled geometry shared by all shiftings.
type ptasInstance struct {
	sys    *model.System
	k      int
	disks  []geom.Disk // scaled interference disks, index == reader index
	levels []int
	maxLvl int
}

func newPTASInstance(sys *model.System, k int) *ptasInstance {
	n := sys.NumReaders()
	inst := &ptasInstance{sys: sys, k: k, disks: make([]geom.Disk, n), levels: make([]int, n)}
	maxR := 0.0
	for i := 0; i < n; i++ {
		if R := sys.Reader(i).InterferenceR; R > maxR {
			maxR = R
		}
	}
	if maxR <= 0 {
		maxR = 1
	}
	scale := 0.5 / maxR
	for i := 0; i < n; i++ {
		rd := sys.Reader(i)
		inst.disks[i] = geom.Disk{Center: rd.Pos.Scale(scale), R: rd.InterferenceR * scale}
		inst.levels[i] = geom.DiskLevel(inst.disks[i].R, k)
		if inst.levels[i] > inst.maxLvl {
			inst.maxLvl = inst.levels[i]
		}
	}
	return inst
}

type sqKey struct{ level, ix, iy int }

// shiftPlan is the read-only classification of one (r,s) shifting, shared by
// every root task of that shifting (and by every pool worker — nothing in it
// is mutated after construction).
type shiftPlan struct {
	inst       *ptasInstance
	grid       geom.ShiftGrid
	lambda     int
	disksAt    map[sqKey][]int // survive disks of the key's level in that square
	hasContent map[sqKey]bool  // square subtree contains at least one survive disk
	rootKeys   []sqKey         // content-bearing level-0 squares, sorted (ix, iy)
}

// newShiftPlan computes survive disks, buckets them by their square, and
// marks the ancestor chain of every occupied square as content-bearing.
func newShiftPlan(inst *ptasInstance, grid geom.ShiftGrid, lambda int) *shiftPlan {
	pl := &shiftPlan{
		inst:       inst,
		grid:       grid,
		lambda:     lambda,
		disksAt:    make(map[sqKey][]int),
		hasContent: make(map[sqKey]bool),
	}
	roots := make(map[sqKey]bool)
	for i, d := range inst.disks {
		lvl := inst.levels[i]
		if !grid.Survives(d, lvl) {
			continue
		}
		ix, iy := grid.SquareIndex(d.Center, lvl)
		key := sqKey{lvl, ix, iy}
		pl.disksAt[key] = append(pl.disksAt[key], i)
		// Mark the chain up to level 0.
		for l := lvl; l >= 0; l-- {
			cix, ciy := grid.SquareIndex(d.Center, l)
			pl.hasContent[sqKey{l, cix, ciy}] = true
			if l == 0 {
				roots[sqKey{0, cix, ciy}] = true
			}
		}
	}
	for kk := range roots {
		pl.rootKeys = append(pl.rootKeys, kk)
	}
	slices.SortFunc(pl.rootKeys, func(a, b sqKey) int {
		if a.ix != b.ix {
			return a.ix - b.ix
		}
		return a.iy - b.iy
	})
	return pl
}

// dpMemoKey is the comparable memo key for (square, context) DP states. The
// previous representation was an fmt-formatted string rebuilt per lookup —
// two allocations and a format pass on the DP's hottest line; contexts are
// short (filtered to disks intersecting one square), so spilling past the
// 8-entry inline array is rare and the common-case key costs zero
// allocations. psbench reports the resulting allocs/op next to the speedup
// numbers.
type dpMemoKey struct {
	sq   sqKey
	n    int
	a    [8]int32
	rest string
}

func makeMemoKey(key sqKey, ctx []int) dpMemoKey {
	mk := dpMemoKey{sq: key, n: len(ctx)}
	for i, c := range ctx {
		if i < len(mk.a) {
			mk.a[i] = int32(c)
			continue
		}
		mk.rest += strconv.Itoa(c) + ","
	}
	return mk
}

// ptasDP solves one root subtree of one shifting: a private memo table and
// evaluation budget over the shared shiftPlan, scoring on sys (the live
// system sequentially, a worker-owned clone on the pool).
type ptasDP struct {
	plan     *shiftPlan
	sys      *model.System
	budget   int
	evals    int
	memo     map[dpMemoKey][]int
	dl       *parsearch.Deadline
	timedOut bool
}

// expired polls the deadline (one poll per candidate evaluation — each
// evaluation is a full weight computation, so the poll is noise) and
// latches the anytime flag. Once expired, every remaining solve call
// returns its current best immediately.
func (dp *ptasDP) expired() bool {
	if dp.timedOut {
		return true
	}
	if dp.dl.Poll() {
		dp.timedOut = true
	}
	return dp.timedOut
}

// solve returns the best feasible disk set inside square key's subtree,
// independent from every disk in ctx, judged by exact weight of the union
// with ctx. ctx is sorted ascending.
func (dp *ptasDP) solve(key sqKey, ctx []int) []int {
	mk := makeMemoKey(key, ctx)
	if got, ok := dp.memo[mk]; ok {
		return got
	}
	// Expired: contribute the feasible floor (the empty set) without paying
	// a weight evaluation or recursing. The state is not memoized — it was
	// never solved; expiry is sticky, so re-entry stays this cheap.
	if dp.expired() {
		return nil
	}

	// Candidates of this square's level, pre-filtered against the context.
	var cands []int
	for _, i := range dp.plan.disksAt[key] {
		if dp.compatible(i, ctx) {
			cands = append(cands, i)
		}
	}
	children := dp.contentChildren(key)

	bestSet := []int{}
	bestW := dp.weightWith(nil, ctx)
	evaluate := func(chosen []int) {
		if dp.evals >= dp.budget || dp.expired() {
			return
		}
		dp.evals++
		cand := append([]int(nil), chosen...)
		if len(children) > 0 {
			inner := append(append([]int(nil), ctx...), chosen...)
			slices.Sort(inner)
			for _, ck := range children {
				childCtx := dp.filterIntersecting(inner, ck)
				cand = append(cand, dp.solve(ck, childCtx)...)
			}
		}
		if w := dp.weightWith(cand, ctx); w > bestW {
			bestW = w
			bestSet = cand
		}
	}

	if len(cands) <= dp.plan.lambda*2 {
		// Small candidate pool: enumerate every independent subset D with
		// |D| <= lambda (including the empty set) so the children can adapt
		// to each choice through the threaded context — the textbook DP.
		var enumerate func(start int, chosen []int)
		enumerate = func(start int, chosen []int) {
			evaluate(chosen)
			if len(chosen) >= dp.plan.lambda || dp.evals >= dp.budget || dp.timedOut {
				return
			}
			for i := start; i < len(cands); i++ {
				d := cands[i]
				ok := true
				for _, c := range chosen {
					if !dp.independent(d, c) {
						ok = false
						break
					}
				}
				if ok {
					enumerate(i+1, append(chosen, d))
				}
			}
		}
		enumerate(0, nil)
	} else {
		// Dense square (the paper's 50-homogeneous-reader evaluation puts
		// nearly every disk at one level inside a handful of squares, where
		// optimal feasible sets hold dozens of disks — far beyond any
		// enumerable Λ). Candidate choices: the empty set, and the
		// branch-and-bound maximum-weight independent subset of the
		// square's own disks. Children still adapt via the context.
		evaluate(nil)
		if remaining := dp.budget - dp.evals; remaining > 0 && !dp.timedOut {
			// The inner branch-and-bound inherits the deadline directly: its
			// own chunked polls truncate the subtree search, and its anytime
			// best is still worth evaluating — the incumbent is feasible.
			res := mwfs.Solve(dp.sys, cands, mwfs.Options{
				MaxNodes:    remaining,
				Independent: dp.independent,
				Deadline:    dp.dl,
			})
			dp.evals += res.Nodes
			if res.TimedOut {
				// Expired mid-search: keep the anytime incumbent if it beats
				// the current best (it is feasible against ctx by the cands
				// pre-filter), but skip child recursion — time is up.
				dp.timedOut = true
				if w := dp.weightWith(res.Set, ctx); w > bestW {
					bestW = w
					bestSet = append([]int(nil), res.Set...)
				}
			} else if len(res.Set) > 0 {
				evaluate(res.Set)
			}
		}
	}

	dp.memo[mk] = bestSet
	return bestSet
}

// contentChildren lists the child squares of key that carry survive disks,
// in deterministic order.
func (dp *ptasDP) contentChildren(key sqKey) []sqKey {
	xlo, xhi := dp.plan.grid.ChildXRange(key.ix)
	ylo, yhi := dp.plan.grid.ChildYRange(key.iy)
	var out []sqKey
	for ix := xlo; ix <= xhi; ix++ {
		for iy := ylo; iy <= yhi; iy++ {
			ck := sqKey{key.level + 1, ix, iy}
			if dp.plan.hasContent[ck] {
				out = append(out, ck)
			}
		}
	}
	return out
}

// filterIntersecting keeps the disks of set whose scaled interference disk
// intersects the child square — the only ones that can constrain or overlap
// anything inside it.
func (dp *ptasDP) filterIntersecting(set []int, ck sqKey) []int {
	rect := dp.plan.grid.SquareRect(ck.level, ck.ix, ck.iy)
	var out []int
	for _, i := range set {
		if rect.IntersectsDisk(dp.plan.inst.disks[i]) {
			out = append(out, i)
		}
	}
	return out
}

func (dp *ptasDP) compatible(d int, ctx []int) bool {
	for _, c := range ctx {
		if !dp.independent(d, c) {
			return false
		}
	}
	return true
}

func (dp *ptasDP) independent(a, b int) bool {
	return dp.sys.Independent(a, b)
}

// weightWith returns w(set ∪ ctx) on the solver's system handle.
func (dp *ptasDP) weightWith(set, ctx []int) int {
	if len(ctx) == 0 {
		return dp.sys.Weight(set)
	}
	u := append(append(make([]int, 0, len(set)+len(ctx)), set...), ctx...)
	return dp.sys.Weight(u)
}
