package core

import (
	"testing"

	"rfidsched/internal/graph"
)

// Failure-injection tests: Algorithm 3 under message loss. The flooding
// phases carry every record along all paths of a ball, so low loss rates
// should not change the outcome; heavy loss degrades the protocol in ways
// the implementation must surface honestly (timeout error or a lighter
// schedule), never by crashing or silently producing garbage.

func TestDistributedTolerantToLowLoss(t *testing.T) {
	sys := paperSystem(t, 61, 12, 5)
	g := graph.FromSystem(sys)

	clean := NewDistributed(g, 1.25)
	Xclean, err := clean.OneShot(sys)
	if err != nil {
		t.Fatal(err)
	}

	lossy := NewDistributed(g, 1.25)
	lossy.LossRate = 0.05
	lossy.LossSeed = 7
	Xlossy, err := lossy.OneShot(sys)
	if err != nil {
		t.Fatalf("5%% loss broke the protocol: %v", err)
	}
	if lossy.LastStats.MessagesLost == 0 {
		t.Error("loss injection inactive")
	}
	if !sys.IsFeasible(Xlossy) {
		t.Error("5% loss produced an infeasible set")
	}
	// Low loss should cost little weight relative to the clean run.
	wc, wl := sys.Weight(Xclean), sys.Weight(Xlossy)
	if float64(wl) < 0.8*float64(wc) {
		t.Errorf("5%% loss dropped weight from %d to %d", wc, wl)
	}
}

func TestDistributedHeavyLossDegradesGracefully(t *testing.T) {
	sys := paperSystem(t, 63, 12, 5)
	g := graph.FromSystem(sys)
	lossy := NewDistributed(g, 1.25)
	lossy.LossRate = 0.95
	lossy.LossSeed = 11
	X, err := lossy.OneShot(sys)
	if err != nil {
		// Timeout is an acceptable, honest outcome under 95% loss.
		return
	}
	// If the protocol converged, the result must still be a valid reader
	// subset; with essentially no communication, coordinator elections can
	// split, so feasibility may be lost — measure and report rather than
	// assert.
	for _, v := range X {
		if v < 0 || v >= sys.NumReaders() {
			t.Fatalf("corrupt reader index %d", v)
		}
	}
	t.Logf("95%% loss: %d readers, feasible=%v, weight=%d",
		len(X), sys.IsFeasible(X), sys.Weight(X))
}

func TestDistributedLossDeterministic(t *testing.T) {
	sys := paperSystem(t, 65, 12, 5)
	g := graph.FromSystem(sys)
	run := func() ([]int, int) {
		d := NewDistributed(g, 1.25)
		d.LossRate = 0.1
		d.LossSeed = 99
		X, err := d.OneShot(sys)
		if err != nil {
			t.Fatal(err)
		}
		return X, d.LastStats.MessagesLost
	}
	X1, l1 := run()
	X2, l2 := run()
	if l1 != l2 || len(X1) != len(X2) {
		t.Fatalf("loss injection not reproducible: %d/%d lost, %d/%d readers",
			l1, l2, len(X1), len(X2))
	}
	for i := range X1 {
		if X1[i] != X2[i] {
			t.Fatal("loss injection not reproducible: different sets")
		}
	}
}

func TestDistributedLossSweepMonotoneMessages(t *testing.T) {
	sys := smallSystem(t, 67, 16, 100)
	g := graph.FromSystem(sys)
	prevLost := -1
	for _, rate := range []float64{0.01, 0.2, 0.5} {
		d := NewDistributed(g, 1.25)
		d.LossRate = rate
		d.LossSeed = 5
		if _, err := d.OneShot(sys); err != nil {
			// Higher rates may time out; stop the sweep there.
			return
		}
		frac := float64(d.LastStats.MessagesLost) / float64(d.LastStats.MessagesSent)
		if frac < rate/3 || frac > rate*3+0.02 {
			t.Errorf("rate %v: measured loss fraction %v implausible", rate, frac)
		}
		_ = prevLost
	}
}
